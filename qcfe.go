// Package qcfe is the public API of this repository: a reproduction of
// "QCFE: An Efficient Feature Engineering for Query Cost Estimation"
// (ICDE 2024) together with every substrate it needs — a SQL engine with
// planner, executor and environment simulator, two learned cost estimators
// (QPPNet, MSCN), a PostgreSQL-style analytic baseline, and the QCFE
// feature pipeline (feature snapshot + difference-propagation feature
// reduction).
//
// # Quickstart
//
//	bench, _ := qcfe.OpenBenchmark("sysbench", 1)
//	envs := qcfe.RandomEnvironments(4, 1)
//	pool, _ := bench.CollectWorkload(envs, 200, 1)
//	train, test := pool.Split(0.8)
//	est, _ := qcfe.NewPipeline("mscn").Fit(bench, envs, train)
//	fmt.Println(est.Evaluate(test).Mean) // mean q-error
//
// See examples/ for runnable programs and internal/experiments for the
// paper's full evaluation harness.
package qcfe

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pgcost"
	"repro/internal/planner"
	"repro/internal/qcache"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// SetWorkers sets the process-wide worker-pool size used by workload
// collection and snapshot labeling (0 restores the GOMAXPROCS default).
// Labeled pools are bit-identical at any worker count.
func SetWorkers(n int) { parallel.SetDefaultWorkers(n) }

// Environment is a database environment: knobs × hardware × storage
// format — the paper's "ignored variables".
type Environment = dbenv.Environment

// Summary bundles the evaluation metrics (mean/percentile q-error,
// Pearson correlation).
type Summary = metrics.Summary

// DefaultEnvironment returns the baseline environment.
func DefaultEnvironment() *Environment { return dbenv.Default() }

// RandomEnvironments samples n environments the way the paper samples its
// twenty random knob configurations.
func RandomEnvironments(n int, seed int64) []*Environment {
	return dbenv.SampleSet(n, seed)
}

// Benchmark is one loaded benchmark dataset (schema, data, statistics)
// plus its workload templates.
type Benchmark struct {
	ds   *datagen.Dataset
	seed int64
}

// OpenBenchmark builds a benchmark dataset by name: "tpch", "imdb"
// (job-light), or "sysbench". Generation is deterministic per seed.
func OpenBenchmark(name string, seed int64) (*Benchmark, error) {
	ds, err := datagen.Build(name, seed)
	if err != nil {
		return nil, err
	}
	return &Benchmark{ds: ds, seed: seed}, nil
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.ds.Name }

// Seed returns the deterministic generation seed the benchmark was opened
// with; artifacts record it so a loader can rebuild the identical dataset.
func (b *Benchmark) Seed() int64 { return b.seed }

// Dataset exposes the underlying dataset for advanced use.
func (b *Benchmark) Dataset() *datagen.Dataset { return b.ds }

// QueryResult is one executed query.
type QueryResult struct {
	// Plan is the executed physical plan, annotated with per-node
	// estimates and actuals; Plan.Explain() renders it.
	Plan *planner.Node
	// Ms is the simulated execution latency.
	Ms float64
	// Rows is the number of result rows.
	Rows int
}

// planAnnotated parses and plans one SQL query against a dataset under an
// environment, tagging every node with the environment ID — the shared
// front half of executing a query (Benchmark.Execute) and pricing one
// without running it (CostEstimator.EstimateSQL).
func planAnnotated(ds *datagen.Dataset, env *Environment, sql string) (*planner.Node, error) {
	node, _, err := planParsed(ds, env, sql)
	return node, err
}

// planParsed is planAnnotated exposing the parsed (and, after planning,
// resolved) query alongside the plan — the query-cache cold path stores
// it as the template skeleton. Both paths share this one function so the
// cache-on == cache-off bitwise contract cannot drift.
func planParsed(ds *datagen.Dataset, env *Environment, sql string) (*planner.Node, *sqlparse.Query, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	node, err := planner.New(ds.Schema, ds.Stats, env.Knobs).Plan(q)
	if err != nil {
		return nil, nil, err
	}
	node.Walk(func(n *planner.Node) { n.EnvID = env.ID })
	return node, q, nil
}

// Plan parses and plans one SQL query under an environment without
// executing it, returning the annotated physical plan. The online
// adaptation loop uses it to turn a client-labeled query (latency
// observed elsewhere) into a training sample without paying an engine
// execution.
func (b *Benchmark) Plan(env *Environment, sql string) (*planner.Node, error) {
	return planAnnotated(b.ds, env, sql)
}

// Execute plans and runs one SQL query under an environment.
func (b *Benchmark) Execute(env *Environment, sql string) (*QueryResult, error) {
	node, err := planAnnotated(b.ds, env, sql)
	if err != nil {
		return nil, err
	}
	res, err := engine.New(b.ds.DB, env).Execute(node)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Plan: node, Ms: res.TotalMs, Rows: len(res.Rows)}, nil
}

// AnalyticEstimateMs prices a plan with the PostgreSQL-style cost model
// (the paper's PGSQL baseline).
func (b *Benchmark) AnalyticEstimateMs(plan *planner.Node) float64 {
	return pgcost.New(b.ds.Stats).EstimateMs(plan)
}

// Workload is a labeled query pool collected across environments.
type Workload struct {
	lab *workload.Labeled
}

// CollectWorkload runs perEnv benchmark queries in every environment and
// labels them with simulated latency.
func (b *Benchmark) CollectWorkload(envs []*Environment, perEnv int, seed int64) (*Workload, error) {
	return b.CollectWorkloadCtx(context.Background(), envs, perEnv, seed)
}

// CollectWorkloadCtx is CollectWorkload with cooperative cancellation:
// the labeling fan-out stops claiming (environment, query) tasks once ctx
// is cancelled and the call returns ctx's error instead of a partial
// pool.
func (b *Benchmark) CollectWorkloadCtx(ctx context.Context, envs []*Environment, perEnv int, seed int64) (*Workload, error) {
	lab, err := workload.CollectCtx(ctx, b.ds, envs, perEnv, seed)
	if err != nil {
		return nil, err
	}
	return &Workload{lab: lab}, nil
}

// Len returns the pool size.
func (w *Workload) Len() int { return len(w.lab.Samples) }

// Split divides the pool into train/test sample slices.
func (w *Workload) Split(trainFrac float64) (train, test []workload.Sample) {
	return workload.Split(w.lab.Samples, trainFrac)
}

// Scale returns the first n samples (the paper's scale subsets).
func (w *Workload) Scale(n int) []workload.Sample { return w.lab.Scale(n) }

// Pipeline configures a QCFE training run.
type Pipeline struct {
	cfg core.Config
}

// Option customizes a pipeline.
type Option func(*core.Config)

// WithoutSnapshot disables the feature-snapshot block (general FE only).
func WithoutSnapshot() Option { return func(c *core.Config) { c.UseSnapshot = false } }

// WithSnapshotMode selects FSO ("fso": original queries) or FST ("fst":
// simplified templates) snapshot labeling.
func WithSnapshotMode(mode string) Option {
	return func(c *core.Config) { c.SnapshotMode = core.SnapshotMode(mode) }
}

// WithReduction selects the feature-reduction method: "fr", "gd",
// "greedy", or "none".
func WithReduction(method string) Option {
	return func(c *core.Config) { c.Reduction = core.ReductionMethod(method) }
}

// WithTrainIters sets the training iteration budget.
func WithTrainIters(n int) Option { return func(c *core.Config) { c.TrainIters = n } }

// WithTemplateScale sets Algorithm 1's template scale N.
func WithTemplateScale(n int) Option { return func(c *core.Config) { c.TemplateScale = n } }

// WithSeed fixes the random seed.
func WithSeed(seed int64) Option { return func(c *core.Config) { c.Seed = seed } }

// WithReferences sets the number of difference-propagation references |R|.
func WithReferences(n int) Option { return func(c *core.Config) { c.NumReferences = n } }

// NewPipeline builds a pipeline for the given estimator — "qppnet",
// "mscn", or "analytic" (the training-free PGSQL baseline) — with QCFE's
// default configuration (FST snapshot, FR reduction).
func NewPipeline(model string, opts ...Option) *Pipeline {
	cfg := core.DefaultConfig(model)
	for _, o := range opts {
		o(&cfg)
	}
	return &Pipeline{cfg: cfg}
}

// QueryCache is the sharded, generation-aware query-fingerprint cache
// (see internal/qcache): three tiers — template, feature, prediction —
// keyed off the normalized SQL fingerprint, invalidated atomically when
// a different estimator attaches.
type QueryCache = qcache.QueryCache

// CacheOptions sizes a QueryCache (shard count, per-tier capacity).
type CacheOptions = qcache.Options

// CacheStats is a QueryCache counter snapshot.
type CacheStats = qcache.Stats

// CacheTierStats is one tier's slice of a CacheStats snapshot.
type CacheTierStats = qcache.TierStats

// NewQueryCache builds an empty query cache. Attach it to an estimator
// with AttachCache; predictions served through it are bit-identical to
// the uncached paths.
func NewQueryCache(opts CacheOptions) *QueryCache { return qcache.New(opts) }

// CostEstimator is a trained model bound to its feature pipeline.
type CostEstimator struct {
	res   *core.Result
	bench *Benchmark
	envs  []*Environment
	cfg   core.Config

	// cache, when attached, accelerates the SQL estimate paths; nil means
	// every call runs the full front half. The pointer is atomic because
	// the hot-swap protocol (SwapEstimator) attaches a cache to an
	// estimator that may still be draining in-flight estimates; each
	// estimate path loads it once and uses that snapshot throughout.
	cache   atomic.Pointer[qcache.QueryCache]
	genOnce sync.Once
	gen     uint64
}

// Fit trains the pipeline on labeled samples collected over envs. An
// empty or nil train slice is an error — a model fitted on zero samples
// would silently predict from its initialization.
func (p *Pipeline) Fit(b *Benchmark, envs []*Environment, train []workload.Sample) (*CostEstimator, error) {
	return p.FitCtx(context.Background(), b, envs, train)
}

// FitCtx is Fit with cooperative cancellation: ctx is checked inside the
// snapshot-labeling worker pool and between training minibatches, so
// cancelling stops the run promptly. A cancelled fit returns ctx's error
// and no estimator — partially trained state never escapes.
func (p *Pipeline) FitCtx(ctx context.Context, b *Benchmark, envs []*Environment, train []workload.Sample) (*CostEstimator, error) {
	res, err := core.RunCtx(ctx, b.ds, envs, train, p.cfg)
	if err != nil {
		return nil, err
	}
	return &CostEstimator{res: res, bench: b, envs: envs, cfg: p.cfg}, nil
}

// EstimateMs predicts the execution time of a plan in milliseconds.
func (e *CostEstimator) EstimateMs(plan *planner.Node) float64 {
	return e.res.Model.PredictMs(plan)
}

// EstimateBatch predicts the execution time of many plans in one
// vectorized inference pass — the serving path for pricing a workload.
// Element i is bit-identical to EstimateMs(plans[i]).
func (e *CostEstimator) EstimateBatch(plans []*planner.Node) []float64 {
	return e.res.Model.PredictBatch(plans)
}

// AttachCache binds a query cache to the estimator and moves the cache
// to this estimator's generation — an atomic swap that logically
// invalidates every entry another estimator left behind, so a stale
// prediction can never be served across a LoadEstimator or retrain.
// Every lookup and store this estimator makes is stamped with its own
// generation (not the cache's current one), so even an estimator that
// keeps serving in-flight traffic after the cache moved on can neither
// read nor pollute the new generation's entries. Because the generation
// is a hash of the full artifact (benchmark fingerprint, snapshot
// coefficients, mask, model weights), re-attaching a byte-identical
// estimator (Save→Load of the same model) keeps the cache warm.
//
// Environments are identified by their ID throughout the cache, matching
// how the featurizer selects per-environment snapshots; callers must not
// reuse one ID for two different environments (the trained set never
// does).
func (e *CostEstimator) AttachCache(c *qcache.QueryCache) {
	c.SetGeneration(e.cacheGeneration())
	e.cache.Store(c)
}

// Cache returns the attached query cache (nil when none).
func (e *CostEstimator) Cache() *qcache.QueryCache { return e.cache.Load() }

// CacheStats snapshots the attached cache's counters; ok is false when
// no cache is attached.
func (e *CostEstimator) CacheStats() (CacheStats, bool) {
	c := e.cache.Load()
	if c == nil {
		return CacheStats{}, false
	}
	return c.Stats(), true
}

// cacheGeneration derives the estimator's cache generation stamp by
// hashing its serialized artifact — everything predictions depend on.
// Computed once; deterministic across Save/Load round trips.
func (e *CostEstimator) cacheGeneration() uint64 {
	e.genOnce.Do(func() {
		h := fnv.New64a()
		if err := e.Save(h); err != nil {
			// Save only fails on an impossible (empty) estimator; fall
			// back to a constant so attaching still invalidates foreign
			// entries.
			h.Write([]byte(err.Error()))
		}
		e.gen = h.Sum64()
	})
	return e.gen
}

// Generation returns the estimator's artifact generation: the FNV-64a
// hash of its full serialized artifact, the same value that stamps
// query-cache entries. Two estimators share a generation exactly when
// their artifacts are byte-identical (a Save→Load round trip), so the
// fleet rollout protocol (internal/router) uses it as the identity of
// "which model is this replica serving" — a replica advertises it in
// /healthz and the router gates rollout steps on it.
func (e *CostEstimator) Generation() uint64 { return e.cacheGeneration() }

// CachedEstimate consults only the prediction tier: a warm hit returns
// the memoized prediction for the exact (environment, SQL text) pair
// without planning, featurizing, or inference; a miss returns ok=false
// without doing any work. The serving layer probes this before paying
// the coalescing queue's batching latency.
func (e *CostEstimator) CachedEstimate(env *Environment, sql string) (float64, bool) {
	c := e.cache.Load()
	if c == nil {
		return 0, false
	}
	return c.GetPrediction(qcache.PredictionKey(env.ID, sql), e.cacheGeneration())
}

// EstimateSQL plans a query under env and predicts its cost without
// executing it. With a cache attached, repeats are served from the
// prediction tier and template/literal variants skip the front-half
// stages their tiers cover; results are bit-identical either way.
func (e *CostEstimator) EstimateSQL(env *Environment, sql string) (float64, error) {
	c := e.cache.Load()
	if c == nil {
		node, err := planAnnotated(e.bench.ds, env, sql)
		if err != nil {
			return 0, err
		}
		return e.res.Model.PredictMs(node), nil
	}
	g := e.cacheGeneration()
	pkey := qcache.PredictionKey(env.ID, sql)
	if ms, ok := c.GetPrediction(pkey, g); ok {
		return ms, nil
	}
	fp, err := e.featurizedPlan(c, g, env, sql)
	if err != nil {
		return 0, err
	}
	ms := e.res.Model.PredictFeaturizedBatch([]*encoding.FeaturizedPlan{fp})[0]
	c.PutPrediction(pkey, g, ms)
	return ms, nil
}

// featurizedPlan runs the cache-aware front half for one query: probe
// the feature tier (fingerprint + literal signature), then the template
// tier (fingerprint; bind fresh literals into a clone of the cached
// resolved skeleton and re-plan, recomputing every literal-dependent
// selectivity and operator choice), then fall back to the full
// parse→resolve→plan→featurize pipeline, populating the tiers on the
// way out. Any hiccup on a cached path (literal mismatch, plan error)
// falls back to the full pipeline so errors and results are exactly the
// uncached ones. The caller passes its own (cache, generation)
// snapshot so one request stays internally consistent across a
// concurrent swap.
func (e *CostEstimator) featurizedPlan(c *qcache.QueryCache, g uint64, env *Environment, sql string) (*encoding.FeaturizedPlan, error) {
	fpr, lits, ferr := sqlparse.Fingerprint(sql)
	if ferr != nil {
		// Unlexable text: let the ordinary path produce the
		// authoritative error (or, conceivably, a result).
		node, err := planAnnotated(e.bench.ds, env, sql)
		if err != nil {
			return nil, err
		}
		return e.featurize(node), nil
	}
	fkey := qcache.FeatureKey(env.ID, fpr, sqlparse.Signature(lits))
	if fp, ok := c.GetFeatures(fkey, g); ok {
		return fp, nil
	}
	tkey := qcache.TemplateKey(env.ID, fpr)
	var node *planner.Node
	if skel, ok := c.GetTemplate(tkey, g); ok {
		node = e.planFromSkeleton(skel, lits, env)
	}
	if node == nil {
		var q *sqlparse.Query
		var err error
		node, q, err = planParsed(e.bench.ds, env, sql)
		if err != nil {
			return nil, err
		}
		// Freeze the now-resolved skeleton for future literal variants.
		// (Its literal values are the ones just planned; every hit
		// overwrites them via BindLiterals before planning.)
		c.PutTemplate(tkey, g, q.Clone())
	}
	fp := e.featurize(node)
	c.PutFeatures(fkey, g, fp)
	return fp, nil
}

// featurize builds the feature-tier value for one planned query. The
// analytic baseline prices the plan directly and never reads feature
// rows, so its entries carry only the plan (still worth caching: a
// feature-tier hit skips parse+resolve+plan); the learned models get
// the full per-node featurization.
func (e *CostEstimator) featurize(node *planner.Node) *encoding.FeaturizedPlan {
	if _, analytic := e.res.Model.(*core.Analytic); analytic {
		return &encoding.FeaturizedPlan{Root: node}
	}
	return e.res.F.Featurize(node)
}

// planFromSkeleton re-plans a cached resolved skeleton under a fresh
// literal vector. nil means "treat as a template miss": the caller
// re-runs the full pipeline, which reproduces any error exactly.
func (e *CostEstimator) planFromSkeleton(skel *sqlparse.Query, lits []sqlparse.Literal, env *Environment) *planner.Node {
	q := skel.Clone()
	if err := q.BindLiterals(lits); err != nil {
		return nil
	}
	node, err := planner.New(e.bench.ds.Schema, e.bench.ds.Stats, env.Knobs).PlanResolved(q)
	if err != nil {
		return nil
	}
	node.Walk(func(n *planner.Node) { n.EnvID = env.ID })
	return node
}

// EstimateSQLBatch plans every query under env on the worker pool and
// prices the batch in one vectorized inference pass. Results are in input
// order and bit-identical to calling EstimateSQL per query; the first
// query that fails to parse or plan fails the whole batch.
func (e *CostEstimator) EstimateSQLBatch(env *Environment, sqls []string) ([]float64, error) {
	return e.EstimateSQLBatchCtx(context.Background(), env, sqls)
}

// EstimateSQLBatchCtx is EstimateSQLBatch with cooperative cancellation:
// the planning fan-out stops claiming queries once ctx is cancelled and
// the call returns ctx's error. It is the serving path — qcfe-serve
// routes coalesced request batches through it with the request context.
//
// With a cache attached, each query is first checked against the
// prediction tier; only the misses run the (cache-aware) front half and
// batched inference. Results are bit-identical to the uncached path, and
// so are errors: a query that fails to parse or plan is never cached, so
// the lowest-index failure wins exactly as in the plain fan-out.
//
// The call is exactly FeaturizeSQLBatchCtx followed by PredictFeaturized;
// the pipelined serving path invokes the two halves from different stage
// workers and is therefore bit-identical to this composition by
// construction.
func (e *CostEstimator) EstimateSQLBatchCtx(ctx context.Context, env *Environment, sqls []string) ([]float64, error) {
	fb, err := e.FeaturizeSQLBatchCtx(ctx, env, sqls)
	if err != nil {
		return nil, err
	}
	return e.PredictFeaturized(fb), nil
}

// FeaturizedBatch is the output of FeaturizeSQLBatchCtx: a batch of
// queries carried through the front half (probe + parse/plan/featurize)
// and ready for batched inference. It pins the cache and generation
// observed at featurize time, so a hot swap landing between the two
// halves cannot mix artifacts within one batch: PredictFeaturized writes
// back under the pinned generation and the swapped-in cache's bumped
// generation makes those writes invisible, exactly as with the fused
// EstimateSQLBatchCtx.
type FeaturizedBatch struct {
	env   *Environment
	sqls  []string
	cache *qcache.QueryCache // nil on the uncached path
	gen   uint64
	res   []float64                  // warm values at their original indexes (cached path)
	miss  []int                      // indexes into sqls that missed the prediction tier
	nodes []*planner.Node            // uncached path: annotated plans, one per query
	fps   []*encoding.FeaturizedPlan // cached path: featurized plans, one per miss
	tr    *obs.Trace
}

// Warm reports how many of the batch's queries were answered from the
// prediction tier during the front half (always 0 without a cache).
func (fb *FeaturizedBatch) Warm() int { return len(fb.sqls) - fb.Misses() }

// Misses reports how many queries still need inference.
func (fb *FeaturizedBatch) Misses() int {
	if fb.cache == nil {
		return len(fb.nodes)
	}
	return len(fb.miss)
}

// FeaturizeSQLBatchCtx runs the front half of EstimateSQLBatchCtx —
// prediction-tier probe, then the cache-aware parse/plan/featurize
// fan-out for the misses — and returns the batch ready for
// PredictFeaturized. Splitting the halves lets a pipelined server keep
// featurizing the next batch while this one is in the NN kernel.
//
// A traced request (internal/obs) gets per-stage spans — featurize vs
// predict is exactly the split the pipelined miss path needs to see.
// Untraced calls pay one context lookup and nothing else; span recording
// never changes results. The trace is captured into the batch so the
// back half records its spans even when invoked with a different
// context.
func (e *CostEstimator) FeaturizeSQLBatchCtx(ctx context.Context, env *Environment, sqls []string) (*FeaturizedBatch, error) {
	tr := obs.TraceFrom(ctx)
	c := e.cache.Load()
	if c == nil {
		fstart := time.Now()
		nodes, err := parallel.MapCtx(ctx, len(sqls), 0, func(i int) (*planner.Node, error) {
			return planAnnotated(e.bench.ds, env, sqls[i])
		})
		if err != nil {
			return nil, err
		}
		tr.AddSpan("featurize", "uncached", fstart)
		return &FeaturizedBatch{env: env, sqls: sqls, nodes: nodes, tr: tr}, nil
	}
	// Parity with the uncached fan-out, which surfaces cancellation even
	// when there is nothing to plan: an expired context errors here too,
	// regardless of cache temperature.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := e.cacheGeneration()
	fb := &FeaturizedBatch{env: env, sqls: sqls, cache: c, gen: g, tr: tr}
	fb.res = make([]float64, len(sqls))
	fb.miss = make([]int, 0, len(sqls))
	probeStart := time.Now()
	for i, sql := range sqls {
		if ms, ok := c.GetPrediction(qcache.PredictionKey(env.ID, sql), g); ok {
			fb.res[i] = ms
		} else {
			fb.miss = append(fb.miss, i)
		}
	}
	if tr != nil {
		tr.AddSpan("probe", fmt.Sprintf("%d/%d warm", len(sqls)-len(fb.miss), len(sqls)), probeStart)
	}
	if len(fb.miss) == 0 {
		return fb, nil
	}
	fstart := time.Now()
	fps, err := parallel.MapCtx(ctx, len(fb.miss), 0, func(k int) (*encoding.FeaturizedPlan, error) {
		return e.featurizedPlan(c, g, env, sqls[fb.miss[k]])
	})
	if err != nil {
		return nil, err
	}
	tr.AddSpan("featurize", "", fstart)
	fb.fps = fps
	return fb, nil
}

// PredictFeaturized runs the back half: batched inference over the
// featurized misses, merged with the warm probe results, and the
// write-back into the prediction tier under the batch's pinned
// generation. It is pure compute — no context, cannot fail — which is
// what lets a pipelined server drain in-flight batches on shutdown.
//
// The batch must come from this estimator's FeaturizeSQLBatchCtx;
// results are then bit-identical to the fused EstimateSQLBatchCtx.
func (e *CostEstimator) PredictFeaturized(fb *FeaturizedBatch) []float64 {
	if fb.cache == nil {
		pstart := time.Now()
		ms := e.res.Model.PredictBatch(fb.nodes)
		fb.tr.AddSpan("predict", "", pstart)
		return ms
	}
	if len(fb.miss) == 0 {
		return fb.res
	}
	pstart := time.Now()
	ms := e.res.Model.PredictFeaturizedBatch(fb.fps)
	fb.tr.AddSpan("predict", "", pstart)
	mstart := time.Now()
	for k, i := range fb.miss {
		fb.res[i] = ms[k]
		fb.cache.PutPrediction(qcache.PredictionKey(fb.env.ID, fb.sqls[i]), fb.gen, ms[k])
	}
	fb.tr.AddSpan("merge", "", mstart)
	return fb.res
}

// Evaluate computes q-error and correlation metrics on test samples.
func (e *CostEstimator) Evaluate(test []workload.Sample) Summary {
	return core.Evaluate(e.res.Model, test)
}

// TrainSeconds returns the wall-clock training time.
func (e *CostEstimator) TrainSeconds() float64 { return e.res.TrainTime.Seconds() }

// ModelName returns the downstream model identifier ("mscn", "qppnet",
// or "analytic").
func (e *CostEstimator) ModelName() string { return e.res.Model.Name() }

// BenchmarkName returns the name of the benchmark the estimator was
// trained on.
func (e *CostEstimator) BenchmarkName() string { return e.bench.Name() }

// Benchmark returns the benchmark the estimator prices queries against
// (for a loaded estimator, rebuilt deterministically from the artifact's
// recorded name and seed).
func (e *CostEstimator) Benchmark() *Benchmark { return e.bench }

// Environments returns the environment set the estimator was trained
// across — the environments it can price queries under. Callers must
// treat the slice and its elements as read-only.
func (e *CostEstimator) Environments() []*Environment { return e.envs }

// Save writes the estimator as one versioned binary artifact: magic
// header, format version, benchmark/seed fingerprint, pipeline config,
// environment set, featurizer state (per-environment feature snapshots
// and the reduction mask), and the model weights for every estimator
// type, with a checksum trailer. LoadEstimator on the written bytes
// reproduces EstimateBatch bit for bit — the train-once/serve-many flow
// behind cmd/qcfe-serve.
//
// Optimizer and sampler state are not persisted: a loaded estimator
// serves inference exactly, and further training starts from a fresh
// optimizer (like a newly constructed model), not a byte-level
// continuation of the original run.
func (e *CostEstimator) Save(w io.Writer) error {
	return core.SaveArtifact(w, e.bench.Name(), e.bench.Seed(), e.envs, e.cfg, e.res)
}

// LoadEstimator reads an artifact written by Save. It validates the
// magic, version, and checksum, rebuilds the benchmark dataset from the
// recorded (name, seed) — generation is deterministic — and verifies the
// recorded fingerprint against this build's feature layout, so stale
// artifacts (written against a different dataset generator or feature
// encoding) fail loudly instead of predicting garbage.
func LoadEstimator(r io.Reader) (*CostEstimator, error) {
	a, err := core.LoadArtifact(r)
	if err != nil {
		return nil, fmt.Errorf("qcfe: load estimator: %w", err)
	}
	return &CostEstimator{
		res:   a.Res,
		bench: &Benchmark{ds: a.DS, seed: a.BenchSeed},
		envs:  a.Envs,
		cfg:   a.Cfg,
	}, nil
}

// AnalyticEstimator builds the training-free PGSQL-baseline estimator
// over a benchmark's statistics, priced under envs — without running
// the training pipeline. Because the analytic model has no trainable
// state (core.Analytic's Train is a no-op) and reads only the dataset
// statistics, the returned estimator's predictions are bit-identical
// to a NewPipeline("analytic").Fit(...) estimator over the same
// benchmark: both plan through the shared planAnnotated front half and
// price with pgcost over the same deterministic statistics. The
// multi-tenant degradation ladder (internal/tenant) uses it as the
// rung-3 fallback, which is what makes "degraded answers equal the
// library analytic estimator" a bitwise invariant rather than an
// approximation.
//
// The estimator serves inference only: it has no featurizer, so Save
// reports an error rather than writing a partial artifact.
func AnalyticEstimator(b *Benchmark, envs []*Environment) *CostEstimator {
	return &CostEstimator{
		res:   &core.Result{Model: core.NewAnalytic(b.ds.Stats)},
		bench: b,
		envs:  envs,
		cfg:   core.DefaultConfig("analytic"),
	}
}

// Adapt incrementally retrains the estimator on a sliding window of
// recently labeled queries and returns the adapted estimator as a NEW
// object; the receiver is never mutated and keeps serving unchanged.
// This is the model half of the online-adaptation hot swap
// (internal/online): retrain a copy off to the side, then install it
// atomically with SwapEstimator + serve.Server.SwapEstimator.
func (e *CostEstimator) Adapt(window []workload.Sample, iters int) (*CostEstimator, error) {
	return e.AdaptCtx(context.Background(), window, iters)
}

// AdaptCtx is Adapt with cooperative cancellation (checked between
// training minibatches). The copy is made through the artifact codec —
// a Save→Load round trip — so the adapted estimator shares no mutable
// state with the serving one, training starts from exactly the served
// weights, and the adapted estimator is itself Save-able: its artifact
// hash (the cache generation) reflects the new weights, which is what
// makes the swap invalidate the query cache without any locking. A
// cancelled adapt returns ctx's error and no estimator; the receiver is
// untouched either way.
func (e *CostEstimator) AdaptCtx(ctx context.Context, window []workload.Sample, iters int) (*CostEstimator, error) {
	if len(window) == 0 {
		return nil, fmt.Errorf("qcfe: Adapt requires a non-empty window of labeled samples")
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		return nil, fmt.Errorf("qcfe: adapt: snapshot serving model: %w", err)
	}
	next, err := LoadEstimator(&buf)
	if err != nil {
		return nil, fmt.Errorf("qcfe: adapt: clone serving model: %w", err)
	}
	if err := core.RetrainCtx(ctx, next.res, window, iters); err != nil {
		return nil, err
	}
	return next, nil
}

// SwapEstimator performs the cache half of a hot swap: it hands old's
// attached query cache (if any) over to next — an AttachCache, which
// atomically moves the cache to next's generation so every entry the
// old estimator produced becomes logically invisible in one store —
// and returns next for chaining into the serving swap. When the two
// estimators are byte-identical (a Save→Load of the same artifact)
// their generations coincide and the cache stays warm across the swap;
// when next was retrained, the generation differs and the cache is
// cold for it, exactly as served predictions require. old may keep
// serving in-flight requests safely: its stamps can neither read nor
// pollute next's entries.
func SwapEstimator(old, next *CostEstimator) *CostEstimator {
	if old != nil {
		if c := old.cache.Load(); c != nil {
			next.AttachCache(c)
		}
	}
	return next
}

// ReductionRatio returns the fraction of features pruned (0 when
// reduction was disabled).
func (e *CostEstimator) ReductionRatio() float64 { return e.res.ReductionRatio }

// SnapshotCollectionMs returns the simulated cost of labeling the feature
// snapshot.
func (e *CostEstimator) SnapshotCollectionMs() float64 { return e.res.SnapshotMs }

// Transfer adapts the estimator to a new environment (§V-E): refit only
// the feature snapshot there and retrain briefly on a small labeled set.
func (e *CostEstimator) Transfer(newEnv *Environment, train []workload.Sample, retrainIters int) (*CostEstimator, error) {
	tr, err := core.Transfer(e.res, e.bench.ds, newEnv, train, e.cfg, retrainIters)
	if err != nil {
		return nil, err
	}
	res := &core.Result{Model: tr.Model, F: e.res.F, TrainTime: tr.RetrainTime, SnapshotMs: tr.SnapshotMs}
	return &CostEstimator{res: res, bench: e.bench, envs: []*Environment{newEnv}, cfg: e.cfg}, nil
}

// QError returns the paper's Equation 2 metric for one prediction.
func QError(actualMs, predictMs float64) float64 { return metrics.QError(actualMs, predictMs) }

// Benchmarks lists the supported benchmark names.
func Benchmarks() []string { return datagen.BenchmarkNames() }
