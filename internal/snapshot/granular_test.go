package snapshot

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

// collectTableSamples runs a batch of queries and harvests table-tagged
// operator samples.
func collectTableSamplesFor(t *testing.T, sqls []string) []TableSample {
	t.Helper()
	env := quietEnv()
	pl := planner.New(tpch.Schema, tpch.Stats, env.Knobs)
	ex := engine.New(tpch.DB, env)
	var out []TableSample
	for _, sql := range sqls {
		node, err := pl.Plan(sqlparse.MustParse(sql))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Execute(node); err != nil {
			t.Fatal(err)
		}
		out = append(out, CollectTableSamples(node)...)
	}
	return out
}

func granularWorkload() []string {
	var sqls []string
	for _, q := range []string{"3", "6", "9", "12", "18", "24", "30", "36", "42", "48"} {
		sqls = append(sqls,
			"SELECT * FROM lineitem WHERE l_quantity < "+q,
			"SELECT * FROM part WHERE p_size < "+q,
			"SELECT * FROM customer WHERE c_acctbal > "+q+"00",
		)
	}
	return sqls
}

func TestFitGranularOpLevelMatchesBase(t *testing.T) {
	samples := collectTableSamplesFor(t, granularWorkload())
	gs, err := FitGranular(samples, OpLevel)
	if err != nil {
		t.Fatal(err)
	}
	if gs.NumGroups() != 0 {
		t.Fatalf("op-level fit should have no groups")
	}
	// Formula must match the base snapshot exactly.
	if gs.FormulaMs(planner.SeqScan, "lineitem", 1000, 0) != gs.Base.FormulaMs(planner.SeqScan, 1000, 0) {
		t.Fatalf("op-level granular differs from base")
	}
}

func TestFitGranularTableLevel(t *testing.T) {
	samples := collectTableSamplesFor(t, granularWorkload())
	gs, err := FitGranular(samples, OpTableLevel)
	if err != nil {
		t.Fatal(err)
	}
	if gs.NumGroups() == 0 {
		t.Fatalf("no operator-table groups fitted")
	}
	// The per-table formulas should differ across tables (different row
	// widths → different per-row cost) while staying positive.
	li := gs.FormulaMs(planner.SeqScan, "lineitem", 10_000, 0)
	cu := gs.FormulaMs(planner.SeqScan, "customer", 10_000, 0)
	if li <= 0 || cu <= 0 {
		t.Fatalf("non-positive formulas: %v %v", li, cu)
	}
	if li == cu {
		t.Fatalf("operator-table granularity should specialize per table")
	}
	// Fallback: a table never seen uses the base operator fit.
	ghost := gs.FormulaMs(planner.SeqScan, "region", 10_000, 0)
	base := gs.Base.FormulaMs(planner.SeqScan, 10_000, 0)
	if ghost != base {
		t.Fatalf("unseen table should fall back to operator level")
	}
}

func TestGranularMoreAccuratePerTable(t *testing.T) {
	// The paper's claim: finer granularity → higher fidelity. Measure the
	// per-node prediction error of both levels on a held-out scan.
	samples := collectTableSamplesFor(t, granularWorkload())
	opLevel, err := FitGranular(samples, OpLevel)
	if err != nil {
		t.Fatal(err)
	}
	tabLevel, err := FitGranular(samples, OpTableLevel)
	if err != nil {
		t.Fatal(err)
	}
	env := quietEnv()
	pl := planner.New(tpch.Schema, tpch.Stats, env.Knobs)
	ex := engine.New(tpch.DB, env)
	node, _ := pl.Plan(sqlparse.MustParse("SELECT * FROM customer WHERE c_acctbal > 2000"))
	if _, err := ex.Execute(node); err != nil {
		t.Fatal(err)
	}
	actual := node.ActualMs
	errOf := func(pred float64) float64 {
		d := pred - actual
		if d < 0 {
			d = -d
		}
		return d
	}
	coarse := errOf(opLevel.FormulaMs(planner.SeqScan, "customer", node.ActualIn1, 0))
	fine := errOf(tabLevel.FormulaMs(planner.SeqScan, "customer", node.ActualIn1, 0))
	if fine > coarse*1.05 {
		t.Fatalf("operator-table fit (err %v) should not be worse than operator fit (err %v)", fine, coarse)
	}
}

func TestGranularFeatures(t *testing.T) {
	samples := collectTableSamplesFor(t, granularWorkload())
	gs, err := FitGranular(samples, OpTableLevel)
	if err != nil {
		t.Fatal(err)
	}
	pl := planner.New(tpch.Schema, tpch.Stats, quietEnv().Knobs)
	node, _ := pl.Plan(sqlparse.MustParse("SELECT * FROM lineitem WHERE l_quantity < 9"))
	f := gs.Features(node)
	if len(f) != FeatureDim {
		t.Fatalf("feature dim = %d", len(f))
	}
	if f[0] <= 0 {
		t.Fatalf("formula feature should be positive")
	}
	if gs.Flatten() != gs.Base {
		t.Fatalf("Flatten should expose the base snapshot")
	}
	if gs.Level.String() != "operator-table" || OpLevel.String() != "operator" {
		t.Fatalf("granularity names wrong")
	}
}
