package snapshot

import (
	"context"
	"fmt"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// Builder computes feature snapshots for one dataset in one environment by
// executing labeling queries and fitting the logical cost formulas to the
// per-operator measurements.
type Builder struct {
	DS  *datagen.Dataset
	Env *dbenv.Environment
}

// NewBuilder constructs a snapshot builder.
func NewBuilder(ds *datagen.Dataset, env *dbenv.Environment) *Builder {
	return &Builder{DS: ds, Env: env}
}

// BuildResult carries the fitted snapshot plus the labeling cost, which
// Table V reports (FSO's hours of original queries vs FST's minutes of
// simplified templates).
type BuildResult struct {
	Snapshot *Snapshot
	// CollectionMs is the total simulated execution time of the labeling
	// queries — the quantity the paper reports as collection cost.
	CollectionMs float64
	// QueriesRun counts the labeling queries that planned and executed.
	QueriesRun int
}

// FromQueries executes the given labeling queries across the worker pool
// and fits the snapshot. Queries that fail to plan (e.g. templates
// referencing another schema) are skipped; at least one successful query
// is required. Each query's noise sequence is its index in sqls and the
// fan-in runs in index order, so the fitted snapshot and its collection
// cost are identical at any worker count.
func (b *Builder) FromQueries(sqls []string) (*BuildResult, error) {
	return b.FromQueriesCtx(context.Background(), sqls)
}

// FromQueriesCtx is FromQueries with cooperative cancellation: the
// labeling fan-out stops claiming queries once ctx is cancelled and the
// build returns ctx's error instead of a snapshot fitted on a partial
// sample.
func (b *Builder) FromQueriesCtx(ctx context.Context, sqls []string) (*BuildResult, error) {
	tasks := make([]engine.PoolTask, len(sqls))
	for i, sql := range sqls {
		tasks[i] = engine.PoolTask{Env: b.Env, Seq: int64(i + 1), SQL: sql}
	}
	results, err := engine.ExecutePoolCtx(ctx, b.DS.Schema, b.DS.Stats, b.DS.DB, tasks, 0)
	if err != nil {
		return nil, fmt.Errorf("snapshot: labeling cancelled: %w", err)
	}
	var samples []OpSample
	var totalMs float64
	var ran int
	for _, r := range results {
		if !r.OK {
			continue
		}
		totalMs += r.Ms
		samples = append(samples, CollectSamples(r.Node)...)
		ran++
	}
	if ran == 0 {
		return nil, fmt.Errorf("snapshot: no labeling query executed successfully")
	}
	snap, err := Fit(samples)
	if err != nil {
		return nil, err
	}
	return &BuildResult{Snapshot: snap, CollectionMs: totalMs, QueriesRun: ran}, nil
}

// FromTemplates runs the full FST pipeline (§III-B): generate simplified
// templates from the original workload templates via Algorithm 1, execute
// them, and fit.
func (b *Builder) FromTemplates(originals []*sqlparse.Query, scale int, seed int64) (*BuildResult, error) {
	return b.FromTemplatesCtx(context.Background(), originals, scale, seed)
}

// FromTemplatesCtx is FromTemplates with cooperative cancellation (see
// FromQueriesCtx).
func (b *Builder) FromTemplatesCtx(ctx context.Context, originals []*sqlparse.Query, scale int, seed int64) (*BuildResult, error) {
	gen := NewTemplateGen(b.DS.Schema, b.DS.Stats)
	sqls := gen.Generate(originals, scale, seed)
	if len(sqls) == 0 {
		return nil, fmt.Errorf("snapshot: template generation produced no queries")
	}
	return b.FromQueriesCtx(ctx, sqls)
}
