package snapshot

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/planner"
)

// This file implements the finer granularities the paper's §III-B
// discussion proposes: "it could be extended to more fine-grained levels
// such as the operator-table level … Fine-grained feature snapshots will
// bring higher efficiency, and also increase the collection cost."
//
// A GranularSnapshot fits one coefficient vector per (operator, table)
// group, falling back to the operator-level fit when a group has too few
// labeled samples to regress stably.

// Granularity selects the snapshot fitting level.
type Granularity int

const (
	// OpLevel fits one coefficient vector per operator type (the paper's
	// default design).
	OpLevel Granularity = iota
	// OpTableLevel fits one vector per (operator, table) pair, using the
	// operator-level fit as a fallback for sparse groups.
	OpTableLevel
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	if g == OpTableLevel {
		return "operator-table"
	}
	return "operator"
}

// minGroupSamples is the smallest labeled-group size worth a dedicated
// regression; smaller groups fall back to the operator-level coefficients.
const minGroupSamples = 8

// TableSample extends OpSample with the operator's base table (empty for
// non-scan operators above the leaves).
type TableSample struct {
	OpSample
	Table string
}

// CollectTableSamples extracts per-node samples with table attribution.
func CollectTableSamples(root *planner.Node) []TableSample {
	var out []TableSample
	root.Walk(func(n *planner.Node) {
		out = append(out, TableSample{
			OpSample: OpSample{Op: n.Op, N1: n.ActualIn1, N2: n.ActualIn2, Ms: n.ActualMs},
			Table:    n.Table,
		})
	})
	return out
}

// GranularSnapshot holds operator-table coefficient groups over a base
// operator-level snapshot.
type GranularSnapshot struct {
	Base   *Snapshot
	Level  Granularity
	Groups map[groupKey][]float64
}

type groupKey struct {
	Op    planner.OpType
	Table string
}

// FitGranular fits a snapshot at the requested granularity.
func FitGranular(samples []TableSample, level Granularity) (*GranularSnapshot, error) {
	flat := make([]OpSample, len(samples))
	for i, s := range samples {
		flat[i] = s.OpSample
	}
	base, err := Fit(flat)
	if err != nil {
		return nil, err
	}
	gs := &GranularSnapshot{Base: base, Level: level, Groups: make(map[groupKey][]float64)}
	if level == OpLevel {
		return gs, nil
	}
	byGroup := make(map[groupKey][]OpSample)
	for _, s := range samples {
		if s.Table == "" {
			continue
		}
		k := groupKey{Op: s.Op, Table: s.Table}
		byGroup[k] = append(byGroup[k], s.OpSample)
	}
	for k, ss := range byGroup {
		if len(ss) < minGroupSamples {
			continue
		}
		sub, err := Fit(ss)
		if err != nil {
			return nil, fmt.Errorf("snapshot: group %v/%s: %w", k.Op, k.Table, err)
		}
		gs.Groups[k] = sub.Coeffs[k.Op]
	}
	return gs, nil
}

// coeffsFor returns the most specific coefficient vector for a node.
func (gs *GranularSnapshot) coeffsFor(op planner.OpType, table string) []float64 {
	if gs.Level == OpTableLevel && table != "" {
		if c, ok := gs.Groups[groupKey{Op: op, Table: table}]; ok {
			return c
		}
	}
	return gs.Base.Coeffs[op]
}

// FormulaMs evaluates the logical cost formula with the most specific
// coefficients available.
func (gs *GranularSnapshot) FormulaMs(op planner.OpType, table string, n1, n2 float64) float64 {
	coef := gs.coeffsFor(op, table)
	if coef == nil {
		return 0
	}
	row := designRow(op, n1, n2)
	var t float64
	for i, r := range row {
		t += r * coef[i]
	}
	return t
}

// Features mirrors Snapshot.Features at the finer granularity.
func (gs *GranularSnapshot) Features(n *planner.Node) []float64 {
	out := make([]float64, FeatureDim)
	out[0] = metrics.LogMs(gs.FormulaMs(n.Op, n.Table, n.EstIn1, n.EstIn2))
	coef := gs.coeffsFor(n.Op, n.Table)
	for i := 0; i < CoeffDim && coef != nil; i++ {
		out[1+i] = coeffFeature(coef[i])
	}
	return out
}

// NumGroups reports how many dedicated operator-table fits exist.
func (gs *GranularSnapshot) NumGroups() int { return len(gs.Groups) }

// Flatten produces a plain Snapshot view (base coefficients), letting a
// GranularSnapshot drop into APIs that expect the operator level.
func (gs *GranularSnapshot) Flatten() *Snapshot { return gs.Base }
