package snapshot

import (
	"math/rand"
	"testing"

	"repro/internal/planner"
	"repro/internal/sqlparse"
)

func BenchmarkFitSnapshot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]OpSample, 2000)
	for i := range samples {
		op := planner.OpType(rng.Intn(int(planner.NumOpTypes)))
		n1 := float64(1 + rng.Intn(100_000))
		samples[i] = OpSample{Op: op, N1: n1, N2: float64(1 + rng.Intn(1000)), Ms: n1 * 0.001}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTemplateGeneration(b *testing.B) {
	g := NewTemplateGen(tpch.Schema, tpch.Stats)
	originals := tpchOriginalQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sqls := g.Generate(originals, 2, int64(i))
		if len(sqls) == 0 {
			b.Fatal("no queries")
		}
	}
}

func BenchmarkSnapshotFeatures(b *testing.B) {
	builder := NewBuilder(tpch, quietEnv())
	res, err := builder.FromQueries([]string{"SELECT * FROM lineitem WHERE l_quantity < 30"})
	if err != nil {
		b.Fatal(err)
	}
	pl := planner.New(tpch.Schema, tpch.Stats, quietEnv().Knobs)
	node, _ := pl.Plan(sqlparse.MustParse("SELECT * FROM lineitem WHERE l_quantity < 5"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Snapshot.Features(node)
	}
}
