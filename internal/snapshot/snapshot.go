// Package snapshot implements the paper's feature snapshot (§III): a
// compact per-operator vector of cost coefficients that captures the
// influence of the ignored variables (knobs, hardware, storage structure,
// OS) on query cost.
//
// Coefficients are fitted by non-negative least squares against the
// logical cost formulas of the paper's Table I, using labeled operator
// samples collected from executed plans. The fitted coefficients — and the
// formula's predicted time for a node's estimated cardinalities — are
// appended to every operator's feature vector, so a learned estimator can
// specialize its prediction to the environment without having to infer the
// environment from scratch.
package snapshot

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/planner"
)

// CoeffDim is the number of coefficients kept per operator (c0..c3; the
// nested-loop formula uses all four, the rest are zero-padded).
const CoeffDim = 4

// FeatureDim is the width of the snapshot feature block appended to every
// operator encoding: log formula-predicted time plus the four (scaled)
// coefficients.
const FeatureDim = 1 + CoeffDim

// coeffFeature maps a non-negative ms-per-unit coefficient to a bounded
// network input: log1p of the value in nanoseconds. Coefficients span
// ~1e-4 ms (CPU per tuple on fast hardware) to ~5 ms (random page on
// spinning disk); the log keeps both ends within a few units, which Adam
// handles without divergence.
func coeffFeature(c float64) float64 {
	if c < 0 {
		c = 0
	}
	return math.Log1p(c * 1e6)
}

// OpSample is one labeled operator execution: input cardinalities (the
// paper's n / n1 / n2) and the operator's own measured time.
type OpSample struct {
	Op     planner.OpType
	N1, N2 float64
	Ms     float64
}

// CollectSamples extracts one OpSample per node from an executed
// (annotated) plan tree.
func CollectSamples(root *planner.Node) []OpSample {
	var out []OpSample
	root.Walk(func(n *planner.Node) {
		out = append(out, OpSample{Op: n.Op, N1: n.ActualIn1, N2: n.ActualIn2, Ms: n.ActualMs})
	})
	return out
}

// designRow maps an operator's input cardinalities to the regressor row of
// its logical cost formula (paper Table I):
//
//	Seq/Index Scan, Materialize, Aggregate,
//	Merge/Hash Join            F = c0·n + c1            (joins: n = n1+n2)
//	Sort                       F = c0·n·log n + c1
//	Nested Loop                F = c0·n1·n2 + c1·n1 + c2·n2 + c3
//
// Rows are CoeffDim wide; unused coefficients see a zero regressor.
func designRow(op planner.OpType, n1, n2 float64) []float64 {
	row := make([]float64, CoeffDim)
	switch op {
	case planner.Sort:
		row[0] = n1 * safeLog2(n1)
		row[1] = 1
	case planner.NestedLoop:
		row[0] = n1 * n2
		row[1] = n1
		row[2] = n2
		row[3] = 1
	case planner.HashJoin, planner.MergeJoin:
		row[0] = n1 + n2
		row[1] = 1
	default: // SeqScan, IndexScan, Aggregate, Materialize
		row[0] = n1
		row[1] = 1
	}
	return row
}

// Snapshot holds the fitted per-operator coefficients for one environment.
type Snapshot struct {
	Coeffs map[planner.OpType][]float64 // CoeffDim per operator
	// Samples records how many labeled operators backed each fit.
	Samples map[planner.OpType]int
}

// Fit computes the feature snapshot from labeled operator samples via
// non-negative least squares per operator type. Operators with no samples
// get zero coefficients (their snapshot features stay neutral).
func Fit(samples []OpSample) (*Snapshot, error) {
	byOp := make(map[planner.OpType][]OpSample)
	for _, s := range samples {
		byOp[s.Op] = append(byOp[s.Op], s)
	}
	snap := &Snapshot{
		Coeffs:  make(map[planner.OpType][]float64),
		Samples: make(map[planner.OpType]int),
	}
	for _, op := range planner.AllOpTypes() {
		ss := byOp[op]
		snap.Samples[op] = len(ss)
		if len(ss) == 0 {
			snap.Coeffs[op] = make([]float64, CoeffDim)
			continue
		}
		a := linalg.NewMatrix(len(ss), CoeffDim)
		y := make([]float64, len(ss))
		for i, s := range ss {
			copy(a.Data[i*CoeffDim:(i+1)*CoeffDim], designRow(s.Op, s.N1, s.N2))
			y[i] = s.Ms
		}
		coef, err := linalg.LeastSquaresNonNegative(a, y)
		if err != nil {
			return nil, fmt.Errorf("snapshot: fitting %v: %w", op, err)
		}
		snap.Coeffs[op] = coef
	}
	return snap, nil
}

// FormulaMs evaluates the fitted logical formula for an operator at the
// given (estimated or actual) cardinalities.
func (s *Snapshot) FormulaMs(op planner.OpType, n1, n2 float64) float64 {
	coef := s.Coeffs[op]
	if coef == nil {
		return 0
	}
	row := designRow(op, n1, n2)
	var t float64
	for i, r := range row {
		t += r * coef[i]
	}
	return t
}

// Features returns the snapshot feature block for one plan node, computed
// from the planner's input-cardinality estimates (no execution needed at
// inference time).
func (s *Snapshot) Features(n *planner.Node) []float64 {
	n1, n2 := n.EstIn1, n.EstIn2
	out := make([]float64, FeatureDim)
	out[0] = metrics.LogMs(s.FormulaMs(n.Op, n1, n2))
	coef := s.Coeffs[n.Op]
	for i := 0; i < CoeffDim && coef != nil; i++ {
		out[1+i] = coeffFeature(coef[i])
	}
	return out
}

// FeatureNames labels the snapshot block, aligned with Features.
func FeatureNames() []string {
	return []string{"fs:log_formula_ms", "fs:c0", "fs:c1", "fs:c2", "fs:c3"}
}

func safeLog2(n float64) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(n)
}
