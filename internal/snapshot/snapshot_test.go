package snapshot

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

var tpch = datagen.TPCH(1)

func quietEnv() *dbenv.Environment {
	e := dbenv.Default()
	e.NoiseStd = 0
	return e
}

func TestDesignRows(t *testing.T) {
	r := designRow(planner.SeqScan, 100, 0)
	if r[0] != 100 || r[1] != 1 || r[2] != 0 {
		t.Fatalf("seq scan row = %v", r)
	}
	r = designRow(planner.Sort, 8, 0)
	if r[0] != 8*3 || r[1] != 1 {
		t.Fatalf("sort row = %v (want n·log2 n)", r)
	}
	r = designRow(planner.HashJoin, 10, 20)
	if r[0] != 30 || r[1] != 1 {
		t.Fatalf("hash join row = %v", r)
	}
	r = designRow(planner.NestedLoop, 3, 4)
	if r[0] != 12 || r[1] != 3 || r[2] != 4 || r[3] != 1 {
		t.Fatalf("nested loop row = %v", r)
	}
}

func TestFitRecoversSyntheticCoefficients(t *testing.T) {
	// Generate samples from a known formula and check recovery.
	rng := rand.New(rand.NewSource(1))
	var samples []OpSample
	c0, c1 := 0.002, 1.5
	for i := 0; i < 200; i++ {
		n := float64(10 + rng.Intn(100000))
		samples = append(samples, OpSample{Op: planner.SeqScan, N1: n, Ms: c0*n + c1})
	}
	snap, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	got := snap.Coeffs[planner.SeqScan]
	if math.Abs(got[0]-c0) > 1e-6 || math.Abs(got[1]-c1) > 1e-3 {
		t.Fatalf("recovered %v, want [%v %v 0 0]", got, c0, c1)
	}
	// Formula evaluation round-trips.
	if ms := snap.FormulaMs(planner.SeqScan, 1000, 0); math.Abs(ms-(c0*1000+c1)) > 1e-3 {
		t.Fatalf("FormulaMs = %v", ms)
	}
}

func TestFitEmptyOperatorGetsZeros(t *testing.T) {
	snap, err := Fit([]OpSample{{Op: planner.SeqScan, N1: 10, Ms: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range snap.Coeffs[planner.Sort] {
		if c != 0 {
			t.Fatalf("unfit operator should have zero coefficients: %v", snap.Coeffs[planner.Sort])
		}
	}
	if snap.FormulaMs(planner.Sort, 100, 0) != 0 {
		t.Fatalf("unfit formula should be 0")
	}
}

func TestFitNonNegative(t *testing.T) {
	// Real engine samples must produce non-negative coefficients.
	b := NewBuilder(tpch, quietEnv())
	res, err := b.FromQueries([]string{
		"SELECT * FROM lineitem WHERE l_quantity < 30",
		"SELECT * FROM lineitem WHERE l_quantity < 10 ORDER BY l_extendedprice",
		"SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000 GROUP BY o_orderpriority",
		"SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE o_totalprice > 300000",
		"SELECT * FROM orders WHERE o_orderkey = 55",
	})
	if err != nil {
		t.Fatal(err)
	}
	for op, cs := range res.Snapshot.Coeffs {
		for i, c := range cs {
			if c < 0 {
				t.Fatalf("%v coeff[%d] = %v negative", op, i, c)
			}
		}
	}
	if res.CollectionMs <= 0 || res.QueriesRun != 5 {
		t.Fatalf("collection bookkeeping: ms=%v run=%d", res.CollectionMs, res.QueriesRun)
	}
}

func TestSnapshotPredictsNodeTime(t *testing.T) {
	// A snapshot fitted on scan-heavy labeling queries should predict a
	// fresh seq-scan node's time within a reasonable factor.
	env := quietEnv()
	b := NewBuilder(tpch, env)
	var sqls []string
	for _, q := range []string{"5", "15", "25", "35", "45"} {
		sqls = append(sqls, "SELECT * FROM lineitem WHERE l_quantity < "+q)
		sqls = append(sqls, "SELECT * FROM orders WHERE o_totalprice > "+q+"000")
	}
	res, err := b.FromQueries(sqls)
	if err != nil {
		t.Fatal(err)
	}
	// Execute a held-out scan.
	pl := planner.New(tpch.Schema, tpch.Stats, env.Knobs)
	node, _ := pl.Plan(sqlparse.MustParse("SELECT * FROM lineitem WHERE l_quantity < 20"))
	ex := engine.New(tpch.DB, env)
	if _, err := ex.Execute(node); err != nil {
		t.Fatal(err)
	}
	pred := res.Snapshot.FormulaMs(planner.SeqScan, node.ActualIn1, 0)
	actual := node.ActualMs
	ratio := pred / actual
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("formula predicts %v ms vs actual %v ms (ratio %v)", pred, actual, ratio)
	}
}

func TestSnapshotTracksEnvironment(t *testing.T) {
	// The whole point of the snapshot: coefficients differ across
	// environments for the same workload.
	sqls := []string{
		"SELECT * FROM lineitem WHERE l_quantity < 30",
		"SELECT * FROM lineitem WHERE l_quantity < 10",
	}
	fast := quietEnv()
	slow := quietEnv()
	slow.HW, _ = dbenv.ProfileByName("vm-hdd")
	slow.Knobs.SharedBuffersMB = 32
	fres, err := NewBuilder(tpch, fast).FromQueries(sqls)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := NewBuilder(tpch, slow).FromQueries(sqls)
	if err != nil {
		t.Fatal(err)
	}
	f := fres.Snapshot.FormulaMs(planner.SeqScan, 60000, 0)
	s := sres.Snapshot.FormulaMs(planner.SeqScan, 60000, 0)
	if s <= f*1.5 {
		t.Fatalf("slow-env snapshot (%v) should price scans much higher than fast (%v)", s, f)
	}
}

func TestFeaturesShape(t *testing.T) {
	env := quietEnv()
	b := NewBuilder(tpch, env)
	res, err := b.FromQueries([]string{"SELECT * FROM lineitem WHERE l_quantity < 30"})
	if err != nil {
		t.Fatal(err)
	}
	pl := planner.New(tpch.Schema, tpch.Stats, env.Knobs)
	node, _ := pl.Plan(sqlparse.MustParse("SELECT * FROM lineitem WHERE l_quantity < 5"))
	f := res.Snapshot.Features(node)
	if len(f) != FeatureDim {
		t.Fatalf("feature dim = %d, want %d", len(f), FeatureDim)
	}
	if f[0] <= 0 {
		t.Fatalf("formula feature should be positive for a fitted scan, got %v", f[0])
	}
	if len(FeatureNames()) != FeatureDim {
		t.Fatalf("names misaligned")
	}
}

func tpchOriginalQueries() []*sqlparse.Query {
	sqls := []string{
		"SELECT * FROM lineitem WHERE l_shipdate > 9000 ORDER BY l_shipdate",
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24 GROUP BY l_returnflag",
		"SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE o_totalprice > 100000",
		"SELECT * FROM partsupp WHERE ps_availqty > 500",
	}
	qs := make([]*sqlparse.Query, len(sqls))
	for i, s := range sqls {
		qs[i] = sqlparse.MustParse(s)
	}
	return qs
}

func TestTemplateParsePhase(t *testing.T) {
	g := NewTemplateGen(tpch.Schema, tpch.Stats)
	info := g.ParseTemplates(tpchOriginalQueries())
	if len(info[tplScan]) < 3 {
		t.Fatalf("scan pairs = %v", info[tplScan])
	}
	if len(info[tplJoin]) != 1 || info[tplJoin][0].Table2 != "lineitem" {
		t.Fatalf("join pairs = %v", info[tplJoin])
	}
	if len(info[tplSort]) != 1 || len(info[tplAgg]) != 1 {
		t.Fatalf("sort/agg pairs = %v / %v", info[tplSort], info[tplAgg])
	}
	// Deduplication: parsing the same templates twice must not grow.
	info2 := g.ParseTemplates(append(tpchOriginalQueries(), tpchOriginalQueries()...))
	if len(info2[tplScan]) != len(info[tplScan]) {
		t.Fatalf("dedup failed: %d vs %d", len(info2[tplScan]), len(info[tplScan]))
	}
}

func TestTemplateGenerateAndFill(t *testing.T) {
	g := NewTemplateGen(tpch.Schema, tpch.Stats)
	sqls := g.Generate(tpchOriginalQueries(), 3, 42)
	if len(sqls) == 0 {
		t.Fatalf("no queries generated")
	}
	// Scale multiplies the template count.
	one := g.Generate(tpchOriginalQueries(), 1, 42)
	if len(sqls) != 3*len(one) {
		t.Fatalf("scale scaling wrong: %d vs 3×%d", len(sqls), len(one))
	}
	// Every generated query must parse and plan.
	pl := planner.New(tpch.Schema, tpch.Stats, dbenv.DefaultKnobs())
	for _, sql := range sqls {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", sql, err)
		}
		if _, err := pl.Plan(q); err != nil {
			t.Fatalf("generated query does not plan: %q: %v", sql, err)
		}
	}
	// Deterministic per seed.
	again := g.Generate(tpchOriginalQueries(), 3, 42)
	if strings.Join(sqls, ";") != strings.Join(again, ";") {
		t.Fatalf("generation not deterministic")
	}
}

func TestTemplatesCheaperThanOriginals(t *testing.T) {
	// The §III-B claim: simplified templates cost far less to execute than
	// the original workload while exercising the same operators.
	env := quietEnv()
	b := NewBuilder(tpch, env)

	originals := []string{
		"SELECT COUNT(*) FROM customer, orders, lineitem WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey GROUP BY o_orderpriority ORDER BY o_orderpriority",
		"SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE o_totalprice > 1000 ORDER BY o_totalprice",
	}
	fso, err := b.FromQueries(originals)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []*sqlparse.Query
	for _, s := range originals {
		parsed = append(parsed, sqlparse.MustParse(s))
	}
	fst, err := b.FromTemplates(parsed, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fst.CollectionMs >= fso.CollectionMs {
		t.Fatalf("templates (%.1f ms) should be cheaper than originals (%.1f ms)",
			fst.CollectionMs, fso.CollectionMs)
	}
	// And the template snapshot must still have fitted the join operators.
	join := fst.Snapshot.Samples[planner.HashJoin] + fst.Snapshot.Samples[planner.MergeJoin] + fst.Snapshot.Samples[planner.NestedLoop]
	if join == 0 {
		t.Fatalf("template snapshot saw no join operators")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(tpch, quietEnv())
	if _, err := b.FromQueries([]string{"not sql", "SELECT * FROM ghost"}); err == nil {
		t.Fatalf("expected error when nothing executes")
	}
	if _, err := b.FromTemplates(nil, 2, 1); err == nil {
		t.Fatalf("expected error on empty originals")
	}
}
