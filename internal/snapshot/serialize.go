package snapshot

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/planner"
)

// Encode appends the fitted snapshot to the artifact payload. Coefficients
// are written densely in AllOpTypes order, so the layout is stable across
// runs and independent of map iteration order.
func (s *Snapshot) Encode(e *artifact.Encoder) {
	e.U32(uint32(planner.NumOpTypes))
	e.U32(CoeffDim)
	for _, op := range planner.AllOpTypes() {
		coef := s.Coeffs[op]
		if coef == nil {
			coef = make([]float64, CoeffDim)
		}
		e.F64s(coef)
		e.Int(s.Samples[op])
	}
}

// Decode reads a snapshot written by Encode. It rejects artifacts whose
// operator set or coefficient width disagrees with this build — the
// snapshot block's feature layout would silently shift otherwise.
func Decode(d *artifact.Decoder) (*Snapshot, error) {
	nOps, cDim := int(d.U32()), int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nOps != int(planner.NumOpTypes) || cDim != CoeffDim {
		return nil, fmt.Errorf("snapshot: artifact has %d operators × %d coefficients, this build uses %d × %d",
			nOps, cDim, int(planner.NumOpTypes), CoeffDim)
	}
	s := &Snapshot{
		Coeffs:  make(map[planner.OpType][]float64, nOps),
		Samples: make(map[planner.OpType]int, nOps),
	}
	for _, op := range planner.AllOpTypes() {
		coef := d.F64s()
		n := d.Int()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(coef) != CoeffDim {
			return nil, fmt.Errorf("snapshot: artifact coefficients for %v have width %d, want %d", op, len(coef), CoeffDim)
		}
		s.Coeffs[op] = coef
		s.Samples[op] = n
	}
	return s, nil
}
