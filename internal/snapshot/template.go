package snapshot

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

// tplOperator is the operator class a keyword maps to when parsing the
// original templates (the paper's Table II keyword → operator rows).
type tplOperator int

const (
	tplScan tplOperator = iota // >, like, =, <, in, … → seq/index scan
	tplSort                    // ORDER BY → sort
	tplAgg                     // GROUP BY → aggregate
	tplJoin                    // t1.a = t2.b → merge/hash join, nested loop
)

func (o tplOperator) String() string {
	return [...]string{"scan", "sort", "aggregate", "join"}[o]
}

// tcPair is one (table, column) the operator touches; joins carry both
// sides.
type tcPair struct {
	Table, Column   string
	Table2, Column2 string // joins only
}

// TemplateGen implements the paper's Algorithm 1: it parses the original
// query templates into an operator → (table, column) map, instantiates the
// per-operator parent templates of Table II, and fills them with values
// drawn from the data abstract R (the catalog statistics' value samples).
type TemplateGen struct {
	Schema *catalog.Schema
	Stats  *catalog.Stats
}

// NewTemplateGen builds a generator over one dataset's schema and data
// abstract.
func NewTemplateGen(schema *catalog.Schema, stats *catalog.Stats) *TemplateGen {
	return &TemplateGen{Schema: schema, Stats: stats}
}

// ParseTemplates is Algorithm 1 phase 1 (lines 2–5): gather the
// operator-table-column information from the original query templates.
func (g *TemplateGen) ParseTemplates(originals []*sqlparse.Query) map[tplOperator][]tcPair {
	info := make(map[tplOperator][]tcPair)
	seen := make(map[string]bool)
	add := func(op tplOperator, p tcPair) {
		key := fmt.Sprintf("%d|%s.%s|%s.%s", op, p.Table, p.Column, p.Table2, p.Column2)
		if !seen[key] {
			seen[key] = true
			info[op] = append(info[op], p)
		}
	}
	for _, q := range originals {
		if err := q.Resolve(g.Schema); err != nil {
			continue // skip templates that do not bind to this schema
		}
		for _, p := range q.Preds {
			add(tplScan, tcPair{Table: p.Col.Table, Column: p.Col.Column})
		}
		for _, j := range q.Joins {
			add(tplJoin, tcPair{
				Table: j.Left.Table, Column: j.Left.Column,
				Table2: j.Right.Table, Column2: j.Right.Column,
			})
		}
		for _, o := range q.OrderBy {
			add(tplSort, tcPair{Table: o.Col.Table, Column: o.Col.Column})
		}
		for _, gcol := range q.GroupBy {
			add(tplAgg, tcPair{Table: gcol.Table, Column: gcol.Column})
		}
	}
	return info
}

// simplifiedTemplate is one generated parent template bound to concrete
// tables/columns; Fill turns it into executable SQL.
type simplifiedTemplate struct {
	op   tplOperator
	pair tcPair
	// condCol is the column the WHERE condition constrains; defaults to
	// the pair's column for scans and to a sampled filter column for the
	// other operators.
	condTable, condCol string
}

// GenerateTemplates is Algorithm 1 phase 2 (lines 6–9): instantiate the
// Table II parent templates for every gathered operator-table-column entry.
func (g *TemplateGen) GenerateTemplates(info map[tplOperator][]tcPair) []simplifiedTemplate {
	var out []simplifiedTemplate
	ops := make([]tplOperator, 0, len(info))
	for op := range info {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		for _, p := range info[op] {
			t := simplifiedTemplate{op: op, pair: p, condTable: p.Table, condCol: p.Column}
			if op == tplJoin {
				// Fill the join template's [condition] from a predicate
				// column the original queries actually filter on (phase 1's
				// scan info), not from the join key — join keys are
				// unselective and would make the "simplified" query more
				// expensive than the original.
				if ct, cc, ok := scanCondFor(info, p.Table, p.Table2); ok {
					t.condTable, t.condCol = ct, cc
				}
			}
			out = append(out, t)
		}
	}
	return out
}

// scanCondFor finds a filter column from the scan info belonging to either
// joined table.
func scanCondFor(info map[tplOperator][]tcPair, t1, t2 string) (string, string, bool) {
	for _, sp := range info[tplScan] {
		if sp.Table == t1 || sp.Table == t2 {
			return sp.Table, sp.Column, true
		}
	}
	return "", "", false
}

// Fill is Algorithm 1 phase 3 (lines 10–14): instantiate every template
// `scale` times with random comparison operators and random constants from
// the data abstract, returning executable SQL strings.
func (g *TemplateGen) Fill(templates []simplifiedTemplate, scale int, rng *rand.Rand) []string {
	var out []string
	for s := 0; s < scale; s++ {
		for _, t := range templates {
			if sql, ok := g.fillOne(t, rng); ok {
				out = append(out, sql)
			}
		}
	}
	return out
}

// Generate runs all three phases.
func (g *TemplateGen) Generate(originals []*sqlparse.Query, scale int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	info := g.ParseTemplates(originals)
	return g.Fill(g.GenerateTemplates(info), scale, rng)
}

// fillOne renders one simplified query from a template.
func (g *TemplateGen) fillOne(t simplifiedTemplate, rng *rand.Rand) (string, bool) {
	cond, ok := g.randomCondition(t.condTable, t.condCol, rng)
	if !ok {
		return "", false
	}
	switch t.op {
	case tplScan:
		// SELECT * FROM [table] WHERE [condition]
		return fmt.Sprintf("SELECT * FROM %s WHERE %s", t.pair.Table, cond), true
	case tplSort:
		// SELECT * FROM [table] WHERE [condition] ORDER BY [table.attr]
		return fmt.Sprintf("SELECT * FROM %s WHERE %s ORDER BY %s.%s",
			t.pair.Table, cond, t.pair.Table, t.pair.Column), true
	case tplAgg:
		// SELECT COUNT(*) FROM [table] WHERE [condition] GROUP BY [attribute]
		return fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s GROUP BY %s.%s",
			t.pair.Table, cond, t.pair.Table, t.pair.Column), true
	case tplJoin:
		// SELECT * FROM t1 JOIN t2 ON t1.a = t2.b WHERE [condition]
		// (plus the ORDER BY variant, chosen randomly, per Table II).
		base := fmt.Sprintf("SELECT * FROM %s JOIN %s ON %s.%s = %s.%s WHERE %s",
			t.pair.Table, t.pair.Table2,
			t.pair.Table, t.pair.Column, t.pair.Table2, t.pair.Column2, cond)
		if rng.Intn(2) == 0 {
			base += fmt.Sprintf(" ORDER BY %s.%s", t.pair.Table, t.pair.Column)
		}
		return base, true
	}
	return "", false
}

// randomCondition builds "[table.col] OP value" with a random operator from
// the keyword set and a constant sampled from the data abstract R. No
// operator type is enforced via knobs — the paper deliberately lets the
// optimizer choose (e.g. an indexed column naturally yields index scans).
func (g *TemplateGen) randomCondition(table, column string, rng *rand.Rand) (string, bool) {
	v, ok := g.Stats.RandomValue(table, column, rng)
	if !ok {
		return "", false
	}
	lit := renderLiteral(v)
	if v.IsStr {
		// Strings support =, <>, IN, LIKE.
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%s.%s = %s", table, column, lit), true
		case 1:
			return fmt.Sprintf("%s.%s <> %s", table, column, lit), true
		case 2:
			v2, _ := g.Stats.RandomValue(table, column, rng)
			return fmt.Sprintf("%s.%s IN (%s, %s)", table, column, lit, renderLiteral(v2)), true
		default:
			core := v.S
			if len(core) > 3 {
				core = core[:3]
			}
			return fmt.Sprintf("%s.%s LIKE '%s%%'", table, column, core), true
		}
	}
	ops := []string{"=", "<", ">", "<=", ">=", "IN", "BETWEEN"}
	switch op := ops[rng.Intn(len(ops))]; op {
	case "IN":
		v2, _ := g.Stats.RandomValue(table, column, rng)
		v3, _ := g.Stats.RandomValue(table, column, rng)
		return fmt.Sprintf("%s.%s IN (%s, %s, %s)", table, column, lit, renderLiteral(v2), renderLiteral(v3)), true
	case "BETWEEN":
		v2, _ := g.Stats.RandomValue(table, column, rng)
		lo, hi := v, v2
		if lo.Compare(hi) > 0 {
			lo, hi = hi, lo
		}
		return fmt.Sprintf("%s.%s BETWEEN %s AND %s", table, column, renderLiteral(lo), renderLiteral(hi)), true
	default:
		return fmt.Sprintf("%s.%s %s %s", table, column, op, lit), true
	}
}

// renderLiteral formats a catalog value as a SQL literal. Scaled floats are
// emitted with an explicit decimal point so the parser re-scales them.
func renderLiteral(v catalog.Value) string {
	if v.IsStr {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	if v.IsFloat {
		return fmt.Sprintf("%d.%02d", v.I/100, abs64(v.I%100))
	}
	return fmt.Sprintf("%d", v.I)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
