package engine

import (
	"context"

	"repro/internal/catalog"
	"repro/internal/dbenv"
	"repro/internal/parallel"
	"repro/internal/planner"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// PoolTask is one (environment, query) labeling unit of a fan-out: a SQL
// string to parse, plan, and execute under Env with the given noise
// sequence (by convention, the query's 1-based index within its generated
// list — see ExecuteSeq).
type PoolTask struct {
	Env *dbenv.Environment
	Seq int64
	SQL string
}

// PoolResult is one task's outcome. OK is false when the query failed to
// parse, plan, or execute; the pipeline treats those as skipped.
type PoolResult struct {
	Node *planner.Node
	Ms   float64
	OK   bool
}

// ExecutePool runs labeling tasks across a bounded worker pool and
// returns one result per task, index-aligned. It is the shared fan-out of
// the labeling pipeline — workload collection, snapshot labeling, and the
// Figure 1 probe all funnel through it.
//
// Each worker lazily builds one planner and one executor per environment
// (executors are not shareable across goroutines; the database, stats,
// and environments are read-only under execution). Because every task
// carries its own noise sequence and results land in index-addressed
// slots, the output is bit-identical at any worker count.
func ExecutePool(schema *catalog.Schema, stats *catalog.Stats, db *storage.Database, tasks []PoolTask, workers int) []PoolResult {
	res, _ := ExecutePoolCtx(context.Background(), schema, stats, db, tasks, workers)
	return res
}

// ExecutePoolCtx is ExecutePool with cooperative cancellation: workers
// stop claiming tasks once ctx is cancelled and ExecutePoolCtx returns
// ctx's error together with the partial (index-aligned) results — tasks
// that never ran read as not-OK.
func ExecutePoolCtx(ctx context.Context, schema *catalog.Schema, stats *catalog.Stats, db *storage.Database, tasks []PoolTask, workers int) ([]PoolResult, error) {
	type envState struct {
		pl *planner.Planner
		ex *Executor
	}
	w := parallel.Workers(workers)
	states := make([]map[int]*envState, w)
	results := make([]PoolResult, len(tasks))
	err := parallel.ForEachWorkerCtx(ctx, len(tasks), w, func(worker, ti int) {
		t := tasks[ti]
		if states[worker] == nil {
			states[worker] = make(map[int]*envState)
		}
		st := states[worker][t.Env.ID]
		if st == nil {
			st = &envState{pl: planner.New(schema, stats, t.Env.Knobs), ex: New(db, t.Env)}
			states[worker][t.Env.ID] = st
		}
		q, err := sqlparse.Parse(t.SQL)
		if err != nil {
			return
		}
		node, err := st.pl.Plan(q)
		if err != nil {
			return
		}
		res, err := st.ex.ExecuteSeq(node, t.Seq)
		if err != nil {
			return
		}
		results[ti] = PoolResult{Node: node, Ms: res.TotalMs, OK: true}
	})
	return results, err
}
