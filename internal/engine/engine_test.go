package engine

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

var (
	tpch = datagen.TPCH(1)
	sysb = datagen.Sysbench(1)
)

func runSQL(t *testing.T, ds *datagen.Dataset, env *dbenv.Environment, sql string) (*planner.Node, *Result) {
	t.Helper()
	pl := planner.New(ds.Schema, ds.Stats, env.Knobs)
	n, err := pl.Plan(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	ex := New(ds.DB, env)
	res, err := ex.Execute(n)
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	return n, res
}

func quietEnv() *dbenv.Environment {
	e := dbenv.Default()
	e.NoiseStd = 0
	return e
}

// bruteCount evaluates a single-table conjunctive predicate by brute force.
func bruteCount(ds *datagen.Dataset, table string, pred func(catalog.Row) bool) int {
	h := ds.DB.Heap(table)
	n := 0
	for i := 0; i < h.NumRows(); i++ {
		if pred(h.Get(i)) {
			n++
		}
	}
	return n
}

func TestSeqScanCorrectness(t *testing.T) {
	env := quietEnv()
	node, res := runSQL(t, tpch, env, "SELECT * FROM lineitem WHERE l_quantity < 10")
	qi := tpch.Schema.Table("lineitem").ColIndex("l_quantity")
	want := bruteCount(tpch, "lineitem", func(r catalog.Row) bool { return r[qi].I < 10 })
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	if node.Op != planner.SeqScan {
		t.Fatalf("op = %v", node.Op)
	}
	if node.ActualRows != int64(want) || node.ActualMs <= 0 {
		t.Fatalf("actuals: rows=%d ms=%v", node.ActualRows, node.ActualMs)
	}
}

func TestIndexScanMatchesSeqScan(t *testing.T) {
	env := quietEnv()
	_, idxRes := runSQL(t, tpch, env, "SELECT * FROM orders WHERE o_orderkey = 442")
	noIdx := quietEnv()
	noIdx.Knobs.EnableIndexScan = false
	_, seqRes := runSQL(t, tpch, noIdx, "SELECT * FROM orders WHERE o_orderkey = 442")
	if len(idxRes.Rows) != len(seqRes.Rows) || len(idxRes.Rows) != 1 {
		t.Fatalf("index %d vs seq %d rows", len(idxRes.Rows), len(seqRes.Rows))
	}
	if idxRes.Rows[0][0].I != 442 {
		t.Fatalf("wrong row: %v", idxRes.Rows[0])
	}
}

func TestIndexScanRange(t *testing.T) {
	env := quietEnv()
	node, res := runSQL(t, tpch, env, "SELECT * FROM orders WHERE o_orderdate BETWEEN 8100 AND 8120")
	di := tpch.Schema.Table("orders").ColIndex("o_orderdate")
	want := bruteCount(tpch, "orders", func(r catalog.Row) bool { return r[di].I >= 8100 && r[di].I <= 8120 })
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	if node.Op != planner.IndexScan {
		t.Fatalf("expected IndexScan, got %v", node.Op)
	}
}

func TestIndexScanWithResidualFilter(t *testing.T) {
	env := quietEnv()
	_, res := runSQL(t, tpch, env, "SELECT * FROM orders WHERE o_orderkey < 100 AND o_totalprice > 200000")
	oi := tpch.Schema.Table("orders").ColIndex("o_orderkey")
	pi := tpch.Schema.Table("orders").ColIndex("o_totalprice")
	want := bruteCount(tpch, "orders", func(r catalog.Row) bool {
		return r[oi].I < 100 && r[pi].Float() > 200000
	})
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestHashJoinCorrectness(t *testing.T) {
	env := quietEnv()
	node, res := runSQL(t, tpch, env,
		"SELECT * FROM nation JOIN region ON nation.n_regionkey = region.r_regionkey")
	if len(res.Rows) != 25 {
		t.Fatalf("join rows = %d, want 25 (every nation matches)", len(res.Rows))
	}
	// Verify the join key actually matches on every output row.
	lc := node.ColIndex("nation", "n_regionkey")
	rc := node.ColIndex("region", "r_regionkey")
	for _, r := range res.Rows {
		if r[lc].I != r[rc].I {
			t.Fatalf("join produced non-matching row: %v", r)
		}
	}
}

func TestJoinMethodsAgree(t *testing.T) {
	sql := "SELECT COUNT(*) FROM customer JOIN orders ON customer.c_custkey = orders.o_custkey WHERE c_acctbal > 5000"
	counts := map[string]int64{}
	for name, mut := range map[string]func(*dbenv.Knobs){
		"hash":  func(k *dbenv.Knobs) { k.EnableMergeJoin = false; k.EnableNestLoop = false },
		"merge": func(k *dbenv.Knobs) { k.EnableHashJoin = false; k.EnableNestLoop = false },
		"nl":    func(k *dbenv.Knobs) { k.EnableHashJoin = false; k.EnableMergeJoin = false },
	} {
		env := quietEnv()
		mut(&env.Knobs)
		node, res := runSQL(t, tpch, env, sql)
		if len(res.Rows) != 1 {
			t.Fatalf("%s: agg rows = %d", name, len(res.Rows))
		}
		counts[name] = res.Rows[0][0].I
		_ = node
	}
	if counts["hash"] != counts["merge"] || counts["hash"] != counts["nl"] {
		t.Fatalf("join methods disagree: %v", counts)
	}
	if counts["hash"] == 0 {
		t.Fatalf("join produced zero matches — workload broken")
	}
}

func TestSortOrdersOutput(t *testing.T) {
	env := quietEnv()
	node, res := runSQL(t, tpch, env, "SELECT * FROM orders WHERE o_totalprice > 440000 ORDER BY o_totalprice DESC")
	pi := node.ColIndex("orders", "o_totalprice")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][pi].I > res.Rows[i-1][pi].I {
			t.Fatalf("not descending at %d", i)
		}
	}
	if node.Op != planner.Sort {
		t.Fatalf("root = %v", node.Op)
	}
}

func TestLimitApplied(t *testing.T) {
	env := quietEnv()
	_, res := runSQL(t, tpch, env, "SELECT * FROM orders WHERE o_totalprice > 0 ORDER BY o_totalprice LIMIT 5")
	if len(res.Rows) != 5 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
}

func TestAggregateGroupBy(t *testing.T) {
	env := quietEnv()
	node, res := runSQL(t, tpch, env,
		"SELECT COUNT(*), SUM(l_quantity), MIN(l_quantity), MAX(l_quantity), AVG(l_quantity) FROM lineitem GROUP BY l_returnflag")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3 (A,N,R)", len(res.Rows))
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].I // COUNT(*) is first agg after group col
		if r[3].I < 1 || r[4].I > 50 {
			t.Fatalf("min/max out of domain: %v", r)
		}
		if r[5].I < r[3].I || r[5].I > r[4].I {
			t.Fatalf("avg outside [min,max]: %v", r)
		}
	}
	if total != int64(tpch.DB.Heap("lineitem").NumRows()) {
		t.Fatalf("group counts sum to %d", total)
	}
	_ = node
}

func TestScalarAggregateOnEmptyInput(t *testing.T) {
	env := quietEnv()
	_, res := runSQL(t, tpch, env, "SELECT COUNT(*) FROM orders WHERE o_orderkey = -1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("COUNT over empty = %v", res.Rows)
	}
}

func TestThreeWayJoinCount(t *testing.T) {
	env := quietEnv()
	_, res := runSQL(t, tpch, env,
		"SELECT COUNT(*) FROM customer, orders, lineitem WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey")
	// Every lineitem row joins to exactly one order and one customer.
	if got := res.Rows[0][0].I; got != int64(tpch.DB.Heap("lineitem").NumRows()) {
		t.Fatalf("3-way count = %d, want %d", got, tpch.DB.Heap("lineitem").NumRows())
	}
}

func TestCostRespondsToEnvironment(t *testing.T) {
	sql := "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 30"
	fast := quietEnv()
	fast.HW, _ = dbenv.ProfileByName("i7-12700h-nvme")
	slow := quietEnv()
	slow.HW, _ = dbenv.ProfileByName("vm-hdd")
	slow.Knobs.SharedBuffersMB = 32
	_, fres := runSQL(t, tpch, fast, sql)
	_, sres := runSQL(t, tpch, slow, sql)
	if sres.TotalMs <= fres.TotalMs {
		t.Fatalf("slow env (%v) not slower than fast (%v)", sres.TotalMs, fres.TotalMs)
	}
}

func TestSpillMakesSortSlower(t *testing.T) {
	sql := "SELECT * FROM lineitem WHERE l_quantity > 0 ORDER BY l_extendedprice"
	big := quietEnv()
	big.Knobs.WorkMemKB = 1 << 20
	small := quietEnv()
	small.Knobs.WorkMemKB = 64
	_, bres := runSQL(t, tpch, big, sql)
	_, sres := runSQL(t, tpch, small, sql)
	if sres.TotalMs <= bres.TotalMs {
		t.Fatalf("spilling sort (%v ms) not slower than in-memory (%v ms)", sres.TotalMs, bres.TotalMs)
	}
}

func TestNoiseIsDeterministicPerSequence(t *testing.T) {
	env := dbenv.Default() // noisy
	sql := "SELECT COUNT(*) FROM sbtest1 WHERE k BETWEEN 4000 AND 6000"
	run := func() []float64 {
		pl := planner.New(sysb.Schema, sysb.Stats, env.Knobs)
		ex := New(sysb.DB, env)
		var out []float64
		for i := 0; i < 3; i++ {
			n, err := pl.Plan(sqlparse.MustParse(sql))
			if err != nil {
				t.Fatal(err)
			}
			res, err := ex.Execute(n)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.TotalMs)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise not reproducible: %v vs %v", a, b)
		}
	}
	if a[0] == a[1] && a[1] == a[2] {
		t.Fatalf("noise should vary across query sequence: %v", a)
	}
}

func TestPerNodeTimesSumToTotal(t *testing.T) {
	env := quietEnv()
	node, res := runSQL(t, tpch, env,
		"SELECT COUNT(*) FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE o_totalprice > 100000 GROUP BY o_orderpriority")
	var sum float64
	node.Walk(func(n *planner.Node) { sum += n.ActualMs })
	if diff := sum - res.TotalMs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("node sum %v != total %v", sum, res.TotalMs)
	}
	// Input cardinalities must be recorded for snapshot fitting.
	node.Walk(func(n *planner.Node) {
		if n.ActualIn1 <= 0 && n.ActualRows > 0 {
			t.Fatalf("node %v missing ActualIn1", n.Op)
		}
	})
}

func TestSysbenchPointSelect(t *testing.T) {
	env := quietEnv()
	node, res := runSQL(t, sysb, env, "SELECT * FROM sbtest1 WHERE id = 777")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 777 {
		t.Fatalf("point select = %v", res.Rows)
	}
	if node.Op != planner.IndexScan {
		t.Fatalf("point select should use the PK index")
	}
	// A point select must be orders of magnitude cheaper than a full scan.
	_, scan := runSQL(t, sysb, env, "SELECT COUNT(*) FROM sbtest1 WHERE k > 0")
	if res.TotalMs*50 > scan.TotalMs {
		t.Fatalf("point=%v ms vs scan=%v ms — gap too small", res.TotalMs, scan.TotalMs)
	}
}
