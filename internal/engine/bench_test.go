package engine

import (
	"testing"

	"repro/internal/planner"
	"repro/internal/sqlparse"
)

func benchRun(b *testing.B, sql string) {
	b.Helper()
	env := quietEnv()
	pl := planner.New(tpch.Schema, tpch.Stats, env.Knobs)
	ex := New(tpch.DB, env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node, err := pl.Plan(sqlparse.MustParse(sql))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Execute(node); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeqScanFilter(b *testing.B) {
	benchRun(b, "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 24")
}

func BenchmarkIndexPointLookup(b *testing.B) {
	benchRun(b, "SELECT * FROM orders WHERE o_orderkey = 4242")
}

func BenchmarkHashJoinOrdersLineitem(b *testing.B) {
	benchRun(b, "SELECT COUNT(*) FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE o_totalprice > 300000")
}

func BenchmarkSortTopN(b *testing.B) {
	benchRun(b, "SELECT * FROM orders WHERE o_totalprice > 400000 ORDER BY o_totalprice DESC LIMIT 10")
}

func BenchmarkAggregateGroupBy(b *testing.B) {
	benchRun(b, "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 30 GROUP BY l_returnflag")
}
