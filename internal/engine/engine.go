// Package engine executes physical plans over the storage layer and
// produces both the query results and the simulated execution time that
// labels every training example.
//
// Each operator does real row work (predicate evaluation, hashing,
// sorting, merging) and counts the physical resources it consumes —
// sequential page reads, random page reads, tuples processed, index tuples
// processed, operator startups, and spill pages. The environment
// (internal/dbenv) converts those counts into milliseconds via the paper's
// cost identity  cost = cs·ns + cr·nr + ct·nt + ci·ni + co·no, with the
// environment's cache, spill, and parallelism effects applied. This makes
// the simulated latency respond to the "ignored variables" exactly the way
// the paper's §III-A premise describes.
package engine

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/dbenv"
	"repro/internal/planner"
	"repro/internal/storage"
)

// maxJoinRows bounds materialized join outputs. The engine materializes
// operator outputs (unlike a streaming executor), so a mis-planned join on
// a pathological key distribution could otherwise exhaust memory; queries
// hitting the bound fail cleanly and are skipped by workload collection.
const maxJoinRows = 5_000_000

// Executor runs plans for one dataset inside one environment. It holds no
// mutable state besides the serial-convenience query counter, and DB and
// Env are read-only during execution, so concurrent labeling uses one
// Executor per goroutine over the same database (see internal/parallel).
type Executor struct {
	DB  *storage.Database
	Env *dbenv.Environment

	querySeq int64 // monotone counter feeding Execute's noise stream
}

// New builds an executor.
func New(db *storage.Database, env *dbenv.Environment) *Executor {
	return &Executor{DB: db, Env: env}
}

// Result is one executed query: output rows plus the simulated latency.
// The plan tree passed to Execute is annotated in place with per-node
// actuals (rows, input cardinalities, own time).
type Result struct {
	Rows    []catalog.Row
	TotalMs float64
}

// Execute runs the plan and returns rows plus simulated time. The plan's
// Actual* fields are overwritten. The noise sequence advances with every
// call, so Execute is not safe for concurrent use on one Executor;
// parallel callers use ExecuteSeq with an explicit sequence instead.
func (e *Executor) Execute(root *planner.Node) (*Result, error) {
	e.querySeq++
	return e.ExecuteSeq(root, e.querySeq)
}

// ExecuteSeq runs the plan with an explicit noise sequence number. The
// per-query jitter is derived only from (environment ID, seq), so a caller
// that assigns each query a fixed sequence — e.g. its index in the
// generated workload — gets bit-identical labels no matter how many
// goroutines execute the workload or in what order.
func (e *Executor) ExecuteSeq(root *planner.Node, seq int64) (*Result, error) {
	rows, err := e.exec(root)
	if err != nil {
		return nil, err
	}
	if root.Limit >= 0 && len(rows) > root.Limit {
		rows = rows[:root.Limit]
	}
	// One multiplicative noise factor per query, applied to every node so
	// per-node and total times stay consistent.
	f := e.Env.Noise(seq)
	root.Walk(func(n *planner.Node) { n.ActualMs *= f })
	return &Result{Rows: rows, TotalMs: root.TotalMs()}, nil
}

// counters accumulates one node's physical resource usage.
type counters struct {
	seqPages  int64
	randPages int64
	tuples    int64
	idxTuples int64
	startups  int64
	// relPages is the size of the relation whose pages are being charged;
	// it drives the environment's cache model.
	relPages int64
	parallel bool // scan-type node eligible for parallel speedup
}

// ms converts the counters into simulated milliseconds under e.Env.
func (e *Executor) ms(c counters) float64 {
	rel := c.relPages
	if rel <= 0 {
		rel = 1
	}
	t := float64(c.seqPages)*e.Env.SeqPageCost(rel) +
		float64(c.randPages)*e.Env.RandPageCost(rel) +
		float64(c.tuples)*e.Env.TupleCost() +
		float64(c.idxTuples)*e.Env.IdxTupleCost() +
		float64(c.startups)*e.Env.OperatorCost()
	if c.parallel {
		t /= e.Env.ParallelSpeedup()
	}
	return t
}

func (e *Executor) exec(n *planner.Node) ([]catalog.Row, error) {
	switch n.Op {
	case planner.SeqScan:
		return e.execSeqScan(n)
	case planner.IndexScan:
		return e.execIndexScan(n)
	case planner.Sort:
		return e.execSort(n)
	case planner.HashJoin:
		return e.execHashJoin(n)
	case planner.MergeJoin:
		return e.execMergeJoin(n)
	case planner.NestedLoop:
		return e.execNestedLoop(n)
	case planner.Aggregate:
		return e.execAggregate(n)
	case planner.Materialize:
		return e.execMaterialize(n)
	}
	return nil, fmt.Errorf("engine: unknown operator %v", n.Op)
}

func (e *Executor) execSeqScan(n *planner.Node) ([]catalog.Row, error) {
	h := e.DB.Heap(n.Table)
	if h == nil {
		return nil, fmt.Errorf("engine: no heap for table %q", n.Table)
	}
	var out []catalog.Row
	total := h.NumRows()
	for id := 0; id < total; id++ {
		row := h.Get(id)
		if matchAll(n.Preds, row) {
			out = append(out, row)
		}
	}
	c := counters{
		seqPages: h.NumPages(),
		tuples:   int64(total),
		startups: 1,
		relPages: h.NumPages(),
		parallel: true,
	}
	n.ActualIn1 = float64(total)
	n.ActualRows = int64(len(out))
	n.ActualMs = e.ms(c)
	return out, nil
}

func (e *Executor) execIndexScan(n *planner.Node) ([]catalog.Row, error) {
	h := e.DB.Heap(n.Table)
	idx := e.DB.Index(n.Index)
	if h == nil || idx == nil {
		return nil, fmt.Errorf("engine: missing heap/index for %q/%q", n.Table, n.Index)
	}
	lo, hi, loInc, hiInc := indexBounds(n.IndexPred)
	var out []catalog.Row
	var matches int64
	idx.Range(lo, hi, loInc, hiInc, func(id int) bool {
		matches++
		row := h.Get(id)
		if matchAll(n.Preds, row) {
			out = append(out, row)
		}
		return true
	})
	leafPages := int64(math.Ceil(float64(matches) / 256))
	c := counters{
		randPages: int64(idx.Height()) + leafPages + matches, // descent + leaves + heap fetches
		idxTuples: matches,
		tuples:    matches,
		startups:  1,
		relPages:  h.NumPages(),
	}
	n.ActualIn1 = float64(matches)
	n.ActualRows = int64(len(out))
	n.ActualMs = e.ms(c)
	return out, nil
}

// indexBounds converts the index-serving predicate into a B+tree interval.
func indexBounds(p *planner.CompiledPred) (lo, hi *catalog.Value, loInc, hiInc bool) {
	if p == nil {
		return nil, nil, true, true
	}
	args := p.Src.Args
	switch p.Src.Op {
	case "=":
		return &args[0], &args[0], true, true
	case "<":
		return nil, &args[0], true, false
	case "<=":
		return nil, &args[0], true, true
	case ">":
		return &args[0], nil, false, true
	case ">=":
		return &args[0], nil, true, true
	case "between":
		return &args[0], &args[1], true, true
	}
	return nil, nil, true, true
}

func (e *Executor) execSort(n *planner.Node) ([]catalog.Row, error) {
	in, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	rows := make([]catalog.Row, len(in))
	copy(rows, in)
	cols, desc := n.SortCols, n.SortDesc
	sort.SliceStable(rows, func(i, j int) bool {
		for k, c := range cols {
			cmp := rows[i][c].Compare(rows[j][c])
			if cmp == 0 {
				continue
			}
			if desc[k] {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	nn := int64(len(rows))
	comparisons := nn * ceilLog2(nn)
	bytes := nn * int64(n.EstWidth)
	passes := e.Env.SpillPasses(bytes)
	c := counters{
		tuples:   comparisons,
		seqPages: 2 * int64(passes) * (bytes/storage.PageSize + 1),
		startups: 1,
		relPages: bytes/storage.PageSize + 1,
	}
	n.ActualIn1 = float64(nn)
	n.ActualRows = nn
	n.ActualMs = e.ms(c)
	return rows, nil
}

func (e *Executor) execHashJoin(n *planner.Node) ([]catalog.Row, error) {
	left, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Children[1]) // build side (planner puts smaller here)
	if err != nil {
		return nil, err
	}
	build := make(map[catalog.Value][]catalog.Row, len(right))
	rc := n.JoinRightCol
	for _, r := range right {
		k := r[rc]
		if k.Null {
			continue
		}
		build[k] = append(build[k], r)
	}
	var out []catalog.Row
	var matches int64
	lc := n.JoinLeftCol
	for _, l := range left {
		k := l[lc]
		if k.Null {
			continue
		}
		for _, r := range build[k] {
			matches++
			out = append(out, concatRows(l, r))
		}
		if len(out) > maxJoinRows {
			return nil, fmt.Errorf("engine: hash join result exceeds %d rows", maxJoinRows)
		}
	}
	buildBytes := int64(len(right)) * int64(n.Children[1].EstWidth)
	passes := e.Env.SpillPasses(buildBytes)
	totalBytes := buildBytes + int64(len(left))*int64(n.Children[0].EstWidth)
	c := counters{
		tuples:   int64(len(left)) + int64(len(right)) + matches,
		seqPages: 2 * int64(passes) * (totalBytes/storage.PageSize + 1),
		startups: 1,
		relPages: totalBytes/storage.PageSize + 1,
	}
	n.ActualIn1 = float64(len(left))
	n.ActualIn2 = float64(len(right))
	n.ActualRows = int64(len(out))
	n.ActualMs = e.ms(c)
	return out, nil
}

func (e *Executor) execMergeJoin(n *planner.Node) ([]catalog.Row, error) {
	left, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := e.exec(n.Children[1])
	if err != nil {
		return nil, err
	}
	lc, rc := n.JoinLeftCol, n.JoinRightCol
	var out []catalog.Row
	var matches int64
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		cmp := left[i][lc].Compare(right[j][rc])
		switch {
		case left[i][lc].Null:
			i++
		case right[j][rc].Null:
			j++
		case cmp < 0:
			i++
		case cmp > 0:
			j++
		default:
			// Find the full duplicate group on each side.
			i2 := i
			for i2 < len(left) && left[i2][lc].Compare(right[j][rc]) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(right) && right[j2][rc].Compare(left[i][lc]) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					matches++
					out = append(out, concatRows(left[a], right[b]))
				}
			}
			if len(out) > maxJoinRows {
				return nil, fmt.Errorf("engine: merge join result exceeds %d rows", maxJoinRows)
			}
			i, j = i2, j2
		}
	}
	c := counters{
		tuples:   int64(len(left)) + int64(len(right)) + matches,
		startups: 1,
		relPages: 1,
	}
	n.ActualIn1 = float64(len(left))
	n.ActualIn2 = float64(len(right))
	n.ActualRows = int64(len(out))
	n.ActualMs = e.ms(c)
	return out, nil
}

// execNestedLoop produces nested-loop results and charges quadratic work.
// For equi-joins the matching inner rows are located via a hash table so
// the *computation* stays bounded, while the *charged* tuple count is the
// full n1·n2 scan the operator logically performs — the simulation rule
// documented in DESIGN.md.
func (e *Executor) execNestedLoop(n *planner.Node) ([]catalog.Row, error) {
	outer, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	inner, err := e.exec(n.Children[1])
	if err != nil {
		return nil, err
	}
	rc := n.JoinRightCol
	byKey := make(map[catalog.Value][]catalog.Row, len(inner))
	for _, r := range inner {
		if !r[rc].Null {
			byKey[r[rc]] = append(byKey[r[rc]], r)
		}
	}
	var out []catalog.Row
	lc := n.JoinLeftCol
	for _, l := range outer {
		if l[lc].Null {
			continue
		}
		for _, r := range byKey[l[lc]] {
			out = append(out, concatRows(l, r))
		}
		if len(out) > maxJoinRows {
			return nil, fmt.Errorf("engine: nested loop result exceeds %d rows", maxJoinRows)
		}
	}
	c := counters{
		tuples:   int64(len(outer))*int64(len(inner)) + int64(len(outer)),
		startups: 1,
		relPages: 1,
	}
	n.ActualIn1 = float64(len(outer))
	n.ActualIn2 = float64(len(inner))
	n.ActualRows = int64(len(out))
	n.ActualMs = e.ms(c)
	return out, nil
}

func (e *Executor) execMaterialize(n *planner.Node) ([]catalog.Row, error) {
	in, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	bytes := int64(len(in)) * int64(n.EstWidth)
	passes := e.Env.SpillPasses(bytes)
	c := counters{
		tuples:   int64(len(in)),
		seqPages: 2 * int64(passes) * (bytes/storage.PageSize + 1),
		startups: 1,
		relPages: bytes/storage.PageSize + 1,
	}
	n.ActualIn1 = float64(len(in))
	n.ActualRows = int64(len(in))
	n.ActualMs = e.ms(c)
	return in, nil
}

// aggState accumulates one group.
type aggState struct {
	key    catalog.Row
	counts []int64
	sums   []int64
	mins   []catalog.Value
	maxs   []catalog.Value
}

func (e *Executor) execAggregate(n *planner.Node) ([]catalog.Row, error) {
	in, err := e.exec(n.Children[0])
	if err != nil {
		return nil, err
	}
	groups := make(map[string]*aggState)
	order := make([]string, 0, 16)
	for _, row := range in {
		key := groupKey(row, n.GroupCols)
		st := groups[key]
		if st == nil {
			st = &aggState{
				counts: make([]int64, len(n.Aggs)),
				sums:   make([]int64, len(n.Aggs)),
				mins:   make([]catalog.Value, len(n.Aggs)),
				maxs:   make([]catalog.Value, len(n.Aggs)),
			}
			for _, gc := range n.GroupCols {
				st.key = append(st.key, row[gc])
			}
			for i := range n.Aggs {
				st.mins[i] = catalog.NullVal()
				st.maxs[i] = catalog.NullVal()
			}
			groups[key] = st
			order = append(order, key)
		}
		for ai, a := range n.Aggs {
			if a.Col < 0 { // COUNT(*)
				st.counts[ai]++
				continue
			}
			v := row[a.Col]
			if v.Null {
				continue
			}
			st.counts[ai]++
			st.sums[ai] += v.I
			if st.mins[ai].Null || v.Compare(st.mins[ai]) < 0 {
				st.mins[ai] = v
			}
			if st.maxs[ai].Null || v.Compare(st.maxs[ai]) > 0 {
				st.maxs[ai] = v
			}
		}
	}
	// Scalar aggregate over empty input still yields one row.
	if len(n.GroupCols) == 0 && len(order) == 0 {
		st := &aggState{
			counts: make([]int64, len(n.Aggs)),
			sums:   make([]int64, len(n.Aggs)),
			mins:   make([]catalog.Value, len(n.Aggs)),
			maxs:   make([]catalog.Value, len(n.Aggs)),
		}
		for i := range n.Aggs {
			st.mins[i] = catalog.NullVal()
			st.maxs[i] = catalog.NullVal()
		}
		groups[""] = st
		order = append(order, "")
	}
	out := make([]catalog.Row, 0, len(order))
	for _, key := range order {
		st := groups[key]
		row := append(catalog.Row{}, st.key...)
		for ai, a := range n.Aggs {
			switch a.Func {
			case "count":
				row = append(row, catalog.IntVal(st.counts[ai]))
			case "sum":
				row = append(row, catalog.Value{I: st.sums[ai]})
			case "avg":
				if st.counts[ai] == 0 {
					row = append(row, catalog.NullVal())
				} else {
					row = append(row, catalog.Value{I: st.sums[ai] / st.counts[ai]})
				}
			case "min":
				row = append(row, st.mins[ai])
			case "max":
				row = append(row, st.maxs[ai])
			default:
				return nil, fmt.Errorf("engine: unsupported aggregate %q", a.Func)
			}
		}
		out = append(out, row)
	}
	c := counters{
		tuples:   int64(len(in)),
		startups: 1 + int64(len(out)),
		relPages: 1,
	}
	n.ActualIn1 = float64(len(in))
	n.ActualRows = int64(len(out))
	n.ActualMs = e.ms(c)
	return out, nil
}

func groupKey(row catalog.Row, cols []int) string {
	if len(cols) == 0 {
		return ""
	}
	var b []byte
	for _, c := range cols {
		v := row[c]
		if v.Null {
			b = append(b, 0xFF)
		} else if v.IsStr {
			b = append(b, v.S...)
		} else {
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(v.I>>s))
			}
		}
		b = append(b, 0)
	}
	return string(b)
}

func matchAll(preds []planner.CompiledPred, row catalog.Row) bool {
	for i := range preds {
		if !preds[i].Eval(row[preds[i].Col]) {
			return false
		}
	}
	return true
}

func concatRows(a, b catalog.Row) catalog.Row {
	out := make(catalog.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func ceilLog2(n int64) int64 {
	if n < 2 {
		return 1
	}
	return int64(math.Ceil(math.Log2(float64(n))))
}
