package workload

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

var (
	tpch = datagen.TPCH(1)
	imdb = datagen.IMDB(1)
	sysb = datagen.Sysbench(1)
)

func TestTemplateCounts(t *testing.T) {
	if n := len(TPCHTemplates()); n != 22 {
		t.Fatalf("TPCH templates = %d, want 22", n)
	}
	if n := len(JobLightTemplates()); n != 70 {
		t.Fatalf("job-light templates = %d, want 70", n)
	}
	if n := len(SysbenchTemplates()); n != 14 {
		t.Fatalf("sysbench templates = %d, want 14 (oltp_read_only mix)", n)
	}
	if TemplatesFor("nope") != nil {
		t.Fatalf("unknown benchmark should return nil")
	}
}

// Every template of every benchmark must instantiate, parse, and plan.
func TestAllTemplatesPlanEverywhere(t *testing.T) {
	cases := map[string]*datagen.Dataset{"tpch": tpch, "imdb": imdb, "sysbench": sysb}
	for name, ds := range cases {
		gen := NewGenerator(ds, 42)
		pl := planner.New(ds.Schema, ds.Stats, dbenv.DefaultKnobs())
		for ti, tpl := range TemplatesFor(name) {
			sql, err := gen.Instantiate(tpl)
			if err != nil {
				t.Fatalf("%s template %d: %v", name, ti, err)
			}
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatalf("%s template %d does not parse: %q: %v", name, ti, sql, err)
			}
			if _, err := pl.Plan(q); err != nil {
				t.Fatalf("%s template %d does not plan: %q: %v", name, ti, sql, err)
			}
		}
	}
}

func TestInstantiateAnchorsRanges(t *testing.T) {
	gen := NewGenerator(sysb, 7)
	sql, err := gen.Instantiate("SELECT * FROM sbtest1 WHERE id BETWEEN {sbtest1.id} AND {sbtest1.id+100}")
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(sql, "BETWEEN")
	if i < 0 {
		t.Fatalf("no BETWEEN in %q", sql)
	}
	var lo, hi int64
	if _, err := fmt.Sscanf(sql[i:], "BETWEEN %d AND %d", &lo, &hi); err != nil {
		t.Fatalf("parse bounds from %q: %v", sql, err)
	}
	if hi != lo+100 {
		t.Fatalf("range not anchored at lo+100: %q", sql)
	}
}

func TestInstantiateErrorsOnUnknownColumn(t *testing.T) {
	gen := NewGenerator(sysb, 7)
	if _, err := gen.Instantiate("SELECT * FROM t WHERE x = {ghost.col}"); err == nil {
		t.Fatalf("unknown placeholder should error")
	}
}

func TestGenerateCyclesTemplates(t *testing.T) {
	gen := NewGenerator(sysb, 3)
	sqls, err := gen.Generate([]string{"SELECT * FROM sbtest1 WHERE id = {sbtest1.id}"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sqls) != 5 {
		t.Fatalf("generated %d", len(sqls))
	}
	distinct := make(map[string]bool)
	for _, s := range sqls {
		distinct[s] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("constants not randomized: %v", sqls)
	}
	if _, err := gen.Generate(nil, 3); err == nil {
		t.Fatalf("empty template list should error")
	}
}

func TestCollectSysbench(t *testing.T) {
	envs := dbenv.SampleSet(3, 5)
	lab, err := Collect(sysb, envs, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Samples) != 90 {
		t.Fatalf("samples = %d, want 90", len(lab.Samples))
	}
	envSeen := map[int]int{}
	for _, s := range lab.Samples {
		if s.Ms <= 0 {
			t.Fatalf("non-positive label: %+v", s.SQL)
		}
		if s.Plan == nil || s.Plan.ActualRows < 0 {
			t.Fatalf("plan not annotated")
		}
		envSeen[s.EnvID]++
	}
	if len(envSeen) != 3 {
		t.Fatalf("environments seen: %v", envSeen)
	}
	// Shuffled: first 10 samples should not be single-env.
	first := map[int]bool{}
	for _, s := range lab.Samples[:10] {
		first[s.EnvID] = true
	}
	if len(first) < 2 {
		t.Fatalf("pool does not look shuffled")
	}
}

func TestScaleAndSplit(t *testing.T) {
	envs := dbenv.SampleSet(2, 6)
	lab, err := Collect(sysb, envs, 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	sub := lab.Scale(10)
	if len(sub) != 10 {
		t.Fatalf("Scale = %d", len(sub))
	}
	if len(lab.Scale(10_000)) != 40 {
		t.Fatalf("oversized scale should clamp")
	}
	train, test := Split(sub, 0.8)
	if len(train) != 8 || len(test) != 2 {
		t.Fatalf("split = %d/%d", len(train), len(test))
	}
	plans, ms := PlansAndLabels(train)
	if len(plans) != 8 || len(ms) != 8 || plans[0] == nil {
		t.Fatalf("PlansAndLabels broken")
	}
}

func TestCollectDeterministic(t *testing.T) {
	envs := dbenv.SampleSet(2, 6)
	a, err := Collect(sysb, envs, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(sysb, envs, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].SQL != b.Samples[i].SQL || a.Samples[i].Ms != b.Samples[i].Ms {
			t.Fatalf("collection not deterministic at %d", i)
		}
	}
}

func TestOriginalQueries(t *testing.T) {
	qs, err := OriginalQueries(tpch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 22 {
		t.Fatalf("original queries = %d", len(qs))
	}
}

func TestLabelsVaryAcrossEnvironments(t *testing.T) {
	// Figure 1's premise at the workload level: the same statement mix has
	// very different average cost across environments.
	envs := dbenv.SampleSet(5, 21)
	lab, err := Collect(sysb, envs, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	avg := map[int]float64{}
	cnt := map[int]int{}
	for _, s := range lab.Samples {
		avg[s.EnvID] += s.Ms
		cnt[s.EnvID]++
	}
	min, max := 1e18, 0.0
	for id := range avg {
		v := avg[id] / float64(cnt[id])
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min < 1.5 {
		t.Fatalf("environment spread %.2fx too small (min=%v max=%v)", max/min, min, max)
	}
}
