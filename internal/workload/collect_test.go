package workload

import (
	"fmt"
	"testing"

	"repro/internal/dbenv"
	"repro/internal/planner"
)

// planFingerprint renders every per-node actual of a plan tree, so two
// collections can be compared bit-for-bit.
func planFingerprint(root *planner.Node) string {
	var out string
	root.Walk(func(n *planner.Node) {
		out += fmt.Sprintf("%v|%d|%b|%b|%b;", n.Op, n.ActualRows,
			int64FromFloat(n.ActualIn1), int64FromFloat(n.ActualIn2), int64FromFloat(n.ActualMs))
	})
	return out
}

func int64FromFloat(f float64) uint64 {
	return uint64(f * 1e9) // enough precision to catch any drift
}

// TestCollectWorkerCountInvariant is the determinism regression test for
// the parallel labeling pipeline: the pool collected with 1 worker must be
// bit-identical — same SQL, same labels, same per-node actuals, same order
// — to the pool collected with many workers from the same seed.
func TestCollectWorkerCountInvariant(t *testing.T) {
	envs := dbenv.SampleSet(3, 5)
	serial, err := CollectWorkers(sysb, envs, 20, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := CollectWorkers(sysb, envs, 20, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Samples) != len(serial.Samples) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(par.Samples), len(serial.Samples))
		}
		for i := range serial.Samples {
			a, b := serial.Samples[i], par.Samples[i]
			if a.SQL != b.SQL || a.EnvID != b.EnvID {
				t.Fatalf("workers=%d: sample %d diverged: %q/env%d vs %q/env%d",
					workers, i, a.SQL, a.EnvID, b.SQL, b.EnvID)
			}
			if a.Ms != b.Ms {
				t.Fatalf("workers=%d: sample %d label diverged: %v vs %v", workers, i, a.Ms, b.Ms)
			}
			if planFingerprint(a.Plan) != planFingerprint(b.Plan) {
				t.Fatalf("workers=%d: sample %d plan actuals diverged", workers, i)
			}
		}
	}
}
