// Package workload defines the three benchmark query workloads (TPC-H's 22
// analytical templates, job-light's 70 join queries, Sysbench's
// oltp_read_only mix), instantiates them with constants drawn from the data
// abstract, and collects labeled query executions across environment sets —
// the experimental raw material of the paper's §V.
package workload

// Template placeholders take the form {table.column} (replaced by a random
// value from that column's data abstract) or {table.column+N} (the last
// value drawn for that column in this query, plus N — used for ranges like
// Sysbench's BETWEEN id AND id+100).

// TPCHTemplates returns the 22 TPC-H-analog templates, rewritten into this
// repo's SQL subset (no subqueries/HAVING/arithmetic) while preserving each
// query's operator mix: table set, join shape, predicates, grouping, and
// ordering.
func TPCHTemplates() []string {
	return []string{
		// Q1: pricing summary report.
		"SELECT COUNT(*), SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount) FROM lineitem WHERE l_shipdate <= {lineitem.l_shipdate} GROUP BY l_returnflag ORDER BY l_returnflag",
		// Q2: minimum cost supplier (flattened).
		"SELECT * FROM part JOIN partsupp ON part.p_partkey = partsupp.ps_partkey WHERE p_size = {part.p_size} ORDER BY part.p_retailprice",
		// Q3: shipping priority.
		"SELECT COUNT(*) FROM customer, orders, lineitem WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey AND c_mktsegment = {customer.c_mktsegment} AND o_orderdate < {orders.o_orderdate} GROUP BY o_orderpriority",
		// Q4: order priority checking.
		"SELECT COUNT(*) FROM orders WHERE o_orderdate BETWEEN {orders.o_orderdate} AND {orders.o_orderdate+90} GROUP BY o_orderpriority ORDER BY o_orderpriority",
		// Q5: local supplier volume.
		"SELECT COUNT(*) FROM nation, supplier, lineitem WHERE nation.n_nationkey = supplier.s_nationkey AND supplier.s_suppkey = lineitem.l_suppkey AND n_regionkey = {nation.n_regionkey} GROUP BY n_name",
		// Q6: forecasting revenue change.
		"SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_shipdate BETWEEN {lineitem.l_shipdate} AND {lineitem.l_shipdate+365} AND l_quantity < {lineitem.l_quantity}",
		// Q7: volume shipping.
		"SELECT COUNT(*) FROM nation, customer, orders WHERE nation.n_nationkey = customer.c_nationkey AND customer.c_custkey = orders.o_custkey AND o_orderdate >= {orders.o_orderdate} GROUP BY n_name ORDER BY n_name",
		// Q8: national market share.
		"SELECT COUNT(*) FROM region, nation, supplier WHERE region.r_regionkey = nation.n_regionkey AND nation.n_nationkey = supplier.s_nationkey AND s_acctbal > {supplier.s_acctbal}",
		// Q9: product type profit measure.
		"SELECT COUNT(*), SUM(ps_supplycost) FROM part, partsupp, supplier WHERE part.p_partkey = partsupp.ps_partkey AND partsupp.ps_suppkey = supplier.s_suppkey AND p_brand = {part.p_brand} GROUP BY p_brand",
		// Q10: returned item reporting.
		"SELECT COUNT(*) FROM customer, orders, lineitem WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey AND l_returnflag = 'R' AND o_orderdate >= {orders.o_orderdate} GROUP BY c_nationkey",
		// Q11: important stock identification.
		"SELECT SUM(ps_availqty), COUNT(*) FROM partsupp JOIN supplier ON partsupp.ps_suppkey = supplier.s_suppkey WHERE s_nationkey = {supplier.s_nationkey} GROUP BY ps_partkey",
		// Q12: shipping modes and order priority.
		"SELECT COUNT(*) FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE l_shipmode IN ({lineitem.l_shipmode}, {lineitem.l_shipmode}) AND l_shipdate > {lineitem.l_shipdate} GROUP BY l_shipmode",
		// Q13: customer distribution.
		"SELECT COUNT(*) FROM customer JOIN orders ON customer.c_custkey = orders.o_custkey WHERE o_orderpriority <> {orders.o_orderpriority} GROUP BY c_nationkey",
		// Q14: promotion effect.
		"SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem JOIN part ON lineitem.l_partkey = part.p_partkey WHERE l_shipdate BETWEEN {lineitem.l_shipdate} AND {lineitem.l_shipdate+30}",
		// Q15: top supplier (flattened).
		"SELECT SUM(l_extendedprice), COUNT(*) FROM supplier JOIN lineitem ON supplier.s_suppkey = lineitem.l_suppkey WHERE l_shipdate >= {lineitem.l_shipdate} GROUP BY s_name",
		// Q16: parts/supplier relationship.
		"SELECT COUNT(*) FROM part JOIN partsupp ON part.p_partkey = partsupp.ps_partkey WHERE p_brand <> {part.p_brand} AND p_size IN ({part.p_size}, {part.p_size}, {part.p_size}) GROUP BY p_brand",
		// Q17: small-quantity-order revenue.
		"SELECT AVG(l_extendedprice), COUNT(*) FROM lineitem JOIN part ON lineitem.l_partkey = part.p_partkey WHERE p_brand = {part.p_brand} AND l_quantity < {lineitem.l_quantity}",
		// Q18: large volume customer.
		"SELECT * FROM customer, orders, lineitem WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey AND o_totalprice > {orders.o_totalprice} ORDER BY orders.o_totalprice DESC LIMIT 100",
		// Q19: discounted revenue.
		"SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem JOIN part ON lineitem.l_partkey = part.p_partkey WHERE p_size BETWEEN {part.p_size} AND {part.p_size+15} AND l_quantity BETWEEN {lineitem.l_quantity} AND {lineitem.l_quantity+10}",
		// Q20: potential part promotion.
		"SELECT COUNT(*) FROM supplier JOIN partsupp ON supplier.s_suppkey = partsupp.ps_suppkey WHERE ps_availqty > {partsupp.ps_availqty} GROUP BY s_name ORDER BY s_name",
		// Q21: suppliers who kept orders waiting.
		"SELECT COUNT(*) FROM supplier, lineitem, orders WHERE supplier.s_suppkey = lineitem.l_suppkey AND lineitem.l_orderkey = orders.o_orderkey AND o_orderstatus = 'F' GROUP BY s_name",
		// Q22: global sales opportunity.
		"SELECT COUNT(*), AVG(c_acctbal) FROM customer WHERE c_acctbal > {customer.c_acctbal} GROUP BY c_nationkey ORDER BY c_nationkey",
	}
}

// JobLightTemplates returns the 70-query job-light workload over the IMDB
// schema: title joined with one to four fact tables on movie_id, filtered
// by the standard job-light predicate columns (production_year ranges,
// kind_id, info_type_id, company_type_id, role_id). Every query is a
// COUNT(*), as in the original benchmark.
func JobLightTemplates() []string {
	fact := []struct{ table, pred string }{
		{"movie_info", "movie_info.info_type_id = {movie_info.info_type_id}"},
		{"cast_info", "cast_info.role_id = {cast_info.role_id}"},
		{"movie_keyword", "movie_keyword.keyword_id = {movie_keyword.keyword_id}"},
		{"movie_companies", "movie_companies.company_type_id = {movie_companies.company_type_id}"},
		{"movie_info_idx", "movie_info_idx.info_type_id = {movie_info_idx.info_type_id}"},
	}
	titlePreds := []string{
		"title.production_year > {title.production_year}",
		"title.production_year BETWEEN {title.production_year} AND {title.production_year+10}",
		"title.kind_id = {title.kind_id}",
		"title.production_year < {title.production_year}",
	}
	var out []string
	build := func(tables []int, withFactPred bool, titlePred string) {
		sql := "SELECT COUNT(*) FROM title"
		var conds []string
		for _, fi := range tables {
			sql += ", " + fact[fi].table
			conds = append(conds, "title.id = "+fact[fi].table+".movie_id")
			if withFactPred {
				conds = append(conds, fact[fi].pred)
			}
		}
		if titlePred != "" {
			conds = append(conds, titlePred)
		}
		sql += " WHERE " + joinConds(conds)
		out = append(out, sql)
	}
	// 1-way joins: 5 tables × 4 title predicates, with and without fact
	// predicates for the first two = 5×4 = 20, plus 5 no-fact-pred = 25.
	for fi := range fact {
		for _, tp := range titlePreds {
			build([]int{fi}, true, tp)
		}
		build([]int{fi}, false, titlePreds[0])
	}
	// 2-way joins: all 10 pairs × 2 title predicates = 20. Fact predicates
	// are always present on multi-way joins, as in the real job-light
	// workload — without them fact⋈fact cardinalities through a popular
	// movie explode multiplicatively.
	for a := 0; a < len(fact); a++ {
		for b := a + 1; b < len(fact); b++ {
			build([]int{a, b}, true, titlePreds[0])
			build([]int{a, b}, true, titlePreds[2])
		}
	}
	// 3-way joins: all 10 triples = 10.
	for a := 0; a < len(fact); a++ {
		for b := a + 1; b < len(fact); b++ {
			for c := b + 1; c < len(fact); c++ {
				build([]int{a, b, c}, true, titlePreds[1])
			}
		}
	}
	// 4-way joins: all 5 quadruples = 5.
	for skip := 0; skip < len(fact); skip++ {
		var tables []int
		for fi := range fact {
			if fi != skip {
				tables = append(tables, fi)
			}
		}
		build(tables, true, titlePreds[3])
	}
	// Total: 25 + 20 + 10 + 5 = 60; add 10 pure-title scans for operator
	// coverage, reaching the original workload's 70 queries.
	for i := 0; i < 10; i++ {
		build(nil, false, titlePreds[i%len(titlePreds)])
	}
	return out
}

// SysbenchTemplates returns the oltp_read_only statement mix: ten point
// selects, plus the four range statements (simple range, sum, order,
// grouped — standing in for distinct) per transaction, as in
// oltp_read_only.lua.
func SysbenchTemplates() []string {
	out := make([]string, 0, 14)
	for i := 0; i < 10; i++ {
		out = append(out, "SELECT * FROM sbtest1 WHERE id = {sbtest1.id}")
	}
	out = append(out,
		"SELECT * FROM sbtest1 WHERE id BETWEEN {sbtest1.id} AND {sbtest1.id+100}",
		"SELECT SUM(k) FROM sbtest1 WHERE id BETWEEN {sbtest1.id} AND {sbtest1.id+100}",
		"SELECT * FROM sbtest1 WHERE id BETWEEN {sbtest1.id} AND {sbtest1.id+100} ORDER BY sbtest1.c",
		"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN {sbtest1.id} AND {sbtest1.id+100} GROUP BY sbtest1.c",
	)
	return out
}

// TemplatesFor returns the workload templates of a benchmark by name.
func TemplatesFor(benchmark string) []string {
	switch benchmark {
	case "tpch":
		return TPCHTemplates()
	case "imdb":
		return JobLightTemplates()
	case "sysbench":
		return SysbenchTemplates()
	}
	return nil
}

func joinConds(conds []string) string {
	s := ""
	for i, c := range conds {
		if i > 0 {
			s += " AND "
		}
		s += c
	}
	return s
}
