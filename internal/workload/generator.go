package workload

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datagen"
)

// placeholderRe matches {table.column} and {table.column+delta}.
var placeholderRe = regexp.MustCompile(`\{(\w+)\.(\w+)(\+\d+)?\}`)

// Generator instantiates workload templates with constants drawn from the
// dataset's data abstract (the column value samples in catalog.Stats).
type Generator struct {
	DS  *datagen.Dataset
	rng *rand.Rand
	// lastVal remembers the last constant drawn per column within one
	// query, so {col+N} renders a range anchored at the {col} draw.
	lastVal map[string]catalog.Value
}

// NewGenerator builds a deterministic generator for one dataset.
func NewGenerator(ds *datagen.Dataset, seed int64) *Generator {
	return &Generator{DS: ds, rng: rand.New(rand.NewSource(seed))}
}

// Instantiate fills one template's placeholders.
func (g *Generator) Instantiate(template string) (string, error) {
	g.lastVal = make(map[string]catalog.Value)
	var firstErr error
	out := placeholderRe.ReplaceAllStringFunc(template, func(m string) string {
		parts := placeholderRe.FindStringSubmatch(m)
		table, column, delta := parts[1], parts[2], parts[3]
		key := table + "." + column
		if delta != "" {
			base, ok := g.lastVal[key]
			if !ok {
				base, ok = g.DS.Stats.RandomValue(table, column, g.rng)
				if !ok {
					if firstErr == nil {
						firstErr = fmt.Errorf("workload: no data abstract for %s", key)
					}
					return "0"
				}
			}
			var d int64
			fmt.Sscanf(delta, "+%d", &d)
			if base.IsFloat {
				d *= 100
			}
			return renderValue(catalog.Value{I: base.I + d, IsFloat: base.IsFloat})
		}
		v, ok := g.DS.Stats.RandomValue(table, column, g.rng)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("workload: no data abstract for %s", key)
			}
			return "0"
		}
		g.lastVal[key] = v
		return renderValue(v)
	})
	return out, firstErr
}

// Generate produces n concrete queries by cycling the template list.
func (g *Generator) Generate(templates []string, n int) ([]string, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("workload: no templates")
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sql, err := g.Instantiate(templates[i%len(templates)])
		if err != nil {
			return nil, err
		}
		out = append(out, sql)
	}
	return out, nil
}

// renderValue formats a constant as a SQL literal.
func renderValue(v catalog.Value) string {
	if v.IsStr {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	if v.IsFloat {
		frac := v.I % 100
		if frac < 0 {
			frac = -frac
		}
		return fmt.Sprintf("%d.%02d", v.I/100, frac)
	}
	return fmt.Sprintf("%d", v.I)
}
