package workload

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

// Sample is one labeled query: its annotated physical plan (plan estimates
// plus execution actuals) and the simulated latency under one environment.
type Sample struct {
	SQL   string
	Plan  *planner.Node
	Ms    float64
	EnvID int
}

// Labeled is a labeled query pool for one benchmark across an environment
// set, the unit the paper's experiments slice into scales 2000…10000.
type Labeled struct {
	Dataset *datagen.Dataset
	Envs    []*dbenv.Environment
	Samples []Sample
}

// Collect generates `perEnv` queries per environment from the benchmark's
// templates and executes them across the default worker pool, producing
// the labeled pool. Queries that fail to plan are skipped (and counted); a
// failure rate above 10% is reported as an error since it would bias the
// workload.
func Collect(ds *datagen.Dataset, envs []*dbenv.Environment, perEnv int, seed int64) (*Labeled, error) {
	return CollectWorkersCtx(context.Background(), ds, envs, perEnv, seed, 0)
}

// CollectCtx is Collect with cooperative cancellation: the labeling
// fan-out stops claiming (environment, query) tasks once ctx is
// cancelled and CollectCtx returns ctx's error instead of a partial
// pool.
func CollectCtx(ctx context.Context, ds *datagen.Dataset, envs []*dbenv.Environment, perEnv int, seed int64) (*Labeled, error) {
	return CollectWorkersCtx(ctx, ds, envs, perEnv, seed, 0)
}

// CollectWorkers is Collect with an explicit worker count (<= 0 selects
// the process default). The pool it returns is bit-identical for every
// worker count: queries are generated serially per environment, each
// (env, query-index) pair carries its own noise sequence, and samples are
// assembled in generation order before the seed-keyed shuffle.
func CollectWorkers(ds *datagen.Dataset, envs []*dbenv.Environment, perEnv int, seed int64, workers int) (*Labeled, error) {
	return CollectWorkersCtx(context.Background(), ds, envs, perEnv, seed, workers)
}

// CollectWorkersCtx is CollectWorkers with cooperative cancellation.
func CollectWorkersCtx(ctx context.Context, ds *datagen.Dataset, envs []*dbenv.Environment, perEnv int, seed int64, workers int) (*Labeled, error) {
	templates := TemplatesFor(ds.Name)
	if templates == nil {
		return nil, fmt.Errorf("workload: unknown benchmark %q", ds.Name)
	}
	lab := &Labeled{Dataset: ds, Envs: envs}
	tasks := make([]engine.PoolTask, 0, len(envs)*perEnv)
	for ei, env := range envs {
		gen := NewGenerator(ds, seed+int64(ei)*7919)
		sqls, err := gen.Generate(templates, perEnv)
		if err != nil {
			return nil, err
		}
		for qi, sql := range sqls {
			tasks = append(tasks, engine.PoolTask{Env: env, Seq: int64(qi + 1), SQL: sql})
		}
	}
	results, err := engine.ExecutePoolCtx(ctx, ds.Schema, ds.Stats, ds.DB, tasks, workers)
	if err != nil {
		return nil, fmt.Errorf("workload: collection cancelled: %w", err)
	}

	// Deterministic fan-in: samples in generation order, failures counted.
	var failed int
	for ti, r := range results {
		if !r.OK {
			failed++
			continue
		}
		env := tasks[ti].Env
		r.Node.Walk(func(n *planner.Node) { n.EnvID = env.ID })
		lab.Samples = append(lab.Samples, Sample{SQL: tasks[ti].SQL, Plan: r.Node, Ms: r.Ms, EnvID: env.ID})
	}
	if len(tasks) == 0 || float64(failed)/float64(len(tasks)) > 0.10 {
		return nil, fmt.Errorf("workload: %d/%d labeling queries failed", failed, len(tasks))
	}
	// Shuffle once so scale-N subsets mix environments uniformly.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	rng.Shuffle(len(lab.Samples), func(i, j int) {
		lab.Samples[i], lab.Samples[j] = lab.Samples[j], lab.Samples[i]
	})
	return lab, nil
}

// Scale returns the first n samples of the shuffled pool (the paper's
// scale-2000…10000 subsets).
func (l *Labeled) Scale(n int) []Sample {
	if n > len(l.Samples) {
		n = len(l.Samples)
	}
	return l.Samples[:n]
}

// Split divides samples into train/test with the given train fraction
// (the paper uses 80/20).
func Split(samples []Sample, trainFrac float64) (train, test []Sample) {
	cut := int(float64(len(samples)) * trainFrac)
	return samples[:cut], samples[cut:]
}

// PlansAndLabels unzips samples for model training.
func PlansAndLabels(samples []Sample) ([]*planner.Node, []float64) {
	plans := make([]*planner.Node, len(samples))
	ms := make([]float64, len(samples))
	for i, s := range samples {
		plans[i] = s.Plan
		ms[i] = s.Ms
	}
	return plans, ms
}

// OriginalQueries parses one instantiation of every benchmark template —
// the "original query templates P" input of Algorithm 1.
func OriginalQueries(ds *datagen.Dataset, seed int64) ([]*sqlparse.Query, error) {
	gen := NewGenerator(ds, seed)
	sqls, err := gen.Generate(TemplatesFor(ds.Name), len(TemplatesFor(ds.Name)))
	if err != nil {
		return nil, err
	}
	var out []*sqlparse.Query
	for _, sql := range sqls {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("workload: template instantiation unparseable: %q: %w", sql, err)
		}
		out = append(out, q)
	}
	return out, nil
}
