package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

// Sample is one labeled query: its annotated physical plan (plan estimates
// plus execution actuals) and the simulated latency under one environment.
type Sample struct {
	SQL   string
	Plan  *planner.Node
	Ms    float64
	EnvID int
}

// Labeled is a labeled query pool for one benchmark across an environment
// set, the unit the paper's experiments slice into scales 2000…10000.
type Labeled struct {
	Dataset *datagen.Dataset
	Envs    []*dbenv.Environment
	Samples []Sample
}

// Collect generates `perEnv` queries per environment from the benchmark's
// templates and executes them, producing the labeled pool. Queries that
// fail to plan are skipped (and counted); a failure rate above 10% is
// reported as an error since it would bias the workload.
func Collect(ds *datagen.Dataset, envs []*dbenv.Environment, perEnv int, seed int64) (*Labeled, error) {
	templates := TemplatesFor(ds.Name)
	if templates == nil {
		return nil, fmt.Errorf("workload: unknown benchmark %q", ds.Name)
	}
	lab := &Labeled{Dataset: ds, Envs: envs}
	var failed, attempted int
	for ei, env := range envs {
		gen := NewGenerator(ds, seed+int64(ei)*7919)
		sqls, err := gen.Generate(templates, perEnv)
		if err != nil {
			return nil, err
		}
		pl := planner.New(ds.Schema, ds.Stats, env.Knobs)
		ex := engine.New(ds.DB, env)
		for _, sql := range sqls {
			attempted++
			q, err := sqlparse.Parse(sql)
			if err != nil {
				failed++
				continue
			}
			node, err := pl.Plan(q)
			if err != nil {
				failed++
				continue
			}
			res, err := ex.Execute(node)
			if err != nil {
				failed++
				continue
			}
			node.Walk(func(n *planner.Node) { n.EnvID = env.ID })
			lab.Samples = append(lab.Samples, Sample{SQL: sql, Plan: node, Ms: res.TotalMs, EnvID: env.ID})
		}
	}
	if attempted == 0 || float64(failed)/float64(attempted) > 0.10 {
		return nil, fmt.Errorf("workload: %d/%d labeling queries failed", failed, attempted)
	}
	// Shuffle once so scale-N subsets mix environments uniformly.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	rng.Shuffle(len(lab.Samples), func(i, j int) {
		lab.Samples[i], lab.Samples[j] = lab.Samples[j], lab.Samples[i]
	})
	return lab, nil
}

// Scale returns the first n samples of the shuffled pool (the paper's
// scale-2000…10000 subsets).
func (l *Labeled) Scale(n int) []Sample {
	if n > len(l.Samples) {
		n = len(l.Samples)
	}
	return l.Samples[:n]
}

// Split divides samples into train/test with the given train fraction
// (the paper uses 80/20).
func Split(samples []Sample, trainFrac float64) (train, test []Sample) {
	cut := int(float64(len(samples)) * trainFrac)
	return samples[:cut], samples[cut:]
}

// PlansAndLabels unzips samples for model training.
func PlansAndLabels(samples []Sample) ([]*planner.Node, []float64) {
	plans := make([]*planner.Node, len(samples))
	ms := make([]float64, len(samples))
	for i, s := range samples {
		plans[i] = s.Plan
		ms[i] = s.Ms
	}
	return plans, ms
}

// OriginalQueries parses one instantiation of every benchmark template —
// the "original query templates P" input of Algorithm 1.
func OriginalQueries(ds *datagen.Dataset, seed int64) ([]*sqlparse.Query, error) {
	gen := NewGenerator(ds, seed)
	sqls, err := gen.Generate(TemplatesFor(ds.Name), len(TemplatesFor(ds.Name)))
	if err != nil {
		return nil, err
	}
	var out []*sqlparse.Query
	for _, sql := range sqls {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("workload: template instantiation unparseable: %q: %w", sql, err)
		}
		out = append(out, q)
	}
	return out, nil
}
