package catalog

import (
	"math"
	"math/rand"
	"sort"
)

// ColumnStats summarizes one column for the cardinality estimator: row
// count, distinct count, min/max, null fraction, and an equi-depth
// histogram over numeric values. String columns keep a sorted sample of
// distinct values instead of a histogram.
type ColumnStats struct {
	RowCount     int64
	DistinctVals int64
	NullFrac     float64
	Min, Max     int64 // numeric domain (Value.I encoding)

	// HistBounds holds B+1 boundaries of an equi-depth histogram; each of
	// the B buckets covers RowCount/B rows. Empty for string columns.
	HistBounds []int64

	// Sample holds up to sampleSize representative values; it doubles as
	// the column's entry in the paper's data abstract R, which Algorithm 1
	// draws from when filling simplified templates.
	Sample []Value
}

const (
	histBuckets = 32
	sampleSize  = 64
)

// BuildColumnStats scans the column values and derives statistics.
// The rng drives reservoir sampling so stats are deterministic per seed.
func BuildColumnStats(vals []Value, rng *rand.Rand) *ColumnStats {
	st := &ColumnStats{RowCount: int64(len(vals))}
	if len(vals) == 0 {
		return st
	}
	var nulls int64
	numeric := make([]int64, 0, len(vals))
	distinct := make(map[int64]struct{})
	distinctStr := make(map[string]struct{})
	isStr := false
	for _, v := range vals {
		if v.Null {
			nulls++
			continue
		}
		if v.IsStr {
			isStr = true
			distinctStr[v.S] = struct{}{}
			continue
		}
		numeric = append(numeric, v.I)
		distinct[v.I] = struct{}{}
	}
	st.NullFrac = float64(nulls) / float64(len(vals))

	// Reservoir-sample representative values.
	for i, v := range vals {
		if v.Null {
			continue
		}
		if len(st.Sample) < sampleSize {
			st.Sample = append(st.Sample, v)
		} else if j := rng.Intn(i + 1); j < sampleSize {
			st.Sample[j] = v
		}
	}
	sort.Slice(st.Sample, func(i, j int) bool { return st.Sample[i].Compare(st.Sample[j]) < 0 })

	if isStr {
		st.DistinctVals = int64(len(distinctStr))
		return st
	}
	st.DistinctVals = int64(len(distinct))
	if len(numeric) == 0 {
		return st
	}
	sort.Slice(numeric, func(i, j int) bool { return numeric[i] < numeric[j] })
	st.Min, st.Max = numeric[0], numeric[len(numeric)-1]

	b := histBuckets
	if len(numeric) < b {
		b = len(numeric)
	}
	st.HistBounds = make([]int64, 0, b+1)
	for i := 0; i <= b; i++ {
		idx := i * (len(numeric) - 1) / b
		st.HistBounds = append(st.HistBounds, numeric[idx])
	}
	return st
}

// SelectivityEq estimates the fraction of rows with column == v.
func (st *ColumnStats) SelectivityEq(v Value) float64 {
	if st.RowCount == 0 {
		return 0
	}
	if st.DistinctVals <= 0 {
		return 1
	}
	sel := (1 - st.NullFrac) / float64(st.DistinctVals)
	if !v.IsStr && len(st.HistBounds) > 0 && (v.I < st.Min || v.I > st.Max) {
		return 0
	}
	return sel
}

// SelectivityRange estimates the fraction of rows with lo ≤ column ≤ hi.
// Either bound may be nil (open interval). String columns fall back to a
// fixed default selectivity, mirroring PostgreSQL's DEFAULT_RANGE_SEL.
func (st *ColumnStats) SelectivityRange(lo, hi *Value) float64 {
	const defaultRangeSel = 0.33
	if st.RowCount == 0 {
		return 0
	}
	if len(st.HistBounds) < 2 {
		return defaultRangeSel
	}
	frac := func(v int64) float64 { // fraction of rows strictly below v
		bounds := st.HistBounds
		b := len(bounds) - 1
		if v <= bounds[0] {
			return 0
		}
		if v >= bounds[b] {
			return 1
		}
		i := sort.Search(b, func(k int) bool { return bounds[k+1] >= v })
		lo64, hi64 := bounds[i], bounds[i+1]
		within := 0.5
		if hi64 > lo64 {
			within = float64(v-lo64) / float64(hi64-lo64)
		}
		return (float64(i) + within) / float64(b)
	}
	loF, hiF := 0.0, 1.0
	if lo != nil && !lo.IsStr {
		loF = frac(lo.I)
	}
	if hi != nil && !hi.IsStr {
		hiF = frac(hi.I + 1)
	}
	sel := (hiF - loF) * (1 - st.NullFrac)
	return math.Max(0, math.Min(1, sel))
}

// TableStats aggregates per-column statistics plus the physical sizing the
// cost models need.
type TableStats struct {
	RowCount int64
	Pages    int64 // heap pages, derived from row width and page size
	Columns  map[string]*ColumnStats
}

// Stats is the statistics registry for a whole schema, keyed by table name.
// It also serves as the data abstract R of Algorithm 1: RandomValue draws a
// plausible constant for (table, column) predicates.
type Stats struct {
	Tables map[string]*TableStats
}

// NewStats allocates an empty registry.
func NewStats() *Stats { return &Stats{Tables: make(map[string]*TableStats)} }

// Table returns stats for the named table, or nil.
func (s *Stats) Table(name string) *TableStats { return s.Tables[name] }

// Col returns the stats for table.column, or nil.
func (s *Stats) Col(table, column string) *ColumnStats {
	ts := s.Tables[table]
	if ts == nil {
		return nil
	}
	return ts.Columns[column]
}

// RandomValue draws a representative constant for (table, column) from the
// stored sample — the data-abstract lookup used by Algorithm 1 line 12.
func (s *Stats) RandomValue(table, column string, rng *rand.Rand) (Value, bool) {
	cs := s.Col(table, column)
	if cs == nil || len(cs.Sample) == 0 {
		return Value{}, false
	}
	return cs.Sample[rng.Intn(len(cs.Sample))], true
}
