package catalog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(1), 1},
		{IntVal(5), IntVal(5), 0},
		{StrVal("a"), StrVal("b"), -1},
		{StrVal("b"), StrVal("b"), 0},
		{NullVal(), IntVal(0), -1},
		{IntVal(0), NullVal(), 1},
		{NullVal(), NullVal(), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloatValRoundTrip(t *testing.T) {
	v := FloatVal(12.34)
	if got := v.Float(); got != 12.34 {
		t.Fatalf("Float() = %v, want 12.34", got)
	}
}

func TestValueString(t *testing.T) {
	if NullVal().String() != "NULL" {
		t.Fatal("null render")
	}
	if StrVal("x").String() != "x" {
		t.Fatal("string render")
	}
	if IntVal(7).String() != "7" {
		t.Fatal("int render")
	}
}

func TestTableLookup(t *testing.T) {
	tab := NewTable("t",
		Column{Name: "id", Type: IntCol, Width: 8},
		Column{Name: "name", Type: StringCol, Width: 24},
	)
	if tab.ColIndex("name") != 1 {
		t.Fatalf("ColIndex(name) = %d", tab.ColIndex("name"))
	}
	if tab.ColIndex("missing") != -1 {
		t.Fatalf("missing column should be -1")
	}
	c, ok := tab.Col("id")
	if !ok || c.Type != IntCol {
		t.Fatalf("Col(id) = %v, %v", c, ok)
	}
	if tab.RowWidth() != 32 {
		t.Fatalf("RowWidth = %d, want 32", tab.RowWidth())
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema("test")
	s.AddTable(NewTable("b", Column{Name: "x", Type: IntCol, Width: 8}))
	s.AddTable(NewTable("a", Column{Name: "y", Type: IntCol, Width: 8}))
	s.AddIndex(IndexDef{Name: "a_y_idx", Table: "a", Column: "y"})

	if got := s.TableNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("TableNames = %v", got)
	}
	if _, ok := s.IndexOn("a", "y"); !ok {
		t.Fatalf("IndexOn(a,y) not found")
	}
	if _, ok := s.IndexOn("a", "z"); ok {
		t.Fatalf("IndexOn(a,z) should not exist")
	}
	if s.Table("missing") != nil {
		t.Fatalf("missing table should be nil")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on duplicate table")
		}
	}()
	s := NewSchema("test")
	s.AddTable(NewTable("t"))
	s.AddTable(NewTable("t"))
}

func TestColTypeString(t *testing.T) {
	for ct, want := range map[ColType]string{IntCol: "int", FloatCol: "float", StringCol: "string", DateCol: "date"} {
		if ct.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(ct), ct.String(), want)
		}
	}
}

func uniformColumn(n int, max int64, rng *rand.Rand) []Value {
	vals := make([]Value, n)
	for i := range vals {
		vals[i] = IntVal(rng.Int63n(max))
	}
	return vals
}

func TestBuildColumnStatsBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := uniformColumn(10000, 1000, rng)
	st := BuildColumnStats(vals, rng)
	if st.RowCount != 10000 {
		t.Fatalf("RowCount = %d", st.RowCount)
	}
	if st.DistinctVals < 900 || st.DistinctVals > 1000 {
		t.Fatalf("DistinctVals = %d, want ≈1000", st.DistinctVals)
	}
	if st.Min < 0 || st.Max > 999 {
		t.Fatalf("bounds [%d,%d]", st.Min, st.Max)
	}
	if len(st.HistBounds) != histBuckets+1 {
		t.Fatalf("hist bounds = %d", len(st.HistBounds))
	}
	if len(st.Sample) != sampleSize {
		t.Fatalf("sample = %d", len(st.Sample))
	}
}

func TestBuildColumnStatsEmptyAndNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := BuildColumnStats(nil, rng)
	if st.RowCount != 0 {
		t.Fatalf("empty RowCount = %d", st.RowCount)
	}
	vals := []Value{NullVal(), NullVal(), IntVal(5), IntVal(5)}
	st = BuildColumnStats(vals, rng)
	if st.NullFrac != 0.5 {
		t.Fatalf("NullFrac = %v", st.NullFrac)
	}
	if st.DistinctVals != 1 {
		t.Fatalf("DistinctVals = %d", st.DistinctVals)
	}
}

func TestBuildColumnStatsStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := []Value{StrVal("a"), StrVal("b"), StrVal("b"), StrVal("c")}
	st := BuildColumnStats(vals, rng)
	if st.DistinctVals != 3 {
		t.Fatalf("string NDV = %d", st.DistinctVals)
	}
	if len(st.HistBounds) != 0 {
		t.Fatalf("string column should not build histogram")
	}
}

func TestSelectivityEqUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	st := BuildColumnStats(uniformColumn(20000, 100, rng), rng)
	sel := st.SelectivityEq(IntVal(42))
	if sel < 0.005 || sel > 0.02 {
		t.Fatalf("SelectivityEq = %v, want ≈0.01", sel)
	}
	if st.SelectivityEq(IntVal(-5)) != 0 {
		t.Fatalf("out-of-range equality should be 0")
	}
}

func TestSelectivityRangeUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := BuildColumnStats(uniformColumn(20000, 1000, rng), rng)
	lo, hi := IntVal(250), IntVal(749)
	sel := st.SelectivityRange(&lo, &hi)
	if sel < 0.45 || sel > 0.55 {
		t.Fatalf("SelectivityRange = %v, want ≈0.5", sel)
	}
	sel = st.SelectivityRange(nil, &hi)
	if sel < 0.70 || sel > 0.80 {
		t.Fatalf("open-low SelectivityRange = %v, want ≈0.75", sel)
	}
	sel = st.SelectivityRange(&lo, nil)
	if sel < 0.70 || sel > 0.80 {
		t.Fatalf("open-high SelectivityRange = %v, want ≈0.75", sel)
	}
}

func TestSelectivityRangeBoundsClamped(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := BuildColumnStats(uniformColumn(500, 100, rng), rng)
		lo, hi := IntVal(loRaw%200), IntVal(hiRaw%200)
		sel := st.SelectivityRange(&lo, &hi)
		return sel >= 0 && sel <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsRegistryAndRandomValue(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewStats()
	s.Tables["t"] = &TableStats{
		RowCount: 100,
		Columns: map[string]*ColumnStats{
			"c": BuildColumnStats(uniformColumn(100, 50, rng), rng),
		},
	}
	if s.Col("t", "c") == nil {
		t.Fatalf("Col lookup failed")
	}
	if s.Col("t", "missing") != nil || s.Col("missing", "c") != nil {
		t.Fatalf("missing lookups should be nil")
	}
	v, ok := s.RandomValue("t", "c", rng)
	if !ok {
		t.Fatalf("RandomValue failed")
	}
	if v.I < 0 || v.I >= 50 {
		t.Fatalf("RandomValue out of domain: %v", v)
	}
	if _, ok := s.RandomValue("missing", "c", rng); ok {
		t.Fatalf("RandomValue on missing table should fail")
	}
}
