// Package catalog defines schemas, tables, column types, and the per-column
// statistics that the planner's cardinality estimator and the paper's data
// abstract R (Algorithm 1) are built from.
//
// The catalog is intentionally a plain in-memory structure: the engine
// substrate (internal/storage, internal/engine) owns the data; the catalog
// owns the metadata describing it.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// ColType enumerates the column types supported by the engine substrate.
type ColType int

const (
	// IntCol is a 64-bit integer column.
	IntCol ColType = iota
	// FloatCol is a float64 column (stored scaled in Value.I for ordering;
	// see Value).
	FloatCol
	// StringCol is a variable-length string column.
	StringCol
	// DateCol is a day-granularity date stored as days since epoch.
	DateCol
)

// String implements fmt.Stringer.
func (t ColType) String() string {
	switch t {
	case IntCol:
		return "int"
	case FloatCol:
		return "float"
	case StringCol:
		return "string"
	case DateCol:
		return "date"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Value is a dynamically typed cell. Numeric kinds (int, float, date) store
// their payload in I — floats are scaled by 100 so every comparison is an
// integer comparison, which keeps the executor's hot loop allocation-free.
// Strings live in S.
type Value struct {
	I     int64
	S     string
	IsStr bool
	Null  bool
	// IsFloat marks values produced by FloatVal (I holds value×100); the
	// planner uses it to coerce raw integer literals when they are compared
	// against float columns.
	IsFloat bool
}

// IntVal builds an integer Value.
func IntVal(v int64) Value { return Value{I: v} }

// FloatVal builds a float Value with two fixed decimals of precision.
func FloatVal(v float64) Value { return Value{I: int64(v * 100), IsFloat: true} }

// StrVal builds a string Value.
func StrVal(s string) Value { return Value{S: s, IsStr: true} }

// NullVal builds a NULL Value.
func NullVal() Value { return Value{Null: true} }

// Float interprets a numeric Value scaled back to float64.
func (v Value) Float() float64 { return float64(v.I) / 100 }

// Compare orders two values: -1, 0, +1. NULLs sort first; strings compare
// lexicographically; numerics compare on I.
func (v Value) Compare(o Value) int {
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	if v.IsStr || o.IsStr {
		return strings.Compare(v.S, o.S)
	}
	switch {
	case v.I < o.I:
		return -1
	case v.I > o.I:
		return 1
	}
	return 0
}

// String renders the value for debugging and EXPLAIN output.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	if v.IsStr {
		return v.S
	}
	return fmt.Sprintf("%d", v.I)
}

// Row is one tuple.
type Row []Value

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColType
	// Width is the average stored width in bytes, used by the cost models
	// and the page layout.
	Width int
}

// Table describes one relation: columns plus optional secondary indexes.
type Table struct {
	Name    string
	Columns []Column

	colIdx map[string]int
}

// NewTable builds a table descriptor and its column lookup map.
func NewTable(name string, cols ...Column) *Table {
	t := &Table{Name: name, Columns: cols, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		t.colIdx[c.Name] = i
	}
	return t
}

// ColIndex returns the ordinal of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Col returns the column descriptor by name.
func (t *Table) Col(name string) (Column, bool) {
	i := t.ColIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// RowWidth returns the total average tuple width in bytes.
func (t *Table) RowWidth() int {
	var w int
	for _, c := range t.Columns {
		w += c.Width
	}
	return w
}

// IndexDef declares a secondary index over a single column.
type IndexDef struct {
	Name   string
	Table  string
	Column string
	Unique bool
}

// Schema is a named collection of tables and index definitions.
type Schema struct {
	Name    string
	Tables  map[string]*Table
	Indexes []IndexDef
}

// NewSchema builds an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, Tables: make(map[string]*Table)}
}

// AddTable registers a table; it panics on duplicates (schema construction
// is programmer-controlled, not user input).
func (s *Schema) AddTable(t *Table) {
	if _, dup := s.Tables[t.Name]; dup {
		panic(fmt.Sprintf("catalog: duplicate table %q", t.Name))
	}
	s.Tables[t.Name] = t
}

// AddIndex registers a secondary index definition.
func (s *Schema) AddIndex(def IndexDef) {
	s.Indexes = append(s.Indexes, def)
}

// Table returns the named table or nil.
func (s *Schema) Table(name string) *Table { return s.Tables[name] }

// IndexOn returns the first index on (table, column), if any.
func (s *Schema) IndexOn(table, column string) (IndexDef, bool) {
	for _, ix := range s.Indexes {
		if ix.Table == table && ix.Column == column {
			return ix, true
		}
	}
	return IndexDef{}, false
}

// TableNames returns the sorted table names (stable iteration for encoding
// one-hots and deterministic tests).
func (s *Schema) TableNames() []string {
	names := make([]string, 0, len(s.Tables))
	for n := range s.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IndexNames returns the sorted index names.
func (s *Schema) IndexNames() []string {
	names := make([]string, 0, len(s.Indexes))
	for _, ix := range s.Indexes {
		names = append(names, ix.Name)
	}
	sort.Strings(names)
	return names
}
