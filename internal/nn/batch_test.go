package nn

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func randBatch(rng *rand.Rand, rows, cols int) *linalg.Matrix {
	m := linalg.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestForwardBatchBitIdentical locks in the batch determinism rule: every
// row of ForwardBatch must equal the scalar Forward bit for bit, not just
// within a tolerance — with and without an arena.
func TestForwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP([]int{13, 9, 5, 3}, rng)
	x := randBatch(rng, 17, 13)

	for _, ar := range []*linalg.Arena{nil, {}} {
		yb, cb := m.ForwardBatch(ar, x)
		pb := m.PredictBatch(ar, x)
		for n := 0; n < x.Rows; n++ {
			ys, cs := m.Forward(x.Row(n))
			for k, v := range ys {
				if yb.At(n, k) != v {
					t.Fatalf("row %d out[%d]: batch %v != scalar %v", n, k, yb.At(n, k), v)
				}
				if pb.At(n, k) != v {
					t.Fatalf("row %d PredictBatch[%d]: %v != %v", n, k, pb.At(n, k), v)
				}
			}
			view := cb.Sample(n)
			for li := range cs.Pre {
				for i := range cs.Pre[li] {
					if view.Pre[li][i] != cs.Pre[li][i] {
						t.Fatalf("row %d layer %d pre[%d] differs", n, li, i)
					}
				}
				for i := range cs.Act[li+1] {
					if view.Act[li+1][i] != cs.Act[li+1][i] {
						t.Fatalf("row %d layer %d act[%d] differs", n, li, i)
					}
				}
			}
		}
	}
}

// TestArenaReuseStable reruns the same batched pass after arena Resets
// and requires identical results — stale slab contents must never leak.
func TestArenaReuseStable(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP([]int{11, 7, 2}, rng)
	x := randBatch(rng, 9, 11)
	ar := &linalg.Arena{}
	first, _ := m.ForwardBatch(ar, x)
	want := append([]float64(nil), first.Data...)
	for round := 0; round < 3; round++ {
		ar.Reset()
		y, _ := m.ForwardBatch(ar, x)
		for i, v := range y.Data {
			if v != want[i] {
				t.Fatalf("round %d: output[%d] %v != first run %v", round, i, v, want[i])
			}
		}
	}
}

// TestBackwardBatchBitIdentical runs one minibatch through the batched
// backward pass and through the per-sample scalar path on a clone, and
// requires identical accumulated gradients and identical input gradients.
func TestBackwardBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP([]int{8, 6, 4}, rng)
	ref := m.Clone()
	const batch = 9
	x := randBatch(rng, batch, 8)
	dOut := randBatch(rng, batch, 4)
	// Exercise the g == 0 skip path too, in both halves of a sample pair.
	dOut.Set(3, 1, 0)
	dOut.Set(5, 0, 0)

	_, cb := m.ForwardBatch(nil, x)
	dxb := m.BackwardBatch(nil, cb, dOut)

	dxs := linalg.NewMatrix(batch, 8)
	for n := 0; n < batch; n++ {
		_, c := ref.Forward(x.Row(n))
		dxs.SetRow(n, ref.Backward(c, dOut.Row(n)))
	}

	for i := range dxb.Data {
		if dxb.Data[i] != dxs.Data[i] {
			t.Fatalf("dx[%d]: batch %v != scalar %v", i, dxb.Data[i], dxs.Data[i])
		}
	}
	gradsEqual(t, m, ref)
}

func gradsEqual(t *testing.T, a, b *MLP) {
	t.Helper()
	for li := range a.Layers {
		for i, g := range a.Layers[li].GW {
			if g != b.Layers[li].GW[i] {
				t.Fatalf("layer %d GW[%d]: %v != %v", li, i, g, b.Layers[li].GW[i])
			}
		}
		for i, g := range a.Layers[li].GB {
			if g != b.Layers[li].GB[i] {
				t.Fatalf("layer %d GB[%d]: %v != %v", li, i, g, b.Layers[li].GB[i])
			}
		}
	}
}

// TestGradientOnlyVariants checks that AccumulateBatch /
// BackwardBatchNoInput / BackwardTail / BackwardTailRow produce exactly
// the gradients of the full backward, and that tail gradients equal the
// suffix of the full input gradient.
func TestGradientOnlyVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	full := NewMLP([]int{10, 6, 3}, rng)
	noInput := full.Clone()
	tailed := full.Clone()
	const batch, tail = 7, 4
	x := randBatch(rng, batch, 10)
	dOut := randBatch(rng, batch, 3)
	dOut.Set(2, 0, 0)

	_, cf := full.ForwardBatch(nil, x)
	dxFull := full.BackwardBatch(nil, cf, dOut)

	_, cn := noInput.ForwardBatch(nil, x)
	noInput.BackwardBatchNoInput(nil, cn, dOut)
	gradsEqual(t, noInput, full)

	// One tail backward per row, in row order, must equal one full
	// batched backward in gradient space, and the tail dx must equal the
	// suffix of the full input gradient.
	ar := &linalg.Arena{}
	_, ct := tailed.ForwardBatch(ar, x)
	for n := 0; n < batch; n++ {
		dx := tailed.BackwardTailRow(ar, ct, n, dOut.Row(n), tail)
		for i := 0; i < tail; i++ {
			if dx[i] != dxFull.At(n, 10-tail+i) {
				t.Fatalf("row %d tail dx[%d]: %v != full %v", n, i, dx[i], dxFull.At(n, 10-tail+i))
			}
		}
	}
	gradsEqual(t, tailed, full)

	// tail=0 accumulates the same gradients and returns no input gradient.
	noDx := full.Clone()
	ref := full.Clone()
	_, cz := noDx.ForwardBatch(nil, x)
	_, cr := ref.ForwardBatch(nil, x)
	for n := 0; n < batch; n++ {
		if got := noDx.BackwardTailRow(nil, cz, n, dOut.Row(n), 0); got != nil {
			t.Fatalf("tail=0 should return nil, got %v", got)
		}
		ref.Backward(cr.Sample(n), dOut.Row(n))
	}
	gradsEqual(t, noDx, ref)
}

// TestBatchedTrainingTrajectory trains two clones for several Adam steps —
// one with the batched forward/backward on a reused arena, one sample at
// a time — and requires bit-identical weights afterwards.
func TestBatchedTrainingTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mb := NewMLP([]int{10, 8, 1}, rng)
	ms := mb.Clone()
	optB, optS := NewAdam(0.01), NewAdam(0.01)
	const batch, steps = 6, 12

	data := randBatch(rng, 64, 10)
	targets := make([]float64, 64)
	for i := range targets {
		targets[i] = rng.NormFloat64()
	}
	drawsB := rand.New(rand.NewSource(99))
	drawsS := rand.New(rand.NewSource(99))
	ar := &linalg.Arena{}

	for s := 0; s < steps; s++ {
		// Batched arm.
		ar.Reset()
		x := ar.Alloc(batch, 10)
		y := make([]float64, batch)
		for b := 0; b < batch; b++ {
			j := drawsB.Intn(64)
			x.SetRow(b, data.RowView(j))
			y[b] = targets[j]
		}
		out, c := mb.ForwardBatch(ar, x)
		dOut := ar.Alloc(batch, 1)
		for b := 0; b < batch; b++ {
			dOut.Data[b] = 2 * (out.Data[b] - y[b])
		}
		mb.BackwardBatch(ar, c, dOut)
		optB.Step(LayersOf(mb), batch)

		// Scalar arm, same draws.
		for b := 0; b < batch; b++ {
			j := drawsS.Intn(64)
			out, c := ms.Forward(data.Row(j))
			ms.Backward(c, []float64{2 * (out[0] - targets[j])})
		}
		optS.Step(LayersOf(ms), batch)
	}

	for li := range mb.Layers {
		for i, w := range mb.Layers[li].W {
			if w != ms.Layers[li].W[i] {
				t.Fatalf("step trajectory diverged: layer %d W[%d] %v != %v", li, i, w, ms.Layers[li].W[i])
			}
		}
		for i, b := range mb.Layers[li].B {
			if b != ms.Layers[li].B[i] {
				t.Fatalf("step trajectory diverged: layer %d B[%d] %v != %v", li, i, b, ms.Layers[li].B[i])
			}
		}
	}
}

func TestForwardBatchDimensionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 2, rng)
	for _, fn := range []func(){
		func() { l.ForwardBatch(nil, linalg.NewMatrix(3, 5)) },
		func() { l.BackwardBatch(nil, linalg.NewMatrix(3, 4), linalg.NewMatrix(2, 2)) },
		func() { l.AccumulateBatch(linalg.NewMatrix(3, 4), linalg.NewMatrix(3, 3)) },
		func() { l.BackwardTail(nil, make([]float64, 4), make([]float64, 2), 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("dimension mismatch should panic")
				}
			}()
			fn()
		}()
	}
}
