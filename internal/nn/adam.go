package nn

import "math"

// Adam implements the Adam optimizer over a set of registered Linear
// layers. State is held per layer, so layers may be shared between models
// (as QPPNet shares per-operator subnetworks across plan trees).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t     int
	state map[*Linear]*adamState
}

type adamState struct {
	mW, vW []float64
	mB, vB []float64
}

// NewAdam builds an optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, state: make(map[*Linear]*adamState)}
}

// Step applies one update to every layer using its accumulated gradients
// scaled by 1/batch, then zeroes the gradients.
func (a *Adam) Step(layers []*Linear, batch int) {
	if batch < 1 {
		batch = 1
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	inv := 1 / float64(batch)
	for _, l := range layers {
		st := a.state[l]
		if st == nil {
			st = &adamState{
				mW: make([]float64, len(l.W)), vW: make([]float64, len(l.W)),
				mB: make([]float64, len(l.B)), vB: make([]float64, len(l.B)),
			}
			a.state[l] = st
		}
		a.update(l.W, l.GW, st.mW, st.vW, inv, bc1, bc2)
		a.update(l.B, l.GB, st.mB, st.vB, inv, bc1, bc2)
		l.ZeroGrad()
	}
}

func (a *Adam) update(p, g, m, v []float64, inv, bc1, bc2 float64) {
	for i := range p {
		gi := g[i]*inv + a.WeightDecay*p[i]
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
		p[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
	}
}

// LayersOf collects the Linear layers of several MLPs for a single
// optimizer step.
func LayersOf(ms ...*MLP) []*Linear {
	var out []*Linear
	for _, m := range ms {
		out = append(out, m.Layers...)
	}
	return out
}
