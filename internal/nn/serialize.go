package nn

import (
	"fmt"

	"repro/internal/artifact"
)

// Encode appends the network's architecture and weights to the artifact
// payload. Gradients and optimizer state are deliberately not persisted:
// an artifact is an inference checkpoint, and continued training starts
// from a fresh optimizer (the same state every freshly constructed model
// begins with).
func (m *MLP) Encode(e *artifact.Encoder) {
	e.U32(uint32(len(m.Layers)))
	for _, l := range m.Layers {
		e.U32(uint32(l.In))
		e.U32(uint32(l.Out))
		e.F64s(l.W)
		e.F64s(l.B)
	}
}

// DecodeMLP reads a network written by Encode.
func DecodeMLP(d *artifact.Decoder) (*MLP, error) {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("nn: artifact MLP has %d layers", n)
	}
	m := &MLP{Layers: make([]*Linear, 0, n)}
	for i := 0; i < n; i++ {
		in, out := int(d.U32()), int(d.U32())
		w, b := d.F64s(), d.F64s()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if in < 1 || out < 1 || len(w) != in*out || len(b) != out {
			return nil, fmt.Errorf("nn: artifact layer %d inconsistent: in=%d out=%d |W|=%d |B|=%d", i, in, out, len(w), len(b))
		}
		if i > 0 && in != m.Layers[i-1].Out {
			return nil, fmt.Errorf("nn: artifact layer %d input %d does not match previous output %d", i, in, m.Layers[i-1].Out)
		}
		m.Layers = append(m.Layers, &Linear{
			In: in, Out: out,
			W:  w,
			B:  b,
			GW: make([]float64, len(w)),
			GB: make([]float64, len(b)),
		})
	}
	return m, nil
}
