// Batched (vector-at-a-time) execution for the nn package.
//
// Every routine here is the batch counterpart of a scalar routine in nn.go
// and is **bit-identical** to running that scalar routine once per row:
// each output element and each gradient accumulator receives exactly the
// same floating-point additions in exactly the same order as the scalar
// path. That rule — same accumulation order as the scalar path — is what
// lets PredictBatch/EstimateBatch and minibatch training reproduce the
// per-sample results down to the last bit (see docs/ARCHITECTURE.md,
// "Batched execution"). The speedup comes from amortized allocation,
// weight-row reuse across the batch, and multiple independent
// accumulation chains hiding FP-add latency — never from reordering the
// arithmetic inside one sample.
//
// Batches are row-major linalg.Matrix values, one sample per row. Batch
// routines take a *linalg.Arena for their result and scratch matrices;
// nil falls back to heap allocation. Training loops pass an arena and
// Reset it each iteration, which removes the allocation/GC churn that
// otherwise dominates the batched paths.
package nn

import (
	"fmt"

	"repro/internal/linalg"
)

// alloc returns a matrix with undefined contents (every element must be
// overwritten) from the arena, or from the heap when a is nil.
func alloc(a *linalg.Arena, rows, cols int) *linalg.Matrix {
	if a != nil {
		return a.Alloc(rows, cols)
	}
	return linalg.NewMatrix(rows, cols)
}

// allocZero returns a zeroed matrix usable as an accumulator.
func allocZero(a *linalg.Arena, rows, cols int) *linalg.Matrix {
	if a != nil {
		return a.AllocZero(rows, cols)
	}
	return linalg.NewMatrix(rows, cols)
}

// allocFloats returns an undefined-content scratch slice.
func allocFloats(a *linalg.Arena, n int) []float64 {
	if a != nil {
		return a.Floats(n)
	}
	return make([]float64, n)
}

// ForwardBatch computes y = W·x + b for every row of x. Row n of the
// result is bit-identical to Forward(x.Row(n)).
func (l *Linear) ForwardBatch(a *linalg.Arena, x *linalg.Matrix) *linalg.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear batch forward got %d inputs, want %d", x.Cols, l.In))
	}
	y := alloc(a, x.Rows, l.Out)
	in := l.In
	for o := 0; o < l.Out; o++ {
		// Keeping the o-loop outermost streams each weight row across the
		// whole batch while it is hot in cache. Four samples run through
		// the inner i-loop together: each sample's accumulator is its own
		// serial chain in the scalar path's order (so results stay
		// bit-identical), and the four independent chains hide the FP-add
		// latency that bounds the one-sample dot product.
		row := l.W[o*in : (o+1)*in]
		b := l.B[o]
		n := 0
		for ; n+3 < x.Rows; n += 4 {
			x0 := x.Data[n*in : (n+1)*in]
			x1 := x.Data[(n+1)*in : (n+2)*in]
			x2 := x.Data[(n+2)*in : (n+3)*in]
			x3 := x.Data[(n+3)*in : (n+4)*in]
			s0, s1, s2, s3 := b, b, b, b
			for i, w := range row {
				s0 += w * x0[i]
				s1 += w * x1[i]
				s2 += w * x2[i]
				s3 += w * x3[i]
			}
			y.Data[n*l.Out+o] = s0
			y.Data[(n+1)*l.Out+o] = s1
			y.Data[(n+2)*l.Out+o] = s2
			y.Data[(n+3)*l.Out+o] = s3
		}
		for ; n < x.Rows; n++ {
			xrow := x.Data[n*in : (n+1)*in]
			s := b
			for i, w := range row {
				s += w * xrow[i]
			}
			y.Data[n*l.Out+o] = s
		}
	}
	return y
}

// BackwardBatch accumulates dL/dW and dL/dB over every row of (x, dy) and
// returns dL/dx. Gradient accumulators receive per-row contributions in
// row order — the order the scalar Backward would produce when called once
// per row — so minibatch training is bit-identical to the per-sample loop.
func (l *Linear) BackwardBatch(a *linalg.Arena, x, dy *linalg.Matrix) *linalg.Matrix {
	if x.Cols != l.In || dy.Cols != l.Out || x.Rows != dy.Rows {
		panic(fmt.Sprintf("nn: Linear batch backward got x %dx%d, dy %dx%d for layer %dx%d",
			x.Rows, x.Cols, dy.Rows, dy.Cols, l.In, l.Out))
	}
	dx := allocZero(a, x.Rows, l.In)
	in := l.In
	for o := 0; o < l.Out; o++ {
		row := l.W[o*in : (o+1)*in]
		grow := l.GW[o*in : (o+1)*in]
		n := 0
		// Sample pairs share one pass over the weight row. grow[i] takes
		// the pair's contributions as two separate adds in sample order —
		// the same additions, in the same order, as the scalar path.
		for ; n+1 < x.Rows; n += 2 {
			g0 := dy.Data[n*l.Out+o]
			g1 := dy.Data[(n+1)*l.Out+o]
			if g0 == 0 && g1 == 0 {
				// Matches the scalar skip: a zero upstream gradient adds
				// nothing (not even a signed zero) to any accumulator.
				continue
			}
			if g0 == 0 {
				l.GB[o] += g1
				x1 := x.Data[(n+1)*in : (n+2)*in]
				dx1 := dx.Data[(n+1)*in : (n+2)*in]
				for i, w := range row {
					grow[i] += g1 * x1[i]
					dx1[i] += g1 * w
				}
				continue
			}
			if g1 == 0 {
				l.GB[o] += g0
				x0 := x.Data[n*in : (n+1)*in]
				dx0 := dx.Data[n*in : (n+1)*in]
				for i, w := range row {
					grow[i] += g0 * x0[i]
					dx0[i] += g0 * w
				}
				continue
			}
			l.GB[o] += g0
			l.GB[o] += g1
			x0 := x.Data[n*in : (n+1)*in]
			x1 := x.Data[(n+1)*in : (n+2)*in]
			dx0 := dx.Data[n*in : (n+1)*in]
			dx1 := dx.Data[(n+1)*in : (n+2)*in]
			for i, w := range row {
				t := grow[i] + g0*x0[i]
				grow[i] = t + g1*x1[i]
				dx0[i] += g0 * w
				dx1[i] += g1 * w
			}
		}
		for ; n < x.Rows; n++ {
			g := dy.Data[n*l.Out+o]
			if g == 0 {
				continue
			}
			l.GB[o] += g
			xrow := x.Data[n*in : (n+1)*in]
			dxrow := dx.Data[n*in : (n+1)*in]
			for i, w := range row {
				grow[i] += g * xrow[i]
				dxrow[i] += g * w
			}
		}
	}
	return dx
}

// AccumulateBatch is BackwardBatch without the input-gradient product: it
// accumulates dL/dW and dL/dB only. Callers that discard the returned dx
// of the first layer (set networks, probe models) use this to halve that
// layer's backward memory traffic. Accumulator order is unchanged, so
// training stays bit-identical.
func (l *Linear) AccumulateBatch(x, dy *linalg.Matrix) {
	if x.Cols != l.In || dy.Cols != l.Out || x.Rows != dy.Rows {
		panic(fmt.Sprintf("nn: Linear batch accumulate got x %dx%d, dy %dx%d for layer %dx%d",
			x.Rows, x.Cols, dy.Rows, dy.Cols, l.In, l.Out))
	}
	in := l.In
	for o := 0; o < l.Out; o++ {
		grow := l.GW[o*in : (o+1)*in]
		n := 0
		for ; n+1 < x.Rows; n += 2 {
			g0 := dy.Data[n*l.Out+o]
			g1 := dy.Data[(n+1)*l.Out+o]
			if g0 == 0 && g1 == 0 {
				continue
			}
			if g0 == 0 {
				l.GB[o] += g1
				x1 := x.Data[(n+1)*in : (n+2)*in]
				for i := range grow {
					grow[i] += g1 * x1[i]
				}
				continue
			}
			if g1 == 0 {
				l.GB[o] += g0
				x0 := x.Data[n*in : (n+1)*in]
				for i := range grow {
					grow[i] += g0 * x0[i]
				}
				continue
			}
			l.GB[o] += g0
			l.GB[o] += g1
			x0 := x.Data[n*in : (n+1)*in]
			x1 := x.Data[(n+1)*in : (n+2)*in]
			for i := range grow {
				t := grow[i] + g0*x0[i]
				grow[i] = t + g1*x1[i]
			}
		}
		for ; n < x.Rows; n++ {
			g := dy.Data[n*l.Out+o]
			if g == 0 {
				continue
			}
			l.GB[o] += g
			xrow := x.Data[n*in : (n+1)*in]
			for i := range grow {
				grow[i] += g * xrow[i]
			}
		}
	}
}

// BackwardTail is Backward restricted to the trailing `tail` entries of
// the returned input gradient: dL/dW and dL/dB accumulate identically to
// Backward (same order), but dx is only produced for inputs [In-tail, In)
// — nil when tail is 0. QPPNet consumes only the child-sum suffix of its
// input gradient, and leaves consume nothing.
func (l *Linear) BackwardTail(a *linalg.Arena, x, dy []float64, tail int) []float64 {
	if tail < 0 || tail > l.In {
		panic(fmt.Sprintf("nn: BackwardTail tail %d out of range for In %d", tail, l.In))
	}
	var dx []float64
	if tail > 0 {
		dx = allocFloats(a, tail)
		for i := range dx {
			dx[i] = 0
		}
	}
	head := l.In - tail
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		l.GB[o] += g
		row := l.W[o*l.In : (o+1)*l.In]
		grow := l.GW[o*l.In : (o+1)*l.In]
		for i := range row {
			grow[i] += g * x[i]
		}
		for i, w := range row[head:] {
			dx[i] += g * w
		}
	}
	return dx
}

// backwardRow is the scalar Backward with arena-backed dx, used by the
// per-sample tree backward inside batched training.
func (l *Linear) backwardRow(a *linalg.Arena, x, dy []float64) []float64 {
	dx := allocFloats(a, l.In)
	for i := range dx {
		dx[i] = 0
	}
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		l.GB[o] += g
		row := l.W[o*l.In : (o+1)*l.In]
		grow := l.GW[o*l.In : (o+1)*l.In]
		for i := range row {
			grow[i] += g * x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// BatchCache is the batched analogue of Cache: Act[0] is the input batch,
// Act[i] the activation batch after layer i, Pre[i] the pre-activation
// batch of layer i. Sample(n) exposes one row as a scalar Cache.
type BatchCache struct {
	Act []*linalg.Matrix
	Pre []*linalg.Matrix
}

// Sample returns row n of the batch as a scalar Cache of row views (no
// data copying). The views alias the batch matrices; callers must treat
// them as read-only, which every consumer (Backward, difference
// propagation) does.
func (c *BatchCache) Sample(n int) *Cache {
	s := &Cache{
		Act: make([][]float64, len(c.Act)),
		Pre: make([][]float64, len(c.Pre)),
	}
	for i, m := range c.Act {
		s.Act[i] = m.RowView(n)
	}
	for i, m := range c.Pre {
		s.Pre[i] = m.RowView(n)
	}
	return s
}

// ForwardBatch runs the network over a batch of row vectors and returns
// the output batch plus the batched activation cache. Row n of the output
// (and of every cache matrix) is bit-identical to Forward(x.Row(n)).
func (m *MLP) ForwardBatch(a *linalg.Arena, x *linalg.Matrix) (*linalg.Matrix, *BatchCache) {
	c := &BatchCache{
		Act: make([]*linalg.Matrix, 0, len(m.Layers)+1),
		Pre: make([]*linalg.Matrix, 0, len(m.Layers)),
	}
	c.Act = append(c.Act, x)
	h := x
	for li, l := range m.Layers {
		z := l.ForwardBatch(a, h)
		c.Pre = append(c.Pre, z)
		if li < len(m.Layers)-1 {
			act := alloc(a, z.Rows, z.Cols)
			for i, v := range z.Data {
				if v > 0 {
					act.Data[i] = v
				} else {
					act.Data[i] = 0
				}
			}
			h = act
		} else {
			h = z
		}
		c.Act = append(c.Act, h)
	}
	return h, c
}

// PredictBatch runs the network over a batch and returns only the output
// batch. ReLU is applied in place on intermediate results.
func (m *MLP) PredictBatch(a *linalg.Arena, x *linalg.Matrix) *linalg.Matrix {
	h := x
	for li, l := range m.Layers {
		h = l.ForwardBatch(a, h)
		if li < len(m.Layers)-1 {
			for i, v := range h.Data {
				if v <= 0 {
					h.Data[i] = 0
				}
			}
		}
	}
	return h
}

// BackwardBatch propagates a batch of output gradients through the cached
// batched pass, accumulating layer gradients, and returns the batch of
// input gradients. Accumulators see per-row contributions in row order —
// bit-identical to calling Backward once per row, in order.
func (m *MLP) BackwardBatch(a *linalg.Arena, c *BatchCache, dOut *linalg.Matrix) *linalg.Matrix {
	g := dOut
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 {
			g = reluMaskBatch(a, c.Pre[li], g)
		}
		g = m.Layers[li].BackwardBatch(a, c.Act[li], g)
	}
	return g
}

// BackwardBatchNoInput is BackwardBatch for callers that discard the
// input gradient (MSCN's set network, the feature-reduction probe): the
// first layer runs accumulate-only. Parameter gradients are bit-identical
// to BackwardBatch.
func (m *MLP) BackwardBatchNoInput(a *linalg.Arena, c *BatchCache, dOut *linalg.Matrix) {
	g := dOut
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 {
			g = reluMaskBatch(a, c.Pre[li], g)
		}
		if li == 0 {
			m.Layers[0].AccumulateBatch(c.Act[0], g)
			return
		}
		g = m.Layers[li].BackwardBatch(a, c.Act[li], g)
	}
}

// reluMaskBatch gates a gradient batch by the sign of the pre-activation
// batch (the ReLU derivative), writing every element.
func reluMaskBatch(a *linalg.Arena, pre, g *linalg.Matrix) *linalg.Matrix {
	masked := alloc(a, g.Rows, g.Cols)
	for i, v := range g.Data {
		if pre.Data[i] > 0 {
			masked.Data[i] = v
		} else {
			masked.Data[i] = 0
		}
	}
	return masked
}

// BackwardTailRow backpropagates one row of a batched cache through the
// network, accumulating parameter gradients exactly like Backward on that
// row, and produces only the trailing `tail` entries of the input
// gradient. This is the per-sample tree backward of QPPNet's batched
// training: row views keep it allocation-free on the arena, and running
// samples one at a time keeps accumulation in the scalar order.
func (m *MLP) BackwardTailRow(a *linalg.Arena, c *BatchCache, row int, dOut []float64, tail int) []float64 {
	g := dOut
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 {
			pre := c.Pre[li].RowView(row)
			masked := allocFloats(a, len(g))
			for i := range g {
				if pre[i] > 0 {
					masked[i] = g[i]
				} else {
					masked[i] = 0
				}
			}
			g = masked
		}
		l := m.Layers[li]
		x := c.Act[li].RowView(row)
		if li == 0 {
			return l.BackwardTail(a, x, g, tail)
		}
		g = l.backwardRow(a, x, g)
	}
	return g
}
