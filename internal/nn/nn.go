// Package nn is a minimal pure-Go neural-network library: dense layers,
// ReLU activations, MLP composition with full activation caching, and the
// Adam optimizer. It replaces the PyTorch dependency of the original QPPNet
// and MSCN implementations.
//
// The design exposes per-layer pre-activations and activations on every
// forward pass because the paper's difference-propagation feature reduction
// (Equation 1) is defined over layer activations, and the gradient baseline
// needs exact input gradients through ReLU.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Linear is a dense layer y = W·x + b with accumulated gradients.
type Linear struct {
	In, Out int
	W       []float64 // row-major Out×In
	B       []float64
	GW      []float64
	GB      []float64
}

// NewLinear builds a layer with He-uniform initialization, deterministic
// under the caller's rng.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		GW: make([]float64, in*out),
		GB: make([]float64, out),
	}
	bound := math.Sqrt(6.0 / float64(in))
	for i := range l.W {
		l.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return l
}

// Forward computes W·x + b.
func (l *Linear) Forward(x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear forward got %d inputs, want %d", len(x), l.In))
	}
	y := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		row := l.W[o*l.In : (o+1)*l.In]
		s := l.B[o]
		for i, w := range row {
			s += w * x[i]
		}
		y[o] = s
	}
	return y
}

// Backward accumulates dL/dW and dL/dB given the layer input x and the
// upstream gradient dy, and returns dL/dx.
func (l *Linear) Backward(x, dy []float64) []float64 {
	dx := make([]float64, l.In)
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		if g == 0 {
			continue
		}
		l.GB[o] += g
		row := l.W[o*l.In : (o+1)*l.In]
		grow := l.GW[o*l.In : (o+1)*l.In]
		for i := range row {
			grow[i] += g * x[i]
			dx[i] += g * row[i]
		}
	}
	return dx
}

// ZeroGrad clears accumulated gradients.
func (l *Linear) ZeroGrad() {
	for i := range l.GW {
		l.GW[i] = 0
	}
	for i := range l.GB {
		l.GB[i] = 0
	}
}

// Clone deep-copies weights (gradients start at zero).
func (l *Linear) Clone() *Linear {
	c := &Linear{
		In: l.In, Out: l.Out,
		W:  append([]float64(nil), l.W...),
		B:  append([]float64(nil), l.B...),
		GW: make([]float64, len(l.GW)),
		GB: make([]float64, len(l.GB)),
	}
	return c
}

// NumParams returns the parameter count.
func (l *Linear) NumParams() int { return len(l.W) + len(l.B) }

// MLP is a stack of Linear layers with ReLU between all but the last.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer widths, e.g. dims = [in, h1,
// h2, out].
func NewMLP(dims []int, rng *rand.Rand) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(dims[i], dims[i+1], rng))
	}
	return m
}

// InDim and OutDim report the model's input/output widths.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim reports the output width.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// Cache stores one forward pass: Act[0] is the input, Act[i] the activation
// after layer i (post-ReLU for hidden layers), Pre[i] the pre-activation of
// layer i. Difference propagation and backprop both consume it.
type Cache struct {
	Act [][]float64
	Pre [][]float64
}

// Forward runs the network and returns the output plus the activation
// cache.
func (m *MLP) Forward(x []float64) ([]float64, *Cache) {
	c := &Cache{Act: make([][]float64, 0, len(m.Layers)+1), Pre: make([][]float64, 0, len(m.Layers))}
	c.Act = append(c.Act, x)
	h := x
	for li, l := range m.Layers {
		z := l.Forward(h)
		c.Pre = append(c.Pre, z)
		if li < len(m.Layers)-1 {
			a := make([]float64, len(z))
			for i, v := range z {
				if v > 0 {
					a[i] = v
				}
			}
			h = a
		} else {
			h = z
		}
		c.Act = append(c.Act, h)
	}
	return h, c
}

// Predict runs the network and returns only the output.
func (m *MLP) Predict(x []float64) []float64 {
	y, _ := m.Forward(x)
	return y
}

// Backward propagates dL/dOut through the cached pass, accumulating layer
// gradients, and returns dL/dInput.
func (m *MLP) Backward(c *Cache, dOut []float64) []float64 {
	g := dOut
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 {
			// Undo ReLU: gradient flows only where pre-activation > 0.
			pre := c.Pre[li]
			masked := make([]float64, len(g))
			for i := range g {
				if pre[i] > 0 {
					masked[i] = g[i]
				}
			}
			g = masked
		}
		g = m.Layers[li].Backward(c.Act[li], g)
	}
	return g
}

// InputGradient returns d out[k] / d x at x (exact, through ReLU masks)
// without touching accumulated parameter gradients.
func (m *MLP) InputGradient(x []float64, k int) []float64 {
	_, c := m.Forward(x)
	dOut := make([]float64, m.OutDim())
	dOut[k] = 1
	g := dOut
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 {
			pre := c.Pre[li]
			masked := make([]float64, len(g))
			for i := range g {
				if pre[i] > 0 {
					masked[i] = g[i]
				}
			}
			g = masked
		}
		l := m.Layers[li]
		dx := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			if g[o] == 0 {
				continue
			}
			row := l.W[o*l.In : (o+1)*l.In]
			for i := range row {
				dx[i] += g[o] * row[i]
			}
		}
		g = dx
	}
	return g
}

// ZeroGrad clears every layer's gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Clone deep-copies the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, l.Clone())
	}
	return c
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	var n int
	for _, l := range m.Layers {
		n += l.NumParams()
	}
	return n
}
