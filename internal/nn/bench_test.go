package nn

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 16}, rng)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

// BenchmarkMLPForwardBatch32 reports per-sample cost of the batched
// forward at batch 32; compare against BenchmarkMLPForward.
func BenchmarkMLPForwardBatch32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 16}, rng)
	x := linalg.NewMatrix(32, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ar := &linalg.Arena{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.Reset()
		m.PredictBatch(ar, x)
	}
}

// BenchmarkMLPTrainIterScalar is one 32-sample training iteration
// (forward + backward per sample, then an Adam step) on the scalar path.
func BenchmarkMLPTrainIterScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 1}, rng)
	opt := NewAdam(0.001)
	layers := LayersOf(m)
	xs := make([][]float64, 32)
	for n := range xs {
		xs[n] = make([]float64, 64)
		for i := range xs[n] {
			xs[n][i] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := range xs {
			y, c := m.Forward(xs[n])
			m.Backward(c, []float64{2 * y[0]})
		}
		opt.Step(layers, len(xs))
	}
}

// BenchmarkMLPTrainIterBatch is the same 32-sample training iteration on
// the batched path.
func BenchmarkMLPTrainIterBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 1}, rng)
	opt := NewAdam(0.001)
	layers := LayersOf(m)
	x := linalg.NewMatrix(32, 64)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	dOut := linalg.NewMatrix(32, 1)
	ar := &linalg.Arena{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.Reset()
		y, c := m.ForwardBatch(ar, x)
		for n := 0; n < 32; n++ {
			dOut.Data[n] = 2 * y.Data[n]
		}
		m.BackwardBatchNoInput(ar, c, dOut)
		opt.Step(layers, 32)
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 16}, rng)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dOut := make([]float64, 16)
	dOut[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c := m.Forward(x)
		m.Backward(c, dOut)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 16}, rng)
	opt := NewAdam(0.001)
	layers := LayersOf(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(layers, 16)
	}
}
