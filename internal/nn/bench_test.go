package nn

import (
	"math/rand"
	"testing"
)

func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 16}, rng)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 16}, rng)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dOut := make([]float64, 16)
	dOut[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c := m.Forward(x)
		m.Backward(c, dOut)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{64, 32, 32, 16}, rng)
	opt := NewAdam(0.001)
	layers := LayersOf(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(layers, 16)
	}
}
