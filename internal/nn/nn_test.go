package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearForwardKnown(t *testing.T) {
	l := &Linear{In: 2, Out: 1, W: []float64{2, 3}, B: []float64{1}, GW: make([]float64, 2), GB: make([]float64, 1)}
	y := l.Forward([]float64{4, 5})
	if y[0] != 2*4+3*5+1 {
		t.Fatalf("forward = %v", y)
	}
}

func TestLinearDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewLinear(3, 1, rand.New(rand.NewSource(1))).Forward([]float64{1, 2})
}

func TestLinearBackwardMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(4, 3, rng)
	x := []float64{0.5, -1, 2, 0.1}
	// Scalar loss = sum(y).
	dy := []float64{1, 1, 1}
	l.ZeroGrad()
	dx := l.Backward(x, dy)

	const eps = 1e-6
	loss := func() float64 {
		y := l.Forward(x)
		return y[0] + y[1] + y[2]
	}
	for i := range l.W {
		orig := l.W[i]
		l.W[i] = orig + eps
		up := loss()
		l.W[i] = orig - eps
		dn := loss()
		l.W[i] = orig
		num := (up - dn) / (2 * eps)
		if math.Abs(num-l.GW[i]) > 1e-5 {
			t.Fatalf("dW[%d]: analytic %v vs numeric %v", i, l.GW[i], num)
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		dn := loss()
		x[i] = orig
		num := (up - dn) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx[i], num)
		}
	}
}

func TestMLPBackwardMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{5, 8, 8, 1}, rng)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	m.ZeroGrad()
	_, c := m.Forward(x)
	m.Backward(c, []float64{1})

	const eps = 1e-6
	l0 := m.Layers[0]
	for i := 0; i < len(l0.W); i += 7 {
		orig := l0.W[i]
		l0.W[i] = orig + eps
		up := m.Predict(x)[0]
		l0.W[i] = orig - eps
		dn := m.Predict(x)[0]
		l0.W[i] = orig
		num := (up - dn) / (2 * eps)
		if math.Abs(num-l0.GW[i]) > 1e-4 {
			t.Fatalf("layer0 dW[%d]: analytic %v vs numeric %v", i, l0.GW[i], num)
		}
	}
}

func TestInputGradientMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{4, 6, 1}, rng)
	x := []float64{0.3, -0.7, 1.1, 0.9}
	g := m.InputGradient(x, 0)
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := m.Predict(x)[0]
		x[i] = orig - eps
		dn := m.Predict(x)[0]
		x[i] = orig
		num := (up - dn) / (2 * eps)
		if math.Abs(num-g[i]) > 1e-4 {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, g[i], num)
		}
	}
}

func TestMLPLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{2, 16, 1}, rng)
	opt := NewAdam(0.01)
	layers := LayersOf(m)
	target := func(x []float64) float64 { return 3*x[0] - 2*x[1] + 1 }
	for epoch := 0; epoch < 400; epoch++ {
		batch := 32
		for b := 0; b < batch; b++ {
			x := []float64{rng.NormFloat64(), rng.NormFloat64()}
			y, c := m.Forward(x)
			diff := y[0] - target(x)
			m.Backward(c, []float64{2 * diff})
		}
		opt.Step(layers, batch)
	}
	var mse float64
	n := 100
	for i := 0; i < n; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		d := m.Predict(x)[0] - target(x)
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.05 {
		t.Fatalf("MLP failed to fit linear function: mse=%v", mse)
	}
}

func TestMLPLearnsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP([]int{1, 32, 32, 1}, rng)
	opt := NewAdam(0.005)
	layers := LayersOf(m)
	target := func(x float64) float64 { return math.Abs(x) } // kinked
	for epoch := 0; epoch < 600; epoch++ {
		batch := 32
		for b := 0; b < batch; b++ {
			x := rng.Float64()*4 - 2
			y, c := m.Forward([]float64{x})
			diff := y[0] - target(x)
			m.Backward(c, []float64{2 * diff})
		}
		opt.Step(layers, batch)
	}
	var mse float64
	n := 200
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		d := m.Predict([]float64{x})[0] - target(x)
		mse += d * d
	}
	mse /= float64(n)
	if mse > 0.01 {
		t.Fatalf("MLP failed to fit |x|: mse=%v", mse)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP([]int{3, 4, 1}, rng)
	c := m.Clone()
	x := []float64{1, 2, 3}
	before := c.Predict(x)[0]
	m.Layers[0].W[0] += 10
	if c.Predict(x)[0] != before {
		t.Fatalf("clone shares weights with original")
	}
	if m.Predict(x)[0] == before {
		t.Fatalf("original should have changed")
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewMLP([]int{4, 8, 1}, rand.New(rand.NewSource(9)))
	b := NewMLP([]int{4, 8, 1}, rand.New(rand.NewSource(9)))
	for i := range a.Layers[0].W {
		if a.Layers[0].W[i] != b.Layers[0].W[i] {
			t.Fatalf("same-seed init differs")
		}
	}
}

func TestNumParams(t *testing.T) {
	m := NewMLP([]int{3, 5, 2}, rand.New(rand.NewSource(1)))
	want := (3*5 + 5) + (5*2 + 2)
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
	if m.InDim() != 3 || m.OutDim() != 2 {
		t.Fatalf("dims = %d,%d", m.InDim(), m.OutDim())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Single-parameter layer: minimize (w - 4)^2.
	l := &Linear{In: 1, Out: 1, W: []float64{0}, B: []float64{0}, GW: make([]float64, 1), GB: make([]float64, 1)}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		l.GW[0] = 2 * (l.W[0] - 4)
		opt.Step([]*Linear{l}, 1)
	}
	if math.Abs(l.W[0]-4) > 0.01 {
		t.Fatalf("Adam did not converge: w=%v", l.W[0])
	}
}

// Property: ReLU hidden layers imply f(x) is piecewise-linear: doubling a
// positive-activation input region keeps outputs finite; more useful —
// forward never produces NaN for finite inputs.
func TestForwardFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMLP([]int{6, 10, 10, 1}, rng)
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		y := m.Predict(x)
		return !math.IsNaN(y[0]) && !math.IsInf(y[0], 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
