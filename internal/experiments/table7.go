package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// Table7Row is one cell of the paper's Table VII: a model variant evaluated
// on the new hardware environment h2.
type Table7Row struct {
	Benchmark string
	Model     string // basis, trans-FSO, trans-FST
	Pearson   float64
	MeanQ     float64
	TimeSec   float64 // training (basis) or retraining (transfer) time
}

// Fig8Series is one convergence curve of Figure 8.
type Fig8Series struct {
	Benchmark string
	Model     string // "direct" or "transfer"
	Curve     []float64
}

// transferSetup collects the h2 environment's labeled data: 2000 training
// and 500 test queries, per the paper's §V-E.
func (s *Suite) transferSetup(benchmark string) (*dbenv.Environment, []workload.Sample, []workload.Sample, error) {
	h2 := &dbenv.Environment{
		ID:       1000 + s.P.NumEnvs,
		Knobs:    dbenv.DefaultKnobs(),
		Format:   dbenv.HeapBTree,
		NoiseStd: 0.02,
	}
	h2.HW, _ = dbenv.ProfileByName("i7-12700h-nvme")
	ds := s.Dataset(benchmark)
	total := 2500
	if s.P.PerEnv[benchmark] < 200 {
		total = 250 // quick mode
	}
	lab, err := workload.Collect(ds, []*dbenv.Environment{h2}, total, s.P.Seed+555)
	if err != nil {
		return nil, nil, nil, err
	}
	train, test := workload.Split(lab.Samples, 0.8)
	return h2, train, test, nil
}

// Table7 reproduces the transferability study: a basis model trained at the
// largest scale on the original environment set is transferred to the new
// hardware h2 by swapping the snapshot (FSO or FST) and retraining briefly;
// the transfer variants should approach the accuracy of a model trained
// from scratch on h2 at a fraction of the time.
func (s *Suite) Table7(benchmark string) ([]Table7Row, error) {
	v, err := s.memo("table7:"+benchmark, func() (any, error) { return s.table7Impl(benchmark) })
	if err != nil {
		return nil, err
	}
	return v.([]Table7Row), nil
}

func (s *Suite) table7Impl(benchmark string) ([]Table7Row, error) {
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	snaps, snapMs, err := s.Snapshots(benchmark)
	if err != nil {
		return nil, err
	}
	ds := s.Dataset(benchmark)
	iters := s.trainIters(benchmark)
	maxScale := s.P.Scales[len(s.P.Scales)-1]
	basisTrain, _ := workload.Split(pool.Scale(maxScale), 0.8)

	h2, h2train, h2test, err := s.transferSetup(benchmark)
	if err != nil {
		return nil, err
	}

	cfg := core.DefaultConfig("qppnet")
	cfg.TrainIters = iters
	cfg.Seed = s.P.Seed
	cfg.Prebuilt = snaps
	cfg.PrebuiltMs = snapMs
	basis, err := core.Run(ds, s.Envs(), basisTrain, cfg)
	if err != nil {
		return nil, err
	}

	// The basis/transfer arms stay serial on purpose: the paper's claim is
	// about measured (re)training time, and concurrent fits would contend
	// for cores and distort the TimeSec comparison the test asserts on.
	var out []Table7Row
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Table VII (%s): transferability to new hardware h2\n", benchmark)

	// "basis": a model trained directly on h2's labeled data from scratch.
	directCfg := cfg
	directCfg.Prebuilt = nil
	directCfg.PrebuiltMs = 0
	direct, err := core.Run(ds, []*dbenv.Environment{h2}, h2train, directCfg)
	if err != nil {
		return nil, err
	}
	sum := core.Evaluate(direct.Model, h2test)
	out = append(out, Table7Row{Benchmark: benchmark, Model: "basis",
		Pearson: sum.Pearson, MeanQ: sum.Mean, TimeSec: direct.TrainTime.Seconds()})

	// Transfer with FSO and FST snapshots, retraining for 25% of the
	// basis iteration budget (the paper retrains 200 of 800 iterations).
	retrain := iters / 4
	if retrain < 1 {
		retrain = 1
	}
	for _, mode := range []core.SnapshotMode{core.FSO, core.FST} {
		tcfg := cfg
		tcfg.Prebuilt = nil
		tcfg.PrebuiltMs = 0
		tcfg.SnapshotMode = mode
		trans, err := core.Transfer(basis, ds, h2, h2train, tcfg, retrain)
		if err != nil {
			return nil, err
		}
		sum := core.Evaluate(trans.Model, h2test)
		name := "trans-FSO"
		if mode == core.FST {
			name = "trans-FST"
		}
		out = append(out, Table7Row{Benchmark: benchmark, Model: name,
			Pearson: sum.Pearson, MeanQ: sum.Mean, TimeSec: trans.RetrainTime.Seconds()})
	}
	for _, r := range out {
		rep.printf("  %-10s pearson=%.3f mean=%.3f time=%.2fs\n", r.Model, r.Pearson, r.MeanQ, r.TimeSec)
	}
	return out, nil
}

// Figure8 reproduces the convergence comparison: test q-error versus
// training iteration for a model trained directly on h2 against a
// transferred basis model, which should reach comparable accuracy in ~25%
// of the iterations.
func (s *Suite) Figure8(benchmark string) ([]Fig8Series, error) {
	v, err := s.memo("fig8:"+benchmark, func() (any, error) { return s.figure8Impl(benchmark) })
	if err != nil {
		return nil, err
	}
	return v.([]Fig8Series), nil
}

func (s *Suite) figure8Impl(benchmark string) ([]Fig8Series, error) {
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	snaps, snapMs, err := s.Snapshots(benchmark)
	if err != nil {
		return nil, err
	}
	ds := s.Dataset(benchmark)
	iters := s.trainIters(benchmark)
	maxScale := s.P.Scales[len(s.P.Scales)-1]
	basisTrain, _ := workload.Split(pool.Scale(maxScale), 0.8)
	h2, h2train, h2test, err := s.transferSetup(benchmark)
	if err != nil {
		return nil, err
	}

	cfg := core.DefaultConfig("qppnet")
	cfg.TrainIters = iters
	cfg.Seed = s.P.Seed
	cfg.Prebuilt = snaps
	cfg.PrebuiltMs = snapMs
	basis, err := core.Run(ds, s.Envs(), basisTrain, cfg)
	if err != nil {
		return nil, err
	}

	chunk := iters / 8
	if chunk < 1 {
		chunk = 1
	}

	// Direct: fresh model on h2 data.
	h2cfg := cfg
	h2cfg.Prebuilt = nil
	h2cfg.PrebuiltMs = 0
	h2snaps, _, err := core.BuildSnapshots(ds, []*dbenv.Environment{h2}, h2cfg)
	if err != nil {
		return nil, err
	}
	freshF := basisFeaturizerWith(basis, h2snaps)
	fresh, err := core.NewEstimator("qppnet", freshF, ds.Stats, s.P.Seed+9)
	if err != nil {
		return nil, err
	}
	directCurve := core.TrainCurve(fresh, h2train, h2test, iters, chunk)

	// Transfer: clone basis, swap snapshot, continue training.
	trans, err := core.Transfer(basis, ds, h2, h2train, h2cfg, 0)
	if err != nil {
		return nil, err
	}
	transferCurve := core.TrainCurve(trans.Model, h2train, h2test, iters, chunk)

	out := []Fig8Series{
		{Benchmark: benchmark, Model: "direct", Curve: directCurve},
		{Benchmark: benchmark, Model: "transfer", Curve: transferCurve},
	}
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Figure 8 (%s): q-error vs iteration (chunk=%d)\n", benchmark, chunk)
	for _, series := range out {
		rep.printf("  %-8s %v\n", series.Model, formatCurve(series.Curve))
	}
	return out, nil
}

// basisFeaturizerWith rebuilds the basis featurizer against a different
// snapshot set (same mask, same encoder) — used to give the from-scratch
// "direct" model the identical feature space the transfer model sees.
func basisFeaturizerWith(basis *core.Result, snaps map[int]*snapshot.Snapshot) *encoding.Featurizer {
	return &encoding.Featurizer{Enc: basis.F.Enc, Snaps: snaps, Mask: basis.F.Mask}
}

// formatCurve renders a q-error curve compactly.
func formatCurve(curve []float64) string {
	out := "["
	for i, v := range curve {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", v)
	}
	return out + "]"
}
