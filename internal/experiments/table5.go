package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Table5Row is one cell of the paper's Table V: the q-error and snapshot
// collection cost of FSO versus FST at a given template scale.
type Table5Row struct {
	Benchmark    string
	Variant      string // "FSO" or "FST(scale)"
	Scale        int    // template scale (0 for FSO)
	MeanQ        float64
	CollectionMs float64 // simulated labeling cost of the snapshot
}

// Table5 reproduces the template-scale robustness study: on TPC-H and
// job-light, the FSO snapshot (original queries) is compared with FST
// snapshots at increasing template scales; FST should reach FSO-level
// q-error at a fraction of the collection cost.
func (s *Suite) Table5(benchmark string, scales []int) ([]Table5Row, error) {
	key := fmt.Sprintf("table5:%s:%v", benchmark, scales)
	v, err := s.memo(key, func() (any, error) { return s.table5Impl(benchmark, scales) })
	if err != nil {
		return nil, err
	}
	return v.([]Table5Row), nil
}

func (s *Suite) table5Impl(benchmark string, scales []int) ([]Table5Row, error) {
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	n := fig6Scale
	if len(pool.Samples) < n {
		n = len(pool.Samples)
	}
	train, test := workload.Split(pool.Scale(n), 0.8)
	ds := s.Dataset(benchmark)
	iters := s.trainIters(benchmark)

	runWith := func(variant string, mode core.SnapshotMode, tscale int) (Table5Row, error) {
		cfg := core.DefaultConfig("qppnet")
		cfg.SnapshotMode = mode
		cfg.TemplateScale = tscale
		cfg.Reduction = core.ReduceNone
		cfg.TrainIters = iters
		cfg.Seed = s.P.Seed
		res, err := core.Run(ds, s.Envs(), train, cfg)
		if err != nil {
			return Table5Row{}, err
		}
		sum := core.Evaluate(res.Model, test)
		return Table5Row{
			Benchmark: benchmark, Variant: variant, Scale: tscale,
			MeanQ: sum.Mean, CollectionMs: res.SnapshotMs,
		}, nil
	}

	// FSO plus one arm per FST scale: independent fits, run concurrently.
	out, err := parallel.Map(1+len(scales), 0, func(i int) (Table5Row, error) {
		if i == 0 {
			return runWith("FSO", core.FSO, 0)
		}
		return runWith("FST", core.FST, scales[i-1])
	})
	if err != nil {
		return nil, err
	}
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Table V (%s): FSO vs FST template scales (mean q-error / collection cost)\n", benchmark)
	for _, row := range out {
		if row.Variant == "FSO" {
			rep.printf("  %-8s mean=%.3f collect=%.1f ms\n", row.Variant, row.MeanQ, row.CollectionMs)
		} else {
			rep.printf("  FST(%d)   mean=%.3f collect=%.1f ms\n", row.Scale, row.MeanQ, row.CollectionMs)
		}
	}
	return out, nil
}
