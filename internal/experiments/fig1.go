package experiments

import (
	"repro/internal/dbenv"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/planner"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// Fig1Cell is the average cost of the probe workload under one environment.
type Fig1Cell struct {
	Benchmark string
	EnvID     int
	AvgMs     float64
}

// Figure1 reproduces the paper's Figure 1: the average cost of 1000 queries
// in TPCH and Sysbench under five database environments, demonstrating the
// 2–3× spread that motivates the feature snapshot.
func (s *Suite) Figure1() ([]Fig1Cell, error) {
	v, err := s.memo("fig1", func() (any, error) { return s.figure1Impl() })
	if err != nil {
		return nil, err
	}
	return v.([]Fig1Cell), nil
}

func (s *Suite) figure1Impl() ([]Fig1Cell, error) {
	const queries = 1000
	envs := dbenv.SampleSet(5, s.P.Seed+17)
	var out []Fig1Cell
	s.printf("Figure 1: average query cost (ms) of %d queries under 5 environments\n", queries)
	for _, bench := range []string{"tpch", "sysbench"} {
		ds := s.Dataset(bench)
		for _, env := range envs {
			gen := workload.NewGenerator(ds, s.P.Seed+int64(env.ID))
			sqls, err := gen.Generate(workload.TemplatesFor(bench), queries)
			if err != nil {
				return nil, err
			}
			pl := planner.New(ds.Schema, ds.Stats, env.Knobs)
			ex := engine.New(ds.DB, env)
			var times []float64
			for _, sql := range sqls {
				q, err := sqlparse.Parse(sql)
				if err != nil {
					continue
				}
				node, err := pl.Plan(q)
				if err != nil {
					continue
				}
				res, err := ex.Execute(node)
				if err != nil {
					continue
				}
				times = append(times, res.TotalMs)
			}
			cell := Fig1Cell{Benchmark: bench, EnvID: env.ID, AvgMs: metrics.Mean(times)}
			out = append(out, cell)
			s.printf("  %-9s env#%d  avg=%.3f ms\n", bench, env.ID, cell.AvgMs)
		}
	}
	return out, nil
}

// Fig1Spread summarizes max/min average cost per benchmark — the paper's
// "2 times in TPCH and 3 times in Sysbench" observation.
func Fig1Spread(cells []Fig1Cell) map[string]float64 {
	min := map[string]float64{}
	max := map[string]float64{}
	for _, c := range cells {
		if v, ok := min[c.Benchmark]; !ok || c.AvgMs < v {
			min[c.Benchmark] = c.AvgMs
		}
		if v, ok := max[c.Benchmark]; !ok || c.AvgMs > v {
			max[c.Benchmark] = c.AvgMs
		}
	}
	out := map[string]float64{}
	for b := range min {
		if min[b] > 0 {
			out[b] = max[b] / min[b]
		}
	}
	return out
}
