package experiments

import (
	"repro/internal/dbenv"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig1Cell is the average cost of the probe workload under one environment.
type Fig1Cell struct {
	Benchmark string
	EnvID     int
	AvgMs     float64
}

// Figure1 reproduces the paper's Figure 1: the average cost of the probe
// workload (1000 queries at paper scale; Params.Fig1Queries) in TPCH and
// Sysbench under five database environments, demonstrating the 2–3×
// spread that motivates the feature snapshot.
func (s *Suite) Figure1() ([]Fig1Cell, error) {
	v, err := s.memo("fig1", func() (any, error) { return s.figure1Impl() })
	if err != nil {
		return nil, err
	}
	return v.([]Fig1Cell), nil
}

func (s *Suite) figure1Impl() ([]Fig1Cell, error) {
	queries := s.P.fig1Queries()
	envs := dbenv.SampleSet(5, s.P.Seed+17)
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Figure 1: average query cost (ms) of %d queries under 5 environments\n", queries)
	// One cell per (benchmark, environment). Each benchmark's full (env ×
	// query) grid flattens into a single pool fan-out; per-query times land
	// in index-addressed slots, so the cell averages are deterministic.
	var cells []Fig1Cell
	for _, bench := range []string{"tpch", "sysbench"} {
		ds := s.Dataset(bench)
		var tasks []engine.PoolTask
		for _, env := range envs {
			gen := workload.NewGenerator(ds, s.P.Seed+int64(env.ID))
			sqls, err := gen.Generate(workload.TemplatesFor(bench), queries)
			if err != nil {
				return nil, err
			}
			for qi, sql := range sqls {
				tasks = append(tasks, engine.PoolTask{Env: env, Seq: int64(qi + 1), SQL: sql})
			}
		}
		results := engine.ExecutePool(ds.Schema, ds.Stats, ds.DB, tasks, 0)
		for ei, env := range envs {
			var times []float64
			for ti := ei * queries; ti < (ei+1)*queries; ti++ {
				if results[ti].OK {
					times = append(times, results[ti].Ms)
				}
			}
			cells = append(cells, Fig1Cell{Benchmark: bench, EnvID: env.ID, AvgMs: metrics.Mean(times)})
		}
	}
	for _, cell := range cells {
		rep.printf("  %-9s env#%d  avg=%.3f ms\n", cell.Benchmark, cell.EnvID, cell.AvgMs)
	}
	return cells, nil
}

// Fig1Spread summarizes max/min average cost per benchmark — the paper's
// "2 times in TPCH and 3 times in Sysbench" observation.
func Fig1Spread(cells []Fig1Cell) map[string]float64 {
	min := map[string]float64{}
	max := map[string]float64{}
	for _, c := range cells {
		if v, ok := min[c.Benchmark]; !ok || c.AvgMs < v {
			min[c.Benchmark] = c.AvgMs
		}
		if v, ok := max[c.Benchmark]; !ok || c.AvgMs > v {
			max[c.Benchmark] = c.AvgMs
		}
	}
	out := map[string]float64{}
	for b := range min {
		if min[b] > 0 {
			out[b] = max[b] / min[b]
		}
	}
	return out
}
