package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pgcost"
	"repro/internal/workload"
)

// Table4Row is one cell group of the paper's Table IV: a (benchmark, model,
// scale) triple with its pearson coefficient, mean q-error, and training
// time.
type Table4Row struct {
	Benchmark string
	Model     string // PGSQL, MSCN, QPPNet, QCFE(mscn), QCFE(qpp)
	Scale     int
	Pearson   float64
	MeanQ     float64
	TrainSec  float64
	// QErrors keeps the per-query test q-errors for Figure 5's box plots.
	QErrors []float64
}

// table4Methods lists the five compared methods in paper order.
var table4Methods = []string{"PGSQL", "QCFE(mscn)", "QCFE(qpp)", "MSCN", "QPPNet"}

// Table4 reproduces the paper's Table IV for one benchmark: the
// time-accuracy efficiency of PGSQL, MSCN, QPPNet, QCFE(mscn), and
// QCFE(qpp) across labeled-set scales. The returned rows also carry the
// per-query q-errors, which Figure5 consumes.
func (s *Suite) Table4(benchmark string) ([]Table4Row, error) {
	s.mu.Lock()
	cached := s.t4cache[benchmark]
	s.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	snaps, snapMs, err := s.Snapshots(benchmark)
	if err != nil {
		return nil, err
	}
	ds := s.Dataset(benchmark)
	iters := s.trainIters(benchmark)
	var rows []Table4Row
	s.printf("Table IV (%s): pearson / mean q-error / training time\n", benchmark)
	for _, scale := range s.P.Scales {
		train, test := workload.Split(pool.Scale(scale), 0.8)
		for _, method := range table4Methods {
			row := Table4Row{Benchmark: benchmark, Model: method, Scale: scale}
			switch method {
			case "PGSQL":
				start := time.Now()
				model := pgcost.New(ds.Stats)
				actual := make([]float64, len(test))
				pred := make([]float64, len(test))
				qe := make([]float64, len(test))
				for i, smp := range test {
					actual[i] = smp.Ms
					pred[i] = model.EstimateMs(smp.Plan)
					qe[i] = metrics.QError(actual[i], pred[i])
				}
				sum := metrics.Summarize(actual, pred)
				row.Pearson, row.MeanQ = sum.Pearson, sum.Mean
				row.TrainSec = time.Since(start).Seconds()
				row.QErrors = qe
			default:
				cfg, useQCFE := methodConfig(method)
				cfg.TrainIters = iters
				cfg.Seed = s.P.Seed
				if useQCFE {
					cfg.Prebuilt = snaps
					cfg.PrebuiltMs = snapMs
				}
				res, err := core.Run(ds, s.Envs(), train, cfg)
				if err != nil {
					return nil, err
				}
				sum := core.Evaluate(res.Model, test)
				row.Pearson, row.MeanQ = sum.Pearson, sum.Mean
				row.TrainSec = res.TrainTime.Seconds() + res.ReductionTime.Seconds()
				row.QErrors = core.QErrors(res.Model, test)
			}
			rows = append(rows, row)
			s.printf("  scale=%-6d %-11s pearson=%.3f mean=%.3f time=%.2fs\n",
				scale, method, row.Pearson, row.MeanQ, row.TrainSec)
		}
	}
	s.mu.Lock()
	s.t4cache[benchmark] = rows
	s.mu.Unlock()
	return rows, nil
}

// methodConfig maps a Table IV method name to its pipeline configuration;
// the bool reports whether the method uses the QCFE snapshot+reduction.
func methodConfig(method string) (core.Config, bool) {
	switch method {
	case "QCFE(mscn)":
		return core.DefaultConfig("mscn"), true
	case "QCFE(qpp)":
		return core.DefaultConfig("qppnet"), true
	case "MSCN":
		cfg := core.DefaultConfig("mscn")
		cfg.UseSnapshot = false
		cfg.Reduction = core.ReduceNone
		return cfg, false
	case "QPPNet":
		cfg := core.DefaultConfig("qppnet")
		cfg.UseSnapshot = false
		cfg.Reduction = core.ReduceNone
		return cfg, false
	}
	panic("experiments: unknown method " + method)
}

// Fig5Row is one box of Figure 5: the q-error quartiles of one method at
// one scale on one benchmark.
type Fig5Row struct {
	Benchmark string
	Model     string
	Scale     int
	P25       float64
	Median    float64
	P75       float64
	P90       float64
}

// Figure5 reproduces the q-error variance box plots of Figure 5 from the
// Table IV runs (box boundaries at the 25th/50th/75th percentiles).
func (s *Suite) Figure5(benchmark string) ([]Fig5Row, error) {
	v, err := s.memo("fig5:"+benchmark, func() (any, error) { return s.figure5Impl(benchmark) })
	if err != nil {
		return nil, err
	}
	return v.([]Fig5Row), nil
}

func (s *Suite) figure5Impl(benchmark string) ([]Fig5Row, error) {
	rows, err := s.Table4(benchmark)
	if err != nil {
		return nil, err
	}
	var out []Fig5Row
	s.printf("Figure 5 (%s): q-error quartiles\n", benchmark)
	for _, r := range rows {
		if r.Model == "PGSQL" {
			continue // the paper's Figure 5 plots the learned estimators
		}
		f := Fig5Row{
			Benchmark: r.Benchmark, Model: r.Model, Scale: r.Scale,
			P25:    metrics.Percentile(r.QErrors, 25),
			Median: metrics.Percentile(r.QErrors, 50),
			P75:    metrics.Percentile(r.QErrors, 75),
			P90:    metrics.Percentile(r.QErrors, 90),
		}
		out = append(out, f)
		s.printf("  scale=%-6d %-11s p25=%.3f p50=%.3f p75=%.3f p90=%.3f\n",
			f.Scale, f.Model, f.P25, f.Median, f.P75, f.P90)
	}
	return out, nil
}
