package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/pgcost"
	"repro/internal/workload"
)

// Table4Row is one cell group of the paper's Table IV: a (benchmark, model,
// scale) triple with its pearson coefficient, mean q-error, and training
// time.
type Table4Row struct {
	Benchmark string
	Model     string // PGSQL, MSCN, QPPNet, QCFE(mscn), QCFE(qpp)
	Scale     int
	Pearson   float64
	MeanQ     float64
	TrainSec  float64
	// QErrors keeps the per-query test q-errors for Figure 5's box plots.
	QErrors []float64
}

// table4Methods lists the five compared methods in paper order.
var table4Methods = []string{"PGSQL", "QCFE(mscn)", "QCFE(qpp)", "MSCN", "QPPNet"}

// Table4 reproduces the paper's Table IV for one benchmark: the
// time-accuracy efficiency of PGSQL, MSCN, QPPNet, QCFE(mscn), and
// QCFE(qpp) across labeled-set scales. The returned rows also carry the
// per-query q-errors, which Figure5 consumes.
func (s *Suite) Table4(benchmark string) ([]Table4Row, error) {
	v, err := s.memo("table4:"+benchmark, func() (any, error) { return s.table4Impl(benchmark) })
	if err != nil {
		return nil, err
	}
	return v.([]Table4Row), nil
}

func (s *Suite) table4Impl(benchmark string) ([]Table4Row, error) {
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	snaps, snapMs, err := s.Snapshots(benchmark)
	if err != nil {
		return nil, err
	}
	ds := s.Dataset(benchmark)
	iters := s.trainIters(benchmark)
	// The (scale × method) grid cells are independent model fits over
	// read-only pools, so they run concurrently; rows come back in grid
	// order and each fit is internally seeded, keeping results identical to
	// a serial run. TrainSec is each cell's own wall-clock fit time and
	// inflates under contention when cells share cores — the relative
	// ordering between methods survives, but to reproduce the paper's
	// absolute training-time column run with -workers 1.
	type cell struct {
		scale  int
		method string
	}
	var grid []cell
	for _, scale := range s.P.Scales {
		for _, method := range table4Methods {
			grid = append(grid, cell{scale: scale, method: method})
		}
	}
	rows, err := parallel.Map(len(grid), 0, func(gi int) (Table4Row, error) {
		scale, method := grid[gi].scale, grid[gi].method
		train, test := workload.Split(pool.Scale(scale), 0.8)
		row := Table4Row{Benchmark: benchmark, Model: method, Scale: scale}
		switch method {
		case "PGSQL":
			start := time.Now()
			model := pgcost.New(ds.Stats)
			actual := make([]float64, len(test))
			pred := make([]float64, len(test))
			qe := make([]float64, len(test))
			for i, smp := range test {
				actual[i] = smp.Ms
				pred[i] = model.EstimateMs(smp.Plan)
				qe[i] = metrics.QError(actual[i], pred[i])
			}
			sum := metrics.Summarize(actual, pred)
			row.Pearson, row.MeanQ = sum.Pearson, sum.Mean
			row.TrainSec = time.Since(start).Seconds()
			row.QErrors = qe
		default:
			cfg, useQCFE := methodConfig(method)
			cfg.TrainIters = iters
			cfg.Seed = s.P.Seed
			if useQCFE {
				cfg.Prebuilt = snaps
				cfg.PrebuiltMs = snapMs
			}
			res, err := core.Run(ds, s.Envs(), train, cfg)
			if err != nil {
				return Table4Row{}, err
			}
			sum := core.Evaluate(res.Model, test)
			row.Pearson, row.MeanQ = sum.Pearson, sum.Mean
			row.TrainSec = res.TrainTime.Seconds() + res.ReductionTime.Seconds()
			row.QErrors = core.QErrors(res.Model, test)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Table IV (%s): pearson / mean q-error / training time\n", benchmark)
	for _, row := range rows {
		rep.printf("  scale=%-6d %-11s pearson=%.3f mean=%.3f time=%.2fs\n",
			row.Scale, row.Model, row.Pearson, row.MeanQ, row.TrainSec)
	}
	return rows, nil
}

// methodConfig maps a Table IV method name to its pipeline configuration;
// the bool reports whether the method uses the QCFE snapshot+reduction.
func methodConfig(method string) (core.Config, bool) {
	switch method {
	case "QCFE(mscn)":
		return core.DefaultConfig("mscn"), true
	case "QCFE(qpp)":
		return core.DefaultConfig("qppnet"), true
	case "MSCN":
		cfg := core.DefaultConfig("mscn")
		cfg.UseSnapshot = false
		cfg.Reduction = core.ReduceNone
		return cfg, false
	case "QPPNet":
		cfg := core.DefaultConfig("qppnet")
		cfg.UseSnapshot = false
		cfg.Reduction = core.ReduceNone
		return cfg, false
	}
	panic("experiments: unknown method " + method)
}

// Fig5Row is one box of Figure 5: the q-error quartiles of one method at
// one scale on one benchmark.
type Fig5Row struct {
	Benchmark string
	Model     string
	Scale     int
	P25       float64
	Median    float64
	P75       float64
	P90       float64
}

// Figure5 reproduces the q-error variance box plots of Figure 5 from the
// Table IV runs (box boundaries at the 25th/50th/75th percentiles).
func (s *Suite) Figure5(benchmark string) ([]Fig5Row, error) {
	v, err := s.memo("fig5:"+benchmark, func() (any, error) { return s.figure5Impl(benchmark) })
	if err != nil {
		return nil, err
	}
	return v.([]Fig5Row), nil
}

func (s *Suite) figure5Impl(benchmark string) ([]Fig5Row, error) {
	rows, err := s.Table4(benchmark)
	if err != nil {
		return nil, err
	}
	var out []Fig5Row
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Figure 5 (%s): q-error quartiles\n", benchmark)
	for _, r := range rows {
		if r.Model == "PGSQL" {
			continue // the paper's Figure 5 plots the learned estimators
		}
		f := Fig5Row{
			Benchmark: r.Benchmark, Model: r.Model, Scale: r.Scale,
			P25:    metrics.Percentile(r.QErrors, 25),
			Median: metrics.Percentile(r.QErrors, 50),
			P75:    metrics.Percentile(r.QErrors, 75),
			P90:    metrics.Percentile(r.QErrors, 90),
		}
		out = append(out, f)
		rep.printf("  scale=%-6d %-11s p25=%.3f p50=%.3f p75=%.3f p90=%.3f\n",
			f.Scale, f.Model, f.P25, f.Median, f.P75, f.P90)
	}
	return out, nil
}
