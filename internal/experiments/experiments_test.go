package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// One quick suite shared by all tests (pools are cached inside).
var testSuite = NewSuite(QuickParams(), nil)

func TestFigure1SpreadAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment grid; skipped in -short (CI) mode")
	}
	t.Parallel()
	var buf bytes.Buffer
	s := NewSuite(QuickParams(), &buf)
	cells, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 10 { // 2 benchmarks × 5 envs
		t.Fatalf("cells = %d", len(cells))
	}
	spread := Fig1Spread(cells)
	for _, bench := range []string{"tpch", "sysbench"} {
		if spread[bench] < 1.5 {
			t.Errorf("%s environment spread %.2fx, want ≥1.5x (paper: 2–3x)", bench, spread[bench])
		}
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatalf("missing printed header")
	}
}

func TestTable4SysbenchShape(t *testing.T) {
	t.Parallel()
	rows, err := testSuite.Table4("sysbench")
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(QuickParams().Scales) * len(table4Methods)
	if len(rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(rows), wantRows)
	}
	byModel := map[string]Table4Row{}
	for _, r := range rows {
		if r.Scale == QuickParams().Scales[len(QuickParams().Scales)-1] {
			byModel[r.Model] = r
		}
	}
	// Learned estimators must beat the analytic PGSQL baseline on q-error.
	pg := byModel["PGSQL"]
	for _, m := range []string{"QCFE(mscn)", "MSCN"} {
		if byModel[m].MeanQ >= pg.MeanQ {
			t.Errorf("%s mean q-error %.2f not better than PGSQL %.2f", m, byModel[m].MeanQ, pg.MeanQ)
		}
		if byModel[m].Pearson <= pg.Pearson {
			t.Errorf("%s pearson %.3f not better than PGSQL %.3f", m, byModel[m].Pearson, pg.Pearson)
		}
	}
	// Per-query q-errors recorded for Figure 5.
	if len(pg.QErrors) == 0 {
		t.Fatalf("q-errors not recorded")
	}
	// Cached: second call returns identical slice.
	again, err := testSuite.Table4("sysbench")
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &rows[0] {
		t.Fatalf("Table4 cache miss")
	}
}

func TestFigure5FromTable4(t *testing.T) {
	t.Parallel()
	rows, err := testSuite.Figure5("sysbench")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(QuickParams().Scales)*4 { // 4 learned models
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.P25 > r.Median || r.Median > r.P75 || r.P75 > r.P90 {
			t.Fatalf("quartiles out of order: %+v", r)
		}
		if r.P25 < 1 {
			t.Fatalf("q-error below 1: %+v", r)
		}
	}
}

func TestFigure6Ablation(t *testing.T) {
	t.Parallel()
	rows, err := testSuite.Figure6("sysbench")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("variants = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
		if r.MeanQ < 1 {
			t.Fatalf("impossible mean q-error %v", r.MeanQ)
		}
	}
	for _, want := range []string{"FSO", "FST", "FSO+FR", "FSO+GD", "FSO+Greedy"} {
		if !names[want] {
			t.Fatalf("missing variant %s", want)
		}
	}
}

func TestFigure7ReductionCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment grid; skipped in -short (CI) mode")
	}
	t.Parallel()
	rows, err := testSuite.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("operators probed = %d, want ≥3", len(rows))
	}
	greedy, _, fr := ReductionSummary(rows)
	// The paper's shape: FR reduces far more than Greedy.
	if fr <= greedy {
		t.Errorf("FR reduction %.1f%% not above Greedy %.1f%%", 100*fr, 100*greedy)
	}
	if fr < 0.10 {
		t.Errorf("FR reduction %.1f%% too small (paper ≈41%%)", 100*fr)
	}
	for _, r := range rows {
		if r.DropFR < 0 || r.DropFR > r.TotalDim {
			t.Fatalf("bogus drop count: %+v", r)
		}
	}
}

func TestTable5TemplateScales(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment grid; skipped in -short (CI) mode")
	}
	t.Parallel()
	// The paper runs Table V on the analytical benchmarks (TPC-H and
	// job-light) where original queries are expensive multi-joins; the
	// simplified-template saving does not apply to Sysbench's point reads.
	rows, err := testSuite.Table5("imdb", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // FSO + 2 FST scales
		t.Fatalf("rows = %d", len(rows))
	}
	fso := rows[0]
	if fso.Variant != "FSO" || fso.CollectionMs <= 0 {
		t.Fatalf("FSO row wrong: %+v", fso)
	}
	for _, r := range rows[1:] {
		if r.CollectionMs >= fso.CollectionMs {
			t.Errorf("FST(%d) collection %.1f ms not cheaper than FSO %.1f ms",
				r.Scale, r.CollectionMs, fso.CollectionMs)
		}
	}
}

func TestTable6ReferenceRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment grid; skipped in -short (CI) mode")
	}
	rows, err := testSuite.Table6([]int{20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].RuntimeSec <= rows[0].RuntimeSec {
		t.Errorf("FR runtime should grow with |R|: %v vs %v", rows[0].RuntimeSec, rows[1].RuntimeSec)
	}
	for _, r := range rows {
		if r.ReductionRatio <= 0 || r.ReductionRatio >= 1 {
			t.Errorf("reduction ratio %v out of range", r.ReductionRatio)
		}
	}
}

func TestTable7Transfer(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment grid; skipped in -short (CI) mode")
	}
	rows, err := testSuite.Table7("sysbench")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var basis, fso, fst *Table7Row
	for i := range rows {
		switch rows[i].Model {
		case "basis":
			basis = &rows[i]
		case "trans-FSO":
			fso = &rows[i]
		case "trans-FST":
			fst = &rows[i]
		}
	}
	if basis == nil || fso == nil || fst == nil {
		t.Fatalf("missing variants: %+v", rows)
	}
	// Transfer must be faster than training from scratch.
	if fso.TimeSec >= basis.TimeSec || fst.TimeSec >= basis.TimeSec {
		t.Errorf("transfer not faster: basis=%.2fs fso=%.2fs fst=%.2fs",
			basis.TimeSec, fso.TimeSec, fst.TimeSec)
	}
}

func TestFigure8Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment grid; skipped in -short (CI) mode")
	}
	t.Parallel()
	series, err := testSuite.Figure8("sysbench")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Curve) < 4 {
			t.Fatalf("%s curve too short: %v", s.Model, s.Curve)
		}
	}
}
