package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/featred"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Table6Row is one row of the paper's Table VI: QCFE(qpp) on TPC-H at
// scale 2000 with a varying number of difference-propagation references.
type Table6Row struct {
	NumReferences  int
	MeanQ          float64
	P95            float64
	P90            float64
	RuntimeSec     float64 // FR runtime (grows linearly with |R|)
	ReductionRatio float64
}

// Table6 reproduces the reference-count robustness study: mean/95th/90th
// q-error, FR runtime, and reduction ratio as |R| grows from 200 to 500.
func (s *Suite) Table6(refCounts []int) ([]Table6Row, error) {
	key := fmt.Sprintf("table6:%v", refCounts)
	v, err := s.memo(key, func() (any, error) { return s.table6Impl(refCounts) })
	if err != nil {
		return nil, err
	}
	return v.([]Table6Row), nil
}

func (s *Suite) table6Impl(refCounts []int) ([]Table6Row, error) {
	benchmark := "tpch"
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	scale := 2000
	if len(pool.Samples) < scale {
		scale = len(pool.Samples)
	}
	train, test := workload.Split(pool.Scale(scale), 0.8)
	ds := s.Dataset(benchmark)
	snaps, snapMs, err := s.Snapshots(benchmark)
	if err != nil {
		return nil, err
	}
	iters := s.trainIters(benchmark)

	// The |R| arms stay serial on purpose: each row's RuntimeSec is a
	// wall-clock measurement of the FR step, and the paper's claim — FR
	// runtime grows with |R| — only holds when the measurements do not
	// contend with each other for cores.
	var out []Table6Row
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Table VI (tpch, scale=%d, QCFE(qpp)): reference-count robustness\n", scale)
	for _, nref := range refCounts {
		cfg := core.DefaultConfig("qppnet")
		cfg.NumReferences = nref
		cfg.TrainIters = iters
		cfg.Seed = s.P.Seed
		cfg.Prebuilt = snaps
		cfg.PrebuiltMs = snapMs

		// Measure the FR step in isolation (the paper's "runtime" column).
		f := &encoding.Featurizer{Enc: encoding.New(ds.Schema), Snaps: snaps}
		start := time.Now()
		mask, _, err := core.Reduce(f, train, cfg)
		if err != nil {
			return nil, err
		}
		frTime := time.Since(start)

		res, err := core.Run(ds, s.Envs(), train, cfg)
		if err != nil {
			return nil, err
		}
		qe := core.QErrors(res.Model, test)
		row := Table6Row{
			NumReferences:  nref,
			MeanQ:          metrics.Mean(qe),
			P95:            metrics.Percentile(qe, 95),
			P90:            metrics.Percentile(qe, 90),
			RuntimeSec:     frTime.Seconds(),
			ReductionRatio: featred.ReductionRatio(mask),
		}
		out = append(out, row)
		rep.printf("  refs=%-4d mean=%.3f p95=%.3f p90=%.3f runtime=%.2fs reduction=%.1f%%\n",
			row.NumReferences, row.MeanQ, row.P95, row.P90, row.RuntimeSec, 100*row.ReductionRatio)
	}
	return out, nil
}
