package experiments

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// ExperimentIDs lists the runnable experiment identifiers in paper order.
func ExperimentIDs() []string {
	return []string{"fig1", "table4", "fig5", "fig6", "fig7", "table5", "table6", "table7", "fig8"}
}

// RunAll executes the selected experiments ("all" or an id from
// ExperimentIDs) over the given benchmarks. Independent figure/table
// runners fan out over the worker pool — they share pools and snapshots
// through the suite's singleflight cache, and each flushes its printed
// block atomically. The two timing experiments (Table VI's FR-runtime
// column and Table VII/Figure 8's retraining-time comparison) run
// afterwards, serially, so their wall-clock measurements do not contend
// with other runners for cores.
func (s *Suite) RunAll(exp string, benchmarks []string) error {
	return s.RunAllCtx(context.Background(), exp, benchmarks)
}

// RunAllCtx is RunAll with cooperative cancellation: experiments not yet
// started when ctx is cancelled never start (the fan-out and the serial
// timing tail both check ctx between experiments), and the labeling
// pipeline inside each runner inherits the same cancellation through the
// worker pool. Experiments already running finish and flush their block.
func (s *Suite) RunAllCtx(ctx context.Context, exp string, benchmarks []string) error {
	if !validExperiment(exp) {
		return fmt.Errorf("experiments: unknown experiment %q", exp)
	}
	do := func(id string) bool { return exp == id || exp == "all" }

	var jobs []func() error
	add := func(id string, f func() error) {
		if do(id) {
			jobs = append(jobs, f)
		}
	}
	add("fig1", func() error { _, err := s.Figure1(); return err })
	for _, b := range benchmarks {
		b := b
		add("table4", func() error { _, err := s.Table4(b); return err })
		add("fig5", func() error { _, err := s.Figure5(b); return err })
		add("fig6", func() error { _, err := s.Figure6(b); return err })
	}
	add("fig7", func() error { _, err := s.Figure7(); return err })
	for _, b := range benchmarks {
		b := b
		if b == "sysbench" {
			continue // the paper runs Table V on TPC-H and job-light only
		}
		scales := []int{1, 2, 3, 4}
		if b == "imdb" {
			scales = []int{2, 4, 6, 8}
		}
		add("table5", func() error { _, err := s.Table5(b, scales); return err })
	}
	if err := parallel.DoCtx(ctx, 0, jobs...); err != nil {
		return err
	}

	// Timing-sensitive experiments, serial and last, each gated on ctx.
	if do("table6") {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := s.Table6([]int{200, 250, 300, 400, 500}); err != nil {
			return err
		}
	}
	for _, b := range benchmarks {
		if b == "sysbench" {
			continue // §V-E evaluates transfer on TPC-H and job-light
		}
		if do("table7") {
			if err := ctx.Err(); err != nil {
				return err
			}
			if _, err := s.Table7(b); err != nil {
				return err
			}
		}
		if do("fig8") {
			if err := ctx.Err(); err != nil {
				return err
			}
			if _, err := s.Figure8(b); err != nil {
				return err
			}
		}
	}
	return nil
}

func validExperiment(exp string) bool {
	if exp == "all" {
		return true
	}
	for _, id := range ExperimentIDs() {
		if exp == id {
			return true
		}
	}
	return false
}
