// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each runner prints the same rows or series the paper
// reports and returns them as structured data for the benchmark harness.
//
// Runners are independent and safe to invoke concurrently: every shared
// artifact (dataset, environment set, labeled pool, snapshot set, runner
// result) is built exactly once behind a singleflight cache, and each
// runner buffers its human-readable block and flushes it atomically, so
// parallel runs do not interleave lines. RunAll fans independent runners
// out over the worker pool.
//
// The experiment → module mapping lives in DESIGN.md; the measured-vs-paper
// comparison lives in EXPERIMENTS.md.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// Params sizes the experiment grid. Default values mirror the paper's
// workload configuration scaled to the in-repo datasets; Quick shrinks
// everything for unit tests.
type Params struct {
	NumEnvs     int            // environment (knob-config) count; paper: 20
	PerEnv      map[string]int // labeled queries per environment per benchmark
	Scales      []int          // labeled-set scales; paper: 2000…10000
	Iters       map[string]int // training iterations per benchmark
	Fig1Queries int            // probe queries per Figure 1 cell; paper: 1000
	Seed        int64
}

// DefaultParams reproduces the paper's workload configuration: 20
// environments; pools of 17,600 (TPC-H) and 14,000 (Sysbench, job-light)
// labeled queries; scales 2000–10000; iterations 400/100/800.
func DefaultParams() Params {
	return Params{
		NumEnvs:     20,
		PerEnv:      map[string]int{"tpch": 880, "sysbench": 700, "imdb": 700},
		Scales:      []int{2000, 4000, 6000, 8000, 10000},
		Iters:       map[string]int{"tpch": 1200, "sysbench": 300, "imdb": 1500},
		Fig1Queries: 1000,
		Seed:        1,
	}
}

// QuickParams shrinks the grid for tests (4 envs, small pools, 2 scales,
// 250-query Figure 1 cells).
func QuickParams() Params {
	return Params{
		NumEnvs:     4,
		PerEnv:      map[string]int{"tpch": 60, "sysbench": 100, "imdb": 50},
		Scales:      []int{120, 200},
		Iters:       map[string]int{"tpch": 60, "sysbench": 60, "imdb": 60},
		Fig1Queries: 250,
		Seed:        1,
	}
}

// fig1Queries returns the configured Figure 1 cell size (paper default
// when unset).
func (p Params) fig1Queries() int {
	if p.Fig1Queries > 0 {
		return p.Fig1Queries
	}
	return 1000
}

// call is one singleflight slot: the first goroutine to claim a key runs
// the computation inside the Once; everyone else blocks on the same Once
// and reads the shared result.
type call struct {
	once sync.Once
	v    any
	err  error
}

// Suite owns the shared state of an experiment run: datasets, environment
// set, labeled pools, per-benchmark snapshots, and memoized runner
// results, all built lazily, exactly once, and shared across concurrent
// runners.
type Suite struct {
	P   Params
	Out io.Writer

	mu    sync.Mutex // guards calls
	calls map[string]*call

	outMu sync.Mutex // serializes flushed report blocks on Out
}

// NewSuite builds a suite writing its human-readable rows to out.
func NewSuite(p Params, out io.Writer) *Suite {
	return &Suite{P: p, Out: out, calls: make(map[string]*call)}
}

// memo runs compute exactly once per key — across repeated and concurrent
// callers — and returns the shared result. Experiment runners are memoized
// so that benchmark harnesses (which may invoke them many times as
// testing.B scales b.N) and parallel runners (which share pools and
// snapshots) do the expensive work — and print their report — once per
// suite.
func (s *Suite) memo(key string, compute func() (any, error)) (any, error) {
	s.mu.Lock()
	c, ok := s.calls[key]
	if !ok {
		c = &call{}
		s.calls[key] = c
	}
	s.mu.Unlock()
	c.once.Do(func() { c.v, c.err = compute() })
	return c.v, c.err
}

// report accumulates one experiment's printed block and flushes it to the
// suite's writer in a single critical section, keeping concurrent runners'
// output readable.
type report struct {
	s   *Suite
	buf bytes.Buffer
}

func (s *Suite) newReport() *report { return &report{s: s} }

func (r *report) printf(format string, args ...any) {
	if r.s.Out != nil {
		fmt.Fprintf(&r.buf, format, args...)
	}
}

func (r *report) flush() {
	if r.s.Out == nil || r.buf.Len() == 0 {
		return
	}
	r.s.outMu.Lock()
	defer r.s.outMu.Unlock()
	r.s.Out.Write(r.buf.Bytes())
	r.buf.Reset()
}

// Envs returns the sampled environment set (the paper's 20 random knob
// configurations).
func (s *Suite) Envs() []*dbenv.Environment {
	v, _ := s.memo("envs", func() (any, error) {
		return dbenv.SampleSet(s.P.NumEnvs, s.P.Seed), nil
	})
	return v.([]*dbenv.Environment)
}

// Dataset returns (building if needed) the named benchmark dataset.
func (s *Suite) Dataset(name string) *datagen.Dataset {
	v, err := s.memo("dataset:"+name, func() (any, error) {
		return datagen.Build(name, s.P.Seed)
	})
	if err != nil {
		panic(err)
	}
	return v.(*datagen.Dataset)
}

// Pool returns the labeled query pool for a benchmark, collecting it on
// first use.
func (s *Suite) Pool(name string) (*workload.Labeled, error) {
	v, err := s.memo("pool:"+name, func() (any, error) {
		perEnv := s.P.PerEnv[name]
		if perEnv == 0 {
			perEnv = 100
		}
		return workload.Collect(s.Dataset(name), s.Envs(), perEnv, s.P.Seed)
	})
	if err != nil {
		return nil, err
	}
	return v.(*workload.Labeled), nil
}

// snapshotSet bundles the per-environment snapshots with their total
// collection cost.
type snapshotSet struct {
	snaps map[int]*snapshot.Snapshot
	ms    float64
}

// Snapshots returns the default (FST, scale 2) per-environment snapshots
// for a benchmark, fitting them on first use, plus the total collection
// cost in simulated ms.
func (s *Suite) Snapshots(name string) (map[int]*snapshot.Snapshot, float64, error) {
	v, err := s.memo("snapshots:"+name, func() (any, error) {
		cfg := core.DefaultConfig("mscn")
		cfg.Seed = s.P.Seed
		snaps, ms, err := core.BuildSnapshots(s.Dataset(name), s.Envs(), cfg)
		if err != nil {
			return nil, err
		}
		return &snapshotSet{snaps: snaps, ms: ms}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	set := v.(*snapshotSet)
	return set.snaps, set.ms, nil
}

// trainIters returns the per-benchmark iteration budget.
func (s *Suite) trainIters(name string) int {
	if it, ok := s.Iters()[name]; ok {
		return it
	}
	return 200
}

// Iters exposes the per-benchmark iteration map (default 200).
func (s *Suite) Iters() map[string]int { return s.P.Iters }
