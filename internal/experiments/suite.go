// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each runner prints the same rows or series the paper
// reports and returns them as structured data for the benchmark harness.
//
// The experiment → module mapping lives in DESIGN.md; the measured-vs-paper
// comparison lives in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// Params sizes the experiment grid. Default values mirror the paper's
// workload configuration scaled to the in-repo datasets; Quick shrinks
// everything for unit tests.
type Params struct {
	NumEnvs int            // environment (knob-config) count; paper: 20
	PerEnv  map[string]int // labeled queries per environment per benchmark
	Scales  []int          // labeled-set scales; paper: 2000…10000
	Iters   map[string]int // training iterations per benchmark
	Seed    int64
}

// DefaultParams reproduces the paper's workload configuration: 20
// environments; pools of 17,600 (TPC-H) and 14,000 (Sysbench, job-light)
// labeled queries; scales 2000–10000; iterations 400/100/800.
func DefaultParams() Params {
	return Params{
		NumEnvs: 20,
		PerEnv:  map[string]int{"tpch": 880, "sysbench": 700, "imdb": 700},
		Scales:  []int{2000, 4000, 6000, 8000, 10000},
		Iters:   map[string]int{"tpch": 1200, "sysbench": 300, "imdb": 1500},
		Seed:    1,
	}
}

// QuickParams shrinks the grid for tests (4 envs, small pools, 2 scales).
func QuickParams() Params {
	return Params{
		NumEnvs: 4,
		PerEnv:  map[string]int{"tpch": 60, "sysbench": 100, "imdb": 50},
		Scales:  []int{120, 200},
		Iters:   map[string]int{"tpch": 60, "sysbench": 60, "imdb": 60},
		Seed:    1,
	}
}

// Suite owns the shared state of an experiment run: datasets, environment
// set, labeled pools, and per-benchmark snapshots, all built lazily and
// cached.
type Suite struct {
	P   Params
	Out io.Writer

	mu       sync.Mutex
	envs     []*dbenv.Environment
	datasets map[string]*datagen.Dataset
	pools    map[string]*workload.Labeled
	snaps    map[string]map[int]*snapshot.Snapshot
	snapMs   map[string]float64
	t4cache  map[string][]Table4Row
	memoed   map[string]any
}

// NewSuite builds a suite writing its human-readable rows to out.
func NewSuite(p Params, out io.Writer) *Suite {
	return &Suite{
		P: p, Out: out,
		datasets: make(map[string]*datagen.Dataset),
		pools:    make(map[string]*workload.Labeled),
		snaps:    make(map[string]map[int]*snapshot.Snapshot),
		snapMs:   make(map[string]float64),
		t4cache:  make(map[string][]Table4Row),
		memoed:   make(map[string]any),
	}
}

func (s *Suite) printf(format string, args ...any) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format, args...)
	}
}

// Envs returns the sampled environment set (the paper's 20 random knob
// configurations).
func (s *Suite) Envs() []*dbenv.Environment {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.envs == nil {
		s.envs = dbenv.SampleSet(s.P.NumEnvs, s.P.Seed)
	}
	return s.envs
}

// Dataset returns (building if needed) the named benchmark dataset.
func (s *Suite) Dataset(name string) *datagen.Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds, ok := s.datasets[name]; ok {
		return ds
	}
	ds, err := datagen.Build(name, s.P.Seed)
	if err != nil {
		panic(err)
	}
	s.datasets[name] = ds
	return ds
}

// Pool returns the labeled query pool for a benchmark, collecting it on
// first use.
func (s *Suite) Pool(name string) (*workload.Labeled, error) {
	ds := s.Dataset(name)
	envs := s.Envs()
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[name]; ok {
		return p, nil
	}
	perEnv := s.P.PerEnv[name]
	if perEnv == 0 {
		perEnv = 100
	}
	lab, err := workload.Collect(ds, envs, perEnv, s.P.Seed)
	if err != nil {
		return nil, err
	}
	s.pools[name] = lab
	return lab, nil
}

// Snapshots returns the default (FST, scale 2) per-environment snapshots
// for a benchmark, fitting them on first use, plus the total collection
// cost in simulated ms.
func (s *Suite) Snapshots(name string) (map[int]*snapshot.Snapshot, float64, error) {
	ds := s.Dataset(name)
	envs := s.Envs()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn, ok := s.snaps[name]; ok {
		return sn, s.snapMs[name], nil
	}
	cfg := core.DefaultConfig("mscn")
	cfg.Seed = s.P.Seed
	snaps, ms, err := core.BuildSnapshots(ds, envs, cfg)
	if err != nil {
		return nil, 0, err
	}
	s.snaps[name] = snaps
	s.snapMs[name] = ms
	return snaps, ms, nil
}

// trainIters returns the per-benchmark iteration budget.
func (s *Suite) trainIters(name string) int {
	if it, ok := s.Iters()[name]; ok {
		return it
	}
	return 200
}

// Iters exposes the per-benchmark iteration map (default 200).
func (s *Suite) Iters() map[string]int { return s.P.Iters }

// memo runs compute once per key and caches the result. Experiment runners
// are memoized so that benchmark harnesses (which may invoke them many
// times as testing.B scales b.N) do the expensive work — and print their
// report — exactly once per suite.
func (s *Suite) memo(key string, compute func() (any, error)) (any, error) {
	s.mu.Lock()
	if v, ok := s.memoed[key]; ok {
		s.mu.Unlock()
		return v, nil
	}
	s.mu.Unlock()
	v, err := compute()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.memoed[key] = v
	s.mu.Unlock()
	return v, nil
}
