package experiments

import (
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/featred"
	"repro/internal/parallel"
	"repro/internal/planner"
	"repro/internal/workload"
)

// Fig7Row reports, for one operator type, how many features each reduction
// method prunes — the per-operator bars of the paper's Figure 7.
type Fig7Row struct {
	Operator   string
	TotalDim   int
	DropFR     int
	DropGD     int
	DropGreedy int
}

// Figure7 reproduces the feature-reduction comparison on TPC-H: the
// operator-level labeled set is partitioned by operator type (QPPNet's
// per-operator networks each see their own feature space), each partition
// gets its own probe model, and the three methods report how many
// dimensions they drop.
func (s *Suite) Figure7() ([]Fig7Row, error) {
	v, err := s.memo("fig7", func() (any, error) { return s.figure7Impl() })
	if err != nil {
		return nil, err
	}
	return v.([]Fig7Row), nil
}

func (s *Suite) figure7Impl() ([]Fig7Row, error) {
	benchmark := "tpch"
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	snaps, _, err := s.Snapshots(benchmark)
	if err != nil {
		return nil, err
	}
	scale := fig6Scale
	if len(pool.Samples) < scale {
		scale = len(pool.Samples)
	}
	train, _ := workload.Split(pool.Scale(scale), 0.8)
	ds := s.Dataset(benchmark)
	f := &encoding.Featurizer{Enc: encoding.New(ds.Schema), Snaps: snaps}
	full := core.OperatorDataset(f, train)

	cfg := core.DefaultConfig("qppnet")
	cfg.Seed = s.P.Seed

	// One probe model per operator type; the probes are independent and run
	// concurrently. Operators too rare to probe return a nil row.
	ops := planner.AllOpTypes()
	probed, err := parallel.Map(len(ops), 0, func(oi int) (*Fig7Row, error) {
		op := ops[oi]
		sub := filterByOp(full, op)
		if len(sub.X) < 30 {
			return nil, nil // operator too rare in the workload to probe
		}
		sub = sub.Subsample(cfg.ProbeSamples, cfg.Seed)
		probe := featred.TrainProbe(sub, 32, cfg.ProbeEpochs, cfg.Seed)

		frMask := featred.MaskFromScores(
			featred.DiffPropScores(probe, sub.X, cfg.NumReferences, cfg.Seed), cfg.Threshold)
		gdMask := featred.MaskFromScores(
			featred.GradientScores(probe, sub.X), cfg.Threshold)
		greedyMask := featred.GreedyReduce(probe, sub.Subsample(300, cfg.Seed))

		return &Fig7Row{
			Operator:   op.String(),
			TotalDim:   sub.Dim(),
			DropFR:     sub.Dim() - featred.CountKept(frMask),
			DropGD:     sub.Dim() - featred.CountKept(gdMask),
			DropGreedy: sub.Dim() - featred.CountKept(greedyMask),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig7Row
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Figure 7 (tpch): features dropped per operator by Greedy / GD / FR\n")
	for _, row := range probed {
		if row == nil {
			continue
		}
		out = append(out, *row)
		rep.printf("  %-12s dim=%d  greedy=%d  gd=%d  fr=%d\n",
			row.Operator, row.TotalDim, row.DropGreedy, row.DropGD, row.DropFR)
	}
	return out, nil
}

// filterByOp selects the operator-dataset rows whose op one-hot matches op.
// The op one-hot occupies the first NumOpTypes dimensions of the encoding.
func filterByOp(d *featred.Dataset, op planner.OpType) *featred.Dataset {
	out := &featred.Dataset{Names: d.Names}
	for i, x := range d.X {
		if x[int(op)] == 1 {
			out.X = append(out.X, x)
			out.Y = append(out.Y, d.Y[i])
		}
	}
	return out
}

// ReductionSummary aggregates Figure 7 into the paper's headline ratios
// (Greedy ≈1.2%, GD and FR ≈41% on average).
func ReductionSummary(rows []Fig7Row) (greedy, gd, fr float64) {
	var dim, g, d, f int
	for _, r := range rows {
		dim += r.TotalDim
		g += r.DropGreedy
		d += r.DropGD
		f += r.DropFR
	}
	if dim == 0 {
		return 0, 0, 0
	}
	return float64(g) / float64(dim), float64(d) / float64(dim), float64(f) / float64(dim)
}
