package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// Fig6Row is one ablation arm of Figure 6 on one benchmark.
type Fig6Row struct {
	Benchmark string
	Variant   string // FSO, FST, FSO+FR, FSO+GD, FSO+Greedy
	MeanQ     float64
	Median    float64
	P90       float64
	Pearson   float64
}

// fig6Scale is the labeled-set size of the paper's ablation (Figure 6 uses
// scale = 4000); shrunk automatically when the pool is smaller.
const fig6Scale = 4000

// Figure6 reproduces the ablation study: the QPPNet model under five QCFE
// design choices — snapshot from original queries (FSO), snapshot from
// simplified templates (FST), and FSO combined with the three reduction
// methods (FR, GD, Greedy).
func (s *Suite) Figure6(benchmark string) ([]Fig6Row, error) {
	v, err := s.memo("fig6:"+benchmark, func() (any, error) { return s.figure6Impl(benchmark) })
	if err != nil {
		return nil, err
	}
	return v.([]Fig6Row), nil
}

func (s *Suite) figure6Impl(benchmark string) ([]Fig6Row, error) {
	pool, err := s.Pool(benchmark)
	if err != nil {
		return nil, err
	}
	scale := fig6Scale
	if len(pool.Samples) < scale {
		scale = len(pool.Samples)
	}
	train, test := workload.Split(pool.Scale(scale), 0.8)
	ds := s.Dataset(benchmark)
	iters := s.trainIters(benchmark)

	variants := []struct {
		name      string
		mode      core.SnapshotMode
		reduction core.ReductionMethod
	}{
		{"FSO", core.FSO, core.ReduceNone},
		{"FST", core.FST, core.ReduceNone},
		{"FSO+FR", core.FSO, core.ReduceFR},
		{"FSO+GD", core.FSO, core.ReduceGD},
		{"FSO+Greedy", core.FSO, core.ReduceGreedy},
	}
	// FSO snapshots are shared by four variants; build once.
	fsoCfg := core.DefaultConfig("qppnet")
	fsoCfg.SnapshotMode = core.FSO
	fsoCfg.Seed = s.P.Seed
	fsoSnaps, fsoMs, err := core.BuildSnapshots(ds, s.Envs(), fsoCfg)
	if err != nil {
		return nil, err
	}

	// The five ablation arms are independent fits over the shared read-only
	// pool and snapshots; they run concurrently and report in paper order.
	out, err := parallel.Map(len(variants), 0, func(vi int) (Fig6Row, error) {
		v := variants[vi]
		cfg := core.DefaultConfig("qppnet")
		cfg.SnapshotMode = v.mode
		cfg.Reduction = v.reduction
		cfg.TrainIters = iters
		cfg.Seed = s.P.Seed
		if v.mode == core.FSO {
			cfg.Prebuilt = fsoSnaps
			cfg.PrebuiltMs = fsoMs
		}
		res, err := core.Run(ds, s.Envs(), train, cfg)
		if err != nil {
			return Fig6Row{}, err
		}
		qe := core.QErrors(res.Model, test)
		sum := core.Evaluate(res.Model, test)
		return Fig6Row{
			Benchmark: benchmark, Variant: v.name,
			MeanQ:   sum.Mean,
			Median:  metrics.Percentile(qe, 50),
			P90:     metrics.Percentile(qe, 90),
			Pearson: sum.Pearson,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rep := s.newReport()
	defer rep.flush()
	rep.printf("Figure 6 (%s, scale=%d, qppnet): ablation of QCFE design choices\n", benchmark, scale)
	for _, row := range out {
		rep.printf("  %-10s mean=%.3f median=%.3f p90=%.3f pearson=%.3f\n",
			row.Variant, row.MeanQ, row.Median, row.P90, row.Pearson)
	}
	return out, nil
}
