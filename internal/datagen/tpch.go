package datagen

import (
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// TPC-H row counts at the internal scale (≈SF 0.01, ratios preserved from
// the spec: lineitem ≈ 4×orders, partsupp = 4×part, customer = 10×orders/15).
const (
	tpchRegions   = 5
	tpchNations   = 25
	tpchSuppliers = 100
	tpchCustomers = 1500
	tpchParts     = 2000
	tpchPartsupp  = 4 * tpchParts
	tpchOrders    = 15000
	tpchLineitem  = 60000
)

// Segment / priority / shipmode vocabularies from the TPC-H spec.
var (
	tpchSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	tpchShipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	tpchFlags      = []string{"A", "N", "R"}
	tpchStatus     = []string{"O", "F", "P"}
)

// TPCHSchema returns the eight-table TPC-H schema with the standard primary
// and foreign-key indexes.
func TPCHSchema() *catalog.Schema {
	s := catalog.NewSchema("tpch")
	s.AddTable(catalog.NewTable("region",
		catalog.Column{Name: "r_regionkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "r_name", Type: catalog.StringCol, Width: 16},
	))
	s.AddTable(catalog.NewTable("nation",
		catalog.Column{Name: "n_nationkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "n_name", Type: catalog.StringCol, Width: 16},
		catalog.Column{Name: "n_regionkey", Type: catalog.IntCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("supplier",
		catalog.Column{Name: "s_suppkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "s_name", Type: catalog.StringCol, Width: 20},
		catalog.Column{Name: "s_nationkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "s_acctbal", Type: catalog.FloatCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("customer",
		catalog.Column{Name: "c_custkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "c_name", Type: catalog.StringCol, Width: 20},
		catalog.Column{Name: "c_nationkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "c_acctbal", Type: catalog.FloatCol, Width: 8},
		catalog.Column{Name: "c_mktsegment", Type: catalog.StringCol, Width: 12},
	))
	s.AddTable(catalog.NewTable("part",
		catalog.Column{Name: "p_partkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "p_name", Type: catalog.StringCol, Width: 36},
		catalog.Column{Name: "p_brand", Type: catalog.StringCol, Width: 12},
		catalog.Column{Name: "p_size", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "p_retailprice", Type: catalog.FloatCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("partsupp",
		catalog.Column{Name: "ps_partkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "ps_suppkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "ps_availqty", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "ps_supplycost", Type: catalog.FloatCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("orders",
		catalog.Column{Name: "o_orderkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "o_custkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "o_orderstatus", Type: catalog.StringCol, Width: 4},
		catalog.Column{Name: "o_totalprice", Type: catalog.FloatCol, Width: 8},
		catalog.Column{Name: "o_orderdate", Type: catalog.DateCol, Width: 8},
		catalog.Column{Name: "o_orderpriority", Type: catalog.StringCol, Width: 16},
	))
	s.AddTable(catalog.NewTable("lineitem",
		catalog.Column{Name: "l_orderkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "l_partkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "l_suppkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "l_quantity", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "l_extendedprice", Type: catalog.FloatCol, Width: 8},
		catalog.Column{Name: "l_discount", Type: catalog.FloatCol, Width: 8},
		catalog.Column{Name: "l_shipdate", Type: catalog.DateCol, Width: 8},
		catalog.Column{Name: "l_returnflag", Type: catalog.StringCol, Width: 4},
		catalog.Column{Name: "l_shipmode", Type: catalog.StringCol, Width: 12},
	))

	for _, ix := range []catalog.IndexDef{
		{Name: "pk_region", Table: "region", Column: "r_regionkey", Unique: true},
		{Name: "pk_nation", Table: "nation", Column: "n_nationkey", Unique: true},
		{Name: "pk_supplier", Table: "supplier", Column: "s_suppkey", Unique: true},
		{Name: "pk_customer", Table: "customer", Column: "c_custkey", Unique: true},
		{Name: "pk_part", Table: "part", Column: "p_partkey", Unique: true},
		{Name: "idx_partsupp_pk", Table: "partsupp", Column: "ps_partkey"},
		{Name: "idx_partsupp_sk", Table: "partsupp", Column: "ps_suppkey"},
		{Name: "pk_orders", Table: "orders", Column: "o_orderkey", Unique: true},
		{Name: "idx_orders_ck", Table: "orders", Column: "o_custkey"},
		{Name: "idx_orders_date", Table: "orders", Column: "o_orderdate"},
		{Name: "idx_lineitem_ok", Table: "lineitem", Column: "l_orderkey"},
		{Name: "idx_lineitem_pk", Table: "lineitem", Column: "l_partkey"},
		{Name: "idx_lineitem_sd", Table: "lineitem", Column: "l_shipdate"},
	} {
		s.AddIndex(ix)
	}
	return s
}

// TPCH generates the full dataset deterministically from seed.
func TPCH(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := TPCHSchema()
	db := storage.NewDatabase(s)

	for i := 0; i < tpchRegions; i++ {
		db.Heap("region").Append(catalog.Row{
			catalog.IntVal(int64(i)), catalog.StrVal(randWord(rng, 8)),
		})
	}
	for i := 0; i < tpchNations; i++ {
		db.Heap("nation").Append(catalog.Row{
			catalog.IntVal(int64(i)), catalog.StrVal(randWord(rng, 10)),
			catalog.IntVal(int64(i % tpchRegions)),
		})
	}
	for i := 0; i < tpchSuppliers; i++ {
		db.Heap("supplier").Append(catalog.Row{
			catalog.IntVal(int64(i)), catalog.StrVal("Supplier#" + randWord(rng, 6)),
			catalog.IntVal(rng.Int63n(tpchNations)),
			catalog.FloatVal(rng.Float64()*11000 - 1000),
		})
	}
	for i := 0; i < tpchCustomers; i++ {
		db.Heap("customer").Append(catalog.Row{
			catalog.IntVal(int64(i)), catalog.StrVal("Customer#" + randWord(rng, 6)),
			catalog.IntVal(rng.Int63n(tpchNations)),
			catalog.FloatVal(rng.Float64()*11000 - 1000),
			catalog.StrVal(pick(rng, tpchSegments)),
		})
	}
	for i := 0; i < tpchParts; i++ {
		db.Heap("part").Append(catalog.Row{
			catalog.IntVal(int64(i)), catalog.StrVal(randWord(rng, 12)),
			catalog.StrVal("Brand#" + string('1'+byte(rng.Intn(5))) + string('1'+byte(rng.Intn(5)))),
			catalog.IntVal(1 + rng.Int63n(50)),
			catalog.FloatVal(900 + rng.Float64()*1100),
		})
	}
	for p := 0; p < tpchParts; p++ {
		for j := 0; j < tpchPartsupp/tpchParts; j++ {
			db.Heap("partsupp").Append(catalog.Row{
				catalog.IntVal(int64(p)),
				catalog.IntVal(rng.Int63n(tpchSuppliers)),
				catalog.IntVal(1 + rng.Int63n(9999)),
				catalog.FloatVal(1 + rng.Float64()*999),
			})
		}
	}
	// Dates span 1992-01-01..1998-12-31 as day offsets.
	const dateLo, dateSpan = 8036, 2556
	for i := 0; i < tpchOrders; i++ {
		db.Heap("orders").Append(catalog.Row{
			catalog.IntVal(int64(i)),
			catalog.IntVal(rng.Int63n(tpchCustomers)),
			catalog.StrVal(pick(rng, tpchStatus)),
			catalog.FloatVal(1000 + rng.Float64()*450000),
			catalog.IntVal(dateLo + rng.Int63n(dateSpan)),
			catalog.StrVal(pick(rng, tpchPriorities)),
		})
	}
	for i := 0; i < tpchLineitem; i++ {
		orderkey := rng.Int63n(tpchOrders)
		db.Heap("lineitem").Append(catalog.Row{
			catalog.IntVal(orderkey),
			catalog.IntVal(rng.Int63n(tpchParts)),
			catalog.IntVal(rng.Int63n(tpchSuppliers)),
			catalog.IntVal(1 + rng.Int63n(50)),
			catalog.FloatVal(900 + rng.Float64()*104000),
			catalog.FloatVal(rng.Float64() * 0.1),
			catalog.IntVal(dateLo + rng.Int63n(dateSpan+120)),
			catalog.StrVal(pick(rng, tpchFlags)),
			catalog.StrVal(pick(rng, tpchShipmodes)),
		})
	}
	db.BuildIndexes()
	return &Dataset{Name: "tpch", Schema: s, DB: db, Stats: buildStats(db, rng)}
}
