package datagen

import (
	"testing"

	"repro/internal/catalog"
)

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("oracle", 1); err == nil {
		t.Fatalf("unknown dataset should error")
	}
}

func TestBuildDispatch(t *testing.T) {
	for _, name := range BenchmarkNames() {
		ds, err := Build(name, 1)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		if ds.Name != name {
			t.Fatalf("name = %q, want %q", ds.Name, name)
		}
	}
}

func TestTPCHShape(t *testing.T) {
	ds := TPCH(1)
	wantRows := map[string]int{
		"region": tpchRegions, "nation": tpchNations, "supplier": tpchSuppliers,
		"customer": tpchCustomers, "part": tpchParts, "partsupp": tpchPartsupp,
		"orders": tpchOrders, "lineitem": tpchLineitem,
	}
	for tab, want := range wantRows {
		h := ds.DB.Heap(tab)
		if h == nil || h.NumRows() != want {
			t.Fatalf("%s rows = %v, want %d", tab, h, want)
		}
	}
	// Referential integrity: every lineitem.l_orderkey exists in orders.
	lh := ds.DB.Heap("lineitem")
	ok := ds.DB.Heap("orders").NumRows()
	oi := lh.Table.ColIndex("l_orderkey")
	for r := 0; r < lh.NumRows(); r += 97 {
		key := lh.Get(r)[oi].I
		if key < 0 || key >= int64(ok) {
			t.Fatalf("dangling l_orderkey %d", key)
		}
	}
	if len(ds.DB.Indexes) != 13 {
		t.Fatalf("indexes = %d, want 13", len(ds.DB.Indexes))
	}
}

func TestTPCHDeterministic(t *testing.T) {
	a, b := TPCH(7), TPCH(7)
	ha, hb := a.DB.Heap("orders"), b.DB.Heap("orders")
	for r := 0; r < 100; r++ {
		for c := range ha.Get(r) {
			if ha.Get(r)[c].Compare(hb.Get(r)[c]) != 0 {
				t.Fatalf("row %d col %d differs across same-seed builds", r, c)
			}
		}
	}
}

func TestTPCHStats(t *testing.T) {
	ds := TPCH(1)
	cs := ds.Stats.Col("lineitem", "l_quantity")
	if cs == nil {
		t.Fatalf("missing stats")
	}
	if cs.RowCount != tpchLineitem {
		t.Fatalf("RowCount = %d", cs.RowCount)
	}
	if cs.DistinctVals != 50 {
		t.Fatalf("l_quantity NDV = %d, want 50", cs.DistinctVals)
	}
	if cs.Min != 1 || cs.Max != 50 {
		t.Fatalf("l_quantity range [%d,%d]", cs.Min, cs.Max)
	}
}

func TestIMDBShapeAndSkew(t *testing.T) {
	ds := IMDB(1)
	if ds.DB.Heap("title").NumRows() != imdbTitles {
		t.Fatalf("title rows = %d", ds.DB.Heap("title").NumRows())
	}
	// Popularity skew: the most popular movie should own far more
	// cast_info rows than the uniform share.
	ch := ds.DB.Heap("cast_info")
	mi := ch.Table.ColIndex("movie_id")
	counts := make(map[int64]int)
	for r := 0; r < ch.NumRows(); r++ {
		counts[ch.Get(r)[mi].I]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniform := imdbCastInfo / imdbTitles
	if maxCount < 20*uniform {
		t.Fatalf("skew too weak: max=%d uniform=%d", maxCount, uniform)
	}
	// production_year has NULLs.
	cs := ds.Stats.Col("title", "production_year")
	if cs.NullFrac <= 0 || cs.NullFrac > 0.15 {
		t.Fatalf("NullFrac = %v", cs.NullFrac)
	}
}

func TestSysbenchShape(t *testing.T) {
	ds := Sysbench(1)
	h := ds.DB.Heap("sbtest1")
	if h.NumRows() != sysbenchRows {
		t.Fatalf("rows = %d", h.NumRows())
	}
	// Dense primary key.
	idI := h.Table.ColIndex("id")
	for r := 0; r < 1000; r++ {
		if h.Get(r)[idI].I != int64(r) {
			t.Fatalf("id not dense at %d", r)
		}
	}
	// k clusters near the middle of its domain.
	cs := ds.Stats.Col("sbtest1", "k")
	mid := int64(sysbenchKMax / 2)
	if cs.Min > mid || cs.Max < mid {
		t.Fatalf("k stats look wrong: [%d,%d]", cs.Min, cs.Max)
	}
	if _, ok := ds.Schema.IndexOn("sbtest1", "k"); !ok {
		t.Fatalf("k index missing")
	}
}

func TestStatsSelectivitySanity(t *testing.T) {
	ds := TPCH(1)
	cs := ds.Stats.Col("orders", "o_orderdate")
	lo, hi := catalog.IntVal(8036), catalog.IntVal(8036+2556/2)
	sel := cs.SelectivityRange(&lo, &hi)
	if sel < 0.4 || sel > 0.6 {
		t.Fatalf("date half-range selectivity = %v, want ≈0.5", sel)
	}
}

func TestRandWordAndPick(t *testing.T) {
	ds := Sysbench(2)
	h := ds.DB.Heap("sbtest1")
	ci := h.Table.ColIndex("c")
	if got := len(h.Get(0)[ci].S); got != 24 {
		t.Fatalf("c width = %d", got)
	}
}
