package datagen

import (
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// Sysbench sbtest table size at internal scale (the paper uses 5,000,000;
// 120k keeps the point-select / range-select balance while running fast).
const sysbenchRows = 120000

// sysbenchKMax bounds the non-unique secondary key domain; sysbench draws
// k from a narrow Gaussian, giving heavy duplication on the k index.
const sysbenchKMax = 10000

// SysbenchSchema returns the single-table sbtest1 schema with the standard
// primary key on id and secondary index on k.
func SysbenchSchema() *catalog.Schema {
	s := catalog.NewSchema("sysbench")
	s.AddTable(catalog.NewTable("sbtest1",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "k", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "c", Type: catalog.StringCol, Width: 120},
		catalog.Column{Name: "pad", Type: catalog.StringCol, Width: 60},
	))
	s.AddIndex(catalog.IndexDef{Name: "pk_sbtest1", Table: "sbtest1", Column: "id", Unique: true})
	s.AddIndex(catalog.IndexDef{Name: "k_1", Table: "sbtest1", Column: "k"})
	return s
}

// Sysbench generates the sbtest1 dataset: dense primary keys, Gaussian-
// clustered secondary key k (as sysbench's default "special" distribution
// concentrates values), and wide filler strings that dominate row width —
// exactly the physical shape that makes sysbench queries I/O-light and
// CPU-visible.
func Sysbench(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := SysbenchSchema()
	db := storage.NewDatabase(s)
	h := db.Heap("sbtest1")
	for i := 0; i < sysbenchRows; i++ {
		k := int64(float64(sysbenchKMax)/2 + rng.NormFloat64()*float64(sysbenchKMax)/8)
		if k < 0 {
			k = 0
		}
		if k >= sysbenchKMax {
			k = sysbenchKMax - 1
		}
		h.Append(catalog.Row{
			catalog.IntVal(int64(i)),
			catalog.IntVal(k),
			catalog.StrVal(randWord(rng, 24)),
			catalog.StrVal(randWord(rng, 12)),
		})
	}
	db.BuildIndexes()
	return &Dataset{Name: "sysbench", Schema: s, DB: db, Stats: buildStats(db, rng)}
}
