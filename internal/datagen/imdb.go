package datagen

import (
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// IMDB row counts at internal scale. The original job-light subset of IMDB
// joins `title` against five fact tables on movie_id; fact-table ratios
// mirror the real dataset (cast_info ≈ 14×title, movie_info ≈ 6×title …)
// scaled so title = 8k rows.
const (
	imdbTitles        = 8000
	imdbMovieInfo     = 48000
	imdbCastInfo      = 96000
	imdbMovieKeyword  = 36000
	imdbMovieCompany  = 20000
	imdbMovieInfoIdx  = 11000
	imdbKindMax       = 7   // title.kind_id domain
	imdbInfoTypeMax   = 110 // movie_info.info_type_id domain
	imdbRoleMax       = 11  // cast_info.role_id domain
	imdbCompTypeMax   = 4   // movie_companies.company_type_id domain
	imdbCompanyMax    = 2000
	imdbKeywordMax    = 5000
	imdbPersonMax     = 40000
	imdbYearLo        = 1930
	imdbYearHi        = 2017
	imdbProdYearNullP = 0.05

	// Popularity skew: a small hot set of blockbuster movies receives a
	// disproportionate share of fact rows. The share is bounded (unlike an
	// unbounded Zipf) so that multi-way join cardinalities stay within the
	// range real job-light queries produce rather than exploding
	// quadratically on one mega-popular key.
	imdbHotMovies = 80
	imdbHotShare  = 0.3
)

// IMDBSchema returns the six-table job-light schema with the standard
// primary-key and movie_id foreign-key indexes.
func IMDBSchema() *catalog.Schema {
	s := catalog.NewSchema("imdb")
	s.AddTable(catalog.NewTable("title",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "kind_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "production_year", Type: catalog.IntCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("movie_info",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "movie_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "info_type_id", Type: catalog.IntCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("cast_info",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "movie_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "person_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "role_id", Type: catalog.IntCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("movie_keyword",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "movie_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "keyword_id", Type: catalog.IntCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("movie_companies",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "movie_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "company_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "company_type_id", Type: catalog.IntCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("movie_info_idx",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "movie_id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "info_type_id", Type: catalog.IntCol, Width: 8},
	))
	for _, ix := range []catalog.IndexDef{
		{Name: "pk_title", Table: "title", Column: "id", Unique: true},
		{Name: "idx_title_year", Table: "title", Column: "production_year"},
		{Name: "idx_mi_movie", Table: "movie_info", Column: "movie_id"},
		{Name: "idx_ci_movie", Table: "cast_info", Column: "movie_id"},
		{Name: "idx_mk_movie", Table: "movie_keyword", Column: "movie_id"},
		{Name: "idx_mc_movie", Table: "movie_companies", Column: "movie_id"},
		{Name: "idx_mii_movie", Table: "movie_info_idx", Column: "movie_id"},
	} {
		s.AddIndex(ix)
	}
	return s
}

// IMDB generates the job-light dataset with skewed movie popularity: a hot
// set of blockbuster movies owns a bounded but disproportionate share of
// fact rows, as in the real IMDB, which is what makes job-light
// cardinalities hard for naive estimators.
func IMDB(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := IMDBSchema()
	db := storage.NewDatabase(s)

	for i := 0; i < imdbTitles; i++ {
		year := catalog.IntVal(imdbYearLo + rng.Int63n(imdbYearHi-imdbYearLo+1))
		if rng.Float64() < imdbProdYearNullP {
			year = catalog.NullVal()
		}
		db.Heap("title").Append(catalog.Row{
			catalog.IntVal(int64(i)),
			catalog.IntVal(1 + rng.Int63n(imdbKindMax)),
			year,
		})
	}
	movieID := func() catalog.Value {
		if rng.Float64() < imdbHotShare {
			return catalog.IntVal(rng.Int63n(imdbHotMovies))
		}
		return catalog.IntVal(rng.Int63n(imdbTitles))
	}

	for i := 0; i < imdbMovieInfo; i++ {
		db.Heap("movie_info").Append(catalog.Row{
			catalog.IntVal(int64(i)), movieID(),
			catalog.IntVal(1 + rng.Int63n(imdbInfoTypeMax)),
		})
	}
	for i := 0; i < imdbCastInfo; i++ {
		db.Heap("cast_info").Append(catalog.Row{
			catalog.IntVal(int64(i)), movieID(),
			catalog.IntVal(rng.Int63n(imdbPersonMax)),
			catalog.IntVal(1 + rng.Int63n(imdbRoleMax)),
		})
	}
	for i := 0; i < imdbMovieKeyword; i++ {
		db.Heap("movie_keyword").Append(catalog.Row{
			catalog.IntVal(int64(i)), movieID(),
			catalog.IntVal(rng.Int63n(imdbKeywordMax)),
		})
	}
	for i := 0; i < imdbMovieCompany; i++ {
		db.Heap("movie_companies").Append(catalog.Row{
			catalog.IntVal(int64(i)), movieID(),
			catalog.IntVal(rng.Int63n(imdbCompanyMax)),
			catalog.IntVal(1 + rng.Int63n(imdbCompTypeMax)),
		})
	}
	for i := 0; i < imdbMovieInfoIdx; i++ {
		db.Heap("movie_info_idx").Append(catalog.Row{
			catalog.IntVal(int64(i)), movieID(),
			catalog.IntVal(1 + rng.Int63n(imdbInfoTypeMax)),
		})
	}
	db.BuildIndexes()
	return &Dataset{Name: "imdb", Schema: s, DB: db, Stats: buildStats(db, rng)}
}
