// Package datagen builds the three benchmark datasets the paper evaluates
// on — TPC-H, IMDB/job-light, and Sysbench — as deterministic synthetic
// equivalents. Schema shapes, key/foreign-key relationships, value skews,
// and index placement follow the originals; row counts are scaled down
// (documented per generator) so the full experiment grid runs in minutes
// on one machine.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// Dataset bundles everything one benchmark needs: schema, loaded storage,
// and the statistics registry (which doubles as the paper's data abstract).
type Dataset struct {
	Name   string
	Schema *catalog.Schema
	DB     *storage.Database
	Stats  *catalog.Stats
}

// Build constructs the named dataset ("tpch", "imdb", "sysbench") with the
// given deterministic seed.
func Build(name string, seed int64) (*Dataset, error) {
	switch name {
	case "tpch":
		return TPCH(seed), nil
	case "imdb":
		return IMDB(seed), nil
	case "sysbench":
		return Sysbench(seed), nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q", name)
}

// BenchmarkNames lists the supported datasets in paper order.
func BenchmarkNames() []string { return []string{"tpch", "sysbench", "imdb"} }

// buildStats scans every loaded column and derives its statistics.
func buildStats(db *storage.Database, rng *rand.Rand) *catalog.Stats {
	st := catalog.NewStats()
	for name, heap := range db.Heaps {
		ts := &catalog.TableStats{
			RowCount: int64(heap.NumRows()),
			Pages:    heap.NumPages(),
			Columns:  make(map[string]*catalog.ColumnStats),
		}
		for ci, col := range heap.Table.Columns {
			vals := make([]catalog.Value, heap.NumRows())
			for r := 0; r < heap.NumRows(); r++ {
				vals[r] = heap.Get(r)[ci]
			}
			ts.Columns[col.Name] = catalog.BuildColumnStats(vals, rng)
		}
		st.Tables[name] = ts
	}
	return st
}

// pick returns a uniformly random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// randWord builds a short pseudo-word for string columns.
func randWord(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
