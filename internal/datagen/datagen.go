// Package datagen builds the three benchmark datasets the paper evaluates
// on — TPC-H, IMDB/job-light, and Sysbench — as deterministic synthetic
// equivalents. Schema shapes, key/foreign-key relationships, value skews,
// and index placement follow the originals; row counts are scaled down
// (documented per generator) so the full experiment grid runs in minutes
// on one machine.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// Dataset bundles everything one benchmark needs: schema, loaded storage,
// and the statistics registry (which doubles as the paper's data abstract).
type Dataset struct {
	Name   string
	Schema *catalog.Schema
	DB     *storage.Database
	Stats  *catalog.Stats
}

// buildCache memoizes datasets process-wide, one sync.Once per
// (name, seed). Generation is deterministic per key and a built Dataset
// is read-only everywhere downstream (the planner, executor, and
// estimators only scan it), so callers that open the same benchmark
// repeatedly — multiple experiment suites, the labeling pipeline's worker
// pool — share one copy instead of regenerating and reloading it.
var buildCache struct {
	mu    sync.Mutex
	calls map[string]*buildCall
}

type buildCall struct {
	once sync.Once
	ds   *Dataset
}

// Build constructs the named dataset ("tpch", "imdb", "sysbench") with the
// given deterministic seed. Results are cached per (name, seed) for the
// lifetime of the process — the right trade for this repo's workloads
// (a handful of (benchmark, seed) pairs reused heavily); callers sweeping
// many seeds should construct datasets directly via TPCH/IMDB/Sysbench
// to keep them collectable. The returned dataset must be treated as
// read-only.
func Build(name string, seed int64) (*Dataset, error) {
	switch name {
	case "tpch", "imdb", "sysbench":
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	key := fmt.Sprintf("%s/%d", name, seed)
	buildCache.mu.Lock()
	if buildCache.calls == nil {
		buildCache.calls = make(map[string]*buildCall)
	}
	c, ok := buildCache.calls[key]
	if !ok {
		c = &buildCall{}
		buildCache.calls[key] = c
	}
	buildCache.mu.Unlock()
	c.once.Do(func() {
		switch name {
		case "tpch":
			c.ds = TPCH(seed)
		case "imdb":
			c.ds = IMDB(seed)
		case "sysbench":
			c.ds = Sysbench(seed)
		}
	})
	return c.ds, nil
}

// BenchmarkNames lists the supported datasets in paper order.
func BenchmarkNames() []string { return []string{"tpch", "sysbench", "imdb"} }

// buildStats scans every loaded column and derives its statistics. Tables
// are visited in sorted name order: the statistics draw samples from one
// shared rng, so the visit order is part of the deterministic-per-seed
// contract (map order would make stats differ from process to process).
func buildStats(db *storage.Database, rng *rand.Rand) *catalog.Stats {
	st := catalog.NewStats()
	names := make([]string, 0, len(db.Heaps))
	for name := range db.Heaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		heap := db.Heaps[name]
		ts := &catalog.TableStats{
			RowCount: int64(heap.NumRows()),
			Pages:    heap.NumPages(),
			Columns:  make(map[string]*catalog.ColumnStats),
		}
		for ci, col := range heap.Table.Columns {
			vals := make([]catalog.Value, heap.NumRows())
			for r := 0; r < heap.NumRows(); r++ {
				vals[r] = heap.Get(r)[ci]
			}
			ts.Columns[col.Name] = catalog.BuildColumnStats(vals, rng)
		}
		st.Tables[name] = ts
	}
	return st
}

// pick returns a uniformly random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// randWord builds a short pseudo-word for string columns.
func randWord(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
