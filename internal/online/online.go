// Package online is the drift-monitored adaptation loop that keeps a
// served cost estimator fresh under shifting traffic. It composes three
// primitives the repository already guarantees:
//
//   - the labeling path (engine/workload): any served query can be
//     replayed through the execution engine to obtain an opportunistic
//     ground-truth latency label, deterministically;
//   - windowed retraining (core.RetrainCtx via qcfe.AdaptCtx): a copy of
//     the serving model continues training on a sliding window of recent
//     labeled queries, off the request path;
//   - the atomic hot swap (serve.Server.SwapEstimator + the query
//     cache's generation stamping): the adapted model is installed with
//     one pointer store; in-flight requests finish on the old model, new
//     requests see the new one, and the new artifact generation makes
//     every cached entry of the old model logically invisible in the
//     same instant.
//
// The Adapter sits between them as a serve.Monitor: the server reports
// every served estimate (Observe) and every client-supplied ground
// truth (ObserveLabeled, the /shadow endpoint); the adapter samples
// them into a bounded queue, labels them on its own goroutine, tracks
// the rolling median q-error of served predictions against labels, and
// — when the median degrades past the drift threshold — retrains on
// the window and swaps. Everything on the request path is an atomic
// increment plus at most one non-blocking channel send; when the queue
// is full, observations are dropped, never blocked on ("opportunistic"
// is load-shedding by design).
package online

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	qcfe "repro"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/workload"
)

// Options configures the adaptation loop.
type Options struct {
	// Window is the sliding-window capacity: how many recent labeled
	// samples are retained for retraining and drift scoring (default
	// 256).
	Window int
	// MinLabeled is how many labeled samples the window must hold
	// before drift can trigger a retrain — scoring a median on three
	// samples would thrash (default 32).
	MinLabeled int
	// DriftThreshold is the rolling median q-error above which the
	// model counts as drifted (default 2.0; q-error 1.0 is a perfect
	// prediction).
	DriftThreshold float64
	// RetrainIters is the training-iteration budget of one adaptation
	// (default 60).
	RetrainIters int
	// LabelEvery samples unlabeled observations: every Nth served
	// estimate is replayed for a ground-truth label (default 8; 1
	// labels everything). Client-labeled observations (ObserveLabeled)
	// are never sampled away.
	LabelEvery int
	// QueueDepth bounds the pending-observation buffer between the
	// request path and the labeling goroutine; overflow is dropped and
	// counted (default 256).
	QueueDepth int
	// Cooldown is how many freshly labeled samples must accumulate
	// after a swap before the next retrain may trigger, so one drifted
	// window cannot cause back-to-back retrains before the new model
	// has been scored at all (default MinLabeled).
	Cooldown int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.MinLabeled <= 0 {
		o.MinLabeled = 32
	}
	if o.MinLabeled > o.Window {
		o.MinLabeled = o.Window
	}
	if o.DriftThreshold <= 0 {
		o.DriftThreshold = 2.0
	}
	if o.RetrainIters <= 0 {
		o.RetrainIters = 60
	}
	if o.LabelEvery <= 0 {
		o.LabelEvery = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Cooldown <= 0 {
		o.Cooldown = o.MinLabeled
	}
	return o
}

// Swapper installs a freshly adapted estimator into the serving layer —
// typically a closure over serve.Server.SwapEstimator. It is called on
// the adapter's goroutine, after the query cache has already been moved
// to the new estimator's generation.
type Swapper func(*qcfe.CostEstimator)

// Stats is the drift block reported under /stats.
type Stats struct {
	// Observed counts every estimate reported to the monitor.
	Observed int64 `json:"observed"`
	// Sampled counts observations that entered the labeling queue.
	Sampled int64 `json:"sampled"`
	// Dropped counts observations shed because the queue was full.
	Dropped int64 `json:"dropped"`
	// Labeled counts samples that made it into the sliding window.
	Labeled int64 `json:"labeled"`
	// LabelErrors counts replay failures (e.g. a query that no longer
	// plans); the observation is discarded.
	LabelErrors int64 `json:"label_errors"`
	// Window and WindowFill are the configured capacity and current
	// occupancy of the sliding window.
	Window     int `json:"window"`
	WindowFill int `json:"window_fill"`
	// MedianQError is the rolling median q-error of served predictions
	// against ground-truth labels (0 until anything is labeled).
	MedianQError float64 `json:"median_q_error"`
	// DriftThreshold echoes the configured trigger.
	DriftThreshold float64 `json:"drift_threshold"`
	// Retrains counts completed incremental retrains; RetrainErrors
	// counts attempts that failed (the old model keeps serving).
	Retrains      int64 `json:"retrains"`
	RetrainErrors int64 `json:"retrain_errors"`
	// Swaps counts estimators installed into the serving layer.
	Swaps int64 `json:"swaps"`
}

// WriteMetrics renders the drift block for a Prometheus scrape
// (obs.MetricsWriter). serve's /metrics discovers it through the
// interface on the DriftStats() value, so this package stays the only
// one that knows the field meanings.
func (st Stats) WriteMetrics(g *obs.Gatherer, extra ...obs.Label) {
	g.Counter("qcfe_drift_observed_total", "Estimates reported to the drift monitor.", st.Observed, extra...)
	g.Counter("qcfe_drift_sampled_total", "Observations that entered the labeling queue.", st.Sampled, extra...)
	g.Counter("qcfe_drift_dropped_total", "Observations shed because the labeling queue was full.", st.Dropped, extra...)
	g.Counter("qcfe_drift_labeled_total", "Samples labeled into the sliding window.", st.Labeled, extra...)
	g.Counter("qcfe_drift_label_errors_total", "Label replay failures.", st.LabelErrors, extra...)
	g.Gauge("qcfe_drift_window_fill", "Current sliding-window occupancy.", float64(st.WindowFill), extra...)
	g.Gauge("qcfe_drift_median_q_error", "Rolling median q-error of served predictions.", st.MedianQError, extra...)
	g.Counter("qcfe_drift_retrains_total", "Completed incremental retrains.", st.Retrains, extra...)
	g.Counter("qcfe_drift_retrain_errors_total", "Retrain attempts that failed.", st.RetrainErrors, extra...)
	g.Counter("qcfe_drift_swaps_total", "Adapted estimators installed into serving.", st.Swaps, extra...)
}

// observation is one served estimate in flight to the labeling loop.
// producer identifies the estimator that computed the prediction (the
// serving layer passes its own snapshot): an observation whose
// producer is no longer the current model carries a stale prediction,
// so its q-error must not score the new model — though its label
// remains valid ground truth for the window.
type observation struct {
	env       *qcfe.Environment
	sql       string
	predicted float64
	actual    float64 // ground truth when hasActual; else replayed
	hasActual bool
	producer  any
}

// Adapter is the drift monitor + retraining loop. Construct with New,
// attach to a server with serve.Server.SetMonitor, and run the labeling
// loop with Run. The Observe* methods are safe for concurrent use; the
// window, drift scoring, and retraining are owned by the Run goroutine.
type Adapter struct {
	opts Options
	swap Swapper
	obs  chan observation

	observed atomic.Int64
	sampled  atomic.Int64
	dropped  atomic.Int64

	// adaptMu serializes retrains: the Run loop and the AdaptNow escape
	// hatch must never retrain concurrently, or the later a.cur writer
	// could disagree with the last-installed serving estimator.
	adaptMu sync.Mutex

	mu          sync.Mutex
	cur         *qcfe.CostEstimator
	window      []workload.Sample // ring, insertion order
	windowNext  int               // next ring slot to overwrite
	qerrs       []float64         // rolling q-error ring
	qerrNext    int
	labeled     int64
	labelErrors int64
	retrains    int64
	retrainErrs int64
	swaps       int64
	sinceSwap   int
}

// New builds an adapter over the estimator currently serving. swap is
// invoked with every adapted estimator after the cache handoff; nil
// means "retrain but install nowhere" (useful for tests and shadow
// deployments).
func New(est *qcfe.CostEstimator, opts Options, swap Swapper) *Adapter {
	o := opts.withDefaults()
	return &Adapter{
		opts:   o,
		swap:   swap,
		obs:    make(chan observation, o.QueueDepth),
		cur:    est,
		window: make([]workload.Sample, 0, o.Window),
		qerrs:  make([]float64, 0, o.Window),
	}
}

// Current returns the estimator the adapter considers live (the latest
// adapted one, or the initial estimator before any swap).
func (a *Adapter) Current() *qcfe.CostEstimator {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// Observe implements serve.Monitor: every LabelEvery-th served
// estimate is queued for opportunistic labeling. Constant-time,
// non-blocking, drop-on-overflow.
func (a *Adapter) Observe(env *qcfe.Environment, sql string, predictedMs float64, producer any) {
	n := a.observed.Add(1)
	if a.opts.LabelEvery > 1 && n%int64(a.opts.LabelEvery) != 0 {
		return
	}
	a.enqueue(observation{env: env, sql: sql, predicted: predictedMs, producer: producer})
}

// ObserveLabeled implements serve.Monitor: a client-supplied
// ground-truth label (the /shadow endpoint). Never sampled away —
// real labels are the scarcest signal — but still drop-on-overflow; the
// return value reports whether the label was actually accepted, and
// /shadow surfaces it as "recorded".
func (a *Adapter) ObserveLabeled(env *qcfe.Environment, sql string, predictedMs, actualMs float64, producer any) bool {
	a.observed.Add(1)
	return a.enqueue(observation{env: env, sql: sql, predicted: predictedMs, actual: actualMs, hasActual: true, producer: producer})
}

func (a *Adapter) enqueue(o observation) bool {
	select {
	case a.obs <- o:
		a.sampled.Add(1)
		return true
	default:
		a.dropped.Add(1)
		return false
	}
}

// DriftStats implements serve.Monitor.
func (a *Adapter) DriftStats() any { return a.Stats() }

// Stats snapshots the adapter's counters.
func (a *Adapter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Observed:       a.observed.Load(),
		Sampled:        a.sampled.Load(),
		Dropped:        a.dropped.Load(),
		Labeled:        a.labeled,
		LabelErrors:    a.labelErrors,
		Window:         a.opts.Window,
		WindowFill:     len(a.window),
		MedianQError:   a.medianLocked(),
		DriftThreshold: a.opts.DriftThreshold,
		Retrains:       a.retrains,
		RetrainErrors:  a.retrainErrs,
		Swaps:          a.swaps,
	}
}

// Run drains the observation queue until ctx is cancelled: label,
// score, and — when the rolling median q-error crosses the threshold —
// retrain and swap. It is the adapter's only goroutine; call it exactly
// once, typically via `go ad.Run(ctx)`. Retraining happens inline on
// this goroutine (never on a request path), so at most one retrain is
// in flight at a time and the swap order is the retrain order.
func (a *Adapter) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case o := <-a.obs:
			a.process(ctx, o)
		}
	}
}

// process labels one observation, folds it into the window, and
// triggers an adaptation when the drift signal fires.
func (a *Adapter) process(ctx context.Context, o observation) {
	est := a.Current()
	// A client-labeled observation already carries its ground truth:
	// planning alone yields the training sample. Unlabeled observations
	// replay through the execution engine — the same labeling path that
	// produced the training pool — for the latency label itself;
	// bench.Execute constructs a fresh executor per call, so the replay
	// label for a given (environment, SQL) pair is deterministic.
	var plan *planner.Node
	actual := o.actual
	var err error
	if o.hasActual {
		plan, err = est.Benchmark().Plan(o.env, o.sql)
	} else {
		var res *qcfe.QueryResult
		res, err = est.Benchmark().Execute(o.env, o.sql)
		if err == nil {
			plan, actual = res.Plan, res.Ms
		}
	}
	if err != nil {
		a.mu.Lock()
		a.labelErrors++
		a.mu.Unlock()
		return
	}

	a.mu.Lock()
	s := workload.Sample{SQL: o.sql, Plan: plan, Ms: actual, EnvID: o.env.ID}
	if len(a.window) < a.opts.Window {
		a.window = append(a.window, s)
	} else {
		a.window[a.windowNext] = s
		a.windowNext = (a.windowNext + 1) % a.opts.Window
	}
	// The label is valid ground truth about the workload regardless of
	// which model served it, so the window always takes the sample —
	// but the q-error scores a *prediction*, and an observation whose
	// producer is no longer the current model scored a swapped-out
	// estimator: letting it into the ring would let a drifted
	// predecessor's errors re-trigger a retrain before the new model
	// produced a single scored estimate. a.cur is the authority (read
	// under a.mu — an AdaptNow on another goroutine may have swapped
	// since this observation was labeled); the comparison is exact
	// pointer identity.
	if o.producer == any(a.cur) {
		if len(a.qerrs) < cap(a.qerrs) {
			a.qerrs = append(a.qerrs, metrics.QError(actual, o.predicted))
		} else {
			a.qerrs[a.qerrNext] = metrics.QError(actual, o.predicted)
			a.qerrNext = (a.qerrNext + 1) % cap(a.qerrs)
		}
		a.sinceSwap++
	}
	a.labeled++
	drifted := len(a.qerrs) >= a.opts.MinLabeled &&
		a.sinceSwap >= a.opts.Cooldown &&
		a.medianLocked() > a.opts.DriftThreshold
	a.mu.Unlock()

	if drifted {
		// A failed retrain is counted in RetrainErrors; the current
		// model keeps serving and the window keeps accumulating.
		_ = a.adapt(ctx)
	}
}

// adapt retrains a copy of the current estimator on the window and hot
// swaps it in: cache handoff first (qcfe.SwapEstimator moves the query
// cache to the adapted generation), then the serving swap. On a failed
// or cancelled retrain, the current estimator keeps serving and the
// window keeps accumulating.
func (a *Adapter) adapt(ctx context.Context) error {
	// One retrain at a time: Run's drift trigger and AdaptNow may race,
	// and the later a.cur writer must be the last-installed estimator.
	a.adaptMu.Lock()
	defer a.adaptMu.Unlock()

	a.mu.Lock()
	est := a.cur
	window := append([]workload.Sample(nil), a.window...)
	a.mu.Unlock()

	next, err := est.AdaptCtx(ctx, window, a.opts.RetrainIters)
	if err != nil {
		a.mu.Lock()
		a.retrainErrs++
		a.mu.Unlock()
		return err
	}
	qcfe.SwapEstimator(est, next)
	if a.swap != nil {
		a.swap(next)
	}
	a.mu.Lock()
	a.cur = next
	a.retrains++
	a.swaps++
	a.sinceSwap = 0
	// The q-error ring scored the old model; the new one starts with a
	// clean drift signal (the sample window is kept — it is ground
	// truth about the workload, not about any particular model).
	a.qerrs = a.qerrs[:0]
	a.qerrNext = 0
	a.mu.Unlock()
	return nil
}

// AdaptNow forces one retrain-and-swap on the current window regardless
// of the drift signal — the operational escape hatch (and the
// deterministic entry point the tests drive).
func (a *Adapter) AdaptNow(ctx context.Context) error {
	a.mu.Lock()
	if len(a.window) == 0 {
		a.mu.Unlock()
		return fmt.Errorf("online: no labeled samples in the window yet")
	}
	a.mu.Unlock()
	return a.adapt(ctx)
}

// medianLocked computes the rolling median q-error; callers hold a.mu.
// (Percentile copies its input before sorting, so the ring is safe.)
func (a *Adapter) medianLocked() float64 {
	return metrics.Percentile(a.qerrs, 50)
}
