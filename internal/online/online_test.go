package online

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	qcfe "repro"
	"repro/internal/workload"
)

// fixture trains one small estimator (and keeps its labeled pool) shared
// across the package's tests; training dominates test runtime.
var fixture struct {
	once  sync.Once
	est   *qcfe.CostEstimator
	train []workload.Sample
	err   error
}

func testEstimator(t *testing.T) (*qcfe.CostEstimator, []workload.Sample) {
	t.Helper()
	fixture.once.Do(func() {
		b, err := qcfe.OpenBenchmark("sysbench", 1)
		if err != nil {
			fixture.err = err
			return
		}
		envs := qcfe.RandomEnvironments(2, 1)
		pool, err := b.CollectWorkload(envs, 80, 1)
		if err != nil {
			fixture.err = err
			return
		}
		train, _ := pool.Split(0.8)
		fixture.train = train
		fixture.est, fixture.err = qcfe.NewPipeline("mscn",
			qcfe.WithTrainIters(40), qcfe.WithReferences(20), qcfe.WithSeed(3),
		).Fit(b, envs, train)
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.est, fixture.train
}

func testSQL(i int) string {
	switch i % 3 {
	case 0:
		return fmt.Sprintf("SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN %d AND %d", 50+i, 250+i)
	case 1:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE id = %d", 1+i)
	default:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE k < %d", 100+i)
	}
}

// TestAdaptIsolatedAndArtifactExact is the model half of the hot-swap
// contract: Adapt never mutates the serving estimator, and the adapted
// estimator's predictions are bit-identical to a cold estimator loaded
// from its own saved artifact — the property that lets a swapped-in
// model be audited (or restarted) from its artifact with zero drift.
func TestAdaptIsolatedAndArtifactExact(t *testing.T) {
	est, train := testEstimator(t)
	env := est.Environments()[0]
	queries := make([]string, 12)
	before := make([]float64, len(queries))
	for i := range queries {
		queries[i] = testSQL(i)
		var err error
		if before[i], err = est.EstimateSQL(env, queries[i]); err != nil {
			t.Fatal(err)
		}
	}

	next, err := est.Adapt(train[:64], 25)
	if err != nil {
		t.Fatal(err)
	}
	// The serving estimator is untouched.
	for i, q := range queries {
		got, err := est.EstimateSQL(env, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != before[i] {
			t.Fatalf("Adapt mutated the serving estimator: query %d %v -> %v", i, before[i], got)
		}
	}
	// The adapted model actually moved.
	moved := false
	for i, q := range queries {
		got, err := next.EstimateSQL(next.Environments()[0], q)
		if err != nil {
			t.Fatal(err)
		}
		if got != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("25 retrain iterations changed no prediction — retraining is a no-op?")
	}
	// Save→Load of the adapted estimator is bit-identical to it.
	var buf bytes.Buffer
	if err := next.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cold, err := qcfe.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		warm, err := next.EstimateSQL(next.Environments()[0], q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cold.EstimateSQL(cold.Environments()[0], q)
		if err != nil {
			t.Fatal(err)
		}
		if got != warm {
			t.Fatalf("query %d: cold-loaded %v != adapted %v", i, got, warm)
		}
	}

	// Guardrails.
	if _, err := est.Adapt(nil, 10); err == nil {
		t.Fatal("empty window must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := est.AdaptCtx(ctx, train[:16], 10); err == nil {
		t.Fatal("cancelled adapt must error")
	}
}

// TestDriftTriggersRetrainAndSwap drives the full loop: labeled
// observations with terrible q-error push the rolling median past the
// threshold, the adapter retrains on its window, hands the query cache
// to the adapted estimator, and installs it through the swap callback.
func TestDriftTriggersRetrainAndSwap(t *testing.T) {
	est, _ := testEstimator(t)
	// A private copy so the shared fixture never gains a cache.
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cur, err := qcfe.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cache := qcfe.NewQueryCache(qcfe.CacheOptions{Shards: 4, Capacity: 256})
	cur.AttachCache(cache)
	env := cur.Environments()[0]

	var mu sync.Mutex
	var installed []*qcfe.CostEstimator
	ad := New(cur, Options{
		Window: 64, MinLabeled: 8, Cooldown: 8,
		DriftThreshold: 1.5, RetrainIters: 15, LabelEvery: 1, QueueDepth: 64,
	}, func(next *qcfe.CostEstimator) {
		mu.Lock()
		installed = append(installed, next)
		mu.Unlock()
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { ad.Run(ctx); close(done) }()

	// Feed ground-truth labels 50x the prediction: q-error ~50 on every
	// observation, far past the 1.5 threshold.
	for i := 0; i < 16; i++ {
		sql := testSQL(i)
		pred, err := cur.EstimateSQL(env, sql)
		if err != nil {
			t.Fatal(err)
		}
		ad.ObserveLabeled(env, sql, pred, pred*50, cur)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := ad.Stats(); st.Swaps >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no swap after drift: stats %+v", ad.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	st := ad.Stats()
	if st.Retrains < 1 || st.Swaps < 1 || st.Labeled < 8 {
		t.Fatalf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(installed) == 0 {
		t.Fatal("swap callback never ran")
	}
	next := installed[len(installed)-1]
	if next == cur {
		t.Fatal("swap installed the old estimator")
	}
	if ad.Current() != next {
		t.Fatal("Current() disagrees with the last installed estimator")
	}
	// Cache handoff: the adapted estimator owns the same cache object,
	// moved to its generation — the old estimator's entries are invisible.
	if next.Cache() != cache {
		t.Fatal("query cache was not handed to the adapted estimator")
	}
	if _, ok := next.CachedEstimate(next.Environments()[0], testSQL(0)); ok {
		t.Fatal("old generation's prediction visible to the adapted estimator")
	}
	// Post-swap estimates are bit-identical to a cold estimator loaded
	// from the adapted artifact (the acceptance bar for cache safety).
	var abuf bytes.Buffer
	if err := next.Save(&abuf); err != nil {
		t.Fatal(err)
	}
	cold, err := qcfe.LoadEstimator(&abuf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q := testSQL(i)
		warm, err := next.EstimateSQL(next.Environments()[0], q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.EstimateSQL(cold.Environments()[0], q)
		if err != nil {
			t.Fatal(err)
		}
		if warm != want {
			t.Fatalf("post-swap query %d: served %v != cold-loaded %v", i, warm, want)
		}
	}
}

// TestHealthyTrafficNeverRetrains: labels that agree with predictions
// keep the median q-error at 1.0 and the adapter must stay quiet.
func TestHealthyTrafficNeverRetrains(t *testing.T) {
	est, _ := testEstimator(t)
	ad := New(est, Options{
		Window: 32, MinLabeled: 4, DriftThreshold: 1.5, LabelEvery: 1, QueueDepth: 64,
	}, func(*qcfe.CostEstimator) { t.Error("swap on healthy traffic") })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { ad.Run(ctx); close(done) }()
	env := est.Environments()[0]
	for i := 0; i < 12; i++ {
		sql := testSQL(i)
		pred, err := est.EstimateSQL(env, sql)
		if err != nil {
			t.Fatal(err)
		}
		ad.ObserveLabeled(env, sql, pred, pred, est) // q-error exactly 1
	}
	deadline := time.Now().Add(30 * time.Second)
	for ad.Stats().Labeled < 12 {
		if time.Now().After(deadline) {
			t.Fatalf("labeling stalled: %+v", ad.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	st := ad.Stats()
	if st.Retrains != 0 || st.Swaps != 0 {
		t.Fatalf("healthy traffic retrained: %+v", st)
	}
	if st.MedianQError != 1 {
		t.Fatalf("median q-error = %v, want exactly 1", st.MedianQError)
	}
}

// TestObserveSamplingAndOverflow: LabelEvery thins unlabeled traffic,
// the queue sheds overflow instead of blocking, and replay failures are
// counted rather than fatal.
func TestObserveSamplingAndOverflow(t *testing.T) {
	est, _ := testEstimator(t)
	env := est.Environments()[0]
	ad := New(est, Options{Window: 16, LabelEvery: 4, QueueDepth: 2}, nil)
	// No Run goroutine: everything sampled lands in the queue or drops.
	for i := 0; i < 16; i++ {
		ad.Observe(env, testSQL(i), 1.0, est)
	}
	st := ad.Stats()
	if st.Observed != 16 {
		t.Fatalf("observed = %d", st.Observed)
	}
	if st.Sampled != 2 || st.Dropped != 2 {
		// 16 observations / LabelEvery 4 = 4 sampled, queue holds 2.
		t.Fatalf("sampled = %d dropped = %d, want 2 and 2", st.Sampled, st.Dropped)
	}

	// A query that cannot replay is a counted label error, not a crash.
	ad2 := New(est, Options{Window: 16, LabelEvery: 1, QueueDepth: 8}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { ad2.Run(ctx); close(done) }()
	ad2.Observe(env, "SELECT * FROM no_such_table WHERE x = 1", 1.0, est)
	deadline := time.Now().Add(30 * time.Second)
	for ad2.Stats().LabelErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("label error never surfaced: %+v", ad2.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if st := ad2.Stats(); st.Labeled != 0 {
		t.Fatalf("unreplayable query entered the window: %+v", st)
	}

	// AdaptNow with an empty window is a clean error.
	if err := New(est, Options{}, nil).AdaptNow(context.Background()); err == nil {
		t.Fatal("AdaptNow on empty window must error")
	}
}
