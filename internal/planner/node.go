// Package planner turns resolved SQL ASTs into physical plan trees: it
// estimates cardinalities from catalog statistics, picks physical operators
// under the environment's knob settings (enable_indexscan, enable_hashjoin,
// …), and annotates every node with the estimates the feature encodings and
// the PostgreSQL-style cost model consume.
package planner

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

// OpType enumerates the physical operators — exactly the operator set of
// the paper's Table I.
type OpType int

// The physical operator vocabulary.
const (
	SeqScan OpType = iota
	IndexScan
	Sort
	HashJoin
	MergeJoin
	NestedLoop
	Aggregate
	Materialize
	NumOpTypes // count sentinel for one-hot encodings
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case SeqScan:
		return "Seq Scan"
	case IndexScan:
		return "Index Scan"
	case Sort:
		return "Sort"
	case HashJoin:
		return "Hash Join"
	case MergeJoin:
		return "Merge Join"
	case NestedLoop:
		return "Nested Loop"
	case Aggregate:
		return "Aggregate"
	case Materialize:
		return "Materialize"
	}
	return fmt.Sprintf("OpType(%d)", int(o))
}

// AllOpTypes lists every operator type in encoding order.
func AllOpTypes() []OpType {
	ops := make([]OpType, NumOpTypes)
	for i := range ops {
		ops[i] = OpType(i)
	}
	return ops
}

// ColInfo describes one output column of a plan node.
type ColInfo struct {
	Table  string
	Column string
	Type   catalog.ColType
	Width  int
}

// AggSpec is one aggregate computed by an Aggregate node.
type AggSpec struct {
	Func sqlparse.AggFunc
	Col  int // input column ordinal; -1 for COUNT(*)
}

// Node is one physical plan operator. The planner fills the Est* fields;
// the engine fills Actual* during execution.
type Node struct {
	Op       Op
	Children []*Node

	// Scans.
	Table     string
	Index     string         // IndexScan only
	Preds     []CompiledPred // filter applied at this node
	IndexPred *CompiledPred  // the predicate served by the index itself

	// Joins: ordinals into the left/right child output schemas.
	JoinLeftCol, JoinRightCol int

	// Sort keys (ordinals into child output), with descending flags.
	SortCols []int
	SortDesc []bool

	// Aggregate.
	GroupCols []int
	Aggs      []AggSpec

	// Root-only: LIMIT pushed into execution.
	Limit int // -1 when absent

	// Output schema.
	Cols []ColInfo

	// Planner estimates.
	EstRows     float64
	EstWidth    int
	Selectivity float64 // scans: estimated fraction retained
	// EstIn1/EstIn2 estimate the operator's input cardinalities (the n,
	// n1, n2 of the paper's Table I formulas): relation rows for a seq
	// scan, expected index matches for an index scan, child output
	// estimates elsewhere. The snapshot features evaluate the fitted
	// logical formulas at these estimates.
	EstIn1, EstIn2 float64

	// EnvID tags every node of a labeled plan with the environment it was
	// executed under, so the featurizer can attach that environment's
	// feature snapshot. Set by workload collection; 0 by default.
	EnvID int

	// Engine actuals (set by execution).
	ActualRows int64
	ActualMs   float64 // this node's own time, excluding children
	// ActualIn1/ActualIn2 record the operator's input cardinalities (the
	// paper's n, n1, n2 of Table I); the feature-snapshot regression fits
	// its logical cost formulas against these.
	ActualIn1, ActualIn2 float64
}

// Op aliases OpType for brevity in struct literals.
type Op = OpType

// CompiledPred is a predicate bound to a column ordinal with a fast
// evaluation closure; compilation happens once per plan, keeping the
// executor's per-row path allocation-free.
type CompiledPred struct {
	Col  int // ordinal in the node's input schema
	Src  sqlparse.Predicate
	Eval func(v catalog.Value) bool
}

// TotalMs sums the per-node actual times over the whole subtree.
func (n *Node) TotalMs() float64 {
	t := n.ActualMs
	for _, c := range n.Children {
		t += c.TotalMs()
	}
	return t
}

// Walk visits the subtree pre-order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// CountNodes returns the subtree size.
func (n *Node) CountNodes() int {
	c := 1
	for _, ch := range n.Children {
		c += ch.CountNodes()
	}
	return c
}

// ColIndex finds the ordinal of (table, column) in the node's output.
func (n *Node) ColIndex(table, column string) int {
	for i, c := range n.Cols {
		if c.Table == table && c.Column == column {
			return i
		}
	}
	return -1
}

// Explain renders the plan tree in an EXPLAIN-ANALYZE-like format.
func (n *Node) Explain() string {
	var sb strings.Builder
	n.explain(&sb, 0)
	return sb.String()
}

func (n *Node) explain(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.Op.String())
	if n.Table != "" {
		fmt.Fprintf(sb, " on %s", n.Table)
	}
	if n.Index != "" {
		fmt.Fprintf(sb, " using %s", n.Index)
	}
	fmt.Fprintf(sb, " (est rows=%.0f width=%d)", n.EstRows, n.EstWidth)
	if n.ActualRows > 0 || n.ActualMs > 0 {
		fmt.Fprintf(sb, " (actual rows=%d time=%.3fms)", n.ActualRows, n.ActualMs)
	}
	sb.WriteString("\n")
	for _, c := range n.Children {
		c.explain(sb, depth+1)
	}
}
