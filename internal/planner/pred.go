package planner

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

// CompilePred binds a parsed predicate to a column ordinal and builds the
// evaluation closure used by the executor's per-row hot loop.
func CompilePred(col int, p sqlparse.Predicate) CompiledPred {
	return CompiledPred{Col: col, Src: p, Eval: buildEval(p)}
}

func buildEval(p sqlparse.Predicate) func(catalog.Value) bool {
	switch p.Op {
	case sqlparse.OpEq:
		arg := p.Args[0]
		return func(v catalog.Value) bool { return !v.Null && v.Compare(arg) == 0 }
	case sqlparse.OpNe:
		arg := p.Args[0]
		return func(v catalog.Value) bool { return !v.Null && v.Compare(arg) != 0 }
	case sqlparse.OpLt:
		arg := p.Args[0]
		return func(v catalog.Value) bool { return !v.Null && v.Compare(arg) < 0 }
	case sqlparse.OpLe:
		arg := p.Args[0]
		return func(v catalog.Value) bool { return !v.Null && v.Compare(arg) <= 0 }
	case sqlparse.OpGt:
		arg := p.Args[0]
		return func(v catalog.Value) bool { return !v.Null && v.Compare(arg) > 0 }
	case sqlparse.OpGe:
		arg := p.Args[0]
		return func(v catalog.Value) bool { return !v.Null && v.Compare(arg) >= 0 }
	case sqlparse.OpBetween:
		lo, hi := p.Args[0], p.Args[1]
		return func(v catalog.Value) bool {
			return !v.Null && v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		}
	case sqlparse.OpIn:
		args := p.Args
		return func(v catalog.Value) bool {
			if v.Null {
				return false
			}
			for _, a := range args {
				if v.Compare(a) == 0 {
					return true
				}
			}
			return false
		}
	case sqlparse.OpLike:
		return buildLike(p.Args[0].S)
	}
	// Unknown operator: reject every row (parser prevents this).
	return func(catalog.Value) bool { return false }
}

// buildLike compiles the SQL LIKE pattern subset used by the benchmarks:
// leading/trailing % wildcards ("abc%", "%abc", "%abc%") and exact matches.
// A lone interior % splits into prefix+suffix matching.
func buildLike(pattern string) func(catalog.Value) bool {
	hasPrefix := strings.HasPrefix(pattern, "%")
	hasSuffix := strings.HasSuffix(pattern, "%")
	core := strings.Trim(pattern, "%")
	switch {
	case hasPrefix && hasSuffix:
		return func(v catalog.Value) bool { return !v.Null && strings.Contains(v.S, core) }
	case hasSuffix:
		return func(v catalog.Value) bool { return !v.Null && strings.HasPrefix(v.S, core) }
	case hasPrefix:
		return func(v catalog.Value) bool { return !v.Null && strings.HasSuffix(v.S, core) }
	}
	if i := strings.IndexByte(pattern, '%'); i >= 0 {
		pre, suf := pattern[:i], pattern[i+1:]
		return func(v catalog.Value) bool {
			return !v.Null && len(v.S) >= len(pre)+len(suf) &&
				strings.HasPrefix(v.S, pre) && strings.HasSuffix(v.S, suf)
		}
	}
	return func(v catalog.Value) bool { return !v.Null && v.S == pattern }
}
