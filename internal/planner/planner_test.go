package planner

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/sqlparse"
)

var tpch = datagen.TPCH(1)

func plannerWith(k dbenv.Knobs) *Planner {
	return New(tpch.Schema, tpch.Stats, k)
}

func mustPlan(t *testing.T, pl *Planner, sql string) *Node {
	t.Helper()
	n, err := pl.Plan(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatalf("Plan(%q): %v", sql, err)
	}
	return n
}

func TestPlanSeqScan(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT * FROM lineitem WHERE l_quantity < 40")
	if n.Op != SeqScan {
		t.Fatalf("op = %v, want SeqScan (no index on l_quantity)", n.Op)
	}
	if n.EstRows < 1000 {
		t.Fatalf("EstRows = %v, want large", n.EstRows)
	}
	if len(n.Preds) != 1 {
		t.Fatalf("preds = %d", len(n.Preds))
	}
}

func TestPlanIndexScanSelective(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT * FROM orders WHERE o_orderkey = 42")
	if n.Op != IndexScan || n.Index != "pk_orders" {
		t.Fatalf("op=%v index=%q, want IndexScan pk_orders", n.Op, n.Index)
	}
	if n.IndexPred == nil {
		t.Fatalf("IndexPred not set")
	}
	if len(n.Preds) != 0 {
		t.Fatalf("eq pred should be fully served by index")
	}
}

func TestPlanIndexScanDisabledByKnob(t *testing.T) {
	k := dbenv.DefaultKnobs()
	k.EnableIndexScan = false
	n := mustPlan(t, plannerWith(k), "SELECT * FROM orders WHERE o_orderkey = 42")
	if n.Op != SeqScan {
		t.Fatalf("op = %v, want SeqScan with enable_indexscan=off", n.Op)
	}
}

func TestPlanWideRangePrefersSeqScan(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT * FROM orders WHERE o_orderkey > 5")
	if n.Op != SeqScan {
		t.Fatalf("op = %v, want SeqScan for non-selective range", n.Op)
	}
}

func TestPlanHashJoinDefault(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE o_totalprice > 400000")
	if n.Op != HashJoin {
		t.Fatalf("root = %v, want HashJoin\n%s", n.Op, n.Explain())
	}
	if len(n.Cols) != len(tpch.Schema.Table("orders").Columns)+len(tpch.Schema.Table("lineitem").Columns) {
		t.Fatalf("join output cols = %d", len(n.Cols))
	}
}

func TestPlanMergeJoinWhenHashDisabled(t *testing.T) {
	k := dbenv.DefaultKnobs()
	k.EnableHashJoin = false
	k.EnableNestLoop = false
	n := mustPlan(t, plannerWith(k), "SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey")
	if n.Op != MergeJoin {
		t.Fatalf("root = %v, want MergeJoin\n%s", n.Op, n.Explain())
	}
	// Children must deliver sorted order (Sort nodes or ordered index scans).
	for _, c := range n.Children {
		if c.Op != Sort && c.Op != IndexScan {
			t.Fatalf("merge child = %v, want Sort or IndexScan", c.Op)
		}
	}
}

func TestPlanNestedLoopForTinyInner(t *testing.T) {
	k := dbenv.DefaultKnobs()
	k.EnableHashJoin = false
	k.EnableMergeJoin = false
	n := mustPlan(t, plannerWith(k), "SELECT * FROM nation JOIN region ON nation.n_regionkey = region.r_regionkey")
	if n.Op != NestedLoop {
		t.Fatalf("root = %v, want NestedLoop\n%s", n.Op, n.Explain())
	}
	if n.Children[1].Op != Materialize {
		t.Fatalf("inner = %v, want Materialize", n.Children[1].Op)
	}
}

func TestPlanNLSoftDisable(t *testing.T) {
	k := dbenv.DefaultKnobs()
	k.EnableHashJoin = false
	k.EnableMergeJoin = false
	// lineitem × orders is far beyond the soft-disable product.
	n := mustPlan(t, plannerWith(k), "SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey")
	if n.Op != HashJoin {
		t.Fatalf("root = %v, want HashJoin via soft disable\n%s", n.Op, n.Explain())
	}
}

func TestPlanAggregateAndSort(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 24 GROUP BY l_returnflag ORDER BY l_returnflag")
	if n.Op != Sort {
		t.Fatalf("root = %v, want Sort\n%s", n.Op, n.Explain())
	}
	agg := n.Children[0]
	if agg.Op != Aggregate || len(agg.Aggs) != 2 || len(agg.GroupCols) != 1 {
		t.Fatalf("agg node = %+v", agg)
	}
	if agg.EstRows > 10 {
		t.Fatalf("group estimate = %v, want ≈3 (l_returnflag NDV)", agg.EstRows)
	}
}

func TestPlanScalarAggregate(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT COUNT(*) FROM lineitem")
	if n.Op != Aggregate || len(n.GroupCols) != 0 || n.EstRows != 1 {
		t.Fatalf("scalar agg plan wrong: %+v", n)
	}
}

func TestPlanThreeWayJoin(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT COUNT(*) FROM customer, orders, lineitem WHERE customer.c_custkey = orders.o_custkey AND orders.o_orderkey = lineitem.l_orderkey AND customer.c_acctbal > 0")
	ops := map[OpType]int{}
	n.Walk(func(x *Node) { ops[x.Op]++ })
	joins := ops[HashJoin] + ops[MergeJoin] + ops[NestedLoop]
	if joins != 2 {
		t.Fatalf("join count = %d, want 2\n%s", joins, n.Explain())
	}
	if ops[Aggregate] != 1 {
		t.Fatalf("aggregate missing")
	}
}

func TestPlanLimitPropagates(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT * FROM orders WHERE o_totalprice > 0 ORDER BY o_totalprice DESC LIMIT 7")
	if n.Limit != 7 {
		t.Fatalf("Limit = %d", n.Limit)
	}
	if !n.SortDesc[0] {
		t.Fatalf("DESC lost")
	}
}

func TestPlanErrors(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	bad := []string{
		"SELECT * FROM orders, lineitem",                                         // no join condition
		"SELECT * FROM orders o1, orders o2 WHERE o1.o_orderkey = o2.o_orderkey", // self join
		"SELECT * FROM ghost",
	}
	for _, sql := range bad {
		if _, err := pl.Plan(sqlparse.MustParse(sql)); err == nil {
			t.Errorf("Plan(%q) should fail", sql)
		}
	}
}

func TestExplainRendering(t *testing.T) {
	pl := plannerWith(dbenv.DefaultKnobs())
	n := mustPlan(t, pl, "SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey")
	out := n.Explain()
	if !strings.Contains(out, "Hash Join") || !strings.Contains(out, "orders") {
		t.Fatalf("explain output:\n%s", out)
	}
}

func TestCompiledPredOps(t *testing.T) {
	mk := func(op sqlparse.CmpOp, args ...catalog.Value) func(catalog.Value) bool {
		p := sqlparse.Predicate{Col: sqlparse.ColRef{}, Op: op, Args: args}
		return CompilePred(0, p).Eval
	}
	if !mk(sqlparse.OpEq, catalog.IntVal(5))(catalog.IntVal(5)) {
		t.Fatal("eq")
	}
	if mk(sqlparse.OpEq, catalog.IntVal(5))(catalog.NullVal()) {
		t.Fatal("null must not match")
	}
	if !mk(sqlparse.OpBetween, catalog.IntVal(1), catalog.IntVal(10))(catalog.IntVal(10)) {
		t.Fatal("between inclusive")
	}
	if !mk(sqlparse.OpIn, catalog.IntVal(1), catalog.IntVal(3))(catalog.IntVal(3)) {
		t.Fatal("in")
	}
	if !mk(sqlparse.OpNe, catalog.IntVal(1))(catalog.IntVal(2)) {
		t.Fatal("ne")
	}
	like := mk(sqlparse.OpLike, catalog.StrVal("ab%"))
	if !like(catalog.StrVal("abc")) || like(catalog.StrVal("xabc")) {
		t.Fatal("prefix like")
	}
	contains := mk(sqlparse.OpLike, catalog.StrVal("%bc%"))
	if !contains(catalog.StrVal("abcd")) {
		t.Fatal("contains like")
	}
	suffix := mk(sqlparse.OpLike, catalog.StrVal("%cd"))
	if !suffix(catalog.StrVal("abcd")) || suffix(catalog.StrVal("abce")) {
		t.Fatal("suffix like")
	}
	mid := mk(sqlparse.OpLike, catalog.StrVal("a%d"))
	if !mid(catalog.StrVal("abcd")) || mid(catalog.StrVal("abce")) {
		t.Fatal("interior like")
	}
}

func TestOpTypeStrings(t *testing.T) {
	for _, op := range AllOpTypes() {
		if strings.HasPrefix(op.String(), "OpType(") {
			t.Fatalf("missing String case for %d", int(op))
		}
	}
}
