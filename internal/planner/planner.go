package planner

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/dbenv"
	"repro/internal/sqlparse"
)

// Thresholds for physical operator selection.
const (
	// indexScanMaxSel: above this selectivity a sequential scan beats the
	// random heap fetches of an index scan.
	indexScanMaxSel = 0.20
	// nlSoftDisableProduct mirrors PostgreSQL's disable_cost behaviour:
	// even with only enable_nestloop on, a cross product above this size
	// falls back to a hash join rather than an unbounded quadratic plan.
	nlSoftDisableProduct = 5e7
)

// Planner builds physical plans for one dataset under one knob setting.
type Planner struct {
	Schema *catalog.Schema
	Stats  *catalog.Stats
	Knobs  dbenv.Knobs
}

// New constructs a planner.
func New(schema *catalog.Schema, stats *catalog.Stats, knobs dbenv.Knobs) *Planner {
	return &Planner{Schema: schema, Stats: stats, Knobs: knobs}
}

// Plan resolves the query against the schema and produces a physical plan.
func (pl *Planner) Plan(q *sqlparse.Query) (*Node, error) {
	if err := q.Resolve(pl.Schema); err != nil {
		return nil, err
	}
	return pl.PlanResolved(q)
}

// PlanResolved plans an already-resolved query, skipping name resolution —
// the template-cache hit path: the query cache stores one resolved
// skeleton per fingerprint, and each hit binds fresh literals into a
// clone and re-plans it here. Everything literal-dependent — literal
// coercion, selectivity estimation, and the operator choices that hang
// off it (index-vs-seq scan, join algorithm and order) — reruns from
// scratch, which is what keeps a cache-hit plan bit-identical to planning
// the same SQL cold.
func (pl *Planner) PlanResolved(q *sqlparse.Query) (*Node, error) {
	pl.coerceLiterals(q)
	// Group predicates by table.
	tablePreds := make(map[string][]sqlparse.Predicate)
	for _, p := range q.Preds {
		tablePreds[p.Col.Table] = append(tablePreds[p.Col.Table], p)
	}
	// Base scans.
	scans := make(map[string]*Node, len(q.Tables))
	for _, t := range q.Tables {
		if _, dup := scans[t.Name]; dup {
			return nil, fmt.Errorf("planner: self-joins unsupported (table %q twice)", t.Name)
		}
		scans[t.Name] = pl.buildScan(t.Name, tablePreds[t.Name])
	}

	root, err := pl.joinTables(q, scans)
	if err != nil {
		return nil, err
	}

	// Aggregation.
	hasAgg := len(q.GroupBy) > 0
	for _, s := range q.Select {
		if s.Agg != sqlparse.AggNone {
			hasAgg = true
		}
	}
	if hasAgg {
		root, err = pl.buildAggregate(q, root)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY.
	if len(q.OrderBy) > 0 {
		sortCols := make([]int, len(q.OrderBy))
		sortDesc := make([]bool, len(q.OrderBy))
		for i, o := range q.OrderBy {
			ci := root.ColIndex(o.Col.Table, o.Col.Column)
			if ci < 0 {
				return nil, fmt.Errorf("planner: ORDER BY column %s not in output", o.Col)
			}
			sortCols[i] = ci
			sortDesc[i] = o.Desc
		}
		root = &Node{
			Op: Sort, Children: []*Node{root},
			SortCols: sortCols, SortDesc: sortDesc,
			Cols: root.Cols, EstRows: root.EstRows, EstWidth: root.EstWidth,
			Limit: -1, EstIn1: root.EstRows,
		}
	}
	root.Limit = -1
	if q.Limit >= 0 {
		root.Limit = q.Limit
	}
	return root, nil
}

// coerceLiterals rewrites raw integer literals compared against float
// columns into the engine's scaled fixed-point representation (I = v×100),
// so predicate evaluation and histogram lookups operate in one unit system.
func (pl *Planner) coerceLiterals(q *sqlparse.Query) {
	for pi := range q.Preds {
		p := &q.Preds[pi]
		col, ok := pl.Schema.Table(p.Col.Table).Col(p.Col.Column)
		if !ok || col.Type != catalog.FloatCol {
			continue
		}
		for ai := range p.Args {
			a := &p.Args[ai]
			if !a.IsStr && !a.Null && !a.IsFloat {
				a.I *= 100
				a.IsFloat = true
			}
		}
	}
}

// buildScan chooses between a sequential scan and an index scan for one
// table under the current knobs and statistics.
func (pl *Planner) buildScan(table string, preds []sqlparse.Predicate) *Node {
	t := pl.Schema.Table(table)
	ts := pl.Stats.Table(table)
	rows := float64(1)
	if ts != nil {
		rows = float64(ts.RowCount)
	}
	cols := make([]ColInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = ColInfo{Table: table, Column: c.Name, Type: c.Type, Width: c.Width}
	}

	sel := 1.0
	for _, p := range preds {
		sel *= PredSelectivity(pl.Stats, p)
	}
	est := math.Max(1, rows*sel)

	// Candidate index predicate: the most selective eq/range predicate on
	// an indexed column.
	var idxDef catalog.IndexDef
	var idxPred *sqlparse.Predicate
	bestSel := indexScanMaxSel
	if pl.Knobs.EnableIndexScan {
		for i, p := range preds {
			if !indexableOp(p.Op) {
				continue
			}
			def, ok := pl.Schema.IndexOn(table, p.Col.Column)
			if !ok {
				continue
			}
			ps := PredSelectivity(pl.Stats, p)
			if ps < bestSel {
				bestSel, idxDef, idxPred = ps, def, &preds[i]
			}
		}
	}

	n := &Node{
		Table: table, Cols: cols, EstRows: est, EstWidth: t.RowWidth(),
		Selectivity: sel, Limit: -1, EstIn1: rows,
	}
	if idxPred != nil {
		n.Op = IndexScan
		n.Index = idxDef.Name
		n.EstIn1 = math.Max(1, rows*bestSel) // expected index matches
		ip := CompilePred(t.ColIndex(idxPred.Col.Column), *idxPred)
		n.IndexPred = &ip
		for _, p := range preds {
			if p.Col == idxPred.Col && p.Op == idxPred.Op {
				continue // served by the index
			}
			n.Preds = append(n.Preds, CompilePred(t.ColIndex(p.Col.Column), p))
		}
		return n
	}
	n.Op = SeqScan
	for _, p := range preds {
		n.Preds = append(n.Preds, CompilePred(t.ColIndex(p.Col.Column), p))
	}
	return n
}

// indexableOp reports whether a B+tree index can serve the operator.
func indexableOp(op sqlparse.CmpOp) bool {
	switch op {
	case sqlparse.OpEq, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe, sqlparse.OpBetween:
		return true
	}
	return false
}

// joinTables builds a left-deep join tree greedily: start from the smallest
// scan, repeatedly attach the connected table yielding the smallest
// estimated intermediate result.
func (pl *Planner) joinTables(q *sqlparse.Query, scans map[string]*Node) (*Node, error) {
	if len(q.Tables) == 1 {
		return scans[q.Tables[0].Name], nil
	}
	type edge struct {
		l, r sqlparse.ColRef
	}
	adj := make(map[string][]edge)
	for _, j := range q.Joins {
		adj[j.Left.Table] = append(adj[j.Left.Table], edge{j.Left, j.Right})
		adj[j.Right.Table] = append(adj[j.Right.Table], edge{j.Right, j.Left})
	}

	// Seed with the smallest scan that participates in a join.
	var current *Node
	joined := make(map[string]bool)
	for _, t := range q.Tables {
		n := scans[t.Name]
		if len(adj[t.Name]) == 0 {
			continue
		}
		if current == nil || n.EstRows < current.EstRows {
			current = n
		}
	}
	if current == nil {
		return nil, fmt.Errorf("planner: %d tables but no join conditions", len(q.Tables))
	}
	joined[current.Table] = true
	currentTables := map[string]bool{current.Table: true}

	for len(joined) < len(q.Tables) {
		// Find the best next (connected) table.
		var bestNode *Node
		var bestEdge edge
		bestEst := math.Inf(1)
		for tab := range currentTables {
			for _, e := range adj[tab] {
				other := e.r.Table
				if joined[other] {
					continue
				}
				est := pl.joinEstRows(current.EstRows, scans[other].EstRows, e.l, e.r)
				if est < bestEst {
					bestEst, bestNode, bestEdge = est, scans[other], e
				}
			}
		}
		if bestNode == nil {
			// Disconnected join graph: no cross products in our workloads.
			return nil, fmt.Errorf("planner: disconnected join graph")
		}
		lc := current.ColIndex(bestEdge.l.Table, bestEdge.l.Column)
		rc := bestNode.ColIndex(bestEdge.r.Table, bestEdge.r.Column)
		if lc < 0 || rc < 0 {
			return nil, fmt.Errorf("planner: join column resolution failed for %s = %s", bestEdge.l, bestEdge.r)
		}
		current = pl.chooseJoin(current, bestNode, lc, rc, bestEst)
		joined[bestNode.Table] = true
		currentTables[bestNode.Table] = true
		// The composite node spans several tables; track them for adjacency.
		for _, c := range current.Cols {
			currentTables[c.Table] = true
		}
	}
	return current, nil
}

// joinEstRows estimates |L ⋈ R|.
func (pl *Planner) joinEstRows(lRows, rRows float64, l, r sqlparse.ColRef) float64 {
	return math.Max(1, lRows*rRows*JoinSelectivity(pl.Stats, l, r))
}

// chooseJoin picks the physical join operator under the knobs, using
// simple cost proxies (hash: linear; merge: sort cost; NL: quadratic).
func (pl *Planner) chooseJoin(l, r *Node, lc, rc int, est float64) *Node {
	nl, nr := l.EstRows, r.EstRows
	type cand struct {
		op    OpType
		proxy float64
	}
	var cands []cand
	if pl.Knobs.EnableHashJoin {
		cands = append(cands, cand{HashJoin, nl + 1.5*nr + est})
	}
	if pl.Knobs.EnableMergeJoin {
		cands = append(cands, cand{MergeJoin, nl*safeLog2(nl) + nr*safeLog2(nr) + est})
	}
	if pl.Knobs.EnableNestLoop {
		cands = append(cands, cand{NestedLoop, nl*nr*0.01 + nl + nr})
	}
	if len(cands) == 0 {
		cands = append(cands, cand{NestedLoop, nl * nr})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.proxy < best.proxy {
			best = c
		}
	}
	// Soft disable: a quadratic blow-up falls back to hash join as
	// PostgreSQL's disable_cost would.
	if best.op == NestedLoop && nl*nr > nlSoftDisableProduct {
		best.op = HashJoin
	}

	cols := append(append([]ColInfo{}, l.Cols...), r.Cols...)
	width := l.EstWidth + r.EstWidth
	switch best.op {
	case HashJoin:
		// Build side is the smaller input; keep left=probe convention by
		// swapping so the right child is always the build side.
		if nl < nr {
			l, r, lc, rc, nl, nr = r, l, rc, lc, nr, nl
			cols = append(append([]ColInfo{}, l.Cols...), r.Cols...)
		}
		return &Node{
			Op: HashJoin, Children: []*Node{l, r},
			JoinLeftCol: lc, JoinRightCol: rc,
			Cols: cols, EstRows: est, EstWidth: width, Limit: -1,
			EstIn1: l.EstRows, EstIn2: r.EstRows,
		}
	case MergeJoin:
		ls := pl.ensureSorted(l, lc)
		rs := pl.ensureSorted(r, rc)
		return &Node{
			Op: MergeJoin, Children: []*Node{ls, rs},
			JoinLeftCol: lc, JoinRightCol: rc,
			Cols: cols, EstRows: est, EstWidth: width, Limit: -1,
			EstIn1: l.EstRows, EstIn2: r.EstRows,
		}
	default:
		// Nested loop rescans its inner side: materialize it once.
		mat := &Node{
			Op: Materialize, Children: []*Node{r},
			Cols: r.Cols, EstRows: r.EstRows, EstWidth: r.EstWidth, Limit: -1,
			EstIn1: r.EstRows,
		}
		return &Node{
			Op: NestedLoop, Children: []*Node{l, mat},
			JoinLeftCol: lc, JoinRightCol: rc,
			Cols: cols, EstRows: est, EstWidth: width, Limit: -1,
			EstIn1: l.EstRows, EstIn2: r.EstRows,
		}
	}
}

// ensureSorted wraps n in a Sort on col unless it is an index scan already
// delivering that order.
func (pl *Planner) ensureSorted(n *Node, col int) *Node {
	if n.Op == IndexScan && n.IndexPred != nil && n.IndexPred.Col == col {
		return n
	}
	return &Node{
		Op: Sort, Children: []*Node{n},
		SortCols: []int{col}, SortDesc: []bool{false},
		Cols: n.Cols, EstRows: n.EstRows, EstWidth: n.EstWidth, Limit: -1,
		EstIn1: n.EstRows,
	}
}

// buildAggregate constructs the Aggregate node for GROUP BY / aggregate
// select lists.
func (pl *Planner) buildAggregate(q *sqlparse.Query, input *Node) (*Node, error) {
	groupCols := make([]int, len(q.GroupBy))
	outCols := make([]ColInfo, 0, len(q.GroupBy)+len(q.Select))
	for i, g := range q.GroupBy {
		ci := input.ColIndex(g.Table, g.Column)
		if ci < 0 {
			return nil, fmt.Errorf("planner: GROUP BY column %s not in input", g)
		}
		groupCols[i] = ci
		outCols = append(outCols, input.Cols[ci])
	}
	var aggs []AggSpec
	for _, s := range q.Select {
		if s.Agg == sqlparse.AggNone {
			continue
		}
		spec := AggSpec{Func: s.Agg, Col: -1}
		if s.Col.Column != "" {
			ci := input.ColIndex(s.Col.Table, s.Col.Column)
			if ci < 0 {
				return nil, fmt.Errorf("planner: aggregate column %s not in input", s.Col)
			}
			spec.Col = ci
		}
		aggs = append(aggs, spec)
		outCols = append(outCols, ColInfo{Column: string(s.Agg), Type: catalog.IntCol, Width: 8})
	}
	est := GroupEstimate(pl.Stats, q.GroupBy, input.EstRows)
	return &Node{
		Op: Aggregate, Children: []*Node{input},
		GroupCols: groupCols, Aggs: aggs,
		Cols: outCols, EstRows: est, EstWidth: 8 * len(outCols), Limit: -1,
		EstIn1: input.EstRows,
	}, nil
}

func safeLog2(n float64) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(n)
}
