package planner

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/sqlparse"
)

// Default selectivities for predicates the histogram cannot answer,
// mirroring PostgreSQL's defaults.
const (
	defaultEqSel    = 0.005
	defaultRangeSel = 0.33
	defaultLikeSel  = 0.05
)

// PredSelectivity estimates the fraction of rows satisfying p using the
// column statistics; it falls back to PostgreSQL-style defaults when the
// statistics cannot answer.
func PredSelectivity(stats *catalog.Stats, p sqlparse.Predicate) float64 {
	cs := stats.Col(p.Col.Table, p.Col.Column)
	if cs == nil {
		return defaultRangeSel
	}
	switch p.Op {
	case sqlparse.OpEq:
		return cs.SelectivityEq(p.Args[0])
	case sqlparse.OpNe:
		return clamp01(1 - cs.SelectivityEq(p.Args[0]))
	case sqlparse.OpLt, sqlparse.OpLe:
		return cs.SelectivityRange(nil, &p.Args[0])
	case sqlparse.OpGt, sqlparse.OpGe:
		return cs.SelectivityRange(&p.Args[0], nil)
	case sqlparse.OpBetween:
		return cs.SelectivityRange(&p.Args[0], &p.Args[1])
	case sqlparse.OpIn:
		var s float64
		for _, a := range p.Args {
			s += cs.SelectivityEq(a)
		}
		return clamp01(s)
	case sqlparse.OpLike:
		return defaultLikeSel
	}
	return defaultRangeSel
}

// JoinSelectivity estimates the equi-join selectivity 1/max(ndv_l, ndv_r),
// the textbook formula PostgreSQL also uses for single-clause equi-joins.
func JoinSelectivity(stats *catalog.Stats, l, r sqlparse.ColRef) float64 {
	ndv := func(c sqlparse.ColRef) float64 {
		if cs := stats.Col(c.Table, c.Column); cs != nil && cs.DistinctVals > 0 {
			return float64(cs.DistinctVals)
		}
		return 200 // default NDV
	}
	m := math.Max(ndv(l), ndv(r))
	return 1 / m
}

// GroupEstimate estimates the number of output groups for a hash aggregate:
// the product of the grouping columns' NDVs, capped by the input rows.
func GroupEstimate(stats *catalog.Stats, cols []sqlparse.ColRef, inputRows float64) float64 {
	if len(cols) == 0 {
		return 1
	}
	groups := 1.0
	for _, c := range cols {
		if cs := stats.Col(c.Table, c.Column); cs != nil && cs.DistinctVals > 0 {
			groups *= float64(cs.DistinctVals)
		} else {
			groups *= 50
		}
	}
	return math.Max(1, math.Min(groups, inputRows))
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }
