package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	qcfe "repro"
)

// startPipelined builds a pipelined server over est and runs it until
// the test ends.
func startPipelined(t *testing.T, est Estimator, opts Options) *Server {
	t.Helper()
	srv := New(est, opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.Run(ctx); close(done) }()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return srv
}

// TestPipelinedParityAcrossDepths is the tentpole invariant: with the
// staged pipeline enabled — at several depths and worker counts, cache
// attached or not — concurrent coalesced requests return exactly the
// library's predictions, cold and warm. Bitwise equality across
// {serial, pipelined×depths} × {cache on, cache off} all reduced to the
// same library ground truth.
func TestPipelinedParityAcrossDepths(t *testing.T) {
	base := testEstimator(t)
	envs := base.Environments()
	const n = 48
	want := make([]float64, n)
	for i := range want {
		ms, err := base.EstimateSQL(envs[i%len(envs)], testSQL(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ms
	}

	run := func(t *testing.T, srv *Server) {
		// Two passes: the first is cold (missing every tier the estimator
		// has), the second warm where a cache is attached. Both must be
		// bit-identical to the library.
		for pass := 0; pass < 2; pass++ {
			got := make([]float64, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], errs[i] = srv.Estimate(context.Background(), envs[i%len(envs)].ID, testSQL(i))
				}(i)
			}
			wg.Wait()
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("pass %d request %d: %v", pass, i, errs[i])
				}
				if got[i] != want[i] {
					t.Fatalf("pass %d request %d: served %v != library %v", pass, i, got[i], want[i])
				}
			}
		}
	}

	for _, depth := range []int{1, 2, 4} {
		opts := Options{MaxBatch: 16, BatchWindow: time.Millisecond, PipelineDepth: depth, FeaturizeWorkers: 2, PredictWorkers: 2}
		t.Run(fmt.Sprintf("depth=%d/cache=off", depth), func(t *testing.T) {
			run(t, startPipelined(t, testEstimator(t), opts))
		})
		t.Run(fmt.Sprintf("depth=%d/cache=on", depth), func(t *testing.T) {
			run(t, startPipelined(t, cachedCopy(t), opts))
		})
	}
}

// TestPipelinedStats: the pipelined counters keep the serial shape —
// every queued request flushes through some micro-batch, MeanBatch stays
// consistent, and /stats reports the pipeline configuration.
func TestPipelinedStats(t *testing.T) {
	est := testEstimator(t)
	srv := New(est, Options{MaxBatch: 64, BatchWindow: time.Millisecond, PipelineDepth: 2})
	env := est.Environments()[0]

	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Estimate(context.Background(), env.ID, testSQL(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for len(srv.queue) < n {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)
	wg.Wait()

	st := srv.Stats()
	if st.Requests != n {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (all %d requests pre-queued)", st.Flushes, n)
	}
	if st.MeanBatch != n {
		t.Fatalf("mean batch = %v, want %d", st.MeanBatch, n)
	}
	resp := srv.StatsSnapshot()
	if resp.PipelineDepth != 2 || resp.FeaturizeWorkers != 2 || resp.PredictWorkers != 1 {
		t.Fatalf("stats pipeline config = %d/%d/%d, want 2/2/1",
			resp.PipelineDepth, resp.FeaturizeWorkers, resp.PredictWorkers)
	}
}

// TestPipelinedErrorIsolation: a malformed query inside a pipelined
// micro-batch fails alone; its batch companions still price through the
// solo fallback bit-identically to the library.
func TestPipelinedErrorIsolation(t *testing.T) {
	est := testEstimator(t)
	srv := New(est, Options{MaxBatch: 8, BatchWindow: time.Millisecond, PipelineDepth: 2})
	env := est.Environments()[0]

	const n = 6
	sqls := make([]string, n)
	for i := range sqls {
		sqls[i] = testSQL(i)
	}
	sqls[3] = "SELECT * FROM no_such_table"
	got := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = srv.Estimate(context.Background(), env.ID, sqls[i])
		}(i)
	}
	for len(srv.queue) < n {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)
	wg.Wait()

	for i := 0; i < n; i++ {
		if i == 3 {
			if errs[i] == nil {
				t.Fatalf("malformed query did not error")
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := est.EstimateSQL(env, sqls[i])
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("request %d: served %v != library %v", i, got[i], want)
		}
	}
}

// TestPipelinedShutdownFailsPending mirrors TestShutdownFailsPending for
// the staged mode: requests still queued when the serving context is
// cancelled fail with a shutdown error after the stages have drained.
func TestPipelinedShutdownFailsPending(t *testing.T) {
	est := testEstimator(t)
	srv := New(est, Options{PipelineDepth: 2})
	env := est.Environments()[0]

	errc := make(chan error, 1)
	go func() {
		_, err := srv.Estimate(context.Background(), env.ID, testSQL(0))
		errc <- err
	}()
	for len(srv.queue) < 1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v", err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "shutting down") {
			t.Fatalf("pending request err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pending request hung across shutdown")
	}
}

// stormEstimator counts solo-fallback calls so the shutdown tests can
// prove cancellation never triggers the O(n) sequential re-pricing
// storm. Its batch path fails with the context's own error once
// cancelled, exactly like the library's.
type stormEstimator struct {
	env  *qcfe.Environment
	solo atomic.Int64
}

func (f *stormEstimator) ModelName() string                                        { return "storm" }
func (f *stormEstimator) BenchmarkName() string                                    { return "fake" }
func (f *stormEstimator) Environments() []*qcfe.Environment                        { return []*qcfe.Environment{f.env} }
func (f *stormEstimator) Generation() uint64                                       { return 1 }
func (f *stormEstimator) CachedEstimate(*qcfe.Environment, string) (float64, bool) { return 0, false }
func (f *stormEstimator) CacheStats() (qcfe.CacheStats, bool) {
	return qcfe.CacheStats{}, false
}
func (f *stormEstimator) EstimateSQL(*qcfe.Environment, string) (float64, error) {
	f.solo.Add(1)
	return 1, nil
}
func (f *stormEstimator) EstimateSQLBatchCtx(ctx context.Context, _ *qcfe.Environment, sqls []string) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ms := make([]float64, len(sqls))
	for i := range ms {
		ms[i] = 1
	}
	return ms, nil
}

// TestShutdownNoFallbackStorm is the satellite regression test: when the
// batcher is cancelled mid-gather, the partial batch must fail fast with
// the context's error — the per-request solo fallback (meant for query
// faults) must never re-price a batch that only failed because the
// server is shutting down.
func TestShutdownNoFallbackStorm(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{MaxBatch: 64, BatchWindow: time.Hour}},
		{"pipelined", Options{MaxBatch: 64, BatchWindow: time.Hour, PipelineDepth: 2}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			fake := &stormEstimator{env: &qcfe.Environment{ID: 0}}
			srv := New(fake, mode.opts)
			ctx, cancel := context.WithCancel(context.Background())
			runDone := make(chan error, 1)
			go func() { runDone <- srv.Run(ctx) }()

			const n = 8
			errc := make(chan error, n)
			for i := 0; i < n; i++ {
				go func(i int) {
					_, err := srv.Estimate(context.Background(), 0, fmt.Sprintf("SELECT %d", i))
					errc <- err
				}(i)
			}
			// Wait until the batcher holds every request inside gather
			// (BatchWindow is an hour, so the partial batch only returns
			// on cancellation), then shut down.
			deadline := time.After(5 * time.Second)
			for srv.Stats().Requests < n || len(srv.queue) > 0 {
				select {
				case <-deadline:
					t.Fatalf("batcher never picked up all requests")
				default:
					time.Sleep(time.Millisecond)
				}
			}
			cancel()
			for i := 0; i < n; i++ {
				select {
				case err := <-errc:
					if err == nil || !strings.Contains(err.Error(), "shutting down") {
						t.Fatalf("request err = %v, want shutdown error", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatalf("request %d hung across shutdown (fallback storm?)", i)
				}
			}
			if err := <-runDone; !errors.Is(err, context.Canceled) {
				t.Fatalf("Run = %v", err)
			}
			if got := fake.solo.Load(); got != 0 {
				t.Fatalf("solo fallback ran %d times during shutdown, want 0", got)
			}
			if st := srv.Stats(); st.Errors != n {
				t.Fatalf("errors = %d, want %d", st.Errors, n)
			}
		})
	}
}
