package serve

import (
	qcfe "repro"
	"repro/internal/obs"
)

// Prometheus exposition for one Server. WriteMetrics renders the whole
// serving surface — coalescer counters, query-cache tiers, latency
// histograms, and the drift monitor when attached — into a scrape. It
// reads through the same Stats()/CacheStats() snapshot paths /stats
// uses, so the two surfaces can never disagree about what a counter
// means. The extra labels are prepended to every sample: the
// multi-tenant registry passes tenant="...", so one registry scrape is
// the union of its tenants' servers with the tenant dimension attached.
func (s *Server) WriteMetrics(g *obs.Gatherer, extra ...obs.Label) {
	st := s.Stats()
	g.Counter("qcfe_serve_requests_total", "Single-query estimate requests (coalescing path).", st.Requests, extra...)
	g.Counter("qcfe_serve_batch_requests_total", "Queries arriving through explicit client batches.", st.BatchRequests, extra...)
	g.Counter("qcfe_serve_flushes_total", "Coalesced micro-batches priced.", st.Flushes, extra...)
	g.Counter("qcfe_serve_coalesced_total", "Requests that shared a micro-batch with at least one other.", st.Coalesced, extra...)
	g.Counter("qcfe_serve_cache_hits_total", "Requests served straight from the prediction tier.", st.CacheHits, extra...)
	g.Counter("qcfe_serve_swaps_total", "Estimator hot swaps installed.", st.Swaps, extra...)
	g.Counter("qcfe_serve_errors_total", "Requests that returned an error.", st.Errors, extra...)
	g.Gauge("qcfe_serve_mean_batch", "Mean coalesced micro-batch size over queued requests.", st.MeanBatch, extra...)
	g.Gauge("qcfe_serve_pipeline_depth", "Exchange-channel capacity of the staged miss path (0 = serial coalescer).", float64(s.opts.PipelineDepth), extra...)
	g.Gauge("qcfe_serve_uptime_seconds", "Seconds since this server object was constructed.", s.Uptime().Seconds(), extra...)

	if cs, ok := s.Estimator().CacheStats(); ok {
		g.Gauge("qcfe_qcache_generation", "Cache generation currently stamped on entries.", float64(cs.Generation), extra...)
		g.Gauge("qcfe_qcache_capacity_per_tier", "Configured per-tier entry capacity.", float64(cs.Capacity), extra...)
		for _, t := range []struct {
			name string
			ts   qcfe.CacheTierStats
		}{
			{"template", cs.Template},
			{"feature", cs.Feature},
			{"prediction", cs.Prediction},
		} {
			lbl := append(append([]obs.Label{}, extra...), obs.L("tier", t.name))
			g.Counter("qcfe_qcache_hits_total", "Query-cache lookups answered by this tier.", t.ts.Hits, lbl...)
			g.Counter("qcfe_qcache_misses_total", "Query-cache lookups this tier could not answer.", t.ts.Misses, lbl...)
			g.Counter("qcfe_qcache_stores_total", "Entries written into this tier.", t.ts.Stores, lbl...)
			g.Counter("qcfe_qcache_evictions_total", "Entries evicted from this tier.", t.ts.Evictions, lbl...)
			g.Gauge("qcfe_qcache_size", "Entries currently resident in this tier.", float64(t.ts.Size), lbl...)
		}
	}

	g.Histogram("qcfe_serve_warm_hit_seconds", "Latency of warm prediction-tier hits (Estimate/EstimateCached).", s.histWarm.Snapshot(), extra...)
	g.Histogram("qcfe_serve_queue_wait_seconds", "Time a coalesced request waited between enqueue and batcher pickup.", s.histQueueWait.Snapshot(), extra...)
	g.Histogram("qcfe_serve_flush_seconds", "Wall time of whole coalesced micro-batch flushes (serial: the flush call; pipelined: featurize pickup through last reply).", s.histFlush.Snapshot(), extra...)
	for _, t := range []struct {
		name string
		h    *obs.Histogram
	}{
		{"featurize", s.histStageFeat},
		{"predict", s.histStagePred},
	} {
		lbl := append(append([]obs.Label{}, extra...), obs.L("stage", t.name))
		g.Histogram("qcfe_serve_stage_seconds", "Per-stage wall time of the pipelined miss path, per environment group.", t.h.Snapshot(), lbl...)
	}
	for _, t := range []struct {
		name string
		h    *obs.Histogram
	}{
		{"template", s.histCacheTpl},
		{"feature", s.histCacheFeat},
		{"prediction", s.histCachePred},
	} {
		lbl := append(append([]obs.Label{}, extra...), obs.L("tier", t.name))
		g.Histogram("qcfe_qcache_lookup_seconds", "Query-cache per-tier lookup latency (hits and misses).", t.h.Snapshot(), lbl...)
	}

	if s.monitor != nil {
		if mw, ok := s.monitor.DriftStats().(obs.MetricsWriter); ok {
			mw.WriteMetrics(g, extra...)
		}
	}
}
