package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	qcfe "repro"
)

// fixture shares one small trained estimator across the package's tests
// (training dominates test runtime; the server under test is cheap).
var fixture struct {
	once sync.Once
	est  *qcfe.CostEstimator
	err  error
}

func testEstimator(t *testing.T) *qcfe.CostEstimator {
	t.Helper()
	fixture.once.Do(func() {
		b, err := qcfe.OpenBenchmark("sysbench", 1)
		if err != nil {
			fixture.err = err
			return
		}
		envs := qcfe.RandomEnvironments(2, 1)
		pool, err := b.CollectWorkload(envs, 80, 1)
		if err != nil {
			fixture.err = err
			return
		}
		train, _ := pool.Split(0.8)
		fixture.est, fixture.err = qcfe.NewPipeline("mscn",
			qcfe.WithTrainIters(40), qcfe.WithReferences(20), qcfe.WithSeed(3),
		).Fit(b, envs, train)
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.est
}

// startServer builds a Server plus its HTTP front end and runs the
// batcher until the test ends.
func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(testEstimator(t), opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.Run(ctx); close(done) }()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		<-done
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func testSQL(i int) string {
	switch i % 3 {
	case 0:
		return fmt.Sprintf("SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN %d AND %d", 50+i, 250+i)
	case 1:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE id = %d", 1+i)
	default:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE k < %d", 100+i)
	}
}

// TestHTTPParityUnderConcurrentLoad is the serving contract: concurrent
// /estimate requests — coalesced into micro-batches server-side — return
// exactly the library's EstimateSQL predictions.
func TestHTTPParityUnderConcurrentLoad(t *testing.T) {
	est := testEstimator(t)
	_, ts := startServer(t, Options{MaxBatch: 16, BatchWindow: 5 * time.Millisecond})

	const n = 48
	envs := est.Environments()
	results := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := envs[i%len(envs)]
			resp, body := postJSON(t, ts.URL+"/estimate",
				fmt.Sprintf(`{"env":%d,"sql":%q}`, env.ID, testSQL(i)))
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var out EstimateResponse
			if err := json.Unmarshal(body, &out); err != nil {
				errs[i] = err
				return
			}
			results[i] = out.Ms
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want, err := est.EstimateSQL(envs[i%len(envs)], testSQL(i))
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Fatalf("request %d: served %v != library %v", i, results[i], want)
		}
	}
}

// TestBatchEndpointParity: /estimate_batch equals EstimateSQLBatch, and
// the response body equals the JSON qcfe-bench -load -estimate prints —
// the byte-level parity the CI smoke test diffs.
func TestBatchEndpointParity(t *testing.T) {
	est := testEstimator(t)
	_, ts := startServer(t, Options{})
	env := est.Environments()[0]
	sqls := []string{testSQL(0), testSQL(1), testSQL(2)}

	req, _ := json.Marshal(BatchRequest{Env: env.ID, SQLs: sqls})
	resp, body := postJSON(t, ts.URL+"/estimate_batch", string(req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	want, err := est.EstimateSQLBatch(env, sqls)
	if err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ms) != len(want) {
		t.Fatalf("got %d results, want %d", len(out.Ms), len(want))
	}
	for i := range want {
		if out.Ms[i] != want[i] {
			t.Fatalf("sql %d: served %v != library %v", i, out.Ms[i], want[i])
		}
	}
	var lib bytes.Buffer
	json.NewEncoder(&lib).Encode(BatchResponse{Ms: want})
	if !bytes.Equal(bytes.TrimSpace(body), bytes.TrimSpace(lib.Bytes())) {
		t.Fatalf("response body %q != library JSON %q", body, lib.Bytes())
	}
}

// TestCoalescing proves concurrent singles actually share micro-batches:
// requests enqueued before the batcher starts must drain in fewer
// flushes than requests.
func TestCoalescing(t *testing.T) {
	est := testEstimator(t)
	srv := New(est, Options{MaxBatch: 64, BatchWindow: time.Millisecond})
	env := est.Environments()[0]

	const n = 24
	type res struct {
		ms  float64
		err error
	}
	results := make(chan res, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ms, err := srv.Estimate(context.Background(), env.ID, testSQL(i))
			results <- res{ms, err}
		}(i)
	}
	// Wait until every request is parked in the queue, then start the
	// batcher: the first flush must drain them all in one micro-batch.
	for len(srv.queue) < n {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
	}
	st := srv.Stats()
	if st.Requests != n {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (all %d requests pre-queued)", st.Flushes, n)
	}
	if st.MeanBatch != n {
		t.Fatalf("mean batch = %v, want %d", st.MeanBatch, n)
	}
}

// TestErrorIsolation: one malformed query in a coalesced micro-batch
// fails only its own request; companions still get exact predictions.
func TestErrorIsolation(t *testing.T) {
	est := testEstimator(t)
	srv := New(est, Options{MaxBatch: 8, BatchWindow: time.Millisecond})
	env := est.Environments()[0]

	sqls := []string{testSQL(0), "THIS IS NOT SQL", testSQL(2)}
	type res struct {
		ms  float64
		err error
	}
	results := make([]res, len(sqls))
	var wg sync.WaitGroup
	for i, sql := range sqls {
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			ms, err := srv.Estimate(context.Background(), env.ID, sql)
			results[i] = res{ms, err}
		}(i, sql)
	}
	for len(srv.queue) < len(sqls) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)
	wg.Wait()

	if results[1].err == nil {
		t.Fatalf("malformed query should error")
	}
	for _, i := range []int{0, 2} {
		if results[i].err != nil {
			t.Fatalf("query %d: %v", i, results[i].err)
		}
		want, err := est.EstimateSQL(env, sqls[i])
		if err != nil {
			t.Fatal(err)
		}
		if results[i].ms != want {
			t.Fatalf("query %d: served %v != library %v", i, results[i].ms, want)
		}
	}
}

// TestUnknownEnvironment: an env ID outside the artifact's set is a
// client error, not a panic or a silent default.
func TestUnknownEnvironment(t *testing.T) {
	_, ts := startServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/estimate", `{"env":9999,"sql":"SELECT * FROM sbtest1"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown environment") {
		t.Fatalf("body = %s", body)
	}
}

// TestHealthzAndStats sanity-checks the observability endpoints.
func TestHealthzAndStats(t *testing.T) {
	_, ts := startServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status    string `json:"status"`
		Model     string `json:"model"`
		Benchmark string `json:"benchmark"`
		Envs      int    `json:"envs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Model != "mscn" || health.Benchmark != "sysbench" || health.Envs != 2 {
		t.Fatalf("health = %+v", health)
	}

	postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"env":0,"sql":%q}`, testSQL(0)))
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests < 1 || stats.Flushes < 1 || stats.MaxBatch == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestShutdownFailsPending: requests still queued when the serving
// context is cancelled fail with a shutdown error instead of hanging.
func TestShutdownFailsPending(t *testing.T) {
	est := testEstimator(t)
	srv := New(est, Options{})
	env := est.Environments()[0]

	errc := make(chan error, 1)
	go func() {
		_, err := srv.Estimate(context.Background(), env.ID, testSQL(0))
		errc <- err
	}()
	for len(srv.queue) < 1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v", err)
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "shutting down") {
			t.Fatalf("pending request err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pending request hung across shutdown")
	}
}
