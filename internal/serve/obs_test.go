package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// startObsServer is startServer with a cache-backed estimator copy, so
// the observability surface under test includes the qcache tier
// histograms and a recordable warm-hit path.
func startObsServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cachedCopy(t), opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.Run(ctx); close(done) }()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		<-done
	})
	return srv, ts
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestObsEndpoints drives real traffic through the HTTP front end, then
// checks the whole observability surface it should have produced: a
// grammar-valid /metrics exposition carrying the serving and cache
// histograms, per-request trace IDs echoed on the data plane and
// retrievable with their stage spans from /trace/recent, and /version.
func TestObsEndpoints(t *testing.T) {
	_, ts := startObsServer(t, Options{MaxBatch: 8, BatchWindow: time.Millisecond, TraceRing: 32})
	// cachedCopy is a Save→Load of the shared fixture, so the fixture's
	// environment IDs are valid against it.
	envID := testEstimator(t).Environments()[0].ID

	// Same SQL twice: the first request flows through the coalescing
	// queue (queue_wait + predict spans), the repeat short-circuits warm
	// (probe span, warm-hit histogram).
	sql := testSQL(1)
	var lastID string
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"env":%d,"sql":%q}`, envID, sql))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %d: status %d", i, resp.StatusCode)
		}
		lastID = resp.Header.Get(obs.TraceHeader)
		if len(lastID) != 32 {
			t.Fatalf("estimate %d: echoed trace id %q, want 32 hex chars", i, lastID)
		}
	}

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"qcfe_serve_requests_total 2",
		"qcfe_serve_cache_hits_total 1",
		"qcfe_serve_warm_hit_seconds_bucket",
		"qcfe_serve_warm_hit_seconds_count 1",
		"qcfe_serve_queue_wait_seconds_sum",
		"qcfe_serve_flush_seconds_bucket",
		`qcfe_qcache_lookup_seconds_bucket{tier=`,
		`tier="prediction"`,
		"qcfe_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = getBody(t, ts.URL+"/trace/recent?n=10")
	if code != http.StatusOK {
		t.Fatalf("/trace/recent status %d", code)
	}
	var recs []obs.TraceRecord
	if err := json.Unmarshal(body, &recs); err != nil {
		t.Fatalf("/trace/recent: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("/trace/recent returned %d records, want 2", len(recs))
	}
	// Newest first: recs[0] is the warm repeat (probe span only),
	// recs[1] the cold request that crossed the coalescing queue.
	if recs[0].TraceID != lastID {
		t.Fatalf("newest trace id %q, want the last echoed %q", recs[0].TraceID, lastID)
	}
	stages := func(r obs.TraceRecord) map[string]int {
		m := map[string]int{}
		for _, sp := range r.Spans {
			m[sp.Stage]++
		}
		return m
	}
	if st := stages(recs[0]); st["probe"] != 1 || st["queue_wait"] != 0 {
		t.Fatalf("warm trace spans = %+v, want a probe span and no queue_wait", recs[0].Spans)
	}
	if st := stages(recs[1]); st["probe"] != 1 || st["queue_wait"] != 1 || st["predict"] != 1 {
		t.Fatalf("cold trace spans = %+v, want probe + queue_wait + predict", recs[1].Spans)
	}

	code, body = getBody(t, ts.URL+"/version")
	if code != http.StatusOK {
		t.Fatalf("/version status %d", code)
	}
	var bi obs.BuildInfo
	if err := json.Unmarshal(body, &bi); err != nil {
		t.Fatalf("/version: %v", err)
	}
	if bi.GoVersion == "" {
		t.Fatal("/version reports no go_version")
	}
}

// TestPprofGatedByAdminToken pins the pprof exposure rules: absent a
// token the surface is disabled outright (403), with a token it demands
// the X-QCFE-Admin-Token header (401 otherwise) — the same contract as
// the /swap admin surface.
func TestPprofGatedByAdminToken(t *testing.T) {
	_, open := startObsServer(t, Options{BatchWindow: time.Millisecond})
	if code, _ := getBody(t, open.URL+"/debug/pprof/"); code != http.StatusForbidden {
		t.Fatalf("tokenless pprof status %d, want 403", code)
	}

	_, gated := startObsServer(t, Options{BatchWindow: time.Millisecond, AdminToken: "obs-token"})
	if code, _ := getBody(t, gated.URL+"/debug/pprof/"); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated pprof status %d, want 401", code)
	}
	req, err := http.NewRequest(http.MethodGet, gated.URL+"/debug/pprof/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-QCFE-Admin-Token", "obs-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated pprof status %d, want 200", resp.StatusCode)
	}
}
