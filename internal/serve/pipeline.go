// Pipelined miss path: the serial gather-then-flush loop in serve.go
// alternates the batch window with pricing — while one micro-batch
// parses/plans/featurizes/predicts, no new batch is gathering, so one
// slow batch stalls everything queued behind it. With
// Options.PipelineDepth > 0 the batcher instead hands each gathered
// batch to a pipeline of bounded concurrent stages connected by small
// buffered channels (Volcano-style exchange operators):
//
//	gather ──featCh──▶ featurize ──predCh──▶ predict ──replyCh──▶ reply
//	(1 goroutine)      (FeaturizeWorkers)    (PredictWorkers)     (1 goroutine)
//
// Each channel's capacity is PipelineDepth, so at most
// depth + workers batches are in flight per stage — bounded memory,
// backpressure when the NN kernel falls behind. The batcher returns to
// gathering the instant a batch is on featCh, so the batch window
// overlaps with pricing instead of adding to it.
//
// Correctness mirrors the serial path exactly:
//
//   - One estimator snapshot per micro-batch, taken at featurize pickup
//     and carried through the unit: every reply is computed wholly by
//     one model even when a hot swap lands mid-pipeline. The snapshot's
//     FeaturizeSQLBatchCtx pins (cache, generation), so the back half
//     writes predictions under the pinned generation — invisible after
//     a swap, exactly as in the fused call.
//   - The two halves compose to qcfe.EstimateSQLBatchCtx by
//     construction, so pipelined replies are bit-identical to serial
//     ones, cache on or off.
//   - Shutdown drains: the gather loop exits on ctx.Done, then each
//     stage channel is closed in order and its workers awaited, so
//     in-flight batches complete (the back half is pure compute);
//     batches still in the front half fail fast with the context's own
//     error (never the O(n) solo-fallback storm); only then are
//     still-queued requests failed.
package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	qcfe "repro"
)

// stagedEstimator is the optional split-batch API the pipeline prefers.
// *qcfe.CostEstimator implements it; estimators without it (test fakes)
// run their fused EstimateSQLBatchCtx in the predict stage instead —
// same results, less overlap.
type stagedEstimator interface {
	FeaturizeSQLBatchCtx(ctx context.Context, env *qcfe.Environment, sqls []string) (*qcfe.FeaturizedBatch, error)
	PredictFeaturized(fb *qcfe.FeaturizedBatch) []float64
}

// pipeUnit is one environment group of a gathered micro-batch moving
// through the exchange channels. Units are pooled; the reply stage
// resets and recycles them after the last reply is sent.
type pipeUnit struct {
	est    Estimator
	staged stagedEstimator // nil when est lacks the split API
	env    *qcfe.Environment
	group  []*request
	sqls   []string
	fb     *qcfe.FeaturizedBatch // front-half output (staged estimators only)
	err    error                 // front-half failure
	ms     []float64
	errs   []error   // per-request errors; empty when the whole group succeeded
	start  time.Time // featurize-stage pickup; the reply stage closes histFlush from it
}

var unitPool = sync.Pool{New: func() any { return new(pipeUnit) }}

func getUnit() *pipeUnit { return unitPool.Get().(*pipeUnit) }

func putUnit(u *pipeUnit) {
	for i := range u.group {
		u.group[i] = nil
	}
	u.group = u.group[:0]
	for i := range u.sqls {
		u.sqls[i] = ""
	}
	u.sqls = u.sqls[:0]
	u.ms = u.ms[:0]
	u.errs = u.errs[:0]
	u.est, u.staged, u.env, u.fb, u.err = nil, nil, nil, nil, nil
	unitPool.Put(u)
}

// runPipelined is Run's staged mode. Stage goroutines are owned by this
// call: it starts them, feeds them, and on shutdown closes each exchange
// channel in pipeline order, waiting out every stage before failing the
// requests still in the queue.
func (s *Server) runPipelined(ctx context.Context) error {
	o := s.opts
	featCh := make(chan []*request, o.PipelineDepth)
	predCh := make(chan *pipeUnit, o.PipelineDepth)
	replyCh := make(chan *pipeUnit, o.PipelineDepth)
	var fwg, pwg, rwg sync.WaitGroup
	for i := 0; i < o.FeaturizeWorkers; i++ {
		fwg.Add(1)
		go s.featurizeStage(ctx, &fwg, featCh, predCh)
	}
	for i := 0; i < o.PredictWorkers; i++ {
		pwg.Add(1)
		go s.predictStage(ctx, &pwg, predCh, replyCh)
	}
	rwg.Add(1)
	go s.replyStage(&rwg, replyCh)

	err := s.gatherLoop(ctx, featCh)
	// Drain in pipeline order. Consumers outlive their producers at
	// every stage, so no stage can block forever on a full channel.
	close(featCh)
	fwg.Wait()
	close(predCh)
	pwg.Wait()
	close(replyCh)
	rwg.Wait()
	s.drainFailed(err)
	return err
}

// gatherLoop is the pipelined batcher: gather a micro-batch, hand it to
// the featurize stage, immediately gather the next.
func (s *Server) gatherLoop(ctx context.Context, featCh chan<- []*request) error {
	co := newCoalescer()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case first := <-s.queue:
			batch := s.gather(ctx, co, first)
			select {
			case featCh <- batch:
			case <-ctx.Done():
				// Shutdown raced the handoff; fail the gathered batch
				// fast rather than feeding stages that would only cancel.
				err := ctx.Err()
				for _, r := range batch {
					s.errors.Add(1)
					r.reply <- result{err: fmt.Errorf("serve: shutting down: %w", err)}
				}
				putBatch(batch)
				return err
			}
		}
	}
}

// featurizeStage turns gathered batches into priced-or-ready units: it
// snapshots the estimator (once per micro-batch — the snapshot every
// reply in the batch is computed by), ends each request's queue wait,
// groups by environment, and runs the front half (probe + template- and
// feature-tier-aware parse/plan/featurize) for staged estimators.
func (s *Server) featurizeStage(ctx context.Context, wg *sync.WaitGroup, in <-chan []*request, out chan<- *pipeUnit) {
	defer wg.Done()
	co := newCoalescer() // per-worker grouping scratch
	for batch := range in {
		start := time.Now()
		est := s.Estimator()
		staged, _ := est.(stagedEstimator)
		s.flushes.Add(1)
		if len(batch) > 1 {
			s.coalesced.Add(int64(len(batch)))
		}
		// Queue wait ends at stage pickup, exactly like the serial flush.
		// Spans must be recorded before a request's reply is sent: the
		// HTTP edge finishes the trace the moment the reply arrives.
		for _, r := range batch {
			s.histQueueWait.RecordSince(r.enq)
			r.tr.AddSpan("queue_wait", "", r.enq)
		}
		co.groupBatch(batch)
		for _, id := range co.order {
			grp := co.groups[id]
			u := getUnit()
			u.est, u.staged = est, staged
			u.env = grp[0].env
			u.group = append(u.group, grp...)
			for _, r := range grp {
				u.sqls = append(u.sqls, r.sql)
			}
			u.start = start
			if staged != nil {
				fstart := time.Now()
				u.fb, u.err = staged.FeaturizeSQLBatchCtx(ctx, u.env, u.sqls)
				s.histStageFeat.RecordSince(fstart)
				for _, r := range grp {
					r.tr.AddSpan("featurize", fmt.Sprintf("batch=%d", len(grp)), fstart)
				}
			}
			out <- u
		}
		co.resetGroups()
		putBatch(batch)
	}
}

// predictStage runs the back half: batched inference + cache write-back
// for staged units, the fused batch call for estimators without the
// split API, and the serial path's exact error discipline — a cancelled
// context fails the group fast with the context's own error, a query
// fault falls back to pricing each request alone.
func (s *Server) predictStage(ctx context.Context, wg *sync.WaitGroup, in <-chan *pipeUnit, out chan<- *pipeUnit) {
	defer wg.Done()
	for u := range in {
		s.priceUnit(ctx, u)
		out <- u
	}
}

func (s *Server) priceUnit(ctx context.Context, u *pipeUnit) {
	pstart := time.Now()
	if u.err == nil {
		if u.fb != nil {
			ms := u.staged.PredictFeaturized(u.fb)
			u.ms = append(u.ms, ms...)
			s.histStagePred.RecordSince(pstart)
			for _, r := range u.group {
				r.tr.AddSpan("predict", fmt.Sprintf("batch=%d", len(u.group)), pstart)
			}
			return
		}
		ms, err := u.est.EstimateSQLBatchCtx(ctx, u.env, u.sqls)
		if err == nil {
			u.ms = append(u.ms, ms...)
			s.histStagePred.RecordSince(pstart)
			for _, r := range u.group {
				r.tr.AddSpan("predict", fmt.Sprintf("batch=%d", len(u.group)), pstart)
			}
			return
		}
		u.err = err
	}
	// Cancellation is shutdown, not a query failure: fail the group fast
	// instead of re-pricing it serially without a context.
	if cerr := ctx.Err(); cerr != nil {
		err := fmt.Errorf("serve: shutting down: %w", cerr)
		for range u.group {
			u.ms = append(u.ms, 0)
			u.errs = append(u.errs, err)
		}
		return
	}
	// Isolate the failure: price each request alone.
	for _, r := range u.group {
		soloStart := time.Now()
		v, rerr := u.est.EstimateSQL(r.env, r.sql)
		r.tr.AddSpan("predict", "solo-fallback", soloStart)
		u.ms = append(u.ms, v)
		u.errs = append(u.errs, rerr)
	}
}

// replyStage delivers results, feeds the drift monitor from the unit's
// pinned estimator snapshot, and recycles the unit. It is a single
// goroutine so monitor observation never runs concurrently with itself
// on the coalescing path, matching the serial batcher.
func (s *Server) replyStage(wg *sync.WaitGroup, in <-chan *pipeUnit) {
	defer wg.Done()
	for u := range in {
		for i, r := range u.group {
			var rerr error
			if len(u.errs) > 0 {
				rerr = u.errs[i]
			}
			if rerr != nil {
				s.errors.Add(1)
			} else {
				s.observe(u.est, r.env, r.sql, u.ms[i])
			}
			r.reply <- result{ms: u.ms[i], err: rerr}
		}
		s.histFlush.RecordSince(u.start)
		putUnit(u)
	}
}
