package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestClientTenantHeader: a Client with Tenant set sends X-QCFE-Tenant
// on every call — data plane and admin alike — and sends nothing when
// unset.
func TestClientTenantHeader(t *testing.T) {
	var mu sync.Mutex
	headers := make(map[string]string) // path → last tenant header
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers[r.URL.Path] = r.Header.Get(TenantHeader)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/estimate":
			w.Write([]byte(`{"ms":1}` + "\n"))
		case "/estimate_batch":
			w.Write([]byte(`{"ms":[1]}` + "\n"))
		default:
			w.Write([]byte(`{"status":"ok"}` + "\n"))
		}
	}))
	defer ts.Close()

	ctx := context.Background()
	c := &Client{BaseURL: ts.URL, Tenant: "acme"}
	if _, err := c.Estimate(ctx, 0, "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EstimateBatch(ctx, 0, []string{"SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SwapCommit(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	for _, path := range []string{"/estimate", "/estimate_batch", "/healthz", "/swap"} {
		if headers[path] != "acme" {
			t.Fatalf("%s: tenant header %q, want acme", path, headers[path])
		}
	}
	mu.Unlock()

	noTenant := &Client{BaseURL: ts.URL}
	if _, err := noTenant.Estimate(ctx, 0, "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if headers["/estimate"] != "" {
		t.Fatalf("tenant-less client sent header %q", headers["/estimate"])
	}
}

// TestClientDeadlines: admin calls honor context deadlines, and the
// Timeout field supplies a fallback deadline only when the caller's
// context has none.
func TestClientDeadlines(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(block) // LIFO: unblock handlers before ts.Close waits on them

	// Caller deadline on an admin call cancels the round trip.
	c := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SwapCommit(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SwapCommit with expired ctx: err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("deadline ignored: call took %v", time.Since(start))
	}

	// No caller deadline: Timeout bounds the call instead.
	c = &Client{BaseURL: ts.URL, Timeout: 30 * time.Millisecond}
	start = time.Now()
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("Healthz against a hung server with Timeout set must fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("Timeout ignored: call took %v", time.Since(start))
	}

	// A caller deadline wins over a longer Timeout.
	c = &Client{BaseURL: ts.URL, Timeout: time.Hour}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	start = time.Now()
	if _, err := c.Healthz(ctx2); err == nil {
		t.Fatal("caller deadline must win over Timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("caller deadline lost to Timeout: call took %v", time.Since(start))
	}
}
