package serve

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	qcfe "repro"
)

// The admin-plane tests: token gating, the two-phase stage/canary/
// commit/rollback protocol, and the generation identity every endpoint
// reports. Servers here are built over Save→Load copies of the shared
// fixture so swaps never disturb the estimator other tests share.

const testToken = "test-admin-token"

// startAdminServer runs a server over its own copy of the fixture with
// the admin surface enabled, returning the server, its HTTP base URL,
// and an authenticated client.
func startAdminServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := New(reloaded(t, testEstimator(t)), Options{
		BatchWindow: time.Millisecond,
		AdminToken:  testToken,
		Advertise:   "replica-under-test",
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.Run(ctx); close(done) }()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		<-done
	})
	return srv, &Client{BaseURL: ts.URL, AdminToken: testToken}
}

// artifactBytes serializes an estimator.
func artifactBytes(t *testing.T, est *qcfe.CostEstimator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdminDisabledWithoutToken: a server with no AdminToken refuses
// the whole admin surface with 403 — even with a token header.
func TestAdminDisabledWithoutToken(t *testing.T) {
	_, ts := startServer(t, Options{BatchWindow: time.Millisecond})
	for _, path := range []string{"/swap", "/generation"} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader("{}"))
		req.Header.Set("X-QCFE-Admin-Token", "anything")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s on token-less server: got %d, want 403", path, resp.StatusCode)
		}
	}
}

// TestAdminRejectsBadToken: wrong or missing token is 401, and the
// typed client surfaces it as a ReplicaError that is a query fault
// (routers must not retry an auth failure around the fleet).
func TestAdminRejectsBadToken(t *testing.T) {
	_, good := startAdminServer(t)
	bad := &Client{BaseURL: good.BaseURL, AdminToken: "wrong"}
	_, err := bad.Generation(context.Background())
	re, ok := err.(*ReplicaError)
	if !ok {
		t.Fatalf("bad token: got %v, want *ReplicaError", err)
	}
	if re.Status != http.StatusUnauthorized || !re.QueryFault() {
		t.Fatalf("bad token: got status %d (queryFault=%v), want 401 query fault", re.Status, re.QueryFault())
	}
	if _, err := good.Generation(context.Background()); err != nil {
		t.Fatalf("good token rejected: %v", err)
	}
}

// TestHealthzReportsGeneration: /healthz carries the serving artifact's
// generation (the same FNV-64a hash that stamps cache entries) and the
// advertised replica identity.
func TestHealthzReportsGeneration(t *testing.T) {
	srv, client := startAdminServer(t)
	h, err := client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := GenerationString(srv.Estimator().Generation())
	if h.Generation != want {
		t.Fatalf("healthz generation %q, want %q", h.Generation, want)
	}
	if h.Replica != "replica-under-test" {
		t.Fatalf("healthz replica %q, want advertised identity", h.Replica)
	}
}

// TestSwapStageCanaryCommit walks the happy path: stage an adapted
// artifact with canary probes (serving untouched), verify the canary
// predictions equal the adapted model's batched output bit for bit,
// then commit and watch the serving generation, /stats swap counter,
// and live answers all move together.
func TestSwapStageCanaryCommit(t *testing.T) {
	srv, client := startAdminServer(t)
	ctx := context.Background()
	oldGen := GenerationString(srv.Estimator().Generation())

	next := adaptedCopy(t, 25)
	nextGen := GenerationString(next.Generation())
	if nextGen == oldGen {
		t.Fatal("test needs distinguishable generations")
	}
	probes := []string{testSQL(0), testSQL(1), testSQL(2)}
	env := next.Environments()[0]
	want, err := next.EstimateSQLBatchCtx(ctx, env, probes)
	if err != nil {
		t.Fatal(err)
	}

	stage, err := client.SwapStage(ctx, artifactBytes(t, next), "", env.ID, probes)
	if err != nil {
		t.Fatal(err)
	}
	if stage.Staged != nextGen {
		t.Fatalf("staged generation %q, want %q", stage.Staged, nextGen)
	}
	if stage.Generation != oldGen {
		t.Fatalf("staging moved the serving generation to %q", stage.Generation)
	}
	if len(stage.CanaryMs) != len(probes) {
		t.Fatalf("canary returned %d predictions for %d probes", len(stage.CanaryMs), len(probes))
	}
	for i := range probes {
		if math.Float64bits(stage.CanaryMs[i]) != math.Float64bits(want[i]) {
			t.Fatalf("canary probe %d: staged %v, adapted model %v", i, stage.CanaryMs[i], want[i])
		}
	}

	// /generation sees both sides of the two-phase state.
	gen, err := client.Generation(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Generation != oldGen || gen.Staged != nextGen {
		t.Fatalf("mid-stage /generation = %+v, want serving %q staged %q", gen, oldGen, nextGen)
	}

	commit, err := client.SwapCommit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !commit.Swapped || commit.Generation != nextGen {
		t.Fatalf("commit reply %+v, want swapped to %q", commit, nextGen)
	}
	if got := srv.Stats().Swaps; got != 1 {
		t.Fatalf("Stats.Swaps = %d after one commit, want 1", got)
	}
	// Live traffic now prices on the new model, bit for bit.
	served, err := client.Estimate(ctx, env.ID, probes[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(served) != math.Float64bits(want[0]) {
		t.Fatalf("post-commit estimate %v, want adapted model's %v", served, want[0])
	}
}

// TestSwapRollback: rollback reinstalls the estimator the last commit
// replaced — and alternates with commit indefinitely (it is its own
// inverse). A rollback with nothing to roll back is a client error.
func TestSwapRollback(t *testing.T) {
	srv, client := startAdminServer(t)
	ctx := context.Background()
	oldGen := GenerationString(srv.Estimator().Generation())

	if _, err := client.SwapRollback(ctx); err == nil {
		t.Fatal("rollback before any commit should fail")
	}

	next := adaptedCopy(t, 25)
	if _, err := client.SwapStage(ctx, artifactBytes(t, next), "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := client.SwapCommit(ctx); err != nil {
		t.Fatal(err)
	}
	rb, err := client.SwapRollback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Generation != oldGen {
		t.Fatalf("rollback landed on %q, want original %q", rb.Generation, oldGen)
	}
	// Roll forward again: the commit's replacement is now the rollback
	// target, so a second rollback returns to the adapted model.
	rb2, err := client.SwapRollback(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rb2.Generation != GenerationString(next.Generation()) {
		t.Fatalf("second rollback landed on %q, want adapted %q", rb2.Generation, GenerationString(next.Generation()))
	}
	if got := srv.Stats().Swaps; got != 3 {
		t.Fatalf("Stats.Swaps = %d after commit+rollback+rollback, want 3", got)
	}
}

// TestSwapAbort: an aborted stage leaves nothing to commit and the
// serving generation untouched.
func TestSwapAbort(t *testing.T) {
	srv, client := startAdminServer(t)
	ctx := context.Background()
	oldGen := GenerationString(srv.Estimator().Generation())

	if _, err := client.SwapStage(ctx, artifactBytes(t, adaptedCopy(t, 25)), "", 0, nil); err != nil {
		t.Fatal(err)
	}
	ab, err := client.SwapAbort(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Generation != oldGen || ab.Staged != "" {
		t.Fatalf("abort reply %+v, want serving %q and nothing staged", ab, oldGen)
	}
	if _, err := client.SwapCommit(ctx); err == nil {
		t.Fatal("commit after abort should fail")
	}
	if got := srv.Stats().Swaps; got != 0 {
		t.Fatalf("Stats.Swaps = %d after abort, want 0", got)
	}
}

// TestSwapByPath: fleets with shared storage can swap by server-local
// path; an artifact with Stage false is a one-shot stage+commit.
func TestSwapByPath(t *testing.T) {
	srv, _ := startAdminServer(t)
	next := adaptedCopy(t, 25)
	path := filepath.Join(t.TempDir(), "next.qcfe")
	if err := os.WriteFile(path, artifactBytes(t, next), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Swap(SwapRequest{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Swapped || resp.Generation != GenerationString(next.Generation()) {
		t.Fatalf("path swap reply %+v, want one-shot install of %q", resp, GenerationString(next.Generation()))
	}
}
