package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// Client is a typed HTTP client for one qcfe-serve replica — the
// counterpart of Handler. The router (internal/router) holds one per
// replica; tests and tools use it directly. A zero HTTP field uses
// http.DefaultClient; callers that need timeouts (the router always
// does) supply their own.
type Client struct {
	// BaseURL is the replica's root URL, e.g. "http://10.0.0.5:8080".
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// AdminToken is sent as X-QCFE-Admin-Token on admin calls (Swap*,
	// Generation). Leave empty for data-plane-only use.
	AdminToken string
	// Tenant, when non-empty, is sent as the X-QCFE-Tenant header on
	// every call, naming this client's tenant against a multi-tenant
	// registry (internal/tenant). Single-tenant servers ignore it. The
	// router sets it per request to forward the caller's tenant.
	Tenant string
	// TraceID, when non-empty, is sent as the X-QCFE-Trace-ID header on
	// every call, so a scattered sub-batch carries its originating
	// request's trace through the fleet. The router sets it per request
	// from the inbound trace; retries reuse the same ID by construction
	// (the chaos tests pin that).
	TraceID string
	// Timeout bounds each call that arrives with a context carrying no
	// deadline: the call runs under a derived context with this
	// deadline. A context that already has a deadline is used as-is —
	// caller deadlines always win — so admin calls (Swap*, Healthz)
	// honor context deadlines instead of relying on the bare HTTP
	// client timeout. Zero applies no per-call deadline.
	Timeout time.Duration
}

// ReplicaError is a non-2xx reply from a replica, carrying the HTTP
// status and the server's error text. Transport-level failures (refused
// connections, timeouts) surface as ordinary errors, not ReplicaErrors.
type ReplicaError struct {
	Status int
	Msg    string
}

func (e *ReplicaError) Error() string {
	return fmt.Sprintf("replica returned %d: %s", e.Status, e.Msg)
}

// QueryFault reports whether the error is the query's fault (a 4xx:
// bad SQL, unknown environment) rather than the replica's. The router
// retries replica faults on the next ring node but propagates query
// faults — retrying a 400 elsewhere would just repeat it, and treating
// it as replica death would let one malformed query blacklist the
// fleet.
func (e *ReplicaError) QueryFault() bool {
	return e.Status >= 400 && e.Status < 500
}

// do posts (or gets) one JSON round trip. The request always runs
// under ctx — a caller deadline cancels the round trip mid-body, not
// just mid-dial — with c.Timeout as the fallback deadline when the
// caller supplied none.
func (c *Client) do(ctx context.Context, method, path string, in, out any, admin bool) error {
	if _, ok := ctx.Deadline(); !ok && c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if admin {
		req.Header.Set("X-QCFE-Admin-Token", c.AdminToken)
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	if c.TraceID != "" {
		req.Header.Set(obs.TraceHeader, c.TraceID)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eresp errorResponse
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &eresp) == nil && eresp.Error != "" {
			msg = eresp.Error
		}
		return &ReplicaError{Status: resp.StatusCode, Msg: msg}
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("decode %s reply: %w", path, err)
		}
	}
	return nil
}

// Estimate prices one query on the replica.
func (c *Client) Estimate(ctx context.Context, env int, sql string) (float64, error) {
	var out EstimateResponse
	if err := c.do(ctx, http.MethodPost, "/estimate", EstimateRequest{Env: env, SQL: sql}, &out, false); err != nil {
		return 0, err
	}
	return out.Ms, nil
}

// EstimateBatch prices a batch on the replica, results in input order.
func (c *Client) EstimateBatch(ctx context.Context, env int, sqls []string) ([]float64, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/estimate_batch", BatchRequest{Env: env, SQLs: sqls}, &out, false); err != nil {
		return nil, err
	}
	if len(out.Ms) != len(sqls) {
		return nil, fmt.Errorf("replica returned %d results for %d queries", len(out.Ms), len(sqls))
	}
	return out.Ms, nil
}

// Healthz fetches the replica's health and identity.
func (c *Client) Healthz(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out, false)
	return out, err
}

// Stats fetches the replica's serving counters (with cache and drift
// blocks when present).
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out, false)
	return out, err
}

// Generation fetches the replica's serving and staged generations
// (admin).
func (c *Client) Generation(ctx context.Context) (GenerationResponse, error) {
	var out GenerationResponse
	err := c.do(ctx, http.MethodGet, "/generation", nil, &out, true)
	return out, err
}

// SwapStage stages an artifact on the replica — shipped in-band when
// artifact is non-nil, referenced by server-local path otherwise — and
// prices the canary probe set on the staged estimator (admin).
func (c *Client) SwapStage(ctx context.Context, artifact []byte, path string, canaryEnv int, canarySQLs []string) (SwapResponse, error) {
	req := SwapRequest{Path: path, Stage: true, CanaryEnv: canaryEnv, CanarySQLs: canarySQLs}
	if artifact != nil {
		req.ArtifactB64 = base64.StdEncoding.EncodeToString(artifact)
		req.Path = ""
	}
	var out SwapResponse
	err := c.do(ctx, http.MethodPost, "/swap", req, &out, true)
	return out, err
}

// SwapCommit installs the replica's staged estimator (admin).
func (c *Client) SwapCommit(ctx context.Context) (SwapResponse, error) {
	var out SwapResponse
	err := c.do(ctx, http.MethodPost, "/swap", SwapRequest{Commit: true}, &out, true)
	return out, err
}

// SwapRollback reinstalls the estimator the replica's last commit
// replaced (admin).
func (c *Client) SwapRollback(ctx context.Context) (SwapResponse, error) {
	var out SwapResponse
	err := c.do(ctx, http.MethodPost, "/swap", SwapRequest{Rollback: true}, &out, true)
	return out, err
}

// SwapAbort discards the replica's staged estimator (admin).
func (c *Client) SwapAbort(ctx context.Context) (SwapResponse, error) {
	var out SwapResponse
	err := c.do(ctx, http.MethodPost, "/swap", SwapRequest{Abort: true}, &out, true)
	return out, err
}
