// Package serve is the context-aware serving layer over a trained cost
// estimator: a long-lived Server object constructed once from a loaded
// artifact and queried concurrently, in the mold of a query engine built
// once from options with context.Context plumbed through every
// execution path.
//
// Its core mechanism is micro-batch coalescing: concurrent single-query
// Estimate calls enqueue into one channel, a batcher goroutine drains
// them — waiting at most Options.BatchWindow to fill a batch of up to
// Options.MaxBatch — groups them by environment, and prices each group
// through the estimator's batched inference path. Batched inference is
// bit-identical to per-query inference, so coalescing changes latency
// shape, never results. This is what turns the estimator stack's batched
// kernels into serving throughput: N concurrent clients cost ~1 batched
// inference pass instead of N scalar ones.
package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	qcfe "repro"
)

// Estimator is the slice of the qcfe API the server needs.
// *qcfe.CostEstimator satisfies it; tests substitute fakes to probe
// coalescing behavior.
type Estimator interface {
	ModelName() string
	BenchmarkName() string
	Environments() []*qcfe.Environment
	EstimateSQL(env *qcfe.Environment, sql string) (float64, error)
	EstimateSQLBatchCtx(ctx context.Context, env *qcfe.Environment, sqls []string) ([]float64, error)
	// CachedEstimate returns the memoized prediction for an exact
	// (environment, SQL text) pair when an attached query cache can
	// answer without planning or inference; ok=false otherwise (no
	// cache, cold key, or stale generation). Estimate probes it before
	// enqueueing, so warm hits never pay the BatchWindow.
	CachedEstimate(env *qcfe.Environment, sql string) (float64, bool)
	// CacheStats snapshots the attached query cache's counters; ok is
	// false when no cache is attached.
	CacheStats() (qcfe.CacheStats, bool)
}

// Options configures the serving behavior.
type Options struct {
	// MaxBatch is the largest coalesced micro-batch (default 64). A flush
	// happens as soon as this many requests are pending.
	MaxBatch int
	// BatchWindow is the longest a request waits for companions before
	// its batch is flushed anyway (default 2ms). Zero keeps the default;
	// negative flushes immediately (batching only under instantaneous
	// concurrency).
	BatchWindow time.Duration
	// QueueDepth bounds the pending-request queue (default 1024).
	// Enqueueing beyond it blocks the client — backpressure, not
	// unbounded memory.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	return o
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Requests counts single-query estimate requests (the coalescing
	// path).
	Requests int64 `json:"requests"`
	// BatchRequests counts queries that arrived through explicit batch
	// requests (already batched by the client; not coalesced again).
	BatchRequests int64 `json:"batch_requests"`
	// Flushes counts coalesced micro-batches priced.
	Flushes int64 `json:"flushes"`
	// Coalesced counts single-query requests that shared their
	// micro-batch with at least one other request.
	Coalesced int64 `json:"coalesced"`
	// CacheHits counts single-query requests served straight from the
	// query cache's prediction tier — they skip the coalescing queue
	// (and its BatchWindow) entirely.
	CacheHits int64 `json:"cache_hits"`
	// Errors counts requests that returned an error.
	Errors int64 `json:"errors"`
	// MeanBatch is (Requests-CacheHits)/Flushes — the average micro-batch
	// size the coalescer achieved over the requests that actually queued.
	MeanBatch float64 `json:"mean_batch"`
}

// result is one request's outcome.
type result struct {
	ms  float64
	err error
}

// request is one enqueued single-query estimate.
type request struct {
	env   *qcfe.Environment
	sql   string
	reply chan result
}

// Server is a concurrency-safe serving front end over one estimator.
// Construct with New, start the batcher with Run, and serve traffic
// through Estimate/EstimateBatch or the HTTP handler.
type Server struct {
	est   Estimator
	opts  Options
	queue chan *request
	start time.Time

	requests      atomic.Int64
	batchRequests atomic.Int64
	flushes       atomic.Int64
	coalesced     atomic.Int64
	cacheHits     atomic.Int64
	errors        atomic.Int64
}

// New builds a server over a loaded estimator.
func New(est Estimator, opts Options) *Server {
	o := opts.withDefaults()
	return &Server{
		est:   est,
		opts:  o,
		queue: make(chan *request, o.QueueDepth),
		start: time.Now(),
	}
}

// Run drains the coalescing queue until ctx is cancelled, then fails any
// still-pending requests with ctx's error and returns it. It is the
// server's only background goroutine; call it exactly once, typically
// via `go srv.Run(ctx)`.
func (s *Server) Run(ctx context.Context) error {
	for {
		// Shutdown takes priority over pending work: once ctx is
		// cancelled, queued requests fail fast instead of racing the
		// Done case in the select below.
		if err := ctx.Err(); err != nil {
			s.drainFailed(err)
			return err
		}
		select {
		case <-ctx.Done():
			s.drainFailed(ctx.Err())
			return ctx.Err()
		case first := <-s.queue:
			s.flush(ctx, s.gather(ctx, first))
		}
	}
}

// gather collects one micro-batch: the first request plus whatever else
// arrives within BatchWindow, capped at MaxBatch.
func (s *Server) gather(ctx context.Context, first *request) []*request {
	batch := []*request{first}
	if s.opts.BatchWindow < 0 {
		// Immediate mode: take only what is already pending.
		for len(batch) < s.opts.MaxBatch {
			select {
			case r := <-s.queue:
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.opts.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.opts.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-ctx.Done():
			return batch
		}
	}
	return batch
}

// flush prices one micro-batch: requests are grouped by environment
// (preserving arrival order within each group) and each group runs
// through the estimator's batched path. A group whose batch call fails —
// one malformed query fails a whole library batch — falls back to
// per-request estimation so errors stay isolated to the requests that
// caused them.
func (s *Server) flush(ctx context.Context, batch []*request) {
	s.flushes.Add(1)
	if len(batch) > 1 {
		s.coalesced.Add(int64(len(batch)))
	}
	// Group by environment ID, preserving order: order indexes the
	// batch's requests per group.
	groups := make(map[int][]*request)
	var order []int
	for _, r := range batch {
		id := r.env.ID
		if _, ok := groups[id]; !ok {
			order = append(order, id)
		}
		groups[id] = append(groups[id], r)
	}
	for _, id := range order {
		group := groups[id]
		sqls := make([]string, len(group))
		for i, r := range group {
			sqls[i] = r.sql
		}
		ms, err := s.est.EstimateSQLBatchCtx(ctx, group[0].env, sqls)
		if err == nil {
			for i, r := range group {
				r.reply <- result{ms: ms[i]}
			}
			continue
		}
		// Cancellation is shutdown, not a query failure: fail the group
		// fast instead of re-pricing it serially without a context.
		if cerr := ctx.Err(); cerr != nil {
			for _, r := range group {
				s.errors.Add(1)
				r.reply <- result{err: fmt.Errorf("serve: shutting down: %w", cerr)}
			}
			continue
		}
		// Isolate the failure: price each request alone.
		for _, r := range group {
			v, rerr := s.est.EstimateSQL(r.env, r.sql)
			if rerr != nil {
				s.errors.Add(1)
			}
			r.reply <- result{ms: v, err: rerr}
		}
	}
}

// drainFailed fails every request still queued at shutdown.
func (s *Server) drainFailed(err error) {
	for {
		select {
		case r := <-s.queue:
			s.errors.Add(1)
			r.reply <- result{err: fmt.Errorf("serve: shutting down: %w", err)}
		default:
			return
		}
	}
}

// EnvByID resolves an environment from the estimator's trained set.
func (s *Server) EnvByID(id int) (*qcfe.Environment, error) {
	for _, env := range s.est.Environments() {
		if env.ID == id {
			return env, nil
		}
	}
	return nil, fmt.Errorf("serve: unknown environment %d (artifact has %d environments)", id, len(s.est.Environments()))
}

// Estimate prices one query under the environment with the given ID,
// coalescing with concurrent callers into a micro-batch. It blocks until
// the batcher replies or ctx is cancelled; predictions are bit-identical
// to the library's EstimateSQL.
func (s *Server) Estimate(ctx context.Context, envID int, sql string) (float64, error) {
	env, err := s.EnvByID(envID)
	if err != nil {
		s.errors.Add(1)
		return 0, err
	}
	s.requests.Add(1)
	// A warm prediction-tier hit is deterministic and already known:
	// answer straight away instead of paying the BatchWindow wait in
	// gather. Misses (and cacheless estimators) coalesce as before.
	if ms, ok := s.est.CachedEstimate(env, sql); ok {
		s.cacheHits.Add(1)
		return ms, nil
	}
	r := &request{env: env, sql: sql, reply: make(chan result, 1)}
	select {
	case s.queue <- r:
	case <-ctx.Done():
		s.errors.Add(1)
		return 0, ctx.Err()
	}
	select {
	case res := <-r.reply:
		return res.ms, res.err
	case <-ctx.Done():
		// The batcher will still price the request and drop the reply
		// into the buffered channel; the caller just stopped waiting.
		s.errors.Add(1)
		return 0, ctx.Err()
	}
}

// EstimateBatch prices a client-assembled batch directly through the
// estimator's batched path (no re-coalescing).
func (s *Server) EstimateBatch(ctx context.Context, envID int, sqls []string) ([]float64, error) {
	env, err := s.EnvByID(envID)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	s.batchRequests.Add(int64(len(sqls)))
	ms, err := s.est.EstimateSQLBatchCtx(ctx, env, sqls)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	return ms, nil
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:      s.requests.Load(),
		BatchRequests: s.batchRequests.Load(),
		Flushes:       s.flushes.Load(),
		Coalesced:     s.coalesced.Load(),
		CacheHits:     s.cacheHits.Load(),
		Errors:        s.errors.Load(),
	}
	if st.Flushes > 0 {
		st.MeanBatch = float64(st.Requests-st.CacheHits) / float64(st.Flushes)
	}
	return st
}

// Uptime reports how long the server object has existed.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }
