// Package serve is the context-aware serving layer over a trained cost
// estimator: a long-lived Server object constructed once from a loaded
// artifact and queried concurrently, in the mold of a query engine built
// once from options with context.Context plumbed through every
// execution path.
//
// Its core mechanism is micro-batch coalescing: concurrent single-query
// Estimate calls enqueue into one channel, a batcher goroutine drains
// them — waiting at most Options.BatchWindow to fill a batch of up to
// Options.MaxBatch — groups them by environment, and prices each group
// through the estimator's batched inference path. Batched inference is
// bit-identical to per-query inference, so coalescing changes latency
// shape, never results. This is what turns the estimator stack's batched
// kernels into serving throughput: N concurrent clients cost ~1 batched
// inference pass instead of N scalar ones.
//
// The estimator behind the server is hot-swappable: SwapEstimator is a
// single atomic pointer store, every request path snapshots the
// estimator exactly once at its own start, and the query cache's
// generation stamping (internal/qcache) makes the swap cache-safe —
// together they let internal/online install a retrained model under
// live traffic with no lock, no drain, and no torn or stale answers.
package serve

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	qcfe "repro"
	"repro/internal/obs"
)

// Estimator is the slice of the qcfe API the server needs.
// *qcfe.CostEstimator satisfies it; tests substitute fakes to probe
// coalescing behavior.
type Estimator interface {
	ModelName() string
	BenchmarkName() string
	Environments() []*qcfe.Environment
	EstimateSQL(env *qcfe.Environment, sql string) (float64, error)
	EstimateSQLBatchCtx(ctx context.Context, env *qcfe.Environment, sqls []string) ([]float64, error)
	// CachedEstimate returns the memoized prediction for an exact
	// (environment, SQL text) pair when an attached query cache can
	// answer without planning or inference; ok=false otherwise (no
	// cache, cold key, or stale generation). Estimate probes it before
	// enqueueing, so warm hits never pay the BatchWindow.
	CachedEstimate(env *qcfe.Environment, sql string) (float64, bool)
	// CacheStats snapshots the attached query cache's counters; ok is
	// false when no cache is attached.
	CacheStats() (qcfe.CacheStats, bool)
	// Generation identifies the artifact the estimator serves: equal
	// generations mean byte-identical artifacts (and so bit-identical
	// predictions). /healthz advertises it and the fleet rollout
	// protocol (internal/router) gates on it.
	Generation() uint64
}

// Monitor observes served traffic for online adaptation
// (internal/online implements it). The server calls Observe after
// every successfully served estimate — cache hits included — and
// ObserveLabeled when a client supplies ground truth through the
// /shadow endpoint; its return reports whether the label was actually
// accepted (a load-shedding monitor may drop it), and /shadow echoes
// that as "recorded". producer is the estimator snapshot that computed
// the prediction (the server always observes from the site that holds
// the snapshot), so a monitor scoring prediction quality can tell a
// still-current model's estimate from one produced by an already
// swapped-out model. Both methods must be cheap and non-blocking: they
// run on the request path. DriftStats is marshaled into the /stats
// "drift" block.
type Monitor interface {
	Observe(env *qcfe.Environment, sql string, predictedMs float64, producer any)
	ObserveLabeled(env *qcfe.Environment, sql string, predictedMs, actualMs float64, producer any) bool
	DriftStats() any
}

// Options configures the serving behavior.
type Options struct {
	// MaxBatch is the largest coalesced micro-batch (default 64). A flush
	// happens as soon as this many requests are pending.
	MaxBatch int
	// BatchWindow is the longest a request waits for companions before
	// its batch is flushed anyway (default 2ms). Zero keeps the default;
	// negative flushes immediately (batching only under instantaneous
	// concurrency).
	BatchWindow time.Duration
	// QueueDepth bounds the pending-request queue (default 1024).
	// Enqueueing beyond it blocks the client — backpressure, not
	// unbounded memory.
	QueueDepth int
	// AdminToken, when non-empty, enables the remote-administration
	// endpoints (/swap, /generation) and is the shared secret every
	// admin request must present in the X-QCFE-Admin-Token header.
	// Empty keeps the admin surface disabled (requests get 403) — the
	// safe default for a replica not managed by a router.
	AdminToken string
	// Advertise is the identity this replica reports in /healthz
	// (typically its externally reachable address). Purely
	// informational: the router logs and stats use it to name replicas.
	Advertise string
	// SlowQueryThreshold, when positive, makes the server log every HTTP
	// request slower than this as one structured JSON line on stderr
	// (trace ID, per-stage spans, total duration). Zero disables the
	// slow-query log; /trace/recent retains recent traces either way.
	SlowQueryThreshold time.Duration
	// TraceRing bounds the /trace/recent ring buffer (default 256).
	TraceRing int
	// PipelineDepth, when positive, runs the miss path as a pipeline of
	// bounded concurrent stages (gather → featurize → predict → reply)
	// instead of the serial gather-then-flush loop, and sets the
	// capacity of each exchange channel between stages. The batcher then
	// returns to gathering the instant a batch is handed off, so the
	// batch window overlaps with pricing instead of alternating with it.
	// Zero (the default) keeps the serial coalescer. Results are
	// bit-identical either way; only latency shape changes.
	PipelineDepth int
	// FeaturizeWorkers bounds the concurrent parse/plan/featurize stage
	// workers when the pipeline is enabled (default 2). Each worker
	// prices one micro-batch's front half at a time; the library
	// additionally fans planning out across cores inside one call.
	FeaturizeWorkers int
	// PredictWorkers bounds the concurrent batched-inference stage
	// workers when the pipeline is enabled (default 1: the NN kernel
	// runs batches back to back, which is already its throughput-optimal
	// shape). Values >1 are safe — inference is stateless per call.
	PredictWorkers int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.PipelineDepth < 0 {
		o.PipelineDepth = 0
	}
	if o.PipelineDepth > 0 {
		if o.FeaturizeWorkers <= 0 {
			o.FeaturizeWorkers = 2
		}
		if o.PredictWorkers <= 0 {
			o.PredictWorkers = 1
		}
	}
	return o
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	// Requests counts single-query estimate requests (the coalescing
	// path).
	Requests int64 `json:"requests"`
	// BatchRequests counts queries that arrived through explicit batch
	// requests (already batched by the client; not coalesced again).
	BatchRequests int64 `json:"batch_requests"`
	// Flushes counts coalesced micro-batches priced.
	Flushes int64 `json:"flushes"`
	// Coalesced counts single-query requests that shared their
	// micro-batch with at least one other request.
	Coalesced int64 `json:"coalesced"`
	// CacheHits counts single-query requests served straight from the
	// query cache's prediction tier — they skip the coalescing queue
	// (and its BatchWindow) entirely.
	CacheHits int64 `json:"cache_hits"`
	// Swaps counts estimator hot swaps installed via SwapEstimator.
	Swaps int64 `json:"swaps"`
	// Errors counts requests that returned an error.
	Errors int64 `json:"errors"`
	// MeanBatch is (Requests-CacheHits)/Flushes — the average micro-batch
	// size the coalescer achieved over the requests that actually queued.
	MeanBatch float64 `json:"mean_batch"`
}

// result is one request's outcome.
type result struct {
	ms  float64
	err error
}

// request is one enqueued single-query estimate. Requests are pooled:
// Estimate takes one from reqPool, the batcher replies through the
// buffered channel, and the caller returns it after reading the reply.
// A request abandoned mid-flight (caller gave up on ctx after enqueue)
// is NOT returned to the pool — the batcher still owns it and will
// drop a reply into the buffered channel, so reuse would deliver that
// stale result to a future caller. Abandoned requests leak to the GC,
// which is exactly the pre-pool behavior.
type request struct {
	env   *qcfe.Environment
	sql   string
	reply chan result
	// enq stamps when the request entered the queue; the batcher records
	// the queue-wait histogram (and a queue_wait span on traced requests)
	// from it. tr is the request's trace, nil on untraced paths — every
	// obs.Trace method is a no-op on nil, so the pooled field costs
	// nothing when tracing is off.
	enq time.Time
	tr  *obs.Trace
}

var reqPool = sync.Pool{
	New: func() any { return &request{reply: make(chan result, 1)} },
}

// putRequest clears a request's references and returns it to the pool.
// Only the party that has consumed (or provably prevented) the reply
// may call it.
func putRequest(r *request) {
	r.env = nil
	r.sql = ""
	r.tr = nil
	reqPool.Put(r)
}

// estBox wraps the current estimator behind one pointer so a hot swap
// is a single atomic store (atomic.Pointer cannot hold an interface
// directly).
type estBox struct{ est Estimator }

// Server is a concurrency-safe serving front end over one estimator.
// Construct with New, start the batcher with Run, and serve traffic
// through Estimate/EstimateBatch or the HTTP handler. The estimator
// can be replaced at any time with SwapEstimator; every request works
// against the snapshot it loaded at its own start, so a swap is
// invisible to in-flight work.
type Server struct {
	cur     atomic.Pointer[estBox]
	opts    Options
	queue   chan *request
	start   time.Time
	monitor Monitor // set during setup, read-only while serving

	// Admin-plane state for the two-phase remote swap (see admin.go).
	// adminMu serializes stage/commit/rollback/abort; staged is an
	// artifact loaded but not yet serving; prev is the estimator the
	// last commit replaced, retained so a canary-failed rollout can
	// roll this replica back without re-uploading the old artifact.
	adminMu sync.Mutex
	staged  Estimator
	prev    Estimator

	requests      atomic.Int64
	batchRequests atomic.Int64
	flushes       atomic.Int64
	coalesced     atomic.Int64
	cacheHits     atomic.Int64
	swaps         atomic.Int64
	errors        atomic.Int64

	// Latency histograms (internal/obs): pre-allocated once, recorded
	// into with two atomic adds per observation — cheap enough to stay on
	// the zero-alloc warm path. The three cache-tier histograms are owned
	// here and attached to the estimator's query cache (when it has one)
	// so they survive hot swaps: SwapEstimator re-attaches the same
	// registers to the incoming estimator's cache.
	histWarm      *obs.Histogram // Estimate/EstimateCached warm prediction-tier hits
	histQueueWait *obs.Histogram // enqueue → batcher pickup (coalescing wait)
	histFlush     *obs.Histogram // whole coalesced micro-batch flushes
	histStageFeat *obs.Histogram // pipelined featurize-stage wall time per env group
	histStagePred *obs.Histogram // pipelined predict-stage wall time per env group
	histCacheTpl  *obs.Histogram // qcache template-tier lookups
	histCacheFeat *obs.Histogram // qcache feature-tier lookups
	histCachePred *obs.Histogram // qcache prediction-tier lookups

	// tracer owns this server's /trace/recent ring and slow-query log.
	tracer *obs.Tracer
}

// New builds a server over a loaded estimator.
func New(est Estimator, opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:          o,
		queue:         make(chan *request, o.QueueDepth),
		start:         time.Now(),
		histWarm:      obs.NewHistogram(),
		histQueueWait: obs.NewHistogram(),
		histFlush:     obs.NewHistogram(),
		histStageFeat: obs.NewHistogram(),
		histStagePred: obs.NewHistogram(),
		histCacheTpl:  obs.NewHistogram(),
		histCacheFeat: obs.NewHistogram(),
		histCachePred: obs.NewHistogram(),
		tracer:        obs.NewTracer(o.TraceRing, o.SlowQueryThreshold, os.Stderr),
	}
	s.cur.Store(&estBox{est: est})
	s.attachCacheHists(est)
	return s
}

// attachCacheHists points the estimator's query-cache tiers at this
// server's lookup histograms. The estimator interface stays narrow —
// only estimators that actually expose a query cache (the concrete
// *qcfe.CostEstimator does) get tier timing; fakes without one simply
// record nothing.
func (s *Server) attachCacheHists(est Estimator) {
	if ce, ok := est.(interface{ Cache() *qcfe.QueryCache }); ok {
		if c := ce.Cache(); c != nil {
			c.SetLookupHistograms(s.histCacheTpl, s.histCacheFeat, s.histCachePred)
		}
	}
}

// Tracer exposes the server's trace sink so the HTTP layer (and the
// multi-tenant registry embedding per-tenant servers) can finish traces
// and serve /trace/recent from it.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Estimator returns the currently installed estimator. Request paths
// load it exactly once and use that snapshot throughout, so every
// reply is computed wholly by one model — the no-torn-reads half of
// the hot-swap contract.
func (s *Server) Estimator() Estimator { return s.cur.Load().est }

// SwapEstimator atomically installs next as the serving estimator:
// requests that already snapshotted the old estimator finish on it,
// requests arriving after the store see only next. There is no lock
// and no drain — the swap is one pointer store. Callers retraining
// with a query cache attached run qcfe.SwapEstimator(old, next) first,
// which moves the cache to next's generation so the swap is also
// cache-safe (stale entries become invisible in the same instant).
func (s *Server) SwapEstimator(next Estimator) {
	s.cur.Store(&estBox{est: next})
	s.swaps.Add(1)
	// The incoming estimator's cache records into the same histogram
	// registers, so tier latency series are continuous across swaps.
	s.attachCacheHists(next)
}

// SetMonitor attaches a drift monitor. Call during setup, before
// serving traffic — the field is read without synchronization by
// concurrent requests.
func (s *Server) SetMonitor(m Monitor) { s.monitor = m }

// Run drains the coalescing queue until ctx is cancelled, then fails any
// still-pending requests with ctx's error and returns it. It is the
// server's batcher goroutine; call it exactly once, typically via
// `go srv.Run(ctx)`. With Options.PipelineDepth > 0 it instead runs the
// staged pipeline (see pipeline.go): same results, overlapped stages.
func (s *Server) Run(ctx context.Context) error {
	if s.opts.PipelineDepth > 0 {
		return s.runPipelined(ctx)
	}
	co := newCoalescer()
	for {
		// Shutdown takes priority over pending work: once ctx is
		// cancelled, queued requests fail fast instead of racing the
		// Done case in the select below.
		if err := ctx.Err(); err != nil {
			s.drainFailed(err)
			return err
		}
		select {
		case <-ctx.Done():
			s.drainFailed(ctx.Err())
			return ctx.Err()
		case first := <-s.queue:
			batch := s.gather(ctx, co, first)
			s.flush(ctx, co, batch)
			putBatch(batch)
		}
	}
}

// coalescer owns one batcher loop's reusable gather/flush scratch so a
// steady stream of micro-batches allocates nothing per batch: the batch
// window timer is Reset instead of re-made, and the env-grouping map,
// group-order slice, and SQL scratch are cleared and reused. It is
// confined to the goroutine that created it (the serial batcher, or one
// featurize-stage worker in pipelined mode).
type coalescer struct {
	timer  *time.Timer
	groups map[int][]*request
	order  []int
	sqls   []string
}

func newCoalescer() *coalescer {
	return &coalescer{groups: make(map[int][]*request)}
}

// groupBatch splits a gathered batch by environment ID, preserving
// arrival order within each group; co.order lists the group keys in
// first-arrival order. The groups alias coalescer-owned scratch — they
// are valid until the next groupBatch/resetGroups call.
func (co *coalescer) groupBatch(batch []*request) {
	co.order = co.order[:0]
	for _, r := range batch {
		id := r.env.ID
		g, ok := co.groups[id]
		if !ok || len(g) == 0 {
			co.order = append(co.order, id)
		}
		co.groups[id] = append(g, r)
	}
}

// resetGroups empties the grouping scratch, dropping request references
// so pooled requests aren't retained past their reply.
func (co *coalescer) resetGroups() {
	for _, id := range co.order {
		g := co.groups[id]
		for i := range g {
			g[i] = nil
		}
		co.groups[id] = g[:0]
	}
	co.order = co.order[:0]
}

// batchPool recycles the gathered-batch slices; putBatch drops the
// request references before pooling so requests don't outlive their
// reply.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]*request, 0, 64)
		return &b
	},
}

func getBatch() []*request { return (*batchPool.Get().(*[]*request))[:0] }

func putBatch(b []*request) {
	for i := range b {
		b[i] = nil
	}
	b = b[:0]
	batchPool.Put(&b)
}

// gather collects one micro-batch: the first request plus whatever else
// arrives within BatchWindow, capped at MaxBatch. The returned slice
// comes from batchPool; the caller releases it with putBatch once the
// requests have been handed on.
func (s *Server) gather(ctx context.Context, co *coalescer, first *request) []*request {
	batch := append(getBatch(), first)
	if s.opts.BatchWindow < 0 {
		// Immediate mode: take only what is already pending.
		for len(batch) < s.opts.MaxBatch {
			select {
			case r := <-s.queue:
				batch = append(batch, r)
			default:
				return batch
			}
		}
		return batch
	}
	if co.timer == nil {
		co.timer = time.NewTimer(s.opts.BatchWindow)
	} else {
		// The timer is stopped-and-drained before every return below, so
		// its channel is provably empty here and Reset cannot race a
		// stale tick (pre-Go 1.23 timer semantics).
		co.timer.Reset(s.opts.BatchWindow)
	}
	fired := false
	defer func() {
		if !fired && !co.timer.Stop() {
			<-co.timer.C
		}
	}()
	for len(batch) < s.opts.MaxBatch {
		select {
		case r := <-s.queue:
			batch = append(batch, r)
		case <-co.timer.C:
			fired = true
			return batch
		case <-ctx.Done():
			return batch
		}
	}
	return batch
}

// flush prices one micro-batch: requests are grouped by environment
// (preserving arrival order within each group) and each group runs
// through the estimator's batched path. A group whose batch call fails —
// one malformed query fails a whole library batch — falls back to
// per-request estimation so errors stay isolated to the requests that
// caused them.
func (s *Server) flush(ctx context.Context, co *coalescer, batch []*request) {
	// One estimator snapshot per flush: every reply in this micro-batch
	// is computed wholly by one model, even if a hot swap lands mid-way.
	est := s.Estimator()
	s.flushes.Add(1)
	flushStart := time.Now()
	defer s.histFlush.RecordSince(flushStart)
	if len(batch) > 1 {
		s.coalesced.Add(int64(len(batch)))
	}
	// Queue wait ends here for every request in the batch. Spans must be
	// recorded before a request's reply is sent: the HTTP edge finishes
	// the trace the moment the reply arrives.
	for _, r := range batch {
		s.histQueueWait.RecordSince(r.enq)
		r.tr.AddSpan("queue_wait", "", r.enq)
	}
	co.groupBatch(batch)
	defer co.resetGroups()
	for _, id := range co.order {
		group := co.groups[id]
		sqls := co.sqls[:0]
		for _, r := range group {
			sqls = append(sqls, r.sql)
		}
		co.sqls = sqls // keep the grown capacity for the next group/flush
		groupStart := time.Now()
		ms, err := est.EstimateSQLBatchCtx(ctx, group[0].env, sqls)
		if err == nil {
			for i, r := range group {
				s.observe(est, r.env, r.sql, ms[i])
				// The whole group shares one batched inference call; each
				// trace gets it as its predict span (the finer featurize/
				// predict split shows up on traced /estimate_batch calls,
				// which carry their context into the library).
				r.tr.AddSpan("predict", fmt.Sprintf("batch=%d", len(group)), groupStart)
				r.reply <- result{ms: ms[i]}
			}
			continue
		}
		// Cancellation is shutdown, not a query failure: fail the group
		// fast instead of re-pricing it serially without a context.
		if cerr := ctx.Err(); cerr != nil {
			for _, r := range group {
				s.errors.Add(1)
				r.reply <- result{err: fmt.Errorf("serve: shutting down: %w", cerr)}
			}
			continue
		}
		// Isolate the failure: price each request alone.
		for _, r := range group {
			soloStart := time.Now()
			v, rerr := est.EstimateSQL(r.env, r.sql)
			if rerr != nil {
				s.errors.Add(1)
			} else {
				s.observe(est, r.env, r.sql, v)
			}
			r.tr.AddSpan("predict", "solo-fallback", soloStart)
			r.reply <- result{ms: v, err: rerr}
		}
	}
}

// drainFailed fails every request still queued at shutdown.
func (s *Server) drainFailed(err error) {
	for {
		select {
		case r := <-s.queue:
			s.errors.Add(1)
			r.reply <- result{err: fmt.Errorf("serve: shutting down: %w", err)}
		default:
			return
		}
	}
}

// EnvByID resolves an environment from the estimator's trained set.
func (s *Server) EnvByID(id int) (*qcfe.Environment, error) {
	envs := s.Estimator().Environments()
	for _, env := range envs {
		if env.ID == id {
			return env, nil
		}
	}
	return nil, fmt.Errorf("serve: unknown environment %d (artifact has %d environments)", id, len(envs))
}

// Estimate prices one query under the environment with the given ID,
// coalescing with concurrent callers into a micro-batch. It blocks until
// the batcher replies or ctx is cancelled; predictions are bit-identical
// to the library's EstimateSQL.
func (s *Server) Estimate(ctx context.Context, envID int, sql string) (float64, error) {
	t0 := time.Now()
	env, err := s.EnvByID(envID)
	if err != nil {
		s.errors.Add(1)
		return 0, err
	}
	s.requests.Add(1)
	// A warm prediction-tier hit is deterministic and already known:
	// answer straight away instead of paying the BatchWindow wait in
	// gather. Misses (and cacheless estimators) coalesce as before.
	// (Coalesced requests are observed inside flush, which holds the
	// estimator snapshot that actually priced them.)
	// tr is nil on untraced paths (benchmarks, in-process callers) and
	// every use below degrades to a no-op — the warm path stays at zero
	// allocations with histogram recording on.
	tr := obs.TraceFrom(ctx)
	est := s.Estimator()
	if ms, ok := est.CachedEstimate(env, sql); ok {
		s.cacheHits.Add(1)
		s.observe(est, env, sql, ms)
		s.histWarm.RecordSince(t0)
		tr.AddSpan("probe", "warm", t0)
		return ms, nil
	}
	tr.AddSpan("probe", "miss", t0)
	r := reqPool.Get().(*request)
	r.env, r.sql = env, sql
	r.enq, r.tr = time.Now(), tr
	select {
	case s.queue <- r:
	case <-ctx.Done():
		// Never enqueued: nobody else holds r, safe to recycle.
		putRequest(r)
		s.errors.Add(1)
		return 0, ctx.Err()
	}
	select {
	case res := <-r.reply:
		putRequest(r)
		return res.ms, res.err
	case <-ctx.Done():
		// The batcher will still price the request and drop the reply
		// into the buffered channel; the caller just stopped waiting.
		// r stays out of the pool (see the request type comment).
		s.errors.Add(1)
		return 0, ctx.Err()
	}
}

// EstimateCached serves a query only when the attached cache's
// prediction tier already knows it: a warm hit returns the memoized
// prediction — counted and observed exactly like a warm hit through
// Estimate — without touching the coalescing queue; a miss returns
// ok=false having done no planning, inference, or queueing. The
// multi-tenant admission layer (internal/tenant) uses it as the
// ladder's rung-2 path: prediction-tier hits are served at every load
// level, only misses compete for NN capacity.
func (s *Server) EstimateCached(envID int, sql string) (float64, bool, error) {
	t0 := time.Now()
	env, err := s.EnvByID(envID)
	if err != nil {
		s.errors.Add(1)
		return 0, false, err
	}
	est := s.Estimator()
	ms, ok := est.CachedEstimate(env, sql)
	if !ok {
		return 0, false, nil
	}
	s.requests.Add(1)
	s.cacheHits.Add(1)
	s.observe(est, env, sql, ms)
	s.histWarm.RecordSince(t0)
	return ms, true, nil
}

// observe feeds a served estimate to the drift monitor, when one is
// attached, naming the estimator snapshot that produced it.
func (s *Server) observe(est Estimator, env *qcfe.Environment, sql string, ms float64) {
	if s.monitor != nil {
		s.monitor.Observe(env, sql, ms, est)
	}
}

// EstimateBatch prices a client-assembled batch directly through the
// estimator's batched path (no re-coalescing).
func (s *Server) EstimateBatch(ctx context.Context, envID int, sqls []string) ([]float64, error) {
	env, err := s.EnvByID(envID)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	s.batchRequests.Add(int64(len(sqls)))
	est := s.Estimator()
	ms, err := est.EstimateSQLBatchCtx(ctx, env, sqls)
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	for i := range sqls {
		s.observe(est, env, sqls[i], ms[i])
	}
	return ms, nil
}

// Stats snapshots the server counters. The counters are independent
// atomics, so a concurrent snapshot cannot be a single consistent cut —
// but it CAN preserve the invariants readers rely on. Every increment
// path bumps requests before cacheHits, so loading cacheHits (and
// flushes/coalesced, which trail requests the same way) BEFORE requests
// guarantees Requests ≥ CacheHits and a non-negative MeanBatch even
// under full load. /stats, /metrics, and the tenant registry all read
// through this one method, so every surface reports the same shape.
func (s *Server) Stats() Stats {
	st := Stats{
		CacheHits:     s.cacheHits.Load(),
		Flushes:       s.flushes.Load(),
		Coalesced:     s.coalesced.Load(),
		BatchRequests: s.batchRequests.Load(),
		Swaps:         s.swaps.Load(),
		Errors:        s.errors.Load(),
		Requests:      s.requests.Load(),
	}
	if st.Flushes > 0 {
		st.MeanBatch = float64(st.Requests-st.CacheHits) / float64(st.Flushes)
	}
	return st
}

// Uptime reports how long the server object has existed.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }
