package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	qcfe "repro"
)

// cachedCopy gives a test its own estimator object (Save→Load of the
// shared fixture, so no extra training) with a fresh query cache
// attached — the shared fixture must stay cacheless or the coalescing
// tests' queue-depth arithmetic would break.
func cachedCopy(t *testing.T) *qcfe.CostEstimator {
	t.Helper()
	var buf bytes.Buffer
	if err := testEstimator(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	est, err := qcfe.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	est.AttachCache(qcfe.NewQueryCache(qcfe.CacheOptions{Shards: 8, Capacity: 1024}))
	return est
}

// TestWarmHitSkipsGather is the short-circuit regression test: a warm
// prediction-tier hit must be answered before the request ever reaches
// the coalescing queue. The server's batcher is deliberately never
// started — a request that entered gather could only hang — so a reply
// proves the queue was skipped.
func TestWarmHitSkipsGather(t *testing.T) {
	est := cachedCopy(t)
	env := est.Environments()[0]
	sql := testSQL(0)
	want, err := est.EstimateSQL(env, sql) // warms the prediction tier
	if err != nil {
		t.Fatal(err)
	}

	srv := New(est, Options{BatchWindow: time.Hour}) // poison: any flush would stall
	// No srv.Run: the queue has no consumer.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := srv.Estimate(ctx, env.ID, sql)
	if err != nil {
		t.Fatalf("warm hit entered the queue (or errored): %v", err)
	}
	if got != want {
		t.Fatalf("warm hit = %v, want %v", got, want)
	}
	if n := len(srv.queue); n != 0 {
		t.Fatalf("queue depth = %d after a warm hit, want 0", n)
	}
	st := srv.Stats()
	if st.Requests != 1 || st.CacheHits != 1 || st.Flushes != 0 {
		t.Fatalf("stats = %+v, want 1 request, 1 cache hit, 0 flushes", st)
	}
}

// TestHTTPParityWithCache re-runs the serving contract with a cache
// attached: 48-way concurrent /estimate and /estimate_batch traffic,
// cold then warm, must stay bit-identical to the library — and the warm
// round must be served from the cache.
func TestHTTPParityWithCache(t *testing.T) {
	est := cachedCopy(t)
	srv := New(est, Options{MaxBatch: 16, BatchWindow: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.Run(ctx); close(done) }()
	t.Cleanup(func() {
		cancel()
		<-done
	})

	// Ground truth from a cacheless copy of the same artifact.
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	plain, err := qcfe.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}

	const n = 48
	envs := est.Environments()
	for round := 0; round < 2; round++ {
		results := make([]float64, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				env := envs[i%len(envs)]
				// Half singles (coalescing path), half two-query batches
				// (direct path) — both must agree with the library.
				if i%2 == 0 {
					results[i], errs[i] = srv.Estimate(context.Background(), env.ID, testSQL(i))
					return
				}
				ms, err := srv.EstimateBatch(context.Background(), env.ID, []string{testSQL(i), testSQL(i + n)})
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = ms[0] + ms[1]
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				t.Fatalf("round %d request %d: %v", round, i, errs[i])
			}
			env := envs[i%len(envs)]
			var want float64
			if i%2 == 0 {
				want, err = plain.EstimateSQL(env, testSQL(i))
			} else {
				var ms []float64
				ms, err = plain.EstimateSQLBatch(env, []string{testSQL(i), testSQL(i + n)})
				if err == nil {
					want = ms[0] + ms[1]
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			if results[i] != want {
				t.Fatalf("round %d request %d: served %v != library %v", round, i, results[i], want)
			}
		}
	}
	st := srv.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("second round should hit the prediction tier: %+v", st)
	}
	cs, ok := est.CacheStats()
	if !ok || cs.Prediction.Hits == 0 {
		t.Fatalf("cache stats = %+v ok=%v", cs, ok)
	}
}

// TestStatsExposesCache checks /stats carries the per-tier cache
// counters when (and only when) a cache is attached.
func TestStatsExposesCache(t *testing.T) {
	est := cachedCopy(t)
	srv := New(est, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)
	env := est.Environments()[0]
	if _, err := srv.Estimate(context.Background(), env.ID, testSQL(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Estimate(context.Background(), env.ID, testSQL(1)); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var out StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache == nil {
		t.Fatal("/stats must include cache counters when a cache is attached")
	}
	if out.Cache.Prediction.Hits < 1 || out.Cache.Prediction.Stores < 1 {
		t.Fatalf("cache stats = %+v", out.Cache)
	}
	if out.CacheHits < 1 {
		t.Fatalf("server cache_hits = %d", out.CacheHits)
	}

	// Cacheless estimator: no cache block.
	srv2 := New(testEstimator(t), Options{})
	rec2 := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rec2, req)
	var out2 StatsResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &out2); err != nil {
		t.Fatal(err)
	}
	if out2.Cache != nil {
		t.Fatalf("cacheless /stats must omit cache block, got %+v", out2.Cache)
	}
}
