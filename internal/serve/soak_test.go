package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	qcfe "repro"
	"repro/internal/qcache"
	"repro/internal/workload"
)

// soakDuration picks the soak length: 2s under -short (the CI -race
// matrix and local quick runs), 60s when QCFE_SOAK_SECONDS=60 (the
// dedicated CI soak step), 10s otherwise — long enough to cycle the
// cache and both swaps many thousands of times without dominating a
// full local `go test ./...`.
func soakDuration(t *testing.T) time.Duration {
	if v := os.Getenv("QCFE_SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs <= 0 {
			t.Fatalf("QCFE_SOAK_SECONDS=%q", v)
		}
		return time.Duration(secs) * time.Second
	}
	if testing.Short() {
		return 2 * time.Second
	}
	return 10 * time.Second
}

// TestSoakSwapUnderLoad is the hot-swap atomicity bar: 48-way
// concurrent single-estimate traffic with client context cancellations
// mixed in, two-plus estimator hot swaps mid-run (cache handed off each
// time), and three invariants checked continuously:
//
//  1. zero torn reads — every successful estimate is bit-identical to
//     one of the two models' cold-loaded (artifact) predictions, never
//     a blend, never a stale cache line from the other generation;
//  2. per-tier cache counters are monotonic non-decreasing;
//  3. errors are only ever cancellation/shutdown shaped.
//
// Run under -race in CI, this is also the data-race proof for the
// whole swap path (atomic pointer, generation store, CLOCK shards).
//
// The soak runs once over the serial coalescer and once with the staged
// pipeline enabled (half the budget each), so the mid-soak hot swaps
// also exercise batches in flight across pipeline stages — the
// single-snapshot-per-reply half of the pipelined contract.
func TestSoakSwapUnderLoad(t *testing.T) {
	dur := soakDuration(t) / 2
	base := Options{MaxBatch: 32, BatchWindow: 500 * time.Microsecond}
	t.Run("serial", func(t *testing.T) { soakSwapUnderLoad(t, dur, base) })
	t.Run("pipelined", func(t *testing.T) {
		opts := base
		opts.PipelineDepth = 4
		opts.FeaturizeWorkers = 2
		opts.PredictWorkers = 2
		soakSwapUnderLoad(t, dur, opts)
	})
}

func soakSwapUnderLoad(t *testing.T, dur time.Duration, opts Options) {
	estA := cachedCopy(t) // owns the cache initially
	estB, err := testEstimator(t).Adapt(soakWindow(t), 25)
	if err != nil {
		t.Fatal(err)
	}
	cache := estA.Cache()

	// Ground truth from cold, cacheless estimators loaded from each
	// model's artifact — the strongest form of the no-torn-reads check:
	// a served estimate must equal what the artifact alone reproduces.
	coldA, coldB := reloaded(t, estA), reloaded(t, estB)
	const nq = 32
	envs := estA.Environments()
	wantA := make(map[int][]float64, len(envs))
	wantB := make(map[int][]float64, len(envs))
	for ei, env := range envs {
		a := make([]float64, nq)
		b := make([]float64, nq)
		for i := 0; i < nq; i++ {
			if a[i], err = coldA.EstimateSQL(coldA.Environments()[ei], testSQL(i)); err != nil {
				t.Fatal(err)
			}
			if b[i], err = coldB.EstimateSQL(coldB.Environments()[ei], testSQL(i)); err != nil {
				t.Fatal(err)
			}
			if a[i] == b[i] {
				t.Fatalf("query %d indistinguishable across models; soak cannot detect torn reads", i)
			}
		}
		wantA[env.ID] = a
		wantB[env.ID] = b
	}

	srv := New(estA, opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.Run(ctx); close(done) }()
	defer func() {
		cancel()
		<-done
	}()

	var (
		stop     atomic.Bool
		served   atomic.Int64
		torn     atomic.Int64
		badErrs  atomic.Int64
		firstBad sync.Once
		badMsg   atomic.Value
	)
	const workers = 48
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for op := 0; !stop.Load(); op++ {
				env := envs[(w+op)%len(envs)]
				qi := rng.Intn(nq)
				rctx := context.Background()
				var rcancel context.CancelFunc = func() {}
				if op%16 == 7 {
					// Client gives up almost immediately: exercises the
					// enqueue/reply cancellation arms.
					rctx, rcancel = context.WithTimeout(rctx, time.Duration(rng.Intn(300))*time.Microsecond)
				}
				ms, err := srv.Estimate(rctx, env.ID, testSQL(qi))
				rcancel()
				if err != nil {
					if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
						badErrs.Add(1)
						firstBad.Do(func() { badMsg.Store(fmt.Sprintf("worker %d: %v", w, err)) })
					}
					continue
				}
				served.Add(1)
				if ms != wantA[env.ID][qi] && ms != wantB[env.ID][qi] {
					torn.Add(1)
					firstBad.Do(func() {
						badMsg.Store(fmt.Sprintf("torn read worker %d query %d: %v not in {%v, %v}",
							w, qi, ms, wantA[env.ID][qi], wantB[env.ID][qi]))
					})
				}
			}
		}(w)
	}

	// Cache-counter monotonicity sampler: every tier's cumulative
	// counters must only ever grow, swaps included.
	monoDone := make(chan string, 1)
	go func() {
		defer close(monoDone)
		regressed := func(p, c qcache.TierStats) bool {
			return c.Hits < p.Hits || c.Misses < p.Misses || c.Stores < p.Stores || c.Evictions < p.Evictions
		}
		prev := cache.Stats()
		for !stop.Load() {
			time.Sleep(20 * time.Millisecond)
			cur := cache.Stats()
			if regressed(prev.Template, cur.Template) || regressed(prev.Feature, cur.Feature) || regressed(prev.Prediction, cur.Prediction) {
				select {
				case monoDone <- fmt.Sprintf("cache counters went backwards:\n  %+v\n  %+v", prev, cur):
				default:
				}
				return
			}
			prev = cur
		}
	}()

	// Two hot swaps mid-run, cache handed off each time: A → B → A.
	time.Sleep(dur / 3)
	srv.SwapEstimator(qcfe.SwapEstimator(estA, estB))
	time.Sleep(dur / 3)
	srv.SwapEstimator(qcfe.SwapEstimator(estB, estA))
	time.Sleep(dur / 3)

	stop.Store(true)
	wg.Wait()
	if msg, ok := <-monoDone; ok && msg != "" {
		t.Fatal(msg)
	}

	if torn.Load() > 0 || badErrs.Load() > 0 {
		t.Fatalf("torn reads = %d, unexpected errors = %d; first: %v",
			torn.Load(), badErrs.Load(), badMsg.Load())
	}
	if served.Load() == 0 {
		t.Fatal("soak served nothing")
	}
	st := srv.Stats()
	if st.Swaps != 2 {
		t.Fatalf("swaps = %d, want 2", st.Swaps)
	}
	if st.CacheHits == 0 {
		t.Fatalf("soak never hit the warm path: %+v", st)
	}
	t.Logf("soak: %v, served %d estimates across %d swaps (%d cache hits, %d flushes, %d client cancels)",
		dur, served.Load(), st.Swaps, st.CacheHits, st.Flushes, st.Errors)
}

// soakWindow collects a small labeled window for Adapt.
func soakWindow(t *testing.T) []workload.Sample {
	t.Helper()
	est := testEstimator(t)
	pool, err := est.Benchmark().CollectWorkload(est.Environments(), 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	return train
}
