package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	qcfe "repro"
	"repro/internal/obs"
)

// HTTP request/response bodies. The /estimate_batch response shape
// ({"ms":[...]}) is deliberately identical to qcfe-bench's -load
// -estimate output, so the CI smoke test can diff the server against the
// library byte for byte.

// TenantHeader names the tenant a request belongs to in a multi-tenant
// deployment (internal/tenant). The header wins over the body's
// "tenant" field when both are set; a single-tenant Server accepts and
// ignores both, so one client works against either deployment shape.
const TenantHeader = "X-QCFE-Tenant"

// EstimateRequest is the /estimate body.
type EstimateRequest struct {
	Env int    `json:"env"`
	SQL string `json:"sql"`
	// Tenant optionally names the tenant in a multi-tenant deployment
	// (the X-QCFE-Tenant header takes precedence). Ignored by a
	// single-tenant Server.
	Tenant string `json:"tenant,omitempty"`
}

// EstimateResponse is the /estimate reply. Degraded is set only by the
// multi-tenant registry when the answer came from the rung-3 analytic
// fallback instead of the serving model; omitempty keeps un-degraded
// replies byte-identical to a single-tenant server's.
type EstimateResponse struct {
	Ms       float64 `json:"ms"`
	Degraded bool    `json:"degraded,omitempty"`
}

// BatchRequest is the /estimate_batch body.
type BatchRequest struct {
	Env    int      `json:"env"`
	SQLs   []string `json:"sqls"`
	Tenant string   `json:"tenant,omitempty"`
}

// BatchResponse is the /estimate_batch reply. Degraded is set when at
// least one element was priced by the rung-3 analytic fallback (warm
// prediction-tier hits in the same batch keep their full-fidelity
// values); absent on the full NN path.
type BatchResponse struct {
	Ms       []float64 `json:"ms"`
	Degraded bool      `json:"degraded,omitempty"`
}

// ShadowRequest is the /shadow body: a query plus the latency the
// client actually observed for it — opportunistic ground truth.
type ShadowRequest struct {
	Env      int     `json:"env"`
	SQL      string  `json:"sql"`
	ActualMs float64 `json:"actual_ms"`
	Tenant   string  `json:"tenant,omitempty"`
}

// ShadowResponse is the /shadow reply: the live model's estimate
// scored against the client's observation. Recorded reports whether a
// drift monitor consumed the label.
type ShadowResponse struct {
	Ms       float64 `json:"ms"`
	QError   float64 `json:"q_error"`
	Recorded bool    `json:"recorded"`
}

// HealthResponse is the /healthz reply. Generation identifies the
// artifact this replica currently serves (16 hex digits — see
// GenerationString); the router's rollout gate reads it to verify a
// committed swap actually landed. Replica echoes Options.Advertise.
type HealthResponse struct {
	Status     string  `json:"status"`
	Model      string  `json:"model"`
	Benchmark  string  `json:"benchmark"`
	Envs       int     `json:"envs"`
	Generation string  `json:"generation"`
	Replica    string  `json:"replica,omitempty"`
	UptimeS    float64 `json:"uptime_s"`
}

// StatsResponse is the /stats reply. Cache is present only when the
// estimator has a query cache attached; its per-tier hit/miss/size
// counters come straight from internal/qcache. Drift is present only
// when a drift monitor is attached (qcfe-serve -adapt) and carries
// internal/online's rolling q-error and retrain/swap counters. The
// router fetches this per replica and merges the serve, cache, and
// drift blocks into its fleet-wide /stats.
type StatsResponse struct {
	Stats
	MaxBatch      int     `json:"max_batch"`
	BatchWindowMs float64 `json:"batch_window_ms"`
	// PipelineDepth is 0 when the serial coalescer is in use; >0 reports
	// the exchange-channel capacity of the staged miss path, with the
	// per-stage worker counts alongside.
	PipelineDepth    int              `json:"pipeline_depth"`
	FeaturizeWorkers int              `json:"featurize_workers,omitempty"`
	PredictWorkers   int              `json:"predict_workers,omitempty"`
	Cache            *qcfe.CacheStats `json:"cache,omitempty"`
	Drift            any              `json:"drift,omitempty"`
}

// errorResponse is every error reply.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API over the server:
//
//	POST /estimate        {"env":0,"sql":"..."}        → {"ms":1.23}
//	POST /estimate_batch  {"env":0,"sqls":["...",...]} → {"ms":[...]}
//	POST /shadow          {"env":0,"sql":"...","actual_ms":1.2} → {"ms":..,"q_error":..}
//	GET  /healthz                                      → status + model identity + generation
//	GET  /stats                                        → serving counters
//	POST /swap            admin: stage/commit/rollback an artifact swap
//	GET  /generation      admin: serving + staged artifact generations
//
// The /swap and /generation admin endpoints require the
// X-QCFE-Admin-Token header to match Options.AdminToken and are
// disabled (403) when no token is configured; see admin.go for the
// two-phase swap protocol.
//
// Single estimates coalesce with concurrent requests into micro-batches;
// batch estimates run directly through the batched inference path. Both
// carry the request's context, so a disconnecting client cancels its
// planning fan-out. Shadow requests score the live model against
// client-observed ground truth and feed the drift monitor when online
// adaptation is enabled.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", s.traced("estimate", func(w http.ResponseWriter, r *http.Request) {
		var req EstimateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ms, err := s.Estimate(r.Context(), req.Env, req.SQL)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, EstimateResponse{Ms: ms})
	}))
	mux.HandleFunc("/estimate_batch", s.traced("estimate_batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ms, err := s.EstimateBatch(r.Context(), req.Env, req.SQLs)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if ms == nil {
			ms = []float64{}
		}
		writeJSON(w, http.StatusOK, BatchResponse{Ms: ms})
	}))
	mux.HandleFunc("/shadow", func(w http.ResponseWriter, r *http.Request) {
		var req ShadowRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.ActualMs <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("actual_ms must be positive"))
			return
		}
		env, err := s.EnvByID(req.Env)
		if err != nil {
			s.errors.Add(1)
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Score against the live model directly (no coalescing: shadow
		// traffic is observability, not latency-sensitive serving).
		est := s.Estimator()
		ms, err := est.EstimateSQL(env, req.SQL)
		if err != nil {
			s.errors.Add(1)
			writeError(w, statusFor(err), err)
			return
		}
		resp := ShadowResponse{Ms: ms, QError: qcfe.QError(req.ActualMs, ms)}
		if s.monitor != nil {
			resp.Recorded = s.monitor.ObserveLabeled(env, req.SQL, ms, req.ActualMs, est)
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		est := s.Estimator()
		writeJSON(w, http.StatusOK, HealthResponse{
			Status:     "ok",
			Model:      est.ModelName(),
			Benchmark:  est.BenchmarkName(),
			Envs:       len(est.Environments()),
			Generation: GenerationString(est.Generation()),
			Replica:    s.opts.Advertise,
			UptimeS:    s.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/swap", s.handleSwap)
	mux.HandleFunc("/generation", s.handleGeneration)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, s.StatsSnapshot())
	})
	mux.Handle("/metrics", obs.MetricsHandler(func(g *obs.Gatherer) {
		s.WriteMetrics(g)
		obs.WriteBuildMetrics(g)
	}))
	mux.HandleFunc("/trace/recent", s.handleTraceRecent)
	mux.HandleFunc("/version", handleVersion)
	// pprof rides behind the same admin token as /swap — present on
	// every deployment but inert (403) until a token is configured.
	mux.Handle("/debug/pprof/", obs.PprofHandler(s.opts.AdminToken))
	return mux
}

// traced wraps a data-plane handler with request tracing: the inbound
// X-QCFE-Trace-ID is honored (a router hop arrives mid-trace) or a
// fresh ID minted, the trace rides the request context so every layer
// below — coalescer, library, cache — can append stage spans, the ID is
// echoed in the response headers, and the finished trace lands in the
// /trace/recent ring (and the slow-query log past the threshold).
func (s *Server) traced(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.TraceHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set(obs.TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
		var err error
		if sw.code >= 400 {
			err = fmt.Errorf("http %d", sw.code)
		}
		s.tracer.Finish(tr, op, r.Header.Get(TenantHeader), err)
	}
}

// statusWriter captures the reply status so a finished trace records
// whether the request failed.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// handleTraceRecent serves the ring of recently finished traces,
// newest first; ?n= bounds the count (default 50).
func (s *Server) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	max := 50
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad n: %q", v))
			return
		}
		max = n
	}
	recs := s.tracer.Recent(max)
	if recs == nil {
		recs = []obs.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, recs)
}

// handleVersion reports the binary's build identification.
func handleVersion(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, obs.Build())
}

// StatsSnapshot assembles the /stats reply body: serving counters plus
// the cache and drift blocks when present. The multi-tenant registry
// embeds one per tenant, so a tenant's block carries exactly what the
// same server would report standalone.
func (s *Server) StatsSnapshot() StatsResponse {
	resp := StatsResponse{
		Stats:            s.Stats(),
		MaxBatch:         s.opts.MaxBatch,
		BatchWindowMs:    float64(s.opts.BatchWindow.Milliseconds()),
		PipelineDepth:    s.opts.PipelineDepth,
		FeaturizeWorkers: s.opts.FeaturizeWorkers,
		PredictWorkers:   s.opts.PredictWorkers,
	}
	if cs, ok := s.Estimator().CacheStats(); ok {
		resp.Cache = &cs
	}
	if s.monitor != nil {
		resp.Drift = s.monitor.DriftStats()
	}
	return resp
}

// statusFor classifies an estimate error: cancellation (a draining
// server or a vanished client) is 503 — retryable, not the client's
// fault — while everything else (bad SQL, unknown environment) is 400.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return false
	}
	return true
}

// encBufPool recycles the JSON encode buffers for every HTTP reply, so
// response marshaling reuses one scratch buffer per concurrent request
// instead of growing a fresh one each time. Buffers that ballooned on
// an unusually large reply (a wide /estimate_batch) are dropped rather
// than pinned in the pool.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledEncBuf = 64 << 10

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// Encode (not Marshal) to keep the reply bytes identical to the
	// pre-pool json.NewEncoder(w) path, trailing newline included — the
	// router's byte-compare canary and the CI smoke diff depend on it.
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledEncBuf {
		encBufPool.Put(buf)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
