package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	qcfe "repro"
)

// HTTP request/response bodies. The /estimate_batch response shape
// ({"ms":[...]}) is deliberately identical to qcfe-bench's -load
// -estimate output, so the CI smoke test can diff the server against the
// library byte for byte.

// EstimateRequest is the /estimate body.
type EstimateRequest struct {
	Env int    `json:"env"`
	SQL string `json:"sql"`
}

// EstimateResponse is the /estimate reply.
type EstimateResponse struct {
	Ms float64 `json:"ms"`
}

// BatchRequest is the /estimate_batch body.
type BatchRequest struct {
	Env  int      `json:"env"`
	SQLs []string `json:"sqls"`
}

// BatchResponse is the /estimate_batch reply.
type BatchResponse struct {
	Ms []float64 `json:"ms"`
}

// healthResponse is the /healthz reply.
type healthResponse struct {
	Status    string  `json:"status"`
	Model     string  `json:"model"`
	Benchmark string  `json:"benchmark"`
	Envs      int     `json:"envs"`
	UptimeS   float64 `json:"uptime_s"`
}

// statsResponse is the /stats reply. Cache is present only when the
// estimator has a query cache attached; its per-tier hit/miss/size
// counters come straight from internal/qcache.
type statsResponse struct {
	Stats
	MaxBatch      int              `json:"max_batch"`
	BatchWindowMs float64          `json:"batch_window_ms"`
	Cache         *qcfe.CacheStats `json:"cache,omitempty"`
}

// errorResponse is every error reply.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP API over the server:
//
//	POST /estimate        {"env":0,"sql":"..."}        → {"ms":1.23}
//	POST /estimate_batch  {"env":0,"sqls":["...",...]} → {"ms":[...]}
//	GET  /healthz                                      → status + model identity
//	GET  /stats                                        → serving counters
//
// Single estimates coalesce with concurrent requests into micro-batches;
// batch estimates run directly through the batched inference path. Both
// carry the request's context, so a disconnecting client cancels its
// planning fan-out.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		var req EstimateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ms, err := s.Estimate(r.Context(), req.Env, req.SQL)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, EstimateResponse{Ms: ms})
	})
	mux.HandleFunc("/estimate_batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ms, err := s.EstimateBatch(r.Context(), req.Env, req.SQLs)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if ms == nil {
			ms = []float64{}
		}
		writeJSON(w, http.StatusOK, BatchResponse{Ms: ms})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, healthResponse{
			Status:    "ok",
			Model:     s.est.ModelName(),
			Benchmark: s.est.BenchmarkName(),
			Envs:      len(s.est.Environments()),
			UptimeS:   s.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		resp := statsResponse{
			Stats:         s.Stats(),
			MaxBatch:      s.opts.MaxBatch,
			BatchWindowMs: float64(s.opts.BatchWindow.Milliseconds()),
		}
		if cs, ok := s.est.CacheStats(); ok {
			resp.Cache = &cs
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// statusFor classifies an estimate error: cancellation (a draining
// server or a vanished client) is 503 — retryable, not the client's
// fault — while everything else (bad SQL, unknown environment) is 400.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
