package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	qcfe "repro"
)

// adaptedCopy retrains a Save→Load copy of the shared fixture on a
// slice of freshly collected labeled samples — the cheapest way to get
// an estimator with genuinely different weights (and so a different
// cache generation) without a second full training run.
func adaptedCopy(t *testing.T, iters int) *qcfe.CostEstimator {
	t.Helper()
	est := testEstimator(t)
	pool, err := est.Benchmark().CollectWorkload(est.Environments(), 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	next, err := est.Adapt(train, iters)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestSwapEstimatorAtomicity: requests before the swap are priced by
// the old model, requests after it by the new one, with no restart and
// no lock; /healthz and /stats follow the installed estimator.
func TestSwapEstimatorServesNewModel(t *testing.T) {
	est1 := testEstimator(t)
	est2 := adaptedCopy(t, 30)
	srv, ts := startServer(t, Options{BatchWindow: time.Millisecond})
	env := est1.Environments()[0]

	sql := testSQL(1)
	want1, err := est1.EstimateSQL(env, sql)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := est2.EstimateSQL(est2.Environments()[0], sql)
	if err != nil {
		t.Fatal(err)
	}
	if want1 == want2 {
		t.Fatal("test needs distinguishable models")
	}

	got, err := srv.Estimate(context.Background(), env.ID, sql)
	if err != nil {
		t.Fatal(err)
	}
	if got != want1 {
		t.Fatalf("pre-swap estimate %v != est1's %v", got, want1)
	}
	srv.SwapEstimator(est2)
	got, err = srv.Estimate(context.Background(), env.ID, sql)
	if err != nil {
		t.Fatal(err)
	}
	if got != want2 {
		t.Fatalf("post-swap estimate %v != est2's %v", got, want2)
	}
	if st := srv.Stats(); st.Swaps != 1 {
		t.Fatalf("swaps = %d", st.Swaps)
	}
	resp, body := postJSON(t, ts.URL+"/estimate", `{"env":0,"sql":"`+sql+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out EstimateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Ms != want2 {
		t.Fatalf("HTTP post-swap estimate %v != est2's %v", out.Ms, want2)
	}
}

// recordingMonitor is a Monitor fake for plumbing tests.
type recordingMonitor struct {
	mu       sync.Mutex
	observed []string
	labeled  []float64
}

func (m *recordingMonitor) Observe(env *qcfe.Environment, sql string, ms float64, producer any) {
	m.mu.Lock()
	m.observed = append(m.observed, sql)
	m.mu.Unlock()
}

func (m *recordingMonitor) ObserveLabeled(env *qcfe.Environment, sql string, ms, actual float64, producer any) bool {
	m.mu.Lock()
	m.labeled = append(m.labeled, actual)
	m.mu.Unlock()
	return true
}

func (m *recordingMonitor) DriftStats() any {
	return map[string]int{"fake": 1}
}

var _ Monitor = (*recordingMonitor)(nil)

// Adapter must satisfy the server's Monitor interface (compile-time
// proof lives in cmd/qcfe-serve; here a fake stands in so serve tests
// need no online import).

// TestMonitorPlumbing: Observe fires for singles (cold and warm) and
// batch queries; /shadow scores against client ground truth and feeds
// ObserveLabeled; /stats carries the drift block.
func TestMonitorPlumbing(t *testing.T) {
	est := cachedCopy(t)
	srv := New(est, Options{BatchWindow: time.Millisecond})
	mon := &recordingMonitor{}
	srv.SetMonitor(mon)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	env := est.Environments()[0]

	// Cold single, then warm single (cache hit path), then a batch.
	for i := 0; i < 2; i++ {
		if _, err := srv.Estimate(context.Background(), env.ID, testSQL(3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.EstimateBatch(context.Background(), env.ID, []string{testSQL(4), testSQL(5)}); err != nil {
		t.Fatal(err)
	}
	mon.mu.Lock()
	nObs := len(mon.observed)
	mon.mu.Unlock()
	if nObs != 4 {
		t.Fatalf("observed %d estimates, want 4 (2 singles + 2 batch)", nObs)
	}

	// Shadow: the live estimate scored against a client-observed actual.
	want, err := est.EstimateSQL(env, testSQL(6))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/shadow",
		`{"env":0,"sql":"`+testSQL(6)+`","actual_ms":123.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sh ShadowResponse
	if err := json.Unmarshal(body, &sh); err != nil {
		t.Fatal(err)
	}
	if sh.Ms != want || !sh.Recorded {
		t.Fatalf("shadow = %+v, want ms %v recorded", sh, want)
	}
	if sh.QError != qcfe.QError(123.5, want) {
		t.Fatalf("q_error = %v", sh.QError)
	}
	mon.mu.Lock()
	nLab := len(mon.labeled)
	mon.mu.Unlock()
	if nLab != 1 || func() bool { mon.mu.Lock(); defer mon.mu.Unlock(); return mon.labeled[0] != 123.5 }() {
		t.Fatalf("ObserveLabeled not fed: %d labels", nLab)
	}

	// Bad shadow bodies.
	if resp, _ := postJSON(t, ts.URL+"/shadow", `{"env":0,"sql":"SELECT * FROM sbtest1","actual_ms":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-positive actual_ms: status %d", resp.StatusCode)
	}

	// Drift block in /stats.
	req, _ := http.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), `"drift"`) {
		t.Fatalf("/stats missing drift block: %s", rec.Body.String())
	}

	// Monitorless server: shadow still scores, nothing recorded, no
	// drift block.
	srv2 := New(est, Options{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, body = postJSON(t, ts2.URL+"/shadow",
		`{"env":0,"sql":"`+testSQL(6)+`","actual_ms":123.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sh2 ShadowResponse
	if err := json.Unmarshal(body, &sh2); err != nil {
		t.Fatal(err)
	}
	if sh2.Recorded {
		t.Fatal("monitorless shadow must not claim recording")
	}
	rec2 := httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rec2, req)
	if strings.Contains(rec2.Body.String(), `"drift"`) {
		t.Fatalf("monitorless /stats has drift block: %s", rec2.Body.String())
	}
}

// TestSwapKeepsWarmCacheOnIdenticalArtifact: swapping in a Save→Load
// copy of the serving estimator (same bytes, same generation) must keep
// the query cache warm — the generation rule's positive case.
func TestSwapKeepsWarmCacheOnIdenticalArtifact(t *testing.T) {
	est := cachedCopy(t)
	srv := New(est, Options{BatchWindow: time.Hour}) // batcher never started: only warm hits can answer
	env := est.Environments()[0]
	sql := testSQL(2)
	want, err := est.EstimateSQL(env, sql) // warms the prediction tier
	if err != nil {
		t.Fatal(err)
	}

	twin := qcfe.SwapEstimator(est, reloaded(t, est))
	srv.SwapEstimator(twin)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := srv.Estimate(ctx, env.ID, sql)
	if err != nil {
		t.Fatalf("warm hit lost across identical-artifact swap: %v", err)
	}
	if got != want {
		t.Fatalf("post-swap warm hit %v != %v", got, want)
	}
	if st := srv.Stats(); st.CacheHits != 1 || st.Swaps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// reloaded Save→Loads an estimator (cacheless copy of the same bytes).
func reloaded(t *testing.T, est *qcfe.CostEstimator) *qcfe.CostEstimator {
	t.Helper()
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	next, err := qcfe.LoadEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return next
}
