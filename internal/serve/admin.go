package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	qcfe "repro"
)

// The admin plane: a token-authenticated two-phase swap protocol that
// lets a router (cmd/qcfe-router) roll a new artifact generation through
// a live replica without a process restart.
//
//	stage    — load an artifact (upload or path) off to the side and,
//	           optionally, price a canary probe set with it. The staged
//	           estimator serves nothing; traffic is untouched.
//	commit   — atomically install the staged estimator via the existing
//	           SwapEstimator path (query-cache handoff included). The
//	           replaced estimator is retained as the rollback target.
//	rollback — atomically reinstall the estimator the last commit
//	           replaced. Rollback is its own inverse: the pair
//	           (commit, rollback) can alternate indefinitely.
//	abort    — discard the staged estimator.
//
// Splitting stage from commit is what makes the router's canary gate a
// real gate: a replica whose staged artifact fails the canary probe is
// never installed — its serving generation never moves — so "replicas
// after the failure point never swap" holds by construction, and only
// replicas that already committed need the (equally atomic) rollback.

// SwapRequest is the /swap body. Exactly one action is taken per
// request: staging (ArtifactB64 or Path set, Stage true), Commit,
// Rollback, or Abort. An artifact supplied with Stage false is a
// one-shot stage+commit (no canary gate) for manual operation.
type SwapRequest struct {
	// ArtifactB64 is the artifact bytes, base64-encoded (the router
	// ships artifacts in-band so replicas need no shared filesystem).
	ArtifactB64 string `json:"artifact_b64,omitempty"`
	// Path is a server-local artifact path, for fleets that do share
	// storage; ignored when ArtifactB64 is set.
	Path string `json:"path,omitempty"`
	// Stage holds the loaded artifact without installing it.
	Stage bool `json:"stage,omitempty"`
	// CanaryEnv/CanarySQLs, with Stage: price these queries on the
	// staged estimator and return the predictions, so the caller can
	// compare them byte-for-byte against expected outputs before
	// committing.
	CanaryEnv  int      `json:"canary_env,omitempty"`
	CanarySQLs []string `json:"canary_sqls,omitempty"`
	// Commit installs the previously staged estimator.
	Commit bool `json:"commit,omitempty"`
	// Rollback reinstalls the estimator the last commit replaced.
	Rollback bool `json:"rollback,omitempty"`
	// Abort discards the staged estimator.
	Abort bool `json:"abort,omitempty"`
}

// SwapResponse is the /swap reply: the serving generation after the
// operation, the staged generation (empty when nothing is staged), and
// the staged estimator's canary predictions when probes were supplied.
type SwapResponse struct {
	Generation string    `json:"generation"`
	Staged     string    `json:"staged,omitempty"`
	CanaryMs   []float64 `json:"canary_ms,omitempty"`
	Swapped    bool      `json:"swapped,omitempty"`
}

// GenerationResponse is the /generation reply.
type GenerationResponse struct {
	Generation string `json:"generation"`
	Staged     string `json:"staged,omitempty"`
}

// GenerationString renders a generation the way every admin and health
// endpoint reports it: 16 lowercase hex digits.
func GenerationString(g uint64) string { return fmt.Sprintf("%016x", g) }

// authorized gates an admin request: 403 when the admin surface is
// disabled (no token configured), 401 on a missing or wrong token.
func (s *Server) authorized(w http.ResponseWriter, r *http.Request) bool {
	if s.opts.AdminToken == "" {
		writeError(w, http.StatusForbidden, fmt.Errorf("admin endpoints disabled (no admin token configured)"))
		return false
	}
	if r.Header.Get("X-QCFE-Admin-Token") != s.opts.AdminToken {
		writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid admin token"))
		return false
	}
	return true
}

// handleSwap is the POST /swap handler.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(w, r) {
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	// Artifacts ship in-band (base64), so /swap takes bodies far larger
	// than the 1 MB data-plane cap: 256 MB covers any artifact this
	// codebase can produce while still bounding a hostile upload.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20))
	dec.DisallowUnknownFields()
	var req SwapRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	resp, err := s.Swap(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Swap executes one admin swap operation. It is exported so in-process
// fleets (tests, examples, benchmarks) can drive the same protocol the
// HTTP endpoint exposes.
func (s *Server) Swap(req SwapRequest) (SwapResponse, error) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()

	switch {
	case req.ArtifactB64 != "" || req.Path != "":
		next, err := s.loadArtifact(req)
		if err != nil {
			return SwapResponse{}, err
		}
		resp := SwapResponse{}
		if len(req.CanarySQLs) > 0 {
			ms, err := s.canary(next, req.CanaryEnv, req.CanarySQLs)
			if err != nil {
				return SwapResponse{}, fmt.Errorf("canary probe failed: %w", err)
			}
			resp.CanaryMs = ms
		}
		if req.Stage {
			s.staged = next
			resp.Staged = GenerationString(next.Generation())
		} else {
			s.commitLocked(next)
			resp.Swapped = true
		}
		resp.Generation = GenerationString(s.Estimator().Generation())
		return resp, nil

	case req.Commit:
		if s.staged == nil {
			return SwapResponse{}, fmt.Errorf("commit without a staged artifact")
		}
		s.commitLocked(s.staged)
		s.staged = nil
		return SwapResponse{Generation: GenerationString(s.Estimator().Generation()), Swapped: true}, nil

	case req.Rollback:
		if s.prev == nil {
			return SwapResponse{}, fmt.Errorf("rollback without a previous estimator")
		}
		s.commitLocked(s.prev)
		return SwapResponse{Generation: GenerationString(s.Estimator().Generation()), Swapped: true}, nil

	case req.Abort:
		s.staged = nil
		return SwapResponse{Generation: GenerationString(s.Estimator().Generation())}, nil
	}
	return SwapResponse{}, fmt.Errorf("swap request names no action (artifact, commit, rollback, or abort)")
}

// commitLocked installs next as the serving estimator, handing the query
// cache over when both sides are real estimators (a fake in tests simply
// skips the handoff), and retains the replaced estimator as the rollback
// target. Callers hold adminMu; the install itself is the same atomic
// pointer store every in-flight request snapshots against.
func (s *Server) commitLocked(next Estimator) {
	old := s.Estimator()
	if oe, ok := old.(*qcfe.CostEstimator); ok {
		if ne, ok2 := next.(*qcfe.CostEstimator); ok2 {
			qcfe.SwapEstimator(oe, ne)
		}
	}
	s.SwapEstimator(next)
	s.prev = old
}

// loadArtifact materializes the request's artifact into an estimator.
func (s *Server) loadArtifact(req SwapRequest) (Estimator, error) {
	var raw []byte
	switch {
	case req.ArtifactB64 != "":
		b, err := base64.StdEncoding.DecodeString(req.ArtifactB64)
		if err != nil {
			return nil, fmt.Errorf("artifact_b64: %w", err)
		}
		raw = b
	case req.Path != "":
		b, err := os.ReadFile(req.Path)
		if err != nil {
			return nil, fmt.Errorf("artifact path: %w", err)
		}
		raw = b
	}
	est, err := qcfe.LoadEstimator(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("load artifact: %w", err)
	}
	return est, nil
}

// canary prices the probe set on a candidate estimator. The candidate is
// not serving, so this uses the plain batched path — the same one the
// routed /estimate_batch ends in, which is what makes the comparison
// meaningful bit for bit.
func (s *Server) canary(est Estimator, envID int, sqls []string) ([]float64, error) {
	var env *qcfe.Environment
	for _, e := range est.Environments() {
		if e.ID == envID {
			env = e
			break
		}
	}
	if env == nil {
		return nil, fmt.Errorf("staged artifact has no environment %d", envID)
	}
	return est.EstimateSQLBatchCtx(context.Background(), env, sqls)
}

// handleGeneration is the GET /generation handler.
func (s *Server) handleGeneration(w http.ResponseWriter, r *http.Request) {
	if !s.authorized(w, r) {
		return
	}
	if !requireGet(w, r) {
		return
	}
	s.adminMu.Lock()
	staged := ""
	if s.staged != nil {
		staged = GenerationString(s.staged.Generation())
	}
	s.adminMu.Unlock()
	writeJSON(w, http.StatusOK, GenerationResponse{
		Generation: GenerationString(s.Estimator().Generation()),
		Staged:     staged,
	})
}
