package serve

import (
	"context"
	"testing"
)

// TestEstimateWarmZeroAlloc pins the tentpole invariant at the serving
// layer: once a query's prediction is resident (and the cache shard's
// snapshot published), Server.Estimate answers it with zero heap
// allocations — environment resolution, the cache probe (struct key,
// lock-free snapshot read), counters, and monitor dispatch included.
// The CI bench job gates the same property on serve/estimate-warm; this
// keeps it enforced by plain `go test` too.
func TestEstimateWarmZeroAlloc(t *testing.T) {
	est := cachedCopy(t)
	env := est.Environments()[0]
	sql := testSQL(0)
	srv := New(est, Options{})
	// No srv.Run: a warm hit never touches the queue, so a batcherless
	// server doubles as proof the fast path stayed queue-free.
	ctx := context.Background()
	want, err := est.EstimateSQL(env, sql) // warm the prediction tier
	if err != nil {
		t.Fatal(err)
	}
	// Drain the cache's publication window so the measured hits read the
	// lock-free snapshot (see qcache's TestPredictionHitZeroAlloc).
	for i := 0; i < 64; i++ {
		if got, err := srv.Estimate(ctx, env.ID, sql); err != nil || got != want {
			t.Fatalf("warm-up hit = (%v, %v), want (%v, nil)", got, err, want)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		got, err := srv.Estimate(ctx, env.ID, sql)
		if err != nil || got != want {
			t.Fatalf("warm hit = (%v, %v), want (%v, nil)", got, err, want)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Estimate allocates %.2f allocs/op, want 0", allocs)
	}
}
