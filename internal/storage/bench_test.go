package storage

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
)

func BenchmarkHeapAppend(b *testing.B) {
	h := NewHeap(testTable())
	row := catalog.Row{catalog.IntVal(1), catalog.IntVal(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Append(row)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bt := NewBTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(catalog.IntVal(rng.Int63n(1_000_000)), i)
	}
}

func BenchmarkBTreeSearchEq(b *testing.B) {
	bt := NewBTree()
	for i := 0; i < 100_000; i++ {
		bt.Insert(catalog.IntVal(int64(i%10_000)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		bt.SearchEq(catalog.IntVal(int64(i%10_000)), func(int) bool { n++; return true })
	}
}

func BenchmarkBTreeRangeScan(b *testing.B) {
	bt := NewBTree()
	for i := 0; i < 100_000; i++ {
		bt.Insert(catalog.IntVal(int64(i)), i)
	}
	lo, hi := catalog.IntVal(40_000), catalog.IntVal(41_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		bt.Range(&lo, &hi, true, true, func(int) bool { n++; return true })
	}
}
