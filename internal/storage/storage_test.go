package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

func testTable() *catalog.Table {
	return catalog.NewTable("t",
		catalog.Column{Name: "id", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "v", Type: catalog.IntCol, Width: 8},
	)
}

func TestHeapAppendGet(t *testing.T) {
	h := NewHeap(testTable())
	id := h.Append(catalog.Row{catalog.IntVal(1), catalog.IntVal(10)})
	if id != 0 {
		t.Fatalf("first id = %d", id)
	}
	h.Append(catalog.Row{catalog.IntVal(2), catalog.IntVal(20)})
	if h.NumRows() != 2 {
		t.Fatalf("NumRows = %d", h.NumRows())
	}
	if h.Get(1)[1].I != 20 {
		t.Fatalf("Get(1) wrong")
	}
}

func TestHeapArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewHeap(testTable()).Append(catalog.Row{catalog.IntVal(1)})
}

func TestHeapPaging(t *testing.T) {
	h := NewHeap(testTable()) // width 16 → (8192-192)/16 = 500 rows/page
	if h.RowsPerPage() != 500 {
		t.Fatalf("RowsPerPage = %d, want 500", h.RowsPerPage())
	}
	if h.NumPages() != 0 {
		t.Fatalf("empty heap pages = %d", h.NumPages())
	}
	for i := 0; i < 1001; i++ {
		h.Append(catalog.Row{catalog.IntVal(int64(i)), catalog.IntVal(0)})
	}
	if h.NumPages() != 3 {
		t.Fatalf("NumPages = %d, want 3", h.NumPages())
	}
	if h.PageOf(499) != 0 || h.PageOf(500) != 1 || h.PageOf(1000) != 2 {
		t.Fatalf("PageOf wrong: %d %d %d", h.PageOf(499), h.PageOf(500), h.PageOf(1000))
	}
}

func TestBTreeInsertSearch(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(catalog.IntVal(int64(i%100)), i)
	}
	if bt.Len() != 1000 {
		t.Fatalf("Len = %d", bt.Len())
	}
	var got []int
	bt.SearchEq(catalog.IntVal(7), func(id int) bool { got = append(got, id); return true })
	if len(got) != 10 {
		t.Fatalf("SearchEq(7) found %d, want 10", len(got))
	}
	for _, id := range got {
		if id%100 != 7 {
			t.Fatalf("wrong rowID %d for key 7", id)
		}
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 500; i++ {
		bt.Insert(catalog.IntVal(int64(i)), i)
	}
	lo, hi := catalog.IntVal(100), catalog.IntVal(199)
	if c := bt.CountRange(&lo, &hi, true, true); c != 100 {
		t.Fatalf("CountRange incl = %d, want 100", c)
	}
	if c := bt.CountRange(&lo, &hi, false, false); c != 98 {
		t.Fatalf("CountRange excl = %d, want 98", c)
	}
	if c := bt.CountRange(nil, &hi, true, true); c != 200 {
		t.Fatalf("open-low = %d, want 200", c)
	}
	if c := bt.CountRange(&lo, nil, true, true); c != 400 {
		t.Fatalf("open-high = %d, want 400", c)
	}
	if c := bt.CountRange(nil, nil, true, true); c != 500 {
		t.Fatalf("full = %d, want 500", c)
	}
}

func TestBTreeRangeOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bt := NewBTree()
	keys := make([]int64, 2000)
	for i := range keys {
		keys[i] = rng.Int63n(10000)
		bt.Insert(catalog.IntVal(keys[i]), i)
	}
	var visited []int64
	bt.Range(nil, nil, true, true, func(id int) bool {
		visited = append(visited, keys[id])
		return true
	})
	if !sort.SliceIsSorted(visited, func(i, j int) bool { return visited[i] < visited[j] }) {
		t.Fatalf("range scan not in key order")
	}
	if len(visited) != 2000 {
		t.Fatalf("visited %d, want 2000", len(visited))
	}
}

func TestBTreeEarlyStop(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(catalog.IntVal(int64(i)), i)
	}
	var n int
	bt.Range(nil, nil, true, true, func(int) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBTreeHeightGrows(t *testing.T) {
	bt := NewBTree()
	if bt.Height() != 1 {
		t.Fatalf("empty height = %d", bt.Height())
	}
	for i := 0; i < 100000; i++ {
		bt.Insert(catalog.IntVal(int64(i)), i)
	}
	if h := bt.Height(); h < 2 || h > 4 {
		t.Fatalf("height = %d, want 2..4 for 100k keys order %d", h, btreeOrder)
	}
	if bt.LeafPages() < 100 {
		t.Fatalf("LeafPages = %d, want ≥100", bt.LeafPages())
	}
}

func TestBTreeStringKeys(t *testing.T) {
	bt := NewBTree()
	words := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, w := range words {
		bt.Insert(catalog.StrVal(w), i)
	}
	lo, hi := catalog.StrVal("b"), catalog.StrVal("d")
	var got []int
	bt.Range(&lo, &hi, true, true, func(id int) bool { got = append(got, id); return true })
	// bravo, charlie fall in [b, d]
	if len(got) != 2 {
		t.Fatalf("string range = %v", got)
	}
}

// Property: every inserted (key,id) pair is findable and the total range
// scan sees exactly the inserted multiset, in sorted order.
func TestBTreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3000)
		bt := NewBTree()
		keys := make([]int64, n)
		for i := 0; i < n; i++ {
			keys[i] = rng.Int63n(500)
			bt.Insert(catalog.IntVal(keys[i]), i)
		}
		if bt.Len() != n {
			return false
		}
		// Spot-check membership.
		probe := rng.Intn(n)
		found := false
		bt.SearchEq(catalog.IntVal(keys[probe]), func(id int) bool {
			if id == probe {
				found = true
				return false
			}
			return true
		})
		if !found {
			return false
		}
		// Full scan count and ordering.
		prev := int64(-1 << 62)
		count := 0
		ok := true
		bt.Range(nil, nil, true, true, func(id int) bool {
			k := keys[id]
			if k < prev {
				ok = false
				return false
			}
			prev = k
			count++
			return true
		})
		return ok && count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDatabaseBuildIndexes(t *testing.T) {
	s := catalog.NewSchema("test")
	s.AddTable(testTable())
	s.AddIndex(catalog.IndexDef{Name: "t_v_idx", Table: "t", Column: "v"})
	db := NewDatabase(s)
	h := db.Heap("t")
	for i := 0; i < 100; i++ {
		h.Append(catalog.Row{catalog.IntVal(int64(i)), catalog.IntVal(int64(i % 10))})
	}
	db.BuildIndexes()
	ix := db.Index("t_v_idx")
	if ix == nil {
		t.Fatalf("index missing")
	}
	var n int
	ix.SearchEq(catalog.IntVal(3), func(id int) bool {
		if h.Get(id)[1].I != 3 {
			t.Fatalf("index row mismatch")
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("found %d, want 10", n)
	}
}

func TestDatabaseMissingTablePanics(t *testing.T) {
	s := catalog.NewSchema("test")
	s.AddIndex(catalog.IndexDef{Name: "bad", Table: "ghost", Column: "x"})
	db := NewDatabase(s)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	db.BuildIndexes()
}
