// Package storage implements the physical layer of the engine substrate:
// page-structured heap tables and B+tree secondary indexes. It deliberately
// knows nothing about cost — it only exposes the physical quantities
// (pages, fanout, heights) that internal/engine counts and internal/dbenv
// turns into simulated time.
package storage

import (
	"fmt"

	"repro/internal/catalog"
)

// PageSize is the heap/index page size in bytes, matching PostgreSQL's 8KB
// default so page-count arithmetic lines up with the analytic cost model.
const PageSize = 8192

// pageHeader approximates per-page bookkeeping overhead.
const pageHeader = 192

// Heap is an append-only row store organized into fixed-size logical pages.
// RowIDs are dense offsets, so PageOf is pure arithmetic; that keeps the
// executor's page accounting exact without materializing page structures.
type Heap struct {
	Table *catalog.Table

	rows        []catalog.Row
	rowsPerPage int
}

// NewHeap creates an empty heap for the given table descriptor.
func NewHeap(t *catalog.Table) *Heap {
	w := t.RowWidth()
	if w <= 0 {
		w = 8
	}
	rpp := (PageSize - pageHeader) / w
	if rpp < 1 {
		rpp = 1
	}
	return &Heap{Table: t, rowsPerPage: rpp}
}

// Append stores a row and returns its RowID. The row must match the table
// arity; this is checked because generators are the only writers and an
// arity bug would silently corrupt every downstream experiment.
func (h *Heap) Append(r catalog.Row) int {
	if len(r) != len(h.Table.Columns) {
		panic(fmt.Sprintf("storage: row arity %d != table %q arity %d", len(r), h.Table.Name, len(h.Table.Columns)))
	}
	h.rows = append(h.rows, r)
	return len(h.rows) - 1
}

// Get returns the row at id. It panics on out-of-range ids — callers derive
// ids from indexes built over this same heap, so a miss is a program bug.
func (h *Heap) Get(id int) catalog.Row { return h.rows[id] }

// NumRows returns the stored row count.
func (h *Heap) NumRows() int { return len(h.rows) }

// RowsPerPage reports how many tuples fit one logical page.
func (h *Heap) RowsPerPage() int { return h.rowsPerPage }

// NumPages returns the heap size in pages (≥1 for a non-empty heap).
func (h *Heap) NumPages() int64 {
	if len(h.rows) == 0 {
		return 0
	}
	return int64((len(h.rows) + h.rowsPerPage - 1) / h.rowsPerPage)
}

// PageOf maps a RowID to its page number.
func (h *Heap) PageOf(id int) int64 { return int64(id / h.rowsPerPage) }

// Database binds heaps and indexes for one schema instance.
type Database struct {
	Schema  *catalog.Schema
	Heaps   map[string]*Heap
	Indexes map[string]*BTree // keyed by index name
}

// NewDatabase allocates heaps for every table in the schema. Indexes are
// built explicitly via BuildIndexes once data is loaded.
func NewDatabase(s *catalog.Schema) *Database {
	db := &Database{Schema: s, Heaps: make(map[string]*Heap), Indexes: make(map[string]*BTree)}
	for name, t := range s.Tables {
		db.Heaps[name] = NewHeap(t)
	}
	return db
}

// Heap returns the heap for the named table, or nil.
func (db *Database) Heap(table string) *Heap { return db.Heaps[table] }

// BuildIndexes materializes every index definition in the schema from the
// loaded heap data. Call after data loading.
func (db *Database) BuildIndexes() {
	for _, def := range db.Schema.Indexes {
		h := db.Heaps[def.Table]
		if h == nil {
			panic(fmt.Sprintf("storage: index %q references missing table %q", def.Name, def.Table))
		}
		ci := h.Table.ColIndex(def.Column)
		if ci < 0 {
			panic(fmt.Sprintf("storage: index %q references missing column %q", def.Name, def.Column))
		}
		bt := NewBTree()
		for id := 0; id < h.NumRows(); id++ {
			bt.Insert(h.Get(id)[ci], id)
		}
		db.Indexes[def.Name] = bt
	}
}

// Index returns the named index, or nil.
func (db *Database) Index(name string) *BTree { return db.Indexes[name] }
