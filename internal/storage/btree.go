package storage

import (
	"repro/internal/catalog"
)

// btreeOrder is the maximum number of keys per node. It is sized so that a
// leaf of (Value, RowID) entries roughly fills one 8KB page, making Height
// and LeafPages meaningful inputs to the I/O cost accounting.
const btreeOrder = 256

// BTree is a single-column B+tree secondary index mapping column values to
// heap RowIDs. Duplicate keys are allowed (non-unique indexes); entries for
// equal keys are kept in insertion order.
type BTree struct {
	root *btreeNode
	size int
}

type btreeNode struct {
	leaf     bool
	keys     []catalog.Value
	children []*btreeNode // interior: len(keys)+1
	rowIDs   []int        // leaf: parallel to keys
	next     *btreeNode   // leaf chain for range scans
}

// NewBTree returns an empty index.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{leaf: true}}
}

// Len returns the number of indexed entries.
func (t *BTree) Len() int { return t.size }

// Height returns the number of levels (1 for a leaf-only tree). The engine
// charges one random page access per level per probe.
func (t *BTree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// LeafPages approximates the number of leaf pages in the index.
func (t *BTree) LeafPages() int64 {
	if t.size == 0 {
		return 0
	}
	p := int64(t.size) / (btreeOrder / 2)
	if p < 1 {
		p = 1
	}
	return p
}

// Insert adds (key, rowID) to the index.
func (t *BTree) Insert(key catalog.Value, rowID int) {
	t.size++
	newChild, splitKey := t.root.insert(key, rowID)
	if newChild != nil {
		t.root = &btreeNode{
			keys:     []catalog.Value{splitKey},
			children: []*btreeNode{t.root, newChild},
		}
	}
}

// insert descends to the correct leaf; on overflow it splits and returns
// the new right sibling plus the separator key.
func (n *btreeNode) insert(key catalog.Value, rowID int) (*btreeNode, catalog.Value) {
	if n.leaf {
		pos := n.upperBound(key)
		n.keys = append(n.keys, catalog.Value{})
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = key
		n.rowIDs = append(n.rowIDs, 0)
		copy(n.rowIDs[pos+1:], n.rowIDs[pos:])
		n.rowIDs[pos] = rowID
		if len(n.keys) > btreeOrder {
			return n.splitLeaf()
		}
		return nil, catalog.Value{}
	}
	ci := n.upperBound(key)
	newChild, splitKey := n.children[ci].insert(key, rowID)
	if newChild == nil {
		return nil, catalog.Value{}
	}
	n.keys = append(n.keys, catalog.Value{})
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.keys) > btreeOrder {
		return n.splitInterior()
	}
	return nil, catalog.Value{}
}

// upperBound returns the index of the first key strictly greater than key
// (for leaves) or the child slot to descend into (for interiors).
func (n *btreeNode) upperBound(key catalog.Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].Compare(key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the index of the first key ≥ key.
func (n *btreeNode) lowerBound(key catalog.Value) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid].Compare(key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *btreeNode) splitLeaf() (*btreeNode, catalog.Value) {
	mid := len(n.keys) / 2
	right := &btreeNode{
		leaf:   true,
		keys:   append([]catalog.Value(nil), n.keys[mid:]...),
		rowIDs: append([]int(nil), n.rowIDs[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid]
	n.rowIDs = n.rowIDs[:mid]
	n.next = right
	return right, right.keys[0]
}

func (n *btreeNode) splitInterior() (*btreeNode, catalog.Value) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &btreeNode{
		keys:     append([]catalog.Value(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, sep
}

// SearchEq visits every rowID whose key equals key, in insertion order.
// The visitor returns false to stop early.
func (t *BTree) SearchEq(key catalog.Value, visit func(rowID int) bool) {
	t.Range(&key, &key, true, true, visit)
}

// Range visits rowIDs with keys in the interval defined by lo/hi (either
// may be nil for an open end) with inclusive flags. Visiting order is key
// order. The visitor returns false to stop.
func (t *BTree) Range(lo, hi *catalog.Value, loInc, hiInc bool, visit func(rowID int) bool) {
	n := t.root
	for !n.leaf {
		if lo == nil {
			n = n.children[0]
			continue
		}
		// Descend via lowerBound: duplicates equal to a separator key may
		// remain in the left sibling after a split, so the leftmost
		// occurrence of lo can live in the child *at* the separator slot.
		n = n.children[n.lowerBound(*lo)]
	}
	var pos int
	if lo != nil {
		if loInc {
			pos = n.lowerBound(*lo)
		} else {
			pos = n.upperBound(*lo)
		}
	}
	for n != nil {
		for ; pos < len(n.keys); pos++ {
			if hi != nil {
				c := n.keys[pos].Compare(*hi)
				if c > 0 || (c == 0 && !hiInc) {
					return
				}
			}
			if !visit(n.rowIDs[pos]) {
				return
			}
		}
		n = n.next
		pos = 0
	}
}

// CountRange returns the number of entries within the interval; used by
// tests and by the planner's index-selectivity sanity checks.
func (t *BTree) CountRange(lo, hi *catalog.Value, loInc, hiInc bool) int {
	var c int
	t.Range(lo, hi, loInc, hiInc, func(int) bool { c++; return true })
	return c
}
