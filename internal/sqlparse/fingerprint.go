package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
)

// This file is the normalization front end of the query-fingerprint cache
// (internal/qcache): Fingerprint maps every textual spelling of one query
// template to one canonical key, and the extracted literals let the
// cache's template tier re-bind a cached plan skeleton to a new literal
// vector (Query.BindLiterals) instead of re-parsing from scratch.

// Literal is one literal stripped out of a query during fingerprinting,
// in source order. Val is the parsed value exactly as the parser would
// have produced it; Raw is the source spelling (the literal-signature
// component — two spellings of the same value hash to distinct
// signatures, which costs a duplicate cache entry but can never alias
// two different queries).
type Literal struct {
	Val catalog.Value
	Raw string
	Str bool // string literal (Raw is the unescaped text)
}

// Signature folds a literal list into one cache-key component. Each
// literal is tagged with its kind and length-prefixed — framing by
// length rather than by a separator keeps the encoding injective even
// when a string literal contains the separator byte itself — so
// distinct literal vectors always produce distinct signatures and a
// (fingerprint, signature) pair identifies one exact query semantics.
func Signature(lits []Literal) string {
	if len(lits) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range lits {
		kind := byte('n')
		if l.Str {
			kind = 's'
		}
		fmt.Fprintf(&sb, "%c%d:", kind, len(l.Raw))
		sb.WriteString(l.Raw)
	}
	return sb.String()
}

// keywords is the grammar's keyword set; Fingerprint lowercases exactly
// these (identifiers keep their spelling, so two tables differing only in
// case cannot collide onto one fingerprint).
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true,
	"join": true, "inner": true, "on": true,
	"group": true, "order": true, "by": true, "limit": true,
	"desc": true, "asc": true,
	"between": true, "like": true, "in": true,
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// Fingerprint normalizes one SQL statement into its template form:
// keywords lowercased, literals stripped (each becomes a `?`), whitespace
// canonicalized to single spaces with SQL-ish punctuation spacing. It
// returns the normalized template plus the stripped literals in source
// order. Queries that differ only in literal values, keyword case, or
// whitespace share a fingerprint; any structural difference — one more IN
// element, a different column, an extra predicate — changes it.
//
// Fingerprint only lexes; a string that fingerprints successfully can
// still fail to parse. Callers fall back to the ordinary parse path on
// error, so the error text here never reaches users.
func Fingerprint(sql string) (string, []Literal, error) {
	toks, err := lex(sql)
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	var lits []Literal
	prev := token{kind: tokEOF}
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		text := t.text
		switch t.kind {
		case tokIdent:
			if lower := strings.ToLower(text); keywords[lower] {
				text = lower
			}
		case tokNumber:
			v, err := numberValue(text)
			if err != nil {
				return "", nil, fmt.Errorf("sqlparse: fingerprint: %w", err)
			}
			lits = append(lits, Literal{Val: v, Raw: text})
			text = "?"
		case tokString:
			lits = append(lits, Literal{Val: catalog.StrVal(t.text), Raw: t.text, Str: true})
			text = "?"
		}
		if sb.Len() > 0 && spaceBetween(prev, t) {
			sb.WriteByte(' ')
		}
		sb.WriteString(text)
		prev = t
	}
	return sb.String(), lits, nil
}

// aggFuncs are the function-like keywords; a '(' following one is a call
// and gets no space (`count(*)`), while a '(' after anything else is a
// list and does (`in (?, ?)`).
var aggFuncs = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

// spaceBetween decides canonical spacing: none around '.', none before
// ',', ')' and ';', none after '(', none between a function keyword and
// its '('. One exception keeps templates unambiguous: a number keeps
// its space before a following '.' — fused, the placeholder's literal
// would re-lex into the dot as one float ("0 ." vs "0."), so the
// template would not be a fixed point of normalization. Qualified
// names (ident '.' ident), the only '.' the grammar produces, stay
// tight.
func spaceBetween(prev, cur token) bool {
	if prev.kind == tokPunct && (prev.text == "." || prev.text == "(") {
		return false
	}
	if cur.kind == tokPunct {
		switch cur.text {
		case ".", ",", ")", ";":
			return cur.text == "." && prev.kind == tokNumber
		case "(":
			return !(prev.kind == tokIdent && aggFuncs[strings.ToLower(prev.text)])
		}
	}
	return true
}

// numberValue converts a number token to a Value exactly the way the
// parser's literal production does, so a template-tier rebind sees the
// same values a fresh parse would.
func numberValue(text string) (catalog.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return catalog.Value{}, err
		}
		return catalog.FloatVal(f), nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return catalog.Value{}, err
	}
	return catalog.IntVal(n), nil
}
