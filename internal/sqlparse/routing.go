package sqlparse

import "hash/fnv"

// RoutingKey is the distributed-serving routing identity of a query: its
// normalized fingerprint when the text lexes, the raw text otherwise.
// Routing on the fingerprint sends every literal variant of one template
// to the same replica, so that replica's template and feature cache
// tiers (internal/qcache) accumulate all of the template's traffic
// instead of each replica paying its own cold front half. The raw-text
// fallback keeps the key total: unlexable queries still route
// deterministically (the replica will then produce the authoritative
// parse error).
//
// The key is a pure function of the SQL text — two routers, or one
// router before and after a restart, always agree on it.
func RoutingKey(sql string) string {
	fp, _, err := Fingerprint(sql)
	if err != nil {
		return sql
	}
	return fp
}

// RoutingHash is the 64-bit FNV-1a hash of RoutingKey(sql) — the value
// the router's consistent-hash ring places on its keyspace.
func RoutingHash(sql string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(RoutingKey(sql)))
	return h.Sum64()
}
