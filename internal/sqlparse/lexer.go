// Package sqlparse implements the tokenizer, parser, and AST for the SQL
// subset used by all three benchmarks (TPC-H-style OLAP templates,
// job-light join queries, and Sysbench OLTP statements), as well as by the
// simplified templates of the paper's Algorithm 1:
//
//	SELECT list | COUNT(*) | AGG(col)
//	FROM t [alias] [, t2 | JOIN t2 ON a.x = b.y]...
//	WHERE col OP literal [AND ...]          OP ∈ =, <>, <, >, <=, >=, LIKE,
//	                                        IN (...), BETWEEN x AND y
//	GROUP BY cols  ORDER BY cols [DESC]  LIMIT n
//
// Join predicates may appear either in ON clauses or in the WHERE clause
// (implicit joins), matching how job-light queries are written.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // = <> < > <= >=
	tokPunct // ( ) , . * ;
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer converts SQL text into tokens. Keywords are returned as tokIdent;
// the parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '<' || c == '>' || c == '=' || c == '!':
			l.lexOp()
		case strings.ContainsRune("(),.*;", rune(c)):
			l.toks = append(l.toks, token{tokPunct, string(c), l.pos})
			l.pos++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	dots := 0
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			dots++
			if dots > 1 {
				return fmt.Errorf("sqlparse: malformed number at %d", start)
			}
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{tokString, sb.String(), start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at %d", start)
}

func (l *lexer) lexOp() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) {
		two := string(c) + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "<>", "!=":
			l.pos++
			if two == "!=" {
				two = "<>"
			}
			l.toks = append(l.toks, token{tokOp, two, start})
			return
		}
	}
	l.toks = append(l.toks, token{tokOp, string(c), start})
}
