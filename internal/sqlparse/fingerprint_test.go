package sqlparse

import (
	"testing"
)

func mustFingerprint(t *testing.T, sql string) (string, []Literal) {
	t.Helper()
	fp, lits, err := Fingerprint(sql)
	if err != nil {
		t.Fatalf("Fingerprint(%q): %v", sql, err)
	}
	return fp, lits
}

func TestFingerprintNormalization(t *testing.T) {
	cases := []struct {
		sql  string
		want string
		lits []string
	}{
		{
			sql:  "SELECT * FROM orders WHERE o_totalprice > 1000",
			want: "select * from orders where o_totalprice > ?",
			lits: []string{"1000"},
		},
		{
			// Keyword case and whitespace are canonicalized away.
			sql:  "select\t*   FROM orders\nWHERE o_totalprice>1000",
			want: "select * from orders where o_totalprice > ?",
			lits: []string{"1000"},
		},
		{
			sql:  "SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 5 AND 24.5 LIMIT 10",
			want: "select count(*) from lineitem where l_quantity between ? and ? limit ?",
			lits: []string{"5", "24.5", "10"},
		},
		{
			sql:  "SELECT c.c_name FROM customer c WHERE c.c_mktsegment IN ('BUILDING', 'AUTO')",
			want: "select c.c_name from customer c where c.c_mktsegment in (?, ?)",
			lits: []string{"BUILDING", "AUTO"},
		},
		{
			sql:  "SELECT * FROM t1 JOIN t2 ON t1.a = t2.b WHERE t1.x LIKE 'ab%'",
			want: "select * from t1 join t2 on t1.a = t2.b where t1.x like ?",
			lits: []string{"ab%"},
		},
	}
	for _, c := range cases {
		fp, lits := mustFingerprint(t, c.sql)
		if fp != c.want {
			t.Errorf("Fingerprint(%q) = %q, want %q", c.sql, fp, c.want)
		}
		if len(lits) != len(c.lits) {
			t.Fatalf("Fingerprint(%q) literals = %d, want %d", c.sql, len(lits), len(c.lits))
		}
		for i, l := range lits {
			if l.Raw != c.lits[i] {
				t.Errorf("Fingerprint(%q) literal %d = %q, want %q", c.sql, i, l.Raw, c.lits[i])
			}
		}
	}
}

// TestFingerprintCollisions pins the aliasing rules: literal values must
// collapse onto one fingerprint, while every structural difference —
// different column, different operator, different IN arity, extra
// conjunct, LIMIT presence — must separate.
func TestFingerprintCollisions(t *testing.T) {
	same := [][2]string{
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE a = 2"},
		{"SELECT * FROM t WHERE a = 1", "select  *  from t WHERE a=99"},
		{"SELECT * FROM t WHERE s = 'x'", "SELECT * FROM t WHERE s = 'yy'"},
		{"SELECT * FROM t WHERE a IN (1, 2)", "SELECT * FROM t WHERE a IN (7, 8)"},
		{"SELECT * FROM t LIMIT 5", "SELECT * FROM t LIMIT 500"},
		// A numeric literal and a string literal in the same slot share
		// the template; the literal signature still separates the entries.
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE a = 'one'"},
	}
	for _, p := range same {
		f1, _ := mustFingerprint(t, p[0])
		f2, _ := mustFingerprint(t, p[1])
		if f1 != f2 {
			t.Errorf("want collision:\n  %q -> %q\n  %q -> %q", p[0], f1, p[1], f2)
		}
	}
	diff := [][2]string{
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE b = 1"},
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE a > 1"},
		{"SELECT * FROM t WHERE a IN (1, 2)", "SELECT * FROM t WHERE a IN (1, 2, 3)"},
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE a = 1 AND b = 2"},
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE a = 1 LIMIT 3"},
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM T WHERE a = 1"}, // identifier case preserved
		{"SELECT COUNT(*) FROM t", "SELECT * FROM t"},
	}
	for _, p := range diff {
		f1, _ := mustFingerprint(t, p[0])
		f2, _ := mustFingerprint(t, p[1])
		if f1 == f2 {
			t.Errorf("want distinct fingerprints, both = %q:\n  %q\n  %q", f1, p[0], p[1])
		}
	}
}

func TestSignatureDistinguishesValues(t *testing.T) {
	sigOf := func(sql string) string {
		_, lits := mustFingerprint(t, sql)
		return Signature(lits)
	}
	if sigOf("SELECT * FROM t WHERE a = 1") == sigOf("SELECT * FROM t WHERE a = 2") {
		t.Fatal("signatures must differ for different literal values")
	}
	// Kind tagging: the number 1 and the string '1' must not alias.
	if sigOf("SELECT * FROM t WHERE a = 1") == sigOf("SELECT * FROM t WHERE a = '1'") {
		t.Fatal("signatures must differ across literal kinds")
	}
	if sigOf("SELECT * FROM t WHERE a = 5") != sigOf("SELECT * FROM t WHERE a   =   5") {
		t.Fatal("signature must ignore whitespace")
	}
	// Injectivity under adversarial content: a NUL (or any separator-ish
	// byte) inside a string literal must not let two different literal
	// vectors collapse onto one signature — the length prefix frames
	// each literal.
	if sigOf("SELECT * FROM t WHERE a = 'A\x00sB' AND b = 'C'") ==
		sigOf("SELECT * FROM t WHERE a = 'A' AND b = 'B\x00sC'") {
		t.Fatal("signatures must stay injective for literals containing NUL bytes")
	}
	if sigOf("SELECT * FROM t WHERE a = 'x1' AND b = '2'") ==
		sigOf("SELECT * FROM t WHERE a = 'x' AND b = '12'") {
		t.Fatal("signatures must not be boundary-ambiguous")
	}
	if Signature(nil) != "" {
		t.Fatal("empty literal vector must have empty signature")
	}
}

// TestBindLiteralsRoundTrip is the template-tier correctness property:
// binding query B's literals into query A's parsed skeleton (same
// fingerprint) reproduces B's own parse exactly.
func TestBindLiteralsRoundTrip(t *testing.T) {
	pairs := [][2]string{
		{
			"SELECT * FROM orders WHERE o_totalprice > 1000",
			"SELECT * FROM orders WHERE o_totalprice > 250.75",
		},
		{
			"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 5 AND 24 LIMIT 10",
			"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 1 AND 99 LIMIT 3",
		},
		{
			"SELECT * FROM t WHERE a IN (1, 2, 3) AND s LIKE 'x%'",
			"SELECT * FROM t WHERE a IN (9, 8, 7) AND s LIKE 'longer%'",
		},
		{
			"SELECT c.c_name FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_totalprice < 10",
			"SELECT c.c_name FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_totalprice < 88",
		},
	}
	for _, p := range pairs {
		fa, _ := mustFingerprint(t, p[0])
		fb, litsB := mustFingerprint(t, p[1])
		if fa != fb {
			t.Fatalf("test pair must share a fingerprint:\n  %q\n  %q", p[0], p[1])
		}
		skel, err := Parse(p[0])
		if err != nil {
			t.Fatal(err)
		}
		want, err := Parse(p[1])
		if err != nil {
			t.Fatal(err)
		}
		got := skel.Clone()
		if err := got.BindLiterals(litsB); err != nil {
			t.Fatalf("BindLiterals: %v", err)
		}
		if got.String() != want.String() {
			t.Errorf("bound skeleton = %q, want %q", got.String(), want.String())
		}
		// The skeleton itself must be untouched (clone isolation).
		orig, _ := Parse(p[0])
		if skel.String() != orig.String() {
			t.Errorf("skeleton mutated by bind: %q", skel.String())
		}
	}
}

func TestBindLiteralsMismatch(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE a = 1 AND b = 2")
	if err != nil {
		t.Fatal(err)
	}
	_, lits := mustFingerprint(t, "SELECT * FROM t WHERE a = 1")
	if err := q.Clone().BindLiterals(lits); err == nil {
		t.Fatal("want error for too few literals")
	}
	_, lits3 := mustFingerprint(t, "SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3")
	if err := q.Clone().BindLiterals(lits3); err == nil {
		t.Fatal("want error for too many literals")
	}
	// One extra literal binds LIMIT — but only an integer may.
	ql, err := Parse("SELECT * FROM t WHERE a = 1 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	_, badLimit := mustFingerprint(t, "SELECT * FROM t WHERE a = 1 LIMIT 2.5")
	if err := ql.Clone().BindLiterals(badLimit); err == nil {
		t.Fatal("want error for float LIMIT literal")
	}
	_, goodLimit := mustFingerprint(t, "SELECT * FROM t WHERE a = 7 LIMIT 42")
	bound := ql.Clone()
	if err := bound.BindLiterals(goodLimit); err != nil {
		t.Fatal(err)
	}
	if bound.Limit != 42 || bound.Preds[0].Args[0].I != 7 {
		t.Fatalf("bound limit=%d args=%v", bound.Limit, bound.Preds[0].Args)
	}
}
