package sqlparse

import (
	"fmt"

	"repro/internal/catalog"
)

// Clone deep-copies the query AST. The copy shares nothing mutable with
// the original: every slice (including per-predicate argument lists) is
// duplicated, so resolving, literal-coercing, or re-binding the clone
// never writes through to the source. The template tier of the query
// cache stores one immutable resolved skeleton per fingerprint and hands
// each hit a Clone to bind and plan.
func (q *Query) Clone() *Query {
	c := &Query{Limit: q.Limit}
	c.Select = append([]SelectItem(nil), q.Select...)
	c.Tables = append([]TableRef(nil), q.Tables...)
	c.Joins = append([]JoinCond(nil), q.Joins...)
	c.GroupBy = append([]ColRef(nil), q.GroupBy...)
	c.OrderBy = append([]OrderItem(nil), q.OrderBy...)
	c.Preds = make([]Predicate, len(q.Preds))
	for i, p := range q.Preds {
		c.Preds[i] = Predicate{Col: p.Col, Op: p.Op, Args: append([]catalog.Value(nil), p.Args...)}
	}
	return c
}

// BindLiterals splices a literal vector (as extracted by Fingerprint, in
// source order) into the query in place: predicate arguments first, in
// predicate order — the grammar guarantees WHERE-clause source order —
// then the LIMIT count when one more literal remains. The literal count
// must match the query's slots exactly; a mismatch (or a non-integer
// LIMIT) is an error, and callers treat it as a cache miss and re-parse.
//
// Binding the literals of query B into the skeleton of a same-fingerprint
// query A reproduces B's parsed AST exactly: a shared fingerprint implies
// an identical token structure, so the queries differ only in the literal
// values this function writes.
func (q *Query) BindLiterals(lits []Literal) error {
	i := 0
	for pi := range q.Preds {
		for ai := range q.Preds[pi].Args {
			if i >= len(lits) {
				return fmt.Errorf("sqlparse: bind: %d literals for more argument slots", len(lits))
			}
			q.Preds[pi].Args[ai] = lits[i].Val
			i++
		}
	}
	switch {
	case i == len(lits):
		return nil
	case i+1 == len(lits) && q.Limit != -1:
		// The skeleton carries an explicit LIMIT, so the trailing literal
		// is its count. (A skeleton parsed from `LIMIT -1` is
		// indistinguishable from no LIMIT and lands in the mismatch arm —
		// the caller re-parses, trading a cache miss for correctness.)
		v := lits[i].Val
		if v.IsStr || v.IsFloat || v.Null {
			return fmt.Errorf("sqlparse: bind: LIMIT wants an integer, got %q", lits[i].Raw)
		}
		q.Limit = int(v.I)
		return nil
	default:
		return fmt.Errorf("sqlparse: bind: %d literals for %d argument slots", len(lits), i)
	}
}
