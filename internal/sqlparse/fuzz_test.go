package sqlparse

import (
	"strconv"
	"strings"
	"testing"
)

// Native fuzz targets for the cache's normalization front end. The
// properties here are the ones the query cache's correctness rests on:
// Fingerprint must be idempotent (a template re-fingerprints to
// itself), placeholder and literal counts must agree, and the
// Clone+BindLiterals path must reproduce a parsed query exactly from
// its own literal vector — the template tier serves plans rebuilt this
// way. CI runs each target for a short -fuzztime on every push; the
// seed corpus is the collision/normalization test corpus.

// fuzzSeeds is the seed corpus: every spelling the deterministic tests
// exercise, plus shapes that historically trip lexers (escaped quotes,
// NUL bytes, negative and fractional numbers, LIMIT -1).
var fuzzSeeds = []string{
	"SELECT * FROM orders WHERE o_totalprice > 1000",
	"select\t*   FROM orders\nWHERE o_totalprice>1000",
	"SELECT COUNT(*) FROM lineitem WHERE l_quantity BETWEEN 5 AND 24.5 LIMIT 10",
	"SELECT c.c_name FROM customer c WHERE c.c_mktsegment IN ('BUILDING', 'AUTO')",
	"SELECT * FROM t1 JOIN t2 ON t1.a = t2.b WHERE t1.x LIKE 'ab%'",
	"SELECT * FROM t WHERE a = 1",
	"select  *  from t WHERE a=99",
	"SELECT * FROM t WHERE s = 'x'",
	"SELECT * FROM t WHERE a IN (1, 2)",
	"SELECT * FROM t LIMIT 5",
	"SELECT * FROM t WHERE a = 'one'",
	"SELECT * FROM t WHERE a = 1 AND b = 2",
	"SELECT * FROM T WHERE a = 1",
	"SELECT COUNT(*) FROM t",
	"SELECT * FROM t WHERE a = 'don''t' AND b = 'A\x00sB'",
	"SELECT * FROM t WHERE a = -5 AND b < -2.75",
	"SELECT k FROM sbtest1 WHERE k < 9 ORDER BY k LIMIT 3",
	"SELECT * FROM t WHERE a = 1 LIMIT -1",
	"SELECT avg(x) FROM t GROUP BY y ORDER BY y DESC",
	"SELECT * FROM t WHERE s LIKE '%?%'",
}

// respliceLiterals rebuilds SQL text from a fingerprint template and
// its literal vector: each `?` placeholder is replaced by the
// corresponding literal's source spelling (strings re-quoted with ”
// escaping). Because `?` is not lexable, every `?` in a fingerprint is
// a placeholder, so the split is exact.
func respliceLiterals(t *testing.T, fp string, lits []Literal) string {
	t.Helper()
	parts := strings.Split(fp, "?")
	if len(parts) != len(lits)+1 {
		t.Fatalf("fingerprint %q has %d placeholders for %d literals", fp, len(parts)-1, len(lits))
	}
	var sb strings.Builder
	for i, part := range parts {
		sb.WriteString(part)
		if i < len(lits) {
			if lits[i].Str {
				sb.WriteByte('\'')
				sb.WriteString(strings.ReplaceAll(lits[i].Raw, "'", "''"))
				sb.WriteByte('\'')
			} else {
				sb.WriteString(lits[i].Raw)
			}
		}
	}
	return sb.String()
}

// FuzzFingerprint asserts, for every input the fuzzer invents:
//
//   - no panic, on any byte sequence;
//   - placeholder count == extracted literal count;
//   - idempotence: splicing the literals back into the template and
//     re-fingerprinting reproduces the same template and the same
//     literal vector (so a fingerprint is a fixed point of
//     normalization — two spellings cannot normalize to templates that
//     themselves normalize differently);
//   - for inputs that also parse: binding the query's own literal
//     vector into a clone of its AST reproduces the AST exactly, and
//     never mutates the skeleton (the template-tier rebind contract).
func FuzzFingerprint(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		fp, lits, err := Fingerprint(sql)
		if err != nil {
			// Unlexable input: the cache falls back to the parse path,
			// whose own error is authoritative. Nothing more to check.
			return
		}
		respliced := respliceLiterals(t, fp, lits)
		fp2, lits2, err := Fingerprint(respliced)
		if err != nil {
			t.Fatalf("resplice of %q does not re-fingerprint: %v (template %q)", sql, err, fp)
		}
		if fp2 != fp {
			t.Fatalf("not idempotent: %q -> %q, resplice -> %q", sql, fp, fp2)
		}
		if len(lits2) != len(lits) {
			t.Fatalf("literal count changed across resplice: %d -> %d", len(lits), len(lits2))
		}
		for i := range lits {
			if lits2[i].Raw != lits[i].Raw || lits2[i].Str != lits[i].Str {
				t.Fatalf("literal %d changed across resplice: %+v -> %+v", i, lits[i], lits2[i])
			}
		}
		if Signature(lits) != Signature(lits2) {
			t.Fatalf("signature changed across resplice")
		}

		q, perr := Parse(sql)
		if perr != nil {
			return
		}
		before := q.String()
		clone := q.Clone()
		if berr := clone.BindLiterals(lits); berr == nil {
			if clone.String() != before {
				t.Fatalf("Clone+BindLiterals did not round-trip:\n  query %q\n  bound %q", before, clone.String())
			}
		}
		// Bind (success or failure) must never write through the clone
		// into the source AST.
		if q.String() != before {
			t.Fatalf("BindLiterals on a clone mutated the source: %q -> %q", before, q.String())
		}
	})
}

// decodeSignature inverts Signature's framing: kind byte, decimal
// length, ':', then exactly that many raw bytes. Signature is injective
// iff this decode round-trips, which is what the fuzz target asserts.
func decodeSignature(sig string) ([]Literal, bool) {
	var out []Literal
	i := 0
	for i < len(sig) {
		if sig[i] != 'n' && sig[i] != 's' {
			return nil, false
		}
		isStr := sig[i] == 's'
		i++
		j := i
		for j < len(sig) && sig[j] != ':' {
			if sig[j] < '0' || sig[j] > '9' {
				return nil, false
			}
			j++
		}
		if j == i || j == len(sig) {
			return nil, false
		}
		n, err := strconv.Atoi(sig[i:j])
		if err != nil || j+1+n > len(sig) {
			return nil, false
		}
		out = append(out, Literal{Raw: sig[j+1 : j+1+n], Str: isStr})
		i = j + 1 + n
	}
	return out, true
}

// FuzzSignature asserts the cache-key encoding is injective on
// arbitrary literal vectors: no panic, the signature decodes back to
// exactly the (kind, raw) sequence that produced it — however
// adversarial the raw bytes (separators, digits, NULs, colons) — and a
// prefix of the vector always yields a prefix of the signature.
func FuzzSignature(f *testing.F) {
	f.Add("1", false, "x", true)
	f.Add("", true, "", false)
	f.Add("n3:ab", false, ":", true)      // raw bytes that mimic the framing
	f.Add("A\x00sB", true, "don't", true) // NULs and quotes
	f.Add("-24.5", false, "12", true)     // digit strings across kinds
	f.Fuzz(func(t *testing.T, r1 string, s1 bool, r2 string, s2 bool) {
		lits := []Literal{{Raw: r1, Str: s1}, {Raw: r2, Str: s2}}
		sig := Signature(lits)
		dec, ok := decodeSignature(sig)
		if !ok {
			t.Fatalf("signature %q is not decodable", sig)
		}
		if len(dec) != len(lits) {
			t.Fatalf("decoded %d literals, want %d (sig %q)", len(dec), len(lits), sig)
		}
		for i := range lits {
			if dec[i].Raw != lits[i].Raw || dec[i].Str != lits[i].Str {
				t.Fatalf("literal %d: decoded %+v != %+v (sig %q)", i, dec[i], lits[i], sig)
			}
		}
		if prefix := Signature(lits[:1]); !strings.HasPrefix(sig, prefix) {
			t.Fatalf("signature of a prefix (%q) is not a prefix of the signature (%q)", prefix, sig)
		}
		if Signature(nil) != "" {
			t.Fatal("empty vector must have empty signature")
		}
	})
}
