package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
)

// Parse tokenizes and parses one SELECT statement.
func Parse(sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("sqlparse: %w (near position %d in %q)", err, p.cur().pos, truncate(sql))
	}
	return q, nil
}

// MustParse parses or panics; for statically known query templates.
func MustParse(sql string) *Query {
	q, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return q
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:120] + "…"
	}
	return s
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// kw reports whether the current token is the given keyword (case-insensitive)
// and consumes it if so.
func (p *parser) kw(word string) bool {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, word) {
		p.i++
		return true
	}
	return false
}

// peekKw reports whether the current token is the keyword, without consuming.
func (p *parser) peekKw(word string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, word)
}

func (p *parser) punct(s string) bool {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("expected %q, got %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Limit: -1}
	if !p.kw("select") {
		return nil, fmt.Errorf("expected SELECT, got %q", p.cur().text)
	}
	if err := p.parseSelectList(q); err != nil {
		return nil, err
	}
	if !p.kw("from") {
		return nil, fmt.Errorf("expected FROM, got %q", p.cur().text)
	}
	if err := p.parseFrom(q); err != nil {
		return nil, err
	}
	if p.kw("where") {
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	if p.kw("group") {
		if !p.kw("by") {
			return nil, fmt.Errorf("expected BY after GROUP")
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.kw("order") {
		if !p.kw("by") {
			return nil, fmt.Errorf("expected BY after ORDER")
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.kw("desc") {
				item.Desc = true
			} else {
				p.kw("asc")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.kw("limit") {
		if p.cur().kind != tokNumber {
			return nil, fmt.Errorf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return nil, err
		}
		q.Limit = n
	}
	p.punct(";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("trailing input %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) parseSelectList(q *Query) error {
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		q.Select = append(q.Select, item)
		if !p.punct(",") {
			return nil
		}
	}
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.punct("*") {
		return SelectItem{Star: true}, nil
	}
	if p.cur().kind != tokIdent {
		return SelectItem{}, fmt.Errorf("expected select item, got %q", p.cur().text)
	}
	// Aggregate?
	for _, agg := range []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax} {
		if !p.peekKw(string(agg)) {
			continue
		}
		if p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
			p.next() // agg name
			p.next() // (
			if p.punct("*") {
				if agg != AggCount {
					return SelectItem{}, fmt.Errorf("%s(*) not supported", agg)
				}
				if err := p.expectPunct(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: AggCount}, nil
			}
			c, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectPunct(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Col: c}, nil
		}
	}
	c, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c}, nil
}

func (p *parser) parseFrom(q *Query) error {
	for {
		if p.cur().kind != tokIdent {
			return fmt.Errorf("expected table name, got %q", p.cur().text)
		}
		name := p.next().text
		ref := TableRef{Name: name, Alias: name}
		// Optional alias: a bare identifier that is not a clause keyword.
		if p.cur().kind == tokIdent && !p.peekAnyKw("join", "inner", "on", "where", "group", "order", "limit") {
			ref.Alias = p.next().text
		}
		q.Tables = append(q.Tables, ref)

		switch {
		case p.punct(","):
			continue
		case p.kw("inner"), p.peekKw("join"):
			p.kw("join")
			if err := p.parseJoinTail(q); err != nil {
				return err
			}
			// parseJoinTail loops over chained JOINs itself.
			return nil
		default:
			return nil
		}
	}
}

func (p *parser) peekAnyKw(words ...string) bool {
	for _, w := range words {
		if p.peekKw(w) {
			return true
		}
	}
	return false
}

// parseJoinTail parses "t2 [alias] ON a.x = b.y [JOIN ...]*".
func (p *parser) parseJoinTail(q *Query) error {
	for {
		if p.cur().kind != tokIdent {
			return fmt.Errorf("expected joined table, got %q", p.cur().text)
		}
		name := p.next().text
		ref := TableRef{Name: name, Alias: name}
		if p.cur().kind == tokIdent && !p.peekAnyKw("join", "inner", "on", "where", "group", "order", "limit") {
			ref.Alias = p.next().text
		}
		q.Tables = append(q.Tables, ref)
		if !p.kw("on") {
			return fmt.Errorf("expected ON after JOIN %s", name)
		}
		l, err := p.parseColRef()
		if err != nil {
			return err
		}
		if !(p.cur().kind == tokOp && p.cur().text == "=") {
			return fmt.Errorf("expected = in join condition")
		}
		p.next()
		r, err := p.parseColRef()
		if err != nil {
			return err
		}
		q.Joins = append(q.Joins, JoinCond{Left: l, Right: r})
		if p.kw("inner") || p.peekKw("join") {
			p.kw("join")
			continue
		}
		return nil
	}
}

func (p *parser) parseWhere(q *Query) error {
	for {
		if err := p.parseCondition(q); err != nil {
			return err
		}
		if !p.kw("and") {
			return nil
		}
	}
}

// parseCondition parses one conjunct: either a join condition col = col or
// a predicate col OP literal(s).
func (p *parser) parseCondition(q *Query) error {
	col, err := p.parseColRef()
	if err != nil {
		return err
	}
	switch {
	case p.kw("between"):
		lo, err := p.parseLiteral()
		if err != nil {
			return err
		}
		if !p.kw("and") {
			return fmt.Errorf("expected AND in BETWEEN")
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return err
		}
		q.Preds = append(q.Preds, Predicate{Col: col, Op: OpBetween, Args: []catalog.Value{lo, hi}})
		return nil
	case p.kw("like"):
		v, err := p.parseLiteral()
		if err != nil {
			return err
		}
		q.Preds = append(q.Preds, Predicate{Col: col, Op: OpLike, Args: []catalog.Value{v}})
		return nil
	case p.kw("in"):
		if err := p.expectPunct("("); err != nil {
			return err
		}
		var args []catalog.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return err
			}
			args = append(args, v)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		q.Preds = append(q.Preds, Predicate{Col: col, Op: OpIn, Args: args})
		return nil
	}
	if p.cur().kind != tokOp {
		return fmt.Errorf("expected comparison operator, got %q", p.cur().text)
	}
	op := CmpOp(p.next().text)
	// col = col → join condition (only for =).
	if p.cur().kind == tokIdent && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "." {
		r, err := p.parseColRef()
		if err != nil {
			return err
		}
		if op != OpEq {
			return fmt.Errorf("non-equi joins unsupported (%s %s %s)", col, op, r)
		}
		q.Joins = append(q.Joins, JoinCond{Left: col, Right: r})
		return nil
	}
	v, err := p.parseLiteral()
	if err != nil {
		return err
	}
	q.Preds = append(q.Preds, Predicate{Col: col, Op: op, Args: []catalog.Value{v}})
	return nil
}

func (p *parser) parseColRef() (ColRef, error) {
	if p.cur().kind != tokIdent {
		return ColRef{}, fmt.Errorf("expected column, got %q", p.cur().text)
	}
	first := p.next().text
	if p.punct(".") {
		if p.cur().kind != tokIdent {
			return ColRef{}, fmt.Errorf("expected column after %q.", first)
		}
		return ColRef{Table: first, Column: p.next().text}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *parser) parseLiteral() (catalog.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return numberValue(t.text)
	case tokString:
		p.next()
		return catalog.StrVal(t.text), nil
	}
	return catalog.Value{}, fmt.Errorf("expected literal, got %q", t.text)
}
