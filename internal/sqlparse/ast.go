package sqlparse

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// ColRef names a column, optionally qualified. Table holds the alias as
// written; Resolve rewrites it to the real table name.
type ColRef struct {
	Table  string
	Column string
}

// String renders the reference in SQL form.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// AggFunc enumerates the aggregate functions the engine supports.
type AggFunc string

// Supported aggregates.
const (
	AggNone  AggFunc = ""
	AggCount AggFunc = "count"
	AggSum   AggFunc = "sum"
	AggAvg   AggFunc = "avg"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
)

// SelectItem is one output column: a star, a plain column, or an aggregate.
type SelectItem struct {
	Star bool
	Agg  AggFunc // AggNone for plain columns
	Col  ColRef  // empty for COUNT(*)
}

// TableRef is one FROM-clause entry.
type TableRef struct {
	Name  string
	Alias string // equals Name when no alias given
}

// JoinCond is one equi-join predicate left = right.
type JoinCond struct {
	Left, Right ColRef
}

// CmpOp enumerates predicate comparison operators. The keyword set matches
// the paper's Table II ("">, like, =, <, in, etc.").
type CmpOp string

// Supported comparison operators.
const (
	OpEq      CmpOp = "="
	OpNe      CmpOp = "<>"
	OpLt      CmpOp = "<"
	OpGt      CmpOp = ">"
	OpLe      CmpOp = "<="
	OpGe      CmpOp = ">="
	OpLike    CmpOp = "like"
	OpIn      CmpOp = "in"
	OpBetween CmpOp = "between"
)

// AllOps lists every comparison operator; Algorithm 1 draws random
// operators from this set when instantiating simplified templates.
var AllOps = []CmpOp{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe, OpIn, OpBetween}

// Predicate is one conjunct of the WHERE clause: Col Op Args. BETWEEN
// carries two args, IN carries one or more, the rest exactly one.
type Predicate struct {
	Col  ColRef
	Op   CmpOp
	Args []catalog.Value
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

// Query is the parsed AST of one SELECT statement.
type Query struct {
	Select  []SelectItem
	Tables  []TableRef
	Joins   []JoinCond
	Preds   []Predicate
	GroupBy []ColRef
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// AliasMap returns alias → table name for every FROM entry.
func (q *Query) AliasMap() map[string]string {
	m := make(map[string]string, len(q.Tables))
	for _, t := range q.Tables {
		m[t.Alias] = t.Name
	}
	return m
}

// Resolve rewrites every ColRef against the schema: aliases are replaced by
// real table names and unqualified columns are bound to the unique table
// containing them. It returns an error for unknown tables/columns and
// ambiguous unqualified references.
func (q *Query) Resolve(s *catalog.Schema) error {
	aliases := q.AliasMap()
	for i := range q.Tables {
		if s.Table(q.Tables[i].Name) == nil {
			return fmt.Errorf("sqlparse: unknown table %q", q.Tables[i].Name)
		}
	}
	fix := func(c *ColRef) error {
		if c.Table != "" {
			real, ok := aliases[c.Table]
			if !ok {
				// Maybe already a real name used directly.
				if s.Table(c.Table) == nil {
					return fmt.Errorf("sqlparse: unknown alias %q", c.Table)
				}
				real = c.Table
			}
			c.Table = real
			if s.Table(real).ColIndex(c.Column) < 0 {
				return fmt.Errorf("sqlparse: unknown column %s.%s", real, c.Column)
			}
			return nil
		}
		var owner string
		for _, t := range q.Tables {
			if s.Table(t.Name).ColIndex(c.Column) >= 0 {
				if owner != "" && owner != t.Name {
					return fmt.Errorf("sqlparse: ambiguous column %q", c.Column)
				}
				owner = t.Name
			}
		}
		if owner == "" {
			return fmt.Errorf("sqlparse: unknown column %q", c.Column)
		}
		c.Table = owner
		return nil
	}
	for i := range q.Select {
		if !q.Select[i].Star && !(q.Select[i].Agg == AggCount && q.Select[i].Col.Column == "") {
			if err := fix(&q.Select[i].Col); err != nil {
				return err
			}
		}
	}
	for i := range q.Joins {
		if err := fix(&q.Joins[i].Left); err != nil {
			return err
		}
		if err := fix(&q.Joins[i].Right); err != nil {
			return err
		}
	}
	for i := range q.Preds {
		if err := fix(&q.Preds[i].Col); err != nil {
			return err
		}
	}
	for i := range q.GroupBy {
		if err := fix(&q.GroupBy[i]); err != nil {
			return err
		}
	}
	for i := range q.OrderBy {
		if err := fix(&q.OrderBy[i].Col); err != nil {
			return err
		}
	}
	return nil
}

// String re-renders the query as SQL (used by workload generators to emit
// query text and by tests to round-trip).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case s.Star:
			sb.WriteString("*")
		case s.Agg == AggCount && s.Col.Column == "":
			sb.WriteString("COUNT(*)")
		case s.Agg != AggNone:
			fmt.Fprintf(&sb, "%s(%s)", strings.ToUpper(string(s.Agg)), s.Col)
		default:
			sb.WriteString(s.Col.String())
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range q.Tables {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name)
		if t.Alias != t.Name {
			sb.WriteString(" " + t.Alias)
		}
	}
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, fmt.Sprintf("%s = %s", j.Left, j.Right))
	}
	for _, p := range q.Preds {
		conds = append(conds, p.String())
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if len(q.GroupBy) > 0 {
		cols := make([]string, len(q.GroupBy))
		for i, c := range q.GroupBy {
			cols[i] = c.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(cols, ", "))
	}
	if len(q.OrderBy) > 0 {
		cols := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			cols[i] = o.Col.String()
			if o.Desc {
				cols[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(cols, ", "))
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// String renders one predicate as SQL.
func (p Predicate) String() string {
	lit := func(v catalog.Value) string {
		if v.IsStr {
			return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
		}
		return v.String()
	}
	switch p.Op {
	case OpBetween:
		return fmt.Sprintf("%s BETWEEN %s AND %s", p.Col, lit(p.Args[0]), lit(p.Args[1]))
	case OpIn:
		parts := make([]string, len(p.Args))
		for i, a := range p.Args {
			parts[i] = lit(a)
		}
		return fmt.Sprintf("%s IN (%s)", p.Col, strings.Join(parts, ", "))
	case OpLike:
		return fmt.Sprintf("%s LIKE %s", p.Col, lit(p.Args[0]))
	default:
		return fmt.Sprintf("%s %s %s", p.Col, p.Op, lit(p.Args[0]))
	}
}
