package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse("SELECT * FROM orders WHERE o_totalprice > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Select[0].Star {
		t.Fatalf("expected star select")
	}
	if len(q.Tables) != 1 || q.Tables[0].Name != "orders" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if len(q.Preds) != 1 || q.Preds[0].Op != OpGt || q.Preds[0].Args[0].I != 1000 {
		t.Fatalf("preds = %v", q.Preds)
	}
	if q.Limit != -1 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	q, err := Parse("SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 24 GROUP BY l_returnflag ORDER BY l_returnflag")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Agg != AggCount || q.Select[0].Col.Column != "" {
		t.Fatalf("first item = %+v", q.Select[0])
	}
	if q.Select[1].Agg != AggSum || q.Select[1].Col.Column != "l_extendedprice" {
		t.Fatalf("second item = %+v", q.Select[1])
	}
	if len(q.GroupBy) != 1 || len(q.OrderBy) != 1 {
		t.Fatalf("group/order = %v / %v", q.GroupBy, q.OrderBy)
	}
}

func TestParseExplicitJoin(t *testing.T) {
	q, err := Parse("SELECT * FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey WHERE o_totalprice >= 5 ORDER BY orders.o_orderdate DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 || len(q.Joins) != 1 {
		t.Fatalf("tables=%v joins=%v", q.Tables, q.Joins)
	}
	j := q.Joins[0]
	if j.Left.String() != "orders.o_orderkey" || j.Right.String() != "lineitem.l_orderkey" {
		t.Fatalf("join = %v", j)
	}
	if !q.OrderBy[0].Desc {
		t.Fatalf("expected DESC")
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseChainedJoins(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y WHERE a.z = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 3 || len(q.Joins) != 2 || len(q.Preds) != 1 {
		t.Fatalf("tables=%d joins=%d preds=%d", len(q.Tables), len(q.Joins), len(q.Preds))
	}
}

func TestParseImplicitJoinWithAliases(t *testing.T) {
	// job-light style.
	q, err := Parse("SELECT COUNT(*) FROM title t, movie_info mi WHERE t.id = mi.movie_id AND t.production_year > 2005")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 {
		t.Fatalf("tables = %v", q.Tables)
	}
	if q.Tables[0].Alias != "t" || q.Tables[1].Alias != "mi" {
		t.Fatalf("aliases = %v", q.Tables)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %v (implicit join not detected)", q.Joins)
	}
	if len(q.Preds) != 1 || q.Preds[0].Col.Table != "t" {
		t.Fatalf("preds = %v", q.Preds)
	}
}

func TestParseInBetweenLike(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 10 AND 20 AND c LIKE 'abc%' AND d <> 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 4 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	if q.Preds[0].Op != OpIn || len(q.Preds[0].Args) != 3 {
		t.Fatalf("IN parsed wrong: %v", q.Preds[0])
	}
	if q.Preds[1].Op != OpBetween || q.Preds[1].Args[1].I != 20 {
		t.Fatalf("BETWEEN parsed wrong: %v", q.Preds[1])
	}
	if q.Preds[2].Op != OpLike || q.Preds[2].Args[0].S != "abc%" {
		t.Fatalf("LIKE parsed wrong: %v", q.Preds[2])
	}
	if q.Preds[3].Op != OpNe {
		t.Fatalf("<> parsed wrong: %v", q.Preds[3])
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE s = 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Args[0].S != "O'Brien" {
		t.Fatalf("escape = %q", q.Preds[0].Args[0].S)
	}
}

func TestParseNegativeAndFloatLiterals(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE a > -5 AND b < 3.14")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Args[0].I != -5 {
		t.Fatalf("negative literal = %v", q.Preds[0].Args[0])
	}
	if q.Preds[1].Args[0].I != 314 {
		t.Fatalf("float literal = %v (scaled)", q.Preds[1].Args[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE t SET x = 1",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a >",
		"SELECT * FROM t WHERE a BETWEEN 1",
		"SELECT * FROM t WHERE s = 'unterminated",
		"SELECT * FROM t GROUP",
		"SELECT * FROM a JOIN b",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t WHERE a = 1 garbage",
		"SELECT * FROM t WHERE a.b < c.d",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", sql)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MustParse("not sql")
}

func testSchema() *catalog.Schema {
	s := catalog.NewSchema("test")
	s.AddTable(catalog.NewTable("orders",
		catalog.Column{Name: "o_orderkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "o_totalprice", Type: catalog.FloatCol, Width: 8},
	))
	s.AddTable(catalog.NewTable("lineitem",
		catalog.Column{Name: "l_orderkey", Type: catalog.IntCol, Width: 8},
		catalog.Column{Name: "l_quantity", Type: catalog.IntCol, Width: 8},
	))
	return s
}

func TestResolveAliasesAndUnqualified(t *testing.T) {
	s := testSchema()
	q := MustParse("SELECT COUNT(*) FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey AND o_totalprice > 100 AND l_quantity < 5")
	if err := q.Resolve(s); err != nil {
		t.Fatal(err)
	}
	if q.Joins[0].Left.Table != "orders" || q.Joins[0].Right.Table != "lineitem" {
		t.Fatalf("join resolution: %v", q.Joins[0])
	}
	if q.Preds[0].Col.Table != "orders" || q.Preds[1].Col.Table != "lineitem" {
		t.Fatalf("pred resolution: %v", q.Preds)
	}
}

func TestResolveErrors(t *testing.T) {
	s := testSchema()
	cases := []string{
		"SELECT * FROM ghost",
		"SELECT * FROM orders WHERE ghost_col = 1",
		"SELECT * FROM orders WHERE x.o_orderkey = 1",
		"SELECT * FROM orders o WHERE o.nope = 1",
	}
	for _, sql := range cases {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if err := q.Resolve(s); err == nil {
			t.Errorf("Resolve(%q) should fail", sql)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM t WHERE a = 1",
		"SELECT COUNT(*) FROM a, b WHERE a.x = b.y AND a.z IN (1, 2)",
		"SELECT SUM(v) FROM t WHERE a BETWEEN 1 AND 5 GROUP BY g ORDER BY g DESC LIMIT 3",
		"SELECT * FROM t WHERE s LIKE 'x%'",
	}
	for _, sql := range queries {
		q1 := MustParse(sql)
		rendered := q1.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, sql, err)
		}
		if q2.String() != rendered {
			t.Errorf("round trip unstable:\n  1: %s\n  2: %s", rendered, q2.String())
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select count(*) from t where a between 1 and 2 order by a desc")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || !q.OrderBy[0].Desc {
		t.Fatalf("case-insensitive parse wrong: %+v", q)
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{Col: ColRef{Table: "t", Column: "c"}, Op: OpIn, Args: []catalog.Value{catalog.IntVal(1), catalog.StrVal("a'b")}}
	got := p.String()
	if !strings.Contains(got, "IN (1, 'a''b')") {
		t.Fatalf("Predicate.String = %q", got)
	}
}
