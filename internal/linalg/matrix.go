// Package linalg provides the small dense linear-algebra kernel used by the
// feature-snapshot regression (least squares over logical cost formulas) and
// by the feature-reduction score computations.
//
// Matrices are dense, row-major float64. The package is deliberately tiny:
// QCFE only needs matrix products, transposes, and a robust least-squares
// solver for systems with a handful of unknowns (the cost coefficients
// c0..c3 of the paper's Table I).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: got %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// RowView returns row i as a view into the matrix's backing array. Writes
// through the view mutate the matrix; the batched neural-network paths use
// views to hand per-sample slices to scalar code without copying.
func (m *Matrix) RowView(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: SetRow got %d values, want %d", len(v), m.Cols))
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Solve solves the square system a·x = b by Gaussian elimination with
// partial pivoting. It returns an error when the system is singular to
// working precision.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: Solve wants square system, got %dx%d with rhs %d", a.Rows, a.Cols, len(b))
	}
	// Augmented working copies.
	aw := a.Clone()
	bw := make([]float64, n)
	copy(bw, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aw.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aw.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				aw.Data[col*n+j], aw.Data[pivot*n+j] = aw.Data[pivot*n+j], aw.Data[col*n+j]
			}
			bw[col], bw[pivot] = bw[pivot], bw[col]
		}
		pv := aw.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aw.At(r, col) / pv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aw.Data[r*n+j] -= f * aw.Data[col*n+j]
			}
			bw[r] -= f * bw[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := bw[i]
		for j := i + 1; j < n; j++ {
			s -= aw.At(i, j) * x[j]
		}
		x[i] = s / aw.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min_x ‖A·x − y‖² via ridge-regularized normal
// equations (AᵀA + λI)x = Aᵀy. A tiny λ keeps the system well conditioned
// when operator samples are collinear (e.g. a scan whose cardinality never
// varies), which happens routinely when fitting feature snapshots from
// small template workloads.
func LeastSquares(a *Matrix, y []float64) ([]float64, error) {
	if a.Rows != len(y) {
		return nil, fmt.Errorf("linalg: LeastSquares rows %d != targets %d", a.Rows, len(y))
	}
	if a.Rows == 0 || a.Cols == 0 {
		return nil, fmt.Errorf("linalg: empty system")
	}
	at := a.T()
	ata := at.Mul(a)
	// Per-column relative ridge: each diagonal entry grows by a tiny
	// fraction of itself (plus an absolute floor for all-zero columns).
	// Scaling per column keeps the regularization unit-free — design
	// matrices here mix cardinality columns (~1e5) with intercept columns
	// (1), and a shared ridge would crush the small ones.
	for i := 0; i < ata.Rows; i++ {
		ata.Set(i, i, ata.At(i, i)*(1+1e-9)+1e-10)
	}
	aty := at.MulVec(y)
	return Solve(ata, aty)
}

// LeastSquaresNonNegative solves least squares and clamps negative
// coefficients to zero, refitting the remaining ones. Cost coefficients are
// physically non-negative (time per page, time per tuple); a plain LS fit
// on noisy samples can cross zero, which would make the snapshot
// meaningless as a feature. The method is the classical active-set NNLS
// loop specialised to the few-variable systems used here.
func LeastSquaresNonNegative(a *Matrix, y []float64) ([]float64, error) {
	active := make([]bool, a.Cols) // true = clamped to zero
	for iter := 0; iter <= a.Cols; iter++ {
		// Build reduced design matrix over free columns.
		free := make([]int, 0, a.Cols)
		for j := 0; j < a.Cols; j++ {
			if !active[j] {
				free = append(free, j)
			}
		}
		if len(free) == 0 {
			return make([]float64, a.Cols), nil
		}
		red := NewMatrix(a.Rows, len(free))
		for i := 0; i < a.Rows; i++ {
			for fj, j := range free {
				red.Set(i, fj, a.At(i, j))
			}
		}
		x, err := LeastSquares(red, y)
		if err != nil {
			return nil, err
		}
		worst, worstIdx := 0.0, -1
		for fj, v := range x {
			if v < worst {
				worst, worstIdx = v, free[fj]
			}
		}
		if worstIdx < 0 {
			out := make([]float64, a.Cols)
			for fj, j := range free {
				out[j] = x[fj]
			}
			return out, nil
		}
		active[worstIdx] = true
	}
	return nil, fmt.Errorf("linalg: NNLS failed to converge")
}
