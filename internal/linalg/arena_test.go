package linalg

import "testing"

func TestArenaReuseAndGrow(t *testing.T) {
	a := &Arena{}
	m1 := a.Alloc(4, 3)
	if m1.Rows != 4 || m1.Cols != 3 || len(m1.Data) != 12 {
		t.Fatalf("Alloc shape: %dx%d len %d", m1.Rows, m1.Cols, len(m1.Data))
	}
	for i := range m1.Data {
		m1.Data[i] = 7
	}
	z := a.AllocZero(2, 2)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatalf("AllocZero returned dirty memory: %v", z.Data)
		}
	}
	a.Reset()
	m2 := a.Alloc(4, 3)
	if &m2.Data[0] != &m1.Data[0] {
		t.Fatalf("Reset should reuse the slab from the start")
	}
	// Growing mid-stream must not corrupt earlier matrices.
	a.Reset()
	small := a.Alloc(2, 2)
	small.Data[0] = 42
	big := a.Alloc(1000, 100) // forces a new slab
	big.Data[0] = 1
	if small.Data[0] != 42 {
		t.Fatalf("grow corrupted an earlier matrix")
	}
	// A slice must not be able to append into the next allocation.
	a.Reset()
	s1 := a.Floats(3)
	s1 = append(s1, 99)
	s2 := a.Floats(3)
	if s2[0] == 99 {
		t.Fatalf("append on an arena slice leaked into the next allocation")
	}
}
