package linalg

// Arena is a bump allocator for the batch matrices of one processing
// iteration. The batched training loops allocate a dozen short-lived
// matrices per minibatch (inputs, activations, gradients); taking them
// from a reused slab instead of the heap removes the allocation, zeroing,
// and GC-scan costs that otherwise dominate the vectorized paths.
//
// Usage contract: call Reset at the top of each iteration, after which
// every matrix handed out since the previous Reset is dead. Matrices that
// must outlive the iteration (model weights, accumulated gradients,
// results) must not come from the arena. An Arena is owned by a single
// goroutine, matching the one-goroutine ownership of the models that use
// it.
type Arena struct {
	slab []float64
	off  int
}

// Reset recycles the arena: subsequent allocations reuse the slab from
// the start. The caller promises that no matrix from before the Reset is
// still in use.
func (a *Arena) Reset() { a.off = 0 }

// grow ensures n more floats are available. Matrices handed out earlier
// keep referencing the old slab, so they stay valid.
func (a *Arena) grow(n int) {
	size := 2 * len(a.slab)
	if size < n {
		size = n
	}
	if size < 1024 {
		size = 1024
	}
	a.slab = make([]float64, size)
	a.off = 0
}

// Floats returns an n-element scratch slice with undefined contents. The
// caller must overwrite every element it reads.
func (a *Arena) Floats(n int) []float64 {
	if a.off+n > len(a.slab) {
		a.grow(n)
	}
	out := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	return out
}

// Alloc returns a rows×cols matrix with undefined contents. The caller
// must overwrite every element it reads — batched forward passes and
// full-overwrite masks qualify; accumulators do not (use AllocZero).
func (a *Arena) Alloc(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: a.Floats(rows * cols)}
}

// AllocZero returns a zeroed rows×cols matrix, for use as an accumulator.
func (a *Arena) AllocZero(rows, cols int) *Matrix {
	m := a.Alloc(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}
