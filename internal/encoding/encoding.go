// Package encoding implements the "general feature engineering" of the
// paper's Figure 2(b): every plan node becomes a fixed-width vector of
// one-hot codes (operator type, table, index) and numerical values
// (estimated cardinality, width, selectivity, …), the same scheme QPPNet,
// MSCN, and the other systems surveyed in the paper's Table III use.
//
// QCFE appends feature-snapshot coefficients to these vectors and then
// prunes dimensions with feature reduction; both operate on the layout
// defined here, so FeatureNames doubles as the label set of Figure 7.
package encoding

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/planner"
)

// numericFeatures is the size of the numeric block at the end of each
// node's vector.
const numericFeatures = 12

// Encoder maps the plan nodes of one dataset to feature vectors. The
// layout is: [op one-hot | table one-hot | index one-hot | numeric block].
type Encoder struct {
	Schema *catalog.Schema

	tables   []string
	indexes  []string
	tableIdx map[string]int
	indexIdx map[string]int
}

// New builds an encoder for the schema. One-hot vocabularies are sorted so
// that feature ordinals are stable across runs.
func New(schema *catalog.Schema) *Encoder {
	e := &Encoder{
		Schema:   schema,
		tables:   schema.TableNames(),
		indexes:  schema.IndexNames(),
		tableIdx: make(map[string]int),
		indexIdx: make(map[string]int),
	}
	for i, t := range e.tables {
		e.tableIdx[t] = i
	}
	for i, ix := range e.indexes {
		e.indexIdx[ix] = i
	}
	return e
}

// Dim returns the per-node feature-vector width.
func (e *Encoder) Dim() int {
	return int(planner.NumOpTypes) + len(e.tables) + len(e.indexes) + numericFeatures
}

// FeatureNames returns one descriptive name per dimension, aligned with
// EncodeNode's output.
func (e *Encoder) FeatureNames() []string {
	names := make([]string, 0, e.Dim())
	for _, op := range planner.AllOpTypes() {
		names = append(names, "op:"+op.String())
	}
	for _, t := range e.tables {
		names = append(names, "tbl:"+t)
	}
	for _, ix := range e.indexes {
		names = append(names, "idx:"+ix)
	}
	names = append(names,
		"num:log_est_rows", "num:log_est_width", "num:selectivity",
		"num:n_preds", "num:n_children", "num:log_child1_rows",
		"num:log_child2_rows", "num:n_sort_keys", "num:n_group_cols",
		"num:n_aggs", "num:has_limit", "num:log_est_pages",
	)
	return names
}

// EncodeNode produces the feature vector for one plan node.
func (e *Encoder) EncodeNode(n *planner.Node) []float64 {
	v := make([]float64, e.Dim())
	v[int(n.Op)] = 1
	off := int(planner.NumOpTypes)
	if n.Table != "" {
		if i, ok := e.tableIdx[n.Table]; ok {
			v[off+i] = 1
		}
	}
	off += len(e.tables)
	if n.Index != "" {
		if i, ok := e.indexIdx[n.Index]; ok {
			v[off+i] = 1
		}
	}
	off += len(e.indexes)

	child1, child2 := 0.0, 0.0
	if len(n.Children) > 0 {
		child1 = n.Children[0].EstRows
	}
	if len(n.Children) > 1 {
		child2 = n.Children[1].EstRows
	}
	limit := 0.0
	if n.Limit >= 0 {
		limit = 1
	}
	num := []float64{
		log1p(n.EstRows),
		log1p(float64(n.EstWidth)),
		n.Selectivity,
		float64(len(n.Preds)),
		float64(len(n.Children)),
		log1p(child1),
		log1p(child2),
		float64(len(n.SortCols)),
		float64(len(n.GroupCols)),
		float64(len(n.Aggs)),
		limit,
		log1p(n.EstRows * float64(n.EstWidth) / 8192),
	}
	copy(v[off:], num)
	return v
}

// EncodePlan returns the per-node vectors of the whole plan in pre-order —
// the flattened representation MSCN-style set models pool over.
func (e *Encoder) EncodePlan(root *planner.Node) [][]float64 {
	var out [][]float64
	root.Walk(func(n *planner.Node) { out = append(out, e.EncodeNode(n)) })
	return out
}

func log1p(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Log1p(x)
}
