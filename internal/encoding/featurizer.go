package encoding

import (
	"repro/internal/featred"
	"repro/internal/linalg"
	"repro/internal/planner"
	"repro/internal/snapshot"
)

// Featurizer composes the three stages of QCFE's feature pipeline for one
// plan node: the general encoding (always), the feature-snapshot block
// (when a snapshot is attached — the FS of §III), and the feature-reduction
// mask (when attached — the FR of §IV). Models consume nodes exclusively
// through a Featurizer, so plugging QCFE into QPPNet or MSCN is just a
// matter of which fields are set.
type Featurizer struct {
	Enc *Encoder
	// Snaps maps environment ID → that environment's feature snapshot.
	// Nodes select their snapshot through their EnvID tag. nil disables
	// the snapshot block entirely (the "general FE" baseline).
	Snaps map[int]*snapshot.Snapshot
	Mask  []bool // optional; length must equal RawDim
}

// RawDim is the unmasked feature width (encoding + snapshot block).
func (f *Featurizer) RawDim() int {
	d := f.Enc.Dim()
	if f.Snaps != nil {
		d += snapshot.FeatureDim
	}
	return d
}

// Dim is the final model input width after masking.
func (f *Featurizer) Dim() int {
	if f.Mask == nil {
		return f.RawDim()
	}
	return featred.CountKept(f.Mask)
}

// Raw returns the unmasked feature vector for one node.
func (f *Featurizer) Raw(n *planner.Node) []float64 {
	v := f.Enc.EncodeNode(n)
	if f.Snaps != nil {
		if s := f.Snaps[n.EnvID]; s != nil {
			v = append(v, s.Features(n)...)
		} else {
			v = append(v, make([]float64, snapshot.FeatureDim)...)
		}
	}
	return v
}

// Node returns the final (masked) feature vector for one node.
func (f *Featurizer) Node(n *planner.Node) []float64 {
	v := f.Raw(n)
	if f.Mask != nil {
		return featred.Apply(f.Mask, v)
	}
	return v
}

// NodeInto featurizes one node directly into dst (length Dim), masking
// in place — the allocation-lean form of Node for matrix gathers.
func (f *Featurizer) NodeInto(n *planner.Node, dst []float64) {
	v := f.Raw(n)
	if f.Mask != nil {
		featred.ApplyInto(f.Mask, v, dst)
		return
	}
	copy(dst, v)
}

// NodesMatrix featurizes a node list into one row-major matrix (row i =
// Node(nodes[i])) — the gather step of the batched inference paths.
func (f *Featurizer) NodesMatrix(nodes []*planner.Node) *linalg.Matrix {
	m := linalg.NewMatrix(len(nodes), f.Dim())
	for i, n := range nodes {
		f.NodeInto(n, m.RowView(i))
	}
	return m
}

// PlanMatrix featurizes every node of a plan in pre-order (Walk order)
// into one row-major matrix. Row order matches the per-sample traversal,
// which is what keeps batched set-pooling bit-identical to the scalar
// path.
func (f *Featurizer) PlanMatrix(root *planner.Node) *linalg.Matrix {
	rows := make([][]float64, 0, root.CountNodes())
	root.Walk(func(n *planner.Node) { rows = append(rows, f.Node(n)) })
	return linalg.FromRows(rows)
}

// FeaturizedPlan is one plan with its per-node feature vectors computed
// once and kept — the value the query cache's feature tier stores. The
// two orders index the same underlying vectors: Pre is Walk (pre-order),
// the gather order of MSCN's set pooling; Post is children-first
// post-order, the order QPPNet's skeleton builder consumes. Entries are
// shared across concurrent readers and must be treated as immutable.
type FeaturizedPlan struct {
	Root *planner.Node
	Pre  [][]float64
	Post [][]float64
}

// NumNodes returns the plan size (the chunking unit of the batched
// inference paths).
func (fp *FeaturizedPlan) NumNodes() int { return len(fp.Pre) }

// Featurize computes a plan's full featurization (masked, snapshot block
// included) once, in both traversal orders. Each vector is the same
// slice in Pre and Post — Featurize costs one Node() call per plan node,
// exactly like one scalar prediction's featurization.
func (f *Featurizer) Featurize(root *planner.Node) *FeaturizedPlan {
	n := root.CountNodes()
	fp := &FeaturizedPlan{Root: root, Pre: make([][]float64, 0, n), Post: make([][]float64, 0, n)}
	// Pre-order positions, recorded while featurizing...
	byNode := make(map[*planner.Node][]float64, n)
	root.Walk(func(nd *planner.Node) {
		v := f.Node(nd)
		fp.Pre = append(fp.Pre, v)
		byNode[nd] = v
	})
	// ...then re-read in post-order, sharing the vectors.
	var rec func(nd *planner.Node)
	rec = func(nd *planner.Node) {
		for _, c := range nd.Children {
			rec(c)
		}
		fp.Post = append(fp.Post, byNode[nd])
	}
	rec(root)
	return fp
}

// Names labels the raw feature dimensions.
func (f *Featurizer) Names() []string {
	names := f.Enc.FeatureNames()
	if f.Snaps != nil {
		names = append(names, snapshot.FeatureNames()...)
	}
	return names
}
