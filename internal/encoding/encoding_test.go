package encoding

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/featred"
	"repro/internal/planner"
	"repro/internal/snapshot"
	"repro/internal/sqlparse"
)

var tpch = datagen.TPCH(1)

func planOf(t *testing.T, sql string) *planner.Node {
	t.Helper()
	pl := planner.New(tpch.Schema, tpch.Stats, dbenv.DefaultKnobs())
	n, err := pl.Plan(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEncoderDimAndNames(t *testing.T) {
	e := New(tpch.Schema)
	if e.Dim() != len(e.FeatureNames()) {
		t.Fatalf("dim %d != names %d", e.Dim(), len(e.FeatureNames()))
	}
	// 8 ops + 8 tables + 13 indexes + 12 numerics.
	if e.Dim() != 8+8+13+12 {
		t.Fatalf("dim = %d", e.Dim())
	}
}

func TestEncodeNodeOneHots(t *testing.T) {
	e := New(tpch.Schema)
	n := planOf(t, "SELECT * FROM orders WHERE o_orderkey = 7")
	v := e.EncodeNode(n)
	names := e.FeatureNames()
	hot := map[string]bool{}
	for i, x := range v {
		if x == 1 {
			hot[names[i]] = true
		}
	}
	if !hot["op:Index Scan"] || !hot["tbl:orders"] || !hot["idx:pk_orders"] {
		t.Fatalf("one-hots wrong: %v", hot)
	}
}

func TestEncodePlanWalksAllNodes(t *testing.T) {
	e := New(tpch.Schema)
	n := planOf(t, "SELECT COUNT(*) FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey GROUP BY o_orderpriority")
	vecs := e.EncodePlan(n)
	if len(vecs) != n.CountNodes() {
		t.Fatalf("vecs = %d, nodes = %d", len(vecs), n.CountNodes())
	}
	for _, v := range vecs {
		if len(v) != e.Dim() {
			t.Fatalf("ragged encoding")
		}
	}
}

func TestFeaturizerMaskAndSnapshot(t *testing.T) {
	e := New(tpch.Schema)
	f := &Featurizer{Enc: e}
	if f.RawDim() != e.Dim() || f.Dim() != e.Dim() {
		t.Fatalf("bare featurizer dims wrong")
	}
	// Attach an (empty-coefficient) snapshot: dims grow by the block.
	snap, err := snapshot.Fit([]snapshot.OpSample{{Op: planner.SeqScan, N1: 10, Ms: 1}})
	if err != nil {
		t.Fatal(err)
	}
	f.Snaps = map[int]*snapshot.Snapshot{0: snap}
	if f.RawDim() != e.Dim()+snapshot.FeatureDim {
		t.Fatalf("snapshot block not appended")
	}
	if len(f.Names()) != f.RawDim() {
		t.Fatalf("names misaligned")
	}
	// Mask halves the dims.
	mask := make([]bool, f.RawDim())
	for i := 0; i < len(mask); i += 2 {
		mask[i] = true
	}
	f.Mask = mask
	if f.Dim() != featred.CountKept(mask) {
		t.Fatalf("masked dim wrong")
	}
	n := planOf(t, "SELECT * FROM orders WHERE o_orderkey = 7")
	if len(f.Node(n)) != f.Dim() {
		t.Fatalf("masked vector wrong length")
	}
	// Unknown env: snapshot block is zero padding, not a panic.
	n.Walk(func(x *planner.Node) { x.EnvID = 999 })
	_ = f.Node(n)
}
