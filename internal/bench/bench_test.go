package bench

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/mscn"
	"repro/internal/planner"
	"repro/internal/qppnet"
	"repro/internal/workload"
)

var (
	setupOnce  sync.Once
	benchPlans []*planner.Node
	benchMs    []float64
	benchF     *encoding.Featurizer
	setupErr   error
)

func setup(tb testing.TB) ([]*planner.Node, []float64, *encoding.Featurizer) {
	tb.Helper()
	setupOnce.Do(func() {
		ds, err := datagen.Build("tpch", 1)
		if err != nil {
			setupErr = err
			return
		}
		envs := dbenv.SampleSet(2, 1)
		lab, err := workload.Collect(ds, envs, 60, 1)
		if err != nil {
			setupErr = err
			return
		}
		benchPlans, benchMs = workload.PlansAndLabels(lab.Samples)
		// Same featurization as bench.Run(): encoding + snapshot block,
		// so profiles here explain the gated rows.
		snaps, _, err := core.BuildSnapshots(ds, envs, core.DefaultConfig("mscn"))
		if err != nil {
			setupErr = err
			return
		}
		benchF = &encoding.Featurizer{Enc: encoding.New(ds.Schema), Snaps: snaps}
	})
	if setupErr != nil {
		tb.Fatal(setupErr)
	}
	return benchPlans, benchMs, benchF
}

// The train/predict pairs below mirror the rows Run() measures; they
// exist so the hot paths can be profiled and compared with the standard
// `go test -bench` tooling. Both arms of each train pair run the same
// 20 iterations per op (amortizing the batched path's per-Train-call
// caches exactly as Run() does), so their ns/op compare directly.

const trainItersPerOp = 20

func BenchmarkMSCNTrainIterScalar(b *testing.B) {
	plans, ms, f := setup(b)
	m := mscn.New(f, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainReference(plans, ms, trainItersPerOp)
	}
}

func BenchmarkMSCNTrainIterBatch(b *testing.B) {
	plans, ms, f := setup(b)
	m := mscn.New(f, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train(plans, ms, trainItersPerOp)
	}
}

func BenchmarkQPPNetTrainIterScalar(b *testing.B) {
	plans, ms, f := setup(b)
	m := qppnet.New(f, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainReference(plans, ms, trainItersPerOp)
	}
}

func BenchmarkQPPNetTrainIterBatch(b *testing.B) {
	plans, ms, f := setup(b)
	m := qppnet.New(f, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train(plans, ms, trainItersPerOp)
	}
}

func BenchmarkMSCNPredictBatch(b *testing.B) {
	plans, ms, f := setup(b)
	_ = ms
	m := mscn.New(f, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(plans)
	}
}

func BenchmarkQPPNetPredictBatch(b *testing.B) {
	plans, ms, f := setup(b)
	_ = ms
	m := qppnet.New(f, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatch(plans)
	}
}

// --- gate logic tests ---

func rows(ns map[string]float64) []Row {
	var out []Row
	for name, n := range ns {
		out = append(out, Row{Name: name, Iters: 100, NsPerOp: n})
	}
	return out
}

func TestCompareDetectsRegression(t *testing.T) {
	base := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1000, QPPPredictBatch: 1000})
	// Same machine (calib equal), mscn 30% slower → regression.
	cur := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1300, QPPPredictBatch: 1000})
	err := Compare(base, cur, 0.20)
	if err == nil {
		t.Fatalf("30%% regression passed the 20%% gate")
	}
	if !strings.Contains(err.Error(), MSCNPredictBatch) {
		t.Fatalf("error does not name the regressed row: %v", err)
	}
}

func TestCompareToleratesSlowMachine(t *testing.T) {
	base := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1000, QPPPredictBatch: 1000})
	// Everything (including calibration) 3× slower: a slower runner, not
	// a regression.
	cur := rows(map[string]float64{Calib: 300, MSCNPredictBatch: 3000, QPPPredictBatch: 3000})
	if err := Compare(base, cur, 0.20); err != nil {
		t.Fatalf("machine normalization failed: %v", err)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1000, QPPPredictBatch: 1000})
	cur := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1100, QPPPredictBatch: 950})
	if err := Compare(base, cur, 0.20); err != nil {
		t.Fatalf("10%% slowdown should pass a 20%% gate: %v", err)
	}
}

func TestCompareMissingRow(t *testing.T) {
	base := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1000, QPPPredictBatch: 1000})
	cur := rows(map[string]float64{Calib: 100, QPPPredictBatch: 1000})
	if err := Compare(base, cur, 0.20); err == nil {
		t.Fatalf("missing gated row should fail the gate")
	}
}

// allocRows builds a row set covering every AllocGated name with the
// given allocs/op values, plus the rows Compare's speed gate needs.
func allocRows(allocs map[string]int64) []Row {
	out := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1000, QPPPredictBatch: 1000})
	for _, name := range AllocGated {
		out = append(out, Row{Name: name, Iters: 100, NsPerOp: 500, AllocsPerOp: allocs[name]})
	}
	return out
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	base := allocRows(map[string]int64{QCacheHit: 0, ServeWarm: 0, ServeWarmPostSwap: 0})
	cur := allocRows(map[string]int64{QCacheHit: 0, ServeWarm: 1, ServeWarmPostSwap: 0})
	err := Compare(base, cur, 0.20)
	if err == nil {
		t.Fatal("a single new alloc/op on a warm row passed the gate")
	}
	if !strings.Contains(err.Error(), ServeWarm) || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("error does not name the alloc-regressed row: %v", err)
	}
}

func TestCompareAllocsEqualOrBetterPass(t *testing.T) {
	base := allocRows(map[string]int64{QCacheHit: 1, ServeWarm: 3, ServeWarmPostSwap: 3})
	// Equal on one row, improved on the others: both fine — the gate is
	// one-sided.
	cur := allocRows(map[string]int64{QCacheHit: 1, ServeWarm: 0, ServeWarmPostSwap: 0})
	if err := Compare(base, cur, 0.20); err != nil {
		t.Fatalf("equal/improved allocs should pass: %v", err)
	}
}

func TestCompareAllocGateIgnoresMachineSpeed(t *testing.T) {
	// A 3× slower runner (calib scales) must not excuse an alloc increase:
	// counts are machine-independent.
	base := allocRows(map[string]int64{QCacheHit: 0, ServeWarm: 0, ServeWarmPostSwap: 0})
	cur := allocRows(map[string]int64{QCacheHit: 2, ServeWarm: 0, ServeWarmPostSwap: 0})
	for i := range cur {
		cur[i].NsPerOp *= 3
	}
	if err := Compare(base, cur, 0.20); err == nil {
		t.Fatal("slow-machine normalization must not wave through an alloc regression")
	}
}

func TestCompareAllocRowMissingFromCurrent(t *testing.T) {
	base := allocRows(map[string]int64{QCacheHit: 0, ServeWarm: 0, ServeWarmPostSwap: 0})
	var cur []Row
	for _, r := range base {
		if r.Name != QCacheHit {
			cur = append(cur, r)
		}
	}
	if err := Compare(base, cur, 0.20); err == nil {
		t.Fatal("alloc-gated row missing from current run should fail the gate")
	}
}

func TestCompareAllocRowMissingFromBaseline(t *testing.T) {
	// A baseline that predates the warm rows gates nothing on them.
	base := rows(map[string]float64{Calib: 100, MSCNPredictBatch: 1000, QPPPredictBatch: 1000})
	cur := allocRows(map[string]int64{QCacheHit: 5, ServeWarm: 5, ServeWarmPostSwap: 5})
	if err := Compare(base, cur, 0.20); err != nil {
		t.Fatalf("pre-alloc-row baseline should not gate allocs: %v", err)
	}
}

func TestSpeedup(t *testing.T) {
	rs := rows(map[string]float64{MSCNTrainIterScalar: 2000, MSCNTrainIterBatch: 800})
	s, err := Speedup(rs, MSCNTrainIterScalar, MSCNTrainIterBatch)
	if err != nil {
		t.Fatal(err)
	}
	if s != 2.5 {
		t.Fatalf("speedup = %v, want 2.5", s)
	}
	if _, err := Speedup(rs, "nope", MSCNTrainIterBatch); err == nil {
		t.Fatalf("missing row should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	in := []Row{{Name: "a/b", Iters: 10, NsPerOp: 123.5, AllocsPerOp: 7}}
	if err := WriteJSON(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("round trip mangled rows: %+v", out)
	}
}
