// Package bench is the microbenchmark harness behind the CI
// benchmark-regression gate: it measures the estimator stack's scalar and
// batched hot paths (training iterations, predictions, coalesced,
// cache-warm, and post-hot-swap serving) on the quick grid and emits
// machine-readable rows — the BENCH_PR7.json schema (unchanged from
// BENCH_PR2.json):
//
//	[{"name": ..., "iters": ..., "ns_per_op": ..., "allocs_per_op": ...}, ...]
//
// ns_per_op is normalized per logical operation: one prediction for
// predict rows, one training iteration (one minibatch + optimizer step)
// for train rows. predictions/sec and train iters/sec are 1e9/ns_per_op.
//
// Cross-machine comparison is made meaningful by a calibration row
// ("calib/fma", a fixed serially-dependent FMA loop that mirrors the
// dot-product bottleneck of the nn kernels): Compare rescales the current
// run by the calibration ratio before applying the regression tolerance,
// so a slower CI runner does not read as a code regression.
package bench

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	qcfe "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/encoding"
	"repro/internal/linalg"
	"repro/internal/mscn"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/qppnet"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// Row is one microbenchmark result — the BENCH_PR2.json row schema.
type Row struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Benchmark names. The Gated set is what the CI regression gate watches;
// the train pairs feed the batched-vs-scalar speedup check.
const (
	Calib = "calib/fma"

	// ObsHistRecord measures one obs.Histogram.Record — the two atomic
	// adds every hot-path latency sample costs. It is the price PR 9's
	// observability layer added to every serve/route/tenant fast path,
	// so qcfe-bench -micro gates it at -max-hist-record-ns and the
	// allocation gate pins it at zero: instrumentation must stay
	// invisible on the serving plane.
	ObsHistRecord = "obs/histogram-record"

	NNForwardScalar   = "nn/forward-scalar"
	NNForwardBatch    = "nn/forward-batch"
	NNTrainIterScalar = "nn/train-iter-scalar"
	NNTrainIterBatch  = "nn/train-iter-batch"

	MSCNPredictScalar   = "mscn/predict-scalar"
	MSCNPredictBatch    = "mscn/predict-batch"
	MSCNTrainIterScalar = "mscn/train-iter-scalar"
	MSCNTrainIterBatch  = "mscn/train-iter-batch"

	QPPPredictScalar   = "qppnet/predict-scalar"
	QPPPredictBatch    = "qppnet/predict-batch"
	QPPTrainIterScalar = "qppnet/train-iter-scalar"
	QPPTrainIterBatch  = "qppnet/train-iter-batch"

	// ServeCoalesced measures end-to-end serving throughput: concurrent
	// single-query requests through the qcfe-serve coalescing queue
	// (SQL parse + plan fan-out + micro-batched inference per request),
	// with no query cache. Not gated against the baseline directly (it
	// folds in scheduler and queue timing), but it anchors the warm-hit
	// speedup gate below.
	ServeCoalesced = "serve/estimate-coalesced"

	// QCacheHit measures a warm prediction-tier hit through the library
	// EstimateSQL path: fingerprint-free exact-text memoization — one
	// lock-free snapshot probe, zero allocations (AllocGated pins it).
	QCacheHit = "qcache/hit"
	// QCacheMiss measures the cache-enabled cold path on a fresh literal
	// every op: template-tier hit (skip lex/parse/resolve), re-plan,
	// featurize, single-plan inference, and the stores that warm all
	// three tiers.
	QCacheMiss = "qcache/miss"
	// ServeWarm measures concurrent single-query requests when every
	// query is warm in the prediction tier: the server short-circuit
	// before the coalescing queue — lock-free and zero-alloc end to end
	// (AllocGated pins the count). The CI gate requires this to beat
	// ServeCoalesced by at least the -min-warm-speedup factor (both rows
	// come from the same run, so machine speed cancels exactly).
	ServeWarm = "serve/estimate-warm"

	// ServeSwap measures one full estimator hot swap: the query-cache
	// generation handoff (qcfe.SwapEstimator) plus the serving pointer
	// store (serve.Server.SwapEstimator), alternating between two
	// byte-identical estimators. This is the whole cost a swap adds to
	// the serving plane — there is no drain, lock, or rebuild.
	ServeSwap = "serve/swap"
	// ServeWarmPostSwap re-measures the warm concurrent serving loop
	// immediately after a hot swap to an estimator loaded from the same
	// artifact bytes: generations coincide, so every prediction-tier
	// entry must still hit. The CI gate holds it to the same
	// -min-warm-speedup floor as ServeWarm — a swap that silently chilled
	// the cache would fail here.
	ServeWarmPostSwap = "serve/estimate-warm-postswap"

	// RouterFanout is the routed uncached anchor: one 128-query batch
	// (fresh literals over four templates, so every query misses the
	// feature and prediction tiers on its replica) scattered over a
	// 3-replica fleet through internal/router and merged, measured per
	// query. Real HTTP framing is included but amortized across the
	// batch; replica-side planning and inference dominate.
	RouterFanout = "router/fanout-batch"
	// RouterWarm re-prices a fixed batch that is warm in every replica's
	// prediction tier through the same routed path: scatter, per-replica
	// cache hits, merge. The CI gate requires this to beat RouterFanout
	// by the -min-warm-speedup factor (same-run rows, machine speed
	// cancels) — the proof that fingerprint routing keeps the fleet's
	// cache tiers effective through the extra hop.
	RouterWarm = "router/estimate-warm"
	// RouterWarmPostRollout re-measures RouterWarm immediately after a
	// full canary rollout to a byte-identical artifact: generations
	// coincide on every replica, so the fleet's prediction tiers must
	// still hit. Gated at the same -min-warm-speedup floor — a rollout
	// that silently chilled the fleet's caches fails here.
	RouterWarmPostRollout = "router/estimate-warm-postrollout"

	// ServeWarmMultiTenant re-measures the warm concurrent serving loop
	// through a two-tenant Registry: same warm query set as ServeWarm,
	// but every request first resolves its tenant and probes that
	// tenant's generation-stamped cache namespace — the rung-2 path
	// that bypasses admission entirely. The CI gate holds it to the
	// same -min-warm-speedup floor as ServeWarm: the multi-tenant layer
	// must not meaningfully tax the warm short-circuit.
	ServeWarmMultiTenant = "serve/estimate-warm-multitenant"
	// ServeMissSerial is the streaming-miss anchor: heavily concurrent
	// single-query requests, every one a fresh literal (misses the
	// prediction and feature tiers, hits the template tier), through the
	// serial gather-then-flush coalescer. With more workers than
	// MaxBatch the queue never empties, so this measures the serial
	// design's throughput ceiling: one micro-batch prices while nothing
	// else gathers or predicts.
	ServeMissSerial = "serve/estimate-miss-serial"
	// ServeMissPipelined is the same workload through the staged
	// pipeline (gather → featurize → predict → reply over bounded
	// exchange channels): stages overlap, so planning fan-out, the NN
	// kernel, and reply delivery run concurrently. The CI gate requires
	// this to beat ServeMissSerial by the -min-miss-speedup factor on
	// multi-core machines (same-run rows, machine speed cancels); the
	// gate self-skips at GOMAXPROCS=1, where stage overlap has no cores
	// to run on.
	ServeMissPipelined = "serve/estimate-miss-pipelined"
	// ServeMixedTailSerial / ServeMixedTailPipelined report the p99
	// request latency (ns_per_op is the 99th percentile, not a mean) of
	// a mixed workload — half warm prediction-tier hits, half fresh-
	// literal misses — under the serial coalescer and the pipeline.
	// Informational, not gated: tail latency folds in scheduler timing,
	// but the pair documents how much head-of-line blocking the serial
	// design adds to warm requests stuck behind cold batches.
	ServeMixedTailSerial    = "serve/estimate-mixed-tail-serial"
	ServeMixedTailPipelined = "serve/estimate-mixed-tail-pipelined"
	// ServeCoalesceAlloc isolates the coalescer's own per-request
	// overhead: concurrent requests through the full gather/flush
	// machinery against a stub estimator whose batch call is free and
	// allocation-less. What remains is queue handoff, timer reuse,
	// batch-slice and group-map recycling, and reply delivery — the
	// AllocGated entry holds its allocs_per_op to no-increase so a
	// regression that re-introduces per-batch allocations fails CI.
	ServeCoalesceAlloc = "serve/coalesce-allocs"

	// ServeShedOverload measures the degradation ladder under
	// saturation: a 32-way flood of cold queries against a registry
	// carved down to one NN slot, a one-deep queue, and one analytic
	// slot, so the overwhelming majority of requests walk every rung
	// and shed. ns_per_op is the mean per-request cost of that overload
	// mix (mostly the shed fast path: admission refusal + analytic-pool
	// refusal). Not gated against the baseline directly (it folds in
	// scheduler timing), but a shed path that started blocking or doing
	// real work would show up here by orders of magnitude.
	ServeShedOverload = "serve/shed-overload"
)

// Gated lists the rows the CI gate checks for predictions/sec regressions:
// the batched serving paths.
var Gated = []string{MSCNPredictBatch, QPPPredictBatch}

// AllocGated lists the rows whose allocs_per_op the CI gate holds to
// "no increase vs baseline" (Compare) and qcfe-bench -micro holds to
// the -max-warm-allocs ceiling (default 0). Only the warm cache-hit
// rows qualify: their op is deterministic (a lock-free snapshot probe),
// so allocs_per_op is an exact machine-independent invariant, unlike
// the HTTP/fanout rows whose counts fold in scheduler and net/http
// noise.
var AllocGated = []string{QCacheHit, ServeWarm, ServeWarmPostSwap, ServeWarmMultiTenant, ObsHistRecord}

// AllocNoIncrease lists rows whose allocs_per_op Compare holds to
// "no increase vs baseline, plus one alloc of GC jitter" and which are
// exempt from qcfe-bench's -max-warm-allocs ceiling: the coalesced miss
// path legitimately costs a few amortized allocations per request (the
// library batch call), and the gate's job is only to keep that count
// from creeping back up — e.g. a regression that re-introduces the
// per-batch timer, batch slice, or grouping map the coalescer now
// recycles, each worth several allocs per op.
var AllocNoIncrease = []string{ServeCoalesceAlloc}

var sink float64

// run executes one benchmark function repeatedly and keeps the fastest
// repetition, normalized to `items` logical operations per b.N iteration.
// The minimum is the standard low-noise estimator: scheduler and cache
// interference only ever slow a run down, so the fastest of several
// ~1-second measurements is the closest to the code's true cost — which
// is what a regression gate must compare.
func run(name string, items int, fn func(b *testing.B)) Row {
	const reps = 3
	best := Row{Name: name}
	for rep := 0; rep < reps; rep++ {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N) / float64(items)
		if rep == 0 || ns < best.NsPerOp {
			best.Iters = r.N * items
			best.NsPerOp = ns
			best.AllocsPerOp = r.AllocsPerOp() / int64(items)
		}
	}
	return best
}

// Run measures the full row set on the quick grid: a small TPCH workload
// (2 environments × 60 queries — joins and multi-level plans, the shapes
// that exercise tree batching), the production featurization (general
// encoding plus the per-environment feature-snapshot block, exactly what
// the QCFE pipeline trains on), both models briefly trained so weights
// are in a realistic regime.
func Run() ([]Row, error) {
	ds, err := datagen.Build("tpch", 1)
	if err != nil {
		return nil, fmt.Errorf("bench: dataset: %w", err)
	}
	envs := dbenv.SampleSet(2, 1)
	lab, err := workload.Collect(ds, envs, 60, 1)
	if err != nil {
		return nil, fmt.Errorf("bench: workload: %w", err)
	}
	plans, ms := workload.PlansAndLabels(lab.Samples)
	snaps, _, err := core.BuildSnapshots(ds, envs, core.DefaultConfig("mscn"))
	if err != nil {
		return nil, fmt.Errorf("bench: snapshots: %w", err)
	}
	f := &encoding.Featurizer{Enc: encoding.New(ds.Schema), Snaps: snaps}

	rows := []Row{run(Calib, 1, benchCalib), run(ObsHistRecord, 1, benchObsHistRecord)}
	rows = append(rows, nnRows()...)

	mm := mscn.New(f, 1)
	mm.Train(plans, ms, 30)
	rows = append(rows,
		run(MSCNPredictScalar, len(plans), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range plans {
					sink = mm.PredictMs(p)
				}
			}
		}),
		run(MSCNPredictBatch, len(plans), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := mm.PredictBatch(plans)
				sink = out[0]
			}
		}),
	)
	const trainIters = 20 // amortizes the per-Train-call feature cache like a real 400-iteration run
	mts := mscn.New(f, 2)
	rows = append(rows, run(MSCNTrainIterScalar, trainIters, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mts.TrainReference(plans, ms, trainIters)
		}
	}))
	mtb := mscn.New(f, 2)
	rows = append(rows, run(MSCNTrainIterBatch, trainIters, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mtb.Train(plans, ms, trainIters)
		}
	}))

	qm := qppnet.New(f, 1)
	qm.Train(plans, ms, 30)
	rows = append(rows,
		run(QPPPredictScalar, len(plans), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range plans {
					sink = qm.PredictMs(p)
				}
			}
		}),
		run(QPPPredictBatch, len(plans), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := qm.PredictBatch(plans)
				sink = out[0]
			}
		}),
	)
	qts := qppnet.New(f, 2)
	rows = append(rows, run(QPPTrainIterScalar, trainIters, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qts.TrainReference(plans, ms, trainIters)
		}
	}))
	qtb := qppnet.New(f, 2)
	rows = append(rows, run(QPPTrainIterBatch, trainIters, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qtb.Train(plans, ms, trainIters)
		}
	}))

	serveRows, artifact, err := benchServe(envs, lab.Samples)
	if err != nil {
		return nil, fmt.Errorf("bench: serve: %w", err)
	}
	rows = append(rows, serveRows...)

	pipeRows, err := benchPipeline(artifact, envs)
	if err != nil {
		return nil, fmt.Errorf("bench: pipeline: %w", err)
	}
	rows = append(rows, pipeRows...)
	rows = append(rows, benchCoalesceAlloc())

	routerRows, err := benchRouter(artifact, envs[0].ID)
	if err != nil {
		return nil, fmt.Errorf("bench: router: %w", err)
	}
	rows = append(rows, routerRows...)

	tenantRows, err := benchTenant(artifact, envs, lab.Samples)
	if err != nil {
		return nil, fmt.Errorf("bench: tenant: %w", err)
	}
	rows = append(rows, tenantRows...)
	return rows, nil
}

// benchServe measures the serving front end end to end. The coalesced
// row runs `conc` concurrent single-query estimates against the
// coalescing queue with no cache — the qcfe-serve hot loop minus HTTP
// framing. The qcache rows then attach a query cache to the same
// estimator and measure the library hit/miss paths, and the warm row
// re-runs the concurrent serving loop with every query warm in the
// prediction tier (the short-circuit before the queue). ns_per_op is per
// served request / estimate.
func benchServe(envs []*dbenv.Environment, samples []workload.Sample) ([]Row, []byte, error) {
	b, err := qcfe.OpenBenchmark("tpch", 1) // cached: same dataset the grid built
	if err != nil {
		return nil, nil, err
	}
	// Train cheaply: serving throughput is inference-bound, so reduction
	// is disabled and the iteration budget kept small.
	est, err := qcfe.NewPipeline("mscn",
		qcfe.WithTrainIters(30), qcfe.WithReduction("none"), qcfe.WithSeed(1),
	).Fit(b, envs, samples)
	if err != nil {
		return nil, nil, err
	}
	srv := serve.New(est, serve.Options{MaxBatch: 64, BatchWindow: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)

	const conc = 32
	sqls := make([]string, conc)
	for i := range sqls {
		sqls[i] = samples[i%len(samples)].SQL
	}
	// concurrent runs conc persistent workers, each issuing tb.N
	// estimates: the same conc-way load as spawning conc goroutines per
	// iteration, but the goroutine/WaitGroup setup cost amortizes to
	// zero over tb.N — so allocs_per_op measures the serving path alone,
	// which is what the allocs/op gate pins at 0 for the warm rows.
	concurrent := func(name string) Row {
		return run(name, conc, func(tb *testing.B) {
			tb.ReportAllocs()
			var wg sync.WaitGroup
			for c := 0; c < conc; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					env := envs[c%len(envs)]
					for i := 0; i < tb.N; i++ {
						if _, err := srv.Estimate(ctx, env.ID, sqls[c]); err != nil {
							panic(fmt.Sprintf("bench: serve estimate: %v", err))
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
	rows := []Row{concurrent(ServeCoalesced)}

	// Cache rows: same estimator, now with the query cache attached.
	est.AttachCache(qcfe.NewQueryCache(qcfe.CacheOptions{}))
	env := envs[0]
	hot := sqls[0]
	if _, err := est.EstimateSQL(env, hot); err != nil { // prime
		return nil, nil, err
	}
	rows = append(rows, run(QCacheHit, 1, func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			v, err := est.EstimateSQL(env, hot)
			if err != nil {
				panic(fmt.Sprintf("bench: qcache hit: %v", err))
			}
			sink = v
		}
	}))
	ctr := 0
	rows = append(rows, run(QCacheMiss, 1, func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			// A never-seen literal every op: misses the prediction and
			// feature tiers, hits the template tier after the first op.
			ctr++
			v, err := est.EstimateSQL(env, fmt.Sprintf("SELECT COUNT(*) FROM lineitem WHERE l_quantity < %d", ctr))
			if err != nil {
				panic(fmt.Sprintf("bench: qcache miss: %v", err))
			}
			sink = v
		}
	}))
	// Warm the whole serving query set, then re-measure the concurrent
	// loop: every request short-circuits at the prediction tier.
	for c := 0; c < conc; c++ {
		if _, err := est.EstimateSQL(envs[c%len(envs)], sqls[c]); err != nil {
			return nil, nil, err
		}
	}
	rows = append(rows, concurrent(ServeWarm))

	// Hot-swap rows. The twin is a Save→Load of the serving estimator:
	// byte-identical artifact, so the same cache generation — the swap
	// whose cost and cache behavior a live retrain-to-rollback cycle
	// pays. One untimed alternation first primes both generation hashes.
	var abuf bytes.Buffer
	if err := est.Save(&abuf); err != nil {
		return nil, nil, err
	}
	artifact := append([]byte(nil), abuf.Bytes()...) // benchRouter boots its fleet from the same bytes
	twin, err := qcfe.LoadEstimator(&abuf)
	if err != nil {
		return nil, nil, err
	}
	pair := [2]*qcfe.CostEstimator{est, twin}
	srv.SwapEstimator(qcfe.SwapEstimator(est, twin))
	srv.SwapEstimator(qcfe.SwapEstimator(twin, est))
	swapIdx := 0
	rows = append(rows, run(ServeSwap, 1, func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			old, next := pair[swapIdx&1], pair[1-swapIdx&1]
			srv.SwapEstimator(qcfe.SwapEstimator(old, next))
			swapIdx++
		}
	}))
	// Land on the twin so the post-swap row runs on the swapped-in
	// estimator, then re-measure warm serving: the prediction tier was
	// warmed under est's generation, which equals the twin's.
	if srv.Estimator() != serve.Estimator(twin) {
		srv.SwapEstimator(qcfe.SwapEstimator(est, twin))
	}
	rows = append(rows, concurrent(ServeWarmPostSwap))
	return rows, artifact, nil
}

// allocStub is a zero-alloc Estimator: a preallocated reply slice and
// constant answers. Behind it, every allocation the ServeCoalesceAlloc
// row reports belongs to the serving machinery itself — enqueue,
// gather, group, flush, reply — not to planning or inference.
type allocStub struct {
	envs []*qcfe.Environment
	ms   []float64
}

func (s *allocStub) ModelName() string                                        { return "stub" }
func (s *allocStub) BenchmarkName() string                                    { return "stub" }
func (s *allocStub) Environments() []*qcfe.Environment                        { return s.envs }
func (s *allocStub) Generation() uint64                                       { return 1 }
func (s *allocStub) CachedEstimate(*qcfe.Environment, string) (float64, bool) { return 0, false }
func (s *allocStub) CacheStats() (qcfe.CacheStats, bool)                      { return qcfe.CacheStats{}, false }
func (s *allocStub) EstimateSQL(*qcfe.Environment, string) (float64, error)   { return 1, nil }
func (s *allocStub) EstimateSQLBatchCtx(_ context.Context, _ *qcfe.Environment, sqls []string) ([]float64, error) {
	return s.ms[:len(sqls)], nil
}

// benchCoalesceAlloc measures the serial coalescer's own allocations
// per served request over the zero-alloc stub estimator. The pooled
// batch slices, reused coalescer scratch (groups map, order, sqls),
// and reused gather timer should amortize the whole gather→flush→reply
// cycle to a few small allocations per request; Compare holds this row
// to no-increase against the baseline (AllocNoIncrease) so pooling
// regressions surface even though the path can't reach literal zero.
func benchCoalesceAlloc() Row {
	stub := &allocStub{envs: []*qcfe.Environment{{ID: 0}}, ms: make([]float64, 64)}
	srv := serve.New(stub, serve.Options{MaxBatch: 16, BatchWindow: 50 * time.Microsecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Run(ctx)

	const conc = 16
	return run(ServeCoalesceAlloc, conc, func(tb *testing.B) {
		tb.ReportAllocs()
		var wg sync.WaitGroup
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < tb.N; i++ {
					if _, err := srv.Estimate(ctx, 0, "SELECT 1"); err != nil {
						panic(fmt.Sprintf("bench: coalesce alloc: %v", err))
					}
				}
			}()
		}
		wg.Wait()
	})
}

// benchPipeline compares the serial coalescer against the staged
// pipeline on the workload the pipeline exists for: streaming misses
// under heavy concurrency. Each mode gets its own server over an
// estimator loaded from the same artifact bytes with a fresh query
// cache. Load is open-ended relative to the batch size (conc=64
// workers against MaxBatch=16), so the queue never drains between
// flushes: the serial design serializes featurize and predict inside
// one goroutine while gathered requests wait, and the pipeline's gain
// is exactly that overlap. On a single-core machine there is nothing
// to overlap onto and the two rows converge — which is why the
// -min-miss-speedup gate self-skips below GOMAXPROCS=2.
//
// The mixed-tail rows then interleave warm hits (primed per worker)
// with cold misses 1:1 and report the p99 request latency in ns_per_op
// (Iters = total requests measured): the warm-behind-cold
// head-of-line-blocking number the paper's feature-engineering
// argument cares about.
func benchPipeline(artifact []byte, envs []*dbenv.Environment) ([]Row, error) {
	newSrv := func(opts serve.Options) (*serve.Server, context.CancelFunc, error) {
		est, err := qcfe.LoadEstimator(bytes.NewReader(artifact))
		if err != nil {
			return nil, nil, err
		}
		est.AttachCache(qcfe.NewQueryCache(qcfe.CacheOptions{}))
		srv := serve.New(est, opts)
		ctx, cancel := context.WithCancel(context.Background())
		go srv.Run(ctx)
		return srv, cancel, nil
	}
	serialOpts := serve.Options{MaxBatch: 16, BatchWindow: 200 * time.Microsecond}
	pipeOpts := serialOpts
	pipeOpts.PipelineDepth = 4
	pipeOpts.FeaturizeWorkers = 2
	pipeOpts.PredictWorkers = 2

	const conc = 64
	var ctr atomic.Int64
	fresh := func() string {
		// Never-seen literal: misses the prediction and feature tiers
		// every time, hits the template tier after the first op.
		return fmt.Sprintf("SELECT COUNT(*) FROM lineitem WHERE l_quantity < %d", ctr.Add(1))
	}

	missRow := func(name string, opts serve.Options) (Row, error) {
		srv, stop, err := newSrv(opts)
		if err != nil {
			return Row{}, err
		}
		defer stop()
		// Prime the template tier so steady state measures the
		// featurize+predict miss, not first-touch parsing.
		if _, err := srv.Estimate(context.Background(), envs[0].ID, fresh()); err != nil {
			return Row{}, err
		}
		return run(name, conc, func(tb *testing.B) {
			tb.ReportAllocs()
			var wg sync.WaitGroup
			for c := 0; c < conc; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					env := envs[c%len(envs)]
					for i := 0; i < tb.N; i++ {
						if _, err := srv.Estimate(context.Background(), env.ID, fresh()); err != nil {
							panic(fmt.Sprintf("bench: %s: %v", name, err))
						}
					}
				}(c)
			}
			wg.Wait()
		}), nil
	}

	mixedRow := func(name string, opts serve.Options) (Row, error) {
		srv, stop, err := newSrv(opts)
		if err != nil {
			return Row{}, err
		}
		defer stop()
		// One warm query per worker, primed through the server so it
		// lands in the prediction tier under the serving generation.
		warm := make([]string, conc)
		for c := range warm {
			warm[c] = fmt.Sprintf("SELECT COUNT(*) FROM lineitem WHERE l_quantity < %d", 1_000_000+c)
			if _, err := srv.Estimate(context.Background(), envs[c%len(envs)].ID, warm[c]); err != nil {
				return Row{}, err
			}
		}
		const perWorker = 200
		lats := make([][]int64, conc)
		var wg sync.WaitGroup
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				env := envs[c%len(envs)]
				buf := make([]int64, 0, perWorker)
				for i := 0; i < perWorker; i++ {
					sql := warm[c]
					if i%2 == 1 {
						sql = fresh()
					}
					t0 := time.Now()
					if _, err := srv.Estimate(context.Background(), env.ID, sql); err != nil {
						panic(fmt.Sprintf("bench: %s: %v", name, err))
					}
					buf = append(buf, time.Since(t0).Nanoseconds())
				}
				lats[c] = buf
			}(c)
		}
		wg.Wait()
		var all []int64
		for _, b := range lats {
			all = append(all, b...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		idx := len(all) * 99 / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		return Row{Name: name, Iters: len(all), NsPerOp: float64(all[idx])}, nil
	}

	var rows []Row
	for _, m := range []struct {
		miss, mixed string
		opts        serve.Options
	}{
		{ServeMissSerial, ServeMixedTailSerial, serialOpts},
		{ServeMissPipelined, ServeMixedTailPipelined, pipeOpts},
	} {
		r, err := missRow(m.miss, m.opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
		if r, err = mixedRow(m.mixed, m.opts); err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// benchRouter measures the distributed serving path: three replicas
// booted from the same artifact bytes (each with its own query cache),
// fronted by an internal/router fleet over real HTTP. The fanout row is
// the uncached anchor (fresh literals, so replicas re-plan and re-infer
// every query); the warm rows re-price a fixed batch that hits every
// replica's prediction tier — before and, via a full canary rollout to
// a byte-identical artifact, after a fleet-wide generation change.
// ns_per_op is per routed query.
func benchRouter(artifact []byte, envID int) ([]Row, error) {
	const token = "bench-admin-token"
	const replicas = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	urls := make([]string, replicas)
	for i := 0; i < replicas; i++ {
		est, err := qcfe.LoadEstimator(bytes.NewReader(artifact))
		if err != nil {
			return nil, err
		}
		est.AttachCache(qcfe.NewQueryCache(qcfe.CacheOptions{}))
		srv := serve.New(est, serve.Options{
			MaxBatch:    64,
			BatchWindow: time.Millisecond,
			AdminToken:  token,
			Advertise:   fmt.Sprintf("bench-replica-%d", i),
		})
		go srv.Run(ctx)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	rt, err := router.New(urls, router.Options{AdminToken: token})
	if err != nil {
		return nil, err
	}

	// Four templates spread the batch across the ring; the literal picks
	// cache temperature: fresh per op for the fanout row, fixed for warm.
	templates := [...]string{
		"SELECT COUNT(*) FROM lineitem WHERE l_quantity < %d",
		"SELECT COUNT(*) FROM orders WHERE o_totalprice < %d",
		"SELECT COUNT(*) FROM customer WHERE c_acctbal < %d",
		"SELECT COUNT(*) FROM part WHERE p_retailprice < %d",
	}
	const batchN = 128
	batch := func(name string, fill func(i int) []string) Row {
		op := 0
		return run(name, batchN, func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				op++
				ms, err := rt.EstimateBatch(ctx, envID, fill(op))
				if err != nil {
					panic(fmt.Sprintf("bench: routed batch: %v", err))
				}
				sink = ms[0]
			}
		})
	}

	fresh := make([]string, batchN)
	ctr := 0
	rows := []Row{batch(RouterFanout, func(int) []string {
		for j := range fresh {
			ctr++
			fresh[j] = fmt.Sprintf(templates[j%len(templates)], 100000+ctr)
		}
		return fresh
	})}

	warm := make([]string, batchN)
	for j := range warm {
		warm[j] = fmt.Sprintf(templates[j%len(templates)], j)
	}
	if _, err := rt.EstimateBatch(ctx, envID, warm); err != nil { // prime every replica's tiers
		return nil, err
	}
	warmFill := func(int) []string { return warm }
	rows = append(rows, batch(RouterWarm, warmFill))

	// Roll the fleet to the same bytes through the full canary protocol:
	// stage, canary-compare (first replica seeds the reference), commit,
	// replica by replica. Generations coincide, so the warm row must
	// still hit afterward.
	res, err := rt.Rollout(ctx, router.RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(artifact),
		CanaryEnv:   envID,
		CanarySQLs:  warm[:4],
	})
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, fmt.Errorf("bench: rollout failed: %s", res.Error)
	}
	rows = append(rows, batch(RouterWarmPostRollout, warmFill))
	return rows, nil
}

// benchTenant measures the multi-tenant serving layer. The warm row
// prices the rung-2 short-circuit through a two-tenant registry (tenant
// resolution + a probe of that tenant's stamped cache namespace, no
// admission) on the same warm query set and concurrency as ServeWarm.
// The shed row floods a deliberately starved registry (one NN slot, a
// one-deep queue, one analytic slot, no cache) with 32-way cold traffic
// so most requests walk the whole degradation ladder and shed — the
// per-request cost of saying no under overload. ns_per_op is per
// request.
func benchTenant(artifact []byte, envs []*dbenv.Environment, samples []workload.Sample) ([]Row, error) {
	load := func() (*qcfe.CostEstimator, error) {
		return qcfe.LoadEstimator(bytes.NewReader(artifact))
	}
	alphaEst, err := load()
	if err != nil {
		return nil, err
	}
	betaEst, err := load()
	if err != nil {
		return nil, err
	}
	reg, err := tenant.New(tenant.Options{
		Serve: serve.Options{MaxBatch: 64, BatchWindow: time.Millisecond},
		Cache: &qcfe.CacheOptions{},
	}, []tenant.Config{
		{Name: "alpha", Est: alphaEst, Weight: 1},
		{Name: "beta", Est: betaEst, Weight: 1},
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go reg.Run(ctx)

	const conc = 32
	sqls := make([]string, conc)
	for i := range sqls {
		sqls[i] = samples[i%len(samples)].SQL
	}
	// Warm alpha's namespace through the registry itself: the first pass
	// serves rung 1 and stores, so the measured pass is all rung 2.
	for c := 0; c < conc; c++ {
		if _, degraded, err := reg.Estimate(ctx, "alpha", envs[c%len(envs)].ID, sqls[c]); err != nil || degraded {
			return nil, fmt.Errorf("bench: tenant warm fill c=%d: degraded=%v err=%v", c, degraded, err)
		}
	}
	rows := []Row{run(ServeWarmMultiTenant, conc, func(tb *testing.B) {
		tb.ReportAllocs()
		var wg sync.WaitGroup
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				envID := envs[c%len(envs)].ID
				for i := 0; i < tb.N; i++ {
					ms, degraded, err := reg.Estimate(ctx, "alpha", envID, sqls[c])
					if err != nil || degraded {
						panic(fmt.Sprintf("bench: tenant warm estimate: degraded=%v err=%v", degraded, err))
					}
					sink = ms
				}
			}(c)
		}
		wg.Wait()
	})}

	// The starved registry for the shed row. No cache: rung 2 never
	// hits, so every request is admission → analytic pool → shed.
	floodEst, err := load()
	if err != nil {
		return nil, err
	}
	flood, err := tenant.New(tenant.Options{
		Serve:            serve.Options{MaxBatch: 64, BatchWindow: time.Millisecond},
		MaxInflight:      1,
		AnalyticInflight: 1,
		QueueDepth:       1,
	}, []tenant.Config{{Name: "flood", Est: floodEst, Weight: 1}})
	if err != nil {
		return nil, err
	}
	go flood.Run(ctx)
	var sheds atomic.Int64
	rows = append(rows, run(ServeShedOverload, conc, func(tb *testing.B) {
		tb.ReportAllocs()
		var wg sync.WaitGroup
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				envID := envs[c%len(envs)].ID
				for i := 0; i < tb.N; i++ {
					ms, _, err := flood.Estimate(ctx, "flood", envID, sqls[c])
					switch {
					case errors.Is(err, tenant.ErrShed):
						sheds.Add(1)
					case err != nil:
						panic(fmt.Sprintf("bench: shed flood estimate: %v", err))
					default:
						sink = ms
					}
				}
			}(c)
		}
		wg.Wait()
	}))
	if sheds.Load() == 0 {
		return nil, fmt.Errorf("bench: shed-overload row shed nothing — the flood never saturated the ladder")
	}
	return rows, nil
}

// MultiTenantWarmSpeedup returns how many times faster a warm estimate
// served through a two-tenant Registry is than an uncached coalesced
// one — the proof that tenant resolution and the stamped cache
// namespace add no meaningful cost to the warm short-circuit. Gated at
// the same -min-warm-speedup floor as WarmServeSpeedup.
func MultiTenantWarmSpeedup(rows []Row) (float64, error) {
	return Speedup(rows, ServeCoalesced, ServeWarmMultiTenant)
}

// PostSwapWarmSpeedup returns how many times faster a warm served
// estimate is than an uncached coalesced one *after* an estimator hot
// swap — the proof the swap kept the cache warm, gated in CI alongside
// WarmServeSpeedup.
func PostSwapWarmSpeedup(rows []Row) (float64, error) {
	return Speedup(rows, ServeCoalesced, ServeWarmPostSwap)
}

// WarmServeSpeedup returns how many times faster a warm served estimate
// is than an uncached coalesced one — both rows from the same run, so
// machine speed cancels exactly (the PR 2 normalization scheme's
// within-run degenerate case).
func WarmServeSpeedup(rows []Row) (float64, error) {
	return Speedup(rows, ServeCoalesced, ServeWarm)
}

// RouterWarmSpeedup returns how many times faster a warm routed query is
// than an uncached scattered one — the fleet-level analogue of
// WarmServeSpeedup, gated at the same -min-warm-speedup floor.
func RouterWarmSpeedup(rows []Row) (float64, error) {
	return Speedup(rows, RouterFanout, RouterWarm)
}

// PostRolloutWarmSpeedup is RouterWarmSpeedup measured after a full
// canary rollout to a byte-identical artifact — the proof the rollout
// kept every replica's cache warm.
func PostRolloutWarmSpeedup(rows []Row) (float64, error) {
	return Speedup(rows, RouterFanout, RouterWarmPostRollout)
}

// MissPipelineSpeedup returns how many times faster the streaming-miss
// workload moves through the staged pipeline than through the serial
// coalescer — same run, same artifact, so machine speed cancels.
// qcfe-bench gates it with -min-miss-speedup on multi-core machines;
// at GOMAXPROCS=1 the stages have no second core to overlap on and the
// gate self-skips.
func MissPipelineSpeedup(rows []Row) (float64, error) {
	return Speedup(rows, ServeMissSerial, ServeMissPipelined)
}

// benchCalib is the machine-speed proxy the regression gate normalizes
// by. It deliberately mixes the three resources the gated rows spend —
// a serially-dependent multiply-add chain (the dot-product bottleneck),
// streaming memory traffic over a slab larger than L1, and a short-lived
// allocation per op — so its ratio between two machines tracks the
// model benchmarks' ratio, not just relative ALU speed.
func benchCalib(b *testing.B) {
	b.ReportAllocs()
	const slab = 64 * 1024 // floats; 512 KB streams past L1
	x := make([]float64, slab)
	for i := range x {
		x[i] = float64(i%7) * 0.25
	}
	var s float64
	for i := 0; i < b.N; i++ {
		scratch := make([]float64, 512)
		for j := range scratch {
			scratch[j] = x[(j*67)%slab]
		}
		s = 0
		for _, v := range x[:4096] {
			s = s*0.999 + v
		}
		for _, v := range scratch {
			s += v
		}
	}
	sink = s
}

// benchObsHistRecord cycles the recorded duration through five decades
// (1µs–10ms-ish) so the op exercises bucketFor on realistic latencies
// rather than pinning one hot bucket line.
func benchObsHistRecord(b *testing.B) {
	b.ReportAllocs()
	h := obs.NewHistogram()
	durations := [...]time.Duration{1_000, 17_000, 250_000, 3_100_000, 42_000_000}
	for i := 0; i < b.N; i++ {
		h.Record(durations[i%len(durations)])
	}
}

// nnRows measures the raw kernels on a fixed 64→32→32→1 MLP at batch 32.
func nnRows() []Row {
	const batch = 32
	newMLP := func(seed int64) (*nn.MLP, *linalg.Matrix) {
		rng := rand.New(rand.NewSource(seed))
		m := nn.NewMLP([]int{64, 32, 32, 1}, rng)
		x := linalg.NewMatrix(batch, 64)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		return m, x
	}
	m, x := newMLP(1)
	ar := &linalg.Arena{}
	rows := []Row{
		run(NNForwardScalar, batch, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for n := 0; n < batch; n++ {
					sink = m.Predict(x.RowView(n))[0]
				}
			}
		}),
		run(NNForwardBatch, batch, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ar.Reset()
				sink = m.PredictBatch(ar, x).Data[0]
			}
		}),
	}
	ms, xs := newMLP(2)
	optS := nn.NewAdam(0.001)
	layersS := nn.LayersOf(ms)
	rows = append(rows, run(NNTrainIterScalar, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for n := 0; n < batch; n++ {
				y, c := ms.Forward(xs.RowView(n))
				ms.Backward(c, []float64{2 * y[0]})
			}
			optS.Step(layersS, batch)
		}
	}))
	mb, xb := newMLP(2)
	optB := nn.NewAdam(0.001)
	layersB := nn.LayersOf(mb)
	dOut := linalg.NewMatrix(batch, 1)
	rows = append(rows, run(NNTrainIterBatch, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ar.Reset()
			y, c := mb.ForwardBatch(ar, xb)
			for n := 0; n < batch; n++ {
				dOut.Data[n] = 2 * y.Data[n]
			}
			mb.BackwardBatchNoInput(ar, c, dOut)
			optB.Step(layersB, batch)
		}
	}))
	return rows
}

// Speedup returns the scalar/batch throughput ratio for a (scalar, batch)
// row pair — >1 means the batched path is faster.
func Speedup(rows []Row, scalarName, batchName string) (float64, error) {
	idx := Index(rows)
	s, ok1 := idx[scalarName]
	b, ok2 := idx[batchName]
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("bench: missing rows %q/%q", scalarName, batchName)
	}
	if b.NsPerOp <= 0 {
		return 0, fmt.Errorf("bench: non-positive ns_per_op in %q", batchName)
	}
	return s.NsPerOp / b.NsPerOp, nil
}

// Index maps rows by name.
func Index(rows []Row) map[string]Row {
	out := make(map[string]Row, len(rows))
	for _, r := range rows {
		out[r.Name] = r
	}
	return out
}

// Compare gates the current run against a baseline: for every Gated row,
// predictions/sec (after rescaling the current run by the calibration
// ratio, so different machine speeds cancel) must not fall more than tol
// below the baseline; and for every AllocGated row, allocs_per_op must
// not exceed the baseline's at all (counts are machine-independent, so
// any increase is a code regression). It returns one error naming every
// regressed row, or nil.
func Compare(baseline, current []Row, tol float64) error {
	base := Index(baseline)
	cur := Index(current)
	norm := 1.0
	if bc, ok := base[Calib]; ok {
		if cc, ok2 := cur[Calib]; ok2 && bc.NsPerOp > 0 && cc.NsPerOp > 0 {
			norm = bc.NsPerOp / cc.NsPerOp
		}
	}
	var regressed []string
	for _, name := range Gated {
		b, ok := base[name]
		if !ok {
			continue // baseline predates this row; nothing to gate against
		}
		c, ok := cur[name]
		if !ok {
			regressed = append(regressed, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		basePps := 1e9 / b.NsPerOp
		curPps := 1e9 / (c.NsPerOp * norm)
		if curPps < (1-tol)*basePps {
			regressed = append(regressed, fmt.Sprintf(
				"%s: %.0f predictions/sec (machine-normalized) vs baseline %.0f — %.1f%% regression exceeds %.0f%% tolerance",
				name, curPps, basePps, 100*(1-curPps/basePps), 100*tol))
		}
	}
	// Allocation gate: allocs/op is a count, not a speed — no machine
	// normalization applies, and any increase over the baseline is a
	// code change (a lost pooling or snapshot optimization), never noise.
	for _, name := range AllocGated {
		b, ok := base[name]
		if !ok {
			continue // baseline predates this row; nothing to gate against
		}
		c, ok := cur[name]
		if !ok {
			regressed = append(regressed, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regressed = append(regressed, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d — allocation regression (counts are machine-independent; zero tolerance)",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	// AllocNoIncrease rows sit near-but-not-at zero: their residual
	// allocs/op amortize sync.Pool misses, so a GC cycle emptying a pool
	// mid-run can nudge the count by one on a different machine. Allow
	// exactly that one alloc of jitter — a lost pooling optimization
	// (the regression this gate exists for) adds several allocs per op,
	// not one.
	for _, name := range AllocNoIncrease {
		b, ok := base[name]
		if !ok {
			continue
		}
		c, ok := cur[name]
		if !ok {
			regressed = append(regressed, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if c.AllocsPerOp > b.AllocsPerOp+1 {
			regressed = append(regressed, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d — pooling regression (counts are machine-independent; tolerance is 1 alloc of GC jitter)",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	if len(regressed) > 0 {
		sort.Strings(regressed)
		return fmt.Errorf("bench: regression gate failed:\n  %s", strings.Join(regressed, "\n  "))
	}
	return nil
}

// WriteJSON writes rows as the BENCH_PR2.json document.
func WriteJSON(path string, rows []Row) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a BENCH_PR2.json document.
func ReadJSON(path string) ([]Row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []Row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return rows, nil
}
