package qcache

import (
	"strings"
	"testing"
)

// TestTenantNamespace: Options.Tenant is part of every key's identity.
// Two caches configured for different tenants stamp the same logical
// key into disjoint namespaces — different hashes, different debug
// strings — so a tenant can never read or evict another's entries even
// if the instances were ever to share storage.
func TestTenantNamespace(t *testing.T) {
	ca := New(Options{Shards: 2, Capacity: 32, Tenant: "alpha"})
	cb := New(Options{Shards: 2, Capacity: 32, Tenant: "beta"})
	c0 := New(Options{Shards: 2, Capacity: 32})

	k := PredictionKey(0, "SELECT 1")
	ka, kb, k0 := ca.stamp(k), cb.stamp(k), c0.stamp(k)
	if ka == kb || ka == k0 || kb == k0 {
		t.Fatalf("tenant stamp did not partition keys: %v %v %v", ka, kb, k0)
	}
	if k0 != k {
		t.Fatal("no-tenant cache must leave keys untouched")
	}
	if ka.hash() == kb.hash() {
		t.Fatal("stamped keys of different tenants share a hash")
	}
	if !strings.HasPrefix(ka.String(), "alpha\x00") {
		t.Fatalf("stamped key string %q lacks tenant prefix", ka.String())
	}

	// Same-tenant round trips keep working through the stamped accessors.
	g := ca.Generation()
	ca.PutPrediction(k, g, 4.5)
	if v, ok := ca.GetPrediction(k, g); !ok || v != 4.5 {
		t.Fatalf("same-tenant round trip: got (%v, %v)", v, ok)
	}
	if st := ca.Stats(); st.Tenant != "alpha" {
		t.Fatalf("Stats().Tenant = %q, want alpha", st.Tenant)
	}
}
