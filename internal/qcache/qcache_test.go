package qcache

import (
	"fmt"
	"testing"

	"repro/internal/sqlparse"
)

func TestBasicPutGet(t *testing.T) {
	c := New(Options{Shards: 4, Capacity: 64})
	g := c.Generation()
	k := PredictionKey(0, "SELECT 1")
	if _, ok := c.GetPrediction(k, g); ok {
		t.Fatal("empty cache must miss")
	}
	c.PutPrediction(k, g, 1.25)
	if v, ok := c.GetPrediction(k, g); !ok || v != 1.25 {
		t.Fatalf("got (%v, %v), want (1.25, true)", v, ok)
	}
	// Same SQL under a different environment is a different key.
	if _, ok := c.GetPrediction(PredictionKey(1, "SELECT 1"), g); ok {
		t.Fatal("env must partition the key space")
	}
	q := sqlparse.MustParse("SELECT * FROM t WHERE a = 1")
	tk := TemplateKey(0, "select * from t where a = ?")
	c.PutTemplate(tk, g, q)
	if got, ok := c.GetTemplate(tk, g); !ok || got != q {
		t.Fatal("template round-trip failed")
	}
	st := c.Stats()
	if st.Prediction.Hits != 1 || st.Prediction.Misses != 2 || st.Prediction.Stores != 1 {
		t.Fatalf("prediction stats = %+v", st.Prediction)
	}
	if st.Template.Size != 1 {
		t.Fatalf("template size = %d", st.Template.Size)
	}
}

func TestGenerationInvalidates(t *testing.T) {
	c := New(Options{Shards: 2, Capacity: 32})
	g1 := uint64(100)
	c.SetGeneration(g1)
	k := PredictionKey(0, "q")
	c.PutPrediction(k, g1, 7)
	if _, ok := c.GetPrediction(k, g1); !ok {
		t.Fatal("want hit at g1")
	}
	g2 := uint64(200)
	c.SetGeneration(g2)
	if _, ok := c.GetPrediction(k, g2); ok {
		t.Fatal("old-generation entry served at new generation")
	}
	// A straggling write stamped with the old generation must stay
	// invisible at the new one.
	c.PutPrediction(PredictionKey(0, "late"), g1, 9)
	if _, ok := c.GetPrediction(PredictionKey(0, "late"), g2); ok {
		t.Fatal("stale-stamped write served at new generation")
	}
	// New-generation writes work as usual.
	c.PutPrediction(k, g2, 8)
	if v, _ := c.GetPrediction(k, g2); v != 8 {
		t.Fatalf("got %v, want 8", v)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(Options{Shards: 2, Capacity: 16})
	g := c.Generation()
	for i := 0; i < 1000; i++ {
		c.PutPrediction(PredictionKey(0, fmt.Sprintf("q%d", i)), g, float64(i))
	}
	st := c.Stats()
	if st.Prediction.Size > 16 {
		t.Fatalf("size %d exceeds capacity 16", st.Prediction.Size)
	}
	if st.Prediction.Evictions == 0 {
		t.Fatal("want evictions under pressure")
	}
}

// TestSecondChance pins the CLOCK behaviour: a key that is re-referenced
// between insertions survives eviction pressure that sweeps unreferenced
// keys out.
func TestSecondChance(t *testing.T) {
	c := New(Options{Shards: 8, Capacity: 32}) // 4 slots per shard
	g := c.Generation()
	hot := PredictionKey(0, "hot")
	c.PutPrediction(hot, g, 1)
	sh := c.prediction.shardFor(hot)
	// Cold keys that land in the hot key's shard, so they contend for its
	// four slots — three rings' worth of them.
	var fill []Key
	for i := 0; len(fill) < 12; i++ {
		k := PredictionKey(0, fmt.Sprintf("fill%d", i))
		if c.prediction.shardFor(k) == sh {
			fill = append(fill, k)
		}
	}
	for i, k := range fill {
		// Re-referencing between inserts keeps the hot key's CLOCK bit
		// set, so every sweep gives it a second chance and evicts an
		// unreferenced cold key instead.
		if _, ok := c.GetPrediction(hot, g); !ok {
			t.Fatalf("insert %d: referenced hot key evicted", i)
		}
		c.PutPrediction(k, g, float64(i))
	}
	if _, ok := c.GetPrediction(hot, g); !ok {
		t.Fatal("hot key evicted despite constant re-reference")
	}
}

func TestStaleEntriesPreferredVictims(t *testing.T) {
	c := New(Options{Shards: 2, Capacity: 8})
	g1 := uint64(1)
	c.SetGeneration(g1)
	for i := 0; i < 8; i++ {
		c.PutPrediction(PredictionKey(0, fmt.Sprintf("old%d", i)), g1, 1)
	}
	g2 := uint64(2)
	c.SetGeneration(g2)
	// New-generation inserts reclaim stale slots without churning each
	// other out: all 4 (per-shard capacity) newest keys must be resident.
	var keys []Key
	for i := 0; i < 4; i++ {
		k := PredictionKey(0, fmt.Sprintf("new%d", i))
		keys = append(keys, k)
		c.PutPrediction(k, g2, 2)
	}
	for _, k := range keys {
		if _, ok := c.GetPrediction(k, g2); !ok {
			t.Fatalf("new-generation key %q evicted while stale entries remained", k)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	c := New(Options{})
	st := c.Stats()
	if st.Shards&(st.Shards-1) != 0 || st.Shards < 8 {
		t.Fatalf("default shards = %d, want power of two >= 8", st.Shards)
	}
	if st.Capacity != 4096 {
		t.Fatalf("default capacity = %d", st.Capacity)
	}
	if New(Options{Shards: 3}).Stats().Shards != 8 {
		t.Fatal("shards must round up to a power of two (min 8)")
	}
}

func TestHitRate(t *testing.T) {
	c := New(Options{Shards: 2, Capacity: 8})
	g := c.Generation()
	k := PredictionKey(0, "q")
	c.GetPrediction(k, g) // miss
	c.PutPrediction(k, g, 1)
	c.GetPrediction(k, g) // hit
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}
