// Package qcache is the sharded, generation-aware query-fingerprint
// cache behind the estimate hot path. It holds three tiers, each keyed
// off the normalized SQL fingerprint (internal/sqlparse.Fingerprint):
//
//	template    (env, fingerprint)            → resolved plan skeleton
//	feature     (env, fingerprint, literals)  → featurized plan
//	prediction  (env, exact SQL)              → predicted milliseconds
//
// A cold query pays the full front half (parse → resolve → plan →
// featurize → infer) and populates all three tiers on the way out. A
// repeat of the exact text hits the prediction tier and skips everything.
// A reformatted spelling of the same semantics hits the feature tier and
// pays only model inference. A new literal vector over a known template
// hits the template tier and skips lexing, parsing, and name resolution,
// re-planning from the cached skeleton so every literal-dependent
// decision (selectivities, operator choices) is recomputed — the property
// that keeps cached results bit-identical to uncached ones.
//
// # Generations
//
// Every entry is stamped with the generation it was computed under — a
// caller-supplied value derived from the estimator's full artifact hash
// (benchmark fingerprint, env snapshot coefficients, reduction mask,
// model weights). A lookup hits only when the entry's stamp equals the
// caller's generation, and SetGeneration is one atomic store: swapping
// in a retrained or freshly loaded estimator invalidates every tier at
// once without a global lock, and in-flight writes from the old
// generation can never satisfy new-generation reads.
//
// # Sharding
//
// Each tier is split over a power-of-two number of shards (key-hash
// selected) with one mutex each, so concurrent serving spreads lock
// traffic; within a shard, entries live in a fixed-capacity CLOCK ring
// (second-chance LRU approximation): a hit sets the entry's reference
// bit, and the eviction hand clears bits until it finds an unreferenced
// victim. CLOCK keeps hits O(1) without the list surgery of exact LRU.
package qcache

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/encoding"
	"repro/internal/sqlparse"
)

// Options sizes a cache.
type Options struct {
	// Shards is the per-tier shard count, rounded up to a power of two.
	// 0 picks a default scaled to GOMAXPROCS.
	Shards int
	// Capacity is the per-tier entry budget, split evenly across shards
	// (minimum one entry per shard). 0 means 4096.
	Capacity int
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8 * runtime.GOMAXPROCS(0)
	}
	o.Shards = nextPow2(min(max(o.Shards, 8), 512))
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	return o
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// TierStats is one tier's counter snapshot.
type TierStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
}

// Stats snapshots the whole cache.
type Stats struct {
	Generation uint64    `json:"generation"`
	Shards     int       `json:"shards"`
	Capacity   int       `json:"capacity_per_tier"`
	Template   TierStats `json:"template"`
	Feature    TierStats `json:"feature"`
	Prediction TierStats `json:"prediction"`
}

// HitRate is hits/(hits+misses) over all tiers' lookups, 0 when idle.
func (s Stats) HitRate() float64 {
	h := s.Template.Hits + s.Feature.Hits + s.Prediction.Hits
	m := s.Template.Misses + s.Feature.Misses + s.Prediction.Misses
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// entry is one cached value with its generation stamp and CLOCK bit.
type entry struct {
	key  string
	gen  uint64
	val  any
	ref  bool
	live bool
}

// shard is one lock domain: a fixed-capacity CLOCK ring plus its key
// index.
type shard struct {
	mu    sync.Mutex
	index map[string]int // key → slot
	slots []entry        // fixed length = per-shard capacity
	hand  int
	used  int
}

// tier is one cache level.
type tier struct {
	shards []*shard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64
}

func newTier(shards, capacity int) *tier {
	per := max(capacity/shards, 1)
	t := &tier{shards: make([]*shard, shards), mask: uint64(shards - 1)}
	for i := range t.shards {
		t.shards[i] = &shard{index: make(map[string]int, per), slots: make([]entry, per)}
	}
	return t
}

// fnv64a hashes a key for shard selection.
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (t *tier) shardFor(key string) *shard { return t.shards[fnv64a(key)&t.mask] }

// get returns the value stored under key at generation g. An entry from
// any other generation is invisible (and counted as a miss), which is the
// whole invalidation mechanism.
func (t *tier) get(key string, g uint64) (any, bool) {
	s := t.shardFor(key)
	s.mu.Lock()
	i, ok := s.index[key]
	if !ok || s.slots[i].gen != g {
		s.mu.Unlock()
		t.misses.Add(1)
		return nil, false
	}
	s.slots[i].ref = true
	v := s.slots[i].val
	s.mu.Unlock()
	t.hits.Add(1)
	return v, true
}

// put stores val under key stamped with generation g, evicting via CLOCK
// second chance when the shard is full. Stale-generation residents are
// preferred victims regardless of their reference bit.
func (t *tier) put(key string, g uint64, val any) {
	s := t.shardFor(key)
	s.mu.Lock()
	if i, ok := s.index[key]; ok {
		s.slots[i].gen = g
		s.slots[i].val = val
		s.slots[i].ref = true
		s.mu.Unlock()
		t.stores.Add(1)
		return
	}
	var i int
	if s.used < len(s.slots) {
		// Free slot available (ring not yet full): linear scan from the
		// hand — rings are small, and this only runs until first fill.
		for s.slots[s.hand].live {
			s.hand = (s.hand + 1) % len(s.slots)
		}
		i = s.hand
		s.used++
	} else {
		// CLOCK sweep: clear reference bits until an unreferenced victim
		// turns up; entries from dead generations lose their second
		// chance immediately.
		for {
			e := &s.slots[s.hand]
			if e.ref && e.gen == g {
				e.ref = false
				s.hand = (s.hand + 1) % len(s.slots)
				continue
			}
			break
		}
		i = s.hand
		delete(s.index, s.slots[i].key)
		t.evictions.Add(1)
	}
	// New entries enter unreferenced — the first hit arms the bit — so a
	// stream of one-shot queries cycles through unreferenced slots
	// instead of stripping re-referenced residents of their second
	// chance (scan resistance).
	s.slots[i] = entry{key: key, gen: g, val: val, live: true}
	s.index[key] = i
	s.hand = (s.hand + 1) % len(s.slots)
	s.mu.Unlock()
	t.stores.Add(1)
}

func (t *tier) stats() TierStats {
	st := TierStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Stores:    t.stores.Load(),
		Evictions: t.evictions.Load(),
	}
	for _, s := range t.shards {
		s.mu.Lock()
		st.Size += len(s.index)
		s.mu.Unlock()
	}
	return st
}

// QueryCache is the three-tier cache. One instance serves one estimator
// at a time; attaching a different estimator just moves the generation.
type QueryCache struct {
	opts                          Options
	gen                           atomic.Uint64
	template, feature, prediction *tier
}

// New builds an empty cache.
func New(opts Options) *QueryCache {
	o := opts.withDefaults()
	return &QueryCache{
		opts:       o,
		template:   newTier(o.Shards, o.Capacity),
		feature:    newTier(o.Shards, o.Capacity),
		prediction: newTier(o.Shards, o.Capacity),
	}
}

// Generation returns the current generation. Callers capture it once per
// request and pass the same value to every get/put of that request, so a
// request that races a generation swap stays internally consistent and
// its writes are invisible to the new generation.
func (c *QueryCache) Generation() uint64 { return c.gen.Load() }

// SetGeneration atomically moves the cache to a new generation,
// logically invalidating every entry of all three tiers at once (stale
// entries are evicted lazily as capacity demands).
func (c *QueryCache) SetGeneration(g uint64) { c.gen.Store(g) }

// Key builders. Tier keys embed the environment ID because every cached
// artifact downstream of planning is environment-specific (knobs steer
// operator choice; the snapshot block is per-environment).

// TemplateKey keys the template tier: (env, fingerprint).
func TemplateKey(envID int, fingerprint string) string {
	return strconv.Itoa(envID) + "\x00" + fingerprint
}

// FeatureKey keys the feature tier: (env, fingerprint, literal signature).
func FeatureKey(envID int, fingerprint, sig string) string {
	return strconv.Itoa(envID) + "\x00" + fingerprint + "\x00" + sig
}

// PredictionKey keys the prediction tier: (env, exact SQL text).
func PredictionKey(envID int, sql string) string {
	return strconv.Itoa(envID) + "\x00" + sql
}

// GetTemplate returns the resolved skeleton cached for a template key.
// The skeleton is shared and immutable: callers must Clone before
// binding literals.
func (c *QueryCache) GetTemplate(key string, g uint64) (*sqlparse.Query, bool) {
	v, ok := c.template.get(key, g)
	if !ok {
		return nil, false
	}
	return v.(*sqlparse.Query), true
}

// PutTemplate stores a resolved skeleton. The caller hands over
// ownership: the query must not be mutated afterwards.
func (c *QueryCache) PutTemplate(key string, g uint64, q *sqlparse.Query) {
	c.template.put(key, g, q)
}

// GetFeatures returns the featurized plan cached for a feature key.
// Shared and immutable.
func (c *QueryCache) GetFeatures(key string, g uint64) (*encoding.FeaturizedPlan, bool) {
	v, ok := c.feature.get(key, g)
	if !ok {
		return nil, false
	}
	return v.(*encoding.FeaturizedPlan), true
}

// PutFeatures stores a featurized plan; ownership transfers.
func (c *QueryCache) PutFeatures(key string, g uint64, fp *encoding.FeaturizedPlan) {
	c.feature.put(key, g, fp)
}

// GetPrediction returns the memoized prediction for an exact (env, SQL)
// pair.
func (c *QueryCache) GetPrediction(key string, g uint64) (float64, bool) {
	v, ok := c.prediction.get(key, g)
	if !ok {
		return 0, false
	}
	return v.(float64), true
}

// PutPrediction memoizes one prediction.
func (c *QueryCache) PutPrediction(key string, g uint64, ms float64) {
	c.prediction.put(key, g, ms)
}

// Stats snapshots all counters.
func (c *QueryCache) Stats() Stats {
	return Stats{
		Generation: c.gen.Load(),
		Shards:     c.opts.Shards,
		Capacity:   c.opts.Capacity,
		Template:   c.template.stats(),
		Feature:    c.feature.stats(),
		Prediction: c.prediction.stats(),
	}
}
