// Package qcache is the sharded, generation-aware query-fingerprint
// cache behind the estimate hot path. It holds three tiers, each keyed
// off the normalized SQL fingerprint (internal/sqlparse.Fingerprint):
//
//	template    (env, fingerprint)            → resolved plan skeleton
//	feature     (env, fingerprint, literals)  → featurized plan
//	prediction  (env, exact SQL)              → predicted milliseconds
//
// A cold query pays the full front half (parse → resolve → plan →
// featurize → infer) and populates all three tiers on the way out. A
// repeat of the exact text hits the prediction tier and skips everything.
// A reformatted spelling of the same semantics hits the feature tier and
// pays only model inference. A new literal vector over a known template
// hits the template tier and skips lexing, parsing, and name resolution,
// re-planning from the cached skeleton so every literal-dependent
// decision (selectivities, operator choices) is recomputed — the property
// that keeps cached results bit-identical to uncached ones.
//
// # Generations
//
// Every entry is stamped with the generation it was computed under — a
// caller-supplied value derived from the estimator's full artifact hash
// (benchmark fingerprint, env snapshot coefficients, reduction mask,
// model weights). A lookup hits only when the entry's stamp equals the
// caller's generation, and SetGeneration is one atomic store: swapping
// in a retrained or freshly loaded estimator invalidates every tier at
// once without a global lock, and in-flight writes from the old
// generation can never satisfy new-generation reads.
//
// # Sharding and the RCU read side
//
// Each tier is split over a power-of-two number of shards (key-hash
// selected). Within a shard the authoritative state — a key index plus a
// fixed-capacity CLOCK ring (second-chance LRU approximation) — lives
// behind one mutex that only WRITERS take. Readers go through a
// published immutable snapshot of the shard's key index, loaded with one
// atomic pointer read: a warm hit is a lock-free map probe plus three
// atomic operations (value load, CLOCK reference bit, hit counter) and
// performs zero heap allocations. Keys are comparable structs (not
// concatenated strings), so building a lookup key allocates nothing
// either.
//
// The snapshot protocol is copy-on-write with amortized publication:
//
//   - Entry slots are shared by pointer between the ring, the index, and
//     every published snapshot. A store to an existing key swaps the
//     slot's value box in place (one atomic pointer store), so updates —
//     including re-stamping a key after a generation swap — are visible
//     to readers immediately, without republishing.
//   - An eviction nils the victim slot's box; a reader holding a stale
//     snapshot sees the dead slot and reports a miss. Lookups can
//     therefore trust any live slot they find: live slots in a snapshot
//     are always the authoritative ones.
//   - Insertions land in the authoritative index first and become
//     lock-free-visible at the next publication, which clones the index
//     (O(shard capacity)) and swaps the snapshot pointer. Publications
//     are amortized: a writer publishes after promoteEvery insertions,
//     and a reader that misses the snapshot while insertions are pending
//     takes the writer lock once to probe the authoritative index
//     (put-then-get stays a hit). Locked probes that hit push the next
//     publication forward (those are exactly the reads a fresher
//     snapshot would have made lock-free); locked probes that miss only
//     count toward a ring's-worth backstop, so cold-miss streams drain
//     the pending window at amortized O(1) instead of paying a clone
//     per lookup. Once a working set is published, its readers never
//     touch the mutex again — the steady-state warm path is wait-free
//     with respect to writers.
//
// Counters are plain atomics incremented exactly once per lookup/store/
// eviction, so per-tier stats stay exact and monotonic under the
// lock-free read path.
package qcache

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/sqlparse"
)

// Options sizes a cache.
type Options struct {
	// Shards is the per-tier shard count, rounded up to a power of two.
	// 0 picks a default scaled to GOMAXPROCS.
	Shards int
	// Capacity is the per-tier entry budget, split evenly across shards
	// (minimum one entry per shard). 0 means 4096.
	Capacity int
	// Tenant namespaces every key this cache stores or looks up: the
	// tenant ID becomes part of the key identity (and its shard hash), so
	// entries written under one tenant can never satisfy — or collide
	// with — lookups under another, even if two caches' contents were
	// ever merged or a cache object were shared by mistake. The
	// multi-tenant registry (internal/tenant) gives every tenant its own
	// cache instance stamped with its name; single-tenant callers leave
	// it empty and keys are exactly the pre-tenant ones.
	Tenant string
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8 * runtime.GOMAXPROCS(0)
	}
	o.Shards = nextPow2(min(max(o.Shards, 8), 512))
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	return o
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// TierStats is one tier's counter snapshot.
type TierStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
}

// Stats snapshots the whole cache.
type Stats struct {
	Generation uint64    `json:"generation"`
	Tenant     string    `json:"tenant,omitempty"`
	Shards     int       `json:"shards"`
	Capacity   int       `json:"capacity_per_tier"`
	Template   TierStats `json:"template"`
	Feature    TierStats `json:"feature"`
	Prediction TierStats `json:"prediction"`
}

// HitRate is hits/(hits+misses) over all tiers' lookups, 0 when idle.
func (s Stats) HitRate() float64 {
	h := s.Template.Hits + s.Feature.Hits + s.Prediction.Hits
	m := s.Template.Misses + s.Feature.Misses + s.Prediction.Misses
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Key identifies one cache entry: the environment ID plus the tier's
// string component(s), plus the owning cache's tenant namespace. It is
// a comparable struct rather than a concatenated string so hot-path
// lookups build it on the stack — a warm probe allocates nothing.
// Construct with PredictionKey, TemplateKey, or FeatureKey; the tenant
// component is stamped by the cache itself (from Options.Tenant) on
// every get/put, so callers cannot forge or forget it.
type Key struct {
	env int
	txt string // exact SQL (prediction) or fingerprint (template/feature)
	sig string // literal signature (feature tier only)
	tnt string // tenant namespace (Options.Tenant; "" single-tenant)
}

// TemplateKey keys the template tier: (env, fingerprint). Tier keys
// embed the environment ID because every cached artifact downstream of
// planning is environment-specific (knobs steer operator choice; the
// snapshot block is per-environment).
func TemplateKey(envID int, fingerprint string) Key {
	return Key{env: envID, txt: fingerprint}
}

// FeatureKey keys the feature tier: (env, fingerprint, literal signature).
func FeatureKey(envID int, fingerprint, sig string) Key {
	return Key{env: envID, txt: fingerprint, sig: sig}
}

// PredictionKey keys the prediction tier: (env, exact SQL text).
func PredictionKey(envID int, sql string) Key {
	return Key{env: envID, txt: sql}
}

// String renders the key for diagnostics (qcfe-explain). The hot path
// never calls it.
func (k Key) String() string {
	s := strconv.Itoa(k.env) + "\x00" + k.txt
	if k.sig != "" {
		s += "\x00" + k.sig
	}
	if k.tnt != "" {
		s = k.tnt + "\x00" + s
	}
	return s
}

// hash is FNV-64a over the key's components (with separators), used for
// shard selection. Inlined byte walk — no allocation.
func (k Key) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	e := uint64(k.env)
	for i := 0; i < 8; i++ {
		h ^= (e >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < len(k.txt); i++ {
		h ^= uint64(k.txt[i])
		h *= prime
	}
	h *= prime // separator: ("ab","c") and ("a","bc") diverge
	for i := 0; i < len(k.sig); i++ {
		h ^= uint64(k.sig[i])
		h *= prime
	}
	h *= prime // separator before the tenant namespace
	for i := 0; i < len(k.tnt); i++ {
		h ^= uint64(k.tnt[i])
		h *= prime
	}
	return h
}

// box is one immutable (generation, value) pair. Stores swap a whole
// box atomically so a reader can never observe a value from one
// generation stamped with another.
type box struct {
	gen uint64
	val any
}

// slot is one resident entry, shared by pointer between the CLOCK ring,
// the authoritative index, and every published snapshot. A nil box
// means the slot was evicted: stale snapshots that still reference it
// report a miss.
type slot struct {
	key Key
	box atomic.Pointer[box]
	ref atomic.Bool // CLOCK reference bit; set lock-free by readers
}

// shard is one lock domain. mu guards the authoritative state (index,
// ring, hand, used, missed); read is the immutable published snapshot
// the lock-free read side probes; pending counts insertions not yet
// published (readers consult it to decide whether the authoritative
// index could know more than the snapshot).
type shard struct {
	mu      sync.Mutex
	read    atomic.Pointer[map[Key]*slot]
	pending atomic.Int64

	index map[Key]*slot
	ring  []*slot // fixed length = per-shard capacity; nil until first fill
	hand  int
	used  int
	// Publication pressure from the read side, both reset on publish:
	// slowHits counts locked probes that HIT (reads that would have been
	// lock-free had the snapshot caught up — once they reach pending,
	// publishing pays for itself); slowProbes counts every locked probe
	// (hit or miss) and forces a publish after a ring's worth, so a
	// cold-miss stream drains pending instead of locking forever, at an
	// amortized O(1) clone cost per probe.
	slowHits   int
	slowProbes int
}

// tier is one cache level.
type tier struct {
	shards       []*shard
	mask         uint64
	promoteEvery int

	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64

	// hist, when attached, records every lookup's latency (hit or miss).
	// Behind an atomic pointer so the serving layer can attach after
	// construction without racing in-flight lookups; nil (the default)
	// costs one atomic load and records nothing. Recording is two atomic
	// adds into pre-allocated registers — the zero-alloc warm path stays
	// zero-alloc with observation enabled.
	hist atomic.Pointer[obs.Histogram]
}

func newTier(shards, capacity int) *tier {
	per := max(capacity/shards, 1)
	t := &tier{
		shards: make([]*shard, shards),
		mask:   uint64(shards - 1),
		// Publish after at most per/8 pending insertions: cloning the
		// index costs O(per), so publication stays an amortized ~8 map
		// writes per insertion while bounding how long the snapshot can
		// trail the authoritative state.
		promoteEvery: max(per/8, 8),
	}
	for i := range t.shards {
		t.shards[i] = &shard{index: make(map[Key]*slot, per), ring: make([]*slot, per)}
	}
	return t
}

func (t *tier) shardFor(key Key) *shard { return t.shards[key.hash()&t.mask] }

// get returns the value stored under key at generation g. An entry from
// any other generation is invisible (and counted as a miss), which is
// the whole invalidation mechanism.
//
// The fast path reads only the published snapshot: one atomic pointer
// load, one map probe, and — on a hit — the value-box load, the CLOCK
// reference bit, and the hit counter, all atomic and allocation-free.
// Only when the probe is inconclusive AND insertions are pending does
// the reader fall back to the authoritative index under the lock; each
// such fallback counts toward triggering the next publication, so a
// working set migrates into the snapshot after at most `pending` locked
// probes and then never contends again.
func (t *tier) get(key Key, g uint64) (any, bool) {
	if h := t.hist.Load(); h != nil {
		t0 := time.Now()
		v, ok := t.lookup(key, g)
		h.Record(time.Since(t0))
		return v, ok
	}
	return t.lookup(key, g)
}

// lookup is get's uninstrumented body.
func (t *tier) lookup(key Key, g uint64) (any, bool) {
	s := t.shardFor(key)
	if m := s.read.Load(); m != nil {
		if sl, ok := (*m)[key]; ok {
			if b := sl.box.Load(); b != nil {
				// Live slots in a snapshot are authoritative: value
				// updates and generation re-stamps swap the box in
				// place, and eviction (the only way a slot leaves the
				// index) nils it.
				if b.gen == g {
					sl.ref.Store(true)
					t.hits.Add(1)
					return b.val, true
				}
				t.misses.Add(1)
				return nil, false
			}
			// Dead slot: the key may have been re-inserted behind a
			// fresher slot the snapshot does not know yet — fall through
			// to the pending check.
		}
	}
	if s.pending.Load() > 0 {
		if v, ok := s.slowGet(t, key, g); ok {
			return v, true
		}
	}
	t.misses.Add(1)
	return nil, false
}

// slowGet resolves a snapshot miss against the authoritative index while
// insertions are pending. It runs under the shard mutex — the only place
// the read side ever locks — and helps publish once enough locked
// probes have accumulated. Only locked HITS force an early publish
// (they are the reads publication would make lock-free); a miss learns
// nothing from a fresh snapshot, so misses only trigger the slow
// ring's-worth backstop — publishing the clone on every cold miss would
// turn a fresh-key workload into an O(capacity) copy per lookup.
func (s *shard) slowGet(t *tier, key Key, g uint64) (any, bool) {
	s.mu.Lock()
	sl, ok := s.index[key]
	var b *box
	if ok {
		b = sl.box.Load()
	}
	hit := b != nil && b.gen == g
	s.slowProbes++
	if hit {
		s.slowHits++
	}
	if (hit && int64(s.slowHits) >= s.pending.Load()) || s.slowProbes >= len(s.ring) {
		s.publishLocked()
	}
	s.mu.Unlock()
	if hit {
		sl.ref.Store(true)
		t.hits.Add(1)
		return b.val, true
	}
	return nil, false
}

// publishLocked clones the authoritative index into a fresh immutable
// snapshot and swaps it in. Caller holds s.mu.
func (s *shard) publishLocked() {
	m := make(map[Key]*slot, len(s.index))
	for k, sl := range s.index {
		m[k] = sl
	}
	s.read.Store(&m)
	s.pending.Store(0)
	s.slowHits, s.slowProbes = 0, 0
}

// put stores val under key stamped with generation g, evicting via CLOCK
// second chance when the shard is full. Stale-generation residents are
// preferred victims regardless of their reference bit. Writers are the
// only lockers of the shard mutex in steady state; readers on published
// keys proceed untouched throughout.
func (t *tier) put(key Key, g uint64, val any) {
	s := t.shardFor(key)
	b := &box{gen: g, val: val}
	s.mu.Lock()
	if sl, ok := s.index[key]; ok {
		// In-place update: visible to every snapshot holding this slot
		// without republishing.
		sl.box.Store(b)
		sl.ref.Store(true)
		s.mu.Unlock()
		t.stores.Add(1)
		return
	}
	var pos int
	if s.used < len(s.ring) {
		// Free slot available (ring not yet full): linear scan from the
		// hand — rings are small, and this only runs until first fill.
		for s.ring[s.hand] != nil {
			s.hand = (s.hand + 1) % len(s.ring)
		}
		pos = s.hand
		s.used++
	} else {
		// CLOCK sweep: clear reference bits until an unreferenced victim
		// turns up; entries from dead generations lose their second
		// chance immediately.
		for {
			v := s.ring[s.hand]
			vb := v.box.Load()
			if v.ref.Load() && vb != nil && vb.gen == g {
				v.ref.Store(false)
				s.hand = (s.hand + 1) % len(s.ring)
				continue
			}
			break
		}
		pos = s.hand
		victim := s.ring[pos]
		delete(s.index, victim.key)
		// Kill the slot, not just the index entry: readers holding a
		// snapshot that still references it must see a miss.
		victim.box.Store(nil)
		t.evictions.Add(1)
	}
	// New entries enter unreferenced — the first hit arms the bit — so a
	// stream of one-shot queries cycles through unreferenced slots
	// instead of stripping re-referenced residents of their second
	// chance (scan resistance).
	sl := &slot{key: key}
	sl.box.Store(b)
	s.ring[pos] = sl
	s.index[key] = sl
	s.hand = (pos + 1) % len(s.ring)
	if s.pending.Add(1) >= int64(t.promoteEvery) {
		s.publishLocked()
	}
	s.mu.Unlock()
	t.stores.Add(1)
}

func (t *tier) stats() TierStats {
	st := TierStats{
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Stores:    t.stores.Load(),
		Evictions: t.evictions.Load(),
	}
	for _, s := range t.shards {
		s.mu.Lock()
		st.Size += len(s.index)
		s.mu.Unlock()
	}
	return st
}

// QueryCache is the three-tier cache. One instance serves one estimator
// at a time; attaching a different estimator just moves the generation.
// When Options.Tenant is set, every key is stamped with the tenant
// namespace on the way in — the cache's contents are disjoint, by key
// identity, from every other tenant's.
type QueryCache struct {
	opts                          Options
	gen                           atomic.Uint64
	template, feature, prediction *tier
}

// Tenant returns the namespace this cache stamps into every key (""
// for a single-tenant cache).
func (c *QueryCache) Tenant() string { return c.opts.Tenant }

// stamp folds the cache's tenant namespace into a caller-built key.
// Key is a value type, so this cannot race.
func (c *QueryCache) stamp(key Key) Key {
	key.tnt = c.opts.Tenant
	return key
}

// New builds an empty cache.
func New(opts Options) *QueryCache {
	o := opts.withDefaults()
	return &QueryCache{
		opts:       o,
		template:   newTier(o.Shards, o.Capacity),
		feature:    newTier(o.Shards, o.Capacity),
		prediction: newTier(o.Shards, o.Capacity),
	}
}

// Generation returns the current generation. Callers capture it once per
// request and pass the same value to every get/put of that request, so a
// request that races a generation swap stays internally consistent and
// its writes are invisible to the new generation.
func (c *QueryCache) Generation() uint64 { return c.gen.Load() }

// SetGeneration atomically moves the cache to a new generation,
// logically invalidating every entry of all three tiers at once (stale
// entries are evicted lazily as capacity demands).
func (c *QueryCache) SetGeneration(g uint64) { c.gen.Store(g) }

// GetTemplate returns the resolved skeleton cached for a template key.
// The skeleton is shared and immutable: callers must Clone before
// binding literals.
func (c *QueryCache) GetTemplate(key Key, g uint64) (*sqlparse.Query, bool) {
	v, ok := c.template.get(c.stamp(key), g)
	if !ok {
		return nil, false
	}
	return v.(*sqlparse.Query), true
}

// PutTemplate stores a resolved skeleton. The caller hands over
// ownership: the query must not be mutated afterwards.
func (c *QueryCache) PutTemplate(key Key, g uint64, q *sqlparse.Query) {
	c.template.put(c.stamp(key), g, q)
}

// GetFeatures returns the featurized plan cached for a feature key.
// Shared and immutable.
func (c *QueryCache) GetFeatures(key Key, g uint64) (*encoding.FeaturizedPlan, bool) {
	v, ok := c.feature.get(c.stamp(key), g)
	if !ok {
		return nil, false
	}
	return v.(*encoding.FeaturizedPlan), true
}

// PutFeatures stores a featurized plan; ownership transfers.
func (c *QueryCache) PutFeatures(key Key, g uint64, fp *encoding.FeaturizedPlan) {
	c.feature.put(c.stamp(key), g, fp)
}

// GetPrediction returns the memoized prediction for an exact (env, SQL)
// pair. This is the serving warm path: lock-free and zero-alloc.
func (c *QueryCache) GetPrediction(key Key, g uint64) (float64, bool) {
	v, ok := c.prediction.get(c.stamp(key), g)
	if !ok {
		return 0, false
	}
	return v.(float64), true
}

// PutPrediction memoizes one prediction.
func (c *QueryCache) PutPrediction(key Key, g uint64, ms float64) {
	c.prediction.put(c.stamp(key), g, ms)
}

// SetLookupHistograms attaches per-tier lookup-latency histograms
// (internal/obs): every get on a tier — hit or miss, lock-free or via
// the slow path — records its duration into that tier's histogram. A
// nil histogram detaches its tier. The serving layer attaches these so
// /metrics can render qcfe_qcache_lookup_seconds{tier=...}; the
// library never requires them.
func (c *QueryCache) SetLookupHistograms(template, feature, prediction *obs.Histogram) {
	c.template.hist.Store(template)
	c.feature.hist.Store(feature)
	c.prediction.hist.Store(prediction)
}

// Stats snapshots all counters.
func (c *QueryCache) Stats() Stats {
	return Stats{
		Generation: c.gen.Load(),
		Tenant:     c.opts.Tenant,
		Shards:     c.opts.Shards,
		Capacity:   c.opts.Capacity,
		Template:   c.template.stats(),
		Feature:    c.feature.stats(),
		Prediction: c.prediction.stats(),
	}
}
