package qcache

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sqlparse"
)

// TestConcurrentGenerationFuzz hammers one cache from many goroutines
// with mixed hit/miss/store traffic while the generation is repeatedly
// swapped (the Save→Load / retrain scenario), asserting the cache's core
// safety property: a lookup made at generation g only ever returns a
// value that was computed at generation g. Values encode the generation
// they were "computed" under, so any cross-generation leak is caught
// exactly. Run under -race in CI, this also proves the sharded locking
// is sound.
func TestConcurrentGenerationFuzz(t *testing.T) {
	c := New(Options{Shards: 8, Capacity: 256})
	const (
		workers  = 16
		opsEach  = 4000
		keySpace = 512 // > capacity, so eviction churns constantly
		swaps    = 50
	)
	var gen atomic.Uint64
	gen.Store(1)
	c.SetGeneration(1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Swapper: bumps the logical generation, then the cache's, in that
	// order — mirroring how an estimator computes its stamp before
	// AttachCache publishes it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			g := gen.Add(1)
			c.SetGeneration(g)
		}
		close(stop)
	}()

	var leaks atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < opsEach; op++ {
				// Capture the request's generation once, like a real
				// estimate call does.
				g := c.Generation()
				key := PredictionKey(rng.Intn(4), fmt.Sprintf("q%d", rng.Intn(keySpace)))
				if v, ok := c.GetPrediction(key, g); ok {
					if uint64(v) != g {
						leaks.Add(1)
					}
				} else {
					// "Compute" the value under g and store it stamped g.
					c.PutPrediction(key, g, float64(g))
				}
			}
		}(w)
	}
	wg.Wait()
	<-stop
	if n := leaks.Load(); n > 0 {
		t.Fatalf("%d lookups returned a value from a different generation", n)
	}
	// After the last swap, reads at the final generation must never see
	// any of the earlier generations' values.
	final := c.Generation()
	for i := 0; i < keySpace; i++ {
		for env := 0; env < 4; env++ {
			if v, ok := c.GetPrediction(PredictionKey(env, fmt.Sprintf("q%d", i)), final); ok && uint64(v) != final {
				t.Fatalf("stale generation %v served after swap to %d", v, final)
			}
		}
	}
}

// TestConcurrentTierMix drives all three tiers from many goroutines over
// a shared key population — the shape of 48-way serving traffic — and
// checks the counters add up (every lookup is exactly one hit or one
// miss).
func TestConcurrentTierMix(t *testing.T) {
	c := New(Options{Shards: 4, Capacity: 128})
	g := c.Generation()
	const workers = 12
	const opsEach = 2000
	skel := sqlparse.MustParse("SELECT * FROM t WHERE a = 1")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7))
			for op := 0; op < opsEach; op++ {
				fp := fmt.Sprintf("select * from t where a = ? /*%d*/", rng.Intn(64))
				switch rng.Intn(3) {
				case 0:
					k := TemplateKey(rng.Intn(2), fp)
					if _, ok := c.GetTemplate(k, g); !ok {
						c.PutTemplate(k, g, skel)
					}
				case 1:
					k := FeatureKey(rng.Intn(2), fp, fmt.Sprintf("n%d", rng.Intn(8)))
					if _, ok := c.GetFeatures(k, g); !ok {
						c.PutFeatures(k, g, nil)
					}
				default:
					k := PredictionKey(rng.Intn(2), fp)
					if _, ok := c.GetPrediction(k, g); !ok {
						c.PutPrediction(k, g, 1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	total := st.Template.Hits + st.Template.Misses + st.Feature.Hits + st.Feature.Misses +
		st.Prediction.Hits + st.Prediction.Misses
	if total != workers*opsEach {
		t.Fatalf("lookups accounted = %d, want %d", total, workers*opsEach)
	}
	for name, ts := range map[string]TierStats{"template": st.Template, "feature": st.Feature, "prediction": st.Prediction} {
		if ts.Size > st.Capacity {
			t.Fatalf("%s tier size %d exceeds capacity %d", name, ts.Size, st.Capacity)
		}
	}
}
