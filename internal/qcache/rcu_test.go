package qcache

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPredictionHitZeroAlloc pins the warm-path contract the CI bench
// gate enforces end to end: once a working set is published to the
// shard snapshots, a prediction-tier hit performs zero heap
// allocations. (The bench job gates the same property on the full
// serve.Server.Estimate path; this is the library-level anchor.)
func TestPredictionHitZeroAlloc(t *testing.T) {
	c := New(Options{Shards: 8, Capacity: 256})
	g := c.Generation()
	k := PredictionKey(3, "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 42")
	c.PutPrediction(k, g, 1.5)
	// Drain the publication window: reads during the pending window may
	// take the shard mutex once to help publish (and the publication
	// itself clones the index). After that the hit path is lock- and
	// allocation-free.
	for i := 0; i < 64; i++ {
		if _, ok := c.GetPrediction(k, g); !ok {
			t.Fatal("warm key missed")
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.GetPrediction(k, g); !ok {
			t.Fatal("warm key missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("prediction-tier hit allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestTemplateFeatureHitZeroAlloc extends the zero-alloc pin to the
// other two tiers' lookups: key construction is a stack struct and the
// snapshot probe allocates nothing, whatever the tier.
func TestTemplateFeatureHitZeroAlloc(t *testing.T) {
	c := New(Options{Shards: 8, Capacity: 256})
	g := c.Generation()
	fk := FeatureKey(1, "select * from t where a = ?", "n2:42")
	c.PutFeatures(fk, g, nil)
	tk := TemplateKey(1, "select * from t where a = ?")
	c.PutTemplate(tk, g, nil)
	for i := 0; i < 64; i++ {
		c.GetFeatures(fk, g)
		c.GetTemplate(tk, g)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.GetFeatures(fk, g); !ok {
			t.Fatal("feature key missed")
		}
		if _, ok := c.GetTemplate(tk, g); !ok {
			t.Fatal("template key missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("feature+template hits allocate %.2f allocs/op, want 0", allocs)
	}
}

// TestPutThenGetVisibleImmediately pins the visibility contract the
// serving layer depends on (serve's warm-probe test runs with the
// batcher stopped, so a post-store miss would hang a request): a get
// issued any time after put returns must hit, even before the insertion
// has been published to the lock-free snapshot.
func TestPutThenGetVisibleImmediately(t *testing.T) {
	c := New(Options{Shards: 8, Capacity: 1024})
	g := c.Generation()
	for i := 0; i < 500; i++ {
		k := PredictionKey(0, fmt.Sprintf("q%d", i))
		c.PutPrediction(k, g, float64(i))
		if v, ok := c.GetPrediction(k, g); !ok || v != float64(i) {
			t.Fatalf("key %d invisible right after put (got %v, %v)", i, v, ok)
		}
	}
}

// TestCountersExact pins counter exactness under the RCU read path: a
// deterministic single-goroutine sequence must account for every lookup
// and store exactly — no sampling, no approximation — because the soak
// suite asserts monotonicity and the drift monitor reads hit rates.
func TestCountersExact(t *testing.T) {
	c := New(Options{Shards: 8, Capacity: 1024})
	g := c.Generation()
	const n = 300
	for i := 0; i < n; i++ {
		c.GetPrediction(PredictionKey(0, fmt.Sprintf("q%d", i)), g) // cold miss
	}
	for i := 0; i < n; i++ {
		c.PutPrediction(PredictionKey(0, fmt.Sprintf("q%d", i)), g, float64(i))
	}
	for r := 0; r < 3; r++ {
		for i := 0; i < n; i++ {
			if _, ok := c.GetPrediction(PredictionKey(0, fmt.Sprintf("q%d", i)), g); !ok {
				t.Fatalf("round %d: key %d missed", r, i)
			}
		}
	}
	st := c.Stats().Prediction
	if st.Hits != 3*n || st.Misses != n || st.Stores != n || st.Evictions != 0 {
		t.Fatalf("counters = %+v, want hits=%d misses=%d stores=%d evictions=0", st, 3*n, n, n)
	}
	if st.Size != n {
		t.Fatalf("size = %d, want %d", st.Size, n)
	}
}

// TestRCUHammer races lock-free readers against concurrent stores,
// CLOCK evictions (tiny capacity forces constant churn), and generation
// swaps. Correctness oracle: values encode their (key, generation)
// pair, so any hit whose value disagrees with its key+generation is a
// torn read. Counters must stay monotonic throughout and exactly
// account for all traffic at the end. Runs in CI under -race.
func TestRCUHammer(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	c := New(Options{Shards: 8, Capacity: 64}) // 8 slots/shard: heavy eviction churn
	const (
		keys     = 256
		readers  = 8
		writers  = 4
		duration = 300 * time.Millisecond
	)
	gens := [2]uint64{111, 222}
	c.SetGeneration(gens[0])
	// value oracle: encodes (key index, generation) bit-exactly.
	val := func(i int, g uint64) float64 { return float64(i)*1e6 + float64(g) }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var torn atomic.Int64

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := c.Generation()
				c.PutPrediction(PredictionKey(0, fmt.Sprintf("k%d", i%keys)), g, val(i%keys, g))
				i += writers
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := c.Generation()
				k := i % keys
				if v, ok := c.GetPrediction(PredictionKey(0, fmt.Sprintf("k%d", k)), g); ok {
					// A hit at generation g must carry exactly the value
					// some writer stored for (k, g).
					if v != val(k, g) {
						torn.Add(1)
					}
				}
				i += readers
			}
		}(r)
	}
	// Swapper: flip generations under full load; monitor monotonicity.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prevStats := c.Stats().Prediction
		flip := 0
		deadline := time.Now().Add(duration)
		for time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			flip++
			c.SetGeneration(gens[flip%2])
			st := c.Stats().Prediction
			if st.Hits < prevStats.Hits || st.Misses < prevStats.Misses ||
				st.Stores < prevStats.Stores || st.Evictions < prevStats.Evictions {
				t.Errorf("counters went backwards: %+v -> %+v", prevStats, st)
			}
			prevStats = st
		}
		close(stop)
	}()
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn reads (hit value disagreed with its key+generation)", n)
	}
	st := c.Stats().Prediction
	if st.Size > 64 {
		t.Fatalf("size %d exceeds capacity 64", st.Size)
	}
	if st.Hits+st.Misses == 0 || st.Stores == 0 {
		t.Fatalf("hammer did no work: %+v", st)
	}
	if math.IsNaN(c.Stats().HitRate()) {
		t.Fatal("hit rate NaN")
	}
}
