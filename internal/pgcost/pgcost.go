// Package pgcost implements the PostgreSQL-style analytic cost model used
// as the "PGSQL" baseline in the paper's Table IV. It prices a plan from
// the planner's cardinality estimates using PostgreSQL's default cost
// constants, then converts cost units to milliseconds with a fixed
// calibration factor.
//
// By construction this baseline ignores the database environment — knobs,
// hardware, storage format — which is exactly why the paper reports q-errors
// in the hundreds for it: the same plan can be 2–3× faster or slower across
// environments (Figure 1) while the analytic estimate never moves.
package pgcost

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/planner"
)

// PostgreSQL's default cost constants (costsize.c).
const (
	SeqPageCost     = 1.0
	RandomPageCost  = 4.0
	CPUTupleCost    = 0.01
	CPUIndexTuple   = 0.005
	CPUOperatorCost = 0.0025
)

// MsPerCostUnit nominally converts cost units to milliseconds. It is 1:
// PostgreSQL's cost units are NOT milliseconds and the DBMS offers no
// conversion — the paper's PGSQL baseline likewise compares raw cost units
// against measured latency, which is exactly why Table IV reports q-errors
// in the hundreds (TPC-H) to hundreds of thousands (Sysbench) for it while
// its Pearson correlation stays moderate (correlation is scale-invariant).
const MsPerCostUnit = 1.0

// Model prices plans for one dataset.
type Model struct {
	Stats *catalog.Stats
}

// New builds the analytic model.
func New(stats *catalog.Stats) *Model { return &Model{Stats: stats} }

// EstimateMs returns the predicted execution time of the whole plan in
// milliseconds.
func (m *Model) EstimateMs(root *planner.Node) float64 {
	return m.cost(root) * MsPerCostUnit
}

// cost returns the plan cost in PostgreSQL cost units, including children.
func (m *Model) cost(n *planner.Node) float64 {
	var c float64
	for _, ch := range n.Children {
		c += m.cost(ch)
	}
	return c + m.nodeCost(n)
}

// nodeCost prices a single node from planner estimates.
func (m *Model) nodeCost(n *planner.Node) float64 {
	switch n.Op {
	case planner.SeqScan:
		pages, rows := m.tableShape(n.Table)
		return pages*SeqPageCost + rows*CPUTupleCost
	case planner.IndexScan:
		// Matching index entries ≈ output rows before residual filters;
		// planner folds all predicate selectivities into EstRows, which is
		// the standard under-estimate PostgreSQL also makes.
		matches := n.EstRows
		height := 3.0
		return (height+matches)*RandomPageCost + matches*(CPUIndexTuple+CPUTupleCost)
	case planner.Sort:
		in := childRows(n)
		return 2 * in * safeLog2(in) * CPUOperatorCost
	case planner.HashJoin:
		l, r := childRows2(n)
		return r*CPUTupleCost + l*CPUTupleCost + n.EstRows*CPUOperatorCost
	case planner.MergeJoin:
		l, r := childRows2(n)
		return (l+r)*CPUTupleCost + n.EstRows*CPUOperatorCost
	case planner.NestedLoop:
		l, r := childRows2(n)
		return l*r*CPUTupleCost + n.EstRows*CPUOperatorCost
	case planner.Aggregate:
		in := childRows(n)
		return in*CPUOperatorCost*float64(1+len(n.Aggs)) + n.EstRows*CPUTupleCost
	case planner.Materialize:
		return childRows(n) * CPUTupleCost * 0.5
	}
	return 0
}

func (m *Model) tableShape(table string) (pages, rows float64) {
	ts := m.Stats.Table(table)
	if ts == nil {
		return 1, 1
	}
	return math.Max(1, float64(ts.Pages)), float64(ts.RowCount)
}

func childRows(n *planner.Node) float64 {
	if len(n.Children) == 0 {
		return n.EstRows
	}
	return n.Children[0].EstRows
}

func childRows2(n *planner.Node) (float64, float64) {
	return n.Children[0].EstRows, n.Children[1].EstRows
}

func safeLog2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}
