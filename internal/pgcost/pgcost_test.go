package pgcost

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/dbenv"
	"repro/internal/planner"
	"repro/internal/sqlparse"
)

var tpch = datagen.TPCH(1)

func planOf(t *testing.T, sql string) *planner.Node {
	t.Helper()
	pl := planner.New(tpch.Schema, tpch.Stats, dbenv.DefaultKnobs())
	n, err := pl.Plan(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEstimatesPositiveAndOrdered(t *testing.T) {
	m := New(tpch.Stats)
	point := m.EstimateMs(planOf(t, "SELECT * FROM orders WHERE o_orderkey = 7"))
	scan := m.EstimateMs(planOf(t, "SELECT * FROM lineitem WHERE l_quantity > 0"))
	join := m.EstimateMs(planOf(t, "SELECT COUNT(*) FROM orders JOIN lineitem ON orders.o_orderkey = lineitem.l_orderkey"))
	if point <= 0 || scan <= 0 || join <= 0 {
		t.Fatalf("non-positive estimates: %v %v %v", point, scan, join)
	}
	// An indexed point lookup must be priced far below a full scan, and a
	// join above its scan input.
	if point*10 > scan {
		t.Fatalf("point (%v) not ≪ scan (%v)", point, scan)
	}
	if join <= scan {
		t.Fatalf("join (%v) should cost more than scan (%v)", join, scan)
	}
}

func TestEnvironmentInsensitivity(t *testing.T) {
	// The defining flaw of the analytic baseline: identical predictions
	// regardless of knobs (plans held fixed).
	m := New(tpch.Stats)
	n := planOf(t, "SELECT * FROM lineitem WHERE l_quantity < 20")
	a := m.EstimateMs(n)
	b := m.EstimateMs(n) // same plan, "different environment" is invisible
	if a != b {
		t.Fatalf("analytic model should be deterministic")
	}
}

func TestSortAndAggregatePriced(t *testing.T) {
	m := New(tpch.Stats)
	plain := m.EstimateMs(planOf(t, "SELECT * FROM orders WHERE o_totalprice > 100"))
	sorted := m.EstimateMs(planOf(t, "SELECT * FROM orders WHERE o_totalprice > 100 ORDER BY o_totalprice"))
	if sorted <= plain {
		t.Fatalf("sort not priced: %v vs %v", sorted, plain)
	}
}
