// Package metrics implements the evaluation metrics used throughout the
// paper's §V: q-error (Eq. 2), Pearson correlation (Eq. 3), and the
// percentile/variance summaries reported in Table IV and Figures 5–6.
package metrics

import (
	"math"
	"sort"
)

// LogMs maps a latency in milliseconds to the training-target space:
// log1p of the value in microseconds. The µs rescale matters because OLTP
// point reads run in single-digit µs while OLAP scans run in tens of ms —
// in raw log1p(ms) space the former all collapse to ≈0 and the regression
// loss ignores them.
func LogMs(ms float64) float64 {
	if ms < 0 {
		ms = 0
	}
	return math.Log1p(ms * 1000)
}

// UnlogMs inverts LogMs back to milliseconds (clamped non-negative).
func UnlogMs(y float64) float64 {
	v := math.Expm1(y) / 1000
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// QError returns max(actual/predict, predict/actual) as defined by the
// paper's Equation 2. Values are clamped away from zero so that degenerate
// predictions yield a large-but-finite error instead of ±Inf, matching the
// treatment in the QPPNet and MSCN reference implementations.
func QError(actual, predict float64) float64 {
	const eps = 1e-6
	a := math.Max(math.Abs(actual), eps)
	p := math.Max(math.Abs(predict), eps)
	if a > p {
		return a / p
	}
	return p / a
}

// QErrors computes the element-wise q-error of two equally long slices.
func QErrors(actual, predict []float64) []float64 {
	if len(actual) != len(predict) {
		panic("metrics: length mismatch")
	}
	out := make([]float64, len(actual))
	for i := range actual {
		out[i] = QError(actual[i], predict[i])
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between actual and
// predicted values (the paper's Equation 3). It returns 0 when either
// series has zero variance.
func Pearson(actual, predict []float64) float64 {
	if len(actual) != len(predict) || len(actual) == 0 {
		return 0
	}
	ma, mp := Mean(actual), Mean(predict)
	var cov, va, vp float64
	for i := range actual {
		da, dp := actual[i]-ma, predict[i]-mp
		cov += da * dp
		va += da * da
		vp += dp * dp
	}
	if va == 0 || vp == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vp)
}

// Summary bundles the statistics reported for one experimental cell.
type Summary struct {
	Mean     float64 // mean q-error
	P25      float64
	Median   float64
	P75      float64
	P90      float64
	P95      float64
	Max      float64
	Variance float64
	Pearson  float64 // correlation between actual and predicted cost
}

// Summarize computes the full Summary for a set of actual/predicted costs.
func Summarize(actual, predict []float64) Summary {
	qe := QErrors(actual, predict)
	return Summary{
		Mean:     Mean(qe),
		P25:      Percentile(qe, 25),
		Median:   Percentile(qe, 50),
		P75:      Percentile(qe, 75),
		P90:      Percentile(qe, 90),
		P95:      Percentile(qe, 95),
		Max:      Percentile(qe, 100),
		Variance: Variance(qe),
		Pearson:  Pearson(actual, predict),
	}
}
