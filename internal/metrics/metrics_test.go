package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQErrorSymmetry(t *testing.T) {
	cases := []struct {
		a, p, want float64
	}{
		{100, 100, 1},
		{100, 50, 2},
		{50, 100, 2},
		{10, 1, 10},
		{1, 10, 10},
	}
	for _, c := range cases {
		if got := QError(c.a, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("QError(%v,%v) = %v, want %v", c.a, c.p, got, c.want)
		}
	}
}

func TestQErrorClampsZero(t *testing.T) {
	got := QError(1, 0)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("QError(1,0) = %v, want finite", got)
	}
	if got < 1e3 {
		t.Fatalf("QError(1,0) = %v, want large", got)
	}
}

func TestQErrorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	QErrors([]float64{1}, []float64{1, 2})
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatalf("empty input should yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatalf("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPearsonPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if got := Pearson(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	c := []float64{40, 30, 20, 10}
	if got := Pearson(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4}); got != 0 {
		t.Fatalf("zero-variance Pearson = %v, want 0", got)
	}
	if got := Pearson([]float64{1}, []float64{1, 2}); got != 0 {
		t.Fatalf("length-mismatch Pearson = %v, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	actual := []float64{100, 200, 300, 400}
	predict := []float64{100, 100, 300, 800}
	s := Summarize(actual, predict)
	if s.Mean != (1+2+1+2)/4.0 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Max != 2 {
		t.Fatalf("Max = %v", s.Max)
	}
	if s.Pearson <= 0 {
		t.Fatalf("Pearson = %v, want positive", s.Pearson)
	}
}

// Property: q-error is symmetric and ≥ 1.
func TestQErrorProperties(t *testing.T) {
	f := func(a, p float64) bool {
		a, p = math.Abs(a)+0.001, math.Abs(p)+0.001
		q := QError(a, p)
		return q >= 1-1e-12 && math.Abs(q-QError(p, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return Percentile(xs, 0) <= Percentile(xs, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is within [-1, 1] and invariant under positive affine
// transforms of the prediction.
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r := Pearson(a, b)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		scaled := make([]float64, n)
		for i := range b {
			scaled[i] = 3*b[i] + 7
		}
		return math.Abs(Pearson(a, scaled)-r) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
