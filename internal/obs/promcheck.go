package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ValidateExposition checks a rendered document against the Prometheus
// text-format grammar subset this package emits: well-formed HELP/TYPE
// comments, valid metric and label names, parseable sample values,
// one contiguous block per metric name with TYPE preceding its
// samples, and — for histograms — non-decreasing cumulative buckets
// closed by le="+Inf" with a matching _count. The golden test and the
// per-daemon /metrics tests all run their output through it, so the
// smoke jobs' curl|grep checks sit on top of a format that is verified
// structurally in-tree.
func ValidateExposition(data []byte) error {
	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
		labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	)
	typeOf := map[string]string{}      // metric name -> declared type
	seenDone := map[string]bool{}      // block finished (name changed away)
	current := ""                      // base name of the open block
	lastBucket := map[string]float64{} // label-set key -> last cumulative
	bucketTotal := map[string]float64{}

	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typeOf[b] == "histogram" {
				return b
			}
		}
		return name
	}

	for ln, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		switch {
		case line == "":
			return fmt.Errorf("line %d: empty line", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) == 0 || !nameRe.MatchString(parts[0]) {
				return fmt.Errorf("line %d: bad HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) {
				return fmt.Errorf("line %d: bad TYPE: %q", ln+1, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", ln+1, parts[1])
			}
			if seenDone[parts[0]] {
				return fmt.Errorf("line %d: metric %q re-opened; blocks must be contiguous", ln+1, parts[0])
			}
			if current != "" && current != parts[0] {
				seenDone[current] = true
			}
			typeOf[parts[0]] = parts[1]
			current = parts[0]
		case strings.HasPrefix(line, "#"):
			return fmt.Errorf("line %d: malformed comment: %q", ln+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("line %d: malformed sample: %q", ln+1, line)
			}
			name, labels, value := m[1], m[3], m[4]
			b := base(name)
			if typeOf[b] == "" {
				return fmt.Errorf("line %d: sample %q before its TYPE", ln+1, name)
			}
			if b != current {
				return fmt.Errorf("line %d: sample %q outside its block (open: %q)", ln+1, name, current)
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad value %q: %v", ln+1, value, err)
			}
			var le string
			if labels != "" {
				for _, pair := range splitLabels(labels) {
					lm := labelRe.FindStringSubmatch(pair)
					if lm == nil {
						return fmt.Errorf("line %d: bad label %q", ln+1, pair)
					}
					if lm[1] == "le" {
						le = lm[2]
					}
				}
			}
			if typeOf[b] == "histogram" && strings.HasSuffix(name, "_bucket") {
				key := b + "|" + stripLe(labels)
				if v < lastBucket[key] {
					return fmt.Errorf("line %d: bucket counts decreased for %s", ln+1, key)
				}
				lastBucket[key] = v
				if le == "+Inf" {
					bucketTotal[key] = v
				} else if le == "" {
					return fmt.Errorf("line %d: _bucket without le label", ln+1)
				}
			}
			if typeOf[b] == "histogram" && strings.HasSuffix(name, "_count") {
				key := b + "|" + labels
				if inf, ok := bucketTotal[key]; !ok || inf != v {
					return fmt.Errorf("line %d: %s_count %v does not match le=\"+Inf\" bucket %v", ln+1, b, v, inf)
				}
			}
		}
	}
	return nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLe removes the le label from a label body so bucket series of
// one histogram sample share a key.
func stripLe(labels string) string {
	var keep []string
	for _, p := range splitLabels(labels) {
		if !strings.HasPrefix(p, `le="`) {
			keep = append(keep, p)
		}
	}
	return strings.Join(keep, ",")
}
