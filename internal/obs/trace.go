package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing. One trace ID — X-QCFE-Trace-ID — is minted at
// whichever daemon a request first enters (router or replica) and
// propagated on every hop it fans out to: the router stamps it on every
// scattered sub-batch (retries included: a failover re-dispatch carries
// the ORIGINAL id — that contract is pinned by the chaos tests), the
// tenant layer carries it through admission and delegation, and every
// daemon echoes it back in the response headers. Along the way each
// layer appends stage spans (probe → admit → queue_wait → featurize →
// predict → merge) to the trace; the finished record lands in a
// per-daemon ring buffer served by /trace/recent and, when it exceeds
// the -slow-query-threshold, in a structured slow-query log line on
// stderr.

// TraceHeader is the HTTP header carrying the request's trace ID.
const TraceHeader = "X-QCFE-Trace-ID"

// Trace-ID generation: an 8-byte per-process random prefix plus an
// 8-byte counter, hex-rendered to the conventional 32 characters.
// Unique within a process by the counter, across processes by the
// prefix, and costs one atomic add per ID.
var (
	traceIDPrefix [8]byte
	traceIDSeq    atomic.Uint64
)

func init() {
	if _, err := rand.Read(traceIDPrefix[:]); err != nil {
		// No entropy source: fall back to a fixed prefix; the counter
		// still makes IDs unique within the process.
		copy(traceIDPrefix[:], "qcfetrce")
	}
}

// NewTraceID mints a fresh 32-hex-character trace ID.
func NewTraceID() string {
	var raw [16]byte
	copy(raw[:8], traceIDPrefix[:])
	binary.BigEndian.PutUint64(raw[8:], traceIDSeq.Add(1))
	return hex.EncodeToString(raw[:])
}

// Span is one recorded stage of a request: its offset from the trace
// start and its duration, both in nanoseconds, plus an optional detail
// (replica URL, ladder rung, environment).
type Span struct {
	Stage    string `json:"stage"`
	Detail   string `json:"detail,omitempty"`
	OffsetNs int64  `json:"offset_ns"`
	DurNs    int64  `json:"dur_ns"`
}

// Trace accumulates one request's spans. Created at the HTTP edge,
// carried by context through every layer, appended to concurrently by
// scattered sub-batches (hence the mutex), and finished back at the
// edge into a TraceRecord. All methods are nil-receiver-safe, so
// library paths entered without a trace (benchmarks, tests, the
// in-process API) pay only a context lookup.
type Trace struct {
	ID    string
	Start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace now under the given ID.
func NewTrace(id string) *Trace {
	return &Trace{ID: id, Start: time.Now()}
}

// AddSpan records a stage that started at t0 and just ended.
func (t *Trace) AddSpan(stage, detail string, t0 time.Time) {
	if t != nil {
		t.AddSpanDur(stage, detail, t0, time.Since(t0))
	}
}

// AddSpanDur records a stage with an explicit duration.
func (t *Trace) AddSpanDur(stage, detail string, t0 time.Time, d time.Duration) {
	if t == nil {
		return
	}
	sp := Span{Stage: stage, Detail: detail, OffsetNs: int64(t0.Sub(t.Start)), DurNs: int64(d)}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans copies out the spans recorded so far.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// traceKey carries a *Trace through context.
type traceKey struct{}

// ContextWithTrace attaches a trace to a context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the context's trace; nil when the request entered
// without one (every Trace method is safe on that nil).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceRecord is one finished request as stored in the ring and logged
// on slow queries.
type TraceRecord struct {
	TraceID string    `json:"trace_id"`
	Op      string    `json:"op"`
	Tenant  string    `json:"tenant,omitempty"`
	Start   time.Time `json:"start"`
	DurNs   int64     `json:"dur_ns"`
	DurMs   float64   `json:"dur_ms"`
	Err     string    `json:"error,omitempty"`
	Spans   []Span    `json:"spans,omitempty"`
}

// Tracer owns a daemon's trace sink: the /trace/recent ring plus the
// slow-query log. Safe for concurrent use; the zero threshold disables
// slow-query logging.
type Tracer struct {
	mu   sync.Mutex
	ring []TraceRecord
	next int
	n    int

	slowThreshold time.Duration
	slowW         io.Writer
	slowMu        sync.Mutex
}

// NewTracer builds a tracer with a ring of ringSize finished requests
// (default 256 when ≤0). Requests slower than slowThreshold (>0) are
// logged as one JSON line to slowW.
func NewTracer(ringSize int, slowThreshold time.Duration, slowW io.Writer) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	return &Tracer{ring: make([]TraceRecord, ringSize), slowThreshold: slowThreshold, slowW: slowW}
}

// Finish closes a trace into a record, stores it in the ring, and
// emits the slow-query line when it crossed the threshold. Nil-safe on
// both receiver and trace.
func (tc *Tracer) Finish(t *Trace, op, tenant string, err error) {
	if tc == nil || t == nil {
		return
	}
	d := time.Since(t.Start)
	rec := TraceRecord{
		TraceID: t.ID,
		Op:      op,
		Tenant:  tenant,
		Start:   t.Start,
		DurNs:   int64(d),
		DurMs:   float64(d) / 1e6,
		Spans:   t.Spans(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	tc.mu.Lock()
	tc.ring[tc.next] = rec
	tc.next = (tc.next + 1) % len(tc.ring)
	if tc.n < len(tc.ring) {
		tc.n++
	}
	tc.mu.Unlock()

	if tc.slowThreshold > 0 && d >= tc.slowThreshold && tc.slowW != nil {
		line, jerr := json.Marshal(struct {
			Slow bool `json:"slow_query"`
			TraceRecord
		}{true, rec})
		if jerr == nil {
			tc.slowMu.Lock()
			tc.slowW.Write(append(line, '\n'))
			tc.slowMu.Unlock()
		}
	}
}

// Recent returns up to max finished traces, newest first (all retained
// when max ≤ 0).
func (tc *Tracer) Recent(max int) []TraceRecord {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	n := tc.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]TraceRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, tc.ring[(tc.next-i+len(tc.ring))%len(tc.ring)])
	}
	return out
}
