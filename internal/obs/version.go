package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary — the /version endpoint and
// the -version flags report it so a trace or metrics scrape can be
// correlated with a deploy.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build reads the binary's build information once (runtime/debug) and
// caches it. Works in tests and `go run` too — fields absent from the
// build simply stay empty.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// WriteBuildMetrics emits the conventional info-style gauge: constant
// 1 with the identifying fields as labels.
func WriteBuildMetrics(g *Gatherer, extra ...Label) {
	b := Build()
	labels := append([]Label{
		L("go_version", b.GoVersion),
		L("version", b.Version),
		L("revision", b.VCSRevision),
	}, extra...)
	g.Gauge("qcfe_build_info", "Build identification (constant 1; identity in labels).", 1, labels...)
}
