package obs

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled: the
// repository is stdlib-only, and the subset a scraper needs — # HELP,
// # TYPE, and samples with labels, with histograms expanded into
// cumulative _bucket/_sum/_count series — is small enough to render
// directly. Collectors append samples into a Gatherer; the Gatherer
// groups samples by metric name (the format requires one contiguous
// block per name) and renders them in first-registration order, so
// output is deterministic for a deterministic collector.

// Label is one name="value" pair.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type sample struct {
	labels []Label
	value  float64
}

type metric struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	samples []sample
	hists   []histSample
}

type histSample struct {
	labels []Label
	snap   HistSnapshot
}

// Gatherer accumulates one scrape's samples. Not safe for concurrent
// use; build one per scrape (the /metrics handlers do).
type Gatherer struct {
	order  []*metric
	byName map[string]*metric
}

// NewGatherer returns an empty Gatherer.
func NewGatherer() *Gatherer { return &Gatherer{byName: make(map[string]*metric)} }

func (g *Gatherer) metricFor(name, help, typ string) *metric {
	if m, ok := g.byName[name]; ok {
		return m
	}
	m := &metric{name: name, help: help, typ: typ}
	g.byName[name] = m
	g.order = append(g.order, m)
	return m
}

// Counter appends one sample of a monotonically increasing series.
// Calls with the same name accumulate label variants under one block;
// help and type come from the first call.
func (g *Gatherer) Counter(name, help string, value int64, labels ...Label) {
	m := g.metricFor(name, help, "counter")
	m.samples = append(m.samples, sample{labels: labels, value: float64(value)})
}

// Gauge appends one sample of an instantaneous-value series.
func (g *Gatherer) Gauge(name, help string, value float64, labels ...Label) {
	m := g.metricFor(name, help, "gauge")
	m.samples = append(m.samples, sample{labels: labels, value: value})
}

// Histogram appends one labeled histogram, rendered as cumulative
// _bucket series (le in seconds), _sum (seconds), and _count. Empty
// buckets are skipped — the cumulative count only gets a line where it
// changes, plus the mandatory le="+Inf" — which keeps a 497-bucket
// register from bloating the scrape.
func (g *Gatherer) Histogram(name, help string, snap HistSnapshot, labels ...Label) {
	m := g.metricFor(name, help, "histogram")
	m.hists = append(m.hists, histSample{labels: labels, snap: snap})
}

// Collector appends samples for one subsystem; /metrics handlers run a
// list of them over a fresh Gatherer per scrape.
type Collector func(g *Gatherer)

// MetricsWriter is implemented by subsystem stats values that render
// themselves into a scrape. It lets a layer pick up metrics from a
// subsystem it only knows behind an `any` (serve's drift block, for
// example) without importing its package.
type MetricsWriter interface {
	WriteMetrics(g *Gatherer, extra ...Label)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, `\`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func writeLabels(b *bytes.Buffer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func writeSample(b *bytes.Buffer, name string, labels []Label, extra []Label, v float64) {
	b.WriteString(name)
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label{}, labels...), extra...)
	}
	writeLabels(b, all)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

// RenderText renders the accumulated metrics as one exposition
// document.
func (g *Gatherer) RenderText() []byte {
	var b bytes.Buffer
	for _, m := range g.order {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.typ)
		for _, s := range m.samples {
			writeSample(&b, m.name, s.labels, nil, s.value)
		}
		for _, h := range m.hists {
			var cum int64
			for i := range h.snap.Counts {
				if h.snap.Counts[i] == 0 {
					continue
				}
				cum += h.snap.Counts[i]
				le := strconv.FormatFloat(float64(bucketUpperNs(i))/1e9, 'g', -1, 64)
				writeSample(&b, m.name+"_bucket", h.labels, []Label{L("le", le)}, float64(cum))
			}
			writeSample(&b, m.name+"_bucket", h.labels, []Label{L("le", "+Inf")}, float64(cum))
			writeSample(&b, m.name+"_sum", h.labels, nil, float64(h.snap.SumNs)/1e9)
			writeSample(&b, m.name+"_count", h.labels, nil, float64(cum))
		}
	}
	return b.Bytes()
}

// MetricsHandler serves a /metrics endpoint: each scrape runs the
// collectors over a fresh Gatherer and writes the rendered text with
// the exposition content type.
func MetricsHandler(collectors ...Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		g := NewGatherer()
		for _, c := range collectors {
			c(g)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(g.RenderText())
	})
}

// SortedKeys returns a map's keys sorted — collectors iterating
// per-tenant or per-replica maps use it so scrapes are deterministic.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
