package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goldenGatherer builds a deterministic scrape covering every sample
// kind the renderer emits: multi-label counters, gauges, label-value
// escaping, and a histogram with skipped empty buckets.
func goldenGatherer() *Gatherer {
	g := NewGatherer()
	g.Counter("qcfe_demo_requests_total", "Total demo requests.", 42)
	g.Counter("qcfe_demo_requests_total", "help of later calls is ignored", 7, L("tenant", "acme"))
	g.Gauge("qcfe_demo_queue_len", "Current demo queue length.", 3)
	g.Gauge("qcfe_demo_escapes", "Help with \\ backslash and\nnewline.", 1,
		L("path", `C:\tmp`), L("quote", `say "hi"`), L("nl", "a\nb"))
	h := NewHistogram()
	for _, d := range []time.Duration{
		150 * time.Nanosecond, time.Microsecond,
		time.Millisecond, time.Millisecond, time.Millisecond,
		20 * time.Millisecond, time.Second,
	} {
		h.Record(d)
	}
	g.Histogram("qcfe_demo_latency_seconds", "Demo latency distribution.", h.Snapshot(),
		L("tier", "prediction"))
	return g
}

// TestExpositionGolden pins the rendered byte stream. Regenerate with
// QCFE_UPDATE_GOLDEN=1 after an intentional format change.
func TestExpositionGolden(t *testing.T) {
	got := goldenGatherer().RenderText()
	if err := ValidateExposition(got); err != nil {
		t.Fatalf("rendered exposition invalid: %v\n%s", err, got)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("QCFE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (QCFE_UPDATE_GOLDEN=1 regenerates): %v\n%s", golden, err, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("exposition drifted from golden (QCFE_UPDATE_GOLDEN=1 regenerates after intentional changes)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestExpositionHistogramInvariants: cumulative buckets are
// non-decreasing, close with +Inf, and _count matches the +Inf bucket
// while _sum carries the exact nanosecond total.
func TestExpositionHistogramInvariants(t *testing.T) {
	out := string(goldenGatherer().RenderText())
	if !strings.Contains(out, `qcfe_demo_latency_seconds_bucket{tier="prediction",le="+Inf"} 7`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `qcfe_demo_latency_seconds_count{tier="prediction"} 7`) {
		t.Fatalf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, `qcfe_demo_latency_seconds_sum{tier="prediction"} `) {
		t.Fatalf("missing _sum:\n%s", out)
	}
	// Empty buckets are skipped: 7 observations land in ≤6 distinct
	// buckets (three share one), so the full 497-register histogram
	// renders at most 7 bucket lines plus +Inf.
	n := strings.Count(out, "qcfe_demo_latency_seconds_bucket")
	if n > 7 {
		t.Fatalf("%d bucket lines; empty buckets are not being skipped", n)
	}
}

// TestValidateExpositionRejects: the grammar checker actually bites.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "qcfe_x 1\n",
		"bad value":          "# TYPE qcfe_x counter\nqcfe_x one\n",
		"bad name":           "# TYPE 9qcfe counter\n9qcfe 1\n",
		"empty line":         "# TYPE qcfe_x counter\n\nqcfe_x 1\n",
		"malformed comment":  "#TYPE qcfe_x counter\n",
		"interleaved blocks": "# TYPE qcfe_a counter\nqcfe_a 1\n# TYPE qcfe_b counter\nqcfe_b 1\n# TYPE qcfe_a counter\nqcfe_a 2\n",
		"decreasing buckets": "# TYPE qcfe_h histogram\nqcfe_h_bucket{le=\"0.1\"} 5\nqcfe_h_bucket{le=\"+Inf\"} 3\n",
		"count mismatch":     "# TYPE qcfe_h histogram\nqcfe_h_bucket{le=\"+Inf\"} 3\nqcfe_h_count 4\n",
		"bucket without le":  "# TYPE qcfe_h histogram\nqcfe_h_bucket 3\n",
		"unquoted label":     "# TYPE qcfe_x counter\nqcfe_x{t=v} 1\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted malformed document:\n%s", name, doc)
		}
	}
	ok := "# HELP qcfe_x fine\n# TYPE qcfe_x counter\nqcfe_x{a=\"b\"} 1\nqcfe_x 2\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("validator rejected well-formed document: %v", err)
	}
}
