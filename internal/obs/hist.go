// Package obs is the zero-dependency observability layer under every
// serving surface in this repository: lock-free latency histograms,
// a hand-rolled Prometheus text-exposition renderer, request tracing
// with per-stage spans, structured slow-query logging, build
// identification, and token-gated pprof. It imports nothing outside
// the standard library and nothing else in this module, so any layer —
// qcache's tier probes, serve's coalescer, the router's scatter path —
// can record into it without an import cycle.
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear over nanoseconds. Values below
// 2^subBits+1 get one bucket each (exact); above that, each power-of-two
// octave is split into 2^subBits linear sub-buckets, so consecutive
// bucket boundaries grow by at most 1 + 2^-subBits ≈ 1.07× (relative
// bucket width 3.1%–6.7%) — a quantile read from a bucket's upper bound
// overstates the true value by under 7% anywhere in the range. The
// tracked range tops out at 2^(maxExp+1)-1 ns ≈ 17.2s (comfortably past
// the 10s any sane request deadline allows); larger values land in the
// terminal overflow bucket and saturate quantiles at histMaxNs.
const (
	subBits = 4
	subMask = 1<<subBits - 1
	maxExp  = 33 // top octave: [2^33, 2^34) ns ≈ [8.6s, 17.2s)

	// nBuckets: indices 0..2^(subBits+1)-1 are the exact small values,
	// then (maxExp-subBits)·2^subBits log-linear buckets, then one
	// overflow bucket.
	nBuckets = 1<<(subBits+1) + (maxExp-subBits)<<subBits + 1

	// histMaxNs is the largest tracked value: the upper bound of the
	// last non-overflow bucket.
	histMaxNs = int64(1)<<(maxExp+1) - 1
)

// bucketFor maps a duration in nanoseconds to its bucket index. It is
// a handful of integer ops — no floating point, no branches beyond the
// range clamps — so a Record stays well under the bench-gated 50ns.
func bucketFor(ns int64) int {
	if ns <= 0 {
		return 0
	}
	u := uint64(ns)
	e := bits.Len64(u) - 1
	if e < subBits {
		return int(u)
	}
	idx := (e-subBits)<<subBits + int(u>>uint(e-subBits))
	if idx >= nBuckets-1 {
		return nBuckets - 1 // overflow
	}
	return idx
}

// bucketUpperNs is bucketFor's inverse: the largest nanosecond value
// that lands in bucket idx (the bucket's inclusive upper bound). The
// overflow bucket reports histMaxNs — quantiles saturate rather than
// invent values beyond the tracked range.
func bucketUpperNs(idx int) int64 {
	if idx < 1<<subBits {
		return int64(idx)
	}
	if idx >= nBuckets-1 {
		return histMaxNs
	}
	e := idx>>subBits + subBits - 1
	m := idx&subMask | 1<<subBits
	return int64(m+1)<<uint(e-subBits) - 1
}

// Histogram is a lock-free log-bucketed latency histogram: a fixed
// array of atomic counters plus an atomic sum. Record is wait-free (two
// atomic adds) and allocation-free, so it is safe on the zero-alloc
// warm serving path; Snapshot may run concurrently with writers and
// observes each counter atomically (the cross-bucket view is a moment's
// blur, which is all a monitoring read needs). The zero value is NOT
// usable — construct with NewHistogram so the registers are one heap
// object recorded into for the server's whole life. All methods are
// nil-receiver-safe: an optional, unattached histogram records nothing.
type Histogram struct {
	buckets [nBuckets]atomic.Int64
	sumNs   atomic.Int64
}

// NewHistogram pre-allocates a histogram's registers.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketFor(int64(d))].Add(1)
	h.sumNs.Add(int64(d))
}

// RecordSince records the elapsed time since t0.
func (h *Histogram) RecordSince(t0 time.Time) {
	if h != nil {
		h.Record(time.Since(t0))
	}
}

// Snapshot copies the registers into an inert, mergeable value. A nil
// histogram snapshots as empty.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	return s
}

// HistSnapshot is a point-in-time histogram copy: plain integers,
// safe to merge, quantile, and render without further synchronization.
type HistSnapshot struct {
	Counts [nBuckets]int64
	SumNs  int64
}

// Merge adds another snapshot into this one (bucket layouts are
// identical by construction, so a merge is elementwise addition).
// Merging per-shard or per-replica snapshots yields exactly the
// histogram a single shared instance would have recorded.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.SumNs += o.SumNs
}

// Count is the total number of recorded observations.
func (s *HistSnapshot) Count() int64 {
	var n int64
	for i := range s.Counts {
		n += s.Counts[i]
	}
	return n
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) as the upper bound
// of the bucket containing the target rank — an overestimate by at most
// one bucket's relative width (<7%). Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	total := s.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			return time.Duration(bucketUpperNs(i))
		}
	}
	return time.Duration(histMaxNs)
}

// P50, P90, P99, P999 are the quantiles every latency dashboard wants.
func (s *HistSnapshot) P50() time.Duration  { return s.Quantile(0.50) }
func (s *HistSnapshot) P90() time.Duration  { return s.Quantile(0.90) }
func (s *HistSnapshot) P99() time.Duration  { return s.Quantile(0.99) }
func (s *HistSnapshot) P999() time.Duration { return s.Quantile(0.999) }

// String renders the headline numbers for logs and test failures.
func (s *HistSnapshot) String() string {
	n := s.Count()
	if n == 0 {
		return "hist{empty}"
	}
	mean := time.Duration(s.SumNs / n)
	return fmt.Sprintf("hist{n=%d mean=%v p50=%v p90=%v p99=%v p999=%v}",
		n, mean, s.P50(), s.P90(), s.P99(), s.P999())
}
