package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries: the index function and its inverse agree, the
// mapping is monotone, every value is ≤ its bucket's upper bound and >
// the previous bucket's, and consecutive boundaries grow by at most
// ~1.07× once buckets are wider than exact integers.
func TestBucketBoundaries(t *testing.T) {
	values := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 100, 127, 128,
		1000, 4095, 4096, 1e6, 1e9, 5e9, histMaxNs - 1, histMaxNs}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		values = append(values, rng.Int63n(histMaxNs))
	}
	// Exercise every bucket's exact boundaries too.
	for idx := 0; idx < nBuckets; idx++ {
		u := bucketUpperNs(idx)
		values = append(values, u, u+1)
	}
	for _, v := range values {
		idx := bucketFor(v)
		if idx < 0 || idx >= nBuckets {
			t.Fatalf("bucketFor(%d) = %d out of range", v, idx)
		}
		if v <= histMaxNs {
			if up := bucketUpperNs(idx); v > up {
				t.Fatalf("value %d above its bucket %d upper bound %d", v, idx, up)
			}
			if idx > 0 {
				if low := bucketUpperNs(idx - 1); v <= low && v > 0 {
					t.Fatalf("value %d not above bucket %d's predecessor bound %d", v, idx, low)
				}
			}
		} else if idx != nBuckets-1 {
			t.Fatalf("value %d beyond histMaxNs should overflow, got bucket %d", v, idx)
		}
	}
	// Monotone: upper bounds strictly increase, and round-trip through
	// bucketFor lands back in the same bucket.
	for idx := 1; idx < nBuckets-1; idx++ {
		lo, hi := bucketUpperNs(idx-1), bucketUpperNs(idx)
		if hi <= lo {
			t.Fatalf("bucket bounds not increasing at %d: %d then %d", idx, lo, hi)
		}
		if got := bucketFor(hi); got != idx {
			t.Fatalf("bucketFor(upper(%d)=%d) = %d", idx, hi, got)
		}
		// Boundary growth ratio: ≤ ~1.07 once past the exact integer
		// region (where the ratio is trivially large: 2/1). The worst
		// case is the first log-linear bucket, 33/31 ≈ 1.0645.
		if lo >= 1<<subBits {
			if ratio := float64(hi) / float64(lo); ratio > 1.07 {
				t.Fatalf("bucket %d boundary ratio %.4f exceeds ~1.07 target", idx, ratio)
			}
		}
	}
	if got := bucketFor(histMaxNs + 1); got != nBuckets-1 {
		t.Fatalf("overflow value got bucket %d, want %d", got, nBuckets-1)
	}
}

// TestQuantileAccuracy: against a known sample set, every estimated
// quantile brackets the true order statistic from above by at most one
// bucket's relative width.
func TestQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(11))
	n := 50000
	samples := make([]int64, n)
	for i := range samples {
		// Log-uniform over 100ns..5s — the range serving latencies live in.
		v := int64(100 * float64(uint64(1)<<uint(rng.Intn(26))) * (0.5 + rng.Float64()))
		samples[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	if snap.Count() != int64(n) {
		t.Fatalf("count %d, want %d", snap.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(n)+0.5) - 1
		truth := samples[rank]
		got := int64(snap.Quantile(q))
		if got < truth {
			t.Fatalf("q%.3f: estimate %d below true order statistic %d", q, got, truth)
		}
		if maxAllowed := truth + truth/(1<<subBits) + 1; got > maxAllowed {
			t.Fatalf("q%.3f: estimate %d overstates true %d by more than one bucket width (max %d)",
				q, got, truth, maxAllowed)
		}
	}
	// Mean via SumNs matches the samples exactly (sums are exact even
	// though buckets quantize).
	var want int64
	for _, v := range samples {
		want += v
	}
	if snap.SumNs != want {
		t.Fatalf("SumNs %d, want %d", snap.SumNs, want)
	}
}

// TestHistogramOverflowAndZero: out-of-range observations clamp rather
// than corrupt.
func TestHistogramOverflowAndZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Second)
	h.Record(0)
	h.Record(time.Duration(histMaxNs) * 4)
	snap := h.Snapshot()
	if snap.Count() != 3 {
		t.Fatalf("count %d, want 3", snap.Count())
	}
	if snap.Counts[0] != 2 || snap.Counts[nBuckets-1] != 1 {
		t.Fatalf("clamping misplaced: low=%d overflow=%d", snap.Counts[0], snap.Counts[nBuckets-1])
	}
	if got := snap.Quantile(1.0); int64(got) != histMaxNs {
		t.Fatalf("overflow quantile %v, want saturation at %v", got, time.Duration(histMaxNs))
	}
}

// TestNilHistogram: every method is a safe no-op on nil — optional
// attachment points (qcache tiers) rely on it.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Record(time.Second)
	h.RecordSince(time.Now())
	if s := h.Snapshot(); s.Count() != 0 {
		t.Fatalf("nil histogram snapshot not empty: %v", s.Count())
	}
}

// TestConcurrentRecordMerge: G goroutines hammer one shared histogram
// and one private histogram each with identical values; the merge of
// the private snapshots must equal the shared snapshot bit for bit.
// Run under -race this is also the data-race proof for Record/Snapshot.
func TestConcurrentRecordMerge(t *testing.T) {
	const goroutines = 8
	const perG = 20000
	shared := NewHistogram()
	privs := make([]*Histogram, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		privs[g] = NewHistogram()
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				d := time.Duration(rng.Int63n(int64(10 * time.Second)))
				shared.Record(d)
				privs[g].Record(d)
				if i%4096 == 0 {
					_ = shared.Snapshot() // concurrent reader under -race
				}
			}
		}(g)
	}
	wg.Wait()

	var merged HistSnapshot
	for _, p := range privs {
		merged.Merge(p.Snapshot())
	}
	got := shared.Snapshot()
	if merged != got {
		t.Fatalf("merged per-goroutine snapshots diverge from shared histogram:\nmerged %s\nshared %s",
			merged.String(), got.String())
	}
	if got.Count() != goroutines*perG {
		t.Fatalf("lost records: %d, want %d", got.Count(), goroutines*perG)
	}
}
