package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceIDs: well-formed, unique, and cheap to mint concurrently.
func TestTraceIDs(t *testing.T) {
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 1000)
			for i := range local {
				local[i] = NewTraceID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if len(id) != 32 {
					t.Errorf("trace id %q: want 32 hex chars", id)
					return
				}
				if seen[id] {
					t.Errorf("duplicate trace id %q", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

// TestTraceContextAndSpans: the context round trip, concurrent span
// appends, and nil-safety of every method.
func TestTraceContextAndSpans(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("empty context produced a trace")
	}
	var nilTrace *Trace
	nilTrace.AddSpan("probe", "", time.Now())
	nilTrace.AddSpanDur("probe", "", time.Now(), time.Millisecond)
	if nilTrace.Spans() != nil {
		t.Fatal("nil trace has spans")
	}

	tr := NewTrace("abc123")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.AddSpanDur("subbatch", fmt.Sprintf("replica-%d", g), tr.Start, time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 800 {
		t.Fatalf("lost spans under concurrency: %d, want 800", n)
	}
}

// TestTracerRingAndSlowLog: the ring keeps the newest records in
// order, and only requests over the threshold hit the slow-query log.
func TestTracerRingAndSlowLog(t *testing.T) {
	var slow bytes.Buffer
	tc := NewTracer(4, 10*time.Millisecond, &slow)
	for i := 0; i < 6; i++ {
		tr := NewTrace(fmt.Sprintf("id-%d", i))
		tr.Start = time.Now().Add(-time.Duration(i) * 5 * time.Millisecond)
		tr.AddSpanDur("probe", "", tr.Start, time.Duration(i)*5*time.Millisecond)
		tc.Finish(tr, "estimate", "acme", nil)
	}
	recent := tc.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d records, want capacity 4", len(recent))
	}
	if recent[0].TraceID != "id-5" || recent[3].TraceID != "id-2" {
		t.Fatalf("ring order wrong: newest %s ... oldest %s", recent[0].TraceID, recent[3].TraceID)
	}
	if got := tc.Recent(2); len(got) != 2 || got[0].TraceID != "id-5" {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if recent[0].Op != "estimate" || recent[0].Tenant != "acme" || len(recent[0].Spans) != 1 {
		t.Fatalf("record fields lost: %+v", recent[0])
	}

	// Traces 2..5 were backdated ≥10ms, so exactly 4 slow lines, each
	// valid JSON carrying the trace id.
	lines := strings.Split(strings.TrimSpace(slow.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("slow log has %d lines, want 4:\n%s", len(lines), slow.String())
	}
	for _, ln := range lines {
		var rec struct {
			Slow    bool    `json:"slow_query"`
			TraceID string  `json:"trace_id"`
			DurMs   float64 `json:"dur_ms"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("slow log line is not JSON: %v\n%s", err, ln)
		}
		if !rec.Slow || rec.TraceID == "" || rec.DurMs < 10 {
			t.Fatalf("slow log line malformed: %+v", rec)
		}
	}

	// Nil tracer and nil trace: no-ops.
	var nilTc *Tracer
	nilTc.Finish(NewTrace("x"), "estimate", "", nil)
	if nilTc.Recent(1) != nil {
		t.Fatal("nil tracer returned records")
	}
	tc.Finish(nil, "estimate", "", nil)
}

// TestTracerError: a failed request's error string rides the record.
func TestTracerError(t *testing.T) {
	tc := NewTracer(2, 0, nil)
	tc.Finish(NewTrace("e1"), "estimate_batch", "", fmt.Errorf("boom"))
	recent := tc.Recent(1)
	if len(recent) != 1 || recent[0].Err != "boom" {
		t.Fatalf("error not recorded: %+v", recent)
	}
}
