package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler serves net/http/pprof under /debug/pprof/, gated by the
// same admin token that protects /swap and /rollout: 403 when the
// daemon has no token configured (profiling surface disabled — the
// safe default), 401 on a missing or wrong X-QCFE-Admin-Token. Mount
// it at /debug/pprof/ on a daemon's own mux; the global
// http.DefaultServeMux is never touched.
func PprofHandler(adminToken string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if adminToken == "" {
			http.Error(w, `{"error":"pprof disabled (no admin token configured)"}`, http.StatusForbidden)
			return
		}
		if r.Header.Get("X-QCFE-Admin-Token") != adminToken {
			http.Error(w, `{"error":"missing or invalid admin token"}`, http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}
