package dbenv

import "repro/internal/artifact"

// Encode appends the full environment — ID, knobs, hardware profile,
// storage format, noise level — to the artifact payload. The hardware
// profile is written field by field rather than by name so artifacts
// survive edits to the built-in Profiles fleet (and environments with
// custom hardware round-trip exactly).
func (e *Environment) Encode(enc *artifact.Encoder) {
	enc.Int(e.ID)
	enc.Int(e.Knobs.SharedBuffersMB)
	enc.Int(e.Knobs.WorkMemKB)
	enc.Bool(e.Knobs.EnableIndexScan)
	enc.Bool(e.Knobs.EnableHashJoin)
	enc.Bool(e.Knobs.EnableMergeJoin)
	enc.Bool(e.Knobs.EnableNestLoop)
	enc.Int(e.Knobs.ParallelWorkers)
	enc.Bool(e.Knobs.JIT)
	enc.Str(e.HW.Name)
	enc.F64(e.HW.SeqReadMBps)
	enc.F64(e.HW.RandIOPS)
	enc.F64(e.HW.CPUFactor)
	enc.Int(e.HW.MemoryGB)
	enc.Int(int(e.Format))
	enc.F64(e.NoiseStd)
}

// Decode reads an environment written by Encode.
func Decode(d *artifact.Decoder) (*Environment, error) {
	e := &Environment{}
	e.ID = d.Int()
	e.Knobs.SharedBuffersMB = d.Int()
	e.Knobs.WorkMemKB = d.Int()
	e.Knobs.EnableIndexScan = d.Bool()
	e.Knobs.EnableHashJoin = d.Bool()
	e.Knobs.EnableMergeJoin = d.Bool()
	e.Knobs.EnableNestLoop = d.Bool()
	e.Knobs.ParallelWorkers = d.Int()
	e.Knobs.JIT = d.Bool()
	e.HW.Name = d.Str()
	e.HW.SeqReadMBps = d.F64()
	e.HW.RandIOPS = d.F64()
	e.HW.CPUFactor = d.F64()
	e.HW.MemoryGB = d.Int()
	e.Format = StorageFormat(d.Int())
	e.NoiseStd = d.F64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return e, nil
}
