// Package dbenv models the paper's "ignored variables": database knobs,
// hardware, storage structure, and operating-system effects. An Environment
// converts the physical resource counts measured by the executor
// (sequential/random page reads, tuples, index tuples, operator startups)
// into simulated execution time.
//
// This package is the substitution for the paper's twenty random
// PostgreSQL 14.4 configurations on physical servers. It implements the
// paper's own causal premise (§III-A): the query plan and data determine
// the resource counts N = {ns, nr, nt, ni, no} while the ignored variables
// determine the per-unit coefficients C = {cs, cr, ct, ci, co} — plus the
// second-order effects (buffer-cache hits, work_mem spills, storage-format
// read amplification) that make C only *approximately* recoverable, so the
// feature-snapshot regression faces a realistic fitting problem.
package dbenv

import (
	"fmt"
	"math"
	"math/rand"
)

// Knobs mirrors the PostgreSQL settings the paper randomizes across its
// twenty configurations. Only settings with a cost effect are modeled.
type Knobs struct {
	SharedBuffersMB int  // buffer cache size; drives page-cache hit rates
	WorkMemKB       int  // per-sort/hash memory; overflow spills to disk
	EnableIndexScan bool // planner permission to use index scans
	EnableHashJoin  bool
	EnableMergeJoin bool
	EnableNestLoop  bool
	ParallelWorkers int  // max parallel workers per gather (0 = off)
	JIT             bool // expression compilation: cheaper per-tuple CPU
}

// DefaultKnobs returns a PostgreSQL-ish default configuration.
func DefaultKnobs() Knobs {
	return Knobs{
		SharedBuffersMB: 128,
		WorkMemKB:       4096,
		EnableIndexScan: true,
		EnableHashJoin:  true,
		EnableMergeJoin: true,
		EnableNestLoop:  true,
		ParallelWorkers: 0,
		JIT:             false,
	}
}

// Hardware is a machine profile. The two profiles from the paper's §V-A
// (data-collection server and training server) appear in Profiles, plus two
// more to widen the environment spread for Figure 1.
type Hardware struct {
	Name        string
	SeqReadMBps float64 // sustained sequential read bandwidth
	RandIOPS    float64 // 8KB random read operations per second
	CPUFactor   float64 // relative single-core speed (1.0 = baseline)
	MemoryGB    int
}

// Profiles holds the hardware fleet environments are sampled from.
var Profiles = []Hardware{
	{Name: "r7-7735hs-ssd", SeqReadMBps: 3500, RandIOPS: 400000, CPUFactor: 1.00, MemoryGB: 16},
	{Name: "i7-12700h-nvme", SeqReadMBps: 5000, RandIOPS: 650000, CPUFactor: 1.15, MemoryGB: 42},
	{Name: "xeon-sata-ssd", SeqReadMBps: 520, RandIOPS: 90000, CPUFactor: 0.80, MemoryGB: 64},
	{Name: "vm-hdd", SeqReadMBps: 160, RandIOPS: 180, CPUFactor: 0.60, MemoryGB: 8},
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Hardware, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Hardware{}, false
}

// StorageFormat selects the physical layout, the paper's example of an
// ignored variable ("B+ tree or LSM tree").
type StorageFormat int

const (
	// HeapBTree is the PostgreSQL-style heap + B+tree layout.
	HeapBTree StorageFormat = iota
	// LSM approximates an LSM-tree engine: random point reads pay a
	// read-amplification factor across levels, sequential scans pay a
	// small merge overhead.
	LSM
)

// String implements fmt.Stringer.
func (f StorageFormat) String() string {
	if f == LSM {
		return "lsm"
	}
	return "heap+btree"
}

// Environment is one complete database environment: knobs × hardware ×
// storage format. Its ID seeds the per-query noise stream so experiment
// runs are reproducible.
type Environment struct {
	ID     int
	Knobs  Knobs
	HW     Hardware
	Format StorageFormat

	// NoiseStd is the lognormal σ applied to each query's simulated
	// latency, modeling OS scheduling jitter. Zero disables noise.
	NoiseStd float64
}

// Default returns the baseline environment (default knobs on the paper's
// data-collection server).
func Default() *Environment {
	return &Environment{ID: 0, Knobs: DefaultKnobs(), HW: Profiles[0], Format: HeapBTree, NoiseStd: 0.02}
}

// Random samples an environment the way the paper samples its twenty knob
// configurations, additionally varying hardware and storage format.
func Random(id int, rng *rand.Rand) *Environment {
	k := Knobs{
		SharedBuffersMB: []int{32, 64, 128, 256, 512, 1024}[rng.Intn(6)],
		WorkMemKB:       []int{256, 1024, 4096, 16384, 65536}[rng.Intn(5)],
		EnableIndexScan: rng.Float64() < 0.8,
		EnableHashJoin:  rng.Float64() < 0.8,
		EnableMergeJoin: rng.Float64() < 0.8,
		EnableNestLoop:  rng.Float64() < 0.9,
		ParallelWorkers: rng.Intn(5),
		JIT:             rng.Float64() < 0.5,
	}
	// Guarantee at least one join method stays enabled.
	if !k.EnableHashJoin && !k.EnableMergeJoin && !k.EnableNestLoop {
		k.EnableNestLoop = true
	}
	f := HeapBTree
	if rng.Float64() < 0.25 {
		f = LSM
	}
	return &Environment{
		ID:       id,
		Knobs:    k,
		HW:       Profiles[rng.Intn(len(Profiles))],
		Format:   f,
		NoiseStd: 0.02,
	}
}

// SampleSet draws n distinct-seeming environments from one seed — the
// paper's "20 random database configurations".
func SampleSet(n int, seed int64) []*Environment {
	rng := rand.New(rand.NewSource(seed))
	envs := make([]*Environment, n)
	for i := range envs {
		envs[i] = Random(i, rng)
	}
	return envs
}

// Coefficients are the per-unit costs C = {cs, cr, ct, ci, co} of the
// paper's PostgreSQL cost formula, in milliseconds per unit. They are the
// quantities the feature snapshot tries to recover by regression.
type Coefficients struct {
	SeqPage  float64 // cs: sequential page read
	RandPage float64 // cr: random page read
	Tuple    float64 // ct: CPU per tuple
	IdxTuple float64 // ci: CPU per index tuple
	Operator float64 // co: per-operator startup / bookkeeping
}

// baseCoefficients derives the raw device-level coefficients before cache
// and format effects.
func (e *Environment) baseCoefficients() Coefficients {
	const pageKB = 8.0
	seqMs := pageKB / 1024 / e.HW.SeqReadMBps * 1000 // ms per 8KB sequential
	randMs := 1000 / e.HW.RandIOPS                   // ms per random IOP
	cpuMs := 0.0001 / e.HW.CPUFactor                 // ms per tuple at baseline
	if e.Knobs.JIT {
		cpuMs *= 0.75 // JIT removes interpretation overhead
	}
	return Coefficients{
		SeqPage:  seqMs,
		RandPage: randMs,
		Tuple:    cpuMs,
		IdxTuple: cpuMs * 0.5,
		Operator: 0.01 / e.HW.CPUFactor,
	}
}

// cacheHitFrac models the buffer cache: the fraction of page requests to a
// relation of relPages that hit shared_buffers (plus the OS page cache
// backed by total memory). Small relations are fully cached; large ones
// decay smoothly.
func (e *Environment) cacheHitFrac(relPages int64) float64 {
	if relPages <= 0 {
		return 1
	}
	bufferPages := float64(e.Knobs.SharedBuffersMB) * 1024 / 8
	osPages := float64(e.HW.MemoryGB) * 1024 * 1024 / 8 * 0.25 // OS page cache share
	effective := bufferPages + 0.5*osPages
	frac := effective / float64(relPages)
	if frac >= 1 {
		return 0.995 // first touch still misses occasionally
	}
	return frac * 0.9
}

// memPageCost is the cost of serving a page from cache (memcpy + buffer
// manager bookkeeping), CPU-bound.
func (e *Environment) memPageCost() float64 { return 0.0008 / e.HW.CPUFactor }

// SeqPageCost returns the effective ms per sequentially read page of a
// relation occupying relPages, blending cache hits and device reads and
// applying the storage-format overhead.
func (e *Environment) SeqPageCost(relPages int64) float64 {
	c := e.baseCoefficients()
	hit := e.cacheHitFrac(relPages)
	cost := hit*e.memPageCost() + (1-hit)*c.SeqPage
	if e.Format == LSM {
		cost *= 1.3 // merge across runs during scans
	}
	return cost
}

// RandPageCost returns the effective ms per randomly read page.
func (e *Environment) RandPageCost(relPages int64) float64 {
	c := e.baseCoefficients()
	hit := e.cacheHitFrac(relPages)
	cost := hit*e.memPageCost() + (1-hit)*c.RandPage
	if e.Format == LSM {
		cost *= 2.2 // read amplification across levels
	}
	return cost
}

// TupleCost returns ms of CPU per tuple processed.
func (e *Environment) TupleCost() float64 { return e.baseCoefficients().Tuple }

// IdxTupleCost returns ms of CPU per index entry processed.
func (e *Environment) IdxTupleCost() float64 { return e.baseCoefficients().IdxTuple }

// OperatorCost returns the per-operator startup cost in ms.
func (e *Environment) OperatorCost() float64 { return e.baseCoefficients().Operator }

// ParallelSpeedup returns the wall-clock divisor applied to scan-heavy
// work when parallel workers are enabled (diminishing returns per worker,
// Amdahl-style).
func (e *Environment) ParallelSpeedup() float64 {
	w := e.Knobs.ParallelWorkers
	if w <= 0 {
		return 1
	}
	return 1 + 0.6*float64(w)
}

// SpillPasses returns the number of extra read+write passes an operator
// needs when its working set of bytes exceeds work_mem (0 when it fits).
// Mirrors external merge sort: each pass reads and writes the whole set.
func (e *Environment) SpillPasses(bytes int64) int {
	limit := int64(e.Knobs.WorkMemKB) * 1024
	if limit <= 0 || bytes <= limit {
		return 0
	}
	ratio := float64(bytes) / float64(limit)
	return int(math.Ceil(math.Log2(ratio)))
}

// Noise returns a multiplicative lognormal noise factor for one query,
// derived deterministically from the environment ID and query sequence so
// repeated runs reproduce byte-identical labels.
func (e *Environment) Noise(querySeq int64) float64 {
	if e.NoiseStd == 0 {
		return 1
	}
	rng := rand.New(rand.NewSource(int64(e.ID)*1_000_003 + querySeq))
	return math.Exp(rng.NormFloat64() * e.NoiseStd)
}

// String summarizes the environment for logs and EXPLAIN headers.
func (e *Environment) String() string {
	return fmt.Sprintf("env#%d{hw=%s fmt=%s shared_buffers=%dMB work_mem=%dKB idx=%v hash=%v merge=%v nl=%v par=%d jit=%v}",
		e.ID, e.HW.Name, e.Format, e.Knobs.SharedBuffersMB, e.Knobs.WorkMemKB,
		e.Knobs.EnableIndexScan, e.Knobs.EnableHashJoin, e.Knobs.EnableMergeJoin,
		e.Knobs.EnableNestLoop, e.Knobs.ParallelWorkers, e.Knobs.JIT)
}
