package dbenv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultEnvironment(t *testing.T) {
	e := Default()
	if e.Knobs.SharedBuffersMB <= 0 || e.HW.Name == "" {
		t.Fatalf("default env incomplete: %v", e)
	}
	if !e.Knobs.EnableIndexScan {
		t.Fatalf("default should allow index scans")
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("vm-hdd")
	if !ok || p.SeqReadMBps != 160 {
		t.Fatalf("ProfileByName(vm-hdd) = %v, %v", p, ok)
	}
	if _, ok := ProfileByName("ghost"); ok {
		t.Fatalf("unknown profile should miss")
	}
}

func TestRandomEnvironmentsDeterministic(t *testing.T) {
	a := SampleSet(20, 42)
	b := SampleSet(20, 42)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("env %d differs across same-seed samples", i)
		}
	}
	c := SampleSet(20, 43)
	same := 0
	for i := range a {
		if a[i].String() == c[i].String() {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical environment sets")
	}
}

func TestRandomAlwaysHasJoinMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		e := Random(i, rng)
		if !e.Knobs.EnableHashJoin && !e.Knobs.EnableMergeJoin && !e.Knobs.EnableNestLoop {
			t.Fatalf("env %d has no join method enabled", i)
		}
	}
}

func TestCacheEffects(t *testing.T) {
	e := Default()
	small := e.SeqPageCost(10)      // fully cached
	large := e.SeqPageCost(5000000) // mostly misses
	if small >= large {
		t.Fatalf("cached scan should be cheaper: small=%v large=%v", small, large)
	}
}

func TestRandomVsSequential(t *testing.T) {
	// On spinning disk, random pages must be far more expensive.
	e := &Environment{Knobs: DefaultKnobs(), HW: Profiles[3], Format: HeapBTree}
	rel := int64(10_000_000) // big enough to defeat the cache
	if ratio := e.RandPageCost(rel) / e.SeqPageCost(rel); ratio < 10 {
		t.Fatalf("HDD rand/seq ratio = %v, want ≫10", ratio)
	}
}

func TestLSMAmplification(t *testing.T) {
	heap := &Environment{Knobs: DefaultKnobs(), HW: Profiles[0], Format: HeapBTree}
	lsm := &Environment{Knobs: DefaultKnobs(), HW: Profiles[0], Format: LSM}
	rel := int64(1_000_000)
	if lsm.RandPageCost(rel) <= heap.RandPageCost(rel) {
		t.Fatalf("LSM random reads should be amplified")
	}
	if lsm.SeqPageCost(rel) <= heap.SeqPageCost(rel) {
		t.Fatalf("LSM scans should pay merge overhead")
	}
}

func TestJITReducesTupleCost(t *testing.T) {
	base := Default()
	jit := Default()
	jit.Knobs.JIT = true
	if jit.TupleCost() >= base.TupleCost() {
		t.Fatalf("JIT should reduce per-tuple CPU")
	}
}

func TestSpillPasses(t *testing.T) {
	e := Default()
	e.Knobs.WorkMemKB = 1024 // 1MB
	if p := e.SpillPasses(512 * 1024); p != 0 {
		t.Fatalf("fits in work_mem but passes = %d", p)
	}
	if p := e.SpillPasses(2 * 1024 * 1024); p != 1 {
		t.Fatalf("2x overflow passes = %d, want 1", p)
	}
	if p := e.SpillPasses(16 * 1024 * 1024); p != 4 {
		t.Fatalf("16x overflow passes = %d, want 4", p)
	}
}

func TestParallelSpeedup(t *testing.T) {
	e := Default()
	if e.ParallelSpeedup() != 1 {
		t.Fatalf("no workers should mean speedup 1")
	}
	e.Knobs.ParallelWorkers = 4
	if s := e.ParallelSpeedup(); s <= 1 || s > 5 {
		t.Fatalf("speedup = %v", s)
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	e := Default()
	if e.Noise(7) != e.Noise(7) {
		t.Fatalf("noise must be deterministic per (env, seq)")
	}
	if e.Noise(7) == e.Noise(8) {
		t.Fatalf("noise should vary across queries")
	}
	e.NoiseStd = 0
	if e.Noise(1) != 1 {
		t.Fatalf("zero σ should disable noise")
	}
}

func TestEnvironmentSpread(t *testing.T) {
	// The premise of Figure 1: the same workload's cost varies ≥2× across
	// environments. Check the coefficient spread directly.
	envs := SampleSet(20, 1)
	rel := int64(200_000)
	min, max := math.Inf(1), math.Inf(-1)
	for _, e := range envs {
		c := e.SeqPageCost(rel) + 100*e.TupleCost()
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max/min < 2 {
		t.Fatalf("environment cost spread %.2fx, want ≥2x", max/min)
	}
}

// Property: all cost accessors are strictly positive and finite for any
// sampled environment and relation size.
func TestCostsPositive(t *testing.T) {
	f := func(seed int64, relRaw int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := Random(0, rng)
		rel := relRaw % 10_000_000
		if rel < 0 {
			rel = -rel
		}
		vals := []float64{
			e.SeqPageCost(rel), e.RandPageCost(rel), e.TupleCost(),
			e.IdxTupleCost(), e.OperatorCost(), e.ParallelSpeedup(),
		}
		for _, v := range vals {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
