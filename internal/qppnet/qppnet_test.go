package qppnet

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/encoding"
	"repro/internal/metrics"
	"repro/internal/planner"
)

// synthetic plan trees with a cost that depends on structure: a scan node
// costs 2·log(rows), a join tree adds its children plus 1.
func synthPlans(n int, seed int64) ([]*planner.Node, []float64) {
	rng := rand.New(rand.NewSource(seed))
	var plans []*planner.Node
	var ms []float64
	for i := 0; i < n; i++ {
		rows := float64(100 + rng.Intn(100000))
		scan := &planner.Node{Op: planner.SeqScan, Table: "t", EstRows: rows, EstIn1: rows, EstWidth: 16, Limit: -1}
		cost := rows * 0.001
		if rng.Intn(2) == 0 {
			rows2 := float64(100 + rng.Intn(10000))
			scan2 := &planner.Node{Op: planner.SeqScan, Table: "t", EstRows: rows2, EstIn1: rows2, EstWidth: 16, Limit: -1}
			join := &planner.Node{
				Op: planner.HashJoin, Children: []*planner.Node{scan, scan2},
				EstRows: rows, EstIn1: rows, EstIn2: rows2, EstWidth: 32, Limit: -1,
			}
			cost += rows2*0.001 + 0.5
			plans = append(plans, join)
		} else {
			plans = append(plans, scan)
		}
		ms = append(ms, cost)
	}
	return plans, ms
}

func testFeaturizer() *encoding.Featurizer {
	s := catalog.NewSchema("synth")
	s.AddTable(catalog.NewTable("t", catalog.Column{Name: "a", Type: catalog.IntCol, Width: 8}))
	return &encoding.Featurizer{Enc: encoding.New(s)}
}

func TestQPPNetLearnsTreeCosts(t *testing.T) {
	f := testFeaturizer()
	m := New(f, 1)
	plans, ms := synthPlans(300, 2)
	m.Train(plans, ms, 500)

	testPlans, testMs := synthPlans(60, 3)
	pred := make([]float64, len(testPlans))
	for i, p := range testPlans {
		pred[i] = m.PredictMs(p)
	}
	s := metrics.Summarize(testMs, pred)
	if s.Pearson < 0.9 {
		t.Fatalf("pearson = %v, want ≥0.9", s.Pearson)
	}
	if s.Mean > 2 {
		t.Fatalf("mean q-error = %v", s.Mean)
	}
}

func TestQPPNetSharedSubnets(t *testing.T) {
	// Both scans in one plan go through the same SeqScan network: the
	// network map has exactly NumOpTypes entries regardless of tree size.
	m := New(testFeaturizer(), 1)
	if len(m.Nets) != int(planner.NumOpTypes) {
		t.Fatalf("nets = %d", len(m.Nets))
	}
	if m.NumParams() == 0 {
		t.Fatalf("no parameters")
	}
}

func TestQPPNetCloneIndependent(t *testing.T) {
	f := testFeaturizer()
	m := New(f, 1)
	plans, ms := synthPlans(50, 4)
	m.Train(plans, ms, 50)
	c := m.Clone()
	before := c.PredictMs(plans[0])
	m.Train(plans, ms, 100)
	if c.PredictMs(plans[0]) != before {
		t.Fatalf("clone affected by original's training")
	}
}

func TestQPPNetSetFeaturizerDimCheck(t *testing.T) {
	f := testFeaturizer()
	m := New(f, 1)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on dim mismatch")
		}
	}()
	s2 := catalog.NewSchema("other")
	s2.AddTable(catalog.NewTable("a", catalog.Column{Name: "x", Type: catalog.IntCol, Width: 8}))
	s2.AddTable(catalog.NewTable("b", catalog.Column{Name: "y", Type: catalog.IntCol, Width: 8}))
	m.SetFeaturizer(&encoding.Featurizer{Enc: encoding.New(s2)})
}

func TestQPPNetEmptyTraining(t *testing.T) {
	m := New(testFeaturizer(), 1)
	if d := m.Train(nil, nil, 10); d < 0 {
		t.Fatalf("duration negative")
	}
}

func TestQPPNetPredictionNonNegative(t *testing.T) {
	m := New(testFeaturizer(), 9)
	plans, _ := synthPlans(20, 5)
	for _, p := range plans {
		if v := m.PredictMs(p); v < 0 {
			t.Fatalf("negative prediction %v", v)
		}
	}
}
