// Package qppnet reimplements QPPNet (Marcus & Papaemmanouil, "Plan-
// Structured Deep Neural Network Models for Query Performance Prediction"),
// the plan-structured estimator the paper integrates QCFE into as
// QCFE(qpp).
//
// One MLP exists per physical operator type. A node's network receives the
// node's feature vector concatenated with the element-wise sum of its
// children's output vectors; the first element of the root's output vector
// is the predicted log-cost. Training backpropagates through the whole
// tree, so operator networks are shared across every plan they appear in.
package qppnet

import (
	"math/rand"
	"time"

	"repro/internal/encoding"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/planner"
)

// Hyperparameters mirroring the open-source QPPNet configuration, scaled
// to this repo's feature sizes.
const (
	defaultHidden = 32
	defaultOutVec = 16
	defaultLR     = 0.001
	batchSize     = 16
)

// Model is a plan-structured cost estimator.
type Model struct {
	F      *encoding.Featurizer
	Hidden int
	OutVec int

	Nets map[planner.OpType]*nn.MLP
	opt  *nn.Adam
	rng  *rand.Rand
}

// New builds a QPPNet with one subnetwork per operator type.
func New(f *encoding.Featurizer, seed int64) *Model {
	m := &Model{
		F:      f,
		Hidden: defaultHidden,
		OutVec: defaultOutVec,
		Nets:   make(map[planner.OpType]*nn.MLP),
		opt:    nn.NewAdam(defaultLR),
		rng:    rand.New(rand.NewSource(seed)),
	}
	in := f.Dim() + m.OutVec
	for _, op := range planner.AllOpTypes() {
		m.Nets[op] = nn.NewMLP([]int{in, m.Hidden, m.Hidden, m.OutVec}, m.rng)
	}
	return m
}

// Name implements the experiment harness's model interface.
func (m *Model) Name() string { return "qppnet" }

// treeCache stores one forward pass through a plan tree for backprop.
type treeCache struct {
	op       planner.OpType
	input    []float64
	cache    *nn.Cache
	out      []float64
	children []*treeCache
}

func (m *Model) forward(n *planner.Node) *treeCache {
	tc := &treeCache{op: n.Op}
	childSum := make([]float64, m.OutVec)
	for _, c := range n.Children {
		cc := m.forward(c)
		tc.children = append(tc.children, cc)
		for i, v := range cc.out {
			childSum[i] += v
		}
	}
	feat := m.F.Node(n)
	tc.input = append(append(make([]float64, 0, len(feat)+m.OutVec), feat...), childSum...)
	tc.out, tc.cache = m.Nets[n.Op].Forward(tc.input)
	return tc
}

func (m *Model) backward(tc *treeCache, dOut []float64) {
	dIn := m.Nets[tc.op].Backward(tc.cache, dOut)
	if len(tc.children) == 0 {
		return
	}
	dChild := dIn[len(dIn)-m.OutVec:]
	for _, c := range tc.children {
		m.backward(c, dChild)
	}
}

// PredictMs estimates the plan's execution time in milliseconds.
func (m *Model) PredictMs(root *planner.Node) float64 {
	tc := m.forward(root)
	return metrics.UnlogMs(tc.out[0])
}

// layers collects every subnetwork's parameters for the optimizer.
func (m *Model) layers() []*nn.Linear {
	var out []*nn.Linear
	for _, op := range planner.AllOpTypes() {
		out = append(out, m.Nets[op].Layers...)
	}
	return out
}

// Train fits the model on (plan, milliseconds) pairs for the given number
// of iterations (mini-batch steps) and returns the wall-clock training
// time — the quantity the paper's Table IV reports.
func (m *Model) Train(plans []*planner.Node, ms []float64, iters int) time.Duration {
	start := time.Now()
	if len(plans) == 0 {
		return time.Since(start)
	}
	layers := m.layers()
	targets := make([]float64, len(ms))
	for i, v := range ms {
		targets[i] = metrics.LogMs(v)
	}
	for it := 0; it < iters; it++ {
		sz := 0
		for b := 0; b < batchSize; b++ {
			j := m.rng.Intn(len(plans))
			tc := m.forward(plans[j])
			diff := tc.out[0] - targets[j]
			dOut := make([]float64, m.OutVec)
			dOut[0] = 2 * diff
			m.backward(tc, dOut)
			sz++
		}
		m.opt.Step(layers, sz)
	}
	return time.Since(start)
}

// Clone deep-copies the model (weights only) — the basis of the §V-E
// transfer workflow, which clones a trained model and retrains briefly
// against a new environment's snapshot.
func (m *Model) Clone() *Model {
	c := &Model{
		F:      m.F,
		Hidden: m.Hidden,
		OutVec: m.OutVec,
		Nets:   make(map[planner.OpType]*nn.MLP, len(m.Nets)),
		opt:    nn.NewAdam(defaultLR),
		rng:    rand.New(rand.NewSource(m.rng.Int63())),
	}
	for op, net := range m.Nets {
		c.Nets[op] = net.Clone()
	}
	return c
}

// SetFeaturizer swaps the featurizer (e.g. replacing the snapshot with one
// fitted on new hardware). The feature dimensionality must be unchanged.
func (m *Model) SetFeaturizer(f *encoding.Featurizer) {
	if f.Dim() != m.F.Dim() {
		panic("qppnet: featurizer dimension mismatch")
	}
	m.F = f
}

// NumParams reports the total trainable parameter count.
func (m *Model) NumParams() int {
	var n int
	for _, net := range m.Nets {
		n += net.NumParams()
	}
	return n
}
