// Package qppnet reimplements QPPNet (Marcus & Papaemmanouil, "Plan-
// Structured Deep Neural Network Models for Query Performance Prediction"),
// the plan-structured estimator the paper integrates QCFE into as
// QCFE(qpp).
//
// One MLP exists per physical operator type. A node's network receives the
// node's feature vector concatenated with the element-wise sum of its
// children's output vectors; the first element of the root's output vector
// is the predicted log-cost. Training backpropagates through the whole
// tree, so operator networks are shared across every plan they appear in.
//
// Batched execution processes plan trees level by level (leaves first):
// all nodes of one operator type at one level across the whole batch run
// through their shared subnetwork as a single matrix. The backward pass
// stays per-sample tree recursion over row views of the batched caches —
// that is what keeps gradient accumulation in the scalar path's order, so
// Train is bit-identical to the retained per-sample reference
// (TrainReference) at any batch size, and PredictBatch to PredictMs.
package qppnet

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/encoding"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/planner"
)

// Hyperparameters mirroring the open-source QPPNet configuration, scaled
// to this repo's feature sizes.
const (
	defaultHidden = 32
	defaultOutVec = 16
	defaultLR     = 0.001
	batchSize     = 16
)

// Model is a plan-structured cost estimator.
type Model struct {
	F      *encoding.Featurizer
	Hidden int
	OutVec int

	Nets map[planner.OpType]*nn.MLP
	// BatchSize overrides the default minibatch size when positive; at any
	// fixed size the trajectory is bit-identical to the per-sample
	// reference path.
	BatchSize int
	opt       *nn.Adam
	rng       *rand.Rand
}

// New builds a QPPNet with one subnetwork per operator type.
func New(f *encoding.Featurizer, seed int64) *Model {
	m := &Model{
		F:      f,
		Hidden: defaultHidden,
		OutVec: defaultOutVec,
		Nets:   make(map[planner.OpType]*nn.MLP),
		opt:    nn.NewAdam(defaultLR),
		rng:    rand.New(rand.NewSource(seed)),
	}
	in := f.Dim() + m.OutVec
	for _, op := range planner.AllOpTypes() {
		m.Nets[op] = nn.NewMLP([]int{in, m.Hidden, m.Hidden, m.OutVec}, m.rng)
	}
	return m
}

// Name implements the experiment harness's model interface.
func (m *Model) Name() string { return "qppnet" }

func (m *Model) batch() int {
	if m.BatchSize > 0 {
		return m.BatchSize
	}
	return batchSize
}

// treeCache stores one forward pass through a plan tree for backprop. The
// scalar path fills cache; the batched path fills (bc, row) — a row of
// the level-batch its node ran in.
type treeCache struct {
	op       planner.OpType
	input    []float64
	cache    *nn.Cache
	bc       *nn.BatchCache
	row      int
	out      []float64
	children []*treeCache
}

func (m *Model) forward(n *planner.Node) *treeCache {
	tc := &treeCache{op: n.Op}
	childSum := make([]float64, m.OutVec)
	for _, c := range n.Children {
		cc := m.forward(c)
		tc.children = append(tc.children, cc)
		for i, v := range cc.out {
			childSum[i] += v
		}
	}
	feat := m.F.Node(n)
	tc.input = append(append(make([]float64, 0, len(feat)+m.OutVec), feat...), childSum...)
	tc.out, tc.cache = m.Nets[n.Op].Forward(tc.input)
	return tc
}

// backwardReference is the seed per-sample backward: full input-gradient
// products at every node. TrainReference uses it.
func (m *Model) backwardReference(tc *treeCache, dOut []float64) {
	dIn := m.Nets[tc.op].Backward(tc.cache, dOut)
	if len(tc.children) == 0 {
		return
	}
	dChild := dIn[len(dIn)-m.OutVec:]
	for _, c := range tc.children {
		m.backwardReference(c, dChild)
	}
}

// backward is the training backward over a batched forward's caches: the
// recursion and the gradient accumulation order are exactly the reference
// path's (samples one at a time, root-down pre-order), but each node only
// produces the child-sum suffix of its input gradient (nothing reads the
// feature block's gradient, and leaves read nothing at all). Parameter
// gradients are bit-identical to backwardReference.
func (m *Model) backward(ar *linalg.Arena, tc *treeCache, dOut []float64) {
	tail := 0
	if len(tc.children) > 0 {
		tail = m.OutVec
	}
	dChild := m.Nets[tc.op].BackwardTailRow(ar, tc.bc, tc.row, dOut, tail)
	for _, c := range tc.children {
		m.backward(ar, c, dChild)
	}
}

// planFeatures featurizes a plan's nodes in post-order (children first, in
// child order, then the node) — the order buildSkeleton consumes.
func planFeatures(f *encoding.Featurizer, root *planner.Node) [][]float64 {
	out := make([][]float64, 0, root.CountNodes())
	var rec func(n *planner.Node)
	rec = func(n *planner.Node) {
		for _, c := range n.Children {
			rec(c)
		}
		out = append(out, f.Node(n))
	}
	rec(root)
	return out
}

// bNode is one plan node scheduled for batched execution: its skeleton
// cache, its featurization, and its height above the leaves.
type bNode struct {
	tc    *treeCache
	feat  []float64
	level int
}

// planSkeleton is one plan's reusable batched-execution state: the
// treeCache tree plus its flat post-order node list. The tree structure
// and features are static across a training run; forwardBatch overwrites
// each node's (out, bc, row) every time the plan appears in a minibatch,
// so one skeleton is reusable across iterations — but a single batch
// needs one instance per *occurrence* of a plan (duplicate draws get a
// fresh skeleton, or the second forward would clobber the first's
// outputs before backward reads them).
type planSkeleton struct {
	root     *treeCache
	flat     []bNode
	maxLevel int
}

// buildSkeleton builds the treeCache skeleton for one plan, consuming
// feats with cursor in post-order, and appends every node to flat. It
// returns the root cache and its level (leaves are level 0).
func buildSkeleton(n *planner.Node, feats [][]float64, cursor *int, flat *[]bNode) (*treeCache, int) {
	tc := &treeCache{op: n.Op}
	level := 0
	for _, c := range n.Children {
		cc, cl := buildSkeleton(c, feats, cursor, flat)
		tc.children = append(tc.children, cc)
		if cl+1 > level {
			level = cl + 1
		}
	}
	feat := feats[*cursor]
	*cursor++
	*flat = append(*flat, bNode{tc: tc, feat: feat, level: level})
	return tc, level
}

// newSkeleton builds a plan's reusable skeleton from its featurization.
func newSkeleton(root *planner.Node, feats [][]float64) *planSkeleton {
	s := &planSkeleton{flat: make([]bNode, 0, len(feats))}
	cursor := 0
	s.root, s.maxLevel = buildSkeleton(root, feats, &cursor, &s.flat)
	return s
}

// batchScratch holds forwardBatch's grouping buffers, reused across
// minibatch iterations so the grouping itself stays allocation-free.
type batchScratch struct {
	levels  [][]*bNode
	groups  [int(planner.NumOpTypes)][]*bNode
	opOrder []planner.OpType
}

// forwardBatch runs a batch of plan skeletons level by level: at each
// level (leaves first) the nodes sharing an operator type form one matrix
// through that operator's subnetwork. Every node's input, output, and
// cache are bit-identical to the scalar forward — the batch only regroups
// independent rows, never reorders arithmetic within one.
func (m *Model) forwardBatch(ar *linalg.Arena, sc *batchScratch, skels []*planSkeleton) {
	maxLevel := 0
	for _, s := range skels {
		if s.maxLevel > maxLevel {
			maxLevel = s.maxLevel
		}
	}
	for len(sc.levels) <= maxLevel {
		sc.levels = append(sc.levels, nil)
	}
	levels := sc.levels[:maxLevel+1]
	for l := range levels {
		levels[l] = levels[l][:0]
	}
	for _, s := range skels {
		for i := range s.flat {
			bn := &s.flat[i]
			levels[bn.level] = append(levels[bn.level], bn)
		}
	}
	for _, lvl := range levels {
		sc.opOrder = sc.opOrder[:0]
		for _, bn := range lvl {
			op := bn.tc.op
			if len(sc.groups[op]) == 0 {
				sc.opOrder = append(sc.opOrder, op)
			}
			sc.groups[op] = append(sc.groups[op], bn)
		}
		for _, op := range sc.opOrder {
			group := sc.groups[op]
			net := m.Nets[op]
			x := ar.Alloc(len(group), net.InDim())
			for r, bn := range group {
				row := x.RowView(r)
				copy(row, bn.feat)
				// The child-sum suffix starts from explicit zeros (the
				// arena hands out uninitialized memory) and accumulates
				// child outputs in child order — the scalar order.
				childSum := row[len(bn.feat):]
				for k := range childSum {
					childSum[k] = 0
				}
				for _, cc := range bn.tc.children {
					for k, v := range cc.out {
						childSum[k] += v
					}
				}
			}
			y, cache := net.ForwardBatch(ar, x)
			for r, bn := range group {
				tc := bn.tc
				tc.input = x.RowView(r)
				tc.out = y.RowView(r)
				tc.bc = cache
				tc.row = r
			}
			sc.groups[op] = group[:0]
		}
	}
}

// PredictMs estimates the plan's execution time in milliseconds.
func (m *Model) PredictMs(root *planner.Node) float64 {
	tc := m.forward(root)
	return metrics.UnlogMs(tc.out[0])
}

// predictChunkNodes bounds how many plan nodes one inference chunk
// materializes (skeletons, features, and layer caches); plans are
// independent, so chunking never changes results.
const predictChunkNodes = 1024

// PredictBatch estimates every plan's execution time in one level-batched
// pass. Output i is bit-identical to PredictMs(roots[i]).
func (m *Model) PredictBatch(roots []*planner.Node) []float64 {
	return m.predictSkeletons(len(roots),
		func(i int) int { return roots[i].CountNodes() },
		func(i int) *planSkeleton { return newSkeleton(roots[i], planFeatures(m.F, roots[i])) })
}

// PredictFeaturizedBatch is PredictBatch over pre-featurized plans (the
// query cache's feature tier): skeletons are built from the cached
// post-order rows instead of re-featurizing — exactly the feature reuse
// the training loop already does across iterations — so output i is
// bit-identical to PredictMs(fps[i].Root).
func (m *Model) PredictFeaturizedBatch(fps []*encoding.FeaturizedPlan) []float64 {
	return m.predictSkeletons(len(fps),
		func(i int) int { return fps[i].NumNodes() },
		func(i int) *planSkeleton { return newSkeleton(fps[i].Root, fps[i].Post) })
}

// predictSkeletons runs the chunked level-batched inference loop over n
// plans whose skeletons are produced on demand by skel (size gives plan i's
// node count for chunk packing).
func (m *Model) predictSkeletons(n int, size func(int) int, skel func(int) *planSkeleton) []float64 {
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	ar := &linalg.Arena{}
	sc := &batchScratch{}
	var skels []*planSkeleton
	for start := 0; start < n; {
		ar.Reset()
		skels = skels[:0]
		end, nodes := start, 0
		for end < n && (end == start || nodes+size(end) <= predictChunkNodes) {
			skels = append(skels, skel(end))
			nodes += len(skels[len(skels)-1].flat)
			end++
		}
		m.forwardBatch(ar, sc, skels)
		for s := start; s < end; s++ {
			out[s] = metrics.UnlogMs(skels[s-start].root.out[0])
		}
		start = end
	}
	return out
}

// layers collects every subnetwork's parameters for the optimizer.
func (m *Model) layers() []*nn.Linear {
	var out []*nn.Linear
	for _, op := range planner.AllOpTypes() {
		out = append(out, m.Nets[op].Layers...)
	}
	return out
}

// Train fits the model on (plan, milliseconds) pairs for the given number
// of iterations (mini-batch steps) and returns the wall-clock training
// time — the quantity the paper's Table IV reports.
//
// Each minibatch runs the level-batched forward (features cached per plan
// across iterations) and then backpropagates sample by sample over row
// views of the batched caches, keeping gradient accumulation in the
// scalar order; the trajectory is bit-identical to TrainReference.
func (m *Model) Train(plans []*planner.Node, ms []float64, iters int) time.Duration {
	d, _ := m.TrainCtx(context.Background(), plans, ms, iters)
	return d
}

// TrainCtx is Train with cooperative cancellation: ctx is checked at the
// top of every minibatch iteration — never inside one — so cancellation
// stops training promptly (within one minibatch) and the weights are
// always left in the consistent state of the last completed optimizer
// step. Iterations that do run consume rng and update weights exactly
// like Train, so an uncancelled TrainCtx is bit-identical to Train.
func (m *Model) TrainCtx(ctx context.Context, plans []*planner.Node, ms []float64, iters int) (time.Duration, error) {
	start := time.Now()
	if len(plans) == 0 {
		return time.Since(start), nil
	}
	layers := m.layers()
	targets := make([]float64, len(ms))
	for i, v := range ms {
		targets[i] = metrics.LogMs(v)
	}
	bs := m.batch()
	// Lazy per-plan state, built on a plan's first draw and reused for
	// the rest of the call: featurization and execution skeleton.
	skels := make([]*planSkeleton, len(plans))
	usedIter := make([]int, len(plans))
	for i := range usedIter {
		usedIter[i] = -1
	}
	idx := make([]int, bs)
	batchSkels := make([]*planSkeleton, bs)
	dOut := make([]float64, m.OutVec)
	ar := &linalg.Arena{} // per-iteration batch matrices, reused across iterations
	sc := &batchScratch{}
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return time.Since(start), err
		}
		ar.Reset()
		for b := range idx {
			j := m.rng.Intn(len(plans))
			idx[b] = j
			switch {
			case skels[j] == nil:
				skels[j] = newSkeleton(plans[j], planFeatures(m.F, plans[j]))
				batchSkels[b] = skels[j]
			case usedIter[j] == it:
				// Duplicate draw within one minibatch: the cached
				// skeleton's node outputs would be clobbered, so this
				// occurrence gets a throwaway instance (features are
				// still shared).
				feats := make([][]float64, 0, len(skels[j].flat))
				for i := range skels[j].flat {
					feats = append(feats, skels[j].flat[i].feat)
				}
				batchSkels[b] = newSkeleton(plans[j], feats)
			default:
				batchSkels[b] = skels[j]
			}
			usedIter[j] = it
		}
		m.forwardBatch(ar, sc, batchSkels)
		for b, sk := range batchSkels {
			diff := sk.root.out[0] - targets[idx[b]]
			for i := range dOut {
				dOut[i] = 0
			}
			dOut[0] = 2 * diff
			m.backward(ar, sk.root, dOut)
		}
		m.opt.Step(layers, bs)
	}
	return time.Since(start), nil
}

// TrainReference is the original per-sample training loop, retained as the
// bit-equality oracle for Train (the equivalence tests assert identical
// weight trajectories) and as the scalar arm of the train-iteration
// microbenchmarks. It consumes the model's rng exactly like Train.
func (m *Model) TrainReference(plans []*planner.Node, ms []float64, iters int) time.Duration {
	start := time.Now()
	if len(plans) == 0 {
		return time.Since(start)
	}
	layers := m.layers()
	targets := make([]float64, len(ms))
	for i, v := range ms {
		targets[i] = metrics.LogMs(v)
	}
	bs := m.batch()
	for it := 0; it < iters; it++ {
		sz := 0
		for b := 0; b < bs; b++ {
			j := m.rng.Intn(len(plans))
			tc := m.forward(plans[j])
			diff := tc.out[0] - targets[j]
			dOut := make([]float64, m.OutVec)
			dOut[0] = 2 * diff
			m.backwardReference(tc, dOut)
			sz++
		}
		m.opt.Step(layers, sz)
	}
	return time.Since(start)
}

// Clone deep-copies the model (weights only) — the basis of the §V-E
// transfer workflow, which clones a trained model and retrains briefly
// against a new environment's snapshot.
func (m *Model) Clone() *Model {
	c := &Model{
		F:         m.F,
		Hidden:    m.Hidden,
		OutVec:    m.OutVec,
		Nets:      make(map[planner.OpType]*nn.MLP, len(m.Nets)),
		BatchSize: m.BatchSize,
		opt:       nn.NewAdam(defaultLR),
		rng:       rand.New(rand.NewSource(m.rng.Int63())),
	}
	for op, net := range m.Nets {
		c.Nets[op] = net.Clone()
	}
	return c
}

// SetFeaturizer swaps the featurizer (e.g. replacing the snapshot with one
// fitted on new hardware). The feature dimensionality must be unchanged.
func (m *Model) SetFeaturizer(f *encoding.Featurizer) {
	if f.Dim() != m.F.Dim() {
		panic("qppnet: featurizer dimension mismatch")
	}
	m.F = f
}

// NumParams reports the total trainable parameter count.
func (m *Model) NumParams() int {
	var n int
	for _, net := range m.Nets {
		n += net.NumParams()
	}
	return n
}
