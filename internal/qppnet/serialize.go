package qppnet

import (
	"fmt"
	"math/rand"

	"repro/internal/artifact"
	"repro/internal/encoding"
	"repro/internal/nn"
	"repro/internal/planner"
)

// Encode appends the model's hyperparameters and every per-operator
// subnetwork's weights to the artifact payload, in AllOpTypes order so
// the layout is independent of map iteration order.
func (m *Model) Encode(e *artifact.Encoder) {
	e.Int(m.Hidden)
	e.Int(m.OutVec)
	e.Int(m.BatchSize)
	e.U32(uint32(planner.NumOpTypes))
	for _, op := range planner.AllOpTypes() {
		m.Nets[op].Encode(e)
	}
}

// Decode reads a model written by Encode and binds it to f. Inference is
// bit-identical to the saved model; the optimizer and minibatch sampler
// start fresh (seeded by seed), like a newly constructed model.
func Decode(d *artifact.Decoder, f *encoding.Featurizer, seed int64) (*Model, error) {
	m := &Model{
		F:         f,
		Hidden:    d.Int(),
		OutVec:    d.Int(),
		BatchSize: d.Int(),
		Nets:      make(map[planner.OpType]*nn.MLP, int(planner.NumOpTypes)),
		opt:       nn.NewAdam(defaultLR),
		rng:       rand.New(rand.NewSource(seed)),
	}
	nOps := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nOps != int(planner.NumOpTypes) {
		return nil, fmt.Errorf("qppnet: artifact has %d operator networks, this build has %d operator types", nOps, int(planner.NumOpTypes))
	}
	in := f.Dim() + m.OutVec
	for _, op := range planner.AllOpTypes() {
		net, err := nn.DecodeMLP(d)
		if err != nil {
			return nil, fmt.Errorf("qppnet: %v network: %w", op, err)
		}
		if net.InDim() != in {
			return nil, fmt.Errorf("qppnet: artifact %v network expects %d inputs, featurizer+outvec produce %d", op, net.InDim(), in)
		}
		if net.OutDim() != m.OutVec {
			return nil, fmt.Errorf("qppnet: artifact %v network emits %d outputs, want %d", op, net.OutDim(), m.OutVec)
		}
		m.Nets[op] = net
	}
	return m, nil
}
