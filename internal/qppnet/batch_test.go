package qppnet

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/planner"
)

// TestPredictFeaturizedBatchBitIdentical asserts the feature-tier
// inference path (skeletons built from cached post-order vectors, the
// query cache's hit path) equals the batched path bit for bit, across
// chunk boundaries and multi-level trees.
func TestPredictFeaturizedBatchBitIdentical(t *testing.T) {
	f := testFeaturizer()
	m := New(f, 1)
	plans, ms := synthPlans(700, 2) // several inference chunks
	m.Train(plans[:80], ms[:80], 40)
	fps := make([]*encoding.FeaturizedPlan, len(plans))
	for i, p := range plans {
		fps[i] = f.Featurize(p)
	}
	got := m.PredictFeaturizedBatch(fps)
	want := m.PredictBatch(plans)
	for i := range plans {
		if got[i] != want[i] {
			t.Fatalf("plan %d: PredictFeaturizedBatch %v != PredictBatch %v", i, got[i], want[i])
		}
	}
	if out := m.PredictFeaturizedBatch(nil); out != nil {
		t.Fatalf("empty batch should return nil")
	}
}

// TestPredictBatchBitIdentical asserts the level-batched inference path
// equals the per-sample tree recursion bit for bit, including after
// training (plans here mix single-node trees and two-scan hash joins, so
// several levels and shared operator subnetworks are exercised).
func TestPredictBatchBitIdentical(t *testing.T) {
	m := New(testFeaturizer(), 1)
	plans, ms := synthPlans(80, 2)
	m.Train(plans, ms, 60)
	batch := m.PredictBatch(plans)
	if len(batch) != len(plans) {
		t.Fatalf("batch size = %d, want %d", len(batch), len(plans))
	}
	for i, p := range plans {
		if s := m.PredictMs(p); batch[i] != s {
			t.Fatalf("plan %d: PredictBatch %v != PredictMs %v", i, batch[i], s)
		}
	}
	if out := m.PredictBatch(nil); out != nil {
		t.Fatalf("empty batch should return nil")
	}
}

// TestPredictBatchChunking drives a workload larger than one inference
// chunk and requires bit-identity across the chunk boundaries.
func TestPredictBatchChunking(t *testing.T) {
	m := New(testFeaturizer(), 9)
	plans, _ := synthPlans(700, 11) // ~1400 nodes → several chunks
	batch := m.PredictBatch(plans)
	for i, p := range plans {
		if s := m.PredictMs(p); batch[i] != s {
			t.Fatalf("plan %d: chunked PredictBatch %v != PredictMs %v", i, batch[i], s)
		}
	}
}

// TestPredictBatchDeepTree exercises a chain where the same operator type
// appears at several levels of one plan — the case that forces level-wise
// scheduling (a node's input needs its child's output).
func TestPredictBatchDeepTree(t *testing.T) {
	m := New(testFeaturizer(), 3)
	scan := &planner.Node{Op: planner.SeqScan, Table: "t", EstRows: 1000, EstIn1: 1000, EstWidth: 16, Limit: -1}
	inner := &planner.Node{Op: planner.Materialize, Children: []*planner.Node{scan}, EstRows: 1000, EstIn1: 1000, EstWidth: 16, Limit: -1}
	outer := &planner.Node{Op: planner.Materialize, Children: []*planner.Node{inner}, EstRows: 1000, EstIn1: 1000, EstWidth: 16, Limit: -1}
	got := m.PredictBatch([]*planner.Node{outer, scan})
	if got[0] != m.PredictMs(outer) || got[1] != m.PredictMs(scan) {
		t.Fatalf("deep-tree batch diverged: %v vs %v / %v", got, m.PredictMs(outer), m.PredictMs(scan))
	}
}

// weightsEqual compares two models' parameters bitwise.
func weightsEqual(t *testing.T, a, b *Model, label string) {
	t.Helper()
	for _, op := range planner.AllOpTypes() {
		an, bn := a.Nets[op], b.Nets[op]
		for li := range an.Layers {
			for i, w := range an.Layers[li].W {
				if w != bn.Layers[li].W[i] {
					t.Fatalf("%s: op %v layer %d W[%d]: %v != %v", label, op, li, i, w, bn.Layers[li].W[i])
				}
			}
			for i, v := range an.Layers[li].B {
				if v != bn.Layers[li].B[i] {
					t.Fatalf("%s: op %v layer %d B[%d] differs", label, op, li, i)
				}
			}
		}
	}
}

// TestTrainMatchesReference trains two identically seeded models — one on
// the batched minibatch path, one on the per-sample reference path — and
// requires bit-identical weight trajectories, at batch size 1 (the
// per-sample seed trajectory) and at the default batch size.
func TestTrainMatchesReference(t *testing.T) {
	plans, ms := synthPlans(120, 7)
	for _, bs := range []int{1, 0 /* default */} {
		batched := New(testFeaturizer(), 5)
		reference := New(testFeaturizer(), 5)
		batched.BatchSize = bs
		reference.BatchSize = bs
		batched.Train(plans, ms, 40)
		reference.TrainReference(plans, ms, 40)
		weightsEqual(t, batched, reference, "after training")
		batched.Train(plans, ms, 5)
		reference.TrainReference(plans, ms, 5)
		weightsEqual(t, batched, reference, "after resumed training")
	}
}
