package qppnet

import (
	"context"
	"errors"
	"testing"
)

// stepCtx is a context whose Err flips to Canceled after `limit` checks.
// TrainCtx polls Err exactly once per minibatch iteration, so limit
// controls precisely how many iterations run.
type stepCtx struct {
	context.Context
	calls, limit int
}

func (c *stepCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestTrainCtxCancelMidRun locks in the cancellation contract: a cancel
// that lands mid-training stops the loop at an iteration boundary,
// leaving the weights exactly as if training had been asked for that
// many iterations — never a torn, half-applied optimizer step.
func TestTrainCtxCancelMidRun(t *testing.T) {
	plans, ms := synthPlans(40, 4)
	const ranIters = 5

	cancelled := New(testFeaturizer(), 5)
	if _, err := cancelled.TrainCtx(&stepCtx{Context: context.Background(), limit: ranIters}, plans, ms, 30); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ref := New(testFeaturizer(), 5)
	ref.Train(plans, ms, ranIters)
	weightsEqual(t, cancelled, ref, "cancelled-at-5-vs-trained-5")
}
