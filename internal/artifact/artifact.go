// Package artifact is the binary codec underneath persistent model
// artifacts: a little-endian, length-prefixed encoding with a magic
// header, an explicit format version, and a CRC-32 trailer, so a loader
// can tell apart (and report distinctly) a file that is not an artifact,
// an artifact written by an incompatible format revision, a truncated
// download, and bit corruption.
//
// The package deliberately knows nothing about models: each owning
// package (nn, snapshot, dbenv, mscn, qppnet, core) encodes its own state
// through the primitive Encoder/Decoder methods, and core composes the
// sections into one artifact. Encoding is byte-exact: float64s round-trip
// through their IEEE-754 bits, so a loaded model reproduces the saved
// model's predictions bit for bit.
package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// magic identifies a QCFE artifact stream. Eight bytes, never versioned —
// version compatibility is the explicit version field's job.
var magic = [8]byte{'Q', 'C', 'F', 'E', 'A', 'R', 'T', '\n'}

// Sentinel errors, distinguishable with errors.Is.
var (
	// ErrNotArtifact reports a stream that does not begin with the
	// artifact magic — not a QCFE artifact at all.
	ErrNotArtifact = errors.New("artifact: bad magic (not a QCFE artifact)")
	// ErrVersion reports an artifact written by an incompatible format
	// version.
	ErrVersion = errors.New("artifact: unsupported format version")
	// ErrTruncated reports a stream that ends before its declared length.
	ErrTruncated = errors.New("artifact: truncated")
	// ErrCorrupt reports a checksum mismatch: the declared length is
	// present but the bytes do not match the recorded CRC-32.
	ErrCorrupt = errors.New("artifact: checksum mismatch (corrupt)")
	// ErrMalformed reports a payload whose internal structure overruns
	// its own bounds (a decode read past the end or left bytes over).
	ErrMalformed = errors.New("artifact: malformed payload")
)

// maxLen bounds the declared payload length a decoder will allocate for,
// so a corrupt length field cannot OOM the loader. Model artifacts in
// this repo are a few hundred KB; 1 GB is far beyond any legitimate file.
const maxLen = 1 << 30

// Encoder accumulates a payload. The zero value is ready to use; write
// primitives, then WriteTo to frame and emit the artifact.
type Encoder struct {
	buf bytes.Buffer
}

// U32 appends a uint32.
func (e *Encoder) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

// I64 appends an int64.
func (e *Encoder) I64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	e.buf.Write(b[:])
}

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 through its IEEE-754 bits.
func (e *Encoder) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.buf.Write(b[:])
}

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf.WriteString(s)
}

// F64s appends a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Bools appends a length-prefixed []bool.
func (e *Encoder) Bools(v []bool) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// WriteTo frames the accumulated payload — magic, version, payload
// length, payload, CRC-32 over everything before the trailer — and
// writes the artifact to w.
func (e *Encoder) WriteTo(w io.Writer, version uint32) error {
	var head bytes.Buffer
	head.Write(magic[:])
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], version)
	head.Write(b[:4])
	binary.LittleEndian.PutUint64(b[:], uint64(e.buf.Len()))
	head.Write(b[:])

	crc := crc32.NewIEEE()
	crc.Write(head.Bytes())
	crc.Write(e.buf.Bytes())

	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("artifact: write header: %w", err)
	}
	if _, err := w.Write(e.buf.Bytes()); err != nil {
		return fmt.Errorf("artifact: write payload: %w", err)
	}
	binary.LittleEndian.PutUint32(b[:4], crc.Sum32())
	if _, err := w.Write(b[:4]); err != nil {
		return fmt.Errorf("artifact: write checksum: %w", err)
	}
	return nil
}

// Decoder reads a framed artifact payload. Construct with NewDecoder,
// read primitives in write order, then call Close to assert the payload
// was consumed exactly. Read errors are sticky: after the first failure
// every primitive returns its zero value and Err reports the failure.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder reads and validates one artifact from r: magic, version
// (must equal version), declared length (stream must contain exactly
// that many payload bytes), and CRC-32.
func NewDecoder(r io.Reader, version uint32) (*Decoder, error) {
	var head [20]byte // magic(8) + version(4) + length(8)
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: header is %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("artifact: read header: %w", err)
	}
	if !bytes.Equal(head[:8], magic[:]) {
		return nil, ErrNotArtifact
	}
	got := binary.LittleEndian.Uint32(head[8:12])
	if got != version {
		return nil, fmt.Errorf("%w: artifact has version %d, this build reads version %d", ErrVersion, got, version)
	}
	n := binary.LittleEndian.Uint64(head[12:20])
	if n > maxLen {
		return nil, fmt.Errorf("%w: declared payload length %d exceeds limit", ErrMalformed, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: checksum trailer: %v", ErrTruncated, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(head[:])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(tail[:]) {
		return nil, ErrCorrupt
	}
	return &Decoder{data: payload}, nil
}

// fail records the first error and makes it sticky.
func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at offset %d of %d", ErrMalformed, what, d.off, len(d.data))
	}
}

// take returns the next n payload bytes.
func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.data) {
		d.fail(what)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// U32 reads a uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "uint32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I64 reads an int64.
func (d *Decoder) I64() int64 {
	b := d.take(8, "int64")
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 {
	b := d.take(8, "float64")
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	b := d.take(1, "bool")
	return b != nil && b[0] != 0
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n, "string")
	if b == nil {
		return ""
	}
	return string(b)
}

// F64s reads a length-prefixed []float64 (nil when empty).
func (d *Decoder) F64s() []float64 {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+8*n > len(d.data) {
		d.fail("[]float64")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Bools reads a length-prefixed []bool (nil when empty).
func (d *Decoder) Bools() []bool {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	if d.off+n > len(d.data) {
		d.fail("[]bool")
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.Bool()
	}
	return out
}

// Err returns the first decode failure, if any.
func (d *Decoder) Err() error { return d.err }

// Close asserts the payload was consumed exactly: no decode failure and
// no unread bytes (leftovers mean the reader and writer disagree about
// the payload structure).
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d unread payload bytes", ErrMalformed, len(d.data)-d.off)
	}
	return nil
}
