package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	e := &Encoder{}
	e.U32(0xdeadbeef)
	e.I64(-42)
	e.Int(7)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.F64(math.Float64frombits(0x7ff8000000000001)) // a specific NaN payload
	e.Bool(true)
	e.Bool(false)
	e.Str("héllo\x00world")
	e.Str("")
	e.F64s([]float64{1.5, -2.25, 0})
	e.F64s(nil)
	e.Bools([]bool{true, false, true})
	e.Bools(nil)

	var buf bytes.Buffer
	if err := e.WriteTo(&buf, 3); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.Int(); v != 7 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	if v := d.F64(); !math.IsInf(v, -1) {
		t.Fatalf("F64 inf = %v", v)
	}
	if bits := math.Float64bits(d.F64()); bits != 0x7ff8000000000001 {
		t.Fatalf("NaN payload not preserved: %x", bits)
	}
	if !d.Bool() || d.Bool() {
		t.Fatalf("bools scrambled")
	}
	if v := d.Str(); v != "héllo\x00world" {
		t.Fatalf("Str = %q", v)
	}
	if v := d.Str(); v != "" {
		t.Fatalf("empty Str = %q", v)
	}
	if v := d.F64s(); len(v) != 3 || v[0] != 1.5 || v[1] != -2.25 || v[2] != 0 {
		t.Fatalf("F64s = %v", v)
	}
	if v := d.F64s(); v != nil {
		t.Fatalf("nil F64s = %v", v)
	}
	if v := d.Bools(); len(v) != 3 || !v[0] || v[1] || !v[2] {
		t.Fatalf("Bools = %v", v)
	}
	if v := d.Bools(); v != nil {
		t.Fatalf("nil Bools = %v", v)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderOverrunAndLeftover(t *testing.T) {
	e := &Encoder{}
	e.U32(1)
	var buf bytes.Buffer
	if err := e.WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Reading past the payload is sticky and malformed.
	d, err := NewDecoder(bytes.NewReader(raw), 1)
	if err != nil {
		t.Fatal(err)
	}
	d.U32()
	if v := d.I64(); v != 0 {
		t.Fatalf("overrun read = %d", v)
	}
	if !errors.Is(d.Err(), ErrMalformed) || !errors.Is(d.Close(), ErrMalformed) {
		t.Fatalf("overrun err = %v", d.Err())
	}

	// Leaving payload bytes unread fails Close.
	d, err = NewDecoder(bytes.NewReader(raw), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(d.Close(), ErrMalformed) {
		t.Fatalf("leftover bytes not reported")
	}
}

func TestDecoderHugeDeclaredLength(t *testing.T) {
	// A corrupt length field must not make the loader allocate gigabytes.
	var buf bytes.Buffer
	buf.Write(magic[:])
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], 1)
	buf.Write(b[:4])
	binary.LittleEndian.PutUint64(b[:], uint64(maxLen)+1)
	buf.Write(b[:])
	if _, err := NewDecoder(&buf, 1); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestVersionCheckedBeforeChecksum(t *testing.T) {
	e := &Encoder{}
	e.U32(5)
	var buf bytes.Buffer
	if err := e.WriteTo(&buf, 2); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Patching the version also breaks the CRC; the loader must still
	// report the version mismatch, which is the actionable error.
	raw[8] = 9
	if _, err := NewDecoder(bytes.NewReader(raw), 2); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}
