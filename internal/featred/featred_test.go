package featred

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticData builds a dataset where only the first `useful` of `dim`
// features influence the target; the rest are pure noise. This is the
// controlled setting in which any sound reduction method must separate
// signal from noise.
func syntheticData(n, dim, useful int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < dim; i++ {
		d.Names = append(d.Names, "f")
	}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		var y float64
		for k := 0; k < dim; k++ {
			x[k] = rng.Float64() * 2
			if k < useful {
				y += float64(k+1) * x[k]
			}
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, math.Log1p(y))
	}
	return d
}

// oneHotData mixes a discrete one-hot block (first `classes` dims) with a
// numeric dim; the one-hot class strongly shifts the target. Gradient
// methods see zero gradient on constant-per-sample one-hot dims only in
// dead-ReLU regions; diff-prop must rank the one-hots highly regardless.
func oneHotData(n, classes int, noise int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	dim := classes + 1 + noise
	for i := 0; i < dim; i++ {
		d.Names = append(d.Names, "f")
	}
	weights := []float64{1, 5, 25}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		c := rng.Intn(classes)
		x[c] = 1
		x[classes] = rng.Float64()
		for k := 0; k < noise; k++ {
			x[classes+1+k] = rng.Float64()
		}
		y := weights[c%len(weights)]*3 + 2*x[classes]
		d.X = append(d.X, x)
		d.Y = append(d.Y, math.Log1p(y))
	}
	return d
}

func TestTrainProbeFits(t *testing.T) {
	d := syntheticData(500, 6, 2, 1)
	m := TrainProbe(d, 16, 60, 1)
	qe := QErrorOf(m, d, nil)
	if qe > 1.3 {
		t.Fatalf("probe failed to fit: q-error %v", qe)
	}
}

func TestDiffPropSeparatesSignalFromNoise(t *testing.T) {
	d := syntheticData(600, 10, 3, 2)
	m := TrainProbe(d, 16, 80, 2)
	scores := DiffPropScores(m, d.X, 20, 3)
	if len(scores) != 10 {
		t.Fatalf("score dim = %d", len(scores))
	}
	// Every useful feature must outscore every noise feature.
	minUseful, maxNoise := math.Inf(1), 0.0
	for k, s := range scores {
		if k < 3 {
			if s < minUseful {
				minUseful = s
			}
		} else if s > maxNoise {
			maxNoise = s
		}
	}
	if minUseful <= maxNoise {
		t.Fatalf("diff-prop failed to separate: useful min %v vs noise max %v (scores %v)",
			minUseful, maxNoise, scores)
	}
}

func TestDiffPropHandlesOneHot(t *testing.T) {
	d := oneHotData(600, 3, 5, 4)
	m := TrainProbe(d, 16, 80, 4)
	scores := DiffPropScores(m, d.X, 25, 5)
	// The one-hot class dims and the numeric dim must outrank the noise.
	var minSignal float64 = math.Inf(1)
	var maxNoise float64
	for k, s := range scores {
		if k <= 3 {
			if s < minSignal {
				minSignal = s
			}
		} else if s > maxNoise {
			maxNoise = s
		}
	}
	if minSignal <= maxNoise {
		t.Fatalf("one-hot dims not ranked above noise: %v", scores)
	}
}

func TestGradientScoresComputed(t *testing.T) {
	d := syntheticData(300, 6, 2, 5)
	m := TrainProbe(d, 16, 50, 5)
	scores := GradientScores(m, d.X)
	if len(scores) != 6 {
		t.Fatalf("dim = %d", len(scores))
	}
	// Gradients of the two useful features should dominate on average.
	if scores[0]+scores[1] < scores[4]+scores[5] {
		t.Fatalf("gradient scores look wrong: %v", scores)
	}
}

func TestGreedyReduceDropsNoise(t *testing.T) {
	d := syntheticData(300, 8, 2, 6).Subsample(200, 1)
	m := TrainProbe(d, 16, 60, 6)
	mask := GreedyReduce(m, d)
	if !mask[0] || !mask[1] {
		t.Fatalf("greedy dropped a useful feature: %v", mask)
	}
	// Greedy is conservative (the paper measures only ~1.2% reduction);
	// just require it never *helps* to drop the strongest feature.
	if CountKept(mask) == 0 {
		t.Fatalf("greedy removed everything")
	}
}

func TestMaskFromScores(t *testing.T) {
	scores := []float64{10, 0.001, 5, 0}
	mask := MaskFromScores(scores, 0.01)
	want := []bool{true, false, true, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestApplyAndRatio(t *testing.T) {
	mask := []bool{true, false, true}
	got := Apply(mask, []float64{1, 2, 3})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Apply = %v", got)
	}
	if r := ReductionRatio(mask); math.Abs(r-1.0/3) > 1e-12 {
		t.Fatalf("ratio = %v", r)
	}
	all := ApplyAll(mask, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if len(all) != 2 || all[1][1] != 6 {
		t.Fatalf("ApplyAll = %v", all)
	}
	dropped := DroppedNames(mask, []string{"a", "b", "c"})
	if len(dropped) != 1 || dropped[0] != "b" {
		t.Fatalf("DroppedNames = %v", dropped)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]bool{true, false}, 2); err != nil {
		t.Fatalf("valid mask rejected: %v", err)
	}
	if err := Validate([]bool{true}, 2); err == nil {
		t.Fatalf("width mismatch accepted")
	}
	if err := Validate([]bool{false, false}, 2); err == nil {
		t.Fatalf("empty mask accepted")
	}
}

func TestSubsampleDeterministic(t *testing.T) {
	d := syntheticData(100, 4, 2, 7)
	a := d.Subsample(10, 42)
	b := d.Subsample(10, 42)
	for i := range a.X {
		for k := range a.X[i] {
			if a.X[i][k] != b.X[i][k] {
				t.Fatalf("subsample not deterministic")
			}
		}
	}
	if len(a.X) != 10 {
		t.Fatalf("size = %d", len(a.X))
	}
	full := d.Subsample(1000, 42)
	if len(full.X) != 100 {
		t.Fatalf("oversized subsample should return all data")
	}
}

func TestReducedModelStillAccurate(t *testing.T) {
	// End-to-end: reduce, retrain on reduced dims, verify accuracy holds.
	d := syntheticData(600, 12, 3, 8)
	probe := TrainProbe(d, 16, 60, 8)
	mask := MaskFromScores(DiffPropScores(probe, d.X, 20, 8), 0.05)
	if CountKept(mask) >= 12 || CountKept(mask) < 3 {
		t.Fatalf("reduction kept %d of 12", CountKept(mask))
	}
	red := &Dataset{X: ApplyAll(mask, d.X), Y: d.Y}
	for i := 0; i < CountKept(mask); i++ {
		red.Names = append(red.Names, "f")
	}
	m2 := TrainProbe(red, 16, 60, 8)
	qe := QErrorOf(m2, red, nil)
	if qe > 1.3 {
		t.Fatalf("reduced model q-error %v", qe)
	}
}

func TestQErrorOfWithMask(t *testing.T) {
	d := syntheticData(100, 4, 2, 9)
	m := TrainProbe(d, 8, 30, 9)
	full := QErrorOf(m, d, nil)
	allKeep := QErrorOf(m, d, []bool{true, true, true, true})
	if math.Abs(full-allKeep) > 1e-12 {
		t.Fatalf("all-keep mask should equal nil mask: %v vs %v", full, allKeep)
	}
	masked := QErrorOf(m, d, []bool{false, true, true, true})
	if masked <= full {
		t.Fatalf("masking the strongest feature should hurt: %v vs %v", masked, full)
	}
}
