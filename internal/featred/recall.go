package featred

import (
	"math"
)

// This file implements the recall mechanism the paper's §IV discussion and
// conclusion propose for dynamic workloads: "our work could flexibly extend
// to dynamic workloads by designing a recall algorithm according to the
// inherent value of input features … with the workload changes (50% read,
// 50% write), the partial index features are effective for estimating the
// cost of read queries."
//
// The idea: a reduced feature may be worthless for the *current* workload
// but still carry inherent value — it could matter under a different query
// mix. The recall algorithm watches the live operator stream and re-adds a
// pruned dimension when its observed activity departs from the
// distribution the mask was computed on.

// FeatureActivity summarizes one dimension's behaviour over a window of
// operator feature vectors.
type FeatureActivity struct {
	Mean    float64
	Var     float64
	NonZero float64 // fraction of samples where the dimension is non-zero
}

// ActivityOf computes the per-dimension activity over a sample window.
func ActivityOf(X [][]float64) []FeatureActivity {
	if len(X) == 0 {
		return nil
	}
	dim := len(X[0])
	out := make([]FeatureActivity, dim)
	inv := 1 / float64(len(X))
	for k := 0; k < dim; k++ {
		var sum, nz float64
		for _, x := range X {
			sum += x[k]
			if x[k] != 0 {
				nz++
			}
		}
		mean := sum * inv
		var v float64
		for _, x := range X {
			d := x[k] - mean
			v += d * d
		}
		out[k] = FeatureActivity{Mean: mean, Var: v * inv, NonZero: nz * inv}
	}
	return out
}

// Recall monitors a reduction mask against workload drift. It is created
// from the operator dataset the mask was fitted on; Observe windows of new
// operator vectors and returns the dimensions whose activity shifted enough
// to justify recalling them into the feature set.
type Recall struct {
	baseline []FeatureActivity
	mask     []bool

	// NonZeroDelta is the minimum increase in non-zero fraction that
	// recalls a pruned dimension (default 0.05): a feature that was
	// constant when pruned but now varies carries new information.
	NonZeroDelta float64
	// MeanSigma is the z-score of mean shift that recalls a pruned
	// dimension (default 3).
	MeanSigma float64
}

// NewRecall builds a monitor from the fitting-time dataset and mask.
func NewRecall(fitX [][]float64, mask []bool) *Recall {
	return &Recall{
		baseline:     ActivityOf(fitX),
		mask:         append([]bool(nil), mask...),
		NonZeroDelta: 0.05,
		MeanSigma:    3,
	}
}

// Mask returns the current (possibly recalled) keep-mask.
func (r *Recall) Mask() []bool { return append([]bool(nil), r.mask...) }

// Observe inspects a window of fresh operator vectors and recalls pruned
// dimensions whose behaviour drifted. It returns the indices recalled by
// this window (empty when the workload looks stationary).
func (r *Recall) Observe(window [][]float64) []int {
	if len(window) == 0 || len(r.baseline) == 0 {
		return nil
	}
	current := ActivityOf(window)
	var recalled []int
	for k, keep := range r.mask {
		if keep || k >= len(current) {
			continue
		}
		base, cur := r.baseline[k], current[k]
		drifted := false
		// A dimension that was (near-)constant and now varies.
		if cur.NonZero-base.NonZero > r.NonZeroDelta {
			drifted = true
		}
		// A mean shift far outside the fitting-time spread.
		std := math.Sqrt(base.Var)
		if std == 0 {
			std = 1e-9
		}
		if math.Abs(cur.Mean-base.Mean)/std > r.MeanSigma {
			drifted = true
		}
		if drifted {
			r.mask[k] = true
			recalled = append(recalled, k)
		}
	}
	return recalled
}

// Stationary reports whether the last Observe-style comparison would
// recall nothing — a cheap health check callers can use to decide whether
// retraining is warranted.
func (r *Recall) Stationary(window [][]float64) bool {
	saved := append([]bool(nil), r.mask...)
	recalled := r.Observe(window)
	r.mask = saved
	return len(recalled) == 0
}
