package featred

import "testing"

func BenchmarkDiffPropScores(b *testing.B) {
	d := syntheticData(400, 40, 8, 1)
	m := TrainProbe(d, 32, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffPropScores(m, d.X, 50, 1)
	}
}

func BenchmarkGradientScores(b *testing.B) {
	d := syntheticData(400, 40, 8, 1)
	m := TrainProbe(d, 32, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GradientScores(m, d.X)
	}
}

func BenchmarkGreedyReduce(b *testing.B) {
	d := syntheticData(200, 20, 5, 1)
	m := TrainProbe(d, 16, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyReduce(m, d)
	}
}
