package featred

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/nn"
)

// trainProbeScalar is the pre-batching probe training loop, kept here as
// the bit-equality oracle for TrainProbe.
func trainProbeScalar(d *Dataset, hidden, epochs int, seed int64) *nn.MLP {
	rng := rand.New(rand.NewSource(seed))
	m := nn.NewMLP([]int{d.Dim(), hidden, hidden, 1}, rng)
	opt := nn.NewAdam(0.005)
	layers := nn.LayersOf(m)
	n := len(d.X)
	if n == 0 {
		return m
	}
	const batch = 32
	for ep := 0; ep < epochs; ep++ {
		for b := 0; b < n; b += batch {
			sz := 0
			for i := b; i < b+batch && i < n; i++ {
				j := rng.Intn(n)
				y, c := m.Forward(d.X[j])
				diff := y[0] - d.Y[j]
				m.Backward(c, []float64{2 * diff})
				sz++
			}
			opt.Step(layers, sz)
		}
	}
	return m
}

// TestTrainProbeMatchesScalar requires the batched probe training to
// reproduce the scalar trajectory bit for bit (including a dataset size
// that is not a multiple of the minibatch, exercising the tail batch).
func TestTrainProbeMatchesScalar(t *testing.T) {
	d := syntheticData(77, 12, 4, 3)
	batched := TrainProbe(d, 16, 5, 9)
	scalar := trainProbeScalar(d, 16, 5, 9)
	for li := range batched.Layers {
		for i, w := range batched.Layers[li].W {
			if w != scalar.Layers[li].W[i] {
				t.Fatalf("layer %d W[%d]: batched %v != scalar %v", li, i, w, scalar.Layers[li].W[i])
			}
		}
		for i, b := range batched.Layers[li].B {
			if b != scalar.Layers[li].B[i] {
				t.Fatalf("layer %d B[%d] differs", li, i)
			}
		}
	}
}

// TestDiffPropScoresMatchesScalar checks the batched difference
// propagation against a straightforward per-pair scalar recomputation.
func TestDiffPropScoresMatchesScalar(t *testing.T) {
	d := syntheticData(60, 10, 3, 5)
	m := TrainProbe(d, 12, 4, 5)
	const nRef = 11
	got := DiffPropScores(m, d.X, nRef, 2)

	rng := rand.New(rand.NewSource(2))
	refIdx := rng.Perm(len(d.X))[:nRef]
	refs := make([]*nn.Cache, nRef)
	for i, ri := range refIdx {
		_, refs[i] = m.Forward(d.X[ri])
	}
	dim := len(d.X[0])
	want := make([]float64, dim)
	var pairs float64
	for _, x := range d.X {
		_, cx := m.Forward(x)
		for _, cr := range refs {
			mult := diffMultipliers(m, cx, cr)
			for k := 0; k < dim; k++ {
				want[k] += math.Abs(mult[k] * (x[k] - cr.Act[0][k]))
			}
			pairs++
		}
	}
	for k := range want {
		want[k] /= pairs
	}
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("score[%d]: batched %v != scalar %v", k, got[k], want[k])
		}
	}
}

// TestQErrorOfMatchesScalar compares the chunked batched evaluation with a
// per-sample loop, masked and unmasked.
func TestQErrorOfMatchesScalar(t *testing.T) {
	d := syntheticData(50, 8, 2, 7)
	m := TrainProbe(d, 8, 3, 7)
	mask := make([]bool, d.Dim())
	for i := range mask {
		mask[i] = i%3 != 0
	}
	for _, tc := range []struct {
		name string
		mask []bool
	}{{"unmasked", nil}, {"masked", mask}} {
		var sum float64
		buf := make([]float64, d.Dim())
		for i, x := range d.X {
			in := x
			if tc.mask != nil {
				copy(buf, x)
				for k, keep := range tc.mask {
					if !keep {
						buf[k] = 0
					}
				}
				in = buf
			}
			sum += metrics.QError(metrics.UnlogMs(d.Y[i]), metrics.UnlogMs(m.Predict(in)[0]))
		}
		want := sum / float64(len(d.X))
		if got := QErrorOf(m, d, tc.mask); got != want {
			t.Fatalf("%s: QErrorOf %v != scalar %v", tc.name, got, want)
		}
	}
}
