// Package featred implements the paper's §IV feature reduction for
// AI-driven query cost estimators: given operator-level labeled data and a
// learned cost model, decide which input dimensions are useless and prune
// them before training the production model.
//
// Three methods are provided, matching the ablation of Figure 6:
//
//   - Greedy (Algorithm 2): iteratively drop the feature whose removal most
//     improves q-error; polynomial but blind to feature co-relations.
//   - Gradient (GD): expected |∂y/∂x_k| via backprop; cheap but broken by
//     one-hot (discrete) inputs and ReLU gradient vanishing.
//   - Difference propagation (FR, Algorithm 3 / Equation 1): expected
//     absolute difference-quotient multipliers against a sampled reference
//     set R, propagated layer by layer (the DeepLIFT rescale rule the paper
//     cites); robust to both failure modes above.
package featred

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// forwardChunk bounds the number of rows one batched forward materializes
// at a time; difference propagation caches every layer's activations, so
// unbounded batches would hold the whole dataset's activations at once.
const forwardChunk = 1024

// Dataset is operator-level labeled data: one feature vector and one
// metrics.LogMs cost target per operator occurrence.
type Dataset struct {
	X     [][]float64
	Y     []float64 // metrics.LogMs(milliseconds)
	Names []string  // feature names, len == dim
}

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Subsample returns a dataset view with at most n examples (deterministic
// per seed); used to bound the cost of greedy's quadratic evaluation loop.
func (d *Dataset) Subsample(n int, seed int64) *Dataset {
	if len(d.X) <= n {
		return d
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(d.X))[:n]
	out := &Dataset{Names: d.Names}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// TrainProbe fits the small MLP ("the learned cost model M" of Algorithms
// 2–3) that the reduction methods interrogate. Input features are used
// as-is; the target is metrics.LogMs(ms).
func TrainProbe(d *Dataset, hidden, epochs int, seed int64) *nn.MLP {
	rng := rand.New(rand.NewSource(seed))
	m := nn.NewMLP([]int{d.Dim(), hidden, hidden, 1}, rng)
	opt := nn.NewAdam(0.005)
	layers := nn.LayersOf(m)
	n := len(d.X)
	if n == 0 {
		return m
	}
	// Minibatches run through the batched kernels; draws, per-sample
	// arithmetic, and gradient-accumulation order all match the former
	// per-sample loop, so the probe's weight trajectory is unchanged.
	const batch = 32
	x := linalg.NewMatrix(batch, d.Dim())
	dOut := linalg.NewMatrix(batch, 1)
	targets := make([]float64, batch)
	ar := &linalg.Arena{}
	for ep := 0; ep < epochs; ep++ {
		for b := 0; b < n; b += batch {
			ar.Reset()
			sz := batch
			if n-b < sz {
				sz = n - b
			}
			for i := 0; i < sz; i++ {
				j := rng.Intn(n)
				x.SetRow(i, d.X[j])
				targets[i] = d.Y[j]
			}
			xb := x
			if sz < batch {
				xb = &linalg.Matrix{Rows: sz, Cols: x.Cols, Data: x.Data[:sz*x.Cols]}
			}
			y, c := m.ForwardBatch(ar, xb)
			for i := 0; i < sz; i++ {
				dOut.Data[i] = 2 * (y.At(i, 0) - targets[i])
			}
			db := dOut
			if sz < batch {
				db = &linalg.Matrix{Rows: sz, Cols: 1, Data: dOut.Data[:sz]}
			}
			m.BackwardBatchNoInput(ar, c, db)
			opt.Step(layers, sz)
		}
	}
	return m
}

// QErrorOf evaluates the model's mean q-error on the dataset with an
// optional feature mask applied (nil = all features kept). Predictions and
// targets are de-logged first, per the paper's Equation 2.
func QErrorOf(m *nn.MLP, d *Dataset, mask []bool) float64 {
	if len(d.X) == 0 {
		return 0
	}
	// Predictions run batched (greedy reduction calls this once per
	// candidate feature per round — it is the reduction hot path); the
	// q-error sum still accumulates in sample order.
	var sum float64
	dim := d.Dim()
	ar := &linalg.Arena{}
	for base := 0; base < len(d.X); base += forwardChunk {
		ar.Reset()
		end := base + forwardChunk
		if end > len(d.X) {
			end = len(d.X)
		}
		x := ar.Alloc(end-base, dim)
		for r := base; r < end; r++ {
			row := x.RowView(r - base)
			copy(row, d.X[r])
			if mask != nil {
				for k, keep := range mask {
					if !keep {
						row[k] = 0
					}
				}
			}
		}
		pred := m.PredictBatch(ar, x)
		for r := base; r < end; r++ {
			sum += metrics.QError(metrics.UnlogMs(d.Y[r]), metrics.UnlogMs(pred.At(r-base, 0)))
		}
	}
	return sum / float64(len(d.X))
}

// GreedyReduce is the paper's Algorithm 2: starting from all features,
// repeatedly drop the single feature whose masking most lowers mean
// q-error; stop when no single drop helps. Returns the keep-mask.
func GreedyReduce(m *nn.MLP, d *Dataset) []bool {
	dim := d.Dim()
	mask := make([]bool, dim)
	for i := range mask {
		mask[i] = true
	}
	cmin := QErrorOf(m, d, mask)
	for {
		drop := -1
		c := cmin
		for f := 0; f < dim; f++ {
			if !mask[f] {
				continue
			}
			mask[f] = false
			cf := QErrorOf(m, d, mask)
			mask[f] = true
			if cf < c {
				c, drop = cf, f
			}
		}
		if drop < 0 {
			return mask
		}
		mask[drop] = false
		cmin = c
	}
}

// GradientScores is the GD baseline: the expected absolute input gradient
// E|∂y/∂x_k| over the dataset. One-hot dimensions and dead-ReLU regions
// yield zero gradients, which is precisely the failure mode §IV-B
// describes.
func GradientScores(m *nn.MLP, X [][]float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	scores := make([]float64, len(X[0]))
	for _, x := range X {
		g := m.InputGradient(x, 0)
		for k, v := range g {
			scores[k] += math.Abs(v)
		}
	}
	for k := range scores {
		scores[k] /= float64(len(X))
	}
	return scores
}

// DiffPropScores implements Equation 1: for every (sample, reference) pair
// it propagates difference-quotient multipliers from the output back to
// the inputs through the cached layer activations, and averages their
// absolute values per dimension. References are sampled from the data
// itself (Algorithm 3 line 1).
func DiffPropScores(m *nn.MLP, X [][]float64, nRef int, seed int64) []float64 {
	if len(X) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	if nRef > len(X) {
		nRef = len(X)
	}
	// The reference set and the samples both run through the network
	// batched — these are the "many near-identical forward passes" of the
	// reduction step, and each row of a batched forward is bit-identical
	// to the scalar forward, so the scores are unchanged.
	refIdx := rng.Perm(len(X))[:nRef]
	refMat := linalg.NewMatrix(nRef, len(X[0]))
	for i, ri := range refIdx {
		refMat.SetRow(i, X[ri])
	}
	// Reference caches persist across every chunk, so they come from the
	// heap (nil arena); chunk caches die with their chunk.
	_, refCache := m.ForwardBatch(nil, refMat)
	refs := make([]*nn.Cache, nRef)
	for i := range refs {
		refs[i] = refCache.Sample(i)
	}
	dim := len(X[0])
	scores := make([]float64, dim)
	var pairs float64
	ar := &linalg.Arena{}
	for base := 0; base < len(X); base += forwardChunk {
		ar.Reset()
		end := base + forwardChunk
		if end > len(X) {
			end = len(X)
		}
		chunk := ar.Alloc(end-base, dim)
		for r := base; r < end; r++ {
			chunk.SetRow(r-base, X[r])
		}
		_, chunkCache := m.ForwardBatch(ar, chunk)
		for r := base; r < end; r++ {
			x := X[r]
			cx := chunkCache.Sample(r - base)
			for _, cr := range refs {
				mult := diffMultipliers(m, cx, cr)
				ref := cr.Act[0]
				// Contribution form: multiplier × Δx. A dimension that never
				// differs from the references (an unused table/index one-hot,
				// a constant knob) contributes exactly zero and is reduced —
				// Equation 1's Δx_k denominator cancels against it.
				for k := 0; k < dim; k++ {
					scores[k] += math.Abs(mult[k] * (x[k] - ref[k]))
				}
				pairs++
			}
		}
	}
	for k := range scores {
		scores[k] /= pairs
	}
	return scores
}

// diffMultipliers computes the input multipliers Δy/Δx_k for one pair via
// the rescale rule: linear layers propagate exactly (Wᵀ), ReLU layers
// scale by Δa/Δz (falling back to the local derivative when Δz ≈ 0). This
// is the well-defined form of the telescoping product in Equation 1.
func diffMultipliers(m *nn.MLP, cx, cr *nn.Cache) []float64 {
	g := []float64{1} // multiplier at the scalar output
	for li := len(m.Layers) - 1; li >= 0; li-- {
		if li < len(m.Layers)-1 {
			zx, zr := cx.Pre[li], cr.Pre[li]
			ax, ar := cx.Act[li+1], cr.Act[li+1]
			scaled := make([]float64, len(g))
			for i := range g {
				dz := zx[i] - zr[i]
				if math.Abs(dz) > 1e-9 {
					scaled[i] = g[i] * (ax[i] - ar[i]) / dz
				} else if zx[i] > 0 {
					scaled[i] = g[i] // ReLU derivative 1 on the active side
				}
			}
			g = scaled
		}
		l := m.Layers[li]
		dx := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			if g[o] == 0 {
				continue
			}
			row := l.W[o*l.In : (o+1)*l.In]
			for i := range row {
				dx[i] += g[o] * row[i]
			}
		}
		g = dx
	}
	return g
}

// MaskFromScores turns importance scores into a keep-mask: a feature is
// kept when its score exceeds threshold·max(score). The paper's Algorithm 3
// keeps score > 0; the relative threshold is the numerical form of that
// cut under float noise.
func MaskFromScores(scores []float64, threshold float64) []bool {
	var max float64
	for _, s := range scores {
		if s > max {
			max = s
		}
	}
	mask := make([]bool, len(scores))
	for i, s := range scores {
		mask[i] = s > threshold*max
	}
	return mask
}

// Apply projects x down to the kept dimensions.
func Apply(mask []bool, x []float64) []float64 {
	out := make([]float64, 0, len(x))
	for i, keep := range mask {
		if keep {
			out = append(out, x[i])
		}
	}
	return out
}

// ApplyInto projects x down to the kept dimensions into dst, which must
// have CountKept(mask) capacity behind it (dst is resliced from 0). The
// allocation-free sibling of Apply for the featurize-into-matrix paths.
func ApplyInto(mask []bool, x, dst []float64) []float64 {
	dst = dst[:0]
	for i, keep := range mask {
		if keep {
			dst = append(dst, x[i])
		}
	}
	return dst
}

// ApplyAll projects a whole matrix.
func ApplyAll(mask []bool, X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = Apply(mask, x)
	}
	return out
}

// CountKept returns the number of surviving features.
func CountKept(mask []bool) int {
	n := 0
	for _, k := range mask {
		if k {
			n++
		}
	}
	return n
}

// ReductionRatio returns the dropped fraction.
func ReductionRatio(mask []bool) float64 {
	if len(mask) == 0 {
		return 0
	}
	return 1 - float64(CountKept(mask))/float64(len(mask))
}

// DroppedNames lists the names of pruned features (for Figure 7 output).
func DroppedNames(mask []bool, names []string) []string {
	var out []string
	for i, keep := range mask {
		if !keep && i < len(names) {
			out = append(out, names[i])
		}
	}
	return out
}

// Validate checks mask/width consistency before models apply them.
func Validate(mask []bool, dim int) error {
	if len(mask) != dim {
		return fmt.Errorf("featred: mask width %d != feature dim %d", len(mask), dim)
	}
	if CountKept(mask) == 0 {
		return fmt.Errorf("featred: mask removes every feature")
	}
	return nil
}
