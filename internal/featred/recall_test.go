package featred

import (
	"math/rand"
	"testing"
)

// readWorkload simulates operator vectors where dimension 2 (an "index
// one-hot") is always zero — a write-only workload never uses the index.
func readWorkload(n int, indexActive bool, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		x := []float64{rng.Float64(), rng.Float64() * 2, 0, rng.Float64()}
		if indexActive && rng.Float64() < 0.5 {
			x[2] = 1
		}
		out[i] = x
	}
	return out
}

func TestActivityOf(t *testing.T) {
	X := [][]float64{{1, 0}, {3, 0}, {5, 0}}
	act := ActivityOf(X)
	if act[0].Mean != 3 {
		t.Fatalf("mean = %v", act[0].Mean)
	}
	if act[0].NonZero != 1 || act[1].NonZero != 0 {
		t.Fatalf("non-zero fractions wrong: %+v", act)
	}
	if ActivityOf(nil) != nil {
		t.Fatalf("empty input should yield nil")
	}
}

func TestRecallOnWorkloadShift(t *testing.T) {
	// Fit-time: write-only workload, index dim constant → pruned.
	fitX := readWorkload(500, false, 1)
	mask := []bool{true, true, false, true} // dim 2 pruned
	r := NewRecall(fitX, mask)

	// Stationary window: nothing recalled.
	if got := r.Observe(readWorkload(200, false, 2)); len(got) != 0 {
		t.Fatalf("stationary window recalled %v", got)
	}
	// The workload shifts to 50% reads: index dim becomes active.
	recalled := r.Observe(readWorkload(200, true, 3))
	if len(recalled) != 1 || recalled[0] != 2 {
		t.Fatalf("recalled = %v, want [2]", recalled)
	}
	if !r.Mask()[2] {
		t.Fatalf("mask not updated")
	}
	// Idempotent: already-recalled dims are not reported again.
	if got := r.Observe(readWorkload(200, true, 4)); len(got) != 0 {
		t.Fatalf("re-recalled %v", got)
	}
}

func TestRecallMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fitX := make([][]float64, 300)
	for i := range fitX {
		fitX[i] = []float64{rng.NormFloat64(), 10 + rng.NormFloat64()*0.1}
	}
	mask := []bool{true, false}
	r := NewRecall(fitX, mask)
	// Same distribution: no recall.
	same := make([][]float64, 100)
	for i := range same {
		same[i] = []float64{rng.NormFloat64(), 10 + rng.NormFloat64()*0.1}
	}
	if got := r.Observe(same); len(got) != 0 {
		t.Fatalf("false recall: %v", got)
	}
	// Mean of the pruned dim jumps by 50σ.
	shifted := make([][]float64, 100)
	for i := range shifted {
		shifted[i] = []float64{rng.NormFloat64(), 15 + rng.NormFloat64()*0.1}
	}
	if got := r.Observe(shifted); len(got) != 1 {
		t.Fatalf("mean shift not detected: %v", got)
	}
}

func TestStationaryDoesNotMutate(t *testing.T) {
	fitX := readWorkload(300, false, 6)
	mask := []bool{true, true, false, true}
	r := NewRecall(fitX, mask)
	if !r.Stationary(readWorkload(100, false, 7)) {
		t.Fatalf("stationary window misclassified")
	}
	if r.Stationary(readWorkload(100, true, 8)) {
		t.Fatalf("shifted window misclassified")
	}
	// Stationary must not modify the live mask.
	if r.Mask()[2] {
		t.Fatalf("Stationary mutated the mask")
	}
}

func TestRecallEmptyWindow(t *testing.T) {
	r := NewRecall(readWorkload(50, false, 9), []bool{true, true, false, true})
	if got := r.Observe(nil); got != nil {
		t.Fatalf("empty window recalled %v", got)
	}
}
