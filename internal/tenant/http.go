package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler returns the registry's HTTP API — the same data-plane shapes
// a single-tenant replica serves, plus tenant resolution and the
// degradation ladder:
//
//	POST /estimate        {"env":0,"sql":"...","tenant":"a"} → {"ms":1.23[,"degraded":true]}
//	POST /estimate_batch  {"env":0,"sqls":[...],"tenant":"a"} → {"ms":[...][,"degraded":true]}
//	POST /shadow          per-tenant ground-truth submission (delegated)
//	GET  /healthz         all tenants' identities; with X-QCFE-Tenant, that tenant's replica-shaped health
//	GET  /stats           admission + ladder counters with a per-tenant block each
//	POST /swap            admin, tenant from X-QCFE-Tenant (delegated)
//	GET  /generation      admin, tenant from X-QCFE-Tenant (delegated)
//
// The tenant is resolved from the X-QCFE-Tenant header first, then the
// body's "tenant" field; with exactly one hosted tenant both may be
// omitted. Un-degraded replies are byte-identical to a single-tenant
// server's (the "degraded" flag is omitempty), and a shed request gets
// 429 with a Retry-After header.
//
// /shadow, /swap, and /generation delegate to the resolved tenant's
// own serve handler, so the per-tenant admin and observability planes
// are exactly the single-tenant ones.
func (r *Registry) Handler() http.Handler {
	handlers := make(map[string]http.Handler, len(r.tenants))
	for name, t := range r.tenants {
		handlers[name] = t.srv.Handler()
	}
	delegate := func(w http.ResponseWriter, req *http.Request, sniffBody bool) {
		name := req.Header.Get(serve.TenantHeader)
		if name == "" && sniffBody {
			name = tenantFromBody(req)
		}
		t, err := r.Tenant(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		handlers[t.name].ServeHTTP(w, req)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", r.traced("estimate", func(w http.ResponseWriter, req *http.Request) {
		var body serve.EstimateRequest
		if !decodeJSON(w, req, &body) {
			return
		}
		ms, degraded, err := r.Estimate(req.Context(), tenantName(req, body.Tenant), body.Env, body.SQL)
		if err != nil {
			r.writeEstimateError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, serve.EstimateResponse{Ms: ms, Degraded: degraded})
	}))
	mux.HandleFunc("/estimate_batch", r.traced("estimate_batch", func(w http.ResponseWriter, req *http.Request) {
		var body serve.BatchRequest
		if !decodeJSON(w, req, &body) {
			return
		}
		ms, degraded, err := r.EstimateBatch(req.Context(), tenantName(req, body.Tenant), body.Env, body.SQLs)
		if err != nil {
			r.writeEstimateError(w, err)
			return
		}
		if ms == nil {
			ms = []float64{}
		}
		writeJSON(w, http.StatusOK, serve.BatchResponse{Ms: ms, Degraded: degraded})
	}))
	mux.HandleFunc("/shadow", func(w http.ResponseWriter, req *http.Request) {
		delegate(w, req, true)
	})
	mux.HandleFunc("/swap", func(w http.ResponseWriter, req *http.Request) {
		delegate(w, req, false)
	})
	mux.HandleFunc("/generation", func(w http.ResponseWriter, req *http.Request) {
		delegate(w, req, false)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if name := req.Header.Get(serve.TenantHeader); name != "" {
			delegate(w, req, false)
			return
		}
		if !requireGet(w, req) {
			return
		}
		resp := HealthResponse{
			Status:  "ok",
			Tenants: make(map[string]serve.HealthResponse, len(r.tenants)),
			UptimeS: r.Uptime().Seconds(),
		}
		for name, t := range r.tenants {
			est := t.srv.Estimator()
			resp.Tenants[name] = serve.HealthResponse{
				Status:     "ok",
				Model:      est.ModelName(),
				Benchmark:  est.BenchmarkName(),
				Envs:       len(est.Environments()),
				Generation: serve.GenerationString(est.Generation()),
				UptimeS:    t.srv.Uptime().Seconds(),
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		if !requireGet(w, req) {
			return
		}
		writeJSON(w, http.StatusOK, r.Stats())
	})
	mux.Handle("/metrics", obs.MetricsHandler(func(g *obs.Gatherer) {
		r.WriteMetrics(g)
		obs.WriteBuildMetrics(g)
	}))
	mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, req *http.Request) {
		if !requireGet(w, req) {
			return
		}
		max := 50
		if v := req.URL.Query().Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad n: %q", v))
				return
			}
			max = n
		}
		recs := r.tracer.Recent(max)
		if recs == nil {
			recs = []obs.TraceRecord{}
		}
		writeJSON(w, http.StatusOK, recs)
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, req *http.Request) {
		if !requireGet(w, req) {
			return
		}
		writeJSON(w, http.StatusOK, obs.Build())
	})
	mux.Handle("/debug/pprof/", obs.PprofHandler(r.opts.Serve.AdminToken))
	return mux
}

// traced wraps a registry data-plane handler with request tracing:
// inbound X-QCFE-Trace-ID honored or a fresh ID minted, the trace rides
// the context through admission and the tenant's server (admit,
// queue_wait, predict spans), the ID is echoed back, and the finished
// trace lands in the registry's /trace/recent ring.
func (r *Registry) traced(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := req.Header.Get(obs.TraceHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set(obs.TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, req.WithContext(obs.ContextWithTrace(req.Context(), tr)))
		var err error
		if sw.code >= 400 {
			err = fmt.Errorf("http %d", sw.code)
		}
		r.tracer.Finish(tr, op, req.Header.Get(serve.TenantHeader), err)
	}
}

// statusWriter captures the reply status for the finished trace.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// tenantName applies the resolution order: header, then body field.
func tenantName(req *http.Request, bodyTenant string) string {
	if name := req.Header.Get(serve.TenantHeader); name != "" {
		return name
	}
	return bodyTenant
}

// tenantFromBody peeks a delegated POST body for its "tenant" field,
// restoring the body for the downstream handler. Resolution failures
// just return "" — the single-tenant default / error path handles it.
func tenantFromBody(req *http.Request) string {
	raw, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	req.Body = io.NopCloser(bytes.NewReader(raw))
	if err != nil {
		return ""
	}
	var peek struct {
		Tenant string `json:"tenant"`
	}
	if json.Unmarshal(raw, &peek) != nil {
		return ""
	}
	return peek.Tenant
}

// writeEstimateError maps ladder outcomes onto HTTP: shed is 429 with
// Retry-After, cancellation 503, everything else (unknown tenant or
// environment, bad SQL) the client's fault.
func (r *Registry) writeEstimateError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrShed) {
		w.Header().Set("Retry-After", strconv.Itoa(r.opts.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// HealthResponse is the registry's aggregate /healthz reply.
type HealthResponse struct {
	Status  string                          `json:"status"`
	Tenants map[string]serve.HealthResponse `json:"tenants"`
	UptimeS float64                         `json:"uptime_s"`
}

// TenantStats is one tenant's /stats block: its fair share, its queue
// and ladder counters, and the same serve/cache/drift blocks a
// single-tenant replica reports.
type TenantStats struct {
	Weight     int                 `json:"weight"`
	ShareNN    int                 `json:"share_nn"`    // guaranteed NN slots
	InflightNN int                 `json:"inflight_nn"` // NN slots held right now
	QueueDepth int                 `json:"queue_depth"` // requests waiting for a slot
	QueueCap   int                 `json:"queue_cap"`   // waiting bound (then: degrade)
	Admitted   int64               `json:"admitted"`    // rung-1 serves
	WarmServed int64               `json:"warm_served"` // rung-2 serves
	Degraded   int64               `json:"degraded"`    // rung-3 serves
	Shed       int64               `json:"shed"`        // 429s
	Generation string              `json:"generation"`  // serving artifact
	Serve      serve.StatsResponse `json:"serve"`
}

// StatsResponse is the registry's /stats reply.
type StatsResponse struct {
	UptimeS          float64                `json:"uptime_s"`
	MaxInflight      int                    `json:"max_inflight"`
	AnalyticInflight int                    `json:"analytic_inflight"`
	QueueDepthCap    int                    `json:"queue_depth_cap"`
	Tenants          map[string]TenantStats `json:"tenants"`
}

// Stats snapshots every tenant's admission and serving counters.
func (r *Registry) Stats() StatsResponse {
	resp := StatsResponse{
		UptimeS:          r.Uptime().Seconds(),
		MaxInflight:      r.opts.MaxInflight,
		AnalyticInflight: r.opts.AnalyticInflight,
		QueueDepthCap:    r.opts.QueueDepth,
		Tenants:          make(map[string]TenantStats, len(r.tenants)),
	}
	for name, t := range r.tenants {
		resp.Tenants[name] = TenantStats{
			Weight:     t.weight,
			ShareNN:    t.bkt.share,
			InflightNN: r.adm.inflight(t.bkt),
			QueueDepth: r.adm.queueDepth(t.bkt),
			QueueCap:   t.bkt.queueCap,
			Admitted:   t.admitted.Load(),
			WarmServed: t.warm.Load(),
			Degraded:   t.degraded.Load(),
			Shed:       t.shed.Load(),
			Generation: serve.GenerationString(t.srv.Estimator().Generation()),
			Serve:      t.srv.StatsSnapshot(),
		}
	}
	return resp
}

// errorResponse mirrors the replica error framing.
type errorResponse struct {
	Error string `json:"error"`
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return false
	}
	return true
}

// writeJSON encodes like the replica handler (json.Encoder, trailing
// newline) so un-degraded registry replies are byte-identical to a
// single-tenant server's.
func writeJSON(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
