package tenant

import (
	"repro/internal/obs"
)

// WriteMetrics renders the registry's whole metric surface: the shared
// admission budgets, then per tenant — sorted, so scrapes are
// deterministic — the ladder counters, admission gauges, the
// admission-wait and per-rung latency histograms, and the tenant's full
// serve.Server block, every sample labeled tenant="...". One registry
// scrape is therefore the union of what each tenant's server would
// expose standalone, plus the fair-share layer that only exists here.
func (r *Registry) WriteMetrics(g *obs.Gatherer) {
	g.Gauge("qcfe_tenant_max_inflight", "Shared NN-path slot budget.", float64(r.opts.MaxInflight))
	g.Gauge("qcfe_tenant_analytic_inflight", "Shared analytic-path slot budget.", float64(r.opts.AnalyticInflight))

	for _, name := range r.names {
		t := r.tenants[name]
		lbl := obs.L("tenant", name)
		g.Counter("qcfe_tenant_admitted_total", "Rung-1 admissions (full NN path).", t.admitted.Load(), lbl)
		g.Counter("qcfe_tenant_warm_total", "Rung-2 serves (prediction-tier hits, bypass admission).", t.warm.Load(), lbl)
		g.Counter("qcfe_tenant_degraded_total", "Rung-3 serves (analytic fallback, flagged degraded).", t.degraded.Load(), lbl)
		g.Counter("qcfe_tenant_shed_total", "Requests shed past every ladder rung (429).", t.shed.Load(), lbl)
		g.Gauge("qcfe_tenant_share_nn", "Guaranteed NN slot floor.", float64(t.bkt.share), lbl)
		g.Gauge("qcfe_tenant_inflight_nn", "NN slots held right now.", float64(r.adm.inflight(t.bkt)), lbl)
		g.Gauge("qcfe_tenant_queue_depth", "Requests waiting for an NN slot.", float64(r.adm.queueDepth(t.bkt)), lbl)

		g.Histogram("qcfe_tenant_admission_wait_seconds", "Time spent acquiring an NN slot (or deciding to degrade).", t.histAdmit.Snapshot(), lbl)
		for _, rung := range []struct {
			name string
			h    *obs.Histogram
		}{
			{"nn", t.histRungNN},
			{"warm", t.histRungWarm},
			{"degraded", t.histRungAna},
		} {
			g.Histogram("qcfe_tenant_rung_seconds", "End-to-end serve latency by the ladder rung that answered.", rung.h.Snapshot(), lbl, obs.L("rung", rung.name))
		}

		t.srv.WriteMetrics(g, lbl)
	}
}
