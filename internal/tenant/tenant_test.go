package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	qcfe "repro"
	"repro/internal/serve"
)

// fixture trains one small estimator, serializes it (tenants load
// independent copies, since each attaches its own cache), and fits the
// library analytic pipeline on the same benchmark — the rung-3
// bitwise-equivalence anchor.
var fixture struct {
	once     sync.Once
	artifact []byte
	analytic *qcfe.CostEstimator // library "analytic" pipeline
	err      error
}

func initFixture() {
	b, err := qcfe.OpenBenchmark("sysbench", 1)
	if err != nil {
		fixture.err = err
		return
	}
	envs := qcfe.RandomEnvironments(2, 1)
	pool, err := b.CollectWorkload(envs, 80, 1)
	if err != nil {
		fixture.err = err
		return
	}
	train, _ := pool.Split(0.8)
	est, err := qcfe.NewPipeline("mscn",
		qcfe.WithTrainIters(40), qcfe.WithReferences(20), qcfe.WithSeed(3),
	).Fit(b, envs, train)
	if err != nil {
		fixture.err = err
		return
	}
	var buf bytes.Buffer
	if fixture.err = est.Save(&buf); fixture.err != nil {
		return
	}
	fixture.artifact = buf.Bytes()
	fixture.analytic, fixture.err = qcfe.NewPipeline("analytic").Fit(b, envs, train)
}

// loadEst returns a fresh estimator object deserialized from the
// fixture artifact — same bytes, same generation, independent cache
// attachment point.
func loadEst(t *testing.T) *qcfe.CostEstimator {
	t.Helper()
	fixture.once.Do(initFixture)
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	est, err := qcfe.LoadEstimator(bytes.NewReader(fixture.artifact))
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func libAnalytic(t *testing.T) *qcfe.CostEstimator {
	t.Helper()
	fixture.once.Do(initFixture)
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.analytic
}

// newRegistry builds a registry over fresh artifact copies and runs
// every tenant's batcher until the test ends.
func newRegistry(t *testing.T, opts Options, names ...string) *Registry {
	t.Helper()
	cfgs := make([]Config, len(names))
	for i, name := range names {
		cfgs[i] = Config{Name: name, Est: loadEst(t)}
	}
	r, err := New(opts, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { r.Run(ctx); close(done) }()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return r
}

func testOptions() Options {
	return Options{
		Serve: serve.Options{MaxBatch: 16, BatchWindow: time.Millisecond},
		Cache: &qcfe.CacheOptions{Shards: 4, Capacity: 512},
	}
}

func testSQL(i int) string {
	switch i % 3 {
	case 0:
		return fmt.Sprintf("SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN %d AND %d", 50+i, 250+i)
	case 1:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE id = %d", 1+i)
	default:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE k < %d", 100+i)
	}
}

// saturateNN occupies t's whole NN floor, the global NN budget, and
// every wait-queue position, so the next cold request must leave
// rung 1. The returned release undoes all of it.
func saturateNN(r *Registry, t *Tenant) (release func()) {
	a := r.adm
	a.mu.Lock()
	heldInflight, heldTotal := t.bkt.share, a.max
	t.bkt.inflight += heldInflight
	a.total += heldTotal
	ws := make([]*waiter, 0, t.bkt.queueCap)
	for len(t.bkt.waiters) < t.bkt.queueCap {
		w := &waiter{ch: make(chan struct{})}
		t.bkt.waiters = append(t.bkt.waiters, w)
		ws = append(ws, w)
	}
	a.mu.Unlock()
	return func() {
		a.mu.Lock()
		t.bkt.inflight -= heldInflight
		a.total -= heldTotal
		for _, w := range ws {
			w.abandoned = true
		}
		a.mu.Unlock()
	}
}

// saturateAnalytic exhausts t's analytic floor and the global analytic
// budget, so rung 3 sheds.
func saturateAnalytic(r *Registry, t *Tenant) (release func()) {
	a := r.adm
	a.mu.Lock()
	heldAn, heldTotal := t.bkt.anShare, a.anMax
	t.bkt.anInflight += heldAn
	a.anTotal += heldTotal
	a.mu.Unlock()
	return func() {
		a.mu.Lock()
		t.bkt.anInflight -= heldAn
		a.anTotal -= heldTotal
		a.mu.Unlock()
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := New(testOptions(), nil); err == nil {
		t.Fatal("empty tenant list must be rejected")
	}
	if _, err := New(testOptions(), []Config{{Name: "", Est: loadEst(t)}}); err == nil {
		t.Fatal("unnamed tenant must be rejected")
	}
	if _, err := New(testOptions(), []Config{{Name: "a", Est: nil}}); err == nil {
		t.Fatal("estimator-less tenant must be rejected")
	}
	if _, err := New(testOptions(), []Config{
		{Name: "a", Est: loadEst(t)}, {Name: "a", Est: loadEst(t)},
	}); err == nil {
		t.Fatal("duplicate tenant names must be rejected")
	}

	r := newRegistry(t, testOptions(), "beta", "alpha")
	if got := r.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Names() = %v, want sorted [alpha beta]", got)
	}
	if _, err := r.Tenant(""); err == nil || !strings.Contains(err.Error(), serve.TenantHeader) {
		t.Fatalf("ambiguous empty tenant: err = %v, want mention of %s", err, serve.TenantHeader)
	}
	if _, err := r.Tenant("nope"); err == nil {
		t.Fatal("unknown tenant must be an error")
	}

	solo := newRegistry(t, testOptions(), "only")
	tn, err := solo.Tenant("")
	if err != nil || tn.Name() != "only" {
		t.Fatalf("sole tenant must resolve from empty name; got (%v, %v)", tn, err)
	}
}

// TestUndegradedBitwiseParity is the core invariant: an un-degraded
// multi-tenant answer is bitwise identical to single-tenant serving and
// to the library on the same artifact bytes.
func TestUndegradedBitwiseParity(t *testing.T) {
	r := newRegistry(t, testOptions(), "alpha", "beta")
	ref := loadEst(t)
	env := ref.Environments()[0]

	sqls := make([]string, 24)
	for i := range sqls {
		sqls[i] = testSQL(i)
	}
	want, err := ref.EstimateSQLBatch(env, sqls)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, name := range []string{"alpha", "beta"} {
		got, degraded, err := r.EstimateBatch(ctx, name, env.ID, sqls)
		if err != nil {
			t.Fatal(err)
		}
		if degraded {
			t.Fatalf("tenant %s: degraded under no load", name)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tenant %s query %d: %v != library %v", name, i, got[i], want[i])
			}
		}
		// Single queries walk the coalescing path; still bitwise.
		for i := 0; i < 6; i++ {
			ms, degraded, err := r.Estimate(ctx, name, env.ID, sqls[i])
			if err != nil {
				t.Fatal(err)
			}
			if degraded || ms != want[i] {
				t.Fatalf("tenant %s single %d: (%v, %v), want (%v, false)", name, i, ms, degraded, want[i])
			}
		}
	}
}

// TestPipelinedTenantParity: per-tenant servers inherit the pipeline
// knobs through Options.Serve, and pipelined multi-tenant answers stay
// bitwise identical to the library with admission sitting unchanged in
// front.
func TestPipelinedTenantParity(t *testing.T) {
	opts := testOptions()
	opts.Serve.PipelineDepth = 2
	opts.Serve.FeaturizeWorkers = 2
	opts.Serve.PredictWorkers = 2
	r := newRegistry(t, opts, "alpha", "beta")
	ref := loadEst(t)
	env := ref.Environments()[0]

	sqls := make([]string, 24)
	want := make([]float64, 24)
	for i := range sqls {
		sqls[i] = testSQL(i)
		var err error
		if want[i], err = ref.EstimateSQL(env, sqls[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, name := range []string{"alpha", "beta"} {
		tn, err := r.Tenant(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := tn.Server().StatsSnapshot().PipelineDepth; got != 2 {
			t.Fatalf("tenant %s pipeline depth = %d, want 2 (Options.Serve not inherited)", name, got)
		}
		// Concurrent singles coalesce through the tenant's pipelined
		// batcher; two passes cover cold and cache-warm serving.
		for pass := 0; pass < 2; pass++ {
			got := make([]float64, len(sqls))
			degr := make([]bool, len(sqls))
			errs := make([]error, len(sqls))
			var wg sync.WaitGroup
			for i := range sqls {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i], degr[i], errs[i] = r.Estimate(ctx, name, env.ID, sqls[i])
				}(i)
			}
			wg.Wait()
			for i := range sqls {
				if errs[i] != nil {
					t.Fatal(errs[i])
				}
				if degr[i] {
					t.Fatalf("tenant %s pass %d query %d: degraded under no load", name, pass, i)
				}
				if got[i] != want[i] {
					t.Fatalf("tenant %s pass %d query %d: %v != library %v", name, pass, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCacheIsolation: serving tenant alpha's traffic must not touch
// tenant beta's cache — separate instances, separately namespaced keys.
func TestCacheIsolation(t *testing.T) {
	r := newRegistry(t, testOptions(), "alpha", "beta")
	alpha, _ := r.Tenant("alpha")
	beta, _ := r.Tenant("beta")
	env := loadEst(t).Environments()[0]

	ctx := context.Background()
	sql := testSQL(1)
	for i := 0; i < 3; i++ {
		if _, _, err := r.Estimate(ctx, "alpha", env.ID, sql); err != nil {
			t.Fatal(err)
		}
	}
	as, ok := alpha.srv.Estimator().CacheStats()
	if !ok {
		t.Fatal("alpha has no cache")
	}
	if as.Tenant != "alpha" {
		t.Fatalf("alpha cache tenant = %q", as.Tenant)
	}
	if as.Prediction.Hits == 0 {
		t.Fatal("alpha's repeats never hit its prediction tier")
	}
	bs, ok := beta.srv.Estimator().CacheStats()
	if !ok {
		t.Fatal("beta has no cache")
	}
	if bs.Prediction.Size != 0 || bs.Prediction.Hits != 0 || bs.Template.Size != 0 {
		t.Fatalf("alpha's traffic leaked into beta's cache: %+v", bs)
	}
	if alpha.warm.Load() == 0 {
		t.Fatal("warm counter never moved on repeats")
	}
}

// TestLadderOverHTTP walks all three rungs and the shed through the
// registry's HTTP surface.
func TestLadderOverHTTP(t *testing.T) {
	r := newRegistry(t, testOptions(), "alpha")
	alpha, _ := r.Tenant("alpha")
	est := loadEst(t)
	env := est.Environments()[0]
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Rung 1: full NN path; the reply has no "degraded" key at all.
	coldSQL := testSQL(100)
	want, err := est.EstimateSQL(env, coldSQL)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post(fmt.Sprintf(`{"env":%d,"sql":%q}`, env.ID, coldSQL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rung 1: status %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte("degraded")) {
		t.Fatalf("un-degraded reply leaks the degraded key: %s", body)
	}
	var er serve.EstimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Ms != want {
		t.Fatalf("rung 1: %v != library %v", er.Ms, want)
	}

	// Rung 2 under total NN saturation: the warm entry still serves,
	// full fidelity, not degraded.
	release := saturateNN(r, alpha)
	resp, body = post(fmt.Sprintf(`{"env":%d,"sql":%q}`, env.ID, coldSQL))
	if resp.StatusCode != http.StatusOK || bytes.Contains(body, []byte("degraded")) {
		t.Fatalf("rung 2: status %d body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &er)
	if er.Ms != want {
		t.Fatalf("rung 2 warm hit: %v != %v", er.Ms, want)
	}

	// Rung 3: a cold query under saturation degrades to the analytic
	// fallback, bitwise equal to qcfe.AnalyticEstimator, and says so.
	cold2 := testSQL(200)
	anWant, err := qcfe.AnalyticEstimator(est.Benchmark(), est.Environments()).EstimateSQL(env, cold2)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = post(fmt.Sprintf(`{"env":%d,"sql":%q}`, env.ID, cold2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rung 3: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Degraded {
		t.Fatalf("rung 3 reply not flagged degraded: %s", body)
	}
	if er.Ms != anWant {
		t.Fatalf("rung 3: %v != analytic %v", er.Ms, anWant)
	}

	// Past rung 3: shed with 429 + Retry-After.
	releaseAn := saturateAnalytic(r, alpha)
	resp, body = post(fmt.Sprintf(`{"env":%d,"sql":%q}`, env.ID, testSQL(300)))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed reply lacks Retry-After")
	}
	releaseAn()
	release()

	// Recovered: back to rung 1.
	resp, body = post(fmt.Sprintf(`{"env":%d,"sql":%q}`, env.ID, testSQL(300)))
	if resp.StatusCode != http.StatusOK || bytes.Contains(body, []byte("degraded")) {
		t.Fatalf("post-recovery: status %d body %s", resp.StatusCode, body)
	}

	// Counter sanity: every rung moved.
	if alpha.admitted.Load() == 0 || alpha.warm.Load() == 0 ||
		alpha.degraded.Load() == 0 || alpha.shed.Load() == 0 {
		t.Fatalf("ladder counters: admitted=%d warm=%d degraded=%d shed=%d",
			alpha.admitted.Load(), alpha.warm.Load(), alpha.degraded.Load(), alpha.shed.Load())
	}
}

// TestMetamorphicRung3 pins the rung-3 equivalence class: degraded
// batch answers equal the library analytic pipeline pointwise, under
// permutation and duplication of the batch.
func TestMetamorphicRung3(t *testing.T) {
	opts := testOptions()
	opts.Cache = nil // no warm tier: saturation degrades every element
	r := newRegistry(t, opts, "alpha")
	alpha, _ := r.Tenant("alpha")
	an := libAnalytic(t)
	env := an.Environments()[0]

	base := make([]string, 12)
	for i := range base {
		base[i] = testSQL(i)
	}
	variants := [][]string{
		base,
		// Reversed permutation.
		func() []string {
			v := make([]string, len(base))
			for i := range base {
				v[i] = base[len(base)-1-i]
			}
			return v
		}(),
		// Duplication: every element twice, interleaved.
		func() []string {
			v := make([]string, 0, 2*len(base))
			for _, s := range base {
				v = append(v, s, s)
			}
			return v
		}(),
	}

	release := saturateNN(r, alpha)
	defer release()
	ctx := context.Background()
	for vi, sqls := range variants {
		want, err := an.EstimateSQLBatch(env, sqls)
		if err != nil {
			t.Fatal(err)
		}
		got, degraded, err := r.EstimateBatch(ctx, "alpha", env.ID, sqls)
		if err != nil {
			t.Fatal(err)
		}
		if !degraded {
			t.Fatalf("variant %d: expected degraded under saturation", vi)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("variant %d query %d (%q): %v != library analytic %v",
					vi, i, sqls[i], got[i], want[i])
			}
		}
	}
}

// TestStatsGoldenSchema freezes the per-tenant /stats JSON shape:
// field names and value kinds, independent of values. A schema change
// must be deliberate (update the golden alongside the docs).
func TestStatsGoldenSchema(t *testing.T) {
	r := newRegistry(t, testOptions(), "alpha", "beta")
	alpha, _ := r.Tenant("alpha")
	est := loadEst(t)
	env := est.Environments()[0]
	ctx := context.Background()

	// Drive every counter so optional-looking fields are exercised:
	// rung 1, rung 2 (repeat), rung 3, and a shed.
	for i := 0; i < 2; i++ {
		if _, _, err := r.Estimate(ctx, "alpha", env.ID, testSQL(1)); err != nil {
			t.Fatal(err)
		}
	}
	release := saturateNN(r, alpha)
	if _, degraded, err := r.Estimate(ctx, "alpha", env.ID, testSQL(50)); err != nil || !degraded {
		t.Fatalf("want degraded rung-3 serve, got (%v, %v)", degraded, err)
	}
	releaseAn := saturateAnalytic(r, alpha)
	if _, _, err := r.Estimate(ctx, "alpha", env.ID, testSQL(60)); err != ErrShed {
		t.Fatalf("want ErrShed, got %v", err)
	}
	releaseAn()
	release()

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(schemaOf(doc), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	const golden = "testdata/stats_schema.golden"
	if os.Getenv("QCFE_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read %s (QCFE_UPDATE_GOLDEN=1 regenerates): %v\n%s", golden, err, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("per-tenant /stats schema drifted from %s.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// schemaOf reduces a decoded JSON document to its shape: maps keep
// their keys, arrays reduce to their first element's schema, leaves
// become their type name.
func schemaOf(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, val := range x {
			out[k] = schemaOf(val)
		}
		return out
	case []any:
		if len(x) == 0 {
			return []any{}
		}
		return []any{schemaOf(x[0])}
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "bool"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}
