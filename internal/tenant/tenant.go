// Package tenant is the multi-tenant serving layer: one process hosts
// many named CostEstimator artifacts, each with its own coalescing
// server, its own tenant-namespaced query cache, and (optionally) its
// own online-adaptation drift monitor, behind a weighted fair-share
// admission controller with a three-rung degradation ladder.
//
// The rungs, in order of what a request gets under increasing load:
//
//  1. Full NN path — admitted to the tenant's coalescing queue and
//     priced by the serving model. Answers are bitwise identical to
//     single-tenant serving of the same artifact.
//  2. Warm-cache-only — prediction-tier hits are served at every load
//     level (they bypass admission entirely; a memoized float64 needs
//     no capacity), still full-fidelity. Misses degrade.
//  3. Analytic fallback — the training-free PGSQL baseline prices the
//     query in microseconds; the reply is flagged "degraded":true.
//     Rung-3 answers are bitwise identical to the library analytic
//     estimator over the same benchmark (qcfe.AnalyticEstimator).
//
// Past rung 3 the request is shed: ErrShed, HTTP 429 + Retry-After.
// The bitwise-equivalence boundary is exactly the "degraded" flag: an
// un-flagged answer is the serving model's, bit for bit; a flagged one
// is the analytic baseline's, bit for bit. Nothing in between exists.
//
// Isolation is layered: each tenant has its own estimator artifact
// (its own generation), its own qcache.QueryCache instance whose keys
// are stamped with the tenant's name (internal/qcache Options.Tenant —
// entries can never be read or evicted across tenants), its own
// serve.Server (queue, batcher, counters), its own admission floor,
// and its own drift monitor. The only shared resources are the slot
// budgets, and those are what admission meters.
package tenant

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	qcfe "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Options configures a Registry.
type Options struct {
	// Serve configures every per-tenant server (MaxBatch, BatchWindow,
	// QueueDepth, AdminToken, Advertise). Defaults as in serve.Options.
	Serve serve.Options
	// MaxInflight is the NN-path slot budget shared by all tenants
	// (divided into weighted floors). 0 means 4×GOMAXPROCS; values
	// below the tenant count are raised to it so every floor is ≥ 1.
	MaxInflight int
	// AnalyticInflight is the rung-3 slot budget. 0 means 8×MaxInflight
	// — the analytic path is orders of magnitude cheaper than the NN
	// path, so its pool is deliberately much deeper.
	AnalyticInflight int
	// QueueDepth bounds each tenant's admission wait queue (requests
	// parked for an NN slot; beyond it the ladder degrades). 0 means 64.
	QueueDepth int
	// Cache sizes each tenant's query cache (the Tenant field is
	// overwritten with the tenant's name). Nil disables caching —
	// rung 2 then never hits and overload goes straight to rung 3.
	Cache *qcfe.CacheOptions
	// RetryAfter is the Retry-After value (in seconds, minimum 1)
	// attached to shed responses.
	RetryAfter int
}

func (o Options) withDefaults(tenants int) Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	o.MaxInflight = max(o.MaxInflight, tenants)
	if o.AnalyticInflight <= 0 {
		o.AnalyticInflight = 8 * o.MaxInflight
	}
	o.AnalyticInflight = max(o.AnalyticInflight, tenants)
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RetryAfter < 1 {
		o.RetryAfter = 1
	}
	return o
}

// Config declares one tenant: a name, a loaded artifact, and a
// fair-share weight (≤0 means 1).
type Config struct {
	Name   string
	Est    *qcfe.CostEstimator
	Weight int
}

// Tenant is one hosted tenant's serving state.
type Tenant struct {
	name     string
	weight   int
	srv      *serve.Server
	analytic *qcfe.CostEstimator // rung-3 fallback, same benchmark + envs
	bkt      *bucket

	admitted atomic.Int64 // rung-1 admissions (full NN path)
	warm     atomic.Int64 // rung-2 serves (prediction-tier hits)
	degraded atomic.Int64 // rung-3 serves (analytic fallback)
	shed     atomic.Int64 // requests past every rung

	// Per-tenant latency histograms: how long requests waited for an NN
	// slot, and end-to-end serve latency split by the ladder rung that
	// answered. /metrics renders them labeled tenant=... (+ rung=...).
	histAdmit    *obs.Histogram // admission wait (slot acquire, rungs 1/3 decision)
	histRungNN   *obs.Histogram // rung-1 end-to-end (full NN path)
	histRungWarm *obs.Histogram // rung-2 end-to-end (prediction-tier hit)
	histRungAna  *obs.Histogram // rung-3 end-to-end (analytic fallback)
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Server returns the tenant's coalescing server — the hook for wiring
// a drift monitor (SetMonitor) and for swapping adapted estimators.
func (t *Tenant) Server() *serve.Server { return t.srv }

// Registry hosts the tenants. Construction is the only mutation; the
// serving surface is concurrency-safe.
type Registry struct {
	opts    Options
	adm     *admission
	tenants map[string]*Tenant
	names   []string // sorted, for deterministic iteration
	start   time.Time
	tracer  *obs.Tracer // registry-edge trace ring + slow-query log
}

// New builds a registry over the given tenants. Each tenant gets its
// own query cache (when opts.Cache is set) stamped with its name, its
// own serve.Server, and an analytic fallback estimator over the same
// benchmark and environment set as its artifact.
func New(opts Options, tenants []Config) (*Registry, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenant: registry needs at least one tenant")
	}
	o := opts.withDefaults(len(tenants))
	r := &Registry{
		opts:    o,
		tenants: make(map[string]*Tenant, len(tenants)),
		start:   time.Now(),
		tracer:  obs.NewTracer(o.Serve.TraceRing, o.Serve.SlowQueryThreshold, os.Stderr),
	}
	weights := make([]int, len(tenants))
	for i, tc := range tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("tenant: tenant %d has no name", i)
		}
		if tc.Est == nil {
			return nil, fmt.Errorf("tenant %q: no estimator", tc.Name)
		}
		if _, dup := r.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("tenant %q: declared twice", tc.Name)
		}
		weights[i] = max(tc.Weight, 1)
		if o.Cache != nil {
			copts := *o.Cache
			copts.Tenant = tc.Name
			tc.Est.AttachCache(qcfe.NewQueryCache(copts))
		}
		t := &Tenant{
			name:         tc.Name,
			weight:       weights[i],
			srv:          serve.New(tc.Est, o.Serve),
			analytic:     qcfe.AnalyticEstimator(tc.Est.Benchmark(), tc.Est.Environments()),
			histAdmit:    obs.NewHistogram(),
			histRungNN:   obs.NewHistogram(),
			histRungWarm: obs.NewHistogram(),
			histRungAna:  obs.NewHistogram(),
		}
		r.tenants[tc.Name] = t
		r.names = append(r.names, tc.Name)
	}
	r.adm = newAdmission(o.MaxInflight, o.AnalyticInflight, o.QueueDepth, weights)
	for i, tc := range tenants {
		r.tenants[tc.Name].bkt = r.adm.buckets[i]
	}
	sort.Strings(r.names)
	return r, nil
}

// Names returns the tenant names, sorted.
func (r *Registry) Names() []string { return r.names }

// Tenant resolves a tenant by name. An empty name resolves to the sole
// tenant when exactly one is hosted (single-tenant deployments keep
// working without headers); otherwise it is an error.
func (r *Registry) Tenant(name string) (*Tenant, error) {
	if name == "" {
		if len(r.names) == 1 {
			return r.tenants[r.names[0]], nil
		}
		return nil, fmt.Errorf("tenant: request names no tenant and registry hosts %d (set %s)", len(r.names), serve.TenantHeader)
	}
	t, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("tenant: unknown tenant %q", name)
	}
	return t, nil
}

// Run starts every tenant's batcher and blocks until ctx is cancelled.
func (r *Registry) Run(ctx context.Context) error {
	for _, name := range r.names {
		go r.tenants[name].srv.Run(ctx)
	}
	<-ctx.Done()
	return ctx.Err()
}

// Uptime reports how long the registry object has existed.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// Estimate prices one query for a tenant, walking the degradation
// ladder: warm prediction-tier hit (always served, full fidelity) →
// admitted NN path → analytic fallback (degraded=true) → ErrShed.
func (r *Registry) Estimate(ctx context.Context, tenantName string, envID int, sql string) (ms float64, degraded bool, err error) {
	t, err := r.Tenant(tenantName)
	if err != nil {
		return 0, false, err
	}
	return r.estimate(ctx, t, envID, sql)
}

func (r *Registry) estimate(ctx context.Context, t *Tenant, envID int, sql string) (float64, bool, error) {
	t0 := time.Now()
	tr := obs.TraceFrom(ctx)
	// Rungs 1–2 share this probe: a memoized prediction is served at
	// every load level without consuming any admission capacity.
	if ms, ok, err := t.srv.EstimateCached(envID, sql); err != nil {
		return 0, false, err
	} else if ok {
		t.warm.Add(1)
		t.histRungWarm.RecordSince(t0)
		tr.AddSpan("probe", "warm", t0)
		return ms, false, nil
	}
	aStart := time.Now()
	ok, err := r.adm.acquire(ctx, t.bkt)
	t.histAdmit.RecordSince(aStart)
	if err != nil {
		return 0, false, err
	}
	if ok {
		tr.AddSpan("admit", "nn", aStart)
		defer r.adm.release(t.bkt)
		t.admitted.Add(1)
		ms, err := t.srv.Estimate(ctx, envID, sql)
		if err == nil {
			t.histRungNN.RecordSince(t0)
		}
		return ms, false, err
	}
	tr.AddSpan("admit", "degrade", aStart)
	ms, degraded, err := r.analytic(t, envID, sql)
	if err == nil {
		t.histRungAna.RecordSince(t0)
	}
	return ms, degraded, err
}

// EstimateBatch prices a client-assembled batch for a tenant. An
// admitted batch runs the normal batched path (one NN slot — a batch
// is one batched inference pass); past admission, warm elements keep
// their full-fidelity predictions and the rest are priced analytically
// with the whole reply flagged degraded.
func (r *Registry) EstimateBatch(ctx context.Context, tenantName string, envID int, sqls []string) (ms []float64, degraded bool, err error) {
	t, err := r.Tenant(tenantName)
	if err != nil {
		return nil, false, err
	}
	tr := obs.TraceFrom(ctx)
	aStart := time.Now()
	ok, err := r.adm.acquire(ctx, t.bkt)
	t.histAdmit.RecordSince(aStart)
	if err != nil {
		return nil, false, err
	}
	if ok {
		tr.AddSpan("admit", "nn", aStart)
		defer r.adm.release(t.bkt)
		t.admitted.Add(1)
		ms, err := t.srv.EstimateBatch(ctx, envID, sqls)
		if err == nil {
			t.histRungNN.RecordSince(aStart)
		}
		return ms, false, err
	}
	tr.AddSpan("admit", "degrade", aStart)
	// Overload: serve warm elements from the prediction tier, price the
	// rest analytically. One analytic slot covers the batch.
	env, err := t.srv.EnvByID(envID)
	if err != nil {
		return nil, false, err
	}
	est := t.srv.Estimator()
	res := make([]float64, len(sqls))
	miss := make([]int, 0, len(sqls))
	for i, sql := range sqls {
		if v, ok := est.CachedEstimate(env, sql); ok {
			res[i] = v
		} else {
			miss = append(miss, i)
		}
	}
	t.warm.Add(int64(len(sqls) - len(miss)))
	if len(miss) == 0 {
		return res, false, nil
	}
	if !r.adm.acquireAnalytic(t.bkt) {
		t.shed.Add(1)
		return nil, false, ErrShed
	}
	defer r.adm.releaseAnalytic(t.bkt)
	sub := make([]string, len(miss))
	for k, i := range miss {
		sub[k] = sqls[i]
	}
	av, err := t.analytic.EstimateSQLBatchCtx(ctx, env, sub)
	if err != nil {
		return nil, false, err
	}
	for k, i := range miss {
		res[i] = av[k]
	}
	t.degraded.Add(int64(len(miss)))
	return res, true, nil
}

// analytic is the rung-3 single-query path: price with the analytic
// fallback under its own slot pool, or shed.
func (r *Registry) analytic(t *Tenant, envID int, sql string) (float64, bool, error) {
	env, err := t.srv.EnvByID(envID)
	if err != nil {
		return 0, false, err
	}
	if !r.adm.acquireAnalytic(t.bkt) {
		t.shed.Add(1)
		return 0, false, ErrShed
	}
	defer r.adm.releaseAnalytic(t.bkt)
	ms, err := t.analytic.EstimateSQL(env, sql)
	if err != nil {
		return 0, false, err
	}
	t.degraded.Add(1)
	return ms, true, nil
}
