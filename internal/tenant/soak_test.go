package tenant

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	qcfe "repro"
	"repro/internal/serve"
)

// TestTenantSoakHostile is the isolation soak: one tenant floods the
// registry with cold traffic from many goroutines while a well-behaved
// tenant issues requests within its fair share. For the whole run the
// well-behaved tenant must see rung-1/rung-2 service only — zero
// degraded answers, zero sheds, every answer bitwise identical to the
// library on the same artifact — and its latency distribution is
// reported. QCFE_SOAK_SECONDS extends the default 2-second run (CI
// race job sets 60).
func TestTenantSoakHostile(t *testing.T) {
	duration := 2 * time.Second
	if s := os.Getenv("QCFE_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("QCFE_SOAK_SECONDS=%q: %v", s, err)
		}
		duration = time.Duration(secs) * time.Second
	}

	opts := Options{
		Serve:       serve.Options{MaxBatch: 16, BatchWindow: time.Millisecond},
		Cache:       &qcfe.CacheOptions{Shards: 4, Capacity: 256},
		MaxInflight: 4, // shares: 2 good + 2 evil
		QueueDepth:  8,
	}
	r := newRegistry(t, opts, "good", "evil")
	good, _ := r.Tenant("good")

	ref := loadEst(t)
	env := ref.Environments()[0]
	const goodSet = 32
	want := make([]float64, goodSet)
	goodSQL := func(i int) string {
		return fmt.Sprintf("SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN %d AND %d", 10+i, 400+i)
	}
	for i := range want {
		v, err := ref.EstimateSQL(env, goodSQL(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	ctx, cancel := context.WithCancel(context.Background())
	deadline := time.AfterFunc(duration, cancel)
	defer deadline.Stop()
	defer cancel()

	// The hostile tenant: 8 goroutines of never-repeating batches plus
	// 4 of never-repeating singles, as fast as they can go. Errors are
	// its own problem (that's the point).
	var evilSent atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				sqls := make([]string, 4)
				for k := range sqls {
					sqls[k] = fmt.Sprintf("SELECT * FROM sbtest1 WHERE id = %d", g*1_000_000+i*4+k)
				}
				r.EstimateBatch(ctx, "evil", env.ID, sqls)
				evilSent.Add(int64(len(sqls)))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				r.Estimate(ctx, "evil", env.ID,
					fmt.Sprintf("SELECT * FROM sbtest1 WHERE k < %d", g*1_000_000+i))
				evilSent.Add(1)
			}
		}(g)
	}

	// The well-behaved tenant: concurrency 2 == its guaranteed floor.
	type obs struct {
		lat []time.Duration
		err error
	}
	results := make([]obs, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o := &results[g]
			for i := g; ctx.Err() == nil; i += 2 {
				q := i % goodSet
				start := time.Now()
				ms, degraded, err := r.Estimate(ctx, "good", env.ID, goodSQL(q))
				if err != nil {
					if ctx.Err() != nil {
						return // shutdown race, not a verdict
					}
					o.err = fmt.Errorf("good request %d: %w", i, err)
					cancel()
					return
				}
				o.lat = append(o.lat, time.Since(start))
				if degraded {
					o.err = fmt.Errorf("good request %d was degraded", i)
					cancel()
					return
				}
				if ms != want[q] {
					o.err = fmt.Errorf("good request %d: %v != library %v", i, ms, want[q])
					cancel()
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var lats []time.Duration
	for _, o := range results {
		if o.err != nil {
			t.Fatal(o.err)
		}
		lats = append(lats, o.lat...)
	}
	if len(lats) == 0 {
		t.Fatal("well-behaved tenant completed no requests")
	}
	if shed := good.shed.Load(); shed != 0 {
		t.Fatalf("well-behaved tenant shed %d requests inside its fair share", shed)
	}
	if deg := good.degraded.Load(); deg != 0 {
		t.Fatalf("well-behaved tenant degraded %d times inside its fair share", deg)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)*50/100]
	p99 := lats[len(lats)*99/100]
	t.Logf("soak %v: good served %d (p50 %v, p99 %v; warm %d, admitted %d), evil sent %d (degraded %d, shed %d)",
		duration, len(lats), p50, p99, good.warm.Load(), good.admitted.Load(),
		evilSent.Load(), func() int64 { e, _ := r.Tenant("evil"); return e.degraded.Load() }(),
		func() int64 { e, _ := r.Tenant("evil"); return e.shed.Load() }())
	// The p99 bound is deliberately loose (CI machines vary wildly);
	// the hard isolation asserts are the zero shed/degrade counts and
	// the bitwise answers above.
	if p99 > 30*time.Second {
		t.Fatalf("well-behaved p99 %v exceeds even the loose bound", p99)
	}
}
