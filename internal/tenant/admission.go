package tenant

import (
	"context"
	"errors"
	"sync"
)

// Admission control: weighted fair-share token buckets over the NN
// serving capacity, with a bounded per-tenant wait queue in front of
// each tenant's coalescing server.
//
// Capacity here is concurrency, not a request rate — the NN path is
// CPU-bound, so the meaningful budget is "how many estimates may be in
// flight at once". Each tenant's bucket therefore holds *inflight
// slots*: a token is consumed when a request is admitted to the full
// NN path (rung 1) and regenerates when that request completes, which
// ties the refill rate to what the machine actually sustains instead
// of a configured guess.
//
// # Fair-share math
//
// MaxInflight slots are divided into guaranteed floors by weight:
//
//	share_i = max(1, floor(MaxInflight * w_i / Σw))
//
// A tenant below its floor is admitted unconditionally — the floor is
// a hard reservation, which is the whole isolation guarantee: no
// amount of traffic from other tenants can consume it, because their
// admissions never gate a below-floor tenant's. (A floor admit skips
// the global check, so the total may transiently exceed MaxInflight
// by at most the floor sum's rounding slack.) A tenant at or above
// its floor may still *borrow* idle capacity — admission is
// work-conserving — but only while the global count is below
// MaxInflight and none of its own requests are already queued (FIFO
// order within a tenant).
//
// When no slot is available the request waits in its tenant's FIFO
// queue, bounded by QueueDepth: each released slot is granted first to
// a below-floor tenant's waiter (round-robin across tenants, so two
// starved tenants recover in turn), then to any waiter the borrow rule
// admits. A tenant whose queue is full gets no slot and no wait — the
// caller moves down the degradation ladder (warm-cache-only, then the
// analytic fallback, then shed). That bound is what makes a hostile
// tenant self-limiting: its flood saturates its own floor and its own
// queue, and everything beyond degrades or sheds without ever touching
// another tenant's floor.
//
// The rung-3 analytic path has its own, larger slot pool with the same
// weighted floors (but no queue — at microseconds per estimate,
// waiting costs more than pricing): a flooder degrades to analytic
// answers until even that budget is exhausted, then sheds with 429.
//
// One batch request consumes one slot regardless of batch size — a
// client batch is one batched inference pass, which is also one unit
// of the resource the slots meter. Per-query fairness across wildly
// different batch sizes is bounded by the 1 MB request cap, not by
// admission.
//
// All state lives behind one mutex; decisions are O(tenants) counter
// arithmetic (~hundreds of nanoseconds), far below the NN path they
// gate, and the prediction-tier warm path bypasses admission entirely.

// ErrShed is returned when a request exhausted every ladder rung: no
// NN slot, no warm prediction, and no analytic budget. HTTP maps it to
// 429 with a Retry-After header.
var ErrShed = errors.New("tenant: overloaded, request shed")

// waiter is one parked rung-1 request. granted and abandoned are
// guarded by the admission mutex; ch is closed on grant.
type waiter struct {
	ch        chan struct{}
	granted   bool
	abandoned bool
}

// bucket is one tenant's slot state (NN and analytic pools share it).
type bucket struct {
	weight   int
	share    int // guaranteed NN floor
	anShare  int // guaranteed analytic floor
	queueCap int

	inflight   int // NN slots held
	anInflight int // analytic slots held
	waiters    []*waiter
}

// admission is the registry-wide admission controller.
type admission struct {
	mu      sync.Mutex
	max     int // NN slot budget (soft-exceeded only by floors)
	anMax   int // analytic slot budget
	rr      int // round-robin cursor over buckets for grants
	buckets []*bucket
	total   int // NN slots held across tenants
	anTotal int // analytic slots held across tenants
}

// newAdmission carves the two slot budgets into weighted floors.
// Floors are assigned largest-remainder so they sum to at most the
// budget while every tenant keeps at least one slot.
func newAdmission(maxInflight, analyticMax, queueDepth int, weights []int) *admission {
	a := &admission{max: maxInflight, anMax: analyticMax}
	a.buckets = make([]*bucket, len(weights))
	shares := carve(maxInflight, weights)
	anShares := carve(analyticMax, weights)
	for i, w := range weights {
		a.buckets[i] = &bucket{weight: w, share: shares[i], anShare: anShares[i], queueCap: queueDepth}
	}
	return a
}

// carve splits total into per-weight integer floors: proportional
// truncation, minimum one each, remainder to the largest fractional
// parts (ties to the lower index, so the split is deterministic).
func carve(total int, weights []int) []int {
	n := len(weights)
	out := make([]int, n)
	sum := 0
	for _, w := range weights {
		sum += max(w, 1)
	}
	rem := total
	type frac struct {
		i    int
		part int // numerator of the fractional remainder, larger = first
	}
	fracs := make([]frac, 0, n)
	for i, w := range weights {
		w = max(w, 1)
		out[i] = max(total*w/sum, 1)
		rem -= out[i]
		fracs = append(fracs, frac{i: i, part: total * w % sum})
	}
	for k := 0; k < len(fracs) && rem > 0; k++ {
		best := k
		for j := k + 1; j < len(fracs); j++ {
			if fracs[j].part > fracs[best].part {
				best = j
			}
		}
		fracs[k], fracs[best] = fracs[best], fracs[k]
		out[fracs[k].i]++
		rem--
	}
	// The minimum-one bumps can oversubscribe a small budget under a
	// dominant weight; reclaim from the largest shares so the floors sum
	// to the budget again (only n > total leaves them oversubscribed —
	// at one slot each, there is nothing left to take).
	for rem < 0 {
		big := -1
		for i := range out {
			if out[i] > 1 && (big < 0 || out[i] > out[big]) {
				big = i
			}
		}
		if big < 0 {
			break
		}
		out[big]--
		rem++
	}
	return out
}

// acquire admits one rung-1 (full NN path) request for bucket b,
// waiting in b's bounded queue when no slot is free. It returns true
// with a slot held, or false when the queue is full (degrade) or ctx
// expired while waiting (the caller surfaces ctx.Err()).
func (a *admission) acquire(ctx context.Context, b *bucket) (bool, error) {
	a.mu.Lock()
	if a.admitLocked(b) {
		a.mu.Unlock()
		return true, nil
	}
	if len(b.waiters) >= b.queueCap {
		a.mu.Unlock()
		return false, nil
	}
	// Only an at-or-above-floor tenant ever queues (a below-floor one
	// was admitted above), so every waiter is a would-be borrower.
	w := &waiter{ch: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ch:
		return true, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: we own a slot we will
			// not use. Hand it back (which may grant the next waiter).
			a.releaseLocked(b)
			a.mu.Unlock()
			return false, ctx.Err()
		}
		w.abandoned = true
		a.mu.Unlock()
		return false, ctx.Err()
	}
}

// admitLocked is the slot decision: floor first, then work-conserving
// borrowing that never outruns a starved floor. Caller holds a.mu.
func (a *admission) admitLocked(b *bucket) bool {
	if b.inflight < b.share {
		b.inflight++
		a.total++
		return true
	}
	if a.total < a.max && len(b.waiters) == 0 {
		b.inflight++
		a.total++
		return true
	}
	return false
}

// release returns a rung-1 slot and grants it onward if anyone waits.
func (a *admission) release(b *bucket) {
	a.mu.Lock()
	a.releaseLocked(b)
	a.mu.Unlock()
}

func (a *admission) releaseLocked(b *bucket) {
	b.inflight--
	a.total--
	a.grantLocked()
}

// grantLocked hands a freed slot to the most deserving waiter:
// below-floor tenants first (round-robin so recovery is fair), then —
// if the global budget allows — any waiter at all. Abandoned waiters
// are discarded in passing.
func (a *admission) grantLocked() {
	n := len(a.buckets)
	// Pass 1: below-floor tenants, starting after the last grantee.
	for k := 0; k < n; k++ {
		b := a.buckets[(a.rr+1+k)%n]
		if b.inflight >= b.share {
			continue
		}
		if w := popWaiter(b); w != nil {
			a.rr = (a.rr + 1 + k) % n
			b.inflight++
			a.total++
			w.granted = true
			close(w.ch)
			return
		}
	}
	// Pass 2: borrowing, only inside the global budget.
	if a.total >= a.max {
		return
	}
	for k := 0; k < n; k++ {
		b := a.buckets[(a.rr+1+k)%n]
		if w := popWaiter(b); w != nil {
			a.rr = (a.rr + 1 + k) % n
			b.inflight++
			a.total++
			w.granted = true
			close(w.ch)
			return
		}
	}
}

// popWaiter pops b's first live waiter, dropping abandoned ones.
func popWaiter(b *bucket) *waiter {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		b.waiters = b.waiters[1:]
		if !w.abandoned {
			return w
		}
	}
	return nil
}

// acquireAnalytic admits one rung-3 (analytic fallback) estimate:
// floor first, then borrow from idle analytic budget. No queue — the
// analytic path is microseconds, so if even this pool is saturated the
// process is past help and the request sheds.
func (a *admission) acquireAnalytic(b *bucket) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b.anInflight < b.anShare || a.anTotal < a.anMax {
		b.anInflight++
		a.anTotal++
		return true
	}
	return false
}

func (a *admission) releaseAnalytic(b *bucket) {
	a.mu.Lock()
	b.anInflight--
	a.anTotal--
	a.mu.Unlock()
}

// queueDepth reports b's current waiter count (live waiters only).
func (a *admission) queueDepth(b *bucket) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, w := range b.waiters {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// inflight reports b's held NN slots.
func (a *admission) inflight(b *bucket) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.inflight
}
