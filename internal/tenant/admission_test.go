package tenant

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCarve(t *testing.T) {
	cases := []struct {
		total   int
		weights []int
		want    []int
	}{
		{total: 10, weights: []int{1, 1}, want: []int{5, 5}},
		{total: 8, weights: []int{3, 1}, want: []int{6, 2}},
		{total: 4, weights: []int{1, 1, 1, 1}, want: []int{1, 1, 1, 1}},
		// Minimum one each, even when proportionality would round to 0.
		{total: 4, weights: []int{100, 1, 1}, want: []int{2, 1, 1}},
	}
	for _, tc := range cases {
		got := carve(tc.total, tc.weights)
		sum := 0
		for i, g := range got {
			if g < 1 {
				t.Fatalf("carve(%d, %v)[%d] = %d < 1", tc.total, tc.weights, i, g)
			}
			sum += g
		}
		if len(tc.weights) <= tc.total && sum > tc.total {
			t.Fatalf("carve(%d, %v) = %v oversubscribes (%d)", tc.total, tc.weights, got, sum)
		}
		for i, w := range tc.want {
			if got[i] != w {
				t.Fatalf("carve(%d, %v) = %v, want %v", tc.total, tc.weights, got, tc.want)
			}
		}
	}
}

// TestFloorIsUnconditional is the isolation invariant: a tenant below
// its floor is admitted no matter how far another tenant has flooded
// the global budget.
func TestFloorIsUnconditional(t *testing.T) {
	a := newAdmission(4, 32, 8, []int{1, 1}) // shares: 2 + 2
	good, evil := a.buckets[0], a.buckets[1]
	ctx := context.Background()

	// Evil takes its floor and borrows the rest of the budget.
	for i := 0; i < 4; i++ {
		ok, err := a.acquire(ctx, evil)
		if err != nil || !ok {
			t.Fatalf("evil acquire %d: (%v, %v)", i, ok, err)
		}
	}
	if a.total != a.max {
		t.Fatalf("total %d != max %d", a.total, a.max)
	}
	// Good still gets its whole floor immediately.
	for i := 0; i < good.share; i++ {
		ok, err := a.acquire(ctx, good)
		if err != nil || !ok {
			t.Fatalf("good floor acquire %d refused under evil flood: (%v, %v)", i, ok, err)
		}
	}
	// Beyond the floor, good queues like anyone else (no free slot).
	ctx2, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	ok, err := a.acquire(ctx2, good)
	if ok || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("past-floor acquire with no capacity: (%v, %v)", ok, err)
	}
}

// TestBorrowIsWorkConserving: idle capacity is lendable, but never
// ahead of the borrower's own queued requests.
func TestBorrowIsWorkConserving(t *testing.T) {
	a := newAdmission(4, 32, 8, []int{1, 1})
	b := a.buckets[0]
	ctx := context.Background()
	// One tenant can take the whole idle budget.
	for i := 0; i < 4; i++ {
		if ok, _ := a.acquire(ctx, b); !ok {
			t.Fatalf("borrow %d refused with %d/%d slots held", i, a.total, a.max)
		}
	}
	// Queue one waiter, then release a slot: the waiter gets it, so a
	// *new* borrow attempt (FIFO behind it) must queue rather than jump.
	got := make(chan bool, 1)
	go func() {
		ok, _ := a.acquire(ctx, b)
		got <- ok
	}()
	for a.queueDepth(b) == 0 {
		time.Sleep(time.Millisecond)
	}
	a.release(b)
	if ok := <-got; !ok {
		t.Fatal("queued waiter not granted the released slot")
	}
}

// TestQueueBound: a tenant's wait queue is bounded; the overflow
// request is refused instantly (degrade signal), not parked.
func TestQueueBound(t *testing.T) {
	const depth = 3
	a := newAdmission(1, 32, depth, []int{1})
	b := a.buckets[0]
	ctx := context.Background()
	if ok, _ := a.acquire(ctx, b); !ok {
		t.Fatal("first acquire refused")
	}
	var wg sync.WaitGroup
	cctx, cancel := context.WithCancel(ctx)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.acquire(cctx, b)
		}()
	}
	for a.queueDepth(b) < depth {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	ok, err := a.acquire(ctx, b)
	if ok || err != nil {
		t.Fatalf("overflow acquire = (%v, %v), want (false, nil)", ok, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("overflow refusal was not immediate")
	}
	cancel()
	wg.Wait()
	a.release(b)
	if a.total != 0 {
		t.Fatalf("slots leaked: total %d after full release", a.total)
	}
}

// TestCancelWhileQueued: abandoning the queue leaks neither slots nor
// queue positions, including when the grant races the cancellation.
func TestCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 32, 8, []int{1})
	b := a.buckets[0]
	ctx := context.Background()
	if ok, _ := a.acquire(ctx, b); !ok {
		t.Fatal("first acquire refused")
	}
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		ok, err := a.acquire(cctx, b)
		if ok {
			a.release(b)
		}
		done <- err
	}()
	for a.queueDepth(b) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire after cancel: %v", err)
	}
	a.release(b)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total != 0 || b.inflight != 0 {
		t.Fatalf("leak after cancel: total=%d inflight=%d", a.total, b.inflight)
	}
}

// TestAnalyticPool: rung-3 slots follow the same floor+borrow rule but
// refuse instantly when exhausted (no queue).
func TestAnalyticPool(t *testing.T) {
	a := newAdmission(2, 4, 8, []int{1, 1}) // analytic shares: 2 + 2
	x, y := a.buckets[0], a.buckets[1]
	for i := 0; i < 4; i++ {
		if !a.acquireAnalytic(x) {
			t.Fatalf("analytic acquire %d refused below the global budget", i)
		}
	}
	// Global budget spent by x; y's floor admits anyway.
	if !a.acquireAnalytic(y) {
		t.Fatal("analytic floor refused under another tenant's flood")
	}
	a.releaseAnalytic(x)
	a.releaseAnalytic(y)
}
