// Package parallel is the bounded worker pool behind the labeling
// pipeline: workload collection, feature-snapshot labeling, and the
// experiments suite all fan their (environment × query) work out through
// it.
//
// Every helper here is deterministic by construction: tasks are identified
// by index, results land in index-addressed slots, and reductions happen
// in index order after the pool drains. Combined with the engine's
// explicit noise sequencing (engine.Executor.ExecuteSeq), this makes the
// labeling pipeline produce bit-identical output at any worker count —
// the regression guarantee tested in workload's determinism test.
//
// The process-wide default worker count is GOMAXPROCS; cmd/qcfe-bench
// exposes it as -workers. A count of 1 short-circuits to a plain loop, so
// single-core machines pay no goroutine overhead.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the process-wide default when positive.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used when a
// call site passes workers <= 0. Passing n <= 0 restores the GOMAXPROCS
// default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide default worker count.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers resolves a requested worker count: n itself when positive,
// otherwise the process default.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return DefaultWorkers()
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (<= 0 selects the process default). It returns when every call has
// finished. fn must write its result into caller-owned, index-i state —
// that is what keeps the fan-in deterministic.
func ForEach(n, workers int, fn func(i int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach with a worker identity: fn(w, i) runs task i on
// worker w, where w is in [0, Workers(workers)). Callers use w to maintain
// per-goroutine state (e.g. one engine.Executor per worker) without locks.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	ForEachWorkerCtx(context.Background(), n, workers, fn)
}

// ForEachWorkerCtx is ForEachWorker with cooperative cancellation: every
// worker checks ctx before claiming each task and stops claiming once ctx
// is cancelled. Tasks already running are allowed to finish — fn is never
// interrupted mid-call — so when ForEachWorkerCtx returns, no fn is still
// executing. It returns ctx's error when cancellation kept at least the
// task claim loop from completing, nil when every task ran.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(g)
	}
	wg.Wait()
	if int(next.Load()) < n {
		return ctx.Err()
	}
	return nil
}

// ForEachCtx is ForEach with cooperative cancellation (see
// ForEachWorkerCtx for the exact semantics).
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForEachWorkerCtx(ctx, n, workers, func(_, i int) { fn(i) })
}

// Map runs fn for every index and returns the results in index order. If
// any call fails, Map returns the error of the lowest failing index (after
// every call has finished), so the reported failure does not depend on
// scheduling.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, fn)
}

// MapCtx is Map with cooperative cancellation: workers stop claiming
// tasks once ctx is cancelled and MapCtx returns an error. A task error
// (lowest failing index) takes precedence over the cancellation error,
// so error reporting stays deterministic.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ctxErr := ForEachWorkerCtx(ctx, n, workers, func(_, i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// Do runs every task function concurrently on the pool and returns the
// error of the lowest failing index. It is Map for heterogeneous jobs —
// the experiments suite uses it to run independent figure/table runners
// side by side.
func Do(workers int, tasks ...func() error) error {
	return DoCtx(context.Background(), workers, tasks...)
}

// DoCtx is Do with cooperative cancellation: tasks not yet started when
// ctx is cancelled never start, and DoCtx then returns ctx's error
// (unless an earlier-indexed task failed first).
func DoCtx(ctx context.Context, workers int, tasks ...func() error) error {
	_, err := MapCtx(ctx, len(tasks), workers, func(i int) (struct{}, error) {
		return struct{}{}, tasks[i]()
	})
	return err
}
