package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 100, 4, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context", ran.Load())
	}
	// Serial path (workers=1) honors cancellation too.
	if err := ForEachCtx(ctx, 10, 1, func(int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
}

func TestMapCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 10_000, 4, func(i int) (int, error) {
		if ran.Add(1) == 5 {
			cancel() // workers stop claiming from here on
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop the claim loop (ran %d)", n)
	}
}

func TestMapCtxTaskErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := fmt.Errorf("task 3 failed")
	_, err := MapCtx(ctx, 100, 2, func(i int) (int, error) {
		if i == 3 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
}

func TestMapCtxCompletesWithoutCancel(t *testing.T) {
	out, err := MapCtx(context.Background(), 50, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestDoCtx(t *testing.T) {
	var ran atomic.Int64
	err := DoCtx(context.Background(),
		2,
		func() error { ran.Add(1); return nil },
		func() error { ran.Add(1); return nil },
	)
	if err != nil || ran.Load() != 2 {
		t.Fatalf("err=%v ran=%d", err, ran.Load())
	}
}
