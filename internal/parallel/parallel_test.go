package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestForEachWorkerIdentity(t *testing.T) {
	const n, workers = 200, 4
	owner := make([]int32, n)
	ForEachWorker(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		atomic.StoreInt32(&owner[i], int32(w)+1)
	})
	for i, o := range owner {
		if o == 0 {
			t.Fatalf("index %d never ran", i)
		}
	}
}

func TestMapOrdersResults(t *testing.T) {
	out, err := Map(50, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := Map(20, workers, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("fail-%d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail-7" {
			t.Fatalf("workers=%d: err = %v, want fail-7", workers, err)
		}
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var a, b atomic.Bool
	sentinel := errors.New("boom")
	err := Do(4,
		func() error { a.Store(true); return nil },
		func() error { return sentinel },
		func() error { b.Store(true); return nil },
	)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("tasks after a failure did not run")
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit count not honored")
	}
	SetDefaultWorkers(3)
	defer SetDefaultWorkers(0)
	if Workers(0) != 3 || DefaultWorkers() != 3 {
		t.Fatal("default override not honored")
	}
	SetDefaultWorkers(0)
	if DefaultWorkers() < 1 {
		t.Fatal("GOMAXPROCS default must be >= 1")
	}
}
