package router

import (
	"context"
	"encoding/base64"
	"fmt"
	"math"
	"time"
)

// Fleet rollout: push a new artifact generation replica-by-replica,
// gating every step on a canary probe set. Each replica first *stages*
// the artifact and prices the canaries on the staged (non-serving)
// estimator; only if those predictions match the expected outputs
// byte-for-byte does the replica *commit*. The first mismatch aborts
// the rollout: the failing replica's stage is discarded (it never
// served a byte of the new generation) and every replica that already
// committed is rolled back in reverse order — so a failed rollout
// leaves the whole fleet serving the old generation.
//
// The byte-for-byte gate is the serving contract turned into an
// admission test: every layer below guarantees the same artifact
// prices a query to the same float64 bits, so any replica whose staged
// canaries differ from the reference is either running different bytes
// or corrupting them — exactly what must not reach traffic.

// RolloutRequest is the /rollout body (and the Rollout argument).
type RolloutRequest struct {
	// ArtifactB64 is the new artifact, base64-encoded; the router ships
	// it in-band to every replica.
	ArtifactB64 string `json:"artifact_b64,omitempty"`
	// Path is a replica-local artifact path, for fleets with shared
	// storage; ignored when ArtifactB64 is set.
	Path string `json:"path,omitempty"`
	// CanaryEnv/CanarySQLs is the probe set every replica must price on
	// its staged estimator before committing. Empty disables the gate
	// (stage+commit with no comparison) — for operators who have
	// verified the artifact elsewhere.
	CanaryEnv  int      `json:"canary_env,omitempty"`
	CanarySQLs []string `json:"canary_sqls,omitempty"`
	// ExpectedMs anchors the canary comparison. When empty, the first
	// replica's staged predictions become the reference for the rest of
	// the fleet — which verifies fleet *agreement*; supply explicit
	// expectations (e.g. priced locally from the artifact) to also
	// verify the first replica.
	ExpectedMs []float64 `json:"expected_ms,omitempty"`
}

// RolloutStep records what happened on one replica.
type RolloutStep struct {
	Replica    string `json:"replica"`
	Staged     string `json:"staged,omitempty"` // staged generation
	Committed  bool   `json:"committed"`        // new generation went live here
	RolledBack bool   `json:"rolled_back"`      // commit later undone
	Error      string `json:"error,omitempty"`  // stage/canary/commit failure
}

// RolloutResult is the /rollout reply.
type RolloutResult struct {
	OK bool `json:"ok"`
	// Generation the fleet serves after the rollout: the new artifact's
	// on success, the old one's after a rollback.
	Generation string        `json:"generation,omitempty"`
	Steps      []RolloutStep `json:"steps"`
	Error      string        `json:"error,omitempty"`
}

// Rollout pushes req's artifact through the fleet in configured replica
// order. It returns a non-nil error only for request-level problems
// (admin disabled, undecodable artifact); a canary or replica failure
// is reported in the result with OK=false after the rollback completes.
func (rt *Router) Rollout(ctx context.Context, req RolloutRequest) (RolloutResult, error) {
	if rt.opts.AdminToken == "" {
		return RolloutResult{}, fmt.Errorf("router: rollout disabled (no admin token configured)")
	}
	var artifact []byte
	if req.ArtifactB64 != "" {
		b, err := base64.StdEncoding.DecodeString(req.ArtifactB64)
		if err != nil {
			return RolloutResult{}, fmt.Errorf("router: artifact_b64: %w", err)
		}
		artifact = b
	} else if req.Path == "" {
		return RolloutResult{}, fmt.Errorf("router: rollout needs artifact_b64 or path")
	}

	res := RolloutResult{Steps: make([]RolloutStep, len(rt.replicas))}
	expected := req.ExpectedMs
	var committed []int
	fail := func(i int, err error) RolloutResult {
		res.Steps[i].Error = err.Error()
		res.Error = fmt.Sprintf("replica %s: %v", rt.replicas[i].id, err)
		res.Generation = rt.rollbackCommitted(ctx, committed, &res)
		rt.rollbacks.Add(1)
		return res
	}
	for i, rep := range rt.replicas {
		res.Steps[i].Replica = rep.id
		sctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
		stage, err := rep.client.SwapStage(sctx, artifact, req.Path, req.CanaryEnv, req.CanarySQLs)
		cancel()
		if err != nil {
			return fail(i, fmt.Errorf("stage: %w", err)), nil
		}
		res.Steps[i].Staged = stage.Staged
		if len(req.CanarySQLs) > 0 {
			if expected == nil {
				expected = stage.CanaryMs
			} else if err := compareCanary(expected, stage.CanaryMs); err != nil {
				// The gate: this replica's staged estimator disagrees.
				// Discard its stage (best effort — it is not serving the
				// new generation either way) and unwind the fleet.
				actx, acancel := context.WithTimeout(ctx, rt.opts.Timeout)
				rep.client.SwapAbort(actx) //nolint:errcheck
				acancel()
				return fail(i, fmt.Errorf("canary: %w", err)), nil
			}
		}
		cctx, ccancel := context.WithTimeout(ctx, rt.opts.Timeout)
		commit, err := rep.client.SwapCommit(cctx)
		ccancel()
		if err != nil {
			return fail(i, fmt.Errorf("commit: %w", err)), nil
		}
		res.Steps[i].Committed = true
		committed = append(committed, i)
		res.Generation = commit.Generation
		rep.lastGen.Store(commit.Generation)
		if rt.opts.RolloutBakeTime > 0 && i < len(rt.replicas)-1 {
			select {
			case <-ctx.Done():
				return fail(i, fmt.Errorf("bake interrupted: %w", ctx.Err())), nil
			case <-time.After(rt.opts.RolloutBakeTime):
			}
		}
	}
	res.OK = true
	rt.rollouts.Add(1)
	return res, nil
}

// rollbackCommitted unwinds already-committed replicas in reverse
// commit order and returns the generation the fleet is back on (from
// the last successful rollback reply; "" when nothing was committed).
// Best effort: a replica whose rollback RPC fails keeps the new
// generation and the failure is recorded on its step.
func (rt *Router) rollbackCommitted(ctx context.Context, committed []int, res *RolloutResult) string {
	gen := ""
	for k := len(committed) - 1; k >= 0; k-- {
		i := committed[k]
		rep := rt.replicas[i]
		rctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
		resp, err := rep.client.SwapRollback(rctx)
		cancel()
		if err != nil {
			res.Steps[i].Error = fmt.Sprintf("rollback: %v", err)
			continue
		}
		res.Steps[i].RolledBack = true
		gen = resp.Generation
		rep.lastGen.Store(resp.Generation)
	}
	return gen
}

// compareCanary demands bitwise equality between the reference and a
// replica's staged canary predictions.
func compareCanary(want, got []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("probe count mismatch: %d predictions for %d probes", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			return fmt.Errorf("probe %d: staged estimator predicts %v, expected %v (bitwise)", i, got[i], want[i])
		}
	}
	return nil
}
