package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Handler returns the router's HTTP API — the same data-plane shapes a
// single replica serves, so clients (and the CI smoke diff) cannot tell
// a router from a replica by its bytes:
//
//	POST /estimate        {"env":0,"sql":"..."}        → {"ms":1.23}
//	POST /estimate_batch  {"env":0,"sqls":["...",...]} → {"ms":[...]}
//	GET  /healthz                                      → fleet health + uniform generation
//	GET  /stats                                        → merged fleet stats
//	POST /rollout         admin: canary-gated fleet artifact rollout
//
// /rollout requires the X-QCFE-Admin-Token header to match
// Options.AdminToken and is disabled (403) when no token is configured
// — mirroring the replica-side /swap surface it drives.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", rt.traced("estimate", func(w http.ResponseWriter, r *http.Request) {
		var req serve.EstimateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ms, err := rt.EstimateTenant(r.Context(), tenantOf(r, req.Tenant), req.Env, req.SQL)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, serve.EstimateResponse{Ms: ms})
	}))
	mux.HandleFunc("/estimate_batch", rt.traced("estimate_batch", func(w http.ResponseWriter, r *http.Request) {
		var req serve.BatchRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		ms, err := rt.EstimateBatchTenant(r.Context(), tenantOf(r, req.Tenant), req.Env, req.SQLs)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if ms == nil {
			ms = []float64{}
		}
		writeJSON(w, http.StatusOK, serve.BatchResponse{Ms: ms})
	}))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		healthy := 0
		for _, rep := range rt.replicas {
			if rep.healthy.Load() {
				healthy++
			}
		}
		status := "ok"
		code := http.StatusOK
		if healthy == 0 {
			status = "degraded"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, HealthResponse{
			Status:     status,
			Replicas:   len(rt.replicas),
			Healthy:    healthy,
			Generation: rt.uniformGeneration(),
			UptimeS:    rt.Uptime().Seconds(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, rt.Stats(r.Context()))
	})
	mux.HandleFunc("/rollout", func(w http.ResponseWriter, r *http.Request) {
		if rt.opts.AdminToken == "" {
			writeError(w, http.StatusForbidden, fmt.Errorf("rollout disabled (no admin token configured)"))
			return
		}
		if r.Header.Get("X-QCFE-Admin-Token") != rt.opts.AdminToken {
			writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid admin token"))
			return
		}
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		// Artifacts ship in-band; match the replica /swap body cap
		// rather than the 1 MB data-plane cap.
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 256<<20))
		dec.DisallowUnknownFields()
		var req RolloutRequest
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		res, err := rt.Rollout(r.Context(), req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.Handle("/metrics", obs.MetricsHandler(func(g *obs.Gatherer) {
		rt.WriteMetrics(g)
		obs.WriteBuildMetrics(g)
	}))
	mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		max := 50
		if v := r.URL.Query().Get("n"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad n: %q", v))
				return
			}
			max = n
		}
		recs := rt.tracer.Recent(max)
		if recs == nil {
			recs = []obs.TraceRecord{}
		}
		writeJSON(w, http.StatusOK, recs)
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		if !requireGet(w, r) {
			return
		}
		writeJSON(w, http.StatusOK, obs.Build())
	})
	mux.Handle("/debug/pprof/", obs.PprofHandler(rt.opts.AdminToken))
	return mux
}

// traced wraps a routed data-plane handler with request tracing: the
// router is typically the edge, so it usually mints the trace ID (an
// inbound one is honored), attaches the trace to the request context —
// scatter forwards the ID on every sub-batch, retries included — echoes
// it back, and finishes the trace into the router's /trace/recent ring
// and slow-query log.
func (rt *Router) traced(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.TraceHeader)
		if id == "" {
			id = obs.NewTraceID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set(obs.TraceHeader, id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
		var err error
		if sw.code >= 400 {
			err = fmt.Errorf("http %d", sw.code)
		}
		rt.tracer.Finish(tr, op, r.Header.Get(serve.TenantHeader), err)
	}
}

// statusWriter captures the reply status for the finished trace.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// HealthResponse is the router's /healthz reply. Generation is set only
// while every replica's last-known generation agrees — it goes empty
// mid-rollout, which is itself the signal that the fleet is in
// transition.
type HealthResponse struct {
	Status     string  `json:"status"`
	Replicas   int     `json:"replicas"`
	Healthy    int     `json:"healthy"`
	Generation string  `json:"generation,omitempty"`
	UptimeS    float64 `json:"uptime_s"`
}

// tenantOf resolves a routed request's tenant: X-QCFE-Tenant header
// first, then the body's "tenant" field — the same precedence the
// multi-tenant registry applies downstream.
func tenantOf(r *http.Request, bodyTenant string) string {
	if name := r.Header.Get(serve.TenantHeader); name != "" {
		return name
	}
	return bodyTenant
}

// errorResponse mirrors the replica error framing ({"error":"..."}) so
// clients parse router and replica failures identically.
type errorResponse struct {
	Error string `json:"error"`
}

// statusFor maps a routed failure onto the replica status taxonomy: a
// propagated query fault keeps its original status; cancellation and
// replica exhaustion are 503 (retryable); anything else is the
// request's fault.
func statusFor(err error) int {
	var re *serve.ReplicaError
	if errors.As(err, &re) {
		return re.Status
	}
	if errors.Is(err, errExhausted) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
