// Package router is the distributed serving front end: a fleet of
// qcfe-serve replicas behind one HTTP endpoint that consistent-hashes
// query fingerprints across them, scatter/gathers batch requests, and
// rolls new artifact generations through the fleet with a health-gated
// canary and automatic rollback.
//
// The determinism contract carries over from every layer below: a
// routed answer is bit-identical to a single-process EstimateBatch on
// the same artifact, for any replica count, any batch permutation, and
// mid-rollout (where each answer is wholly one generation's — never a
// blend). Three design rules make that hold:
//
//   - Routing is a pure function of the query text: the ring hashes
//     sqlparse.RoutingKey (the normalized fingerprint), so placement
//     depends on nothing dynamic.
//   - Failover is deterministic: a query that cannot be served by its
//     primary retries on the key's ring-walk successor, a fixed order —
//     and since every replica serves the same artifact bytes, the
//     answer is the same no matter which replica produced it.
//   - Gather is index-addressed: sub-batch replies land in the caller's
//     original slots, so merge order never depends on completion order.
package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Options configures a Router.
type Options struct {
	// Vnodes is the number of ring points per replica (default 64).
	Vnodes int
	// Timeout bounds each replica round trip, data plane and health
	// probes alike (default 5s). A hung replica costs one timeout, then
	// its queries move to their ring successors.
	Timeout time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// replica's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker diverts traffic
	// before admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// MaxAttempts bounds how many replicas one query may try (primary
	// plus fallbacks; default: the fleet size).
	MaxAttempts int
	// RetryBackoff is the pause before each retry round (default 10ms,
	// doubling per round). Applies between rounds, not per query.
	RetryBackoff time.Duration
	// HealthInterval is the background /healthz poll period for Run
	// (default 2s).
	HealthInterval time.Duration
	// AdminToken authenticates two surfaces with one shared secret: the
	// router's own /rollout endpoint requires it from callers, and the
	// router presents it to replicas' /swap admin endpoints. Empty
	// disables rollout entirely.
	AdminToken string
	// RolloutBakeTime is a pause after each replica's canary-gated
	// commit before the rollout proceeds to the next replica, letting
	// live traffic bake on the new generation while most of the fleet
	// still serves the old one (default 0: proceed immediately).
	RolloutBakeTime time.Duration
	// Client, when non-nil, overrides the HTTP client used for replica
	// round trips (tests inject httptest clients); Timeout still
	// applies per request via context.
	Client *http.Client
	// SlowQueryThreshold, when positive, logs every routed request
	// slower than this as one structured JSON line on stderr (trace ID,
	// per-replica sub-batch spans, total duration). Zero disables it.
	SlowQueryThreshold time.Duration
	// TraceRing bounds the /trace/recent ring buffer (default 256).
	TraceRing int
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	return o
}

// replica is one fleet member: its client, breaker, and the health
// state the background loop maintains.
type replica struct {
	id      string // the replica's base URL; doubles as its ring identity
	client  *serve.Client
	breaker *breaker

	healthy  atomic.Bool    // last health probe or request outcome
	lastGen  atomic.Value   // string: generation from the last successful /healthz
	requests atomic.Int64   // queries sent (sub-batches count their size)
	failures atomic.Int64   // replica-fault round trips
	histSub  *obs.Histogram // sub-batch round-trip latency to this replica
}

// Router fans requests out over the replica fleet. Construct with New;
// optionally start the health loop with Run; serve through Handler or
// the Estimate/EstimateBatch/Rollout methods directly.
type Router struct {
	opts     Options
	replicas []*replica
	ring     *ring
	hashes   routeHashCache
	start    time.Time

	requests     atomic.Int64 // single-query requests routed
	batchQueries atomic.Int64 // queries arriving in batch requests
	fanouts      atomic.Int64 // sub-batches dispatched
	retries      atomic.Int64 // queries re-routed to a fallback replica
	errors       atomic.Int64 // requests that returned an error
	rollouts     atomic.Int64 // successful fleet rollouts
	rollbacks    atomic.Int64 // rollouts aborted and rolled back

	histRequest *obs.Histogram // whole routed request (scatter → merge)
	tracer      *obs.Tracer    // router-edge trace ring + slow-query log
}

// New builds a router over the replica base URLs. The URL list is the
// fleet identity: ring placement hashes these exact strings, so keep
// them stable across router restarts (use the same addresses, in any
// order — placement is order-independent).
func New(replicaURLs []string, opts Options) (*Router, error) {
	o := opts.withDefaults()
	rg, err := newRing(replicaURLs, o.Vnodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		opts:        o,
		ring:        rg,
		start:       time.Now(),
		histRequest: obs.NewHistogram(),
		tracer:      obs.NewTracer(o.TraceRing, o.SlowQueryThreshold, os.Stderr),
	}
	for _, u := range replicaURLs {
		rep := &replica{
			id:      u,
			client:  &serve.Client{BaseURL: u, HTTP: o.Client, AdminToken: o.AdminToken},
			breaker: newBreaker(o.BreakerThreshold, o.BreakerCooldown),
			histSub: obs.NewHistogram(),
		}
		rep.healthy.Store(true) // optimistic until a probe or request says otherwise
		rep.lastGen.Store("")
		rt.replicas = append(rt.replicas, rep)
	}
	return rt, nil
}

// Replicas returns the fleet's IDs in configured order.
func (rt *Router) Replicas() []string {
	ids := make([]string, len(rt.replicas))
	for i, r := range rt.replicas {
		ids[i] = r.id
	}
	return ids
}

// Run polls every replica's /healthz on Options.HealthInterval until
// ctx is cancelled. A successful probe marks the replica healthy,
// records its advertised generation, and — acting as the half-open
// probe for a tripped breaker — re-closes the breaker so traffic
// returns without waiting for a live request to gamble on it. A failed
// probe marks it unhealthy and feeds the breaker.
func (rt *Router) Run(ctx context.Context) error {
	ticker := time.NewTicker(rt.opts.HealthInterval)
	defer ticker.Stop()
	for {
		rt.probeAll(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// probeAll health-checks the whole fleet once (sequentially: fleet
// sizes here are small and probes are cheap).
func (rt *Router) probeAll(ctx context.Context) {
	for _, rep := range rt.replicas {
		pctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
		h, err := rep.client.Healthz(pctx)
		cancel()
		now := time.Now()
		if err != nil || h.Status != "ok" {
			rep.healthy.Store(false)
			rep.breaker.allow(now) // claim the half-open slot if one is being offered
			rep.breaker.failure(now)
			continue
		}
		rep.healthy.Store(true)
		rep.lastGen.Store(h.Generation)
		rep.breaker.success()
	}
}

// uniformGeneration returns the fleet's generation when every replica's
// last-known generation agrees, or "" when they differ or are unknown —
// the /healthz "mixed generations" signal during a rollout.
func (rt *Router) uniformGeneration() string {
	gen := ""
	for _, rep := range rt.replicas {
		g, _ := rep.lastGen.Load().(string)
		if g == "" {
			return ""
		}
		if gen == "" {
			gen = g
		} else if g != gen {
			return ""
		}
	}
	return gen
}

// Uptime reports how long the router object has existed.
func (rt *Router) Uptime() time.Duration { return time.Since(rt.start) }

// errExhausted marks a query that failed on every replica its failover
// sequence permits — a fleet-wide outage from this query's perspective,
// reported as 503 (retryable) rather than blaming the request.
var errExhausted = errors.New("all permitted replicas failed")

// errAllAttemptsFailed is the routed request's terminal failure.
func errAllAttemptsFailed(attempts int, last error) error {
	return fmt.Errorf("router: %w (%d attempts, last: %v)", errExhausted, attempts, last)
}
