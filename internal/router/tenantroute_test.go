package router

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestRouteHashStats: the memo's hit/miss/reset counters line up with
// what the cache actually did, and Router.Stats surfaces them.
func TestRouteHashStats(t *testing.T) {
	var c routeHashCache
	const distinct = 64
	sqls := make([]string, distinct)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("SELECT col FROM t WHERE x < %d", i)
	}
	for _, sql := range sqls {
		c.hash(sql)
	}
	s := c.stats()
	if s.Misses != distinct || s.Hits != 0 {
		t.Fatalf("cold pass: stats %+v, want %d misses, 0 hits", s, distinct)
	}
	// Recompute-until-published, then the warm path: total probes minus
	// recorded misses must all be snapshot hits.
	const rounds = 200
	for r := 0; r < rounds; r++ {
		for _, sql := range sqls {
			c.hash(sql)
		}
	}
	s = c.stats()
	if s.Hits == 0 {
		t.Fatal("no snapshot hits after warm rounds")
	}
	if s.Hits+s.Misses != distinct*(rounds+1) {
		t.Fatalf("hits %d + misses %d != probes %d", s.Hits, s.Misses, distinct*(rounds+1))
	}
	if s.Resets != 0 {
		t.Fatalf("resets = %d before any shard filled", s.Resets)
	}
	// Overflow the shards: wholesale resets must be counted.
	for i := 0; i < routeHashShards*routeHashShardCap+512; i++ {
		c.hash(fmt.Sprintf("SELECT a FROM flood WHERE id = %d", i))
	}
	if s = c.stats(); s.Resets == 0 {
		t.Fatal("no resets counted after overflowing every shard")
	}
}

// TestRouterStatsExposesRouteHash: the /stats surface carries the memo
// counters.
func TestRouterStatsExposesRouteHash(t *testing.T) {
	f := startFleet(t, 2, nil)
	rt := newTestRouter(t, f, Options{})
	ctx := context.Background()
	sql := testSQL(0)
	for i := 0; i < 3; i++ {
		if _, err := rt.Estimate(ctx, 0, sql); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats(ctx)
	if st.RouteHash.Misses == 0 {
		t.Fatalf("router stats routehash block empty: %+v", st.RouteHash)
	}
	if got := rt.hashes.stats(); got != st.RouteHash {
		t.Fatalf("stats block %+v != cache counters %+v", st.RouteHash, got)
	}
}

// TestTenantKey: the tenant fold keeps the empty tenant's placements
// and separates named tenants deterministically.
func TestTenantKey(t *testing.T) {
	h := uint64(0xdeadbeefcafe)
	if tenantKey(h, "") != h {
		t.Fatal("empty tenant must leave the routing key untouched")
	}
	a, b := tenantKey(h, "alpha"), tenantKey(h, "beta")
	if a == h || b == h || a == b {
		t.Fatalf("tenant fold failed to separate keys: %x %x %x", h, a, b)
	}
	if a != tenantKey(h, "alpha") {
		t.Fatal("tenant fold is not deterministic")
	}
}

// TestScatterForwardsTenant: a routed request carries the caller's
// tenant to the replica as the X-QCFE-Tenant header, and the tenant
// participates in placement (same query, different tenants may land on
// different replicas — but always deterministically).
func TestScatterForwardsTenant(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	f := startFleet(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			seen[r.Header.Get("X-QCFE-Tenant")]++
			mu.Unlock()
			h.ServeHTTP(w, r)
		})
	})
	rt := newTestRouter(t, f, Options{})
	ctx := context.Background()
	want := wantBatch(t, 0, []string{testSQL(1)})
	for _, tenant := range []string{"", "alpha", "beta"} {
		got, err := rt.EstimateBatchTenant(ctx, tenant, 0, []string{testSQL(1)})
		if err != nil {
			t.Fatalf("tenant %q: %v", tenant, err)
		}
		// Replicas all serve the same artifact, so the answer is
		// tenant-independent even though placement is not.
		assertBitsEqual(t, got, want, "tenant "+tenant)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, tenant := range []string{"", "alpha", "beta"} {
		if seen[tenant] == 0 {
			t.Fatalf("no replica saw tenant header %q (seen: %v)", tenant, seen)
		}
	}
}
