package router

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Scatter/gather: a batch request is split into per-replica sub-batches
// by each query's routing key, the sub-batches are priced concurrently,
// and the replies are merged back into the caller's original index
// order. Failures are handled per sub-batch in retry rounds — a query
// whose replica faulted advances to the next position in its own
// deterministic failover sequence, so a retried query always lands on
// the same fallback replica for the same fleet, regardless of timing.

// route is one query's routing state across retry rounds.
type route struct {
	seq []int // the key's deterministic failover order (ring walk)
	pos int   // next position in seq to try
}

// queryFault is a deterministic 4xx to propagate: when several
// sub-batches fail with query faults, the one covering the lowest
// original index wins, so the reported error never depends on replica
// count or completion order.
type queryFault struct {
	minIndex int
	err      error
}

// Estimate routes one query to its fingerprint's replica (with
// deterministic failover) and returns the estimate.
func (rt *Router) Estimate(ctx context.Context, env int, sql string) (float64, error) {
	return rt.EstimateTenant(ctx, "", env, sql)
}

// EstimateTenant is Estimate for a named tenant against a multi-tenant
// fleet: the tenant is folded into the routing key (one tenant's
// templates stay cache-local to one replica instead of colliding with
// every tenant's on the same ring point) and forwarded to the replica
// as the X-QCFE-Tenant header. An empty tenant routes and serves
// exactly like the single-tenant path.
func (rt *Router) EstimateTenant(ctx context.Context, tenant string, env int, sql string) (float64, error) {
	rt.requests.Add(1)
	ms, err := rt.scatter(ctx, tenant, env, []string{sql})
	if err != nil {
		rt.errors.Add(1)
		return 0, err
	}
	return ms[0], nil
}

// EstimateBatch scatters a batch over the fleet and gathers the results
// in input order. The answer is bit-identical to pricing the same batch
// on any single replica (they all serve the same artifact), which is
// the property the cross-topology golden tests pin down.
func (rt *Router) EstimateBatch(ctx context.Context, env int, sqls []string) ([]float64, error) {
	return rt.EstimateBatchTenant(ctx, "", env, sqls)
}

// EstimateBatchTenant is EstimateBatch for a named tenant; see
// EstimateTenant for the routing-key and forwarding semantics.
func (rt *Router) EstimateBatchTenant(ctx context.Context, tenant string, env int, sqls []string) ([]float64, error) {
	rt.batchQueries.Add(int64(len(sqls)))
	ms, err := rt.scatter(ctx, tenant, env, sqls)
	if err != nil {
		rt.errors.Add(1)
	}
	return ms, err
}

// tenantKey folds a tenant name into a query's routing key (FNV-1a
// walk seeded with the fingerprint hash). Distinct tenants thus get
// independent ring placements for the same template — each tenant's
// working set stays cache-local to its own replica — while the empty
// tenant leaves the key, and therefore every existing placement,
// untouched.
func tenantKey(h uint64, tenant string) uint64 {
	if tenant == "" {
		return h
	}
	const prime64 = 1099511628211
	h = (h ^ 0xff) * prime64 // separator: "" and "\x00"-ish names can't collide with no-tenant
	for i := 0; i < len(tenant); i++ {
		h = (h ^ uint64(tenant[i])) * prime64
	}
	return h
}

// scatter is the shared routing core.
func (rt *Router) scatter(ctx context.Context, tenant string, env int, sqls []string) ([]float64, error) {
	if len(sqls) == 0 {
		return []float64{}, nil
	}
	reqStart := time.Now()
	defer rt.histRequest.RecordSince(reqStart)
	// The request's trace (nil when untraced) is forwarded on EVERY
	// sub-batch dispatch below — including failover retries, which reuse
	// the same trace and therefore the same X-QCFE-Trace-ID. The chaos
	// tests pin that survival contract.
	tr := obs.TraceFrom(ctx)
	traceID := ""
	if tr != nil {
		traceID = tr.ID
	}
	maxAttempts := rt.opts.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(rt.replicas) {
		maxAttempts = len(rt.replicas)
	}

	// Resolve each query's failover sequence once. Queries sharing a
	// template share a routing key, so literal variants of one template
	// always land on the same replica — and thus the same template/
	// feature/prediction cache tiers.
	seqByHash := make(map[uint64][]int)
	routes := make([]route, len(sqls))
	for i, sql := range sqls {
		h := tenantKey(rt.hashes.hash(sql), tenant)
		seq, ok := seqByHash[h]
		if !ok {
			seq = rt.ring.sequence(h)
			seqByHash[h] = seq
		}
		routes[i] = route{seq: seq}
	}

	results := make([]float64, len(sqls))
	pending := make([]int, len(sqls))
	for i := range pending {
		pending[i] = i
	}

	var lastErr error
	for round := 0; len(pending) > 0; round++ {
		if round > 0 {
			shift := round - 1
			if shift > 10 {
				shift = 10
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(rt.opts.RetryBackoff << shift):
			}
		}

		// Group pending queries by the replica their next attempt
		// targets: the first breaker-admitted position at or after the
		// query's own, falling back to the position itself when every
		// remaining breaker refuses (a fully-tripped fleet should still
		// try somewhere rather than fail without a single request).
		now := time.Now()
		groups := make(map[int][]int)
		for _, qi := range pending {
			r := &routes[qi]
			if r.pos >= maxAttempts || r.pos >= len(r.seq) {
				if lastErr == nil {
					lastErr = errors.New("no replicas available")
				}
				return nil, errAllAttemptsFailed(r.pos, lastErr)
			}
			pos := r.pos
			for p := r.pos; p < len(r.seq) && p < maxAttempts; p++ {
				if rt.replicas[r.seq[p]].breaker.allow(now) {
					pos = p
					break
				}
			}
			r.pos = pos
			groups[r.seq[pos]] = append(groups[r.seq[pos]], qi)
		}

		// Fan out, one concurrent sub-batch per replica. Dispatch order
		// is sorted for stable counters; results merge by index, so
		// completion order never matters.
		reps := make([]int, 0, len(groups))
		for ri := range groups {
			reps = append(reps, ri)
		}
		sort.Ints(reps)
		type groupResult struct {
			replica int
			indices []int
			ms      []float64
			err     error
		}
		resCh := make(chan groupResult, len(reps))
		for _, ri := range reps {
			indices := groups[ri]
			sub := make([]string, len(indices))
			for k, qi := range indices {
				sub[k] = sqls[qi]
			}
			rep := rt.replicas[ri]
			rt.fanouts.Add(1)
			rep.requests.Add(int64(len(indices)))
			go func(ri int, rep *replica, indices []int, sub []string) {
				cctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
				defer cancel()
				// Per-call client copy: the caller's tenant and trace ID
				// ride to the replica as headers.
				cl := *rep.client
				cl.Tenant = tenant
				cl.TraceID = traceID
				subStart := time.Now()
				ms, err := cl.EstimateBatch(cctx, env, sub)
				rep.histSub.RecordSince(subStart)
				tr.AddSpan("subbatch", rep.id, subStart)
				resCh <- groupResult{replica: ri, indices: indices, ms: ms, err: err}
			}(ri, rep, indices, sub)
		}

		var fault *queryFault
		var newPending []int
		for range reps {
			gr := <-resCh
			rep := rt.replicas[gr.replica]
			if gr.err == nil {
				rep.breaker.success()
				rep.healthy.Store(true)
				for k, qi := range gr.indices {
					results[qi] = gr.ms[k]
				}
				continue
			}
			var re *serve.ReplicaError
			if errors.As(gr.err, &re) && re.QueryFault() {
				// The query's fault, not the replica's: no breaker
				// penalty, no retry (a 400 repeats anywhere). Indices
				// within a group ascend, so indices[0] is its minimum.
				if fault == nil || gr.indices[0] < fault.minIndex {
					fault = &queryFault{minIndex: gr.indices[0], err: gr.err}
				}
				continue
			}
			// Replica fault: trip-count the breaker and push the whole
			// sub-batch to its next failover position.
			rep.breaker.failure(time.Now())
			rep.healthy.Store(false)
			rep.failures.Add(1)
			lastErr = gr.err
			rt.retries.Add(int64(len(gr.indices)))
			for _, qi := range gr.indices {
				routes[qi].pos++
				newPending = append(newPending, qi)
			}
		}
		if fault != nil {
			return nil, fmt.Errorf("query %d: %w", fault.minIndex, fault.err)
		}
		if err := ctx.Err(); err != nil {
			// The caller vanished; the "replica faults" above were ours.
			return nil, err
		}
		sort.Ints(newPending)
		pending = newPending
	}
	// Gather is index-addressed as replies arrive, so "merge" is a
	// completion marker (offset = when the last slot filled), not a
	// phase with its own duration.
	if tr != nil {
		tr.AddSpan("merge", fmt.Sprintf("%d queries", len(sqls)), time.Now())
	}
	return results, nil
}
