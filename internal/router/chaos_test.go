package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sqlparse"
)

// Fault injection: every failure mode a replica can inflict on the
// router — dropped connections, 5xx, hangs, and flapping between them
// mid-batch — with one invariant throughout: a successful routed answer
// is bit-identical to the library's, no matter which replicas were
// lying, dying, or stalling when it was produced. Failover may move
// work; it may never move answers.

// Chaos modes a replica middleware can be switched through at runtime.
const (
	modeOK   = int32(iota) // pass through to the real replica
	modeDrop               // abort the connection mid-request
	mode503                // reply 503 without touching the replica
	modeHang               // stall until the client gives up
)

// chaosFleet wraps each replica in a mode-switchable fault middleware.
type chaosFleet struct {
	*fleet
	modes []*atomic.Int32
}

func startChaosFleet(t *testing.T, n int) *chaosFleet {
	t.Helper()
	cf := &chaosFleet{modes: make([]*atomic.Int32, n)}
	for i := range cf.modes {
		cf.modes[i] = &atomic.Int32{}
	}
	cf.fleet = startFleet(t, n, func(i int, h http.Handler) http.Handler {
		mode := cf.modes[i]
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			switch mode.Load() {
			case modeDrop:
				// Abort the TCP stream: the client sees a broken
				// connection, not an HTTP status.
				panic(http.ErrAbortHandler)
			case mode503:
				http.Error(w, `{"error":"injected outage"}`, http.StatusServiceUnavailable)
			case modeHang:
				// Stall past the router's per-request deadline. The
				// stall is bounded (not <-r.Context().Done()): with an
				// unread POST body the server cannot detect the
				// client's departure, and an unbounded stall would
				// wedge httptest.Server.Close at cleanup.
				select {
				case <-r.Context().Done():
				case <-time.After(2 * time.Second):
				}
				http.Error(w, `{"error":"injected stall"}`, http.StatusServiceUnavailable)
			default:
				h.ServeHTTP(w, r)
			}
		})
	})
	return cf
}

// chaosRouterOptions fails fast so fault tests stay quick.
func chaosRouterOptions() Options {
	return Options{
		Timeout:          400 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		AdminToken:       testToken,
	}
}

// faultModes enumerates the single-replica outage shapes the failover
// tests run identically.
var faultModes = []struct {
	name string
	mode int32
}{
	{"drop", modeDrop},
	{"503", mode503},
	{"hang", modeHang},
}

// TestFailoverPerFaultMode: with one replica dropping / 503ing /
// hanging, batches spanning the whole fleet still return the library's
// exact bits; the faulty replica's breaker trips after the threshold
// and, once the fault clears, a half-open probe brings it back.
func TestFailoverPerFaultMode(t *testing.T) {
	for _, fm := range faultModes {
		fm := fm
		t.Run(fm.name, func(t *testing.T) {
			cf := startChaosFleet(t, 3)
			// A long-ish cooldown keeps the phases deterministic: the
			// breaker stays open through the route-around check instead
			// of sneaking half-open probes between assertions.
			opts := chaosRouterOptions()
			opts.BreakerCooldown = 500 * time.Millisecond
			rt := newTestRouter(t, cf.fleet, opts)
			ctx := context.Background()
			sqls := make([]string, 24)
			for i := range sqls {
				sqls[i] = testSQL(i)
			}
			want := wantBatch(t, 0, sqls)

			// Healthy fleet baseline.
			got, err := rt.EstimateBatch(ctx, 0, sqls)
			if err != nil {
				t.Fatal(err)
			}
			assertBitsEqual(t, got, want, "healthy baseline")

			// Break the replica that owns the first query's routing key
			// (ring IDs are the per-run server URLs, so ownership
			// shifts between runs) and keep batching: answers stay
			// exact.
			victim := rt.ring.sequence(sqlparse.RoutingHash(sqls[0]))[0]
			cf.modes[victim].Store(fm.mode)
			for round := 0; round < 3; round++ {
				got, err := rt.EstimateBatch(ctx, 0, sqls)
				if err != nil {
					t.Fatalf("round %d under %s fault: %v", round, fm.name, err)
				}
				assertBitsEqual(t, got, want, fmt.Sprintf("round %d under %s fault", round, fm.name))
			}
			if rt.retries.Load() == 0 {
				t.Fatal("no queries were re-routed; the fault never bit")
			}
			if state, trips := rt.replicas[victim].breaker.snapshot(); state != "open" || trips == 0 {
				t.Fatalf("faulty replica breaker %s/%d trips, want open after repeated faults", state, trips)
			}

			// With the breaker open the fleet routes around the corpse:
			// no new failures accrue.
			failuresBefore := rt.replicas[victim].failures.Load()
			if _, err := rt.EstimateBatch(ctx, 0, sqls); err != nil {
				t.Fatal(err)
			}
			if after := rt.replicas[victim].failures.Load(); after != failuresBefore {
				t.Fatalf("open breaker still let %d requests fail on the dead replica", after-failuresBefore)
			}

			// Heal, wait out the cooldown, and let traffic's half-open
			// probe re-admit the replica.
			cf.modes[victim].Store(modeOK)
			time.Sleep(600 * time.Millisecond)
			for round := 0; round < 3; round++ {
				got, err := rt.EstimateBatch(ctx, 0, sqls)
				if err != nil {
					t.Fatal(err)
				}
				assertBitsEqual(t, got, want, "post-recovery")
			}
			if state, _ := rt.replicas[victim].breaker.snapshot(); state != "closed" {
				t.Fatalf("recovered replica breaker %s, want closed", state)
			}
		})
	}
}

// TestHealthLoopRecoversBreaker: the background health loop's probe —
// not data-plane traffic — re-closes a tripped breaker once the
// replica heals, and records the fleet's generations along the way.
func TestHealthLoopRecoversBreaker(t *testing.T) {
	cf := startChaosFleet(t, 2)
	opts := chaosRouterOptions()
	opts.HealthInterval = 30 * time.Millisecond
	rt := newTestRouter(t, cf.fleet, opts)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Run(ctx)

	cf.modes[1].Store(mode503)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if state, _ := rt.replicas[1].breaker.snapshot(); state == "open" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health loop never tripped the broken replica's breaker")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rt.replicas[1].healthy.Load() {
		t.Fatal("broken replica still marked healthy")
	}

	cf.modes[1].Store(modeOK)
	for {
		state, _ := rt.replicas[1].breaker.snapshot()
		if state == "closed" && rt.replicas[1].healthy.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health loop never recovered the healed replica")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rt.uniformGeneration() == "" {
		t.Fatal("health loop did not record a uniform fleet generation")
	}
}

// TestWholeFleetDownThenBack: with every replica dead the router
// reports errors (never wrong numbers); when the fleet returns, so do
// exact answers.
func TestWholeFleetDownThenBack(t *testing.T) {
	cf := startChaosFleet(t, 2)
	rt := newTestRouter(t, cf.fleet, chaosRouterOptions())
	ctx := context.Background()
	sqls := []string{testSQL(0), testSQL(1)}
	want := wantBatch(t, 0, sqls)

	for i := range cf.modes {
		cf.modes[i].Store(mode503)
	}
	if _, err := rt.EstimateBatch(ctx, 0, sqls); err == nil {
		t.Fatal("fully-dead fleet produced an answer")
	}
	for i := range cf.modes {
		cf.modes[i].Store(modeOK)
	}
	time.Sleep(150 * time.Millisecond) // cooldown, then half-open probes readmit
	var got []float64
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		if got, err = rt.EstimateBatch(ctx, 0, sqls); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("fleet never recovered: %v", err)
	}
	assertBitsEqual(t, got, want, "post-outage")
}

// chaosSoakDuration: 2s by default (the ISSUE's floor, also used by the
// -short CI race matrix); QCFE_SOAK_SECONDS extends it for the
// dedicated soak step.
func chaosSoakDuration(t *testing.T) time.Duration {
	if v := os.Getenv("QCFE_SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs <= 0 {
			t.Fatalf("QCFE_SOAK_SECONDS=%q", v)
		}
		return time.Duration(secs) * time.Second
	}
	return 2 * time.Second
}

// TestChaosSoak is the fault-injection endurance bar: 48 concurrent
// workers (singles and batches) against a 4-replica fleet while a
// flapper goroutine cycles one replica at a time through drop / 503 /
// hang / heal every few milliseconds — so modes flip mid-batch
// constantly. Invariants, checked on every operation:
//
//  1. a successful answer is bit-identical to the library's — replica
//     faults and failover must never change results;
//  2. the run makes progress (successes dominate; an error is only
//     tolerated when the flapper had the fleet degraded);
//  3. after the chaos stops, the fleet converges back to closed
//     breakers and exact answers.
//
// Run under -race in CI this doubles as the data-race proof for the
// breaker, scatter retry state, and health bookkeeping.
func TestChaosSoak(t *testing.T) {
	dur := chaosSoakDuration(t)
	cf := startChaosFleet(t, 4)
	rt := newTestRouter(t, cf.fleet, chaosRouterOptions())
	ctx := context.Background()

	const nq = 48
	sqls := make([]string, nq)
	for i := range sqls {
		sqls[i] = testSQL(i)
	}
	want := wantBatch(t, 0, sqls)

	var wrong, successes, failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// The flapper: one replica at a time, random fault, short dwell.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim := rng.Intn(len(cf.modes))
			fault := []int32{modeDrop, mode503, modeHang}[rng.Intn(3)]
			cf.modes[victim].Store(fault)
			time.Sleep(time.Duration(2+rng.Intn(6)) * time.Millisecond)
			cf.modes[victim].Store(modeOK)
			time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
		}
	}()

	const workers = 48
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(3) == 0 {
					// A batch slice crossing replica boundaries.
					lo := rng.Intn(nq - 8)
					hi := lo + 2 + rng.Intn(6)
					got, err := rt.EstimateBatch(ctx, 0, sqls[lo:hi])
					if err != nil {
						failures.Add(1)
						continue
					}
					successes.Add(1)
					for k := range got {
						if got[k] != want[lo+k] {
							wrong.Add(1)
						}
					}
				} else {
					qi := rng.Intn(nq)
					got, err := rt.Estimate(ctx, 0, sqls[qi])
					if err != nil {
						failures.Add(1)
						continue
					}
					successes.Add(1)
					if got != want[qi] {
						wrong.Add(1)
					}
				}
			}
		}(w)
	}

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	for i := range cf.modes {
		cf.modes[i].Store(modeOK)
	}

	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d answers diverged from the library under chaos (of %d successes)", n, successes.Load())
	}
	if successes.Load() == 0 {
		t.Fatalf("no operation succeeded in %v of chaos (%d failures); the fleet never served", dur, failures.Load())
	}
	t.Logf("soak %v: %d ok, %d failed-over-to-error, %d retries, breaker trips per replica: %s",
		dur, successes.Load(), failures.Load(), rt.retries.Load(), tripSummary(rt))

	// Convergence: cooldowns elapse, probes re-admit everyone, and the
	// fleet answers exactly again.
	time.Sleep(150 * time.Millisecond)
	var got []float64
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		if got, err = rt.EstimateBatch(ctx, 0, sqls); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("fleet never converged after chaos: %v", err)
	}
	assertBitsEqual(t, got, want, "post-chaos convergence")
}

// TestTraceIDSurvivesFailover: the X-QCFE-Trace-ID a request enters
// the router with is stamped on every scattered sub-batch, and a
// failover retry re-dispatches with the ORIGINAL id — so a slow or
// retried query remains traceable end to end across the fleet, and the
// router's /trace/recent shows the per-replica sub-batch spans.
func TestTraceIDSurvivesFailover(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	seen := make([]map[string]int, n) // replica index -> trace id -> sub-batches
	modes := make([]*atomic.Int32, n)
	for i := range seen {
		seen[i] = map[string]int{}
		modes[i] = &atomic.Int32{}
	}
	f := startFleet(t, n, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Capture BEFORE the fault: a dropped request still proves
			// which trace id it arrived with.
			if id := r.Header.Get(obs.TraceHeader); id != "" && r.URL.Path == "/estimate_batch" {
				mu.Lock()
				seen[i][id]++
				mu.Unlock()
			}
			if modes[i].Load() == modeDrop {
				panic(http.ErrAbortHandler)
			}
			h.ServeHTTP(w, r)
		})
	})
	rt := newTestRouter(t, f, chaosRouterOptions())
	edge := httptest.NewServer(rt.Handler())
	defer edge.Close()

	sqls := make([]string, 12)
	for i := range sqls {
		sqls[i] = testSQL(i)
	}
	post := func(traceID string) (string, error) {
		body, err := json.Marshal(serve.BatchRequest{Env: 0, SQLs: sqls})
		if err != nil {
			return "", err
		}
		req, err := http.NewRequest(http.MethodPost, edge.URL+"/estimate_batch", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		if traceID != "" {
			req.Header.Set(obs.TraceHeader, traceID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d", resp.StatusCode)
		}
		return resp.Header.Get(obs.TraceHeader), nil
	}

	// Healthy fleet: the router mints an id, echoes it, and every
	// sub-batch carried exactly that id.
	minted, err := post("")
	if err != nil {
		t.Fatal(err)
	}
	if len(minted) != 32 {
		t.Fatalf("minted trace id %q, want 32 hex chars", minted)
	}
	mu.Lock()
	for i := range seen {
		for id := range seen[i] {
			if id != minted {
				t.Fatalf("replica %d saw trace id %q, want only the minted %q", i, id, minted)
			}
		}
	}
	mu.Unlock()

	// Break the replica that owns the first query's key, then send a
	// request with a caller-supplied trace id: the victim's aborted
	// sub-batch AND its failover retry must both carry that exact id.
	victim := rt.ring.sequence(sqlparse.RoutingHash(sqls[0]))[0]
	modes[victim].Store(modeDrop)
	const fixed = "00112233445566778899aabbccddeeff"
	echoed, err := post(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if echoed != fixed {
		t.Fatalf("router echoed trace id %q, want the caller's %q", echoed, fixed)
	}
	mu.Lock()
	if seen[victim][fixed] == 0 {
		t.Fatalf("victim replica %d never saw the original trace id before dropping", victim)
	}
	carriers := 0
	for i := range seen {
		if seen[i][fixed] > 0 {
			carriers++
		}
	}
	mu.Unlock()
	if carriers < 2 {
		t.Fatalf("trace id reached %d replica(s), want >= 2 (original dispatch + failover retry)", carriers)
	}
	if rt.retries.Load() == 0 {
		t.Fatal("no retry happened; the failover path was never exercised")
	}

	// The router's ring retains the trace with its per-replica sub-batch
	// spans and the merge marker.
	resp, err := http.Get(edge.URL + "/trace/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []obs.TraceRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	var rec *obs.TraceRecord
	for k := range recs {
		if recs[k].TraceID == fixed {
			rec = &recs[k]
			break
		}
	}
	if rec == nil {
		t.Fatalf("/trace/recent has no record for %q (got %d records)", fixed, len(recs))
	}
	subbatches, merges := 0, 0
	for _, sp := range rec.Spans {
		switch sp.Stage {
		case "subbatch":
			subbatches++
		case "merge":
			merges++
		}
	}
	if subbatches < 2 || merges != 1 {
		t.Fatalf("trace %q spans: %d subbatch + %d merge, want >=2 subbatch and exactly 1 merge: %+v",
			fixed, subbatches, merges, rec.Spans)
	}
}

func tripSummary(rt *Router) string {
	s := ""
	for i, rep := range rt.replicas {
		state, trips := rep.breaker.snapshot()
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%s/%d", i, state, trips)
	}
	return s
}
