package router

import (
	"context"

	"repro/internal/qcache"
	"repro/internal/serve"
)

// ReplicaStats is one fleet member's slice of the router's /stats:
// the router-side view (breaker, routed counters) plus the replica's
// own /stats blocks fetched live.
type ReplicaStats struct {
	ID         string `json:"id"`
	Healthy    bool   `json:"healthy"`
	Generation string `json:"generation,omitempty"`
	Breaker    string `json:"breaker"`
	Trips      int64  `json:"breaker_trips"`
	Requests   int64  `json:"requests"` // queries the router sent here
	Failures   int64  `json:"failures"` // replica-fault round trips
	// Serve is the replica's live /stats reply (serve counters plus
	// cache and drift blocks); nil when the replica didn't answer.
	Serve *serve.StatsResponse `json:"serve,omitempty"`
}

// StatsResponse is the router's /stats reply: routing counters, the
// per-replica breakdown, and a fleet-wide aggregate of the replicas'
// serve counters (cache tiers summed across shards-of-the-fleet the
// same way qcache sums shards-of-a-process).
type StatsResponse struct {
	UptimeS      float64 `json:"uptime_s"`
	Replicas     int     `json:"replicas"`
	HealthyCount int     `json:"healthy"`
	// Generation is the fleet's artifact generation when uniform, ""
	// while replicas disagree (mid-rollout).
	Generation   string `json:"generation,omitempty"`
	Requests     int64  `json:"requests"`      // single-query requests routed
	BatchQueries int64  `json:"batch_queries"` // queries arriving in batches
	Fanouts      int64  `json:"fanouts"`       // sub-batches dispatched
	Retries      int64  `json:"retries"`       // queries re-routed to a fallback
	Errors       int64  `json:"errors"`
	Rollouts     int64  `json:"rollouts"`
	Rollbacks    int64  `json:"rollbacks"`
	// RouteHash is the routing-key memo's hit/miss/reset counters
	// (internal/router routeHashCache).
	RouteHash RouteHashStats `json:"routehash"`
	// Fleet sums the serve counters of every replica that answered.
	Fleet serve.Stats `json:"fleet"`
	// Cache sums the per-tier hit/miss/size counters of every replica
	// cache; present when at least one replica has a cache attached.
	Cache        *fleetCache    `json:"cache,omitempty"`
	ReplicaStats []ReplicaStats `json:"replica_stats"`
}

// fleetCache is the cross-replica sum of qcache tier counters.
type fleetCache struct {
	Template   tierSum `json:"template"`
	Feature    tierSum `json:"feature"`
	Prediction tierSum `json:"prediction"`
}

type tierSum struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Size      int64 `json:"size"`
}

func addTier(dst *tierSum, t qcache.TierStats) {
	dst.Hits += t.Hits
	dst.Misses += t.Misses
	dst.Stores += t.Stores
	dst.Evictions += t.Evictions
	dst.Size += int64(t.Size)
}

// Stats assembles the merged fleet stats, fetching each replica's
// /stats live (sequentially; fleet sizes are small, and /stats is not
// a hot path).
func (rt *Router) Stats(ctx context.Context) StatsResponse {
	resp := StatsResponse{
		UptimeS:      rt.Uptime().Seconds(),
		Replicas:     len(rt.replicas),
		Generation:   rt.uniformGeneration(),
		Requests:     rt.requests.Load(),
		BatchQueries: rt.batchQueries.Load(),
		Fanouts:      rt.fanouts.Load(),
		Retries:      rt.retries.Load(),
		Errors:       rt.errors.Load(),
		Rollouts:     rt.rollouts.Load(),
		Rollbacks:    rt.rollbacks.Load(),
		RouteHash:    rt.hashes.stats(),
	}
	for _, rep := range rt.replicas {
		state, trips := rep.breaker.snapshot()
		gen, _ := rep.lastGen.Load().(string)
		rs := ReplicaStats{
			ID:         rep.id,
			Healthy:    rep.healthy.Load(),
			Generation: gen,
			Breaker:    state,
			Trips:      trips,
			Requests:   rep.requests.Load(),
			Failures:   rep.failures.Load(),
		}
		if rs.Healthy {
			resp.HealthyCount++
		}
		sctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
		sr, err := rep.client.Stats(sctx)
		cancel()
		if err == nil {
			rs.Serve = &sr
			resp.Fleet.Requests += sr.Requests
			resp.Fleet.BatchRequests += sr.BatchRequests
			resp.Fleet.Flushes += sr.Flushes
			resp.Fleet.Coalesced += sr.Coalesced
			resp.Fleet.CacheHits += sr.CacheHits
			resp.Fleet.Swaps += sr.Swaps
			resp.Fleet.Errors += sr.Errors
			if sr.Cache != nil {
				if resp.Cache == nil {
					resp.Cache = &fleetCache{}
				}
				addTier(&resp.Cache.Template, sr.Cache.Template)
				addTier(&resp.Cache.Feature, sr.Cache.Feature)
				addTier(&resp.Cache.Prediction, sr.Cache.Prediction)
			}
		}
		resp.ReplicaStats = append(resp.ReplicaStats, rs)
	}
	return resp
}
