package router

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	qcfe "repro"
	"repro/internal/serve"
	"repro/internal/sqlparse"
)

const testToken = "router-test-token"

// fixture shares one small trained estimator (the same pipeline every
// package in this repo trains for tests: sysbench seed 1, 2 envs, 80
// queries/env, mscn with 40 iters / 20 references / seed 3) plus its
// serialized artifact across the router tests — training dominates
// test runtime; fleets of Load-ed copies are cheap.
var fixture struct {
	once     sync.Once
	est      *qcfe.CostEstimator
	artifact []byte
	err      error
}

func testEstimator(t *testing.T) (*qcfe.CostEstimator, []byte) {
	t.Helper()
	fixture.once.Do(func() {
		b, err := qcfe.OpenBenchmark("sysbench", 1)
		if err != nil {
			fixture.err = err
			return
		}
		envs := qcfe.RandomEnvironments(2, 1)
		pool, err := b.CollectWorkload(envs, 80, 1)
		if err != nil {
			fixture.err = err
			return
		}
		train, _ := pool.Split(0.8)
		fixture.est, fixture.err = qcfe.NewPipeline("mscn",
			qcfe.WithTrainIters(40), qcfe.WithReferences(20), qcfe.WithSeed(3),
		).Fit(b, envs, train)
		if fixture.err != nil {
			return
		}
		var buf bytes.Buffer
		if fixture.err = fixture.est.Save(&buf); fixture.err == nil {
			fixture.artifact = buf.Bytes()
		}
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.est, fixture.artifact
}

// adaptedArtifact returns an estimator with genuinely different weights
// (Save→Load copy of the fixture retrained on fresh labels) and its
// serialized artifact — the "new generation" for rollout tests.
func adaptedArtifact(t *testing.T) (*qcfe.CostEstimator, []byte) {
	t.Helper()
	est, _ := testEstimator(t)
	pool, err := est.Benchmark().CollectWorkload(est.Environments(), 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := pool.Split(0.8)
	next, err := est.Adapt(train, 25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := next.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return next, buf.Bytes()
}

// fleet is a set of in-process replicas, each an httptest server over
// its own Load-ed copy of the fixture artifact.
type fleet struct {
	urls    []string
	servers []*serve.Server
	https   []*httptest.Server
}

// startFleet stands up n replicas. wrap, when non-nil, is applied to
// each replica's handler (chaos middleware hooks in here); it receives
// the replica index and the real handler.
func startFleet(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) *fleet {
	t.Helper()
	_, artifact := testEstimator(t)
	ctx, cancel := context.WithCancel(context.Background())
	f := &fleet{}
	var done []chan struct{}
	for i := 0; i < n; i++ {
		est, err := qcfe.LoadEstimator(bytes.NewReader(artifact))
		if err != nil {
			t.Fatal(err)
		}
		est.AttachCache(qcfe.NewQueryCache(qcfe.CacheOptions{Shards: 4, Capacity: 512}))
		srv := serve.New(est, serve.Options{
			BatchWindow: time.Millisecond,
			AdminToken:  testToken,
			Advertise:   fmt.Sprintf("replica-%d", i),
		})
		ch := make(chan struct{})
		done = append(done, ch)
		go func() { srv.Run(ctx); close(ch) }()
		h := http.Handler(srv.Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		f.servers = append(f.servers, srv)
		f.https = append(f.https, ts)
		f.urls = append(f.urls, ts.URL)
	}
	t.Cleanup(func() {
		for _, ts := range f.https {
			ts.Close()
		}
		cancel()
		for _, ch := range done {
			<-ch
		}
	})
	return f
}

// newTestRouter fronts a fleet with fast-failure settings suited to
// tests (short timeouts and cooldowns; admin enabled).
func newTestRouter(t *testing.T, f *fleet, opts Options) *Router {
	t.Helper()
	if opts.Timeout == 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.AdminToken == "" {
		opts.AdminToken = testToken
	}
	rt, err := New(f.urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func testSQL(i int) string {
	switch i % 3 {
	case 0:
		return fmt.Sprintf("SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN %d AND %d", 50+i, 250+i)
	case 1:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE id = %d", 1+i)
	default:
		return fmt.Sprintf("SELECT * FROM sbtest1 WHERE k < %d", 100+i)
	}
}

// wantBatch prices the batch on the library's batched path — the
// reference every routed answer must match bit for bit.
func wantBatch(t *testing.T, env int, sqls []string) []float64 {
	t.Helper()
	est, _ := testEstimator(t)
	want, err := est.EstimateSQLBatchCtx(context.Background(), est.Environments()[env], sqls)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertBitsEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: result %d = %v (bits %x), want %v (bits %x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// keyHash generates distinct routing keys for ring tests: distinct
// table names mean distinct templates (testSQL's literal variants all
// collapse onto three templates by design — good for cache-locality
// tests, useless for distribution tests).
func keyHash(i int) uint64 {
	return sqlparse.RoutingHash(fmt.Sprintf("SELECT col FROM table_%d WHERE x < 5", i))
}

// TestRingPlacementIsOrderIndependent: the ring hashes replica IDs, so
// the same fleet listed in any order routes every key identically.
func TestRingPlacementIsOrderIndependent(t *testing.T) {
	ids := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	perm := []string{"http://c:3", "http://a:1", "http://d:4", "http://b:2"}
	r1, err := newRing(ids, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := newRing(perm, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		h := keyHash(i)
		if got, want := perm[r2.pick(h)], ids[r1.pick(h)]; got != want {
			t.Fatalf("key %d: permuted fleet routes to %s, original to %s", i, got, want)
		}
	}
}

// TestRingResizeStability: removing one replica from an N-replica ring
// may only remap keys that replica owned; every other key keeps its
// home (and its replica-local cache locality).
func TestRingResizeStability(t *testing.T) {
	ids := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full, err := newRing(ids, 64)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := newRing(ids[:3], 64) // drop http://d:4
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		h := keyHash(i)
		before := ids[full.pick(h)]
		after := ids[shrunk.pick(h)]
		if before != "http://d:4" && before != after {
			t.Fatalf("key %d moved %s → %s though its replica survived the resize", i, before, after)
		}
		if before != after {
			moved++
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("%d/%d keys remapped by removing 1 of 4 replicas; expected roughly 1/4", moved, keys)
	}
}

// TestRingSequenceIsDeterministicAndComplete: a key's failover sequence
// visits every replica exactly once, starts at its primary, and is a
// pure function of the key.
func TestRingSequenceIsDeterministicAndComplete(t *testing.T) {
	ids := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4", "http://e:5"}
	r, err := newRing(ids, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		h := keyHash(i)
		seq := r.sequence(h)
		if len(seq) != len(ids) {
			t.Fatalf("sequence length %d, want %d", len(seq), len(ids))
		}
		if seq[0] != r.pick(h) {
			t.Fatalf("sequence starts at %d, primary is %d", seq[0], r.pick(h))
		}
		seen := make(map[int]bool)
		for _, ri := range seq {
			if seen[ri] {
				t.Fatalf("replica %d appears twice in sequence %v", ri, seq)
			}
			seen[ri] = true
		}
		again := r.sequence(h)
		for k := range seq {
			if seq[k] != again[k] {
				t.Fatalf("sequence not deterministic: %v vs %v", seq, again)
			}
		}
	}
}

// TestRingRejectsDuplicates: two replicas with one identity would make
// the failover walk ambiguous.
func TestRingRejectsDuplicates(t *testing.T) {
	if _, err := newRing([]string{"http://a:1", "http://a:1"}, 8); err == nil {
		t.Fatal("duplicate replica IDs accepted")
	}
	if _, err := newRing(nil, 8); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

// TestBreakerLifecycle walks the three states: threshold consecutive
// failures trip it, the cooldown diverts traffic, the half-open window
// admits exactly one probe, and the probe's outcome decides.
func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	now := time.Now()

	for i := 0; i < 2; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.failure(now)
	}
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state %s after 2/3 failures, want closed", state)
	}
	b.allow(now)
	b.failure(now) // third consecutive failure: trip
	if state, trips := b.snapshot(); state != "open" || trips != 1 {
		t.Fatalf("state %s trips %d after threshold, want open/1", state, trips)
	}
	if b.allow(now.Add(10 * time.Millisecond)) {
		t.Fatal("open breaker admitted traffic inside the cooldown")
	}

	// Cooldown over: exactly one half-open probe.
	after := now.Add(60 * time.Millisecond)
	if !b.allow(after) {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.allow(after) {
		t.Fatal("breaker admitted a second concurrent half-open probe")
	}
	b.failure(after) // probe fails: reopen
	if state, trips := b.snapshot(); state != "open" || trips != 2 {
		t.Fatalf("state %s trips %d after failed probe, want open/2", state, trips)
	}

	later := after.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("breaker refused the second half-open probe")
	}
	b.success() // probe succeeds: close and reset
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state %s after successful probe, want closed", state)
	}
	if !b.allow(later) {
		t.Fatal("closed breaker refused traffic after recovery")
	}
	b.failure(later)
	b.failure(later)
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatal("failure count survived the successful probe; want a clean slate")
	}
}

// TestRoutingKeyGroupsTemplates: literal variants of one template share
// a routing key (and so a replica), distinct templates may differ.
func TestRoutingKeyGroupsTemplates(t *testing.T) {
	a := sqlparse.RoutingKey("SELECT * FROM sbtest1 WHERE id = 7")
	b := sqlparse.RoutingKey("SELECT * FROM sbtest1 WHERE id = 900001")
	if a != b {
		t.Fatalf("literal variants map to different routing keys:\n  %q\n  %q", a, b)
	}
	c := sqlparse.RoutingKey("SELECT COUNT(*) FROM sbtest1 WHERE k < 10")
	if a == c {
		t.Fatal("distinct templates share a routing key")
	}
	if sqlparse.RoutingHash("SELECT * FROM sbtest1 WHERE id = 7") != sqlparse.RoutingHash("SELECT * FROM sbtest1 WHERE id = 8") {
		t.Fatal("routing hash differs across literal variants")
	}
}

// TestRouteHashCacheMemoizes: the router-side exact-text memo of
// RoutingHash always agrees with the pure function (routing must stay a
// pure function of the text) and survives its wholesale shard resets.
func TestRouteHashCacheMemoizes(t *testing.T) {
	var c routeHashCache
	sqls := make([]string, 64)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("SELECT col FROM t WHERE x < %d", i)
	}
	for round := 0; round < 2; round++ { // second round hits the memo
		for _, sql := range sqls {
			if got, want := c.hash(sql), sqlparse.RoutingHash(sql); got != want {
				t.Fatalf("round %d: cached hash %x != RoutingHash %x for %q", round, got, want, sql)
			}
		}
	}
	// Overflow a shard far past its capacity: entries reset, answers don't.
	for i := 0; i < routeHashShards*routeHashShardCap+512; i++ {
		sql := fmt.Sprintf("SELECT a FROM flood WHERE id = %d", i)
		if got, want := c.hash(sql), sqlparse.RoutingHash(sql); got != want {
			t.Fatalf("post-reset hash mismatch for %q", sql)
		}
	}
	for i := range c.shards {
		if n := len(c.shards[i].m); n > routeHashShardCap {
			t.Fatalf("shard %d grew to %d entries, cap %d", i, n, routeHashShardCap)
		}
	}
}
