package router

import (
	"sync"
	"sync/atomic"

	"repro/internal/sqlparse"
)

// routeHashCache memoizes sqlparse.RoutingHash by exact SQL text — the
// router-side analogue of the replicas' exact-text prediction tier.
// RoutingHash normalizes the query (lex, parse, strip literals) to a
// fingerprint hash, which costs microseconds and ~20 allocations; real
// serving traffic repeats a small set of exact strings, so the hash of
// a repeated query is one map lookup instead. Correctness is free:
// RoutingHash is a pure function of the text, so a cached value can
// never disagree with a recomputed one, and routing stays a pure
// function of (query text, fleet).
//
// The read side follows the same snapshot protocol as internal/qcache
// (ARCHITECTURE.md §6): a warm hit loads an immutable map via
// atomic.Pointer and takes no lock — zero allocations, no contention.
// Writers insert into a dirty map behind the shard mutex and republish
// a fresh snapshot with bounded lag: publication happens once readers
// have recomputed as many unpublished keys as are pending (each
// recompute of an already-inserted key is wasted work, so the lag is
// self-limiting — a hot key is recomputed at most once before it goes
// lock-free) or after routeHashPublishEvery inserts, whichever is
// first. Purity makes the laxer protocol safe here: a reader that
// misses the snapshot just recomputes, it never needs the qcache-style
// locked fallback.
//
// Shards bound writer contention; each shard is capacity-bounded and
// reset wholesale when full (the memoized function is cheap enough that
// re-warming beats tracking recency).
//
// Each shard keeps hit/miss/reset counters (atomics, so the warm path
// stays lock-free); Router.Stats sums them into the /stats "routehash"
// block. A high reset count flags a shard churning through more
// distinct query texts than routeHashShardCap — the signal to widen
// the cache rather than guess from hit rate alone.
const (
	routeHashShards       = 16
	routeHashShardCap     = 4096
	routeHashPublishEvery = 64
)

type routeHashCache struct {
	shards [routeHashShards]routeHashShard
}

type routeHashShard struct {
	mu sync.Mutex
	// read is the published immutable snapshot of m; nil until the first
	// publication (and immediately after a wholesale reset).
	read atomic.Pointer[map[string]uint64]
	// m is the authoritative dirty map, guarded by mu.
	m map[string]uint64
	// published is len(m) at the last publication; missed counts
	// recomputes of keys already in m since then. missed >= pending
	// means readers have paid for the publication we deferred.
	published int
	missed    int

	// Observability counters (atomic: hits increment on the lock-free
	// read path).
	hits   atomic.Int64 // snapshot probes that returned a memoized hash
	misses atomic.Int64 // recomputes (snapshot absent, stale, or key new)
	resets atomic.Int64 // wholesale shard resets (capacity reached)
}

// RouteHashStats is the memo's /stats block: how often routing keys
// came from the snapshot versus a fresh normalize-and-hash, and how
// many times a full shard was thrown away.
type RouteHashStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Resets int64 `json:"resets"`
}

// stats sums the per-shard counters.
func (c *routeHashCache) stats() RouteHashStats {
	var s RouteHashStats
	for i := range c.shards {
		sh := &c.shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Resets += sh.resets.Load()
	}
	return s
}

// hash returns RoutingHash(sql), memoized. The warm path — snapshot
// load, map probe — is lock-free and allocation-free.
func (c *routeHashCache) hash(sql string) uint64 {
	s := c.shard(sql)
	if m := s.read.Load(); m != nil {
		if v, ok := (*m)[sql]; ok {
			s.hits.Add(1)
			return v
		}
	}
	// Snapshot miss: recompute outside the lock (RoutingHash is pure, so
	// concurrent recomputes of the same text agree), then record.
	s.misses.Add(1)
	v := sqlparse.RoutingHash(sql)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= routeHashShardCap {
		if s.m != nil {
			s.resets.Add(1)
		}
		s.m = make(map[string]uint64, 64)
		s.read.Store(nil)
		s.published, s.missed = 0, 0
	}
	if _, ok := s.m[sql]; ok {
		s.missed++
	} else {
		s.m[sql] = v
	}
	if pend := len(s.m) - s.published; pend > 0 && (s.missed >= pend || pend >= routeHashPublishEvery) {
		snap := make(map[string]uint64, len(s.m))
		for k, h := range s.m {
			snap[k] = h
		}
		s.read.Store(&snap)
		s.published, s.missed = len(s.m), 0
	}
	s.mu.Unlock()
	return v
}

// shard picks by FNV-1a of the raw text — allocation-free, unlike
// hashing the normalized form (which is what we're memoizing away).
func (c *routeHashCache) shard(sql string) *routeHashShard {
	h := uint32(2166136261)
	for i := 0; i < len(sql); i++ {
		h = (h ^ uint32(sql[i])) * 16777619
	}
	return &c.shards[h%routeHashShards]
}
