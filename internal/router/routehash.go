package router

import (
	"sync"

	"repro/internal/sqlparse"
)

// routeHashCache memoizes sqlparse.RoutingHash by exact SQL text — the
// router-side analogue of the replicas' exact-text prediction tier.
// RoutingHash normalizes the query (lex, parse, strip literals) to a
// fingerprint hash, which costs microseconds and ~20 allocations; real
// serving traffic repeats a small set of exact strings, so the hash of
// a repeated query is one map lookup instead. Correctness is free:
// RoutingHash is a pure function of the text, so a cached value can
// never disagree with a recomputed one, and routing stays a pure
// function of (query text, fleet).
//
// Shards bound lock contention; each shard is capacity-bounded and
// reset wholesale when full (the memoized function is cheap enough that
// re-warming beats tracking recency).
const (
	routeHashShards   = 16
	routeHashShardCap = 4096
)

type routeHashCache struct {
	shards [routeHashShards]routeHashShard
}

type routeHashShard struct {
	mu sync.RWMutex
	m  map[string]uint64
}

// hash returns RoutingHash(sql), memoized.
func (c *routeHashCache) hash(sql string) uint64 {
	s := c.shard(sql)
	s.mu.RLock()
	v, ok := s.m[sql]
	s.mu.RUnlock()
	if ok {
		return v
	}
	v = sqlparse.RoutingHash(sql)
	s.mu.Lock()
	if s.m == nil || len(s.m) >= routeHashShardCap {
		s.m = make(map[string]uint64, 64)
	}
	s.m[sql] = v
	s.mu.Unlock()
	return v
}

// shard picks by FNV-1a of the raw text — allocation-free, unlike
// hashing the normalized form (which is what we're memoizing away).
func (c *routeHashCache) shard(sql string) *routeHashShard {
	h := uint32(2166136261)
	for i := 0; i < len(sql); i++ {
		h = (h ^ uint32(sql[i])) * 16777619
	}
	return &c.shards[h%routeHashShards]
}
