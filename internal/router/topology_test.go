package router

import (
	"bytes"
	"context"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// Cross-topology determinism: the routed /estimate_batch body must be
// byte-for-byte the body a single replica — and the root package's
// checked-in golden file — produces, for every fleet size. The router
// adds exactly zero entropy: not in the floats, not in the JSON
// framing.

// goldenBody is the exact batch the root TestGoldenEndToEnd pins; the
// fixture here trains the identical pipeline, so the same golden file
// is the reference for the routed path.
const goldenBody = `{"env":0,"sqls":[` +
	`"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 100 AND 300",` +
	`"SELECT * FROM sbtest1 WHERE id = 7",` +
	`"SELECT * FROM sbtest1 WHERE k < 250",` +
	`"SELECT k FROM sbtest1 WHERE k < 120 ORDER BY k LIMIT 5",` +
	`"SELECT COUNT(*) FROM sbtest1 WHERE id BETWEEN 10 AND 900"]}`

// TestGoldenAcrossTopologies serves the golden batch through routers
// fronting 1, 2, and 4 replicas and diffs each raw response body
// against testdata/golden_estimate_batch.json. One golden file, four
// serving shapes (the single process that wrote it, plus three fleet
// sizes): any byte of divergence — scatter order, merge order, float
// bits, JSON encoding — fails here.
func TestGoldenAcrossTopologies(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden floats are pinned on amd64, running on %s", runtime.GOARCH)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_estimate_batch.json"))
	if err != nil {
		t.Fatalf("%v — regenerate with `go test -run TestGoldenEndToEnd -update-golden .` at the repo root", err)
	}
	for _, n := range []int{1, 2, 4} {
		f := startFleet(t, n, nil)
		rt := newTestRouter(t, f, Options{})
		front := httptest.NewServer(rt.Handler())
		resp, err := front.Client().Post(front.URL+"/estimate_batch", "application/json", strings.NewReader(goldenBody))
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if _, err := got.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		front.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%d replicas: status %d: %s", n, resp.StatusCode, got.String())
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("%d replicas: routed body drifted from golden:\n  got  %s  want %s", n, got.String(), string(want))
		}
	}
}

// TestRoutedEqualsLibraryAcrossTopologies is the same invariant at the
// Go API level and at scale: a 96-query batch (32 templates × literal
// variants) routed over 1, 2, and 4 replicas returns exactly the
// library's EstimateBatch bits, in both environments.
func TestRoutedEqualsLibraryAcrossTopologies(t *testing.T) {
	sqls := make([]string, 96)
	for i := range sqls {
		sqls[i] = testSQL(i)
	}
	for env := 0; env < 2; env++ {
		want := wantBatch(t, env, sqls)
		for _, n := range []int{1, 2, 4} {
			f := startFleet(t, n, nil)
			rt := newTestRouter(t, f, Options{})
			got, err := rt.EstimateBatch(context.Background(), env, sqls)
			if err != nil {
				t.Fatal(err)
			}
			assertBitsEqual(t, got, want, "env/topology")
		}
	}
}

// TestMetamorphicPermutationAndDuplication: permuting a batch permutes
// the answers and nothing else; duplicating a query duplicates its
// bits. Both hold through the scatter/gather (which reorders work by
// replica) because the gather is index-addressed.
func TestMetamorphicPermutationAndDuplication(t *testing.T) {
	f := startFleet(t, 3, nil)
	rt := newTestRouter(t, f, Options{})
	ctx := context.Background()

	base := make([]string, 48)
	for i := range base {
		base[i] = testSQL(i)
	}
	want, err := rt.EstimateBatch(ctx, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	assertBitsEqual(t, want, wantBatch(t, 0, base), "baseline")

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(base))
		shuffled := make([]string, len(base))
		for k, p := range perm {
			shuffled[k] = base[p]
		}
		got, err := rt.EstimateBatch(ctx, 0, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for k, p := range perm {
			if got[k] != want[p] {
				t.Fatalf("trial %d: permuted batch slot %d = %v, want %v (original slot %d)", trial, k, got[k], want[p], p)
			}
		}
	}

	// Duplication: the same query many times in one batch — crossing
	// sub-batch boundaries — always prices to the same bits.
	dup := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		dup = append(dup, base[i%4])
	}
	got, err := rt.EstimateBatch(ctx, 0, dup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dup {
		if got[i] != want[i%4] {
			t.Fatalf("duplicated query %d = %v, want %v", i, got[i], want[i%4])
		}
	}
}

// TestSingleEstimateMatchesBatch: the router's single-query path and
// batch path agree bitwise (they end in the same replica inference).
func TestSingleEstimateMatchesBatch(t *testing.T) {
	f := startFleet(t, 2, nil)
	rt := newTestRouter(t, f, Options{})
	ctx := context.Background()
	sqls := []string{testSQL(0), testSQL(1), testSQL(2), testSQL(7)}
	want := wantBatch(t, 1, sqls)
	for i, sql := range sqls {
		got, err := rt.Estimate(ctx, 1, sql)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("single estimate %d = %v, want batch's %v", i, got, want[i])
		}
	}
}

// TestQueryFaultPropagates: a 4xx from a replica (unknown environment)
// surfaces to the caller as the replica's error — deterministically,
// not as a retry storm or a breaker trip.
func TestQueryFaultPropagates(t *testing.T) {
	f := startFleet(t, 3, nil)
	rt := newTestRouter(t, f, Options{})
	_, err := rt.EstimateBatch(context.Background(), 99, []string{testSQL(0), testSQL(1)})
	if err == nil {
		t.Fatal("unknown environment priced successfully")
	}
	if rt.retries.Load() != 0 {
		t.Fatalf("query fault caused %d retries, want 0", rt.retries.Load())
	}
	for i, rep := range rt.replicas {
		if state, trips := rep.breaker.snapshot(); state != "closed" || trips != 0 {
			t.Fatalf("replica %d breaker %s/%d after a query fault, want closed/0", i, state, trips)
		}
	}
}
