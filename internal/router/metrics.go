package router

import (
	"repro/internal/obs"
)

// WriteMetrics renders the router's own metric surface: routing
// counters, the routing-key memo, per-replica dispatch state labeled
// replica="<url>", and the request/sub-batch latency histograms. It
// deliberately does NOT fetch replica /stats the way the JSON /stats
// endpoint does — a scrape must stay local and cheap; each replica
// exposes its own /metrics for the fleet view, and the replica label
// here ties the two together.
func (rt *Router) WriteMetrics(g *obs.Gatherer) {
	g.Counter("qcfe_router_requests_total", "Single-query requests routed.", rt.requests.Load())
	g.Counter("qcfe_router_batch_queries_total", "Queries arriving in batch requests.", rt.batchQueries.Load())
	g.Counter("qcfe_router_fanouts_total", "Sub-batches dispatched to replicas.", rt.fanouts.Load())
	g.Counter("qcfe_router_retries_total", "Queries re-routed to a fallback replica.", rt.retries.Load())
	g.Counter("qcfe_router_errors_total", "Routed requests that returned an error.", rt.errors.Load())
	g.Counter("qcfe_router_rollouts_total", "Successful fleet rollouts.", rt.rollouts.Load())
	g.Counter("qcfe_router_rollbacks_total", "Rollouts aborted and rolled back.", rt.rollbacks.Load())
	g.Gauge("qcfe_router_uptime_seconds", "Seconds since this router object was constructed.", rt.Uptime().Seconds())

	rh := rt.hashes.stats()
	g.Counter("qcfe_routehash_hits_total", "Routing keys answered from the memo snapshot.", rh.Hits)
	g.Counter("qcfe_routehash_misses_total", "Routing keys that needed a fresh normalize-and-hash.", rh.Misses)
	g.Counter("qcfe_routehash_resets_total", "Routing-key memo shards discarded.", rh.Resets)

	healthy := 0
	for _, rep := range rt.replicas {
		lbl := obs.L("replica", rep.id)
		up := 0.0
		if rep.healthy.Load() {
			up = 1.0
			healthy++
		}
		_, trips := rep.breaker.snapshot()
		g.Gauge("qcfe_router_replica_healthy", "1 when the replica's last probe or request succeeded.", up, lbl)
		g.Counter("qcfe_router_replica_requests_total", "Queries dispatched to this replica (sub-batches count their size).", rep.requests.Load(), lbl)
		g.Counter("qcfe_router_replica_failures_total", "Replica-fault round trips.", rep.failures.Load(), lbl)
		g.Counter("qcfe_router_breaker_trips_total", "Circuit-breaker trips for this replica.", trips, lbl)
	}
	g.Gauge("qcfe_router_replicas", "Fleet size.", float64(len(rt.replicas)))
	g.Gauge("qcfe_router_replicas_healthy", "Replicas currently considered healthy.", float64(healthy))

	g.Histogram("qcfe_router_request_seconds", "Whole routed request latency (scatter through merge).", rt.histRequest.Snapshot())
	for _, rep := range rt.replicas {
		g.Histogram("qcfe_router_subbatch_seconds", "Per-replica sub-batch round-trip latency.", rep.histSub.Snapshot(), obs.L("replica", rep.id))
	}
}
