package router

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker.
type breakerState int

const (
	breakerClosed   breakerState = iota // replica believed healthy; traffic flows
	breakerOpen                         // tripped; traffic diverted until the cooldown elapses
	breakerHalfOpen                     // cooldown over; exactly one probe in flight decides
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one replica's circuit breaker. Threshold consecutive
// failures trip it open; after Cooldown it admits a single half-open
// probe (a real request or the health loop's /healthz poll — whichever
// arrives first), whose outcome either closes the breaker or re-opens
// it for another cooldown.
//
// The breaker only diverts traffic; it never changes results. Every
// replica serves the same artifact (the rollout protocol keeps it so up
// to the swap boundary), and the fallback target is the key's
// deterministic ring successor — so a tripped breaker moves work, not
// answers.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    int64     // cumulative trip count (stats)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent now. In the open state it
// returns false until the cooldown elapses, then admits exactly one
// caller as the half-open probe; further callers are rejected until
// that probe reports success or failure.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a request that completed; a half-open probe's success
// closes the breaker and re-admits the replica.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a replica fault. Threshold consecutive failures while
// closed — or any failed half-open probe — (re)open the breaker.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.trips++
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.trips++
		}
	default: // already open: refresh nothing; the cooldown clock keeps running
	}
}

// snapshot returns the state name and cumulative trips for stats.
func (b *breaker) snapshot() (string, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.trips
}
