package router

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// canaryProbes is the probe set rollout tests gate on.
func canaryProbes() []string {
	return []string{testSQL(0), testSQL(1), testSQL(2), testSQL(5)}
}

// TestRolloutSuccess pushes an adapted artifact through a 3-replica
// fleet: every replica stages, passes the canary, and commits; the
// fleet ends uniform on the new generation, each replica swapped
// exactly once, and routed answers equal the adapted model's bits.
func TestRolloutSuccess(t *testing.T) {
	f := startFleet(t, 3, nil)
	rt := newTestRouter(t, f, Options{})
	ctx := context.Background()

	next, artifact := adaptedArtifact(t)
	nextGen := serve.GenerationString(next.Generation())
	res, err := rt.Rollout(ctx, RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(artifact),
		CanaryEnv:   0,
		CanarySQLs:  canaryProbes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Generation != nextGen {
		t.Fatalf("rollout result %+v, want ok on generation %s", res, nextGen)
	}
	for i, step := range res.Steps {
		if !step.Committed || step.RolledBack || step.Error != "" {
			t.Fatalf("step %d = %+v, want a clean commit", i, step)
		}
		if step.Staged != nextGen {
			t.Fatalf("step %d staged %q, want %q", i, step.Staged, nextGen)
		}
	}
	for i, srv := range f.servers {
		if got := serve.GenerationString(srv.Estimator().Generation()); got != nextGen {
			t.Fatalf("replica %d serves generation %s after rollout, want %s", i, got, nextGen)
		}
		if swaps := srv.Stats().Swaps; swaps != 1 {
			t.Fatalf("replica %d Swaps = %d after one rollout, want 1", i, swaps)
		}
	}
	if rt.rollouts.Load() != 1 || rt.rollbacks.Load() != 0 {
		t.Fatalf("router counted %d rollouts / %d rollbacks, want 1/0", rt.rollouts.Load(), rt.rollbacks.Load())
	}

	// Routed traffic now prices on the new model, bit for bit.
	sqls := []string{testSQL(3), testSQL(4), testSQL(8)}
	want, err := next.EstimateSQLBatchCtx(ctx, next.Environments()[0], sqls)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.EstimateBatch(ctx, 0, sqls)
	if err != nil {
		t.Fatal(err)
	}
	assertBitsEqual(t, got, want, "post-rollout")
}

// corruptCanary is the fault middleware for the canary-failure test: on
// replica targetIdx it intercepts the /swap staging reply and flips the
// low bit of the first canary prediction — a stand-in for a replica
// that would serve different bytes (bad binary, bad memory, wrong
// build) — while leaving the data plane untouched.
func corruptCanary(target int) func(i int, h http.Handler) http.Handler {
	return func(i int, h http.Handler) http.Handler {
		if i != target {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/swap" {
				h.ServeHTTP(w, r)
				return
			}
			rec := &recorder{header: make(http.Header)}
			h.ServeHTTP(rec, r)
			var resp serve.SwapResponse
			if rec.code == http.StatusOK && json.Unmarshal(rec.body.Bytes(), &resp) == nil && len(resp.CanaryMs) > 0 {
				resp.CanaryMs[0] = math.Float64frombits(math.Float64bits(resp.CanaryMs[0]) ^ 1)
				out, _ := json.Marshal(resp)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusOK)
				w.Write(out)
				return
			}
			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.code)
			w.Write(rec.body.Bytes())
		})
	}
}

// recorder captures a handler's response for inspection/rewriting.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}
func (r *recorder) WriteHeader(code int) { r.code = code }

// TestRolloutCanaryFailureRollsBack is the canary gate under fire: in a
// 3-replica fleet, replica 1 (the second in rollout order) corrupts its
// staged canary predictions. The rollout must stop there, roll replica
// 0 back, and leave replicas 1 and 2 never having swapped — the whole
// fleet on the old generation. Swap counts prove it: replica 0
// commit+rollback = 2, replicas 1 and 2 = 0.
func TestRolloutCanaryFailureRollsBack(t *testing.T) {
	f := startFleet(t, 3, corruptCanary(1))
	rt := newTestRouter(t, f, Options{})
	ctx := context.Background()

	oldGen := serve.GenerationString(f.servers[0].Estimator().Generation())
	_, artifact := adaptedArtifact(t)
	res, err := rt.Rollout(ctx, RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(artifact),
		CanaryEnv:   0,
		CanarySQLs:  canaryProbes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("rollout with a corrupted canary reported OK")
	}
	if res.Error == "" || res.Steps[1].Error == "" {
		t.Fatalf("canary failure not attributed to replica 1: %+v", res)
	}
	if !res.Steps[0].Committed || !res.Steps[0].RolledBack {
		t.Fatalf("replica 0 step %+v, want committed then rolled back", res.Steps[0])
	}
	if res.Steps[1].Committed || res.Steps[2].Committed || res.Steps[2].Staged != "" {
		t.Fatalf("rollout proceeded past the canary failure: %+v", res.Steps)
	}
	if res.Generation != oldGen {
		t.Fatalf("fleet generation %q after rollback, want old %q", res.Generation, oldGen)
	}

	wantSwaps := []int64{2, 0, 0}
	for i, srv := range f.servers {
		if got := serve.GenerationString(srv.Estimator().Generation()); got != oldGen {
			t.Fatalf("replica %d serves %s after failed rollout, want old generation %s", i, got, oldGen)
		}
		if swaps := srv.Stats().Swaps; swaps != wantSwaps[i] {
			t.Fatalf("replica %d Swaps = %d, want %d", i, swaps, wantSwaps[i])
		}
	}
	if rt.rollbacks.Load() != 1 {
		t.Fatalf("router counted %d rollbacks, want 1", rt.rollbacks.Load())
	}

	// The fleet still serves, on the old model's bits.
	sqls := []string{testSQL(0), testSQL(1), testSQL(2)}
	got, err := rt.EstimateBatch(ctx, 0, sqls)
	if err != nil {
		t.Fatal(err)
	}
	assertBitsEqual(t, got, wantBatch(t, 0, sqls), "post-rollback")
}

// TestRolloutExplicitExpectations: ExpectedMs anchors the gate, so even
// the FIRST replica is verified — shipping artifact A while expecting
// artifact B's outputs fails on replica 0 with nothing committed.
func TestRolloutExplicitExpectations(t *testing.T) {
	f := startFleet(t, 2, nil)
	rt := newTestRouter(t, f, Options{})
	ctx := context.Background()

	next, artifact := adaptedArtifact(t)
	oldWant := wantBatch(t, 0, canaryProbes()) // the OLD model's answers
	newWant, err := next.EstimateSQLBatchCtx(ctx, next.Environments()[0], canaryProbes())
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Rollout(ctx, RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(artifact),
		CanaryEnv:   0,
		CanarySQLs:  canaryProbes(),
		ExpectedMs:  oldWant,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Steps[0].Committed {
		t.Fatalf("mismatched expectations committed: %+v", res)
	}
	for i, srv := range f.servers {
		if swaps := srv.Stats().Swaps; swaps != 0 {
			t.Fatalf("replica %d Swaps = %d, want 0", i, swaps)
		}
	}

	// With the right expectations the same rollout goes through.
	res, err = rt.Rollout(ctx, RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(artifact),
		CanaryEnv:   0,
		CanarySQLs:  canaryProbes(),
		ExpectedMs:  newWant,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("correctly-anchored rollout failed: %+v", res)
	}
}

// TestRolloutRequiresToken: the router refuses rollouts without a
// configured admin token, and replicas refuse a router with the wrong
// one — either way, nothing swaps.
func TestRolloutRequiresToken(t *testing.T) {
	f := startFleet(t, 2, nil)
	_, artifact := adaptedArtifact(t)
	req := RolloutRequest{ArtifactB64: base64.StdEncoding.EncodeToString(artifact)}

	noToken, err := New(f.urls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noToken.Rollout(context.Background(), req); err == nil {
		t.Fatal("token-less router accepted a rollout")
	}

	wrongToken, err := New(f.urls, Options{AdminToken: "not-the-token"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := wrongToken.Rollout(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("replicas accepted a router with the wrong admin token")
	}
	for i, srv := range f.servers {
		if swaps := srv.Stats().Swaps; swaps != 0 {
			t.Fatalf("replica %d Swaps = %d after rejected rollouts, want 0", i, swaps)
		}
	}
}

// TestTrafficDuringRolloutSeesWholeModels hammers the router while a
// bake-paced rollout walks the fleet, asserting the mid-rollout
// determinism contract: every successful answer is bit-identical to
// the old model's or the new model's prediction for that query — a
// whole model's answer, never a blend or a torn read.
func TestTrafficDuringRolloutSeesWholeModels(t *testing.T) {
	f := startFleet(t, 3, nil)
	rt := newTestRouter(t, f, Options{RolloutBakeTime: 60 * time.Millisecond})
	ctx := context.Background()

	next, artifact := adaptedArtifact(t)
	const nq = 24
	sqls := make([]string, nq)
	for i := range sqls {
		sqls[i] = testSQL(i)
	}
	oldWant := wantBatch(t, 0, sqls)
	newWant, err := next.EstimateSQLBatchCtx(ctx, next.Environments()[0], sqls)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sqls {
		if oldWant[i] == newWant[i] {
			t.Fatalf("query %d indistinguishable across models; pick a different probe", i)
		}
	}

	var torn atomic.Int64
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (w + i) % nq
				got, err := rt.Estimate(ctx, 0, sqls[qi])
				if err != nil {
					continue // rollout swaps never error traffic, but be safe
				}
				served.Add(1)
				if math.Float64bits(got) != math.Float64bits(oldWant[qi]) &&
					math.Float64bits(got) != math.Float64bits(newWant[qi]) {
					torn.Add(1)
				}
			}
		}(w)
	}

	res, err := rt.Rollout(ctx, RolloutRequest{
		ArtifactB64: base64.StdEncoding.EncodeToString(artifact),
		CanaryEnv:   0,
		CanarySQLs:  canaryProbes(),
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rollout under load failed: %+v", res)
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served during the rollout; the test proved nothing")
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d of %d mid-rollout answers matched neither model (torn reads)", n, served.Load())
	}
	t.Logf("served %d answers during rollout, all whole-model", served.Load())

	// Settled fleet: all traffic on the new model.
	got, err := rt.EstimateBatch(ctx, 0, sqls)
	if err != nil {
		t.Fatal(err)
	}
	assertBitsEqual(t, got, newWant, "settled post-rollout")
}
