package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is the consistent-hash layout of the replica fleet: every replica
// owns Vnodes points on a 64-bit circle (FNV-1a of "id#vnode"), and a
// query's routing hash (sqlparse.RoutingHash — the hash of its
// normalized fingerprint) lands on the first point clockwise from it.
//
// Two properties carry the serving contract:
//
//   - Resize stability: adding or removing a replica only remaps the
//     keys on that replica's own points (~1/N of the keyspace), so a
//     fleet resize mostly preserves every other replica's cache
//     locality — the reason for a ring rather than hash(key) % N.
//
//   - Deterministic fallback: the failover order for a key is the ring
//     walk clockwise from its point, first occurrence of each distinct
//     replica. It is a pure function of (key, fleet), independent of
//     load, timing, or which attempt is being made — so a retried query
//     lands on the same fallback replica every time, and routed results
//     stay reproducible even under failure.
type ring struct {
	ids    []string // replica IDs in configured order; index is the replica handle
	points []point  // sorted by hash
}

// point is one virtual node.
type point struct {
	hash    uint64
	replica int
}

// newRing lays out ids with vnodes points each. IDs must be distinct —
// two replicas hashing identical point sets would make the fallback
// walk ambiguous.
func newRing(ids []string, vnodes int) (*ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(ids))
	r := &ring{ids: ids, points: make([]point, 0, len(ids)*vnodes)}
	for i, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("router: duplicate replica %q", id)
		}
		seen[id] = true
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", id, v)
			r.points = append(r.points, point{hash: h.Sum64(), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit collision between vnodes is astronomically
		// unlikely but must still order deterministically.
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// pick returns the primary replica for a key hash: the owner of the
// first point at or clockwise of it.
func (r *ring) pick(hash uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// sequence returns the key's full deterministic failover order: the
// primary first, then each further distinct replica in ring-walk order.
// Every replica appears exactly once.
func (r *ring) sequence(hash uint64) []int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	seq := make([]int, 0, len(r.ids))
	seen := make([]bool, len(r.ids))
	for k := 0; k < len(r.points) && len(seq) < len(r.ids); k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, p.replica)
		}
	}
	return seq
}
