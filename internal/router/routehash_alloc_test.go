package router

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqlparse"
)

// TestRouteHashMemoHitZeroAlloc pins the warm-path contract on the
// router's RoutingHash memo: once a query's hash is published to the
// shard snapshot, the lookup is lock-free and performs zero heap
// allocations. (Cold lookups pay the full normalize-and-hash cost plus
// one deferred snapshot clone — that's the trade.)
func TestRouteHashMemoHitZeroAlloc(t *testing.T) {
	var c routeHashCache
	sql := "SELECT * FROM sbtest1 WHERE id = 42"
	want := sqlparse.RoutingHash(sql)
	// Warm until published: the second miss on a single hot key trips
	// the missed >= pending publication rule, so a handful of calls
	// guarantees the snapshot holds it.
	for i := 0; i < 8; i++ {
		if got := c.hash(sql); got != want {
			t.Fatalf("memo hash %x != RoutingHash %x", got, want)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if c.hash(sql) != want {
			t.Fatal("memo hash changed")
		}
	})
	if allocs != 0 {
		t.Fatalf("memo hit allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestRouteHashCacheConcurrent hammers the snapshot read path against
// concurrent inserts and wholesale shard resets; every answer must
// equal the pure function throughout.
func TestRouteHashCacheConcurrent(t *testing.T) {
	var c routeHashCache
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				// Interleave a shared hot set (snapshot hits) with
				// per-goroutine churn (inserts, eventual resets).
				sql := fmt.Sprintf("SELECT a FROM t WHERE id = %d", i%17)
				if g%2 == 1 {
					sql = fmt.Sprintf("SELECT a FROM churn WHERE id = %d", g*10000+i)
				}
				if got, want := c.hash(sql), sqlparse.RoutingHash(sql); got != want {
					t.Errorf("cached hash %x != RoutingHash %x for %q", got, want, sql)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
