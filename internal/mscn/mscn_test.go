package mscn

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/encoding"
	"repro/internal/metrics"
	"repro/internal/planner"
)

func synthPlans(n int, seed int64) ([]*planner.Node, []float64) {
	rng := rand.New(rand.NewSource(seed))
	var plans []*planner.Node
	var ms []float64
	for i := 0; i < n; i++ {
		rows := float64(100 + rng.Intn(100000))
		scan := &planner.Node{Op: planner.SeqScan, Table: "t", EstRows: rows, EstIn1: rows, EstWidth: 16, Limit: -1}
		cost := rows * 0.001
		if rng.Intn(2) == 0 {
			sorted := &planner.Node{
				Op: planner.Sort, Children: []*planner.Node{scan},
				EstRows: rows, EstIn1: rows, EstWidth: 16, SortCols: []int{0}, SortDesc: []bool{false}, Limit: -1,
			}
			cost *= 2.5
			plans = append(plans, sorted)
		} else {
			plans = append(plans, scan)
		}
		ms = append(ms, cost)
	}
	return plans, ms
}

func testFeaturizer() *encoding.Featurizer {
	s := catalog.NewSchema("synth")
	s.AddTable(catalog.NewTable("t", catalog.Column{Name: "a", Type: catalog.IntCol, Width: 8}))
	return &encoding.Featurizer{Enc: encoding.New(s)}
}

func TestMSCNLearns(t *testing.T) {
	m := New(testFeaturizer(), 1)
	plans, ms := synthPlans(300, 2)
	m.Train(plans, ms, 400)
	testPlans, testMs := synthPlans(60, 3)
	pred := make([]float64, len(testPlans))
	for i, p := range testPlans {
		pred[i] = m.PredictMs(p)
	}
	s := metrics.Summarize(testMs, pred)
	if s.Pearson < 0.9 {
		t.Fatalf("pearson = %v", s.Pearson)
	}
	if s.Mean > 2 {
		t.Fatalf("mean q-error = %v", s.Mean)
	}
}

func TestMSCNPooling(t *testing.T) {
	// Prediction must be invariant to duplicating a subtree's embedding
	// count in a controlled way: a single-node plan and the same node
	// repeated via a Materialize wrapper should differ (pooling sees the
	// extra node) — i.e. the model is actually reading the set.
	m := New(testFeaturizer(), 4)
	scan := &planner.Node{Op: planner.SeqScan, Table: "t", EstRows: 5000, EstIn1: 5000, EstWidth: 16, Limit: -1}
	wrapped := &planner.Node{Op: planner.Materialize, Children: []*planner.Node{scan}, EstRows: 5000, EstIn1: 5000, EstWidth: 16, Limit: -1}
	if m.PredictMs(scan) == m.PredictMs(wrapped) {
		t.Fatalf("pooling ignores plan structure")
	}
}

func TestMSCNCloneIndependent(t *testing.T) {
	m := New(testFeaturizer(), 1)
	plans, ms := synthPlans(50, 4)
	m.Train(plans, ms, 50)
	c := m.Clone()
	before := c.PredictMs(plans[0])
	m.Train(plans, ms, 100)
	if c.PredictMs(plans[0]) != before {
		t.Fatalf("clone shares state")
	}
}

func TestMSCNSetFeaturizerDimCheck(t *testing.T) {
	m := New(testFeaturizer(), 1)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	s2 := catalog.NewSchema("other")
	s2.AddTable(catalog.NewTable("a", catalog.Column{Name: "x", Type: catalog.IntCol, Width: 8}))
	s2.AddTable(catalog.NewTable("b", catalog.Column{Name: "y", Type: catalog.IntCol, Width: 8}))
	m.SetFeaturizer(&encoding.Featurizer{Enc: encoding.New(s2)})
}

func TestMSCNNonNegativeAndNamed(t *testing.T) {
	m := New(testFeaturizer(), 7)
	if m.Name() != "mscn" {
		t.Fatalf("name = %q", m.Name())
	}
	plans, _ := synthPlans(10, 5)
	for _, p := range plans {
		if v := m.PredictMs(p); v < 0 {
			t.Fatalf("negative prediction")
		}
	}
	if m.NumParams() == 0 {
		t.Fatalf("no params")
	}
}
