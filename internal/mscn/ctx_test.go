package mscn

import (
	"context"
	"errors"
	"testing"
)

// stepCtx is a context whose Err flips to Canceled after `limit` checks.
// TrainCtx polls Err exactly once per minibatch iteration, so limit
// controls precisely how many iterations run — which makes the
// cancellation-consistency assertion deterministic.
type stepCtx struct {
	context.Context
	calls, limit int
}

func (c *stepCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestTrainCtxCancelMidRun locks in the cancellation contract: a cancel
// that lands mid-training stops the loop at an iteration boundary,
// leaving the weights exactly as if training had been asked for that
// many iterations — never a torn, half-applied optimizer step.
func TestTrainCtxCancelMidRun(t *testing.T) {
	plans, ms := synthPlans(60, 4)
	const ranIters = 7

	cancelled := New(testFeaturizer(), 5)
	if _, err := cancelled.TrainCtx(&stepCtx{Context: context.Background(), limit: ranIters}, plans, ms, 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ref := New(testFeaturizer(), 5)
	ref.Train(plans, ms, ranIters)
	weightsEqual(t, cancelled, ref, "cancelled-at-7-vs-trained-7")

	// An already-cancelled context stops before the first iteration.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	untouched := New(testFeaturizer(), 5)
	fresh := New(testFeaturizer(), 5)
	if _, err := untouched.TrainCtx(ctx, plans, ms, 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	weightsEqual(t, untouched, fresh, "pre-cancelled-vs-fresh")
}
