package mscn

import (
	"fmt"
	"math/rand"

	"repro/internal/artifact"
	"repro/internal/encoding"
	"repro/internal/nn"
)

// Encode appends the model's weights and batch configuration to the
// artifact payload. The featurizer is not part of the model section — it
// is shared pipeline state and is persisted once by the artifact's owner.
func (m *Model) Encode(e *artifact.Encoder) {
	e.Int(m.BatchSize)
	m.SetNet.Encode(e)
	m.OutNet.Encode(e)
}

// Decode reads a model written by Encode and binds it to f. The loaded
// model's inference is bit-identical to the saved one's; the optimizer
// and minibatch sampler start fresh (seeded by seed), exactly like a
// newly constructed model, so continued training is supported but not a
// byte-level continuation of the original run.
func Decode(d *artifact.Decoder, f *encoding.Featurizer, seed int64) (*Model, error) {
	bs := d.Int()
	set, err := nn.DecodeMLP(d)
	if err != nil {
		return nil, fmt.Errorf("mscn: set network: %w", err)
	}
	out, err := nn.DecodeMLP(d)
	if err != nil {
		return nil, fmt.Errorf("mscn: merge network: %w", err)
	}
	if set.InDim() != f.Dim() {
		return nil, fmt.Errorf("mscn: artifact set network expects %d features, featurizer produces %d", set.InDim(), f.Dim())
	}
	if out.InDim() != set.OutDim() {
		return nil, fmt.Errorf("mscn: artifact merge network input %d does not match embedding width %d", out.InDim(), set.OutDim())
	}
	return &Model{
		F:         f,
		SetNet:    set,
		OutNet:    out,
		BatchSize: bs,
		opt:       nn.NewAdam(defaultLR),
		rng:       rand.New(rand.NewSource(seed)),
	}, nil
}
